/**
 * @file
 * Multi-node fabric behaviour: per-port contention (a non-blocking
 * switch), many-to-one incast, and cross-node independence.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.hh"

using namespace ibsim;

namespace {

/** A cluster of @p n nodes with pinned buffers and one QP per pair. */
struct Star
{
    Cluster cluster;
    std::vector<verbs::CompletionQueue*> cqs;

    explicit Star(std::size_t n)
        : cluster(rnic::DeviceProfile::connectX4(), n, 47)
    {
        for (std::size_t i = 0; i < n; ++i)
            cqs.push_back(&cluster.node(i).createCq());
    }
};

} // namespace

TEST(MultiNode, DisjointPairsDoNotContend)
{
    // Two independent flows (0->1 and 2->3) of large writes must overlap
    // perfectly: same completion time as either flow alone.
    auto run = [](bool both) {
        Star star(4);
        auto& c = star.cluster;
        net::LinkConfig link;  // defaults

        auto setup = [&](std::size_t from, std::size_t to) {
            auto [q, r] = c.connectRc(c.node(from), *star.cqs[from],
                                      c.node(to), *star.cqs[to]);
            const auto src = c.node(from).alloc(1 << 20);
            const auto dst = c.node(to).alloc(1 << 20);
            c.node(from).memory().touch(src, 1 << 20);
            auto& smr = c.node(from).registerMemory(
                src, 1 << 20, verbs::AccessFlags::pinned());
            auto& dmr = c.node(to).registerMemory(
                dst, 1 << 20, verbs::AccessFlags::pinned());
            for (int i = 0; i < 64; ++i)
                q.postWrite(src, smr.lkey(), dst, dmr.rkey(), 4096,
                            i);
            return star.cqs[from];
        };

        auto* cq0 = setup(0, 1);
        verbs::CompletionQueue* cq2 = nullptr;
        if (both)
            cq2 = setup(2, 3);
        c.runUntil([&] {
            return cq0->totalSuccess() >= 64 &&
                   (!cq2 || cq2->totalSuccess() >= 64);
        });
        return c.now().toUs();
    };

    const double alone = run(false);
    const double together = run(true);
    EXPECT_NEAR(alone, together, alone * 0.01);
}

TEST(MultiNode, IncastSerializesOnTheVictimPort)
{
    // Three senders into one receiver: the victim's ingress link is the
    // bottleneck, so the incast takes ~3x one flow's wire time.
    auto run = [](std::size_t senders) {
        Star star(4);
        auto& c = star.cluster;
        std::vector<verbs::CompletionQueue*> scqs;
        for (std::size_t s = 1; s <= senders; ++s) {
            auto [q, r] = c.connectRc(c.node(s), *star.cqs[s], c.node(0),
                                      *star.cqs[0]);
            const auto src = c.node(s).alloc(1 << 20);
            const auto dst = c.node(0).alloc(1 << 20);
            c.node(s).memory().touch(src, 1 << 20);
            auto& smr = c.node(s).registerMemory(
                src, 1 << 20, verbs::AccessFlags::pinned());
            auto& dmr = c.node(0).registerMemory(
                dst, 1 << 20, verbs::AccessFlags::pinned());
            for (int i = 0; i < 64; ++i)
                q.postWrite(src, smr.lkey(), dst, dmr.rkey(), 4096, i);
            scqs.push_back(star.cqs[s]);
        }
        c.runUntil([&] {
            for (auto* cq : scqs) {
                if (cq->totalSuccess() < 64)
                    return false;
            }
            return true;
        });
        return c.now().toUs();
    };

    const double one = run(1);
    const double three = run(3);
    EXPECT_GT(three, 2.0 * one);
    EXPECT_LT(three, 4.0 * one);
}

TEST(MultiNode, AllPairsTrafficCompletes)
{
    constexpr std::size_t n = 5;
    Star star(n);
    auto& c = star.cluster;

    std::size_t expected_per_node[n] = {};
    for (std::size_t from = 0; from < n; ++from) {
        for (std::size_t to = 0; to < n; ++to) {
            if (from == to)
                continue;
            auto [q, r] = c.connectRc(c.node(from), *star.cqs[from],
                                      c.node(to), *star.cqs[to]);
            const auto src = c.node(from).alloc(4096);
            const auto dst = c.node(to).alloc(4096);
            c.node(from).memory().touch(src, 4096);
            auto& smr = c.node(from).registerMemory(
                src, 4096, verbs::AccessFlags::pinned());
            auto& dmr = c.node(to).registerMemory(
                dst, 4096, verbs::AccessFlags::pinned());
            q.postWrite(src, smr.lkey(), dst, dmr.rkey(), 256,
                        from * 10 + to);
            ++expected_per_node[from];
        }
    }
    ASSERT_TRUE(c.runUntil(
        [&] {
            for (std::size_t i = 0; i < n; ++i) {
                if (star.cqs[i]->totalSuccess() < expected_per_node[i])
                    return false;
            }
            return true;
        },
        Time::sec(1)));
}

TEST(MultiNode, OdpFaultsAreIndependentPerNode)
{
    Star star(3);
    auto& c = star.cluster;
    // Node 0 reads ODP buffers on nodes 1 and 2 concurrently; each
    // server's driver handles exactly its own fault.
    for (std::size_t s = 1; s <= 2; ++s) {
        auto [q, r] = c.connectRc(c.node(0), *star.cqs[0], c.node(s),
                                  *star.cqs[s]);
        const auto src = c.node(s).alloc(4096);
        const auto dst = c.node(0).alloc(4096);
        auto& smr = c.node(s).registerMemory(src, 4096,
                                             verbs::AccessFlags::odp());
        auto& dmr = c.node(0).registerMemory(
            dst, 4096, verbs::AccessFlags::pinned());
        q.postRead(dst, dmr.lkey(), src, smr.rkey(), 100, s);
    }
    ASSERT_TRUE(c.runUntil(
        [&] { return star.cqs[0]->totalSuccess() >= 2; }, Time::sec(2)));
    EXPECT_EQ(c.node(1).driver().stats().faultsResolved, 1u);
    EXPECT_EQ(c.node(2).driver().stats().faultsResolved, 1u);
    EXPECT_EQ(c.node(0).driver().stats().faultsResolved, 0u);
}
