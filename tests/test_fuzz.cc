/**
 * @file
 * Randomized protocol stress: random mixes of verbs, sizes, ODP modes and
 * injected loss, checked against the invariants that must survive
 * anything — every posted WR completes exactly once, reliable data is
 * intact, and no QP ends in error unless retries were exhausted.
 */

#include <gtest/gtest.h>

#include <map>

#include "cluster/cluster.hh"
#include "net/loss.hh"
#include "simcore/rng.hh"

using namespace ibsim;

namespace {

struct FuzzParams
{
    std::uint64_t seed;
    double lossRate;
    bool clientOdp;
    bool serverOdp;
};

class FuzzSweep : public ::testing::TestWithParam<FuzzParams>
{};

} // namespace

TEST_P(FuzzSweep, RandomWorkloadKeepsInvariants)
{
    const FuzzParams params = GetParam();
    Cluster cluster(rnic::DeviceProfile::knl(), 2, params.seed);
    Node& client = cluster.node(0);
    Node& server = cluster.node(1);
    auto& ccq = client.createCq();
    auto& scq = server.createCq();

    verbs::QpConfig config;
    config.cack = 1;
    config.cretry = 7;
    auto [cqp, sqp] = cluster.connectRc(client, ccq, server, scq, config);

    constexpr std::uint64_t area = 256 * 1024;
    const auto cbuf = client.alloc(area);
    const auto sbuf = server.alloc(area);
    auto& cmr = client.registerMemory(
        cbuf, area,
        params.clientOdp ? verbs::AccessFlags::odp()
                         : verbs::AccessFlags::pinned());
    auto& smr = server.registerMemory(
        sbuf, area,
        params.serverOdp ? verbs::AccessFlags::odp()
                         : verbs::AccessFlags::pinned());

    // Host-side data exists everywhere; the RNIC view may be cold.
    std::vector<std::uint8_t> sdata(area);
    for (std::uint64_t i = 0; i < area; ++i)
        sdata[i] = static_cast<std::uint8_t>(i * 7 + 1);
    server.memory().write(sbuf, sdata);
    client.memory().write(cbuf, std::vector<std::uint8_t>(area, 0xCC));

    if (params.lossRate > 0) {
        cluster.fabric().setLossModel(
            std::make_unique<net::BernoulliLoss>(params.lossRate));
    }

    Rng rng(params.seed * 977 + 13);
    struct Issued
    {
        int kind;  // 0 read, 1 write, 2 send, 3 fetchadd
        std::uint64_t loff, roff;
        std::uint32_t len;
    };
    std::map<std::uint64_t, Issued> issued;

    constexpr std::size_t ops = 120;
    std::size_t recvs_posted = 0;
    for (std::uint64_t i = 0; i < ops; ++i) {
        const int kind = static_cast<int>(rng.uniformInt(0, 3));
        // Offsets land anywhere (page-misaligned on purpose); lengths
        // span one to a few MTUs for reads/writes.
        const std::uint32_t len =
            kind >= 3 ? 8
                      : static_cast<std::uint32_t>(
                            rng.uniformInt(1, 12000));
        const std::uint64_t loff = static_cast<std::uint64_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(area - len)));
        const std::uint64_t roff = static_cast<std::uint64_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(area - len)));
        issued[i] = {kind, loff, roff, len};

        switch (kind) {
          case 0:
            cqp.postRead(cbuf + loff, cmr.lkey(), sbuf + roff, smr.rkey(),
                         len, i);
            break;
          case 1:
            cqp.postWrite(cbuf + loff, cmr.lkey(), sbuf + roff,
                          smr.rkey(), len, i);
            break;
          case 2:
            sqp.postRecv(sbuf + roff, smr.lkey(),
                         static_cast<std::uint32_t>(area - roff),
                         100000 + recvs_posted);
            ++recvs_posted;
            cqp.postSend(cbuf + loff, cmr.lkey(), len, i);
            break;
          case 3:
            cqp.postFetchAdd(cbuf + loff, cmr.lkey(),
                             sbuf + (roff & ~7ull), smr.rkey(), 1, i);
            break;
        }
        cluster.advance(rng.uniformTime(Time::us(1), Time::us(400)));
    }

    // Everything must complete (loss <= 15% cannot exhaust 7 retries).
    ASSERT_TRUE(cluster.runUntil(
        [&] { return ccq.totalCompletions() >= ops; }, Time::sec(120)))
        << "only " << ccq.totalCompletions() << " of " << ops;

    std::map<std::uint64_t, int> seen;
    bool any_error = false;
    for (const auto& wc : ccq.poll()) {
        ++seen[wc.wrId];
        any_error |= !wc.ok();
    }
    EXPECT_FALSE(any_error);
    EXPECT_FALSE(cqp.inError());
    // Exactly-once completion per WR.
    for (std::uint64_t i = 0; i < ops; ++i)
        EXPECT_EQ(seen[i], 1) << "wr " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, FuzzSweep,
    ::testing::Values(FuzzParams{1, 0.0, false, false},
                      FuzzParams{2, 0.0, true, false},
                      FuzzParams{3, 0.0, false, true},
                      FuzzParams{4, 0.0, true, true},
                      FuzzParams{5, 0.05, false, false},
                      FuzzParams{6, 0.05, true, true},
                      FuzzParams{7, 0.15, false, false},
                      FuzzParams{8, 0.10, true, true},
                      FuzzParams{9, 0.02, true, false},
                      FuzzParams{10, 0.02, false, true}));
