/**
 * @file
 * End-to-end smoke tests of the RC transport over the simulated fabric:
 * pinned READ/WRITE/SEND data movement, wrong-LID timeouts, and the basic
 * ODP fault flows on both sides.
 */

#include <gtest/gtest.h>

#include "capture/analysis.hh"
#include "capture/capture.hh"
#include "cluster/cluster.hh"
#include "rnic/timeout.hh"

using namespace ibsim;

namespace {

std::vector<std::uint8_t>
patternBytes(std::size_t n, std::uint8_t seed)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(seed + i * 7);
    return v;
}

struct TwoNodes
{
    Cluster cluster;
    Node& client;
    Node& server;
    verbs::CompletionQueue& clientCq;
    verbs::CompletionQueue& serverCq;

    explicit TwoNodes(rnic::DeviceProfile profile =
                          rnic::DeviceProfile::connectX4(),
                      std::uint64_t seed = 42)
        : cluster(std::move(profile), 2, seed), client(cluster.node(0)),
          server(cluster.node(1)), clientCq(client.createCq()),
          serverCq(server.createCq())
    {}
};

} // namespace

TEST(RcBasic, PinnedReadMovesData)
{
    TwoNodes t;
    auto [cqp, sqp] = t.cluster.connectRc(t.client, t.clientCq, t.server,
                                          t.serverCq);

    const std::uint64_t src = t.server.alloc(4096);
    const std::uint64_t dst = t.client.alloc(4096);
    auto& smr = t.server.registerMemory(src, 4096,
                                        verbs::AccessFlags::pinned());
    auto& cmr = t.client.registerMemory(dst, 4096,
                                        verbs::AccessFlags::pinned());

    const auto data = patternBytes(256, 3);
    t.server.memory().write(src, data);

    cqp.postRead(dst, cmr.lkey(), src, smr.rkey(), 256, /*wr_id=*/1);
    ASSERT_TRUE(t.cluster.runUntil(
        [&] { return t.clientCq.totalCompletions() == 1; },
        Time::sec(1)));

    auto wcs = t.clientCq.poll();
    ASSERT_EQ(wcs.size(), 1u);
    EXPECT_EQ(wcs[0].wrId, 1u);
    EXPECT_TRUE(wcs[0].ok());
    EXPECT_EQ(t.client.memory().read(dst, 256), data);
    // A pinned READ is one request, one response: round trip of a few us.
    EXPECT_LT(t.cluster.now().toUs(), 20.0);
}

TEST(RcBasic, PinnedWriteMovesData)
{
    TwoNodes t;
    auto [cqp, sqp] = t.cluster.connectRc(t.client, t.clientCq, t.server,
                                          t.serverCq);

    const std::uint64_t src = t.client.alloc(4096);
    const std::uint64_t dst = t.server.alloc(4096);
    auto& cmr = t.client.registerMemory(src, 4096,
                                        verbs::AccessFlags::pinned());
    auto& smr = t.server.registerMemory(dst, 4096,
                                        verbs::AccessFlags::pinned());

    const auto data = patternBytes(100, 9);
    t.client.memory().write(src, data);

    cqp.postWrite(src, cmr.lkey(), dst, smr.rkey(), 100, 7);
    ASSERT_TRUE(t.cluster.runUntil(
        [&] { return t.clientCq.totalCompletions() == 1; },
        Time::sec(1)));

    EXPECT_TRUE(t.clientCq.poll()[0].ok());
    EXPECT_EQ(t.server.memory().read(dst, 100), data);
}

TEST(RcBasic, SendRecvMovesDataAndCompletesBothSides)
{
    TwoNodes t;
    auto [cqp, sqp] = t.cluster.connectRc(t.client, t.clientCq, t.server,
                                          t.serverCq);

    const std::uint64_t src = t.client.alloc(4096);
    const std::uint64_t dst = t.server.alloc(4096);
    auto& cmr = t.client.registerMemory(src, 4096,
                                        verbs::AccessFlags::pinned());
    auto& smr = t.server.registerMemory(dst, 4096,
                                        verbs::AccessFlags::pinned());

    const auto data = patternBytes(64, 1);
    t.client.memory().write(src, data);

    sqp.postRecv(dst, smr.lkey(), 4096, /*wr_id=*/100);
    cqp.postSend(src, cmr.lkey(), 64, /*wr_id=*/200);

    ASSERT_TRUE(t.cluster.runUntil(
        [&] {
            return t.clientCq.totalCompletions() == 1 &&
                   t.serverCq.totalCompletions() == 1;
        },
        Time::sec(1)));

    auto swc = t.serverCq.poll();
    ASSERT_EQ(swc.size(), 1u);
    EXPECT_EQ(swc[0].wrId, 100u);
    EXPECT_EQ(swc[0].opcode, verbs::WrOpcode::Recv);
    EXPECT_EQ(swc[0].byteLen, 64u);
    EXPECT_EQ(t.server.memory().read(dst, 64), data);

    auto cwc = t.clientCq.poll();
    ASSERT_EQ(cwc.size(), 1u);
    EXPECT_EQ(cwc[0].wrId, 200u);
}

TEST(RcBasic, SendWithoutRecvGetsRnrNakThenCompletes)
{
    TwoNodes t;
    auto [cqp, sqp] = t.cluster.connectRc(t.client, t.clientCq, t.server,
                                          t.serverCq);

    const std::uint64_t src = t.client.alloc(4096);
    const std::uint64_t dst = t.server.alloc(4096);
    auto& cmr = t.client.registerMemory(src, 4096,
                                        verbs::AccessFlags::pinned());
    auto& smr = t.server.registerMemory(dst, 4096,
                                        verbs::AccessFlags::pinned());

    cqp.postSend(src, cmr.lkey(), 32, 1);
    // Post the RECV only after the RNR NAK round trip started.
    t.cluster.advance(Time::ms(1));
    sqp.postRecv(dst, smr.lkey(), 4096, 2);

    ASSERT_TRUE(t.cluster.runUntil(
        [&] { return t.clientCq.totalCompletions() == 1; },
        Time::sec(2)));
    EXPECT_GE(cqp.stats().rnrNaksReceived, 1u);
    EXPECT_TRUE(t.clientCq.poll()[0].ok());
}

TEST(RcBasic, WrongLidTimesOutWithRetryExcErr)
{
    TwoNodes t;
    verbs::QpConfig config;
    config.cack = 14;
    config.cretry = 7;
    auto cqp = t.client.createQp(t.clientCq, config);
    cqp.connect(/*dst_lid=*/99, /*dst_qpn=*/555);  // nobody home

    const std::uint64_t dst = t.client.alloc(4096);
    auto& cmr = t.client.registerMemory(dst, 4096,
                                        verbs::AccessFlags::pinned());

    cqp.postRead(dst, cmr.lkey(), 0x20000000, 1, 100, 1);
    ASSERT_TRUE(t.cluster.runUntil(
        [&] { return t.clientCq.totalCompletions() == 1; },
        Time::sec(60)));

    auto wcs = t.clientCq.poll();
    EXPECT_EQ(wcs[0].status, verbs::WcStatus::RetryExcErr);
    EXPECT_TRUE(cqp.inError());

    // Abort time = (cretry + 1) * T_o; T_o = 2 * T_tr(max(14, 16)).
    const Time to = rnic::detectionTime(config.cack,
                                        t.client.rnic().profile());
    const double expected = 8.0 * to.toSec();
    EXPECT_NEAR(t.cluster.now().toSec(), expected, 0.05 * expected);
}

TEST(RcBasic, ReadFromUnregisteredKeyFailsWithRemAccessErr)
{
    TwoNodes t;
    auto [cqp, sqp] = t.cluster.connectRc(t.client, t.clientCq, t.server,
                                          t.serverCq);

    const std::uint64_t dst = t.client.alloc(4096);
    auto& cmr = t.client.registerMemory(dst, 4096,
                                        verbs::AccessFlags::pinned());

    cqp.postRead(dst, cmr.lkey(), 0x20000000, /*bogus rkey=*/4242, 100, 1);
    ASSERT_TRUE(t.cluster.runUntil(
        [&] { return t.clientCq.totalCompletions() == 1; },
        Time::sec(1)));
    EXPECT_EQ(t.clientCq.poll()[0].status, verbs::WcStatus::RemAccessErr);
}

TEST(OdpBasic, ServerSideFaultResolvesViaRnrNak)
{
    TwoNodes t;
    capture::PacketCapture cap(t.cluster.fabric());
    auto [cqp, sqp] = t.cluster.connectRc(t.client, t.clientCq, t.server,
                                          t.serverCq);

    const std::uint64_t src = t.server.alloc(4096);
    const std::uint64_t dst = t.client.alloc(4096);
    auto& smr =
        t.server.registerMemory(src, 4096, verbs::AccessFlags::odp());
    auto& cmr = t.client.registerMemory(dst, 4096,
                                        verbs::AccessFlags::pinned());

    cqp.postRead(dst, cmr.lkey(), src, smr.rkey(), 100, 1);
    ASSERT_TRUE(t.cluster.runUntil(
        [&] { return t.clientCq.totalCompletions() == 1; },
        Time::sec(2)));
    EXPECT_TRUE(t.clientCq.poll()[0].ok());

    // The workflow of Fig. 1 (left): RNR NAK, then an RNR-delay wait
    // dominated by ~3.5 x 1.28 ms.
    auto sum = capture::summarize(cap);
    EXPECT_GE(sum.rnrNaks, 1u);
    EXPECT_GT(t.cluster.now().toMs(), 3.0);
    EXPECT_LT(t.cluster.now().toMs(), 8.0);
    EXPECT_EQ(t.server.driver().stats().faultsResolved, 1u);
}

TEST(OdpBasic, ClientSideFaultResolvesViaBlindRetransmission)
{
    TwoNodes t;
    capture::PacketCapture cap(t.cluster.fabric());
    auto [cqp, sqp] = t.cluster.connectRc(t.client, t.clientCq, t.server,
                                          t.serverCq);

    const std::uint64_t src = t.server.alloc(4096);
    const std::uint64_t dst = t.client.alloc(4096);
    auto& smr = t.server.registerMemory(src, 4096,
                                        verbs::AccessFlags::pinned());
    auto& cmr =
        t.client.registerMemory(dst, 4096, verbs::AccessFlags::odp());

    const auto data = patternBytes(100, 5);
    t.server.memory().write(src, data);

    cqp.postRead(dst, cmr.lkey(), src, smr.rkey(), 100, 1);
    ASSERT_TRUE(t.cluster.runUntil(
        [&] { return t.clientCq.totalCompletions() == 1; },
        Time::sec(2)));
    EXPECT_TRUE(t.clientCq.poll()[0].ok());
    EXPECT_EQ(t.client.memory().read(dst, 100), data);

    // Client-side ODP: at least one response discarded, the request
    // retransmitted on the ~0.5 ms blind loop, no RNR NAK involved.
    auto sum = capture::summarize(cap);
    EXPECT_EQ(sum.rnrNaks, 0u);
    EXPECT_GE(cqp.stats().responsesDiscardedFault, 1u);
    EXPECT_GE(cqp.stats().retransmissions, 1u);
    EXPECT_EQ(t.client.driver().stats().faultsResolved, 1u);
    // Latency: fault latency rounded up to the next 0.5 ms rexmit slot.
    EXPECT_GT(t.cluster.now().toUs(), 250.0);
    EXPECT_LT(t.cluster.now().toMs(), 3.0);
}

TEST(OdpBasic, SenderSideFaultDefersSendUntilResolution)
{
    TwoNodes t;
    auto [cqp, sqp] = t.cluster.connectRc(t.client, t.clientCq, t.server,
                                          t.serverCq);

    const std::uint64_t src = t.client.alloc(4096);
    const std::uint64_t dst = t.server.alloc(4096);
    auto& cmr =
        t.client.registerMemory(src, 4096, verbs::AccessFlags::odp());
    auto& smr = t.server.registerMemory(dst, 4096,
                                        verbs::AccessFlags::pinned());

    cqp.postWrite(src, cmr.lkey(), dst, smr.rkey(), 100, 1);
    ASSERT_TRUE(t.cluster.runUntil(
        [&] { return t.clientCq.totalCompletions() == 1; },
        Time::sec(2)));
    EXPECT_TRUE(t.clientCq.poll()[0].ok());
    EXPECT_EQ(t.client.driver().stats().faultsResolved, 1u);
    EXPECT_GT(t.cluster.now().toUs(), 250.0);
}

TEST(OdpBasic, PrefetchAvoidsFaults)
{
    TwoNodes t;
    auto [cqp, sqp] = t.cluster.connectRc(t.client, t.clientCq, t.server,
                                          t.serverCq);

    const std::uint64_t src = t.server.alloc(4096);
    const std::uint64_t dst = t.client.alloc(4096);
    auto& smr =
        t.server.registerMemory(src, 4096, verbs::AccessFlags::odp());
    auto& cmr = t.client.registerMemory(dst, 4096,
                                        verbs::AccessFlags::pinned());

    t.server.prefetch(smr, src, 4096);
    t.cluster.advance(Time::ms(1));

    cqp.postRead(dst, cmr.lkey(), src, smr.rkey(), 100, 1);
    ASSERT_TRUE(t.cluster.runUntil(
        [&] { return t.clientCq.totalCompletions() == 1; },
        Time::sec(1)));
    EXPECT_TRUE(t.clientCq.poll()[0].ok());
    EXPECT_EQ(t.server.driver().stats().faultsRaised, 0u);
    EXPECT_EQ(t.server.driver().stats().prefetchedPages, 1u);
    // No fault: the READ completes at wire speed after the prefetch.
    EXPECT_LT((t.cluster.now() - Time::ms(1)).toUs(), 20.0);
}

TEST(OdpBasic, InvalidationForcesRefault)
{
    TwoNodes t;
    auto [cqp, sqp] = t.cluster.connectRc(t.client, t.clientCq, t.server,
                                          t.serverCq);

    const std::uint64_t src = t.server.alloc(4096);
    const std::uint64_t dst = t.client.alloc(4096);
    auto& smr =
        t.server.registerMemory(src, 4096, verbs::AccessFlags::odp());
    auto& cmr = t.client.registerMemory(dst, 4096,
                                        verbs::AccessFlags::pinned());

    cqp.postRead(dst, cmr.lkey(), src, smr.rkey(), 100, 1);
    ASSERT_TRUE(t.cluster.runUntil(
        [&] { return t.clientCq.totalCompletions() == 1; },
        Time::sec(2)));
    EXPECT_EQ(t.server.driver().stats().faultsRaised, 1u);

    // Kernel reclaims the page; the next READ must fault again.
    t.server.invalidate(smr, src);
    t.cluster.advance(Time::ms(1));
    EXPECT_EQ(smr.table().mappedPages(), 0u);

    cqp.postRead(dst, cmr.lkey(), src, smr.rkey(), 100, 2);
    ASSERT_TRUE(t.cluster.runUntil(
        [&] { return t.clientCq.totalCompletions() == 2; },
        Time::sec(2)));
    EXPECT_EQ(t.server.driver().stats().faultsRaised, 2u);
}

TEST(OdpBasic, BothSideOdpSingleReadCompletes)
{
    TwoNodes t;
    auto [cqp, sqp] = t.cluster.connectRc(t.client, t.clientCq, t.server,
                                          t.serverCq);

    const std::uint64_t src = t.server.alloc(4096);
    const std::uint64_t dst = t.client.alloc(4096);
    auto& smr =
        t.server.registerMemory(src, 4096, verbs::AccessFlags::odp());
    auto& cmr =
        t.client.registerMemory(dst, 4096, verbs::AccessFlags::odp());

    cqp.postRead(dst, cmr.lkey(), src, smr.rkey(), 100, 1);
    ASSERT_TRUE(t.cluster.runUntil(
        [&] { return t.clientCq.totalCompletions() == 1; },
        Time::sec(2)));
    EXPECT_TRUE(t.clientCq.poll()[0].ok());
    EXPECT_EQ(t.server.driver().stats().faultsResolved, 1u);
    EXPECT_EQ(t.client.driver().stats().faultsResolved, 1u);
}
