/**
 * @file
 * Unit tests of the fabric layer: packets, loss models, delivery timing,
 * capture taps and counters.
 */

#include <gtest/gtest.h>

#include "net/fabric.hh"
#include "net/loss.hh"
#include "net/packet.hh"

using namespace ibsim;
using namespace ibsim::net;

namespace {

class Sink : public PortHandler
{
  public:
    void receive(const Packet& pkt) override { received.push_back(pkt); }
    std::vector<Packet> received;
};

Packet
makePacket(std::uint16_t dst, Opcode op = Opcode::Send,
           std::uint32_t length = 64)
{
    Packet p;
    p.op = op;
    p.dstLid = dst;
    p.length = length;
    p.payload.assign(length, 0xEE);
    return p;
}

} // namespace

TEST(PacketTest, WireSizeIncludesHeaders)
{
    Packet read_req = makePacket(1, Opcode::ReadRequest, 0);
    Packet send = makePacket(1, Opcode::Send, 100);
    Packet resp = makePacket(1, Opcode::ReadResponse, 100);
    Packet ack = makePacket(1, Opcode::Ack, 0);

    // A READ request carries a RETH but no payload.
    EXPECT_EQ(read_req.wireSize(), 26u + 16u);
    // SEND carries payload on the base header.
    EXPECT_EQ(send.wireSize(), 26u + 100u);
    // Responses carry AETH + payload.
    EXPECT_EQ(resp.wireSize(), 26u + 4u + 100u);
    EXPECT_EQ(ack.wireSize(), 26u + 4u);
}

TEST(PacketTest, StringContainsOpcodeAndFlags)
{
    Packet p = makePacket(7, Opcode::ReadRequest);
    p.psn = 42;
    p.retransmission = true;
    p.dammed = true;
    const std::string s = p.str();
    EXPECT_NE(s.find("READ_REQ"), std::string::npos);
    EXPECT_NE(s.find("psn=42"), std::string::npos);
    EXPECT_NE(s.find("[rexmit]"), std::string::npos);
    EXPECT_NE(s.find("[dammed]"), std::string::npos);
}

TEST(LossTest, NoLossNeverDrops)
{
    Rng rng(1);
    NoLoss model;
    Packet p = makePacket(1);
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(model.shouldDrop(p, rng));
}

TEST(LossTest, BernoulliDropsAtConfiguredRate)
{
    Rng rng(1);
    BernoulliLoss model(0.3);
    Packet p = makePacket(1);
    int drops = 0;
    for (int i = 0; i < 10000; ++i)
        drops += model.shouldDrop(p, rng) ? 1 : 0;
    EXPECT_NEAR(drops / 10000.0, 0.3, 0.03);
}

TEST(LossTest, MatchOnceDropsExactlyN)
{
    Rng rng(1);
    MatchOnceLoss model(
        [](const Packet& p) { return p.op == Opcode::ReadResponse; },
        /*count=*/2);
    Packet resp = makePacket(1, Opcode::ReadResponse);
    Packet send = makePacket(1, Opcode::Send);
    EXPECT_FALSE(model.shouldDrop(send, rng));
    EXPECT_TRUE(model.shouldDrop(resp, rng));
    EXPECT_TRUE(model.shouldDrop(resp, rng));
    EXPECT_FALSE(model.shouldDrop(resp, rng));
    EXPECT_EQ(model.remaining(), 0u);
}

TEST(FabricTest, DeliversAfterLatencyAndSerialization)
{
    EventQueue events;
    Rng rng(1);
    LinkConfig link;
    link.latency = Time::us(1);
    link.bandwidthBytesPerSec = 1e9;  // 1 GB/s for round numbers
    link.perPacketOverhead = Time();
    Fabric fabric(events, rng, link);

    Sink sink;
    fabric.attach(5, sink);

    fabric.send(makePacket(5, Opcode::Send, 1000));
    events.run();
    ASSERT_EQ(sink.received.size(), 1u);
    // Serialization of 1026 bytes at 1 GB/s = 1.026 us, plus 1 us latency.
    EXPECT_NEAR(events.now().toUs(), 2.026, 0.01);
}

TEST(FabricTest, BackToBackPacketsQueueOnTheLink)
{
    EventQueue events;
    Rng rng(1);
    LinkConfig link;
    link.latency = Time();
    link.bandwidthBytesPerSec = 1e9;
    link.perPacketOverhead = Time();
    Fabric fabric(events, rng, link);
    Sink sink;
    fabric.attach(5, sink);

    for (int i = 0; i < 3; ++i)
        fabric.send(makePacket(5, Opcode::Send, 974));  // 1000 B on wire
    events.run();
    // Three 1000-byte packets serialize sequentially: last at 3 us.
    EXPECT_NEAR(events.now().toUs(), 3.0, 0.01);
    EXPECT_EQ(sink.received.size(), 3u);
}

TEST(FabricTest, UnknownLidVanishesSilently)
{
    EventQueue events;
    Rng rng(1);
    Fabric fabric(events, rng);
    Sink sink;
    fabric.attach(1, sink);

    fabric.send(makePacket(999));
    events.run();
    EXPECT_TRUE(sink.received.empty());
    EXPECT_EQ(fabric.totalSent(), 1u);
    EXPECT_EQ(fabric.totalDropped(), 1u);
    EXPECT_EQ(fabric.totalDelivered(), 0u);
}

TEST(FabricTest, DetachStopsDelivery)
{
    EventQueue events;
    Rng rng(1);
    Fabric fabric(events, rng);
    Sink sink;
    fabric.attach(3, sink);
    fabric.detach(3);
    fabric.send(makePacket(3));
    events.run();
    EXPECT_TRUE(sink.received.empty());
    EXPECT_EQ(fabric.totalDropped(), 1u);
}

TEST(FabricTest, LossModelDropsButTapStillSees)
{
    EventQueue events;
    Rng rng(1);
    Fabric fabric(events, rng);
    Sink sink;
    fabric.attach(2, sink);
    fabric.setLossModel(std::make_unique<BernoulliLoss>(1.0));

    int tapped = 0;
    int tapped_dropped = 0;
    fabric.addTap([&](const Packet&, bool dropped) {
        ++tapped;
        tapped_dropped += dropped ? 1 : 0;
    });

    fabric.send(makePacket(2));
    events.run();
    EXPECT_TRUE(sink.received.empty());
    EXPECT_EQ(tapped, 1);
    EXPECT_EQ(tapped_dropped, 1);
}

TEST(FabricTest, WireIdsAreMonotonic)
{
    EventQueue events;
    Rng rng(1);
    Fabric fabric(events, rng);
    Sink sink;
    fabric.attach(2, sink);
    const auto id1 = fabric.send(makePacket(2));
    const auto id2 = fabric.send(makePacket(2));
    EXPECT_LT(id1, id2);
    events.run();
    EXPECT_EQ(sink.received[0].wireId, id1);
    EXPECT_EQ(sink.received[1].wireId, id2);
}
