/**
 * @file
 * Tests of the max_rd_atomic outstanding-READ window: with the cap set,
 * the in-order send queue stalls READs beyond the responder's depth, and
 * everything still completes with intact data.
 */

#include <gtest/gtest.h>

#include "capture/capture.hh"
#include "cluster/cluster.hh"

using namespace ibsim;

namespace {

struct RdAtomicFixture : public ::testing::Test
{
    Cluster cluster{rnic::DeviceProfile::connectX4(), 2, 53};
    capture::PacketCapture cap{cluster.fabric()};
    Node& client = cluster.node(0);
    Node& server = cluster.node(1);
    verbs::CompletionQueue& ccq = client.createCq();
    verbs::CompletionQueue& scq = server.createCq();

    verbs::QueuePair
    makeQp(std::uint32_t max_rd_atomic)
    {
        verbs::QpConfig config;
        config.maxRdAtomic = max_rd_atomic;
        auto [cqp, sqp] = cluster.connectRc(client, ccq, server, scq,
                                            config);
        return cqp;
    }
};

} // namespace

TEST_F(RdAtomicFixture, CapThrottlesOutstandingReads)
{
    auto qp = makeQp(4);
    const auto src = server.alloc(64 * 1024);
    const auto dst = client.alloc(64 * 1024);
    auto& smr = server.registerMemory(src, 64 * 1024,
                                      verbs::AccessFlags::pinned());
    auto& cmr = client.registerMemory(dst, 64 * 1024,
                                      verbs::AccessFlags::pinned());

    for (int i = 0; i < 16; ++i)
        qp.postRead(dst + i * 256, cmr.lkey(), src + i * 256, smr.rkey(),
                    256, i);

    // Before any response arrives, at most 4 requests are on the wire.
    std::size_t requests_on_wire = 0;
    for (const auto& e : cap.entries()) {
        if (e.packet.op == net::Opcode::ReadRequest)
            ++requests_on_wire;
    }
    EXPECT_EQ(requests_on_wire, 4u);

    // The window slides as responses land; all 16 complete.
    ASSERT_TRUE(cluster.runUntil(
        [&] { return ccq.totalSuccess() >= 16; }, Time::sec(1)));
}

TEST_F(RdAtomicFixture, WritesAreNotThrottledByTheCap)
{
    auto qp = makeQp(1);
    const auto src = client.alloc(16 * 1024);
    const auto dst = server.alloc(16 * 1024);
    client.memory().touch(src, 16 * 1024);
    auto& cmr = client.registerMemory(src, 16 * 1024,
                                      verbs::AccessFlags::pinned());
    auto& smr = server.registerMemory(dst, 16 * 1024,
                                      verbs::AccessFlags::pinned());

    for (int i = 0; i < 8; ++i)
        qp.postWrite(src, cmr.lkey(), dst + i * 512, smr.rkey(), 128, i);

    std::size_t writes_on_wire = 0;
    for (const auto& e : cap.entries()) {
        if (e.packet.op == net::Opcode::WriteRequest)
            ++writes_on_wire;
    }
    EXPECT_EQ(writes_on_wire, 8u);  // unaffected by maxRdAtomic
}

TEST_F(RdAtomicFixture, ReadStallsBlockLaterWritesInOrder)
{
    auto qp = makeQp(1);
    const auto src = server.alloc(16 * 1024);
    const auto dst = client.alloc(16 * 1024);
    client.memory().touch(dst, 16 * 1024);
    auto& smr = server.registerMemory(src, 16 * 1024,
                                      verbs::AccessFlags::pinned());
    auto& cmr = client.registerMemory(dst, 16 * 1024,
                                      verbs::AccessFlags::pinned());

    qp.postRead(dst, cmr.lkey(), src, smr.rkey(), 128, 1);
    qp.postRead(dst + 512, cmr.lkey(), src + 512, smr.rkey(), 128, 2);
    qp.postWrite(dst, cmr.lkey(), src + 1024, smr.rkey(), 64, 3);

    // Only the first READ left; the 2nd READ (over the cap) and the
    // WRITE behind it are queued in order.
    std::size_t sent = cap.size();
    EXPECT_EQ(sent, 1u);

    ASSERT_TRUE(cluster.runUntil(
        [&] { return ccq.totalSuccess() >= 3; }, Time::sec(1)));
}

TEST_F(RdAtomicFixture, CapWithOdpFaultsStillCompletes)
{
    auto qp = makeQp(2);
    const auto src = server.alloc(64 * 1024);
    const auto dst = client.alloc(64 * 1024);
    auto& smr = server.registerMemory(src, 64 * 1024,
                                      verbs::AccessFlags::odp());
    auto& cmr = client.registerMemory(dst, 64 * 1024,
                                      verbs::AccessFlags::pinned());
    std::vector<std::uint8_t> data(64 * 1024);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i % 251);
    server.memory().write(src, data);

    for (int i = 0; i < 32; ++i)
        qp.postRead(dst + i * 2048, cmr.lkey(), src + i * 2048,
                    smr.rkey(), 512, i);
    ASSERT_TRUE(cluster.runUntil(
        [&] { return ccq.totalSuccess() >= 32; }, Time::sec(10)));
    for (int i = 0; i < 32; ++i) {
        EXPECT_EQ(client.memory().read(dst + i * 2048, 512),
                  server.memory().read(src + i * 2048, 512));
    }
}
