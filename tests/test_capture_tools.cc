/**
 * @file
 * Tests of the capture toolchain: recording, filtering, trace formatting,
 * summaries, and the pitfall detectors on synthetic and real captures.
 */

#include <gtest/gtest.h>

#include "capture/analysis.hh"
#include "capture/capture.hh"
#include "capture/trace_format.hh"
#include "cluster/cluster.hh"
#include "pitfall/detectors.hh"

using namespace ibsim;
using namespace ibsim::capture;

namespace {

/** A two-node cluster with a capture and one pinned READ issued. */
struct CaptureFixture : public ::testing::Test
{
    Cluster cluster{rnic::DeviceProfile::connectX4(), 2, 7};
    PacketCapture capture{cluster.fabric()};
    Node& client = cluster.node(0);
    Node& server = cluster.node(1);
    verbs::CompletionQueue& cq = client.createCq();
    verbs::CompletionQueue& scq = server.createCq();

    void
    issueRead()
    {
        auto [cqp, sqp] = cluster.connectRc(client, cq, server, scq);
        const auto src = server.alloc(4096);
        const auto dst = client.alloc(4096);
        auto& smr = server.registerMemory(src, 4096,
                                          verbs::AccessFlags::pinned());
        auto& cmr = client.registerMemory(dst, 4096,
                                          verbs::AccessFlags::pinned());
        cqp.postRead(dst, cmr.lkey(), src, smr.rkey(), 100, 1);
        cluster.runUntil([&] { return cq.totalCompletions() == 1; });
    }
};

} // namespace

TEST_F(CaptureFixture, RecordsRequestAndResponse)
{
    issueRead();
    ASSERT_EQ(capture.size(), 2u);
    EXPECT_EQ(capture.entries()[0].packet.op, net::Opcode::ReadRequest);
    EXPECT_EQ(capture.entries()[1].packet.op, net::Opcode::ReadResponse);
    EXPECT_LT(capture.entries()[0].when, capture.entries()[1].when);
    // Payload bytes are stripped to keep flood captures small.
    EXPECT_TRUE(capture.entries()[1].packet.payload.empty());
    EXPECT_EQ(capture.entries()[1].packet.length, 100u);
}

TEST_F(CaptureFixture, RecordingCanBePaused)
{
    capture.setRecording(false);
    issueRead();
    EXPECT_EQ(capture.size(), 0u);
}

TEST_F(CaptureFixture, FilterAndConnectionSelectors)
{
    issueRead();
    auto reqs = capture.filter([](const CaptureEntry& e) {
        return e.packet.op == net::Opcode::ReadRequest;
    });
    EXPECT_EQ(reqs.size(), 1u);

    const auto qpn_a = capture.entries()[0].packet.srcQpn;
    const auto qpn_b = capture.entries()[0].packet.dstQpn;
    EXPECT_EQ(capture.connection(qpn_a, qpn_b).size(), 2u);
    EXPECT_EQ(capture.connection(9999, 9998).size(), 0u);
}

TEST_F(CaptureFixture, FlatAndWorkflowFormats)
{
    issueRead();
    const std::string flat = formatFlat(capture);
    EXPECT_NE(flat.find("READ_REQ"), std::string::npos);
    EXPECT_NE(flat.find("READ_RESP"), std::string::npos);

    const std::string flow = formatWorkflow(capture, client.lid());
    EXPECT_NE(flow.find("-->"), std::string::npos);
    EXPECT_NE(flow.find("<--"), std::string::npos);
    // Client sends the request (left column, arrow out).
    const auto req_pos = flow.find("READ_REQ");
    const auto resp_pos = flow.find("READ_RESP");
    ASSERT_NE(req_pos, std::string::npos);
    ASSERT_NE(resp_pos, std::string::npos);
    EXPECT_LT(req_pos, resp_pos);
}

TEST_F(CaptureFixture, SummaryCountsOpcodesAndGaps)
{
    issueRead();
    const auto s = summarize(capture);
    EXPECT_EQ(s.totalPackets, 2u);
    EXPECT_EQ(s.droppedPackets, 0u);
    EXPECT_EQ(s.retransmissions, 0u);
    EXPECT_EQ(s.perOpcode.at(net::Opcode::ReadRequest), 1u);
    EXPECT_GT(s.largestGap, Time());
    EXPECT_FALSE(s.str().empty());
}

TEST(DetectorSynthetic, DammingNeedsRetransmissionAfterGap)
{
    // Build a capture-like sequence by hand through a fabric tap.
    EventQueue events;
    Rng rng(1);
    net::Fabric fabric(events, rng);
    PacketCapture cap(fabric);

    auto send_at = [&](Time when, net::Opcode op, bool rexmit,
                       std::uint32_t psn) {
        events.schedule(when, [&fabric, op, rexmit, psn] {
            net::Packet p;
            p.op = op;
            p.srcQpn = 100;
            p.dstQpn = 200;
            p.dstLid = 99;  // vanishes; the tap still records
            p.psn = psn;
            p.retransmission = rexmit;
            fabric.send(std::move(p));
        });
    };

    send_at(Time::ms(0), net::Opcode::ReadRequest, false, 0);
    send_at(Time::ms(1), net::Opcode::ReadRequest, false, 1);
    // Long silence, then a timeout-driven retransmission.
    send_at(Time::ms(538), net::Opcode::ReadRequest, true, 1);
    events.run();

    auto damming = pitfall::detectDamming(cap);
    ASSERT_EQ(damming.size(), 1u);
    EXPECT_EQ(damming[0].qpn, 100u);
    EXPECT_EQ(damming[0].stuckPsn, 1u);
    EXPECT_NEAR(damming[0].gap.toMs(), 537.0, 1.0);

    // No flood: each PSN retransmitted at most once.
    EXPECT_TRUE(pitfall::detectFlood(cap).empty());
    EXPECT_NE(pitfall::formatReport(damming).find("packet damming"),
              std::string::npos);
}

TEST(DetectorSynthetic, FloodNeedsRepeatedRetransmissions)
{
    EventQueue events;
    Rng rng(1);
    net::Fabric fabric(events, rng);
    PacketCapture cap(fabric);

    for (int i = 0; i < 30; ++i) {
        events.schedule(Time::us(500) * static_cast<double>(i),
                        [&fabric, i] {
                            net::Packet p;
                            p.op = net::Opcode::ReadRequest;
                            p.srcQpn = 42;
                            p.dstLid = 99;
                            p.psn = 7;
                            p.retransmission = i > 0;
                            fabric.send(std::move(p));
                        });
    }
    events.run();

    auto floods = pitfall::detectFlood(cap);
    ASSERT_EQ(floods.size(), 1u);
    EXPECT_EQ(floods[0].qpn, 42u);
    EXPECT_EQ(floods[0].psn, 7u);
    EXPECT_EQ(floods[0].retransmissions, 29u);
    EXPECT_TRUE(pitfall::detectDamming(cap).empty());
    EXPECT_NE(pitfall::formatReport(floods).find("packet flood"),
              std::string::npos);
}

TEST(DetectorSynthetic, EmptyReportsSaySo)
{
    EXPECT_NE(pitfall::formatReport(std::vector<pitfall::DammingEvent>{})
                  .find("no damming"),
              std::string::npos);
    EXPECT_NE(pitfall::formatReport(std::vector<pitfall::FloodEvent>{})
                  .find("no flood"),
              std::string::npos);
}
