/**
 * @file
 * Golden workflow traces: the packet sequences of the paper's Figs. 1, 5
 * and 8, pinned opcode-for-opcode so the reproduction cannot silently
 * drift.
 */

#include <gtest/gtest.h>

#include <vector>

#include "capture/capture.hh"
#include "capture/trace_format.hh"
#include "pitfall/microbench.hh"

using namespace ibsim;
using namespace ibsim::pitfall;

namespace {

struct Step
{
    net::Opcode op;
    bool fromClient;
    bool retransmission;
};

/** Compare a capture against an expected opcode/direction sequence. */
void
expectTrace(const capture::PacketCapture& cap, std::uint16_t client_lid,
            const std::vector<Step>& expected)
{
    ASSERT_EQ(cap.size(), expected.size())
        << capture::formatFlat(cap);
    for (std::size_t i = 0; i < expected.size(); ++i) {
        const auto& e = cap.entries()[i];
        EXPECT_EQ(e.packet.op, expected[i].op) << "packet " << i;
        EXPECT_EQ(e.packet.srcLid == client_lid,
                  expected[i].fromClient)
            << "packet " << i;
        EXPECT_EQ(e.packet.retransmission, expected[i].retransmission)
            << "packet " << i;
    }
}

} // namespace

TEST(WorkflowTraces, Fig1ServerSideOdp)
{
    MicroBenchConfig config;
    config.numOps = 1;
    config.interval = Time();
    config.odpMode = OdpMode::ServerSide;
    MicroBenchmark bench(config, rnic::DeviceProfile::knl(), 2);
    ASSERT_TRUE(bench.run().completedAll);

    using Op = net::Opcode;
    expectTrace(*bench.packetCapture(), bench.client().lid(),
                {{Op::ReadRequest, true, false},    // request
                 {Op::RnrNak, false, false},        // page fault -> RNR
                 {Op::ReadResponse, false, false},  // proactive (discarded)
                 {Op::ReadRequest, true, true},     // after the RNR wait
                 {Op::ReadResponse, false, false}});
}

TEST(WorkflowTraces, Fig1ClientSideOdp)
{
    MicroBenchConfig config;
    config.numOps = 1;
    config.interval = Time();
    config.odpMode = OdpMode::ClientSide;
    MicroBenchmark bench(config, rnic::DeviceProfile::knl(), 2);
    ASSERT_TRUE(bench.run().completedAll);

    // Request, response (discarded on the local fault), then one or more
    // blind retransmission rounds ending in an accepted response. The
    // round count depends on the fault latency draw; check the structure.
    const auto& entries = bench.packetCapture()->entries();
    ASSERT_GE(entries.size(), 4u);
    EXPECT_EQ(entries[0].packet.op, net::Opcode::ReadRequest);
    EXPECT_FALSE(entries[0].packet.retransmission);
    EXPECT_EQ(entries[1].packet.op, net::Opcode::ReadResponse);
    for (std::size_t i = 2; i < entries.size(); i += 2) {
        EXPECT_EQ(entries[i].packet.op, net::Opcode::ReadRequest);
        EXPECT_TRUE(entries[i].packet.retransmission) << i;
        EXPECT_EQ(entries[i + 1].packet.op, net::Opcode::ReadResponse);
    }
    // No RNR NAK anywhere: this is the client-side path.
    for (const auto& e : entries)
        EXPECT_NE(e.packet.op, net::Opcode::RnrNak);
}

TEST(WorkflowTraces, Fig5ServerSideDamming)
{
    MicroBenchConfig config;
    config.numOps = 2;
    config.interval = Time::ms(1);
    config.odpMode = OdpMode::ServerSide;
    MicroBenchmark bench(config, rnic::DeviceProfile::knl(), 2);
    ASSERT_TRUE(bench.run().completedAll);

    using Op = net::Opcode;
    expectTrace(*bench.packetCapture(), bench.client().lid(),
                {{Op::ReadRequest, true, false},    // 1st request
                 {Op::RnrNak, false, false},
                 {Op::ReadResponse, false, false},  // proactive, discarded
                 {Op::ReadRequest, true, true},     // RNR burst: 1st
                 {Op::ReadRequest, true, false},    // RNR burst: 2nd [dammed]
                 {Op::ReadResponse, false, false},  // 1st only
                 {Op::ReadRequest, true, true},     // timeout retransmission
                 {Op::ReadResponse, false, false}});

    // The dammed mark sits exactly on the second READ's first emission.
    const auto& entries = bench.packetCapture()->entries();
    EXPECT_TRUE(entries[4].packet.dammed);
    EXPECT_FALSE(entries[3].packet.dammed);
    // The timeout gap precedes the final retransmission.
    const Time gap = entries[6].when - entries[5].when;
    EXPECT_GT(gap.toMs(), 400.0);
}

TEST(WorkflowTraces, Fig8PsnSequenceErrorRecovery)
{
    MicroBenchConfig config;
    config.numOps = 3;
    config.interval = Time::ms(2.5);
    config.odpMode = OdpMode::BothSide;
    MicroBenchmark bench(config, rnic::DeviceProfile::knl(), 11);
    auto r = bench.run();
    ASSERT_TRUE(r.completedAll);
    EXPECT_EQ(r.timeouts, 0u);

    // Structural pins rather than the full (jitter-sensitive) trace: one
    // PSN-sequence-error NAK from the server, a dammed second request,
    // and recovery without any ~500 ms silent gap.
    const auto& entries = bench.packetCapture()->entries();
    std::size_t seq_naks = 0;
    std::size_t dammed = 0;
    Time largest_gap;
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const auto& p = entries[i].packet;
        if (p.op == net::Opcode::Nak &&
            p.nak == net::NakCode::PsnSequenceError)
            ++seq_naks;
        if (p.dammed)
            ++dammed;
        if (i > 0) {
            largest_gap = std::max(largest_gap,
                                   entries[i].when - entries[i - 1].when);
        }
    }
    EXPECT_EQ(seq_naks, 1u);
    EXPECT_GE(dammed, 1u);
    EXPECT_LT(largest_gap.toMs(), 100.0);  // no transport timeout
}
