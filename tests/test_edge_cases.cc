/**
 * @file
 * Edge-case coverage: deregistration, event-queue compaction under mass
 * cancellation, time extremes, RNG tails, and error paths not exercised
 * elsewhere.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.hh"
#include "simcore/event_queue.hh"
#include "simcore/rng.hh"
#include "simcore/stats.hh"

using namespace ibsim;

TEST(EdgeCases, DeregisteredKeyFailsRemoteAccess)
{
    Cluster cluster(rnic::DeviceProfile::connectX4(), 2, 61);
    Node& client = cluster.node(0);
    Node& server = cluster.node(1);
    auto& ccq = client.createCq();
    auto& scq = server.createCq();
    auto [cqp, sqp] = cluster.connectRc(client, ccq, server, scq);

    const auto src = server.alloc(4096);
    const auto dst = client.alloc(4096);
    auto& smr = server.registerMemory(src, 4096,
                                      verbs::AccessFlags::pinned());
    auto& cmr = client.registerMemory(dst, 4096,
                                      verbs::AccessFlags::pinned());

    // Works before deregistration...
    cqp.postRead(dst, cmr.lkey(), src, smr.rkey(), 64, 1);
    ASSERT_TRUE(cluster.runUntil(
        [&] { return ccq.totalCompletions() == 1; }, Time::sec(1)));
    EXPECT_TRUE(ccq.poll()[0].ok());

    // ...and NAKs after: the rkey no longer resolves.
    server.deregisterMemory(smr);
    auto cqp2 = cluster
                    .connectRc(client, ccq, server, scq)
                    .first;  // fresh QP: the old one is fine, but reuse
    cqp2.postRead(dst, cmr.lkey(), src, smr.rkey(), 64, 2);
    ASSERT_TRUE(cluster.runUntil(
        [&] { return ccq.totalCompletions() == 2; }, Time::sec(1)));
    EXPECT_EQ(ccq.poll()[0].status, verbs::WcStatus::RemAccessErr);
}

TEST(EdgeCases, EventQueueCompactionUnderMassCancel)
{
    EventQueue q;
    // Far-future timers cancelled in bulk trigger heap compaction.
    std::vector<EventHandle> handles;
    int fired = 0;
    for (int i = 0; i < 5000; ++i)
        handles.push_back(
            q.schedule(Time::sec(100 + i), [&] { ++fired; }));
    int kept = 0;
    q.schedule(Time::us(1), [&] { ++kept; });
    for (auto& h : handles)
        EXPECT_TRUE(q.cancel(h));
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(kept, 1);
    EXPECT_EQ(q.now(), Time::us(1));  // never visited the cancelled tail
}

TEST(EdgeCases, CancelInterleavedWithExecution)
{
    EventQueue q;
    int fired = 0;
    std::vector<EventHandle> handles;
    for (int i = 0; i < 2000; ++i)
        handles.push_back(
            q.schedule(Time::us(i + 1), [&] { ++fired; }));
    // Cancel every other event, some already past once we start running.
    for (std::size_t i = 0; i < handles.size(); i += 2)
        q.cancel(handles[i]);
    q.run();
    EXPECT_EQ(fired, 1000);
}

TEST(EdgeCases, TimeExtremes)
{
    EXPECT_GT(Time::max(), Time::sec(1e9));
    EXPECT_EQ(Time::fromNs(-5).toNs(), -5);
    EXPECT_LT(Time::fromNs(-5), Time());
    EXPECT_EQ((Time::us(1) * 0.0).toNs(), 0);
}

TEST(EdgeCases, RngExponentialMean)
{
    Rng rng(3);
    double sum = 0;
    constexpr int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(Time::us(100)).toUs();
    EXPECT_NEAR(sum / n, 100.0, 3.0);
}

TEST(EdgeCases, ZeroCackDisablesTimeoutEntirely)
{
    // C_ack = 0 disables the timer (IBA): a lost packet is never
    // recovered and never aborts either.
    Cluster cluster(rnic::DeviceProfile::connectX4(), 1, 5);
    Node& node = cluster.node(0);
    auto& cq = node.createCq();
    verbs::QpConfig config;
    config.cack = 0;
    auto qp = node.createQp(cq, config);
    qp.connect(/*dst_lid=*/404, 1);

    const auto buf = node.alloc(4096);
    auto& mr = node.registerMemory(buf, 4096,
                                   verbs::AccessFlags::pinned());
    qp.postRead(buf, mr.lkey(), 0x40000000, 1, 64, 1);
    cluster.drain(Time::sec(100));
    EXPECT_EQ(cq.totalCompletions(), 0u);
    EXPECT_FALSE(qp.inError());
    EXPECT_EQ(qp.stats().timeouts, 0u);
}

TEST(EdgeCases, SameNodeLoopbackQp)
{
    // A QP pair within one node: loopback through the fabric.
    Cluster cluster(rnic::DeviceProfile::connectX4(), 1, 5);
    Node& node = cluster.node(0);
    auto& cq = node.createCq();
    auto qa = node.createQp(cq, {});
    auto qb = node.createQp(cq, {});
    qa.connect(node.lid(), qb.qpn());
    qb.connect(node.lid(), qa.qpn());

    const auto src = node.alloc(4096);
    const auto dst = node.alloc(4096);
    node.memory().write(src, std::vector<std::uint8_t>(32, 0x99));
    auto& mr = node.registerMemory(src, 4096,
                                   verbs::AccessFlags::pinned());
    auto& mr2 = node.registerMemory(dst, 4096,
                                    verbs::AccessFlags::pinned());
    qa.postRead(dst, mr2.lkey(), src, mr.rkey(), 32, 1);
    ASSERT_TRUE(cluster.runUntil(
        [&] { return cq.totalCompletions() == 1; }, Time::sec(1)));
    EXPECT_EQ(node.memory().read(dst, 32),
              std::vector<std::uint8_t>(32, 0x99));
}

TEST(EdgeCases, HistogramSingleBucket)
{
    Histogram h(0.0, 1.0, 1);
    h.add(0.5);
    h.add(2.0);
    EXPECT_EQ(h.count(0), 2u);
}
