/**
 * @file
 * Tests of the Sec. IX-A workaround components: the dummy-communication
 * timer, the flood-rescue QP pool, and the experiment harness utilities.
 */

#include <gtest/gtest.h>

#include "pitfall/experiment.hh"
#include "pitfall/microbench.hh"
#include "pitfall/workarounds.hh"

using namespace ibsim;
using namespace ibsim::pitfall;

TEST(DummyCommTimer, PostsPeriodicallyAndStops)
{
    Cluster cluster(rnic::DeviceProfile::connectX4(), 2, 5);
    Node& client = cluster.node(0);
    Node& server = cluster.node(1);
    auto& ccq = client.createCq();
    auto& scq = server.createCq();
    auto [cqp, sqp] = cluster.connectRc(client, ccq, server, scq);

    const auto dl = client.alloc(4096);
    const auto dr = server.alloc(4096);
    auto& cmr = client.registerMemory(dl, 4096,
                                      verbs::AccessFlags::pinned());
    auto& smr = server.registerMemory(dr, 4096,
                                      verbs::AccessFlags::pinned());

    DummyCommTimer timer(cluster, cqp, dl, cmr.lkey(), dr, smr.rkey(),
                         Time::ms(2));
    EXPECT_FALSE(timer.running());
    timer.start();
    timer.start();  // idempotent
    EXPECT_TRUE(timer.running());

    cluster.advance(Time::ms(11));
    EXPECT_EQ(timer.dummiesPosted(), 5u);
    // Dummy completions carry the reserved wr_id namespace.
    for (const auto& wc : ccq.poll()) {
        EXPECT_GE(wc.wrId, DummyCommTimer::dummyWrIdBase);
        EXPECT_TRUE(wc.ok());
    }

    timer.stop();
    cluster.advance(Time::ms(10));
    EXPECT_EQ(timer.dummiesPosted(), 5u);  // no more posts
}

TEST(DummyCommTimer, DefeatsDammingInTheMicrobench)
{
    // The headline A/B: the 2-READ damming case recovers via the dummy's
    // PSN-sequence-error NAK instead of the 537 ms timeout.
    MicroBenchConfig config;
    config.numOps = 2;
    config.interval = Time::ms(1);
    config.odpMode = OdpMode::BothSide;
    config.capture = false;
    MicroBenchmark bench(config, rnic::DeviceProfile::knl(), 7);

    Node& client = bench.client();
    Node& server = bench.server();
    const auto dl = client.alloc(4096);
    const auto dr = server.alloc(4096);
    auto& cmr = client.registerMemory(dl, 4096,
                                      verbs::AccessFlags::pinned());
    auto& smr = server.registerMemory(dr, 4096,
                                      verbs::AccessFlags::pinned());

    std::unique_ptr<DummyCommTimer> timer;
    bench.cluster().events().scheduleAfter(Time::us(1), [&] {
        timer = std::make_unique<DummyCommTimer>(
            bench.cluster(), bench.clientQps()[0], dl, cmr.lkey(), dr,
            smr.rkey(), Time::ms(5));
        timer->start();
    });

    auto r = bench.run();
    timer->stop();
    ASSERT_TRUE(r.completedAll);
    EXPECT_EQ(r.timeouts, 0u);
    EXPECT_GE(r.seqNaksReceived, 1u);  // the dummy provoked recovery
    EXPECT_LT(r.executionTime.toMs(), 30.0);
}

TEST(FloodRescue, RotatesThePoolAndDeliversData)
{
    Cluster cluster(rnic::DeviceProfile::connectX4(), 2, 5);
    Node& client = cluster.node(0);
    Node& server = cluster.node(1);
    auto& cq = client.createCq();

    const auto src = server.alloc(4096);
    const auto dst = client.alloc(4096);
    auto& smr = server.registerMemory(src, 4096,
                                      verbs::AccessFlags::pinned());
    auto& cmr = client.registerMemory(dst, 4096,
                                      verbs::AccessFlags::pinned());
    server.memory().write(src, std::vector<std::uint8_t>(64, 0x66));

    FloodRescue rescue(cluster, client, server, cq, verbs::QpConfig{},
                       /*pool_size=*/3);
    auto& q1 = rescue.rescue(dst, cmr.lkey(), src, smr.rkey(), 64, 1);
    auto& q2 = rescue.rescue(dst, cmr.lkey(), src, smr.rkey(), 64, 2);
    auto& q3 = rescue.rescue(dst, cmr.lkey(), src, smr.rkey(), 64, 3);
    auto& q4 = rescue.rescue(dst, cmr.lkey(), src, smr.rkey(), 64, 4);
    EXPECT_NE(q1.qpn(), q2.qpn());
    EXPECT_NE(q2.qpn(), q3.qpn());
    EXPECT_EQ(q1.qpn(), q4.qpn());  // round-robin wrap
    EXPECT_EQ(rescue.rescuesIssued(), 4u);

    ASSERT_TRUE(cluster.runUntil(
        [&] { return cq.totalSuccess() >= 4; }, Time::sec(1)));
    EXPECT_EQ(client.memory().read(dst, 64),
              std::vector<std::uint8_t>(64, 0x66));
}

TEST(ExperimentHelpers, RunTrialsSeedsDeterministically)
{
    std::vector<std::uint64_t> seeds;
    auto acc = runTrials(5, [&](std::uint64_t seed) {
        seeds.push_back(seed);
        return static_cast<double>(seed);
    }, /*seed_base=*/100);
    EXPECT_EQ(seeds, (std::vector<std::uint64_t>{101, 102, 103, 104,
                                                 105}));
    EXPECT_DOUBLE_EQ(acc.mean(), 103.0);
}

TEST(ExperimentHelpers, ProbabilityPercent)
{
    const double p = probabilityPercent(
        10, [](std::uint64_t seed) { return seed % 2 == 0; });
    EXPECT_DOUBLE_EQ(p, 50.0);
}

TEST(ExperimentHelpers, TableFormatting)
{
    EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::fmt(std::uint64_t{42}), "42");
}
