/**
 * @file
 * Unit tests of the simulation kernel: Time, EventQueue, Rng and the
 * statistics toolkit.
 */

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "simcore/event_queue.hh"
#include "simcore/inline_function.hh"
#include "simcore/log.hh"
#include "simcore/rng.hh"
#include "simcore/stats.hh"
#include "simcore/time.hh"

using namespace ibsim;

TEST(TimeTest, UnitConstructorsAgree)
{
    EXPECT_EQ(Time::us(1).toNs(), 1000);
    EXPECT_EQ(Time::ms(1).toNs(), 1000000);
    EXPECT_EQ(Time::sec(1).toNs(), 1000000000);
    EXPECT_EQ(Time::ms(1.28).toNs(), 1280000);
    EXPECT_DOUBLE_EQ(Time::ms(250).toSec(), 0.25);
}

TEST(TimeTest, ArithmeticAndComparisons)
{
    const Time a = Time::us(10);
    const Time b = Time::us(4);
    EXPECT_EQ((a + b).toNs(), 14000);
    EXPECT_EQ((a - b).toNs(), 6000);
    EXPECT_EQ((a * 2.5).toNs(), 25000);
    EXPECT_EQ((a / 2.0).toNs(), 5000);
    EXPECT_DOUBLE_EQ(a.ratio(b), 2.5);
    EXPECT_LT(b, a);
    EXPECT_GT(Time::max(), Time::sec(1e6));

    Time c = a;
    c += b;
    EXPECT_EQ(c, Time::us(14));
    c -= a;
    EXPECT_EQ(c, b);
}

TEST(TimeTest, StringPicksReadableUnit)
{
    EXPECT_EQ(Time::ns(12).str(), "12 ns");
    EXPECT_NE(Time::us(3.5).str().find("us"), std::string::npos);
    EXPECT_NE(Time::ms(7).str().find("ms"), std::string::npos);
    EXPECT_NE(Time::sec(2).str().find("s"), std::string::npos);
}

TEST(EventQueueTest, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(Time::us(3), [&] { order.push_back(3); });
    q.schedule(Time::us(1), [&] { order.push_back(1); });
    q.schedule(Time::us(2), [&] { order.push_back(2); });
    EXPECT_TRUE(q.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), Time::us(3));
    EXPECT_EQ(q.executed(), 3u);
}

TEST(EventQueueTest, SameTimeIsFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(Time::us(5), [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, CancelPreventsExecution)
{
    EventQueue q;
    int fired = 0;
    auto h = q.schedule(Time::us(1), [&] { ++fired; });
    q.schedule(Time::us(2), [&] { ++fired; });
    EXPECT_TRUE(q.cancel(h));
    EXPECT_FALSE(q.cancel(h));  // double cancel is a no-op
    q.run();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, CancelFromInsideAnEvent)
{
    EventQueue q;
    int fired = 0;
    EventHandle later;
    q.schedule(Time::us(1), [&] { q.cancel(later); });
    later = q.schedule(Time::us(2), [&] { ++fired; });
    q.run();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueueTest, RunHonorsLimit)
{
    EventQueue q;
    int fired = 0;
    q.schedule(Time::us(1), [&] { ++fired; });
    q.schedule(Time::ms(1), [&] { ++fired; });
    EXPECT_FALSE(q.run(Time::us(10)));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.now(), Time::us(10));
    EXPECT_EQ(q.pending(), 1u);
    EXPECT_TRUE(q.run());
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, AdvanceLandsExactlyOnTarget)
{
    EventQueue q;
    int fired = 0;
    q.schedule(Time::us(7), [&] { ++fired; });
    q.advance(Time::us(3));
    EXPECT_EQ(q.now(), Time::us(3));
    EXPECT_EQ(fired, 0);
    q.advance(Time::us(10));
    EXPECT_EQ(q.now(), Time::us(13));
    EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, RunUntilStopsAtPredicate)
{
    EventQueue q;
    int count = 0;
    for (int i = 1; i <= 10; ++i)
        q.schedule(Time::us(i), [&] { ++count; });
    EXPECT_TRUE(q.runUntil([&] { return count == 4; }));
    EXPECT_EQ(count, 4);
    EXPECT_EQ(q.now(), Time::us(4));
    // Predicate never satisfied: drains and reports failure.
    EXPECT_FALSE(q.runUntil([&] { return count == 99; }));
    EXPECT_EQ(count, 10);
}

TEST(EventQueueTest, EventsCanScheduleEvents)
{
    EventQueue q;
    int depth = 0;
    std::function<void()> recur = [&] {
        if (++depth < 5)
            q.scheduleAfter(Time::us(1), recur);
    };
    q.scheduleAfter(Time::us(1), recur);
    q.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(q.now(), Time::us(5));
}

TEST(EventQueueTest, CancelAfterExecuteIsBoundedNoOp)
{
    // Regression: the old kernel leaked one cancelled_-set entry per
    // cancel of an already-executed handle (and corrupted pending()).
    // With generation-counted handles the call is a pure O(1) no-op.
    EventQueue q;
    std::vector<EventHandle> handles;
    handles.reserve(10000);
    int fired = 0;
    for (int i = 0; i < 10000; ++i)
        handles.push_back(q.schedule(Time::ns(i), [&] { ++fired; }));
    q.run();
    ASSERT_EQ(fired, 10000);

    const auto before = q.kernelStats();
    for (auto& h : handles)
        EXPECT_FALSE(q.cancel(h));
    const auto after = q.kernelStats();
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_EQ(after.poolNodes, before.poolNodes);
    EXPECT_EQ(after.freeNodes, after.poolNodes);  // everything reclaimed
    EXPECT_EQ(after.cancelledTotal, before.cancelledTotal);

    // And the queue still works normally afterwards.
    q.scheduleAfter(Time::ns(1), [&] { ++fired; });
    q.run();
    EXPECT_EQ(fired, 10001);
}

TEST(EventQueueTest, HandleGenerationsPreventAliasedCancel)
{
    EventQueue q;
    int later = 0;
    auto stale = q.schedule(Time::ns(10), [] {});
    q.run();
    // The next schedule recycles the executed event's pool slot; the
    // stale handle's generation no longer matches and must not cancel it.
    q.schedule(Time::ns(20), [&] { ++later; });
    EXPECT_FALSE(q.cancel(stale));
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_EQ(later, 1);
}

TEST(EventQueueTest, CancelledOverflowTimersAreSwept)
{
    // Far-future timers (beyond the ~4.3 s wheel horizon) that get
    // cancelled must not pin pool slots until their distant expiry.
    EventQueue q;
    std::vector<EventHandle> handles;
    handles.reserve(5000);
    for (int i = 0; i < 5000; ++i)
        handles.push_back(q.schedule(Time::sec(100 + i), [] {}));
    EXPECT_EQ(q.kernelStats().overflowNodes, 5000u);
    for (auto& h : handles)
        EXPECT_TRUE(q.cancel(h));
    const auto stats = q.kernelStats();
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_LE(stats.overflowNodes, 1500u);  // sweeps dropped the bulk
    EXPECT_GE(stats.freeNodes, 3500u);
}

TEST(EventQueueTest, OrderPreservedAcrossTiers)
{
    // Events land in three different tiers (due heap / wheel levels /
    // overflow heap) depending on horizon; execution order must still be
    // exactly (time, insertion order).
    EventQueue q;
    const std::array<std::int64_t, 12> ns = {
        5,            3000,         1000000,      500000000,
        10000000000,  5,            3000,         120000000000,
        1000000,      500000000,    10000000000,  5,
    };
    std::vector<std::pair<std::int64_t, int>> order;
    for (int i = 0; i < static_cast<int>(ns.size()); ++i) {
        q.schedule(Time::ns(ns[i]),
                   [&order, t = ns[i], i] { order.emplace_back(t, i); });
    }
    q.run();
    auto expected = [&] {
        std::vector<std::pair<std::int64_t, int>> v;
        for (int i = 0; i < static_cast<int>(ns.size()); ++i)
            v.emplace_back(ns[i], i);
        std::stable_sort(v.begin(), v.end(),
                         [](const auto& a, const auto& b) {
                             return a.first < b.first;
                         });
        return v;
    }();
    EXPECT_EQ(order, expected);
}

TEST(EventQueueTest, SameTimeFifoAcrossOverflowAndWheel)
{
    // Two events at the same instant, one scheduled while that instant
    // was beyond the wheel horizon (overflow tier) and one scheduled
    // later from nearby (wheel tier): insertion order must win.
    EventQueue q;
    std::vector<int> order;
    const Time t = Time::sec(5);  // beyond the ~4.3 s horizon at time 0
    q.schedule(t, [&] { order.push_back(1); });
    q.schedule(Time::sec(4.9), [&, t] {
        q.schedule(t, [&] { order.push_back(2); });
    });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(InlineFunctionTest, InlineAndHeapFallbackBothWork)
{
    int calls = 0;
    auto small = [&calls] { ++calls; };
    static_assert(InlineFunction<48>::storesInline<decltype(small)>);
    InlineFunction<48> f(small);
    EXPECT_TRUE(static_cast<bool>(f));
    f();
    EXPECT_EQ(calls, 1);

    std::array<char, 128> big{};
    big[0] = 7;
    auto large = [big, &calls] { calls += big[0]; };
    static_assert(!InlineFunction<48>::storesInline<decltype(large)>);
    InlineFunction<48> g(large);
    g();
    EXPECT_EQ(calls, 8);

    InlineFunction<48> h = std::move(g);
    EXPECT_FALSE(static_cast<bool>(g));
    ASSERT_TRUE(static_cast<bool>(h));
    h();
    EXPECT_EQ(calls, 15);
}

TEST(InlineFunctionTest, CaptureDestroyedExactlyOnce)
{
    auto token = std::make_shared<int>(0);
    {
        InlineFunction<48> f([token] {});
        EXPECT_EQ(token.use_count(), 2);
        InlineFunction<48> g = std::move(f);  // move, not copy
        EXPECT_EQ(token.use_count(), 2);
        g.reset();
        EXPECT_EQ(token.use_count(), 1);
        g.reset();  // double reset is harmless
    }
    EXPECT_EQ(token.use_count(), 1);
}

TEST(InlineFunctionTest, HotPathCapturesStayInline)
{
    // The shapes every simulator hot path schedules: a couple of
    // pointers and integers. These must never take the heap branch.
    struct Host
    {
        void fire() {}
    } host;
    std::uint32_t idx = 0;
    std::uint64_t a = 0, b = 0;
    auto timer = [&host] { host.fire(); };
    auto pooled = [&host, idx] { (void)idx; host.fire(); };
    auto ranged = [&host, a, b] { (void)a, (void)b; host.fire(); };
    static_assert(EventQueue::Callback::storesInline<decltype(timer)>);
    static_assert(EventQueue::Callback::storesInline<decltype(pooled)>);
    static_assert(EventQueue::Callback::storesInline<decltype(ranged)>);
    EventQueue q;
    q.scheduleAfter(Time::ns(1), timer);
    q.scheduleAfter(Time::ns(2), pooled);
    q.scheduleAfter(Time::ns(3), ranged);
    EXPECT_TRUE(q.run());
}

TEST(RngTest, SameSeedSameSequence)
{
    Rng a(99);
    Rng b(99);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
}

TEST(RngTest, ReseedRestartsSequence)
{
    Rng a(5);
    const double first = a.uniform(0, 1);
    a.uniform(0, 1);
    a.reseed(5);
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), first);
}

TEST(RngTest, RangesRespected)
{
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(2.0, 3.0);
        EXPECT_GE(u, 2.0);
        EXPECT_LT(u, 3.0);
        const auto n = rng.uniformInt(-3, 3);
        EXPECT_GE(n, -3);
        EXPECT_LE(n, 3);
        const Time t = rng.uniformTime(Time::us(250), Time::us(1000));
        EXPECT_GE(t, Time::us(250));
        EXPECT_LT(t, Time::us(1000));
    }
}

TEST(RngTest, JitterStaysWithinSpread)
{
    Rng rng(1);
    const Time base = Time::ms(1);
    for (int i = 0; i < 1000; ++i) {
        const Time t = rng.jitter(base, 0.1);
        EXPECT_GE(t.toNs(), 900000);
        EXPECT_LE(t.toNs(), 1100000);
    }
}

TEST(RngTest, DegenerateTimeRange)
{
    Rng rng(1);
    EXPECT_EQ(rng.uniformTime(Time::us(5), Time::us(5)), Time::us(5));
    EXPECT_EQ(rng.uniformTime(Time::us(5), Time::us(3)), Time::us(5));
}

TEST(AccumulatorTest, SummaryStatistics)
{
    Accumulator acc;
    EXPECT_TRUE(acc.empty());
    for (double v : {4.0, 1.0, 3.0, 2.0, 5.0})
        acc.add(v);
    EXPECT_EQ(acc.count(), 5u);
    EXPECT_DOUBLE_EQ(acc.mean(), 3.0);
    EXPECT_DOUBLE_EQ(acc.min(), 1.0);
    EXPECT_DOUBLE_EQ(acc.max(), 5.0);
    EXPECT_DOUBLE_EQ(acc.median(), 3.0);
    EXPECT_DOUBLE_EQ(acc.sum(), 15.0);
    EXPECT_NEAR(acc.stddev(), 1.5811, 1e-3);
    EXPECT_DOUBLE_EQ(acc.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(acc.percentile(100), 5.0);
    EXPECT_DOUBLE_EQ(acc.percentile(50), 3.0);
}

TEST(AccumulatorTest, AddAfterSortKeepsCorrectness)
{
    Accumulator acc;
    acc.add(10.0);
    EXPECT_DOUBLE_EQ(acc.min(), 10.0);  // forces a sort
    acc.add(1.0);
    EXPECT_DOUBLE_EQ(acc.min(), 1.0);
    EXPECT_DOUBLE_EQ(acc.max(), 10.0);
}

TEST(HistogramTest, BucketsAndClamping)
{
    Histogram h(0.0, 10.0, 5);
    h.add(0.5);   // bucket 0
    h.add(9.9);   // bucket 4
    h.add(-3.0);  // clamped to 0
    h.add(42.0);  // clamped to 4
    h.add(5.0);   // bucket 2
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(2), 1u);
    EXPECT_EQ(h.count(4), 2u);
    EXPECT_DOUBLE_EQ(h.bucketLo(1), 2.0);
    EXPECT_DOUBLE_EQ(h.bucketHi(1), 4.0);
    EXPECT_FALSE(h.str().empty());
}

TEST(LogTest, EnableDisable)
{
    EXPECT_FALSE(log::enabled("xyzzy"));
    log::enable("xyzzy");
    EXPECT_TRUE(log::enabled("xyzzy"));
    log::disableAll();
    EXPECT_FALSE(log::enabled("xyzzy"));
    log::enable("*");
    EXPECT_TRUE(log::enabled("anything"));
    log::disableAll();
}
