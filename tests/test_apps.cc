/**
 * @file
 * Tests of the application models: ArgoDSM-like init (MiniDsm) and
 * SparkUCX-like shuffle (MiniShuffle) — paper Sec. VII.
 */

#include <gtest/gtest.h>

#include "apps/mini_dsm.hh"
#include "apps/mini_shuffle.hh"

using namespace ibsim;
using namespace ibsim::apps;

TEST(MiniDsmTest, WithoutOdpIsFastAndTimeoutFree)
{
    DsmConfig config;
    config.odp = false;
    MiniDsm dsm(DsmSystemParams::knl(), config);
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        auto r = dsm.run(seed);
        ASSERT_TRUE(r.completed);
        EXPECT_EQ(r.timeouts, 0u);
        EXPECT_EQ(r.faultsResolved, 0u);
        // Dominated by host setup: ~2.2 s, never near a timeout's worth
        // more.
        EXPECT_GT(r.executionTime.toSec(), 2.0);
        EXPECT_LT(r.executionTime.toSec(), 2.6);
    }
}

TEST(MiniDsmTest, WithOdpIsBimodal)
{
    // Fig. 12a: with ODP the runs split into a fast group (faults only)
    // and a slow group (+ one transport timeout from the dammed SEND).
    DsmConfig config;
    config.odp = true;
    MiniDsm dsm(DsmSystemParams::knl(), config);

    int timed_out = 0;
    int fast = 0;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        auto r = dsm.run(seed);
        ASSERT_TRUE(r.completed);
        EXPECT_GT(r.faultsResolved, 10u);  // first touches fault
        if (r.timeouts > 0) {
            ++timed_out;
            // UCX default C_ack = 18: T_o ~ 2.15 s on top of the base.
            EXPECT_GT(r.executionTime.toSec(), 4.0);
        } else {
            ++fast;
            EXPECT_LT(r.executionTime.toSec(), 3.5);
        }
    }
    // Both groups must exist (the defining feature of Fig. 12).
    EXPECT_GT(timed_out, 0);
    EXPECT_GT(fast, 0);
}

TEST(MiniDsmTest, ReedbushDamsLessOftenThanKnl)
{
    DsmConfig config;
    config.odp = true;
    MiniDsm knl(DsmSystemParams::knl(), config);
    MiniDsm rb(DsmSystemParams::reedbushH(), config);

    int knl_hits = 0;
    int rb_hits = 0;
    for (std::uint64_t seed = 1; seed <= 30; ++seed) {
        if (knl.run(seed).timeouts > 0)
            ++knl_hits;
        if (rb.run(seed).timeouts > 0)
            ++rb_hits;
    }
    EXPECT_GT(knl_hits, rb_hits);
}

namespace {

ShuffleRow
tinyRow(std::size_t qps, std::size_t waves)
{
    ShuffleRow row;
    row.system = "test";
    row.example = "tiny";
    row.profile = rnic::DeviceProfile::knl();
    // Pin fault latency high so cohort staleness is deterministic.
    row.profile.faultTiming.faultLatencyMin = Time::us(800);
    row.profile.faultTiming.faultLatencyMax = Time::us(801);
    row.qps = qps;
    row.waves = waves;
    row.computeTotal = Time::ms(50);
    return row;
}

} // namespace

TEST(MiniShuffleTest, OdpFloodsAndSlowsTheJob)
{
    const auto row = tinyRow(/*qps=*/96, /*waves=*/3);
    auto base = MiniShuffle(row, /*odp=*/false).run(1);
    auto odp = MiniShuffle(row, /*odp=*/true).run(1);

    ASSERT_TRUE(base.completed);
    ASSERT_TRUE(odp.completed);
    EXPECT_EQ(base.updateFailures, 0u);
    EXPECT_GT(odp.updateFailures, 0u);
    EXPECT_GT(odp.retransmissions, base.retransmissions + 50);
    EXPECT_GT(odp.executionTime.toSec(), 1.2 * base.executionTime.toSec());
    EXPECT_GT(odp.longestWave.toMs(), 5.0);
}

TEST(MiniShuffleTest, FewQpsEscapeTheFlood)
{
    const auto row = tinyRow(/*qps=*/8, /*waves=*/3);
    auto odp = MiniShuffle(row, /*odp=*/true).run(1);
    ASSERT_TRUE(odp.completed);
    EXPECT_EQ(odp.updateFailures, 0u);
    // Page faults only: the wave stalls stay in the common band.
    EXPECT_LT(odp.longestWave.toMs(), 10.0);
}

TEST(MiniShuffleTest, Table13RowsAreWellFormed)
{
    auto rows = ShuffleRow::table13();
    ASSERT_EQ(rows.size(), 12u);
    for (const auto& r : rows) {
        EXPECT_FALSE(r.system.empty());
        EXPECT_GE(r.qps, 210u);
        EXPECT_LE(r.qps, 2858u);
        EXPECT_GE(r.waves, 1u);
    }
}
