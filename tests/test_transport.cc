/**
 * @file
 * Tests of the UC transport service and the software-reliability channel
 * built over it (paper Sec. VIII-C design point).
 */

#include <gtest/gtest.h>

#include "cluster/cluster.hh"
#include "net/loss.hh"
#include "swrel/soft_reliable.hh"

using namespace ibsim;

namespace {

struct UcFixture : public ::testing::Test
{
    Cluster cluster{rnic::DeviceProfile::connectX4(), 2, 23};
    Node& a = cluster.node(0);
    Node& b = cluster.node(1);
    verbs::CompletionQueue& acq = a.createCq();
    verbs::CompletionQueue& bcq = b.createCq();
    verbs::QueuePair aqp;
    verbs::QueuePair bqp;
    std::uint64_t src = 0;
    std::uint64_t dst = 0;
    verbs::MemoryRegion* amr = nullptr;
    verbs::MemoryRegion* bmr = nullptr;

    void
    SetUp() override
    {
        verbs::QpConfig uc;
        uc.transport = verbs::Transport::Uc;
        auto [qa, qb] = cluster.connectRc(a, acq, b, bcq, uc);
        aqp = qa;
        bqp = qb;
        src = a.alloc(4096);
        dst = b.alloc(4096);
        a.touch(src, 4096);
        amr = &a.registerMemory(src, 4096, verbs::AccessFlags::pinned());
        bmr = &b.registerMemory(dst, 4096, verbs::AccessFlags::pinned());
    }
};

} // namespace

TEST_F(UcFixture, WriteDeliversWithoutAcks)
{
    a.memory().write(src, std::vector<std::uint8_t>(64, 0x11));
    aqp.postWrite(src, amr->lkey(), dst, bmr->rkey(), 64, 1);
    // UC completes locally at once (fire and forget).
    EXPECT_EQ(acq.totalCompletions(), 1u);
    cluster.drain(Time::ms(1));
    EXPECT_EQ(b.memory().read(dst, 64),
              std::vector<std::uint8_t>(64, 0x11));
    // Exactly one packet: no ACK came back.
    EXPECT_EQ(cluster.fabric().totalSent(), 1u);
}

TEST_F(UcFixture, LossIsSilent)
{
    cluster.fabric().setLossModel(
        std::make_unique<net::BernoulliLoss>(1.0));
    aqp.postWrite(src, amr->lkey(), dst, bmr->rkey(), 64, 1);
    EXPECT_EQ(acq.totalCompletions(), 1u);  // sender none the wiser
    cluster.drain(Time::sec(1));
    EXPECT_EQ(b.memory().read(dst, 64),
              std::vector<std::uint8_t>(64, 0));  // never arrived
}

TEST_F(UcFixture, SendWithoutRecvIsDropped)
{
    aqp.postSend(src, amr->lkey(), 32, 1);
    cluster.drain(Time::ms(1));
    EXPECT_EQ(bcq.totalCompletions(), 0u);

    // With a RECV posted, the next SEND lands.
    bqp.postRecv(dst, bmr->lkey(), 4096, 2);
    aqp.postSend(src, amr->lkey(), 32, 3);
    cluster.drain(Time::ms(1));
    EXPECT_EQ(bcq.totalCompletions(), 1u);
}

TEST_F(UcFixture, GapsAreAcceptedWithoutNaks)
{
    // Lose the first of two writes: the second must still apply (UC has
    // no sequence recovery).
    cluster.fabric().setLossModel(std::make_unique<net::MatchOnceLoss>(
        [](const net::Packet& p) {
            return p.op == net::Opcode::WriteRequest;
        }));
    a.memory().write(src, std::vector<std::uint8_t>(64, 0x22));
    aqp.postWrite(src, amr->lkey(), dst, bmr->rkey(), 64, 1);
    aqp.postWrite(src, amr->lkey(), dst + 64, bmr->rkey(), 64, 2);
    cluster.drain(Time::ms(1));
    EXPECT_EQ(b.memory().read(dst + 64, 64),
              std::vector<std::uint8_t>(64, 0x22));
    EXPECT_EQ(b.memory().read(dst, 64),
              std::vector<std::uint8_t>(64, 0));
}

TEST(SoftReliable, DeliversInOrderWithoutLoss)
{
    Cluster cluster(rnic::DeviceProfile::connectX4(), 2, 31);
    swrel::SoftReliableChannel channel(cluster, cluster.node(0),
                                       cluster.node(1));
    for (std::uint8_t i = 0; i < 20; ++i)
        channel.send(std::vector<std::uint8_t>(10, i));

    ASSERT_TRUE(cluster.runUntil([&] { return channel.allAcked(); },
                                 Time::sec(1)));
    ASSERT_EQ(channel.delivered().size(), 20u);
    for (std::uint8_t i = 0; i < 20; ++i)
        EXPECT_EQ(channel.delivered()[i][0], i);
    EXPECT_EQ(channel.stats().retransmissions, 0u);
}

TEST(SoftReliable, RecoversFromLossAtSoftwareTimescale)
{
    Cluster cluster(rnic::DeviceProfile::connectX4(), 2, 31);
    swrel::SoftChannelConfig config;
    config.retryTimeout = Time::ms(1);
    swrel::SoftReliableChannel channel(cluster, cluster.node(0),
                                       cluster.node(1), config);
    cluster.fabric().setLossModel(
        std::make_unique<net::BernoulliLoss>(0.2));

    for (std::uint8_t i = 0; i < 50; ++i)
        channel.send(std::vector<std::uint8_t>(10, i));

    const Time start = cluster.now();
    ASSERT_TRUE(cluster.runUntil([&] { return channel.allAcked(); },
                                 Time::sec(5)));
    EXPECT_EQ(channel.stats().delivered, 50u);
    EXPECT_EQ(channel.stats().failed, 0u);
    EXPECT_GT(channel.stats().retransmissions, 0u);
    // Recovery at the ~1 ms software timescale -- orders of magnitude
    // below the RC transport's 537 ms floor.
    EXPECT_LT((cluster.now() - start).toMs(), 100.0);
}

TEST(SoftReliable, DuplicatesAreFiltered)
{
    Cluster cluster(rnic::DeviceProfile::connectX4(), 2, 31);
    swrel::SoftChannelConfig config;
    config.retryTimeout = Time::us(100);
    swrel::SoftReliableChannel channel(cluster, cluster.node(0),
                                       cluster.node(1), config);
    // Lose only ACKs: the data arrives, the sender retransmits anyway.
    cluster.fabric().setLossModel(std::make_unique<net::MatchOnceLoss>(
        [](const net::Packet& p) { return p.length == 9; }, 3));

    channel.send({1, 2, 3});
    ASSERT_TRUE(cluster.runUntil([&] { return channel.allAcked(); },
                                 Time::sec(1)));
    EXPECT_EQ(channel.stats().delivered, 1u);
    EXPECT_GT(channel.stats().duplicatesDropped, 0u);
    ASSERT_EQ(channel.delivered().size(), 1u);
    EXPECT_EQ(channel.delivered()[0], (std::vector<std::uint8_t>{1, 2,
                                                                 3}));
}

TEST(SoftReliable, GivesUpAfterMaxRetries)
{
    Cluster cluster(rnic::DeviceProfile::connectX4(), 2, 31);
    swrel::SoftChannelConfig config;
    config.retryTimeout = Time::us(200);
    config.maxRetries = 3;
    swrel::SoftReliableChannel channel(cluster, cluster.node(0),
                                       cluster.node(1), config);
    cluster.fabric().setLossModel(
        std::make_unique<net::BernoulliLoss>(1.0));

    const std::uint64_t seq = channel.send({9});
    cluster.drain(Time::sec(1));
    EXPECT_EQ(channel.stats().failed, 1u);
    EXPECT_EQ(channel.stats().retransmissions, 3u);
    EXPECT_TRUE(channel.allSettled());  // nothing pending anymore...
    EXPECT_FALSE(channel.allAcked());   // ...but the message was lost
    EXPECT_TRUE(channel.failed(seq));
    EXPECT_FALSE(channel.acked(seq));
}
