/**
 * @file
 * Tests of the ibsim::exp experiment harness: seed-stream disjointness,
 * the Sweep grid builder, the TrialRunner's bit-identical parallel
 * determinism (accumulators and JSON output), the registry glob matcher,
 * log:: thread safety, and the MicroBenchmark run-once contract.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <unordered_set>

#include "cluster/cluster.hh"
#include "simcore/rng.hh"
#include "exp/registry.hh"
#include "exp/result_sink.hh"
#include "exp/seed_stream.hh"
#include "exp/sweep.hh"
#include "exp/trial_runner.hh"
#include "pitfall/microbench.hh"
#include "simcore/log.hh"

using namespace ibsim;

// ---------------------------------------------------------------- seeds

TEST(SeedStream, TrialSeedsAreDisjointWithinAStream)
{
    exp::SeedStream seeds("test_bench", 42);
    std::unordered_set<std::uint64_t> seen;
    for (std::uint64_t cell = 0; cell < 64; ++cell)
        for (std::uint64_t trial = 0; trial < 64; ++trial)
            EXPECT_TRUE(seen.insert(seeds.trialSeed(cell, trial)).second)
                << "collision at cell " << cell << " trial " << trial;
    EXPECT_EQ(seen.size(), 64u * 64u);
}

TEST(SeedStream, DifferentBenchNamesYieldDifferentStreams)
{
    exp::SeedStream a("fig4", 0);
    exp::SeedStream b("fig6", 0);
    std::size_t equal = 0;
    for (std::uint64_t t = 0; t < 256; ++t)
        if (a.trialSeed(0, t) == b.trialSeed(0, t))
            ++equal;
    EXPECT_EQ(equal, 0u);
}

TEST(SeedStream, UserSeedShiftsTheWholeStream)
{
    exp::SeedStream a("fig4", 0);
    exp::SeedStream b("fig4", 1);
    EXPECT_NE(a.trialSeed(0, 0), b.trialSeed(0, 0));
    // Same inputs reproduce the same seed (pure function of the tuple).
    EXPECT_EQ(a.trialSeed(3, 7), exp::SeedStream("fig4", 0).trialSeed(3, 7));
}

TEST(SeedStream, SplitMix64IsABijectionOnSamples)
{
    // Distinct inputs map to distinct outputs (spot check; the finalizer
    // is invertible by construction).
    std::unordered_set<std::uint64_t> outs;
    for (std::uint64_t x = 0; x < 10000; ++x)
        outs.insert(exp::splitmix64(x));
    EXPECT_EQ(outs.size(), 10000u);
}

// ---------------------------------------------------------------- sweep

TEST(Sweep, CartesianGridRowMajorLastAxisFastest)
{
    exp::Sweep sweep;
    sweep.axis("a", {1.0, 2.0}, 0)
        .axis("b", std::vector<std::string>{"x", "y", "z"});
    EXPECT_EQ(sweep.cellCount(), 6u);
    const auto cells = sweep.cells();
    EXPECT_EQ(cells[0].num("a"), 1.0);
    EXPECT_EQ(cells[0].str("b"), "x");
    EXPECT_EQ(cells[1].str("b"), "y");
    EXPECT_EQ(cells[3].num("a"), 2.0);
    EXPECT_EQ(cells[3].str("b"), "x");
    EXPECT_EQ(cells[5].valueIndex("b"), 2u);
}

TEST(Sweep, RangeIsInclusiveOfBothEnds)
{
    const auto vals = exp::Sweep::range(0.0, 6.0, 0.25);
    ASSERT_EQ(vals.size(), 25u);
    EXPECT_DOUBLE_EQ(vals.front(), 0.0);
    EXPECT_DOUBLE_EQ(vals.back(), 6.0);
}

TEST(Sweep, EmptyAxisThrows)
{
    exp::Sweep sweep;
    EXPECT_THROW(sweep.axis("empty", std::vector<double>{}, 0),
                 std::logic_error);
}

// --------------------------------------------------------------- runner

namespace {

/** A deterministic trial: hashes the seed through a tiny simulation. */
exp::Metrics
syntheticTrial(const exp::Cell& cell, std::uint64_t seed)
{
    Rng rng(seed);
    double acc = cell.num("x");
    for (int i = 0; i < 100; ++i)
        acc += rng.uniform(0.0, 1.0);
    exp::Metrics m;
    m.set("acc", acc);
    m.set("seed_lo", static_cast<double>(seed & 0xffffffffu));
    return m;
}

exp::SweepResult
runSynthetic(unsigned jobs)
{
    exp::Sweep sweep;
    sweep.axis("x", exp::Sweep::range(0.0, 9.0, 1.0), 0);
    exp::TrialRunner::Options options;
    options.jobs = jobs;
    options.seeds = exp::SeedStream("synthetic", 7);
    return exp::TrialRunner(options).run(sweep, 8, syntheticTrial);
}

} // namespace

TEST(TrialRunner, ParallelIsBitIdenticalToSequential)
{
    const auto seq = runSynthetic(1);
    const auto par = runSynthetic(8);
    ASSERT_EQ(seq.cells.size(), par.cells.size());
    for (std::size_t c = 0; c < seq.cells.size(); ++c) {
        const auto& a = seq.cells[c].metric("acc");
        const auto& b = par.cells[c].metric("acc");
        // Bit-identical, not just close: same seeds, same aggregation
        // order.
        EXPECT_EQ(a.mean(), b.mean());
        EXPECT_EQ(a.min(), b.min());
        EXPECT_EQ(a.max(), b.max());
        EXPECT_EQ(a.stddev(), b.stddev());
        EXPECT_EQ(a.count(), b.count());
        EXPECT_EQ(seq.cells[c].metric("seed_lo").sum(),
                  par.cells[c].metric("seed_lo").sum());
    }
}

TEST(TrialRunner, JsonLinesAreBitIdenticalAcrossJobCounts)
{
    auto render = [](unsigned jobs, const std::string& path) {
        const auto result = runSynthetic(jobs);
        exp::ResultSink::Options options;
        options.benchName = "synthetic";
        options.jsonPath = path;
        options.quiet = true;
        exp::ResultSink sink(options);
        sink.jsonOnly("grid", result);
    };
    const std::string p1 = "harness_jobs1.jsonl";
    const std::string p8 = "harness_jobs8.jsonl";
    render(1, p1);
    render(8, p8);
    std::ifstream f1(p1), f8(p8);
    std::stringstream s1, s8;
    s1 << f1.rdbuf();
    s8 << f8.rdbuf();
    EXPECT_FALSE(s1.str().empty());
    EXPECT_EQ(s1.str(), s8.str());
    std::remove(p1.c_str());
    std::remove(p8.c_str());
}

TEST(TrialRunner, RealSimulationIsBitIdenticalAcrossJobCounts)
{
    // The actual pitfall micro-benchmark, not a synthetic hash: two
    // damming trials per cell across the interval axis.
    auto run = [](unsigned jobs) {
        exp::Sweep sweep;
        sweep.axis("interval_ms", {0.0, 1.0, 5.0}, 1);
        exp::TrialRunner::Options options;
        options.jobs = jobs;
        options.seeds = exp::SeedStream("harness_sim_test", 3);
        return exp::TrialRunner(options).run(
            sweep, 2, [](const exp::Cell& cell, std::uint64_t seed) {
                pitfall::MicroBenchConfig config;
                config.numOps = 2;
                config.interval = Time::ms(cell.num("interval_ms"));
                config.odpMode = pitfall::OdpMode::BothSide;
                config.capture = false;
                pitfall::MicroBenchmark bench(
                    config, rnic::DeviceProfile::knl(), seed);
                auto r = bench.run();
                return exp::Metrics{}
                    .set("exec_s", r.executionTime.toSec())
                    .set("timeout", r.timedOut());
            });
    };
    const auto seq = run(1);
    const auto par = run(8);
    for (std::size_t c = 0; c < seq.cells.size(); ++c) {
        EXPECT_EQ(seq.cells[c].metric("exec_s").mean(),
                  par.cells[c].metric("exec_s").mean());
        EXPECT_EQ(seq.cells[c].metric("exec_s").stddev(),
                  par.cells[c].metric("exec_s").stddev());
        EXPECT_EQ(seq.cells[c].metric("timeout").sum(),
                  par.cells[c].metric("timeout").sum());
    }
}

TEST(TrialRunner, MetricsKeepFirstTrialInsertionOrder)
{
    exp::Sweep sweep;
    sweep.axis("x", {1.0}, 0);
    exp::TrialRunner::Options options;
    options.jobs = 1;
    options.seeds = exp::SeedStream("order", 0);
    const auto result = exp::TrialRunner(options).run(
        sweep, 1, [](const exp::Cell&, std::uint64_t) {
            return exp::Metrics{}.set("zeta", 1.0).set("alpha", 2.0);
        });
    const auto& metrics = result.cells[0].metrics();
    ASSERT_EQ(metrics.size(), 2u);
    EXPECT_EQ(metrics[0].first, "zeta");
    EXPECT_EQ(metrics[1].first, "alpha");
}

TEST(TrialRunner, PropagatesTrialExceptions)
{
    exp::Sweep sweep;
    sweep.axis("x", {1.0, 2.0}, 0);
    exp::TrialRunner::Options options;
    options.jobs = 4;
    options.seeds = exp::SeedStream("throwing", 0);
    EXPECT_THROW(
        exp::TrialRunner(options).run(
            sweep, 4,
            [](const exp::Cell& cell, std::uint64_t) -> exp::Metrics {
                if (cell.index() == 1)
                    throw std::runtime_error("boom");
                return exp::Metrics{}.set("ok", 1.0);
            }),
        std::runtime_error);
}

// ------------------------------------------------------------- registry

TEST(Registry, GlobMatching)
{
    EXPECT_TRUE(exp::globMatch("fig*", "fig4"));
    EXPECT_TRUE(exp::globMatch("fig*", "fig11"));
    EXPECT_TRUE(exp::globMatch("*", "anything"));
    EXPECT_TRUE(exp::globMatch("fig?", "fig4"));
    EXPECT_FALSE(exp::globMatch("fig?", "fig11"));
    EXPECT_FALSE(exp::globMatch("fig*", "table1"));
    EXPECT_TRUE(exp::globMatch("ablation_*", "ablation_regcache"));
    EXPECT_TRUE(exp::globMatch("*cache*", "ablation_regcache"));
    EXPECT_FALSE(exp::globMatch("", "x"));
    EXPECT_TRUE(exp::globMatch("", ""));
}

TEST(Registry, MatchSelectsByCommaSeparatedGlobs)
{
    exp::Registry registry;
    auto noop = [](const exp::RunContext&) {};
    registry.add({"fig4", "", noop});
    registry.add({"fig6", "", noop});
    registry.add({"table1", "", noop});

    const auto figs = registry.match("fig*");
    ASSERT_EQ(figs.size(), 2u);
    EXPECT_EQ(figs[0]->name, "fig4");

    const auto mixed = registry.match("table1,fig6");
    ASSERT_EQ(mixed.size(), 2u);

    EXPECT_TRUE(registry.match("nope*").empty());
    EXPECT_THROW(registry.add({"fig4", "dup", noop}), std::logic_error);
}

// ------------------------------------------------------------------ log

TEST(LogThreadSafety, ConcurrentEnableTraceDisableSmoke)
{
    // No assertions beyond "does not crash / race": hammer the global
    // component-tag registry from several threads while others trace.
    log::disableAll();
    std::atomic<bool> stop{false};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&stop, t] {
            const std::string tag = "smoke" + std::to_string(t);
            for (int i = 0; i < 500; ++i) {
                log::enable(tag);
                if (log::enabled(tag))
                    log::disableAll();
            }
            stop = true;
        });
    }
    for (auto& th : threads)
        th.join();
    log::disableAll();
    EXPECT_FALSE(log::enabled("smoke0"));
}

// ----------------------------------------------------------- microbench

TEST(MicroBenchmark, RunIsCallableExactlyOnce)
{
    pitfall::MicroBenchConfig config;
    config.numOps = 1;
    config.odpMode = pitfall::OdpMode::None;
    config.capture = false;
    pitfall::MicroBenchmark bench(config, rnic::DeviceProfile::knl(), 1);
    EXPECT_NO_THROW(bench.run());
    EXPECT_THROW(bench.run(), std::logic_error);
}
