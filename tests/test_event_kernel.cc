/**
 * @file
 * Differential stress tests of the event kernel.
 *
 * The timer-wheel kernel must execute the exact event sequence — same
 * times, same insertion-order tie-breaks — as a trivially-correct sorted
 * reference implementation, under randomized schedule/cancel/advance
 * interleavings whose delays span every tier (due window, all four wheel
 * levels, overflow heap). A second test drives the flood workload shape
 * (mass schedule/cancel churn) and asserts the node pool stays bounded.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "simcore/event_queue.hh"
#include "simcore/rng.hh"
#include "simcore/time.hh"

using namespace ibsim;

namespace {

/**
 * The kernel's contract in its simplest possible form: a flat list,
 * executed in (when, seq) order, with lazy cancellation. O(n) per event,
 * obviously correct.
 */
class ReferenceQueue
{
  public:
    std::uint64_t
    schedule(std::int64_t when)
    {
        events_.push_back(Ev{when, nextSeq_++, nextId_++, false});
        return events_.back().id;
    }

    bool
    cancel(std::uint64_t id)
    {
        for (auto& e : events_) {
            if (e.id == id) {
                if (e.cancelled)
                    return false;
                e.cancelled = true;
                return true;
            }
        }
        return false;  // already executed (record erased) or never existed
    }

    /** Execute everything due at or before @p target, recording (when, id). */
    void
    advanceTo(std::int64_t target,
              std::vector<std::pair<std::int64_t, std::uint64_t>>& out)
    {
        for (;;) {
            std::size_t best = events_.size();
            for (std::size_t i = 0; i < events_.size(); ++i) {
                if (events_[i].cancelled)
                    continue;
                if (best == events_.size() ||
                    events_[i].when < events_[best].when ||
                    (events_[i].when == events_[best].when &&
                     events_[i].seq < events_[best].seq)) {
                    best = i;
                }
            }
            if (best == events_.size() || events_[best].when > target)
                break;
            out.emplace_back(events_[best].when, events_[best].id);
            events_.erase(events_.begin() +
                          static_cast<std::ptrdiff_t>(best));
        }
        // Drop cancelled records that the sweep has passed, mirroring the
        // real kernel reclaiming them (keeps cancel() of executed ids
        // answering false, not true).
        events_.erase(std::remove_if(events_.begin(), events_.end(),
                                     [target](const Ev& e) {
                                         return e.cancelled &&
                                                e.when <= target;
                                     }),
                      events_.end());
    }

    std::size_t
    pending() const
    {
        std::size_t n = 0;
        for (const auto& e : events_)
            n += e.cancelled ? 0 : 1;
        return n;
    }

  private:
    struct Ev
    {
        std::int64_t when;
        std::uint64_t seq;
        std::uint64_t id;
        bool cancelled;
    };

    std::vector<Ev> events_;
    std::uint64_t nextSeq_ = 1;
    std::uint64_t nextId_ = 1;
};

/** A delay spanning due window, every wheel level, and the overflow tier. */
std::int64_t
tierSpanningDelay(Rng& rng)
{
    const double u = rng.uniform(0, 1);
    if (u < 0.35)
        return rng.uniformInt(0, 2000);  // due window / wheel level 0
    if (u < 0.65)
        return rng.uniformInt(0, 2000000);  // levels 0-1
    if (u < 0.85)
        return rng.uniformInt(0, 2000000000);  // levels 2-3
    return rng.uniformInt(0, 20000000000);  // beyond horizon: overflow
}

} // namespace

TEST(EventKernelStress, MatchesReferenceUnderRandomInterleaving)
{
    for (const std::uint64_t seed : {11u, 23u, 47u, 101u}) {
        Rng rng(seed);
        EventQueue q;
        ReferenceQueue ref;
        std::vector<std::pair<std::int64_t, std::uint64_t>> got;
        std::vector<std::pair<std::int64_t, std::uint64_t>> want;
        // Handles of every event ever scheduled (executed ones included,
        // so cancel-after-execute gets exercised too).
        std::vector<std::pair<EventHandle, std::uint64_t>> issued;
        std::int64_t now = 0;

        for (int op = 0; op < 8000; ++op) {
            const double roll = rng.uniform(0, 1);
            if (roll < 0.55) {
                const std::int64_t when = now + tierSpanningDelay(rng);
                const std::uint64_t id = ref.schedule(when);
                EventHandle h = q.schedule(
                    Time::ns(when),
                    [&q, &got, id] {
                        got.emplace_back(q.now().toNs(), id);
                    });
                issued.emplace_back(h, id);
            } else if (roll < 0.8 && !issued.empty()) {
                const auto pick = static_cast<std::size_t>(rng.uniformInt(
                    0, static_cast<int>(issued.size()) - 1));
                EXPECT_EQ(q.cancel(issued[pick].first),
                          ref.cancel(issued[pick].second));
            } else {
                const std::int64_t delta =
                    rng.uniformInt(0, 50000000);  // up to 50 ms
                now += delta;
                q.advance(Time::ns(delta));
                ref.advanceTo(now, want);
                ASSERT_EQ(got.size(), want.size()) << "seed " << seed;
            }
            if (op % 97 == 0) {
                ASSERT_EQ(q.pending(), ref.pending()) << "seed " << seed;
            }
        }

        // Drain both completely.
        q.run();
        ref.advanceTo(std::numeric_limits<std::int64_t>::max(), want);
        ASSERT_EQ(got, want) << "seed " << seed;
        EXPECT_EQ(q.pending(), 0u);
        EXPECT_EQ(ref.pending(), 0u);
    }
}

TEST(EventKernelStress, FloodChurnKeepsPoolBounded)
{
    // The flood workload shape: every cycle arms a ~1 ms retransmission
    // timer, delivers a packet ~2 us later and cancels the timer. The
    // cancelled timers are reaped when the wheel sweeps past their slot,
    // so the pool's high-water mark stays proportional to the number of
    // events in flight over one timer window — it must not grow with the
    // number of cycles (the old kernel's cancelled_ set did).
    EventQueue q;
    int delivered = 0;
    for (int cycle = 0; cycle < 50000; ++cycle) {
        EventHandle timer = q.scheduleAfter(Time::ms(1), [] {
            ADD_FAILURE() << "cancelled timer fired";
        });
        q.scheduleAfter(Time::us(2), [&delivered] { ++delivered; });
        q.advance(Time::us(2));
        EXPECT_TRUE(q.cancel(timer));
    }
    EXPECT_EQ(delivered, 50000);
    const auto stats = q.kernelStats();
    // One 1 ms window holds ~500 cycles x 2 events; leave generous slack
    // but stay orders of magnitude below the 100k events scheduled.
    EXPECT_LE(stats.poolNodes, 4096u);
    q.run();
    EXPECT_EQ(q.pending(), 0u);
}
