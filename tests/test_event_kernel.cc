/**
 * @file
 * Differential stress tests of the event kernel.
 *
 * The timer-wheel kernel must execute the exact event sequence — same
 * times, same insertion-order tie-breaks — as a trivially-correct sorted
 * reference implementation, under randomized schedule/cancel/advance
 * interleavings whose delays span every tier (due window, all four wheel
 * levels, overflow heap). A second test drives the flood workload shape
 * (mass schedule/cancel churn) and asserts the node pool stays bounded.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <utility>
#include <vector>

#include "chaos/invariant_monitor.hh"
#include "cluster/cluster.hh"
#include "simcore/cross_channel.hh"
#include "simcore/event_queue.hh"
#include "simcore/rng.hh"
#include "simcore/sharded_kernel.hh"
#include "simcore/time.hh"

using namespace ibsim;

namespace {

/**
 * The kernel's contract in its simplest possible form: a flat list,
 * executed in (when, seq) order, with lazy cancellation. O(n) per event,
 * obviously correct.
 */
class ReferenceQueue
{
  public:
    std::uint64_t
    schedule(std::int64_t when)
    {
        events_.push_back(Ev{when, nextSeq_++, nextId_++, false});
        return events_.back().id;
    }

    bool
    cancel(std::uint64_t id)
    {
        for (auto& e : events_) {
            if (e.id == id) {
                if (e.cancelled)
                    return false;
                e.cancelled = true;
                return true;
            }
        }
        return false;  // already executed (record erased) or never existed
    }

    /** Execute everything due at or before @p target, recording (when, id). */
    void
    advanceTo(std::int64_t target,
              std::vector<std::pair<std::int64_t, std::uint64_t>>& out)
    {
        for (;;) {
            std::size_t best = events_.size();
            for (std::size_t i = 0; i < events_.size(); ++i) {
                if (events_[i].cancelled)
                    continue;
                if (best == events_.size() ||
                    events_[i].when < events_[best].when ||
                    (events_[i].when == events_[best].when &&
                     events_[i].seq < events_[best].seq)) {
                    best = i;
                }
            }
            if (best == events_.size() || events_[best].when > target)
                break;
            out.emplace_back(events_[best].when, events_[best].id);
            events_.erase(events_.begin() +
                          static_cast<std::ptrdiff_t>(best));
        }
        // Drop cancelled records that the sweep has passed, mirroring the
        // real kernel reclaiming them (keeps cancel() of executed ids
        // answering false, not true).
        events_.erase(std::remove_if(events_.begin(), events_.end(),
                                     [target](const Ev& e) {
                                         return e.cancelled &&
                                                e.when <= target;
                                     }),
                      events_.end());
    }

    std::size_t
    pending() const
    {
        std::size_t n = 0;
        for (const auto& e : events_)
            n += e.cancelled ? 0 : 1;
        return n;
    }

  private:
    struct Ev
    {
        std::int64_t when;
        std::uint64_t seq;
        std::uint64_t id;
        bool cancelled;
    };

    std::vector<Ev> events_;
    std::uint64_t nextSeq_ = 1;
    std::uint64_t nextId_ = 1;
};

/** A delay spanning due window, every wheel level, and the overflow tier. */
std::int64_t
tierSpanningDelay(Rng& rng)
{
    const double u = rng.uniform(0, 1);
    if (u < 0.35)
        return rng.uniformInt(0, 2000);  // due window / wheel level 0
    if (u < 0.65)
        return rng.uniformInt(0, 2000000);  // levels 0-1
    if (u < 0.85)
        return rng.uniformInt(0, 2000000000);  // levels 2-3
    return rng.uniformInt(0, 20000000000);  // beyond horizon: overflow
}

} // namespace

TEST(EventKernelStress, MatchesReferenceUnderRandomInterleaving)
{
    for (const std::uint64_t seed : {11u, 23u, 47u, 101u}) {
        Rng rng(seed);
        EventQueue q;
        ReferenceQueue ref;
        std::vector<std::pair<std::int64_t, std::uint64_t>> got;
        std::vector<std::pair<std::int64_t, std::uint64_t>> want;
        // Handles of every event ever scheduled (executed ones included,
        // so cancel-after-execute gets exercised too).
        std::vector<std::pair<EventHandle, std::uint64_t>> issued;
        std::int64_t now = 0;

        for (int op = 0; op < 8000; ++op) {
            const double roll = rng.uniform(0, 1);
            if (roll < 0.55) {
                const std::int64_t when = now + tierSpanningDelay(rng);
                const std::uint64_t id = ref.schedule(when);
                EventHandle h = q.schedule(
                    Time::ns(when),
                    [&q, &got, id] {
                        got.emplace_back(q.now().toNs(), id);
                    });
                issued.emplace_back(h, id);
            } else if (roll < 0.8 && !issued.empty()) {
                const auto pick = static_cast<std::size_t>(rng.uniformInt(
                    0, static_cast<int>(issued.size()) - 1));
                EXPECT_EQ(q.cancel(issued[pick].first),
                          ref.cancel(issued[pick].second));
            } else {
                const std::int64_t delta =
                    rng.uniformInt(0, 50000000);  // up to 50 ms
                now += delta;
                q.advance(Time::ns(delta));
                ref.advanceTo(now, want);
                ASSERT_EQ(got.size(), want.size()) << "seed " << seed;
            }
            if (op % 97 == 0) {
                ASSERT_EQ(q.pending(), ref.pending()) << "seed " << seed;
            }
        }

        // Drain both completely.
        q.run();
        ref.advanceTo(std::numeric_limits<std::int64_t>::max(), want);
        ASSERT_EQ(got, want) << "seed " << seed;
        EXPECT_EQ(q.pending(), 0u);
        EXPECT_EQ(ref.pending(), 0u);
    }
}

TEST(EventKernelStress, FloodChurnKeepsPoolBounded)
{
    // The flood workload shape: every cycle arms a ~1 ms retransmission
    // timer, delivers a packet ~2 us later and cancels the timer. The
    // cancelled timers are reaped when the wheel sweeps past their slot,
    // so the pool's high-water mark stays proportional to the number of
    // events in flight over one timer window — it must not grow with the
    // number of cycles (the old kernel's cancelled_ set did).
    EventQueue q;
    int delivered = 0;
    for (int cycle = 0; cycle < 50000; ++cycle) {
        EventHandle timer = q.scheduleAfter(Time::ms(1), [] {
            ADD_FAILURE() << "cancelled timer fired";
        });
        q.scheduleAfter(Time::us(2), [&delivered] { ++delivered; });
        q.advance(Time::us(2));
        EXPECT_TRUE(q.cancel(timer));
    }
    EXPECT_EQ(delivered, 50000);
    const auto stats = q.kernelStats();
    // One 1 ms window holds ~500 cycles x 2 events; leave generous slack
    // but stay orders of magnitude below the 100k events scheduled.
    EXPECT_LE(stats.poolNodes, 4096u);
    q.run();
    EXPECT_EQ(q.pending(), 0u);
}

// =====================================================================
// ShardedKernel: the conservative-lookahead island scheduler.
// =====================================================================

namespace {

/** Per-island execution record — each island appends only its own
 * vector, so recording is race-free at any worker count. */
using IslandTrace = std::vector<std::pair<std::int64_t, int>>;

/**
 * Run a fixed two-island workload (interleaved timestamps, some inside
 * one lookahead window, some spanning several) and return the per-island
 * traces. The workload is identical for every jobs value; the traces
 * must be too.
 */
std::vector<IslandTrace>
runTwoIslandWorkload(unsigned jobs,
                     ScheduleMode mode = ScheduleMode::Stealing)
{
    ShardedKernel kernel(Time::us(1), jobs, mode);
    const std::size_t i0 = kernel.addIsland();
    const std::size_t i1 = kernel.addIsland();
    std::vector<IslandTrace> traces(2);

    const auto record = [&](std::size_t island, int tag) {
        traces[island].emplace_back(
            kernel.island(island).now().toNs(), tag);
    };
    int tag = 0;
    for (const std::int64_t ns :
         {0L, 100L, 100L, 950L, 1000L, 2500L, 2500L, 9999L, 10000L}) {
        for (const std::size_t island : {i0, i1}) {
            const int t = tag++;
            kernel.island(island).schedule(
                Time::ns(ns), [&record, island, t] { record(island, t); });
        }
    }
    EXPECT_TRUE(kernel.run());
    EXPECT_EQ(kernel.pending(), 0u);
    EXPECT_EQ(kernel.executed(), 18u);
    const auto ks = kernel.kernelStats();
    EXPECT_GT(ks.windows, 1u);  // 0..10000 ns cannot fit one 1 us window
    EXPECT_EQ(ks.executedPerIsland.size(), 2u);
    EXPECT_EQ(ks.executedPerIsland[0] + ks.executedPerIsland[1],
              kernel.executed());
    return traces;
}

} // namespace

TEST(ShardedKernel, WindowedRunMatchesTimestampOrderPerIsland)
{
    const auto traces = runTwoIslandWorkload(1);
    ASSERT_EQ(traces.size(), 2u);
    for (const IslandTrace& trace : traces) {
        ASSERT_EQ(trace.size(), 9u);
        for (std::size_t i = 1; i < trace.size(); ++i) {
            EXPECT_LE(trace[i - 1].first, trace[i].first);
            // Equal timestamps keep insertion order (tags ascend).
            if (trace[i - 1].first == trace[i].first)
                EXPECT_LT(trace[i - 1].second, trace[i].second);
        }
    }
}

TEST(ShardedKernel, TracesAreBitIdenticalAcrossWorkerCounts)
{
    const auto reference = runTwoIslandWorkload(1);
    // jobs is clamped to the island count, so 8 exercises the clamp;
    // both schedule modes must produce the same content.
    for (const ScheduleMode mode :
         {ScheduleMode::Static, ScheduleMode::Stealing}) {
        EXPECT_EQ(runTwoIslandWorkload(1, mode), reference);
        EXPECT_EQ(runTwoIslandWorkload(2, mode), reference);
        EXPECT_EQ(runTwoIslandWorkload(8, mode), reference);
    }
}

TEST(ShardedKernel, SingleIslandTopologyDegeneratesToSequential)
{
    // One island: the channel clocks are a no-op (no in-neighbors, safe
    // horizon = infinity) and any jobs count clamps to one worker.
    ShardedKernel kernel(Time::us(1), 4);
    kernel.addIsland();
    std::vector<std::int64_t> fired;
    for (const std::int64_t ns : {0L, 1L, 999L, 1000L, 7777L, 50000L}) {
        kernel.island(0).schedule(Time::ns(ns), [&fired, ns] {
            fired.push_back(ns);
        });
    }
    EXPECT_TRUE(kernel.run());
    EXPECT_EQ(kernel.jobs(), 1u);
    EXPECT_EQ(fired,
              (std::vector<std::int64_t>{0, 1, 999, 1000, 7777, 50000}));
    EXPECT_EQ(kernel.kernelStats().channelParcels, 0u);
}

TEST(ShardedKernel, ZeroDelaySelfLinksNeedNoLookahead)
{
    // The lookahead bounds *cross-island* influence only: an island
    // feeding events back to itself with zero delay (a self-link) is
    // plain same-queue scheduling and must neither violate the window
    // contract nor stall the other island.
    for (const unsigned jobs : {1u, 2u}) {
        ShardedKernel kernel(Time::us(1), jobs);
        kernel.addIsland();
        kernel.addIsland();
        int chain = 0;
        std::function<void()> self = [&] {
            if (++chain < 100)
                kernel.island(0).schedule(kernel.island(0).now(), [&] {
                    self();
                });
        };
        kernel.island(0).schedule(Time::ns(500), [&] { self(); });
        bool other = false;
        kernel.island(1).schedule(Time::ns(500), [&other] {
            other = true;
        });
        EXPECT_TRUE(kernel.run());
        EXPECT_EQ(chain, 100);
        EXPECT_TRUE(other);
    }
}

TEST(ShardedKernel, IslandWithoutInNeighborsNeverBlocks)
{
    // Declaring only 0 -> 1 leaves island 0 with no in-neighbors: its
    // safe horizon is unbounded and it must run to its own limit even
    // while island 1 (which must wait on 0's clock) has earlier work.
    for (const unsigned jobs : {1u, 2u}) {
        ShardedKernel kernel(Time::us(1), jobs);
        kernel.addIsland();
        kernel.addIsland();
        kernel.declareEdge(0, 1);
        EXPECT_TRUE(kernel.hasEdge(0, 1));
        EXPECT_FALSE(kernel.hasEdge(1, 0));
        std::uint64_t ran0 = 0, ran1 = 0;
        for (int i = 0; i < 64; ++i) {
            kernel.island(0).schedule(Time::us(100 + i),
                                      [&ran0] { ++ran0; });
            kernel.island(1).schedule(Time::ns(10 * i),
                                      [&ran1] { ++ran1; });
        }
        EXPECT_TRUE(kernel.run());
        EXPECT_EQ(ran0, 64u);
        EXPECT_EQ(ran1, 64u);
        EXPECT_EQ(kernel.pending(), 0u);
    }
}

TEST(ShardedKernel, EdgeDeclarationsSurviveInterleavedIslandGrowth)
{
    // The cluster layer interleaves island creation with edge
    // declarations (add a node pair, connect its QPs, add the next
    // pair, ...). Growing the edge matrix must preserve everything
    // declared before the growth — wiping it would leave earlier
    // destination islands with no in-neighbors, letting them run ahead
    // of their producers (a causality violation, not just a test fail).
    ShardedKernel kernel(Time::us(1), 2);
    kernel.addIsland();
    kernel.addIsland();
    kernel.declareEdge(0, 1);
    kernel.declareEdge(1, 0);
    kernel.addIsland();
    kernel.addIsland();
    kernel.declareEdge(2, 3);
    kernel.declareEdge(3, 2);
    EXPECT_TRUE(kernel.hasEdge(0, 1));
    EXPECT_TRUE(kernel.hasEdge(1, 0));
    EXPECT_TRUE(kernel.hasEdge(2, 3));
    EXPECT_TRUE(kernel.hasEdge(3, 2));
    EXPECT_FALSE(kernel.hasEdge(0, 2));
    EXPECT_FALSE(kernel.hasEdge(3, 1));
}

TEST(ShardedKernel, DenseIslandCoversIslandsAddedLater)
{
    // A dense island (UD: destinations named per work request) must stay
    // connected to islands created after the declaration too — a UD QP
    // can address a node that did not exist when the QP was made.
    ShardedKernel kernel(Time::us(1), 1);
    kernel.addIsland();
    kernel.addIsland();
    kernel.declareDense(0);
    kernel.addIsland();
    EXPECT_TRUE(kernel.hasEdge(0, 2));
    EXPECT_TRUE(kernel.hasEdge(2, 0));
    EXPECT_TRUE(kernel.hasEdge(0, 1));
    EXPECT_FALSE(kernel.hasEdge(1, 2));  // neither is dense, no edge
}

TEST(ShardedKernel, RunWithLimitAtPendingEventExecutesIt)
{
    // limit == the earliest pending event is a degenerate round (the
    // round limit equals the synchronized clock). The window holding the
    // event must still execute — EventQueue::run()'s events-at-limit-run
    // semantics — rather than every island reporting an empty round done
    // and the kernel spinning forever.
    ShardedKernel kernel(Time::us(1), 1);
    kernel.addIsland();
    bool fired = false;
    kernel.island(0).schedule(Time(), [&fired] { fired = true; });
    EXPECT_TRUE(kernel.run(Time()));
    EXPECT_TRUE(fired);

    // Same shape mid-run: the clocks already sit exactly at the limit.
    kernel.run(Time::us(3));
    bool again = false;
    kernel.island(0).schedule(Time::us(3), [&again] { again = true; });
    EXPECT_TRUE(kernel.run(Time::us(3)));
    EXPECT_TRUE(again);
}

TEST(ShardedKernel, AdvanceLeavesEveryIslandClockAtTarget)
{
    ShardedKernel kernel(Time::us(5), 2);
    kernel.addIsland();
    kernel.addIsland();
    kernel.addIsland();
    bool fired = false;
    kernel.island(1).schedule(Time::us(3), [&fired] { fired = true; });

    kernel.advance(Time::us(1));
    EXPECT_EQ(kernel.now(), Time::us(1));
    EXPECT_FALSE(fired);

    kernel.advance(Time::us(9));
    EXPECT_TRUE(fired);
    EXPECT_EQ(kernel.now(), Time::us(10));
    for (std::size_t i = 0; i < kernel.islandCount(); ++i)
        EXPECT_EQ(kernel.island(i).now(), Time::us(10)) << "island " << i;
}

TEST(ShardedKernel, RunUntilChecksPredicateAtBarriers)
{
    ShardedKernel kernel(Time::us(1), 1);
    kernel.addIsland();
    kernel.addIsland();
    int count = 0;
    for (int i = 1; i <= 20; ++i)
        kernel.island(i % 2).schedule(Time::us(i),
                                      [&count] { ++count; });

    EXPECT_TRUE(kernel.runUntil([&count] { return count >= 5; },
                                Time::ms(1)));
    // The predicate is only polled at round boundaries (every
    // windowsPerRound() grid windows), so extra events inside the round
    // may run — but never the whole backlog, and never events past the
    // satisfied round.
    EXPECT_GE(count, 5);
    EXPECT_LT(count, 20);
    // An exhausted limit reports false without touching future windows.
    EXPECT_FALSE(kernel.runUntil([] { return false; },
                                 kernel.now() + Time::ns(1)));
    EXPECT_TRUE(kernel.runUntil([&count] { return count == 20; },
                                Time::ms(1)));
    EXPECT_EQ(kernel.executed(), 20u);
}

namespace {

/**
 * A minimal cross-island mailbox exercising the BarrierAgent protocol
 * the way net::Fabric does: the source island pushes into per-(src, dst)
 * CrossChannels keyed by the message's effect time (send + lookahead);
 * the destination drains everything its window horizon covers before
 * running the window. Producer and consumer islands run concurrently
 * under the pairwise channel clocks, which is exactly what CrossChannel
 * plus the clocks' release/acquire protocol make safe.
 */
struct MailboxAgent : ShardedKernel::BarrierAgent
{
    using Msg = std::pair<Time, int>;
    using Channel = CrossChannel<Msg>;

    explicit MailboxAgent(ShardedKernel& kernel)
        : kernel_(kernel), received_(kernel.islandCount())
    {
        for (std::size_t i = 0; i < kernel.islandCount(); ++i) {
            auto& row = out_.emplace_back();
            for (std::size_t j = 0; j < kernel.islandCount(); ++j)
                row.emplace_back();
        }
        kernel.addBarrierAgent(this);
    }

    void
    post(std::size_t from, std::size_t to, int tag)
    {
        const Time at = kernel_.island(from).now() + kernel_.lookahead();
        out_[from][to].push(at.toNs(), {at, tag});
    }

    std::uint64_t
    flushInbound(std::size_t island, Time /*now*/, Time horizon) override
    {
        std::vector<Msg> batch;
        for (auto& row : out_) {
            row[island].drainUpTo(
                horizon.toNs(),
                [](const Msg& m) { return m.first.toNs(); }, batch);
        }
        for (auto& [at, tag] : batch) {
            auto& sink = received_[island];
            kernel_.island(island).schedule(at, [&sink, island, tag, this] {
                sink.emplace_back(kernel_.island(island).now().toNs(), tag);
            });
        }
        return batch.size();
    }

    Time
    inboundEarliest(std::size_t island) override
    {
        std::int64_t earliest = Channel::kEmpty;
        for (auto& row : out_)
            earliest = std::min(earliest, row[island].minKey());
        return earliest == Channel::kEmpty ? Time::max()
                                           : Time::fromNs(earliest);
    }

    std::size_t
    inboundPending(std::size_t island) override
    {
        std::size_t total = 0;
        for (auto& row : out_)
            total += row[island].size();
        return total;
    }

    ShardedKernel& kernel_;
    /** out_[src][dst]; deques because CrossChannel must never move. */
    std::deque<std::deque<Channel>> out_;
    std::vector<IslandTrace> received_;
};

} // namespace

TEST(ShardedKernel, BarrierAgentDeliversCrossIslandParcels)
{
    for (const unsigned jobs : {1u, 2u}) {
        ShardedKernel kernel(Time::us(1), jobs);
        kernel.addIsland();
        kernel.addIsland();
        MailboxAgent mail(kernel);

        // Island 0 pings island 1 every 600 ns; island 1 echoes back.
        for (int i = 0; i < 8; ++i) {
            kernel.island(0).schedule(Time::ns(600 * i), [&mail, i] {
                mail.post(0, 1, i);
            });
        }
        kernel.island(1).schedule(Time::us(2),
                                  [&mail] { mail.post(1, 0, 100); });
        EXPECT_TRUE(kernel.run());

        ASSERT_EQ(mail.received_[1].size(), 8u) << "jobs=" << jobs;
        for (int i = 0; i < 8; ++i) {
            // Arrived exactly one lookahead after the send.
            EXPECT_EQ(mail.received_[1][static_cast<std::size_t>(i)],
                      (std::pair<std::int64_t, int>{600 * i + 1000, i}));
        }
        ASSERT_EQ(mail.received_[0].size(), 1u);
        EXPECT_EQ(mail.received_[0][0].second, 100);
        EXPECT_EQ(kernel.kernelStats().channelParcels, 9u);
        kernel.removeBarrierAgent(&mail);
    }
}

// =====================================================================
// Island-mode flood differential: a miniature of the flood_capacity
// bench (client-side-ODP READ flood over RC pairs), audited end-to-end
// by the invariant monitor. Sequential (jobs=1) and threaded runs must
// be bit-identical; the single-queue kernel must agree on the verdicts.
// =====================================================================

namespace {

struct FloodOutcome
{
    std::uint64_t traceHash = 0;
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    std::uint64_t completions = 0;
    std::uint64_t violations = 0;
    std::int64_t stopNs = 0;
    bool completed = false;

    bool
    operator==(const FloodOutcome& o) const
    {
        return traceHash == o.traceHash && sent == o.sent &&
               delivered == o.delivered && dropped == o.dropped &&
               completions == o.completions &&
               violations == o.violations && stopNs == o.stopNs &&
               completed == o.completed;
    }
};

/**
 * jobs == 0: single-queue kernel; jobs >= 1: island mode. With
 * `trigger` the wave wait goes through runUntilCompletions (the
 * per-island trigger path) instead of the polling runUntil — the two
 * must be indistinguishable in every deterministic output, including
 * the virtual stop time.
 */
FloodOutcome
runMiniFlood(unsigned jobs, std::uint64_t seed,
             ScheduleMode mode = ScheduleMode::Stealing,
             bool trigger = false,
             StealPolicy policy = StealPolicy::ReadyQueue)
{
    constexpr std::size_t pairs = 4;
    constexpr std::size_t qpsPerPair = 16;
    constexpr std::size_t opsPerQp = 4;
    constexpr std::uint64_t bytesPerQp = 4096;

    ClusterOptions options;
    options.sharded = jobs > 0;
    options.jobs = jobs > 0 ? jobs : 1;
    options.scheduleMode = mode;
    options.stealPolicy = policy;
    Cluster cluster(rnic::DeviceProfile::connectX4(), 2 * pairs, seed,
                    net::LinkConfig{}, options);
    chaos::InvariantMonitor monitor(cluster.fabric());

    std::vector<verbs::QueuePair> flows;
    std::vector<verbs::CompletionQueue*> cqs;
    struct Region
    {
        std::uint64_t src, dst;
        std::uint32_t lkey, rkey;
    };
    std::vector<Region> regions;
    for (std::size_t p = 0; p < pairs; ++p) {
        Node& client = cluster.node(2 * p);
        Node& server = cluster.node(2 * p + 1);
        auto& ccq = client.createCq();
        auto& scq = server.createCq();
        cqs.push_back(&ccq);
        const std::uint64_t bytes = qpsPerPair * bytesPerQp;
        const std::uint64_t src = server.alloc(bytes);
        const std::uint64_t dst = client.alloc(bytes);
        auto& smr = server.registerMemory(src, bytes,
                                          verbs::AccessFlags::pinned());
        auto& cmr = client.registerMemory(dst, bytes,
                                          verbs::AccessFlags::odp());
        regions.push_back({src, dst, cmr.lkey(), smr.rkey()});
        for (std::size_t q = 0; q < qpsPerPair; ++q) {
            auto [cqp, sqp] = cluster.connectRc(client, ccq, server, scq);
            flows.push_back(cqp);
        }
    }
    monitor.watchAll(cluster);

    for (std::size_t i = 0; i < flows.size(); ++i) {
        const Region& r = regions[i / qpsPerPair];
        const std::uint64_t base = (i % qpsPerPair) * bytesPerQp;
        for (std::size_t op = 0; op < opsPerQp; ++op)
            flows[i].postRead(r.dst + base + op * 128, r.lkey,
                              r.src + base + op * 128, r.rkey, 100,
                              op + 1);
    }
    const auto completions = [&cqs] {
        std::uint64_t done = 0;
        for (auto* cq : cqs)
            done += cq->totalCompletions();
        return done;
    };
    const std::uint64_t expected = flows.size() * opsPerQp;

    FloodOutcome out;
    // Only clients post, so server CQs stay at zero and the
    // cluster-wide completion count equals the client-CQ sum — the
    // trigger target and the polled predicate see the same value.
    out.completed =
        trigger ? cluster.runUntilCompletions(expected, Time::sec(600))
                : cluster.runUntil(
                      [&] { return completions() >= expected; },
                      Time::sec(600));
    out.stopNs = cluster.now().toNs();
    cluster.advance(Time::ms(1));
    monitor.finalCheck();

    out.traceHash = monitor.traceHash();
    out.sent = cluster.fabric().totalSent();
    out.delivered = cluster.fabric().totalDelivered();
    out.dropped = cluster.fabric().totalDropped();
    out.completions = completions();
    out.violations = monitor.violationCount();
    return out;
}

} // namespace

TEST(ShardedKernel, FloodIsBitIdenticalAcrossWorkerCounts)
{
    const FloodOutcome seq = runMiniFlood(1, 404);
    EXPECT_TRUE(seq.completed);
    EXPECT_EQ(seq.violations, 0u);
    EXPECT_EQ(seq.completions, 4u * 16u * 4u);
    EXPECT_GT(seq.sent, 0u);

    for (const ScheduleMode mode :
         {ScheduleMode::Static, ScheduleMode::Stealing}) {
        for (const unsigned jobs : {2u, 4u, 8u}) {
            const FloodOutcome par = runMiniFlood(jobs, 404, mode);
            EXPECT_TRUE(par == seq)
                << "jobs=" << jobs << " mode="
                << (mode == ScheduleMode::Static ? "static" : "stealing")
                << ": hash " << std::hex << par.traceHash << " vs "
                << seq.traceHash << std::dec << ", sent " << par.sent
                << " vs " << seq.sent << ", completions "
                << par.completions << " vs " << seq.completions;
        }
    }

    // A different seed is a genuinely different run.
    EXPECT_NE(runMiniFlood(1, 405).traceHash, seq.traceHash);
}

namespace {

/**
 * A hot client machine split into planes (addNodePlanes) serving its QP
 * groups from per-plane islands, talking to one server per plane.
 * jobs == 0 runs the identical node/LID topology on the single queue.
 */
FloodOutcome
runPlaneSplitFlood(unsigned jobs, std::uint64_t seed,
                   ScheduleMode mode = ScheduleMode::Stealing)
{
    constexpr unsigned planeCount = 4;
    constexpr std::size_t qpsPerPlane = 8;
    constexpr std::size_t opsPerQp = 4;
    constexpr std::uint64_t bytesPerQp = 1024;

    ClusterOptions options;
    options.sharded = jobs > 0;
    options.jobs = jobs > 0 ? jobs : 1;
    options.scheduleMode = mode;
    Cluster cluster(rnic::DeviceProfile::connectX4(), 0, seed,
                    net::LinkConfig{}, options);
    const auto planes = cluster.addNodePlanes(
        rnic::DeviceProfile::connectX4(), planeCount);
    std::vector<Node*> servers;
    for (unsigned p = 0; p < planeCount; ++p)
        servers.push_back(&cluster.addNode());
    chaos::InvariantMonitor monitor(cluster.fabric());

    std::vector<verbs::QueuePair> flows;
    std::vector<verbs::CompletionQueue*> cqs;
    struct Region
    {
        std::uint64_t src, dst;
        std::uint32_t lkey, rkey;
    };
    std::vector<Region> regions;
    for (unsigned p = 0; p < planeCount; ++p) {
        Node& client = *planes[p];
        Node& server = *servers[p];
        auto& ccq = client.createCq();
        auto& scq = server.createCq();
        cqs.push_back(&ccq);
        const std::uint64_t bytes = qpsPerPlane * bytesPerQp;
        const std::uint64_t src = server.alloc(bytes);
        const std::uint64_t dst = client.alloc(bytes);
        auto& smr = server.registerMemory(src, bytes,
                                          verbs::AccessFlags::pinned());
        auto& cmr = client.registerMemory(dst, bytes,
                                          verbs::AccessFlags::pinned());
        regions.push_back({src, dst, cmr.lkey(), smr.rkey()});
        for (std::size_t q = 0; q < qpsPerPlane; ++q) {
            auto [cqp, sqp] = cluster.connectRc(client, ccq, server, scq);
            flows.push_back(cqp);
        }
    }
    monitor.watchAll(cluster);

    for (std::size_t i = 0; i < flows.size(); ++i) {
        const Region& r = regions[i / qpsPerPlane];
        const std::uint64_t base = (i % qpsPerPlane) * bytesPerQp;
        for (std::size_t op = 0; op < opsPerQp; ++op)
            flows[i].postRead(r.dst + base + op * 128, r.lkey,
                              r.src + base + op * 128, r.rkey, 100,
                              op + 1);
    }
    const auto completions = [&cqs] {
        std::uint64_t done = 0;
        for (auto* cq : cqs)
            done += cq->totalCompletions();
        return done;
    };
    const std::uint64_t expected = flows.size() * opsPerQp;

    FloodOutcome out;
    out.completed = cluster.runUntil(
        [&] { return completions() >= expected; }, Time::sec(600));
    cluster.advance(Time::ms(1));
    monitor.finalCheck();

    if (jobs > 0) {
        // KernelStats folds the planes into one logical island: one
        // entry for the split client machine plus one per server, and
        // no events lost in the attribution.
        const auto ks = cluster.shardedKernel()->kernelStats();
        EXPECT_EQ(ks.executedPerIsland.size(), 1u + planeCount);
        std::uint64_t sum = 0;
        for (const std::uint64_t executed : ks.executedPerIsland)
            sum += executed;
        EXPECT_EQ(sum, cluster.shardedKernel()->executed());
        EXPECT_GT(ks.executedPerIsland.front(), 0u);
    }

    out.traceHash = monitor.traceHash();
    out.sent = cluster.fabric().totalSent();
    out.delivered = cluster.fabric().totalDelivered();
    out.dropped = cluster.fabric().totalDropped();
    out.completions = completions();
    out.violations = monitor.violationCount();
    return out;
}

} // namespace

TEST(ShardedKernel, PlaneSplitFloodIsBitIdenticalAcrossSchedules)
{
    const FloodOutcome seq = runPlaneSplitFlood(1, 909);
    EXPECT_TRUE(seq.completed);
    EXPECT_EQ(seq.violations, 0u);
    EXPECT_EQ(seq.completions, 4u * 8u * 4u);

    for (const ScheduleMode mode :
         {ScheduleMode::Static, ScheduleMode::Stealing}) {
        for (const unsigned jobs : {2u, 4u}) {
            const FloodOutcome par = runPlaneSplitFlood(jobs, 909, mode);
            EXPECT_TRUE(par == seq)
                << "jobs=" << jobs << " mode="
                << (mode == ScheduleMode::Static ? "static" : "stealing");
        }
    }

    // Identical node/LID topology on the single-queue kernel: the
    // workload outcome (not the schedule) is mode-invariant.
    const FloodOutcome single = runPlaneSplitFlood(0, 909);
    EXPECT_TRUE(single.completed);
    EXPECT_EQ(single.completions, seq.completions);
    EXPECT_EQ(single.violations, 0u);
}

TEST(ShardedKernel, FloodAgreesWithSingleQueueKernelOnVerdicts)
{
    const FloodOutcome single = runMiniFlood(0, 404);
    const FloodOutcome island = runMiniFlood(1, 404);
    // The two kernels schedule differently (island mode is its own
    // deterministic mode), but the workload outcome is mode-invariant:
    // everything completes, the oracle stays clean, nothing is lost.
    EXPECT_TRUE(single.completed);
    EXPECT_TRUE(island.completed);
    EXPECT_EQ(single.completions, island.completions);
    EXPECT_EQ(single.violations, 0u);
    EXPECT_EQ(island.violations, 0u);
    EXPECT_EQ(single.dropped, 0u);
    EXPECT_EQ(island.dropped, 0u);
}

// =====================================================================
// Round three: trigger-based waits must be indistinguishable from
// polling (stop time, trace hash, oracle verdicts) at every jobs
// count, schedule mode and steal policy; the drain paths must cut the
// null-message leapfrog tail without touching any of that.
// =====================================================================

TEST(ShardedKernel, TriggerWaitMatchesPollingExactly)
{
    const FloodOutcome ref = runMiniFlood(1, 511);
    EXPECT_TRUE(ref.completed);
    EXPECT_EQ(ref.violations, 0u);

    struct Combo
    {
        ScheduleMode mode;
        StealPolicy policy;
        const char* name;
    };
    const Combo combos[] = {
        {ScheduleMode::Static, StealPolicy::ReadyQueue, "static"},
        {ScheduleMode::Stealing, StealPolicy::ReadyQueue, "ready"},
        {ScheduleMode::Stealing, StealPolicy::ScanLegacy, "scan"},
    };
    for (const Combo& c : combos) {
        for (const unsigned jobs : {1u, 2u, 4u, 8u}) {
            const FloodOutcome poll =
                runMiniFlood(jobs, 511, c.mode, false, c.policy);
            const FloodOutcome trig =
                runMiniFlood(jobs, 511, c.mode, true, c.policy);
            EXPECT_TRUE(poll == ref)
                << "poll jobs=" << jobs << " sched=" << c.name;
            EXPECT_TRUE(trig == ref)
                << "trigger jobs=" << jobs << " sched=" << c.name
                << ": hash " << std::hex << trig.traceHash << " vs "
                << ref.traceHash << std::dec << ", stop " << trig.stopNs
                << " vs " << ref.stopNs << ", completions "
                << trig.completions << " vs " << ref.completions;
        }
    }
}

TEST(ShardedKernel, TriggerWaitFallbackMatchesSingleQueuePolling)
{
    // jobs == 0: runUntilCompletions degrades to the historical
    // per-event polling loop — bit-identical, goldens untouched.
    const FloodOutcome poll = runMiniFlood(0, 511);
    const FloodOutcome trig =
        runMiniFlood(0, 511, ScheduleMode::Stealing, true);
    EXPECT_TRUE(trig.completed);
    EXPECT_TRUE(trig == poll);
}

namespace {

/**
 * Raw-kernel trigger harness: `n` islands in a bidirectional ring,
 * every island retiring one counter tick per window for `ticks`
 * windows. Crossings can involve several islands' deltas inside one
 * worker pass, and the last executed window sits mid-round — the two
 * trigger edge cases the flood differential cannot isolate.
 */
struct CounterTriggerRun
{
    std::int64_t stopNs = 0;
    bool hit = false;
    std::uint64_t executed = 0;
    std::uint64_t triggerExits = 0;
    std::uint64_t drainAborts = 0;
};

CounterTriggerRun
runCounterTrigger(unsigned jobs, ScheduleMode mode, StealPolicy policy,
                  std::uint64_t target, bool poll)
{
    constexpr std::size_t n = 8;
    constexpr std::uint64_t ticks = 40;

    ShardedKernel kernel(Time::us(1), jobs, mode);
    kernel.setStealPolicy(policy);
    for (std::size_t i = 0; i < n; ++i)
        kernel.addIsland();
    for (std::size_t i = 0; i < n; ++i) {
        kernel.declareEdge(i, (i + 1) % n);
        kernel.declareEdge((i + 1) % n, i);
    }
    std::deque<std::atomic<std::uint64_t>> counts(n);
    for (std::size_t i = 0; i < n; ++i) {
        auto& count = counts[i];
        count.store(0);
        for (std::uint64_t w = 0; w < ticks; ++w) {
            kernel.island(i).schedule(
                Time::ns(static_cast<std::int64_t>(w) * 1000 + 500),
                [&count] {
                    count.fetch_add(1, std::memory_order_relaxed);
                });
        }
        kernel.addTrigger(i, [&count] {
            return count.load(std::memory_order_relaxed);
        });
    }

    CounterTriggerRun out;
    if (poll) {
        out.hit = kernel.runUntil(
            [&counts, target] {
                std::uint64_t sum = 0;
                for (const auto& c : counts)
                    sum += c.load(std::memory_order_relaxed);
                return sum >= target;
            },
            Time::ms(1));
    } else {
        out.hit = kernel.runUntilTriggered(target, Time::ms(1));
    }
    out.stopNs = kernel.now().toNs();
    out.executed = kernel.executed();
    const auto ks = kernel.kernelStats();
    out.triggerExits = ks.triggerExits;
    out.drainAborts = ks.drainAborts;
    return out;
}

} // namespace

TEST(ShardedKernel, TriggerCrossingsFromManyIslandsStopLikePolling)
{
    // All 8 islands tick in every window, so the crossing window's
    // pass accumulates deltas from several islands at once. Targets
    // probe a mid-round crossing, a round-boundary crossing and an
    // unreachable target (limit exit).
    for (const std::uint64_t target : {37ull, 8ull * 16ull, 8ull * 39ull}) {
        const CounterTriggerRun ref = runCounterTrigger(
            1, ScheduleMode::Stealing, StealPolicy::ReadyQueue, target,
            true);
        EXPECT_TRUE(ref.hit) << "target=" << target;
        struct Combo
        {
            ScheduleMode mode;
            StealPolicy policy;
        };
        const Combo combos[] = {
            {ScheduleMode::Static, StealPolicy::ReadyQueue},
            {ScheduleMode::Stealing, StealPolicy::ReadyQueue},
            {ScheduleMode::Stealing, StealPolicy::ScanLegacy},
        };
        for (const Combo& c : combos) {
            for (const unsigned jobs : {1u, 2u, 4u}) {
                const CounterTriggerRun trig = runCounterTrigger(
                    jobs, c.mode, c.policy, target, false);
                EXPECT_EQ(trig.stopNs, ref.stopNs)
                    << "jobs=" << jobs << " target=" << target;
                EXPECT_EQ(trig.executed, ref.executed)
                    << "jobs=" << jobs << " target=" << target;
                EXPECT_TRUE(trig.hit);
                EXPECT_EQ(trig.triggerExits, 1u);
            }
        }
    }

    // Unreachable target: both paths run to the limit and report
    // false, with every event executed.
    const CounterTriggerRun poll = runCounterTrigger(
        1, ScheduleMode::Stealing, StealPolicy::ReadyQueue, 10000, true);
    const CounterTriggerRun trig = runCounterTrigger(
        2, ScheduleMode::Stealing, StealPolicy::ReadyQueue, 10000, false);
    EXPECT_FALSE(poll.hit);
    EXPECT_FALSE(trig.hit);
    EXPECT_EQ(trig.executed, 8u * 40u);
    EXPECT_EQ(trig.stopNs, poll.stopNs);
    EXPECT_EQ(trig.triggerExits, 0u);
}

TEST(ShardedKernel, TriggerRegisteredAfterRunStartCountsPriorWork)
{
    // Work retired before the trigger is registered must count toward
    // the target (the counters are absolute, not deltas): register
    // after a partial run, ask for a target already met, and the call
    // returns satisfied without advancing virtual time.
    ShardedKernel kernel(Time::us(1), 2);
    kernel.addIsland();
    kernel.addIsland();
    std::deque<std::atomic<std::uint64_t>> counts(2);
    counts[0].store(0);
    counts[1].store(0);
    for (std::size_t i = 0; i < 2; ++i) {
        for (int w = 0; w < 8; ++w) {
            auto& count = counts[i];
            kernel.island(i).schedule(Time::us(w), [&count] {
                count.fetch_add(1, std::memory_order_relaxed);
            });
        }
    }
    EXPECT_FALSE(kernel.run(Time::us(3)));  // events remain past 3 us
    const std::uint64_t before = counts[0].load() + counts[1].load();
    EXPECT_GE(before, 2u);

    kernel.addTrigger(0, [&counts] { return counts[0].load(); });
    kernel.addTrigger(1, [&counts] { return counts[1].load(); });
    const Time at = kernel.now();
    EXPECT_TRUE(kernel.runUntilTriggered(before, Time::ms(1)));
    EXPECT_EQ(kernel.now(), at);  // satisfied before any round ran

    // And a later target drains the rest normally.
    EXPECT_TRUE(kernel.runUntilTriggered(16, Time::ms(1)));
    EXPECT_EQ(counts[0].load() + counts[1].load(), 16u);
    EXPECT_GT(kernel.kernelStats().triggerExits, 0u);
}

TEST(ShardedKernel, SequentialDrainProbeAbortsLeapfrogTail)
{
    // 64-island bidirectional ring with all events in the round's
    // first window: once they retire, the rest of the round is pure
    // null-message leapfrogging — 64 islands x 15 windows of clock
    // churn with nothing underneath. The jobs=1 drain probe must
    // detect the quiet kernel and abort the round (deterministically),
    // and the abort must not skip any event.
    ShardedKernel kernel(Time::us(1), 1);
    constexpr std::size_t n = 64;
    for (std::size_t i = 0; i < n; ++i)
        kernel.addIsland();
    for (std::size_t i = 0; i < n; ++i) {
        kernel.declareEdge(i, (i + 1) % n);
        kernel.declareEdge((i + 1) % n, i);
    }
    std::uint64_t ran = 0;
    for (std::size_t i = 0; i < n; ++i)
        kernel.island(i).schedule(
            Time::ns(static_cast<std::int64_t>(i) * 10),
            [&ran] { ++ran; });
    EXPECT_TRUE(kernel.run());
    EXPECT_EQ(ran, n);
    EXPECT_EQ(kernel.executed(), n);
    EXPECT_GT(kernel.kernelStats().drainAborts, 0u);
}

TEST(ShardedKernel, StealingDrainTokenKeepsResultsIntact)
{
    // The same quiet-tail shape under the multi-worker Safra-style
    // token (Stealing, both steal policies): the abort is a wall-clock
    // optimization, so drainAborts is not asserted — only that every
    // event ran and nothing below the limit was skipped.
    for (const StealPolicy policy :
         {StealPolicy::ReadyQueue, StealPolicy::ScanLegacy}) {
        ShardedKernel kernel(Time::us(1), 4, ScheduleMode::Stealing);
        kernel.setStealPolicy(policy);
        constexpr std::size_t n = 64;
        for (std::size_t i = 0; i < n; ++i)
            kernel.addIsland();
        for (std::size_t i = 0; i < n; ++i) {
            kernel.declareEdge(i, (i + 1) % n);
            kernel.declareEdge((i + 1) % n, i);
        }
        std::atomic<std::uint64_t> ran{0};
        for (std::size_t i = 0; i < n; ++i)
            kernel.island(i).schedule(
                Time::ns(static_cast<std::int64_t>(i) * 10),
                [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
        EXPECT_TRUE(kernel.run());
        EXPECT_EQ(ran.load(), n);
        EXPECT_EQ(kernel.executed(), n);
        EXPECT_EQ(kernel.pending(), 0u);
    }
}
