/**
 * @file
 * Property-style parameterized tests of whole-protocol invariants:
 * reliability under injected loss, completion guarantees across
 * micro-benchmark geometries, damming-window laws, and data integrity.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "net/loss.hh"
#include "pitfall/microbench.hh"

using namespace ibsim;
using namespace ibsim::pitfall;

namespace {

/** Verify the READ destinations hold the server's fill pattern. */
void
expectDataLanded(MicroBenchmark& bench, const MicroBenchConfig& config)
{
    const auto* mr = bench.clientMr();
    ASSERT_NE(mr, nullptr);
    const auto bytes = bench.client().memory().read(
        mr->addr(), config.numOps * config.size);
    for (std::uint64_t i = 0; i < bytes.size(); ++i) {
        ASSERT_EQ(bytes[i], static_cast<std::uint8_t>(i * 131 + 7))
            << "data mismatch at offset " << i;
    }
}

} // namespace

/**
 * Reliability invariant: whatever the loss rate, RC delivers every
 * operation exactly once with intact data (the paper's Sec. II-C
 * retransmission machinery).
 */
class LossSweep : public ::testing::TestWithParam<double>
{};

TEST_P(LossSweep, AllOpsCompleteWithIntactData)
{
    const double loss_rate = GetParam();
    MicroBenchConfig config;
    config.numOps = 64;
    config.numQps = 4;
    config.size = 100;
    config.interval = Time::us(20);
    config.odpMode = OdpMode::None;
    config.qpConfig.cack = 1;  // clamps to the 537 ms floor
    config.capture = false;
    config.waitLimit = Time::sec(200);

    MicroBenchmark bench(config, rnic::DeviceProfile::knl(), 77);
    bench.cluster().fabric().setLossModel(
        std::make_unique<net::BernoulliLoss>(loss_rate));

    auto result = bench.run();
    ASSERT_TRUE(result.completedAll);
    EXPECT_FALSE(result.qpError);
    for (const Time& t : result.completionTimes)
        EXPECT_NE(t, Time::max());
    if (loss_rate > 0.0) {
        EXPECT_GT(result.timeouts + result.seqNaksReceived, 0u);
    }
    expectDataLanded(bench, config);
}

INSTANTIATE_TEST_SUITE_P(LossRates, LossSweep,
                         ::testing::Values(0.0, 0.01, 0.05, 0.15));

/**
 * Completion invariant: every (QPs, ops, mode) geometry finishes with
 * every completion accounted for and correct data, pitfalls or not.
 */
class GeometrySweep
    : public ::testing::TestWithParam<std::tuple<int, int, OdpMode>>
{};

TEST_P(GeometrySweep, EveryOperationCompletesWithData)
{
    const auto [qps, ops, mode] = GetParam();
    MicroBenchConfig config;
    config.numOps = static_cast<std::size_t>(ops);
    config.numQps = static_cast<std::size_t>(qps);
    config.size = 64;
    config.interval = Time::us(15);
    config.odpMode = mode;
    config.qpConfig = MicroBenchConfig::ucxDefaultConfig();
    config.capture = false;
    config.waitLimit = Time::sec(300);

    MicroBenchmark bench(config, rnic::DeviceProfile::knl(), 31);
    auto result = bench.run();
    ASSERT_TRUE(result.completedAll)
        << "qps=" << qps << " ops=" << ops << " mode="
        << odpModeName(mode);
    EXPECT_FALSE(result.qpError);
    for (const Time& t : result.completionTimes)
        EXPECT_NE(t, Time::max());
    expectDataLanded(bench, config);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometrySweep,
    ::testing::Combine(::testing::Values(1, 3, 16, 64),
                       ::testing::Values(8, 64, 256),
                       ::testing::Values(OdpMode::None,
                                         OdpMode::ServerSide,
                                         OdpMode::ClientSide,
                                         OdpMode::BothSide)));

/**
 * Damming-window law (paper Figs. 6-7): with two READs on a quirky
 * device, intervals inside the pending window time out and intervals
 * beyond it do not. The window is ~3.5x the RNR delay for server-side
 * ODP and the ~0.5 ms retransmission gap for client-side.
 */
class DammingLawSweep
    : public ::testing::TestWithParam<std::tuple<double, OdpMode>>
{};

TEST_P(DammingLawSweep, TimeoutIffInsideWindow)
{
    const auto [interval_ms, mode] = GetParam();
    MicroBenchConfig config;
    config.numOps = 2;
    config.interval = Time::ms(interval_ms);
    config.odpMode = mode;
    config.capture = false;

    MicroBenchmark bench(config, rnic::DeviceProfile::knl(), 13);
    auto result = bench.run();
    ASSERT_TRUE(result.completedAll);

    const double window_ms =
        mode == OdpMode::ClientSide ? 0.5 : 3.5 * 1.28;
    // Stay clear of the jittered boundary (+-15%).
    if (interval_ms > 0.1 && interval_ms < window_ms * 0.85) {
        EXPECT_GE(result.timeouts, 1u)
            << "interval " << interval_ms << " ms should dam";
        EXPECT_GT(result.executionTime.toMs(), 400.0);
    } else if (interval_ms > window_ms * 1.15) {
        EXPECT_EQ(result.timeouts, 0u)
            << "interval " << interval_ms << " ms should be safe";
        EXPECT_LT(result.executionTime.toMs(), 50.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Intervals, DammingLawSweep,
    ::testing::Combine(::testing::Values(0.3, 1.0, 2.0, 3.5, 5.5, 8.0),
                       ::testing::Values(OdpMode::ServerSide,
                                         OdpMode::ClientSide,
                                         OdpMode::BothSide)));

/**
 * Device-law sweep: the damming quirk follows the profile flag; the
 * timeout floor follows the vendor minimum.
 */
class DeviceSweep : public ::testing::TestWithParam<int>
{};

TEST_P(DeviceSweep, QuirkFollowsProfile)
{
    const auto catalog = rnic::DeviceProfile::table1();
    const auto& profile = catalog[static_cast<std::size_t>(GetParam())];

    MicroBenchConfig config;
    config.numOps = 2;
    config.interval = Time::ms(1);
    config.odpMode = OdpMode::BothSide;
    config.capture = false;

    MicroBenchmark bench(config, profile, 21);
    auto result = bench.run();
    ASSERT_TRUE(result.completedAll);
    if (profile.dammingQuirk) {
        EXPECT_GE(result.timeouts, 1u) << profile.systemName;
    } else {
        EXPECT_EQ(result.timeouts, 0u) << profile.systemName;
    }
}

INSTANTIATE_TEST_SUITE_P(AllTable1Systems, DeviceSweep,
                         ::testing::Range(0, 8));
