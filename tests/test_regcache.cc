/**
 * @file
 * Tests of the pin-down registration cache and implicit ODP — the two
 * memory-management alternatives framing the paper's motivation.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.hh"
#include "regcache/registration_cache.hh"

using namespace ibsim;
using namespace ibsim::regcache;

namespace {

struct RegCacheFixture : public ::testing::Test
{
    Cluster cluster{rnic::DeviceProfile::connectX4(), 1, 3};
    Node& node = cluster.node(0);

    RegCacheConfig
    smallConfig()
    {
        RegCacheConfig config;
        config.capacityBytes = 8 * mem::pageSize;
        config.deregisterBatch = 2;
        return config;
    }
};

} // namespace

TEST_F(RegCacheFixture, MissRegistersHitReuses)
{
    RegistrationCache cache(node, cluster.events(), smallConfig());
    const auto buf = node.alloc(4 * mem::pageSize);

    auto& mr1 = cache.acquire(buf, 100);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().registrations, 1u);
    EXPECT_GT(cache.stats().managementTime, Time());

    // Same page: hit, same MR, no extra cost.
    const Time before = cache.stats().managementTime;
    auto& mr2 = cache.acquire(buf + 50, 20);
    EXPECT_EQ(&mr1, &mr2);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().managementTime, before);
}

TEST_F(RegCacheFixture, RegistrationIsPageAlignedAndCovering)
{
    RegistrationCache cache(node, cluster.events(), smallConfig());
    const auto buf = node.alloc(4 * mem::pageSize);
    // A range straddling a page boundary registers both pages.
    auto& mr = cache.acquire(buf + mem::pageSize - 10, 20);
    EXPECT_EQ(mr.addr() % mem::pageSize, 0u);
    EXPECT_GE(mr.length(), 2 * mem::pageSize);
    EXPECT_TRUE(mr.contains(buf + mem::pageSize - 10, 20));
}

TEST_F(RegCacheFixture, LruEvictionBeyondCapacity)
{
    RegistrationCache cache(node, cluster.events(), smallConfig());
    const auto buf = node.alloc(32 * mem::pageSize);

    // Fill: 8 one-page regions = the 8-page budget.
    for (int i = 0; i < 8; ++i)
        cache.acquire(buf + i * mem::pageSize, 64);
    EXPECT_EQ(cache.pinnedBytes(), 8 * mem::pageSize);
    EXPECT_EQ(cache.stats().evictions, 0u);

    // Touch region 0 so it is MRU, then overflow the budget.
    cache.acquire(buf, 64);
    cache.acquire(buf + 20 * mem::pageSize, 64);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.pinnedBytes(), 8 * mem::pageSize);

    // The evicted victim must be the LRU (page 1), not the re-touched
    // page 0: acquiring page 0 again is still a hit.
    const auto hits = cache.stats().hits;
    cache.acquire(buf, 64);
    EXPECT_EQ(cache.stats().hits, hits + 1);
    // Page 1 was evicted: re-acquiring it is a miss.
    const auto misses = cache.stats().misses;
    cache.acquire(buf + mem::pageSize, 64);
    EXPECT_EQ(cache.stats().misses, misses + 1);
}

TEST_F(RegCacheFixture, BatchedDeregistrationAmortizes)
{
    auto config = smallConfig();
    config.deregisterBatch = 4;
    RegistrationCache cache(node, cluster.events(), config);
    const auto buf = node.alloc(64 * mem::pageSize);

    // Evict three regions: batch not full, nothing deregistered yet.
    for (int i = 0; i < 11; ++i)
        cache.acquire(buf + i * mem::pageSize, 64);
    EXPECT_EQ(cache.stats().evictions, 3u);
    EXPECT_EQ(cache.stats().deregistrations, 0u);

    // A fourth eviction fills the batch and flushes it.
    cache.acquire(buf + 12 * mem::pageSize, 64);
    EXPECT_EQ(cache.stats().deregistrations, 4u);
}

TEST_F(RegCacheFixture, FlushDeregistersEverything)
{
    RegistrationCache cache(node, cluster.events(), smallConfig());
    const auto buf = node.alloc(8 * mem::pageSize);
    for (int i = 0; i < 4; ++i)
        cache.acquire(buf + i * mem::pageSize, 64);
    cache.flush();
    EXPECT_EQ(cache.cachedRegions(), 0u);
    EXPECT_EQ(cache.pinnedBytes(), 0u);
    EXPECT_EQ(cache.stats().deregistrations, 4u);
}

TEST_F(RegCacheFixture, UnboundedCapacityNeverEvicts)
{
    RegCacheConfig config;
    config.capacityBytes = 0;
    RegistrationCache cache(node, cluster.events(), config);
    const auto buf = node.alloc(64 * mem::pageSize);
    for (int i = 0; i < 64; ++i)
        cache.acquire(buf + i * mem::pageSize, 64);
    EXPECT_EQ(cache.stats().evictions, 0u);
    EXPECT_EQ(cache.cachedRegions(), 64u);
}

TEST(ImplicitOdp, CoversEveryAddressAndFaultsOnDemand)
{
    Cluster cluster(rnic::DeviceProfile::connectX4(), 2, 11);
    Node& client = cluster.node(0);
    Node& server = cluster.node(1);
    auto& ccq = client.createCq();
    auto& scq = server.createCq();
    auto [cqp, sqp] = cluster.connectRc(client, ccq, server, scq);

    // The server registers nothing per-buffer: one implicit region.
    auto& imr = server.registerImplicitOdp();
    EXPECT_TRUE(imr.odp());
    EXPECT_TRUE(imr.implicit());
    EXPECT_TRUE(imr.contains(0x123456, 1 << 20));

    const auto dst = client.alloc(4096);
    auto& cmr = client.registerMemory(dst, 4096,
                                      verbs::AccessFlags::pinned());

    // READ any freshly-allocated server buffer through the implicit key.
    const auto src = server.alloc(4096);
    server.memory().write(src, std::vector<std::uint8_t>(100, 0x3C));
    cqp.postRead(dst, cmr.lkey(), src, imr.rkey(), 100, 1);
    ASSERT_TRUE(cluster.runUntil(
        [&] { return ccq.totalCompletions() == 1; }, Time::sec(2)));
    EXPECT_TRUE(ccq.poll()[0].ok());
    EXPECT_EQ(client.memory().read(dst, 100),
              std::vector<std::uint8_t>(100, 0x3C));
    EXPECT_EQ(server.driver().stats().faultsResolved, 1u);

    // A second buffer faults independently -- still no registration call.
    const auto src2 = server.alloc(4096);
    server.memory().write(src2, std::vector<std::uint8_t>(100, 0x4D));
    cqp.postRead(dst, cmr.lkey(), src2, imr.rkey(), 100, 2);
    ASSERT_TRUE(cluster.runUntil(
        [&] { return ccq.totalCompletions() == 2; }, Time::sec(2)));
    EXPECT_EQ(server.driver().stats().faultsResolved, 2u);
}
