/**
 * @file
 * Tests of the UD transport and the datagram RPC layer (the HERD/FaSST
 * design point from the paper's related work).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "cluster/cluster.hh"
#include "net/loss.hh"
#include "rpc/rpc.hh"

using namespace ibsim;

namespace {

struct UdFixture : public ::testing::Test
{
    Cluster cluster{rnic::DeviceProfile::connectX4(), 3, 41};
    Node& a = cluster.node(0);
    Node& b = cluster.node(1);
    Node& c = cluster.node(2);
};

verbs::QpConfig
ud()
{
    verbs::QpConfig config;
    config.transport = verbs::Transport::Ud;
    return config;
}

} // namespace

TEST_F(UdFixture, DatagramReachesAnyAddressedQp)
{
    auto& acq = a.createCq();
    auto& bcq = b.createCq();
    auto aqp = a.createQp(acq, ud());
    auto bqp = b.createQp(bcq, ud());
    aqp.connect(0, 0);
    bqp.connect(0, 0);

    const auto src = a.alloc(4096);
    const auto dst = b.alloc(4096);
    a.touch(src, 4096);
    auto& amr = a.registerMemory(src, 4096, verbs::AccessFlags::pinned());
    auto& bmr = b.registerMemory(dst, 4096, verbs::AccessFlags::pinned());
    a.memory().write(src, std::vector<std::uint8_t>(32, 0x77));

    bqp.postRecv(dst, bmr.lkey(), 4096, 5);
    aqp.postSendUd({b.lid(), bqp.qpn()}, src, amr.lkey(), 32, 6);
    ASSERT_TRUE(cluster.runUntil(
        [&] { return bcq.totalCompletions() == 1; }, Time::ms(10)));

    auto wcs = bcq.poll();
    EXPECT_EQ(wcs[0].wrId, 5u);
    // The datagram carries its source address for reply routing.
    EXPECT_EQ(wcs[0].srcLid, a.lid());
    EXPECT_EQ(wcs[0].srcQpn, aqp.qpn());
    EXPECT_EQ(b.memory().read(dst, 32),
              std::vector<std::uint8_t>(32, 0x77));
}

TEST_F(UdFixture, OneQpTalksToManyPeers)
{
    auto& acq = a.createCq();
    auto aqp = a.createQp(acq, ud());
    aqp.connect(0, 0);
    const auto src = a.alloc(4096);
    a.touch(src, 4096);
    auto& amr = a.registerMemory(src, 4096, verbs::AccessFlags::pinned());

    // Two receivers on different nodes, one sender QP.
    auto& bcq = b.createCq();
    auto bqp = b.createQp(bcq, ud());
    bqp.connect(0, 0);
    const auto bdst = b.alloc(4096);
    auto& bmr = b.registerMemory(bdst, 4096, verbs::AccessFlags::pinned());
    bqp.postRecv(bdst, bmr.lkey(), 4096, 1);

    auto& ccq = c.createCq();
    auto cqp = c.createQp(ccq, ud());
    cqp.connect(0, 0);
    const auto cdst = c.alloc(4096);
    auto& cmr = c.registerMemory(cdst, 4096, verbs::AccessFlags::pinned());
    cqp.postRecv(cdst, cmr.lkey(), 4096, 2);

    aqp.postSendUd({b.lid(), bqp.qpn()}, src, amr.lkey(), 16, 10);
    aqp.postSendUd({c.lid(), cqp.qpn()}, src, amr.lkey(), 16, 11);
    ASSERT_TRUE(cluster.runUntil(
        [&] {
            return bcq.totalCompletions() == 1 &&
                   ccq.totalCompletions() == 1;
        },
        Time::ms(10)));
}

TEST_F(UdFixture, LossIsSilentAndNonFatal)
{
    cluster.fabric().setLossModel(
        std::make_unique<net::BernoulliLoss>(1.0));
    auto& acq = a.createCq();
    auto aqp = a.createQp(acq, ud());
    aqp.connect(0, 0);
    const auto src = a.alloc(4096);
    a.touch(src, 4096);
    auto& amr = a.registerMemory(src, 4096, verbs::AccessFlags::pinned());

    aqp.postSendUd({b.lid(), 12345}, src, amr.lkey(), 16, 1);
    EXPECT_EQ(acq.totalCompletions(), 1u);  // local completion regardless
    cluster.drain(Time::ms(10));
    EXPECT_FALSE(aqp.inError());
}

TEST(RpcTest, EchoRoundTrip)
{
    Cluster cluster(rnic::DeviceProfile::connectX4(), 2, 43);
    rpc::RpcServer server(cluster, cluster.node(1),
                          [](const std::vector<std::uint8_t>& req) {
                              auto resp = req;
                              for (auto& b : resp)
                                  b ^= 0xff;
                              return resp;
                          });
    rpc::RpcClient client(cluster, cluster.node(0), server.address());

    const std::vector<std::uint8_t> req{1, 2, 3, 4};
    const auto id = client.call(req);
    ASSERT_TRUE(cluster.runUntil([&] { return client.completed(id); },
                                 Time::ms(50)));
    EXPECT_FALSE(client.failed(id));
    EXPECT_EQ(client.response(id),
              (std::vector<std::uint8_t>{0xfe, 0xfd, 0xfc, 0xfb}));
    EXPECT_EQ(server.requestsServed(), 1u);
}

TEST(RpcTest, PipelinedCallsAllComplete)
{
    Cluster cluster(rnic::DeviceProfile::connectX4(), 2, 43);
    rpc::RpcServer server(cluster, cluster.node(1),
                          [](const std::vector<std::uint8_t>& req) {
                              return req;
                          });
    rpc::RpcClient client(cluster, cluster.node(0), server.address());

    std::vector<std::uint64_t> ids;
    for (std::uint8_t i = 0; i < 32; ++i)
        ids.push_back(client.call({i}));
    ASSERT_TRUE(cluster.runUntil(
        [&] {
            for (auto id : ids) {
                if (!client.completed(id))
                    return false;
            }
            return true;
        },
        Time::ms(100)));
    for (std::uint8_t i = 0; i < 32; ++i)
        EXPECT_EQ(client.response(ids[i])[0], i);
    EXPECT_EQ(client.stats().retries, 0u);
}

TEST(RpcTest, CoarseTimeoutRecoversFromLoss)
{
    Cluster cluster(rnic::DeviceProfile::knl(), 2, 43);
    rpc::RpcServer server(cluster, cluster.node(1),
                          [](const std::vector<std::uint8_t>& req) {
                              return req;
                          });
    rpc::RpcClientConfig config;
    config.retryTimeout = Time::ms(2);
    rpc::RpcClient client(cluster, cluster.node(0), server.address(),
                          config);
    cluster.fabric().setLossModel(
        std::make_unique<net::BernoulliLoss>(0.3));

    const Time start = cluster.now();
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 50; ++i)
        ids.push_back(client.call({static_cast<std::uint8_t>(i)}));
    ASSERT_TRUE(cluster.runUntil(
        [&] {
            for (auto id : ids) {
                if (!client.completed(id))
                    return false;
            }
            return true;
        },
        Time::sec(2)));
    EXPECT_GT(client.stats().retries, 0u);
    EXPECT_EQ(client.stats().failed, 0u);
    // Whole batch recovered at the millisecond scale -- no RC transport
    // timeout anywhere near the path.
    EXPECT_LT((cluster.now() - start).toMs(), 200.0);
}

TEST(RpcTest, GivesUpAfterRetries)
{
    Cluster cluster(rnic::DeviceProfile::connectX4(), 2, 43);
    rpc::RpcServer server(cluster, cluster.node(1),
                          [](const std::vector<std::uint8_t>& req) {
                              return req;
                          });
    rpc::RpcClientConfig config;
    config.retryTimeout = Time::us(200);
    config.maxRetries = 3;
    rpc::RpcClient client(cluster, cluster.node(0), server.address(),
                          config);
    cluster.fabric().setLossModel(
        std::make_unique<net::BernoulliLoss>(1.0));

    const auto id = client.call({9});
    cluster.drain(Time::ms(50));
    EXPECT_TRUE(client.completed(id));
    EXPECT_TRUE(client.failed(id));
    EXPECT_EQ(client.stats().failed, 1u);
}
