/**
 * @file
 * Chaos engine + invariant oracle tests.
 *
 * Strategy: run a randomized RC workload (READ/WRITE/SEND mix over ODP
 * regions) under each fault class and require two things at once — the
 * workload completes, and the invariant monitor stays clean. Then flip
 * the setup around: a deliberately broken injector (replaying stale
 * packets without chaos provenance) and a CQ starved of capacity must
 * both be *caught* by the oracle, proving the clean results mean
 * something.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "chaos/chaos_engine.hh"
#include "chaos/fault_injector.hh"
#include "chaos/invariant_monitor.hh"
#include "chaos/port_events.hh"
#include "cluster/cluster.hh"
#include "cluster/topology.hh"
#include "net/loss.hh"
#include "swrel/soft_reliable.hh"

using namespace ibsim;

namespace {

/**
 * A randomized RC workload instrumented with the chaos engine and the
 * invariant monitor. Construction wires everything; run() posts a mixed
 * op stream and waits for it to drain.
 */
struct ChaosWorkload
{
    explicit ChaosWorkload(const chaos::ChaosConfig& cfg,
                           std::uint64_t cluster_seed = 7,
                           std::size_t op_count = 60)
        : cluster(rnic::DeviceProfile::connectX4(), 2, cluster_seed),
          engine(cluster.events(), cfg), monitor(cluster.fabric()),
          ops(op_count)
    {
        acq = &a.createCq();
        bcq = &b.createCq();
        auto [qa, qb] = cluster.connectRc(a, *acq, b, *bcq);
        aqp = qa;
        bqp = qb;

        src = a.alloc(bufBytes);
        dst = b.alloc(bufBytes);
        a.touch(src, bufBytes);
        b.touch(dst, bufBytes);
        amr = &a.registerMemory(src, bufBytes, verbs::AccessFlags::odp());
        bmr = &b.registerMemory(dst, bufBytes, verbs::AccessFlags::odp());

        engine.install(cluster.fabric());
        monitor.watch(a.rnic(), aqp.context());
        monitor.watch(b.rnic(), bqp.context());

        // Enough RECVs for every op to be a SEND.
        for (std::size_t i = 0; i < ops; ++i)
            bqp.postRecv(dst + recvBase + i * slotBytes, bmr->lkey(),
                         slotBytes, 1000 + i);
    }

    /** Post the op mix and wait for the requester to drain. */
    bool
    run(bool wait_on_totals = true)
    {
        Rng& rng = cluster.rng();
        for (std::size_t i = 0; i < ops; ++i) {
            const std::uint64_t off = (i % 64) * slotBytes;
            const auto len = static_cast<std::uint32_t>(
                rng.uniformInt(16, 256));
            switch (rng.uniformInt(0, 2)) {
              case 0:
                aqp.postWrite(src + off, amr->lkey(), dst + off,
                              bmr->rkey(), len, i + 1);
                break;
              case 1:
                aqp.postRead(src + readBase + off, amr->lkey(),
                             dst + readBase + off, bmr->rkey(), len,
                             i + 1);
                break;
              default:
                aqp.postSend(src + sendBase + off, amr->lkey(), len,
                             i + 1);
                break;
            }
            cluster.advance(rng.uniformTime(Time::us(1), Time::us(20)));
        }
        const bool ok = cluster.runUntil(
            [&] {
                if (aqp.outstanding() != 0)
                    return false;
                return !wait_on_totals ||
                       acq->totalCompletions() >= ops;
            },
            cluster.now() + Time::sec(600));
        monitor.finalCheck();
        return ok;
    }

    static constexpr std::uint64_t bufBytes = 64 * 1024;
    static constexpr std::uint64_t slotBytes = 256;
    static constexpr std::uint64_t readBase = 16 * 1024;
    static constexpr std::uint64_t sendBase = 32 * 1024;
    static constexpr std::uint64_t recvBase = 32 * 1024;

    Cluster cluster;
    chaos::ChaosEngine engine;
    chaos::InvariantMonitor monitor;
    std::size_t ops;
    Node& a = cluster.node(0);
    Node& b = cluster.node(1);
    verbs::CompletionQueue* acq = nullptr;
    verbs::CompletionQueue* bcq = nullptr;
    verbs::QueuePair aqp;
    verbs::QueuePair bqp;
    std::uint64_t src = 0;
    std::uint64_t dst = 0;
    verbs::MemoryRegion* amr = nullptr;
    verbs::MemoryRegion* bmr = nullptr;
};

chaos::ChaosConfig
everythingConfig(std::uint64_t seed)
{
    chaos::ChaosConfig cfg;
    cfg.seed = seed;
    cfg.dropRate = 0.02;
    cfg.dupRate = 0.05;
    cfg.reorderRate = 0.05;
    cfg.corruptRate = 0.03;
    cfg.delayRate = 0.2;
    cfg.forgedNakRate = 0.01;
    cfg.flapPeriod = Time::ms(5);
    cfg.flapDown = Time::us(200);
    return cfg;
}

} // namespace

// ---------------------------------------------------------------------
// Determinism: the whole point of seeding every chaos decision through
// exp::SeedStream is bit-identical replay.
// ---------------------------------------------------------------------

TEST(ChaosDeterminism, SameSeedsSameTraceAndReport)
{
    auto once = [] {
        ChaosWorkload w(everythingConfig(42), /*cluster_seed=*/7);
        w.run();
        return std::make_tuple(w.monitor.traceHash(),
                               w.monitor.packetsObserved(),
                               w.monitor.violationCount(),
                               w.monitor.report(),
                               w.engine.injector().stats());
    };
    const auto first = once();
    const auto second = once();
    EXPECT_EQ(std::get<0>(first), std::get<0>(second));
    EXPECT_EQ(std::get<1>(first), std::get<1>(second));
    EXPECT_EQ(std::get<2>(first), std::get<2>(second));
    EXPECT_EQ(std::get<3>(first), std::get<3>(second));
    const auto& s1 = std::get<4>(first);
    const auto& s2 = std::get<4>(second);
    EXPECT_EQ(s1.packetsSeen, s2.packetsSeen);
    EXPECT_EQ(s1.delayed, s2.delayed);
    EXPECT_EQ(s1.reordered, s2.reordered);
    EXPECT_EQ(s1.duplicated, s2.duplicated);
    EXPECT_EQ(s1.corrupted, s2.corrupted);
    EXPECT_EQ(s1.dropped, s2.dropped);
    EXPECT_EQ(s1.naksForged, s2.naksForged);
}

TEST(ChaosDeterminism, DifferentChaosSeedDifferentSchedule)
{
    auto hash = [](std::uint64_t chaos_seed) {
        ChaosWorkload w(everythingConfig(chaos_seed), /*cluster_seed=*/7);
        w.run();
        return w.monitor.traceHash();
    };
    EXPECT_NE(hash(1), hash(2));
}

// ---------------------------------------------------------------------
// Each fault class in isolation: the workload completes and the oracle
// stays clean (the transport absorbed the fault correctly).
// ---------------------------------------------------------------------

TEST(ChaosFaults, DelayJitterIsAbsorbed)
{
    chaos::ChaosConfig cfg;
    cfg.seed = 3;
    cfg.delayRate = 1.0;
    cfg.delayMin = Time::us(1);
    cfg.delayMax = Time::us(200);
    ChaosWorkload w(cfg);
    EXPECT_TRUE(w.run());
    EXPECT_GT(w.engine.injector().stats().delayed, 0u);
    EXPECT_TRUE(w.monitor.clean()) << w.monitor.report();
}

TEST(ChaosFaults, ReorderingRecoversViaGoBackN)
{
    chaos::ChaosConfig cfg;
    cfg.seed = 4;
    cfg.reorderRate = 0.3;
    cfg.reorderMaxHold = Time::us(300);
    ChaosWorkload w(cfg);
    EXPECT_TRUE(w.run());
    EXPECT_GT(w.engine.injector().stats().reordered, 0u);
    EXPECT_TRUE(w.monitor.clean()) << w.monitor.report();
}

TEST(ChaosFaults, DuplicatesAreIdempotent)
{
    chaos::ChaosConfig cfg;
    cfg.seed = 5;
    cfg.dupRate = 0.5;
    ChaosWorkload w(cfg);
    EXPECT_TRUE(w.run());
    EXPECT_GT(w.engine.injector().stats().duplicated, 0u);
    // A duplicate RC delivery consuming a second RECV or completing a WR
    // twice would trip recv-/send-exactly-once here.
    EXPECT_TRUE(w.monitor.clean()) << w.monitor.report();
}

TEST(ChaosFaults, DropsRecoverViaTimeout)
{
    chaos::ChaosConfig cfg;
    cfg.seed = 6;
    cfg.dropRate = 0.05;
    ChaosWorkload w(cfg);
    EXPECT_TRUE(w.run());
    EXPECT_GT(w.engine.injector().stats().dropped, 0u);
    EXPECT_TRUE(w.monitor.clean()) << w.monitor.report();
}

TEST(ChaosFaults, CorruptionFailsIcrcAndActsAsLoss)
{
    chaos::ChaosConfig cfg;
    cfg.seed = 7;
    cfg.corruptRate = 0.1;
    cfg.corruptEvadeCrc = 0.0;
    ChaosWorkload w(cfg);
    EXPECT_TRUE(w.run());
    EXPECT_GT(w.engine.injector().stats().corrupted, 0u);
    EXPECT_GT(w.a.rnic().stats().crcDrops + w.b.rnic().stats().crcDrops,
              0u);
    EXPECT_TRUE(w.monitor.clean()) << w.monitor.report();
}

TEST(ChaosFaults, CrcEvadingCorruptionNeverCrashes)
{
    // Mangled packets reach the protocol engines. The transport may
    // legitimately error the QP (e.g. a corrupted rkey draws a remote
    // access NAK), but it must degrade gracefully: no assert, no wild
    // responder arithmetic, every posted WR still completes (possibly
    // flushed).
    chaos::ChaosConfig cfg;
    cfg.seed = 8;
    cfg.corruptRate = 0.15;
    cfg.corruptEvadeCrc = 1.0;
    ChaosWorkload w(cfg);
    const bool completed = w.run();
    EXPECT_TRUE(completed || w.aqp.inError());
    EXPECT_GT(w.engine.injector().stats().corrupted, 0u);
}

TEST(ChaosFaults, LinkFlapWindowsAreSurvived)
{
    chaos::ChaosConfig cfg;
    cfg.seed = 9;
    cfg.flapPeriod = Time::ms(2);
    cfg.flapDown = Time::us(100);
    ChaosWorkload w(cfg);
    EXPECT_TRUE(w.run());
    EXPECT_GT(w.engine.injector().stats().flapDropped, 0u);
    EXPECT_TRUE(w.monitor.clean()) << w.monitor.report();
}

TEST(ChaosFaults, ForgedNaksOnlyCauseBenignReplays)
{
    chaos::ChaosConfig cfg;
    cfg.seed = 10;
    cfg.forgedNakRate = 0.05;
    ChaosWorkload w(cfg);
    EXPECT_TRUE(w.run());
    EXPECT_GT(w.engine.injector().stats().naksForged, 0u);
    // A forged PSN-sequence NAK provokes a spurious go-back-N replay;
    // the replay must stay inside the posted window (retrans-window) and
    // must not double-complete anything.
    EXPECT_TRUE(w.monitor.clean()) << w.monitor.report();
}

TEST(ChaosFaults, OdpLatencySpikesAreAbsorbed)
{
    chaos::ChaosConfig cfg;
    cfg.seed = 11;
    ChaosWorkload w(cfg);
    w.engine.addOdpLatencySpikes(w.a.driver(), 0.5, 8.0);
    w.engine.addOdpLatencySpikes(w.b.driver(), 0.5, 8.0);
    EXPECT_TRUE(w.run());
    EXPECT_GT(w.engine.stats().odpSpikes, 0u);
    EXPECT_TRUE(w.monitor.clean()) << w.monitor.report();
}

TEST(ChaosFaults, InvalidationStormIsSurvived)
{
    chaos::ChaosConfig cfg;
    cfg.seed = 12;
    ChaosWorkload w(cfg);
    w.engine.startInvalidationStorm(w.b.driver(), w.bmr->table(), w.dst,
                                    ChaosWorkload::bufBytes,
                                    Time::us(100),
                                    /*pages_per_burst=*/2,
                                    /*bursts=*/50);
    EXPECT_TRUE(w.run());
    EXPECT_GT(w.engine.stats().pagesInvalidated, 0u);
    EXPECT_TRUE(w.monitor.clean()) << w.monitor.report();
}

// ---------------------------------------------------------------------
// Oracle sensitivity: a clean verdict is only meaningful if broken
// behaviour is actually flagged.
// ---------------------------------------------------------------------

namespace {

/**
 * A deliberately broken injector: every fifth request packet triggers a
 * replay of an older request WITHOUT chaos provenance flags — to the
 * oracle this is indistinguishable from the endpoint emitting the same
 * fresh PSN twice, which RC must never do.
 */
struct ReplayHook : net::FaultHook
{
    std::vector<net::Packet> history;
    std::size_t requests = 0;

    void
    processPacket(const net::Packet& pkt, Time,
                  std::vector<Delivery>& out) override
    {
        out.push_back({pkt, Time()});
        if (!chaos::isRequestOpcode(pkt.op) || pkt.retransmission)
            return;
        history.push_back(pkt);
        if (++requests % 5 == 0)
            out.push_back({history[history.size() / 2], Time::us(1)});
    }
};

} // namespace

TEST(ChaosOracle, BrokenInjectorIsCaught)
{
    chaos::ChaosConfig cfg;
    cfg.seed = 13;
    ChaosWorkload w(cfg);
    ReplayHook replay;
    w.cluster.fabric().setFaultHook(&replay);  // displaces the engine
    w.run();
    EXPECT_GT(w.monitor.violationCount(), 0u);
    EXPECT_NE(w.monitor.report().find("fresh-once"), std::string::npos)
        << w.monitor.report();
}

TEST(ChaosOracle, CqOverflowShowsUpAsMissingCompletions)
{
    chaos::ChaosConfig cfg;
    cfg.seed = 14;
    ChaosWorkload w(cfg);
    // Nobody polls acq in this harness, so a capacity of 4 loses every
    // completion beyond the first four.
    w.engine.applyCqPressure(*w.acq, 4);
    w.run(/*wait_on_totals=*/false);
    EXPECT_GT(w.acq->overflows(), 0u);
    EXPECT_GT(w.monitor.violationCount(), 0u);
    EXPECT_NE(w.monitor.report().find("send-completion-missing"),
              std::string::npos)
        << w.monitor.report();
}

// ---------------------------------------------------------------------
// Stage unit checks.
// ---------------------------------------------------------------------

TEST(ChaosStages, LinkFlapWindowArithmetic)
{
    chaos::LinkFlapStage flap({}, Time::ms(10), Time::ms(2),
                              /*phase=*/Time::ms(1));
    EXPECT_TRUE(flap.down(Time::ms(1)));       // cycle start
    EXPECT_TRUE(flap.down(Time::ms(2.5)));     // inside the window
    EXPECT_FALSE(flap.down(Time::ms(3.5)));    // past it
    EXPECT_TRUE(flap.down(Time::ms(11.5)));    // next cycle
    EXPECT_FALSE(flap.down(Time::us(500)));    // before the first phase
}

TEST(ChaosStages, PacketFilterTargeting)
{
    chaos::PacketFilter filter;
    filter.srcQpn = 100;
    filter.requestsOnly = true;

    net::Packet req;
    req.op = net::Opcode::WriteRequest;
    req.srcQpn = 100;
    EXPECT_TRUE(filter.matches(req));

    net::Packet otherQp = req;
    otherQp.srcQpn = 101;
    EXPECT_FALSE(filter.matches(otherQp));

    net::Packet ack = req;
    ack.op = net::Opcode::Ack;
    EXPECT_FALSE(filter.matches(ack));
}

// ---------------------------------------------------------------------
// Legacy LossModel compatibility: the loss model is stage zero of the
// pipeline and keeps working with a FaultHook installed.
// ---------------------------------------------------------------------

TEST(ChaosCompat, LossModelRunsBeforeTheHook)
{
    Cluster cluster(rnic::DeviceProfile::connectX4(), 2, 17);
    chaos::FaultInjector injector(1);
    cluster.fabric().setFaultHook(&injector);
    cluster.fabric().setLossModel(
        std::make_unique<net::BernoulliLoss>(1.0));

    Node& a = cluster.node(0);
    Node& b = cluster.node(1);
    auto& acq = a.createCq();
    auto& bcq = b.createCq();
    verbs::QpConfig uc;
    uc.transport = verbs::Transport::Uc;
    auto [aqp, bqp] = cluster.connectRc(a, acq, b, bcq, uc);
    (void)bqp;
    const auto src = a.alloc(4096);
    const auto dst = b.alloc(4096);
    a.touch(src, 4096);
    auto& amr = a.registerMemory(src, 4096, verbs::AccessFlags::pinned());
    auto& bmr = b.registerMemory(dst, 4096, verbs::AccessFlags::pinned());

    aqp.postWrite(src, amr.lkey(), dst, bmr.rkey(), 64, 1);
    cluster.drain(Time::ms(10));

    // Stage zero dropped the packet before the hook ever saw it.
    EXPECT_EQ(cluster.fabric().totalDropped(),
              cluster.fabric().totalSent());
    EXPECT_EQ(injector.stats().packetsSeen, 0u);
}

// ---------------------------------------------------------------------
// Satellite: swrel failure visibility under total loss, cross-checked
// by the oracle's swrel accounting.
// ---------------------------------------------------------------------

TEST(ChaosSwrel, RetryExhaustionIsVisibleAndConsistent)
{
    Cluster cluster(rnic::DeviceProfile::connectX4(), 2, 19);
    chaos::InvariantMonitor monitor(cluster.fabric());
    swrel::SoftChannelConfig config;
    config.retryTimeout = Time::us(200);
    config.maxRetries = 2;
    swrel::SoftReliableChannel channel(cluster, cluster.node(0),
                                       cluster.node(1), config);
    cluster.fabric().setLossModel(
        std::make_unique<net::BernoulliLoss>(1.0));

    std::vector<std::uint64_t> failures;
    channel.setFailureCallback(
        [&](std::uint64_t seq) { failures.push_back(seq); });

    const std::uint64_t seq = channel.send({42});
    cluster.drain(Time::sec(1));

    ASSERT_EQ(failures.size(), 1u);
    EXPECT_EQ(failures[0], seq);
    EXPECT_TRUE(channel.failed(seq));
    EXPECT_FALSE(channel.acked(seq));
    EXPECT_TRUE(channel.allSettled());
    EXPECT_FALSE(channel.allAcked());

    monitor.checkSwrel(channel);
    EXPECT_TRUE(monitor.clean()) << monitor.report();
}

TEST(ChaosSwrel, CleanDeliveryPassesTheOracle)
{
    Cluster cluster(rnic::DeviceProfile::connectX4(), 2, 21);
    chaos::InvariantMonitor monitor(cluster.fabric());
    swrel::SoftReliableChannel channel(cluster, cluster.node(0),
                                       cluster.node(1));
    for (std::uint8_t i = 0; i < 10; ++i)
        channel.send(std::vector<std::uint8_t>(8, i));
    ASSERT_TRUE(cluster.runUntil([&] { return channel.allAcked(); },
                                 Time::sec(1)));
    monitor.checkSwrel(channel);
    EXPECT_TRUE(monitor.clean()) << monitor.report();
}

// ---------------------------------------------------------------------
// Atomics under chaos: the A* invariant families and the replay-cache
// accounting fix. The flag-flip tests re-enable the pre-fix behaviour
// through DeviceProfile regression switches and require the oracle to
// catch exactly what the fix removed.
// ---------------------------------------------------------------------

namespace {

std::uint64_t
read64(Node& node, std::uint64_t addr)
{
    const auto bytes = node.memory().read(addr, 8);
    std::uint64_t v = 0;
    std::memcpy(&v, bytes.data(), 8);
    return v;
}

void
write64(Node& node, std::uint64_t addr, std::uint64_t v)
{
    std::vector<std::uint8_t> bytes(8);
    std::memcpy(bytes.data(), &v, 8);
    node.memory().write(addr, bytes);
}

bool
hasViolation(const chaos::InvariantMonitor& monitor,
             const std::string& invariant)
{
    for (const auto& v : monitor.violations())
        if (v.invariant == invariant)
            return true;
    return false;
}

/** A raw AtomicRequest as the wire would carry it (FETCH_ADD). */
net::Packet
rawFetchAdd(Node& src, verbs::QueuePair& sqp, Node& dst,
            verbs::QueuePair& dqp, std::uint64_t raddr, std::uint32_t rkey,
            std::uint32_t psn, std::uint64_t add, bool retransmission)
{
    net::Packet pkt;
    pkt.op = net::Opcode::AtomicRequest;
    pkt.psn = psn;
    pkt.srcLid = src.lid();
    pkt.srcQpn = sqp.qpn();
    pkt.dstLid = dst.lid();
    pkt.dstQpn = dqp.qpn();
    pkt.raddr = raddr;
    pkt.rkey = rkey;
    pkt.length = 8;
    pkt.atomicOperand = add;
    pkt.retransmission = retransmission;
    return pkt;
}

} // namespace

TEST(ChaosAtomics, ReplayCacheAccountingBugIsCaughtByOracle)
{
    // The pre-fix responder pushed a second eviction-order entry when a
    // duplicate-PSN insert overwrote an existing cache record, so a later
    // insert evicted a record the PSN window still required. Drive the
    // exact sequence with the cache squeezed to two records: execute
    // psn=0, re-execute it after a PSN reset (the reconnect/PSN-reuse
    // scenario that makes duplicate inserts possible at all), insert
    // psn=1, then replay psn=0 from the requester's timeout path. The
    // buggy responder is silent (record evicted) and A1 fires; the fixed
    // one answers from the cache and A1 stays quiet.
    for (const bool bug : {false, true}) {
        auto profile = rnic::DeviceProfile::connectX4();
        profile.atomicReplayDepth = 2;
        profile.atomicCacheAccountingBug = bug;
        Cluster cluster(profile, 2, 13);
        Node& a = cluster.node(0);
        Node& b = cluster.node(1);
        auto& acq = a.createCq();
        auto& bcq = b.createCq();
        auto [aqp, bqp] = cluster.connectRc(a, acq, b, bcq);

        const auto counter = b.alloc(4096);
        auto& bmr =
            b.registerMemory(counter, 4096, verbs::AccessFlags::pinned());
        write64(b, counter, 42);

        chaos::InvariantMonitor monitor(cluster.fabric());
        // Watch the responder role only: the injected requests spoof the
        // requester's flow, which would otherwise fail its wire checks.
        monitor.watch(b.rnic(), bqp.context());

        auto inject = [&](std::uint32_t psn, bool retrans) {
            cluster.fabric().send(rawFetchAdd(a, aqp, b, bqp, counter,
                                              bmr.rkey(), psn,
                                              /*add=*/0, retrans));
            cluster.advance(Time::us(50));
        };

        inject(0, false);                 // fresh: cached as psn=0
        bqp.context().expectedPsn = 0;    // PSN reuse after reconnect
        inject(0, false);                 // duplicate insert of psn=0
        inject(1, false);                 // squeezes the 2-deep cache
        inject(0, true);                  // replay: MUST answer from cache
        cluster.advance(Time::ms(1));
        monitor.finalCheck();

        EXPECT_EQ(hasViolation(monitor, "atomic-replay-lost"), bug)
            << "accounting bug flag " << bug << "\n"
            << monitor.report();
        // add=0 keeps every answer identical: the value family must not
        // fire in either mode.
        EXPECT_FALSE(hasViolation(monitor, "atomic-replay-value"));
    }
}

TEST(ChaosAtomics, ReexecutingResponderIsCaughtByValueInvariant)
{
    // A responder that re-executes a duplicate atomic instead of serving
    // the replay cache returns the *new* value — the classic
    // lost-idempotence bug A1's value family exists to catch.
    for (const bool bug : {false, true}) {
        auto profile = rnic::DeviceProfile::connectX4();
        profile.atomicReexecuteBug = bug;
        Cluster cluster(profile, 2, 23);
        Node& a = cluster.node(0);
        Node& b = cluster.node(1);
        auto& acq = a.createCq();
        auto& bcq = b.createCq();
        auto [aqp, bqp] = cluster.connectRc(a, acq, b, bcq);

        const auto counter = b.alloc(4096);
        const auto land = a.alloc(4096);
        auto& bmr =
            b.registerMemory(counter, 4096, verbs::AccessFlags::pinned());
        auto& amr =
            a.registerMemory(land, 4096, verbs::AccessFlags::pinned());
        write64(b, counter, 100);

        chaos::InvariantMonitor monitor(cluster.fabric());
        monitor.watch(b.rnic(), bqp.context());

        aqp.postFetchAdd(land, amr.lkey(), counter, bmr.rkey(), 5, 1);
        ASSERT_TRUE(cluster.runUntil(
            [&] { return aqp.outstanding() == 0; }, Time::sec(1)));

        // Replay the request exactly as the timeout path would.
        cluster.fabric().send(rawFetchAdd(a, aqp, b, bqp, counter,
                                          bmr.rkey(), /*psn=*/0,
                                          /*add=*/5,
                                          /*retransmission=*/true));
        cluster.advance(Time::ms(1));
        monitor.finalCheck();

        EXPECT_EQ(hasViolation(monitor, "atomic-replay-value"), bug)
            << monitor.report();
        EXPECT_FALSE(hasViolation(monitor, "atomic-replay-lost"))
            << monitor.report();
        // Exactly-once on the memory side: the fixed responder leaves
        // the counter at one application.
        EXPECT_EQ(read64(b, counter), bug ? 110u : 105u);
    }
}

namespace {

/**
 * Models a drop class eating the packet the DuplicateStage just cloned:
 * erases every unmarked atomic answer while the marked clone survives.
 * The composition the atomic-replay thrash bench produces by chance
 * (dup + drop in one pipeline), made deterministic.
 */
class EraseOriginalAnswerStage : public chaos::FaultStage
{
  public:
    const char* name() const override { return "erase-original-answer"; }

    void
    apply(std::vector<net::FaultHook::Delivery>& deliveries, Time,
          Rng&, chaos::InjectorStats& stats) override
    {
        auto it = std::remove_if(
            deliveries.begin(), deliveries.end(),
            [&](const net::FaultHook::Delivery& d) {
                if (d.pkt.op != net::Opcode::AtomicResponse ||
                    (d.pkt.chaosFlags & net::Packet::chaosDuplicated) !=
                        0) {
                    return false;
                }
                ++stats.dropped;
                return true;
            });
        deliveries.erase(it, deliveries.end());
    }
};

} // namespace

TEST(ChaosAtomics, ClonedReplayAnswerCountsWhenOriginalIsDropped)
{
    // Faults-during-faults blind spot: the responder answers a
    // retransmitted atomic from its replay cache, the DuplicateStage
    // clones the answer, and a later drop stage erases the original in
    // the same pipeline pass. Only the chaos-marked clone reaches the
    // oracle's egress tap — it must count as the responder's answer, or
    // A1 reports a false "replay cache lost a required record".
    Cluster cluster(rnic::DeviceProfile::connectX4(), 2, 31);
    Node& a = cluster.node(0);
    Node& b = cluster.node(1);
    auto& acq = a.createCq();
    auto& bcq = b.createCq();
    auto [aqp, bqp] = cluster.connectRc(a, acq, b, bcq);

    const auto counter = b.alloc(4096);
    auto& bmr =
        b.registerMemory(counter, 4096, verbs::AccessFlags::pinned());
    write64(b, counter, 7);

    chaos::FaultInjector injector(31);
    injector.addStage(std::make_unique<chaos::DuplicateStage>(
        chaos::PacketFilter{}, /*rate=*/1.0, /*max_copy_delay=*/Time()));
    injector.addStage(std::make_unique<EraseOriginalAnswerStage>());
    cluster.fabric().setFaultHook(&injector);

    chaos::InvariantMonitor monitor(cluster.fabric());
    // Responder role only: the injected requests spoof the requester's
    // flow, which would otherwise fail its wire checks.
    monitor.watch(b.rnic(), bqp.context());

    // Fresh execute (answer arrives only as the surviving clone), then
    // a requester-timeout retransmission of the same PSN: the A1 ledger
    // books one required answer, and the replay-cache response again
    // reaches the wire only as its clone.
    cluster.fabric().send(rawFetchAdd(a, aqp, b, bqp, counter,
                                      bmr.rkey(), /*psn=*/0, /*add=*/1,
                                      /*retransmission=*/false));
    cluster.advance(Time::us(50));
    cluster.fabric().send(rawFetchAdd(a, aqp, b, bqp, counter,
                                      bmr.rkey(), /*psn=*/0, /*add=*/1,
                                      /*retransmission=*/true));
    cluster.advance(Time::ms(1));
    monitor.finalCheck();

    EXPECT_FALSE(hasViolation(monitor, "atomic-replay-lost"))
        << monitor.report();
    EXPECT_EQ(monitor.violationCount(), 0u) << monitor.report();
    // The cache answered the replay: exactly one application.
    EXPECT_EQ(read64(b, counter), 8u);
    EXPECT_GE(injector.stats().duplicated, 2u);
    EXPECT_GE(injector.stats().dropped, 2u);
}

TEST(ChaosAtomics, AtomicStormUnderFullChaosIsExactlyOnce)
{
    // Atomics under every fault class at once: duplicates and reordering
    // force replay-cache service at realistic depth, forged NAKs force
    // go-back-N rewinds over atomic WQEs. The counter must land on
    // exactly ops * add and the oracle (A1/A2 included) must stay clean.
    auto runStorm = [](std::uint64_t seed) {
        auto profile = rnic::DeviceProfile::connectX4();
        Cluster cluster(profile, 2, 29);
        chaos::ChaosEngine engine(cluster.events(),
                                  everythingConfig(seed));
        Node& a = cluster.node(0);
        Node& b = cluster.node(1);
        auto& acq = a.createCq();
        auto& bcq = b.createCq();
        auto [aqp, bqp] = cluster.connectRc(a, acq, b, bcq);
        (void)bqp;

        const auto counter = b.alloc(4096);
        const auto land = a.alloc(4096);
        auto& bmr =
            b.registerMemory(counter, 4096, verbs::AccessFlags::pinned());
        auto& amr =
            a.registerMemory(land, 4096, verbs::AccessFlags::pinned());
        write64(b, counter, 1000);

        engine.install(cluster.fabric());
        chaos::InvariantMonitor monitor(cluster.fabric());
        monitor.watch(a.rnic(), aqp.context());
        monitor.watch(b.rnic(), bqp.context());

        constexpr std::size_t ops = 60;
        Rng& rng = cluster.rng();
        for (std::size_t i = 0; i < ops; ++i) {
            if (i % 2 == 0) {
                aqp.postFetchAdd(land + (i % 64) * 8, amr.lkey(), counter,
                                 bmr.rkey(), 3, i + 1);
            } else {
                // Failing CMP_SWAP: reads the counter without changing
                // it, interleaving atomics that contend on one address.
                aqp.postCompSwap(land + (i % 64) * 8, amr.lkey(), counter,
                                 bmr.rkey(), /*compare=*/0, /*swap=*/1,
                                 i + 1);
            }
            cluster.advance(rng.uniformTime(Time::us(1), Time::us(20)));
        }
        EXPECT_TRUE(cluster.runUntil(
            [&] {
                return aqp.outstanding() == 0 &&
                       acq.totalCompletions() >= ops;
            },
            cluster.now() + Time::sec(600)));
        monitor.finalCheck();
        EXPECT_TRUE(monitor.clean()) << monitor.report();
        EXPECT_EQ(acq.totalCompletions(), ops);
        EXPECT_EQ(read64(b, counter), 1000 + (ops / 2) * 3);
        return monitor.traceHash();
    };

    // Fixed seed: bit-identical replay.
    EXPECT_EQ(runStorm(77), runStorm(77));
    EXPECT_NE(runStorm(77), runStorm(78));
}

// ---------------------------------------------------------------------
// Forged-NAK ACK-coalescing edge case: a forged NAK whose PSN lands
// inside an already-coalesced ACK range rewinds the requester into
// territory it has already retired. Completed WQEs must not retire
// twice (C1 + the exact completion count).
// ---------------------------------------------------------------------

TEST(ChaosForgedNak, CoalescedAckRangeCausesNoDoubleRetire)
{
    chaos::ChaosConfig cfg;
    cfg.seed = 101;
    cfg.forgedNakRate = 0.02;
    cfg.forgedNakMaxRewind = 8;  // land inside coalesced ACK ranges
    cfg.delayRate = 0.2;         // widen ACK coalescing windows
    ChaosWorkload w(cfg, /*cluster_seed=*/7, /*op_count=*/40);
    EXPECT_TRUE(w.run());
    EXPECT_TRUE(w.monitor.clean()) << w.monitor.report();
    // Every WR retired exactly once despite rewinds below the window.
    EXPECT_EQ(w.acq->totalCompletions(), w.ops);
    EXPECT_GT(w.engine.injector().stats().naksForged, 0u);
}

// ---------------------------------------------------------------------
// UD edge cases: unrouted egress, drop accounting, and the U* families.
// ---------------------------------------------------------------------

namespace {

verbs::QpConfig
udConfig()
{
    verbs::QpConfig config;
    config.transport = verbs::Transport::Ud;
    return config;
}

} // namespace

TEST(ChaosUd, UnknownLidDatagramCountsUnroutedDrop)
{
    Cluster cluster(rnic::DeviceProfile::connectX4(), 2, 5);
    Node& a = cluster.node(0);
    auto& acq = a.createCq();
    auto aqp = a.createQp(acq, udConfig());
    aqp.connect(0, 0);

    chaos::InvariantMonitor monitor(cluster.fabric());
    monitor.watch(a.rnic(), aqp.context());

    const auto src = a.alloc(4096);
    a.touch(src, 4096);
    auto& amr = a.registerMemory(src, 4096, verbs::AccessFlags::pinned());

    // LID 9 is nowhere on this two-node fabric.
    aqp.postSendUd({9, 1}, src, amr.lkey(), 32, 1);
    cluster.advance(Time::ms(1));

    EXPECT_EQ(a.rnic().stats().udUnroutedDrops, 1u);
    EXPECT_EQ(aqp.stats().completions, 1u);  // still fire-and-forget
    monitor.finalCheck();
    EXPECT_TRUE(monitor.clean()) << monitor.report();
    EXPECT_EQ(monitor.packetsObserved(), 1u);
}

TEST(ChaosUd, SilentDropAccountingBugIsCaughtByOracle)
{
    // Seven datagrams into four RECVs: three drops the responder must
    // count. The buggy responder drops without counting, breaking the
    // delivered == received + counted-drops conservation U3 checks.
    for (const bool bug : {false, true}) {
        auto profile = rnic::DeviceProfile::connectX4();
        profile.udDropAccountingBug = bug;
        Cluster cluster(profile, 2, 11);
        Node& a = cluster.node(0);
        Node& b = cluster.node(1);
        auto& acq = a.createCq();
        auto& bcq = b.createCq();
        auto aqp = a.createQp(acq, udConfig());
        auto bqp = b.createQp(bcq, udConfig());
        aqp.connect(0, 0);
        bqp.connect(0, 0);

        chaos::InvariantMonitor monitor(cluster.fabric());
        monitor.watch(a.rnic(), aqp.context());
        monitor.watch(b.rnic(), bqp.context());

        const auto src = a.alloc(4096);
        const auto dst = b.alloc(4096);
        a.touch(src, 4096);
        b.touch(dst, 4096);
        auto& amr =
            a.registerMemory(src, 4096, verbs::AccessFlags::pinned());
        auto& bmr =
            b.registerMemory(dst, 4096, verbs::AccessFlags::pinned());

        for (std::size_t i = 0; i < 4; ++i)
            bqp.postRecv(dst + i * 256, bmr.lkey(), 256, 100 + i);
        for (std::size_t i = 0; i < 7; ++i) {
            aqp.postSendUd({b.lid(), bqp.qpn()}, src, amr.lkey(), 32,
                           i + 1);
            cluster.advance(Time::us(20));
        }
        cluster.advance(Time::ms(1));
        monitor.finalCheck();

        EXPECT_EQ(bqp.stats().udDeliveredSends, 7u);
        EXPECT_EQ(bqp.stats().udDrops, bug ? 0u : 3u);
        EXPECT_EQ(bcq.totalCompletions(), 4u);  // per-packet completion
        EXPECT_EQ(hasViolation(monitor, "ud-silent-drop"), bug)
            << monitor.report();
        if (!bug)
            EXPECT_TRUE(monitor.clean()) << monitor.report();
    }
}

// ---------------------------------------------------------------------
// UC: fire-and-forget contract under loss — completes at post, silent
// drops, never a response or retransmission (V1/V2/V3 stay quiet).
// ---------------------------------------------------------------------

TEST(ChaosUc, FireAndForgetStaysCleanUnderDrops)
{
    Cluster cluster(rnic::DeviceProfile::connectX4(), 2, 31);
    chaos::ChaosConfig cfg;
    cfg.seed = 31;
    cfg.dropRate = 0.3;
    cfg.delayRate = 0.2;
    chaos::ChaosEngine engine(cluster.events(), cfg);

    Node& a = cluster.node(0);
    Node& b = cluster.node(1);
    auto& acq = a.createCq();
    auto& bcq = b.createCq();
    verbs::QpConfig uc;
    uc.transport = verbs::Transport::Uc;
    auto [aqp, bqp] = cluster.connectRc(a, acq, b, bcq, uc);

    const auto src = a.alloc(8192);
    const auto dst = b.alloc(8192);
    a.touch(src, 8192);
    b.touch(dst, 8192);
    auto& amr = a.registerMemory(src, 8192, verbs::AccessFlags::pinned());
    auto& bmr = b.registerMemory(dst, 8192, verbs::AccessFlags::pinned());

    engine.install(cluster.fabric());
    chaos::InvariantMonitor monitor(cluster.fabric());
    monitor.watch(a.rnic(), aqp.context());
    monitor.watch(b.rnic(), bqp.context());

    constexpr std::size_t ops = 30;
    for (std::size_t i = 0; i < ops; ++i)
        bqp.postRecv(dst + 4096 + (i % 8) * 256, bmr.lkey(), 256,
                     100 + i);
    for (std::size_t i = 0; i < ops; ++i) {
        if (i % 2 == 0) {
            aqp.postWrite(src + (i % 8) * 256, amr.lkey(),
                          dst + (i % 8) * 256, bmr.rkey(), 128, i + 1);
        } else {
            aqp.postSend(src + (i % 8) * 256, amr.lkey(), 64, i + 1);
        }
        cluster.advance(Time::us(10));
    }
    cluster.advance(Time::ms(2));
    monitor.finalCheck();

    EXPECT_TRUE(monitor.clean()) << monitor.report();
    EXPECT_EQ(acq.totalCompletions(), ops);  // completed at post
    EXPECT_EQ(aqp.outstanding(), 0u);
}

// ---------------------------------------------------------------------
// Tentpole: multi-node topology with per-link flap schedules, soaked
// with mixed verbs (RC atomics, UD datagrams, UC writes) and audited by
// watchAll(). The fixed-seed trace hash is golden: any change to the
// schedule derivation or the fault pipeline shows up here.
// ---------------------------------------------------------------------

TEST(ChaosTopology, SeedDeterministicIndependentSchedules)
{
    chaos::Topology t1(3, 99);
    chaos::Topology t2(3, 99);
    const chaos::FlapPlan plan{Time::ms(1), Time::us(300)};
    t1.setDefaultPlan(plan);
    t2.setDefaultPlan(plan);

    bool schedules_differ = false;
    for (int i = 0; i < 4000; ++i) {
        const Time now = Time::us(10.0 * i);
        const bool l12 = t1.linkUp(1, 2, now);
        const bool l13 = t1.linkUp(1, 3, now);
        const bool l23 = t1.linkUp(2, 3, now);
        // Same seed => identical schedules, link by link.
        EXPECT_EQ(l12, t2.linkUp(1, 2, now));
        EXPECT_EQ(l13, t2.linkUp(1, 3, now));
        EXPECT_EQ(l23, t2.linkUp(2, 3, now));
        if (l12 != l13 || l12 != l23)
            schedules_differ = true;
    }
    // Per-link SeedStream indices: the links flap independently.
    EXPECT_TRUE(schedules_differ);
    EXPECT_GT(t1.totalFlaps(), 0u);
    EXPECT_EQ(t1.totalFlaps(), t2.totalFlaps());

    // Direction-insensitive and tolerant of off-mesh LIDs.
    EXPECT_EQ(t1.linkUp(2, 1, Time::ms(41)), t2.linkUp(1, 2, Time::ms(41)));
    EXPECT_TRUE(t1.linkUp(0, 2, Time::ms(41)));
    EXPECT_TRUE(t1.linkUp(1, 9, Time::ms(41)));
    EXPECT_TRUE(t1.linkUp(2, 2, Time::ms(41)));
}

namespace {

struct MeshSoakResult
{
    std::uint64_t hash = 0;
    std::uint64_t violations = 0;
    std::uint64_t flaps = 0;
    std::uint64_t counter = 0;
    bool drained = false;
    std::string report;
};

/**
 * The 4-node mesh soak: RC writes+atomics on 1<->2, RC reads+sends on
 * 3<->4, UD datagrams 1->3, UC writes 2->4, every link flapping on its
 * own schedule, plus packet-level chaos on top.
 *
 * jobs == 0 runs the historical single-queue simulation (the golden
 * trace below pins that path byte-for-byte). jobs > 0 runs island mode
 * on a ShardedKernel with that many workers; island mode is its own
 * deterministic schedule, so its hash differs from single-queue but
 * must be identical across worker counts.
 */
MeshSoakResult
runMeshSoak(std::uint64_t seed, unsigned jobs = 0,
            ScheduleMode mode = ScheduleMode::Stealing)
{
    MeshSoakResult out;
    ClusterOptions options;
    options.sharded = jobs > 0;
    options.jobs = jobs > 0 ? jobs : 1;
    options.scheduleMode = mode;
    Cluster cluster(rnic::DeviceProfile::connectX4(), 4, seed,
                    net::LinkConfig{}, options);

    chaos::ChaosConfig cfg;
    cfg.seed = seed;
    cfg.dropRate = 0.01;
    cfg.dupRate = 0.03;
    cfg.reorderRate = 0.03;
    cfg.delayRate = 0.1;
    chaos::ChaosEngine engine(cluster.events(), cfg);

    chaos::Topology topo(4, seed);
    topo.setDefaultPlan({Time::us(500), Time::us(120)});
    topo.setLinkPlan(1, 3, {Time::us(300), Time::us(180)});
    engine.attachTopology(topo);
    if (cluster.sharded())
        engine.installSharded(cluster.fabric());
    else
        engine.install(cluster.fabric());

    chaos::InvariantMonitor monitor(cluster.fabric());

    Node& n0 = cluster.node(0);
    Node& n1 = cluster.node(1);
    Node& n2 = cluster.node(2);
    Node& n3 = cluster.node(3);
    auto& cq0 = n0.createCq();
    auto& cq1 = n1.createCq();
    auto& cq2 = n2.createCq();
    auto& cq3 = n3.createCq();

    auto [rc01a, rc01b] = cluster.connectRc(n0, cq0, n1, cq1);
    auto [rc23a, rc23b] = cluster.connectRc(n2, cq2, n3, cq3);
    auto ud0 = n0.createQp(cq0, udConfig());
    auto ud2 = n2.createQp(cq2, udConfig());
    ud0.connect(0, 0);
    ud2.connect(0, 0);
    verbs::QpConfig uc;
    uc.transport = verbs::Transport::Uc;
    auto [uc1, uc3] = cluster.connectRc(n1, cq1, n3, cq3, uc);

    constexpr std::uint64_t bufBytes = 16 * 1024;
    std::uint64_t buf[4];
    verbs::MemoryRegion* mr[4];
    Node* nodes[4] = {&n0, &n1, &n2, &n3};
    for (int i = 0; i < 4; ++i) {
        buf[i] = nodes[i]->alloc(bufBytes);
        nodes[i]->touch(buf[i], bufBytes);
        mr[i] = &nodes[i]->registerMemory(buf[i], bufBytes,
                                          verbs::AccessFlags::pinned());
    }
    const std::uint64_t counter = buf[1];  // atomic target on n1
    write64(n1, counter, 500);

    monitor.watchAll(cluster);

    constexpr std::size_t rcOps = 24;
    constexpr std::size_t udOps = 15;
    constexpr std::size_t ucOps = 12;
    for (std::size_t i = 0; i < rcOps; ++i)
        rc23b.postRecv(buf[3] + 8192 + (i % 16) * 256, mr[3]->lkey(), 256,
                       500 + i);
    for (std::size_t i = 0; i < udOps; ++i)
        ud2.postRecv(buf[2] + 8192 + (i % 16) * 256, mr[2]->lkey(), 256,
                     700 + i);
    for (std::size_t i = 0; i < ucOps; ++i)
        uc3.postRecv(buf[3] + 12288 + (i % 8) * 256, mr[3]->lkey(), 256,
                     900 + i);

    Rng& rng = cluster.rng();
    for (std::size_t i = 0; i < rcOps; ++i) {
        // 1<->2: writes and contended atomics.
        if (i % 3 == 0) {
            rc01a.postFetchAdd(buf[0] + 1024 + (i % 16) * 8,
                               mr[0]->lkey(), counter, mr[1]->rkey(), 2,
                               i + 1);
        } else {
            rc01a.postWrite(buf[0] + (i % 16) * 256, mr[0]->lkey(),
                            buf[1] + 4096 + (i % 16) * 256,
                            mr[1]->rkey(), 128, i + 1);
        }
        // 3<->4: reads and sends.
        if (i % 2 == 0) {
            rc23a.postRead(buf[2] + (i % 16) * 256, mr[2]->lkey(),
                           buf[3] + (i % 16) * 256, mr[3]->rkey(), 128,
                           i + 1);
        } else {
            rc23a.postSend(buf[2] + 4096 + (i % 16) * 256, mr[2]->lkey(),
                           64, i + 1);
        }
        if (i < udOps)
            ud0.postSendUd({n2.lid(), ud2.qpn()}, buf[0] + 2048,
                           mr[0]->lkey(), 32, 100 + i);
        if (i < ucOps)
            uc1.postWrite(buf[1] + (i % 8) * 256, mr[1]->lkey(),
                          buf[3] + 12288 + (i % 8) * 256, mr[3]->rkey(),
                          128, 200 + i);
        cluster.advance(rng.uniformTime(Time::us(20), Time::us(80)));
    }

    out.drained = cluster.runUntil(
        [&] {
            return rc01a.outstanding() == 0 && rc23a.outstanding() == 0;
        },
        cluster.now() + Time::sec(600));
    cluster.advance(Time::ms(5));  // let stray UD/UC deliveries land
    monitor.finalCheck();

    out.hash = monitor.traceHash();
    out.violations = monitor.violationCount();
    out.flaps = cluster.sharded() ? engine.shardedFlaps()
                                  : topo.totalFlaps();
    out.counter = read64(n1, counter);
    out.report = monitor.report();
    return out;
}

} // namespace

TEST(ChaosTopology, FourNodeMeshSoakIsCleanAndGolden)
{
    const MeshSoakResult r = runMeshSoak(2026);
    EXPECT_TRUE(r.drained);
    EXPECT_EQ(r.violations, 0u) << r.report;
    EXPECT_GT(r.flaps, 0u);  // the mesh really flapped
    // 8 FetchAdds (i % 3 == 0, i < 24) of +2 each, exactly once.
    EXPECT_EQ(r.counter, 500u + 8 * 2);

    // Bit-identical replay, pinned to a recorded golden so that any
    // change to schedule derivation or pipeline ordering is loud.
    const MeshSoakResult again = runMeshSoak(2026);
    EXPECT_EQ(r.hash, again.hash);
    EXPECT_EQ(r.hash, 0x8133ce175f4220c2ull);
    EXPECT_NE(runMeshSoak(2027).hash, r.hash);
}

// ---------------------------------------------------------------------
// Island-mode differential: the same mesh soak on the sharded kernel
// must be bit-identical across worker counts — jobs = 1 (inline, zero
// threads) is the reference schedule and every thread count replays it.
// ---------------------------------------------------------------------

TEST(ChaosTopology, MeshSoakShardedIsJobInvariant)
{
    const MeshSoakResult seq = runMeshSoak(2026, 1);
    EXPECT_TRUE(seq.drained);
    EXPECT_EQ(seq.violations, 0u) << seq.report;
    EXPECT_GT(seq.flaps, 0u);
    // Atomic semantics are schedule-independent: exactly-once FetchAdds.
    EXPECT_EQ(seq.counter, 500u + 8 * 2);

    for (const ScheduleMode mode :
         {ScheduleMode::Static, ScheduleMode::Stealing}) {
        for (unsigned jobs : {2u, 4u, 8u}) {
            const char* name =
                mode == ScheduleMode::Static ? "static" : "stealing";
            const MeshSoakResult par = runMeshSoak(2026, jobs, mode);
            EXPECT_TRUE(par.drained) << "jobs=" << jobs << " " << name;
            EXPECT_EQ(par.hash, seq.hash) << "jobs=" << jobs << " "
                                          << name;
            EXPECT_EQ(par.violations, seq.violations)
                << "jobs=" << jobs << " " << name << "\n" << par.report;
            EXPECT_EQ(par.flaps, seq.flaps) << "jobs=" << jobs << " "
                                            << name;
            EXPECT_EQ(par.counter, seq.counter)
                << "jobs=" << jobs << " " << name;
        }
    }

    // A different seed is a genuinely different campaign.
    EXPECT_NE(runMeshSoak(2027, 2).hash, seq.hash);
}

// ---------------------------------------------------------------------
// PR-8 tentpole: the port-event link model and the QP error/recovery
// machinery above it (DESIGN.md §13). Link failures become protocol-
// visible async events instead of silent drops; QPs whose retries
// exhaust while their path is down enter an explicit Error state and —
// profile-gated — re-arm through reset -> init -> RTR -> RTS when the
// path returns, or reroute around the cut when the mesh has a spare
// link. The legacy silent-drop TopologyStage keeps its golden above.
// ---------------------------------------------------------------------

namespace {

/** Cut (or restore) the {a, b} link and deliver path events to both
 * endpoints, the way PortEventDriver would at a window boundary. */
void
flipLink(Cluster& cluster, std::uint16_t a, std::uint16_t b, bool up,
         bool redundant = false)
{
    cluster.fabric().setLinkState(a, b, up);
    net::PortEvent ev;
    ev.type = up ? net::PortEvent::Type::PathUp
                 : net::PortEvent::Type::PathDown;
    ev.redundantPath = redundant;
    ev.lid = a;
    ev.peerLid = b;
    cluster.fabric().raisePortEvent(a, ev);
    ev.lid = b;
    ev.peerLid = a;
    cluster.fabric().raisePortEvent(b, ev);
}

/** Short transport timeouts so retry exhaustion fits in a test. */
rnic::DeviceProfile
recoveryProfile()
{
    auto profile = rnic::DeviceProfile::connectX4();
    profile.qpRecoveryOnPortUp = true;
    profile.minCack = 5;  // T_tr ~131us instead of the vendor ~268ms
    return profile;
}

verbs::QpConfig
fastRetryConfig()
{
    verbs::QpConfig config;
    config.cack = 5;
    config.cretry = 1;  // exhaust after ~0.5ms of dead path
    return config;
}

bool
sawAsyncEvent(const std::vector<verbs::AsyncEvent>& events,
              verbs::AsyncEventType type)
{
    for (const auto& ev : events)
        if (ev.type == type)
            return true;
    return false;
}

} // namespace

TEST(ChaosPortEvents, FlapMidReadRecoversViaRearm)
{
    Cluster cluster(recoveryProfile(), 2, 33);
    Node& a = cluster.node(0);
    Node& b = cluster.node(1);
    auto& acq = a.createCq();
    auto& bcq = b.createCq();
    auto [aqp, bqp] = cluster.connectRc(a, acq, b, bcq,
                                        fastRetryConfig());

    const auto src = a.alloc(4096);
    const auto dst = b.alloc(4096);
    a.touch(src, 4096);
    b.touch(dst, 4096);
    auto& amr = a.registerMemory(src, 4096, verbs::AccessFlags::pinned());
    auto& bmr = b.registerMemory(dst, 4096, verbs::AccessFlags::pinned());
    write64(b, dst, 0xfeedface);

    chaos::InvariantMonitor monitor(cluster.fabric());
    monitor.watch(a.rnic(), aqp.context());
    monitor.watch(b.rnic(), bqp.context());

    std::vector<verbs::AsyncEvent> events;
    a.rnic().addAsyncEventTap(
        [&](const verbs::AsyncEvent& ev) { events.push_back(ev); });

    // Cut the path mid-READ: the response in flight is lost at the
    // ingress gate, every blind retransmission dies at the egress gate,
    // and the retry budget exhausts while the path stays down.
    // The request is on the wire the moment it is posted; cutting the
    // link now kills the response (and every retransmission) at the
    // egress gate while the request itself is still in flight.
    aqp.postRead(src, amr.lkey(), dst, bmr.rkey(), 64, 1);
    flipLink(cluster, a.lid(), b.lid(), /*up=*/false);
    cluster.advance(Time::ms(5));

    EXPECT_TRUE(aqp.inError());
    EXPECT_EQ(aqp.context().state, rnic::QpState::Error);
    EXPECT_EQ(acq.totalCompletions(), 1u);  // flushed, exactly once
    EXPECT_EQ(acq.totalErrors(), 1u);
    EXPECT_GT(a.rnic().stats().portDownEvents, 0u);
    EXPECT_EQ(a.rnic().stats().qpsEnteredError, 1u);

    // Error state stops the retransmit machinery: no matter how long the
    // outage lasts, the retry counter is frozen — the pre-PR behaviour
    // was an unbounded 0.5 ms blind-retransmit loop.
    const auto rexmitsAtError = aqp.stats().retransmissions;
    cluster.advance(Time::ms(20));
    EXPECT_EQ(aqp.stats().retransmissions, rexmitsAtError);

    // Path back up: the profile-gated re-arm runs the CM handshake under
    // a fresh epoch and lands the QP back in RTS.
    flipLink(cluster, a.lid(), b.lid(), /*up=*/true);
    cluster.advance(Time::ms(5));
    EXPECT_EQ(aqp.context().state, rnic::QpState::Rts);
    EXPECT_FALSE(aqp.inError());
    EXPECT_EQ(a.rnic().stats().qpsRecovered, 1u);
    EXPECT_GT(a.rnic().stats().cmRearmsSent, 0u);
    EXPECT_GT(aqp.context().resetEpoch, 0u);

    // The re-armed QP carries fresh traffic.
    aqp.postRead(src + 128, amr.lkey(), dst, bmr.rkey(), 8, 2);
    ASSERT_TRUE(cluster.runUntil([&] { return aqp.outstanding() == 0; },
                                 cluster.now() + Time::sec(1)));
    EXPECT_EQ(acq.totalSuccess(), 1u);
    EXPECT_EQ(read64(a, src + 128), 0xfeedfaceull);

    monitor.finalCheck();
    EXPECT_TRUE(monitor.clean()) << monitor.report();

    // The ibv_async_event-style surface narrated the whole episode.
    EXPECT_TRUE(sawAsyncEvent(events, verbs::AsyncEventType::PathError));
    EXPECT_TRUE(sawAsyncEvent(events, verbs::AsyncEventType::QpFatal));
    EXPECT_TRUE(sawAsyncEvent(events, verbs::AsyncEventType::PathActive));
    EXPECT_TRUE(sawAsyncEvent(events,
                              verbs::AsyncEventType::QpRecovered));
}

TEST(ChaosPortEvents, RecoveryFlagOffLeavesQpInError)
{
    // Flag-flip: with qpRecoveryOnPortUp off (the default), the same
    // episode strands the QP in Error forever — the pre-recovery
    // behaviour — and posts flush immediately.
    auto profile = recoveryProfile();
    profile.qpRecoveryOnPortUp = false;
    Cluster cluster(profile, 2, 35);
    Node& a = cluster.node(0);
    Node& b = cluster.node(1);
    auto& acq = a.createCq();
    auto& bcq = b.createCq();
    auto [aqp, bqp] = cluster.connectRc(a, acq, b, bcq,
                                        fastRetryConfig());
    (void)bqp;

    const auto src = a.alloc(4096);
    const auto dst = b.alloc(4096);
    a.touch(src, 4096);
    b.touch(dst, 4096);
    auto& amr = a.registerMemory(src, 4096, verbs::AccessFlags::pinned());
    auto& bmr = b.registerMemory(dst, 4096, verbs::AccessFlags::pinned());

    // The request is on the wire the moment it is posted; cutting the
    // link now kills the response (and every retransmission) at the
    // egress gate while the request itself is still in flight.
    aqp.postRead(src, amr.lkey(), dst, bmr.rkey(), 64, 1);
    flipLink(cluster, a.lid(), b.lid(), /*up=*/false);
    cluster.advance(Time::ms(5));
    ASSERT_TRUE(aqp.inError());

    flipLink(cluster, a.lid(), b.lid(), /*up=*/true);
    cluster.advance(Time::ms(10));
    EXPECT_EQ(aqp.context().state, rnic::QpState::Error);
    EXPECT_EQ(a.rnic().stats().qpsRecovered, 0u);
    EXPECT_EQ(a.rnic().stats().cmRearmsSent, 0u);

    // Post-while-Error: immediate flush completion, no wire traffic.
    const auto sentBefore = a.rnic().stats().packetsSent;
    aqp.postRead(src + 128, amr.lkey(), dst, bmr.rkey(), 8, 2);
    EXPECT_EQ(acq.totalCompletions(), 2u);
    EXPECT_EQ(acq.totalErrors(), 2u);
    EXPECT_EQ(a.rnic().stats().packetsSent, sentBefore);
}

TEST(ChaosPortEvents, SmRerouteBridgesRedundantMeshLink)
{
    // Flag-flip: with smReroute on and a redundant mesh link out of the
    // port, a cut path is healed by an SM-style reroute after the sweep
    // delay — the READ completes *during* the down window, no Error
    // state, at one extra hop of latency.
    auto profile = recoveryProfile();
    profile.smReroute = true;
    Cluster cluster(profile, 3, 37);
    Node& a = cluster.node(0);
    Node& b = cluster.node(1);
    auto& acq = a.createCq();
    auto& bcq = b.createCq();
    verbs::QpConfig config;
    config.cack = 5;
    config.cretry = 7;  // survive timeouts until the SM sweep lands
    auto [aqp, bqp] = cluster.connectRc(a, acq, b, bcq, config);
    (void)bqp;

    const auto src = a.alloc(4096);
    const auto dst = b.alloc(4096);
    a.touch(src, 4096);
    b.touch(dst, 4096);
    auto& amr = a.registerMemory(src, 4096, verbs::AccessFlags::pinned());
    auto& bmr = b.registerMemory(dst, 4096, verbs::AccessFlags::pinned());
    write64(b, dst, 0xabadcafe);

    chaos::InvariantMonitor monitor(cluster.fabric());
    monitor.watch(a.rnic(), aqp.context());
    monitor.watch(b.rnic(), bqp.context());

    aqp.postRead(src, amr.lkey(), dst, bmr.rkey(), 8, 1);
    // Node 3's links to both endpoints are still up: redundant path.
    flipLink(cluster, a.lid(), b.lid(), /*up=*/false,
             /*redundant=*/true);
    ASSERT_TRUE(cluster.runUntil([&] { return aqp.outstanding() == 0; },
                                 cluster.now() + Time::sec(1)));

    // Completed while the direct link is still down.
    EXPECT_FALSE(aqp.inError());
    EXPECT_EQ(acq.totalSuccess(), 1u);
    EXPECT_EQ(read64(a, src), 0xabadcafeull);
    EXPECT_GE(a.rnic().stats().reroutes, 1u);
    EXPECT_TRUE(aqp.context().rerouted);
    EXPECT_EQ(a.rnic().stats().qpsEnteredError, 0u);

    // Link restoration clears the detour.
    flipLink(cluster, a.lid(), b.lid(), /*up=*/true);
    cluster.advance(Time::us(1));
    EXPECT_FALSE(aqp.context().rerouted);

    monitor.finalCheck();
    EXPECT_TRUE(monitor.clean()) << monitor.report();
}

TEST(ChaosPortEvents, FlushErrorCompletionsArriveOnceInPostOrder)
{
    // Retry exhaustion with a deep queue: the failing head WR carries
    // RETRY_EXC_ERR and every queued WR behind it flushes with
    // WR_FLUSH_ERR, in post order, exactly once.
    Cluster cluster(recoveryProfile(), 2, 39);
    Node& a = cluster.node(0);
    Node& b = cluster.node(1);
    auto& acq = a.createCq();
    auto& bcq = b.createCq();
    auto [aqp, bqp] = cluster.connectRc(a, acq, b, bcq,
                                        fastRetryConfig());
    (void)bqp;

    const auto src = a.alloc(4096);
    const auto dst = b.alloc(4096);
    a.touch(src, 4096);
    b.touch(dst, 4096);
    auto& amr = a.registerMemory(src, 4096, verbs::AccessFlags::pinned());
    auto& bmr = b.registerMemory(dst, 4096, verbs::AccessFlags::pinned());

    std::vector<verbs::WorkCompletion> seen;
    acq.addTap(
        [&](const verbs::WorkCompletion& wc) { seen.push_back(wc); });

    chaos::InvariantMonitor monitor(cluster.fabric());
    monitor.watch(a.rnic(), aqp.context());
    monitor.watch(b.rnic(), bqp.context());

    // Cut first: all three WRITEs die at the egress gate, so the head
    // WR exhausts its retries and drags the queue into the flush.
    flipLink(cluster, a.lid(), b.lid(), /*up=*/false);
    for (std::uint64_t i = 0; i < 3; ++i)
        aqp.postWrite(src + i * 256, amr.lkey(), dst + i * 256,
                      bmr.rkey(), 64, i + 1);
    cluster.advance(Time::ms(5));

    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0].wrId, 1u);
    EXPECT_EQ(seen[0].status, verbs::WcStatus::RetryExcErr);
    EXPECT_EQ(seen[1].wrId, 2u);
    EXPECT_EQ(seen[1].status, verbs::WcStatus::WrFlushErr);
    EXPECT_EQ(seen[2].wrId, 3u);
    EXPECT_EQ(seen[2].status, verbs::WcStatus::WrFlushErr);

    // And only once: a long stay in Error adds nothing.
    cluster.advance(Time::ms(20));
    EXPECT_EQ(acq.totalCompletions(), 3u);

    monitor.finalCheck();
    EXPECT_TRUE(monitor.clean()) << monitor.report();
}

TEST(ChaosPortEvents, DriverRunsSchedulesInSingleQueueMode)
{
    // PortEventDriver end to end in the historical single-queue mode: a
    // flapping 2-node link raises real events on the one shared queue
    // and the workload survives the windows.
    Cluster cluster(rnic::DeviceProfile::connectX4(), 2, 41);
    chaos::ChaosConfig cfg;
    cfg.seed = 41;
    chaos::ChaosEngine engine(cluster.events(), cfg);
    chaos::Topology topo(2, 41);
    topo.setLinkPlan(1, 2, {Time::us(500), Time::us(120)});
    engine.attachPortEvents(topo);
    engine.install(cluster.fabric());
    ASSERT_NE(engine.portEvents(), nullptr);

    chaos::InvariantMonitor monitor(cluster.fabric());
    Node& a = cluster.node(0);
    Node& b = cluster.node(1);
    auto& acq = a.createCq();
    auto& bcq = b.createCq();
    auto [aqp, bqp] = cluster.connectRc(a, acq, b, bcq);
    (void)bqp;

    const auto src = a.alloc(8192);
    const auto dst = b.alloc(8192);
    a.touch(src, 8192);
    b.touch(dst, 8192);
    auto& amr = a.registerMemory(src, 8192, verbs::AccessFlags::pinned());
    auto& bmr = b.registerMemory(dst, 8192, verbs::AccessFlags::pinned());

    monitor.watchAll(cluster);

    for (std::size_t i = 0; i < 20; ++i) {
        aqp.postWrite(src + (i % 16) * 256, amr.lkey(),
                      dst + (i % 16) * 256, bmr.rkey(), 128, i + 1);
        cluster.advance(Time::us(60));
    }
    ASSERT_TRUE(cluster.runUntil([&] { return aqp.outstanding() == 0; },
                                 cluster.now() + Time::sec(600)));
    cluster.advance(Time::ms(2));
    monitor.finalCheck();

    EXPECT_GT(engine.portEvents()->linkFlaps(), 0u);
    EXPECT_GT(engine.portEvents()->eventsRaised(), 0u);
    EXPECT_GT(a.rnic().stats().portDownEvents, 0u);
    EXPECT_GT(a.rnic().stats().portUpEvents, 0u);
    EXPECT_EQ(monitor.violationCount(), 0u) << monitor.report();
    EXPECT_EQ(acq.totalSuccess(), 20u);
}

// ---------------------------------------------------------------------
// The combined-storm soak: a 64-node sharded mesh where a chain of
// links flaps on port-event schedules, one pair's link dies long enough
// to exhaust its (deliberately tight) retry budget, and
// CombinedStormStage fires ODP invalidation storms plus CQ-capacity
// clamps *inside* the down windows. Faults during faults: the recovery
// machinery must run concurrently with page-fault storms and completion
// pressure, with zero oracle violations and a bit-identical fixed-seed
// hash at any worker count.
// ---------------------------------------------------------------------

namespace {

/** Recorded fixed-seed hash of runCombinedStormSoak(4046, 1). */
constexpr std::uint64_t kCombinedStormGolden = 0x4a94576be450add0ull;

struct StormSoakResult
{
    std::uint64_t hash = 0;
    std::uint64_t violations = 0;
    std::uint64_t flaps = 0;
    Cluster::PortEventSummary ports;
    chaos::CombinedStormStats storm;
    std::uint64_t completions = 0;
    bool drained = false;
    std::string report;
};

StormSoakResult
runCombinedStormSoak(std::uint64_t seed, unsigned jobs,
                     ScheduleMode mode = ScheduleMode::Stealing,
                     bool legacy_odp = true)
{
    constexpr std::size_t nodeCount = 64;
    StormSoakResult out;
    ClusterOptions options;
    options.sharded = true;
    options.jobs = jobs;
    options.scheduleMode = mode;
    auto profile = recoveryProfile();
    // The recorded golden predates the per-page state machine; the storm
    // schedule depends on invalidation behavior, so the soak pins the
    // legacy latency-draw model unless the caller asks for the state
    // machine (the OdpPageTable differential below).
    profile.faultTiming.pageStateMachine = !legacy_odp;
    Cluster cluster(profile, nodeCount, seed, net::LinkConfig{}, options);

    chaos::ChaosEngine engine(cluster.events(), [&] {
        chaos::ChaosConfig cfg;
        cfg.seed = seed;
        cfg.dupRate = 0.02;
        cfg.delayRate = 0.05;
        return cfg;
    }());

    // A chain of flapping links over the whole mesh: every {lid, lid+1}
    // link — the intra-pair traffic links among them — flaps with short
    // windows; pair 0's link gets long outages that exhaust its QP's
    // tight retry budget, forcing Error -> re-arm cycles mid-soak.
    chaos::Topology topo(nodeCount, seed);
    for (std::uint16_t lid = 1; lid < nodeCount; ++lid)
        topo.setLinkPlan(lid, lid + 1,
                         {Time::us(800), Time::us(150)});
    topo.setLinkPlan(1, 2, {Time::ms(2), Time::ms(4)});
    engine.attachPortEvents(topo);
    engine.installSharded(cluster.fabric());

    chaos::InvariantMonitor monitor(cluster.fabric());

    // 32 RC pairs (node 2k -> node 2k+1); responders expose ODP regions
    // the storm invalidates. Pair 0 runs the tight retry budget.
    constexpr std::size_t pairs = nodeCount / 2;
    constexpr std::uint64_t bufBytes = 16 * 1024;
    std::vector<verbs::QueuePair> req(pairs);
    std::vector<std::uint64_t> srcBuf(pairs), dstBuf(pairs);
    std::vector<verbs::MemoryRegion*> srcMr(pairs), dstMr(pairs);
    std::vector<verbs::CompletionQueue*> reqCq(pairs), rspCq(pairs);
    for (std::size_t k = 0; k < pairs; ++k) {
        Node& cli = cluster.node(2 * k);
        Node& srv = cluster.node(2 * k + 1);
        reqCq[k] = &cli.createCq();
        rspCq[k] = &srv.createCq();
        verbs::QpConfig config;
        config.cack = k == 0 ? 5 : 8;
        config.cretry = k == 0 ? 1 : 7;
        auto [qa, qb] =
            cluster.connectRc(cli, *reqCq[k], srv, *rspCq[k], config);
        req[k] = qa;
        (void)qb;
        srcBuf[k] = cli.alloc(bufBytes);
        dstBuf[k] = srv.alloc(bufBytes);
        cli.touch(srcBuf[k], bufBytes);
        srv.touch(dstBuf[k], bufBytes);
        srcMr[k] = &cli.registerMemory(srcBuf[k], bufBytes,
                                       verbs::AccessFlags::pinned());
        dstMr[k] = &srv.registerMemory(dstBuf[k], bufBytes,
                                       verbs::AccessFlags::odp());
    }

    monitor.watchAll(cluster);

    // Storms on every eighth pair's responder (pair 0 included, so the
    // invalidation bursts overlap its long link outages).
    chaos::CombinedStormConfig stormCfg;
    stormCfg.seed = seed;
    stormCfg.tickInterval = Time::us(50);
    stormCfg.duration = Time::ms(50);
    stormCfg.pagesPerBurst = 2;
    stormCfg.squeezeCapacity = 48;
    chaos::CombinedStormStage storm(cluster.fabric(), topo, stormCfg);
    for (std::size_t k = 0; k < pairs; k += 8) {
        Node& srv = cluster.node(2 * k + 1);
        storm.addTarget(srv.lid(), srv.driver(), dstMr[k]->table(),
                        dstBuf[k], bufBytes, *rspCq[k]);
    }
    storm.start();

    constexpr std::size_t rounds = 6;
    Rng& rng = cluster.rng();
    for (std::size_t i = 0; i < rounds; ++i) {
        for (std::size_t k = 0; k < pairs; ++k) {
            if (i % 2 == 0) {
                req[k].postWrite(srcBuf[k] + (i % 16) * 256,
                                 srcMr[k]->lkey(),
                                 dstBuf[k] + (i % 16) * 256,
                                 dstMr[k]->rkey(), 128, i + 1);
            } else {
                req[k].postRead(srcBuf[k] + 8192 + (i % 16) * 256,
                                srcMr[k]->lkey(),
                                dstBuf[k] + 8192 + (i % 16) * 256,
                                dstMr[k]->rkey(), 128, i + 1);
            }
        }
        cluster.advance(rng.uniformTime(Time::us(20), Time::us(80)));
    }

    out.drained = cluster.runUntil(
        [&] {
            for (std::size_t k = 0; k < pairs; ++k)
                if (req[k].outstanding() != 0)
                    return false;
            return true;
        },
        cluster.now() + Time::sec(600));
    cluster.advance(Time::ms(10));
    monitor.finalCheck();

    out.hash = monitor.traceHash();
    out.violations = monitor.violationCount();
    out.flaps = engine.portEvents() != nullptr
                    ? engine.portEvents()->linkFlaps()
                    : 0;
    out.ports = cluster.portEventSummary();
    out.storm = storm.stats();
    for (std::size_t k = 0; k < pairs; ++k)
        out.completions += reqCq[k]->totalCompletions();
    out.report = monitor.report();
    return out;
}

} // namespace

TEST(ChaosPortEvents, CombinedStormSoakIsCleanAndGolden)
{
    const StormSoakResult r = runCombinedStormSoak(4046, 1);
    EXPECT_TRUE(r.drained);
    EXPECT_EQ(r.violations, 0u) << r.report;

    // Every layer of the storm actually fired.
    EXPECT_GT(r.flaps, 0u);
    EXPECT_GT(r.ports.portDownEvents, 0u);
    EXPECT_GT(r.ports.portUpEvents, 0u);
    EXPECT_GT(r.ports.gateDrops, 0u);
    EXPECT_GT(r.ports.qpsEnteredError, 0u);
    EXPECT_GT(r.ports.qpsRecovered, 0u);
    EXPECT_GT(r.ports.cmRearmsSent, 0u);
    EXPECT_GT(r.storm.ticks, 0u);
    EXPECT_GT(r.storm.downTicks, 0u);
    EXPECT_GT(r.storm.pagesInvalidated, 0u);
    EXPECT_GT(r.storm.capacityClamps, 0u);

    // Bit-identical replay, pinned to a recorded golden: any change to
    // the port-event schedule derivation, the CM handshake or the storm
    // cadence is loud here.
    const StormSoakResult again = runCombinedStormSoak(4046, 1);
    EXPECT_EQ(r.hash, again.hash);
    EXPECT_EQ(r.hash, kCombinedStormGolden);
    EXPECT_NE(runCombinedStormSoak(4047, 1).hash, r.hash);
}

TEST(ChaosPortEvents, CombinedStormSoakIsJobInvariant)
{
    // The jobs 1/2/4/8 differential the ISSUE names: installSharded
    // forks the port-event chains per island, so a fixed seed must give
    // bit-identical port events — and therefore traces, verdicts and
    // recovery stats — at any worker count, in both schedule modes.
    const StormSoakResult seq = runCombinedStormSoak(4046, 1);
    EXPECT_TRUE(seq.drained);
    EXPECT_EQ(seq.violations, 0u) << seq.report;

    for (const ScheduleMode mode :
         {ScheduleMode::Static, ScheduleMode::Stealing}) {
        for (unsigned jobs : {2u, 4u, 8u}) {
            const char* name =
                mode == ScheduleMode::Static ? "static" : "stealing";
            const StormSoakResult par =
                runCombinedStormSoak(4046, jobs, mode);
            EXPECT_TRUE(par.drained) << "jobs=" << jobs << " " << name;
            EXPECT_EQ(par.hash, seq.hash)
                << "jobs=" << jobs << " " << name;
            EXPECT_EQ(par.violations, seq.violations)
                << "jobs=" << jobs << " " << name << "\n" << par.report;
            EXPECT_EQ(par.flaps, seq.flaps)
                << "jobs=" << jobs << " " << name;
            EXPECT_EQ(par.ports.portDownEvents,
                      seq.ports.portDownEvents)
                << "jobs=" << jobs << " " << name;
            EXPECT_EQ(par.ports.qpsRecovered, seq.ports.qpsRecovered)
                << "jobs=" << jobs << " " << name;
            EXPECT_EQ(par.storm.pagesInvalidated,
                      seq.storm.pagesInvalidated)
                << "jobs=" << jobs << " " << name;
            EXPECT_EQ(par.completions, seq.completions)
                << "jobs=" << jobs << " " << name;
        }
    }
}

TEST(OdpPageTable, StormSoakStateMachineCleanAndJobInvariant)
{
    // The invalidation-storm-during-flood differential with the per-page
    // state machine ON: storms drive the real MMU-notifier path —
    // invalidate_start flushes translations immediately, windows doom
    // in-flight faults (FaultingInvalidated), and bursts inside open
    // windows extend them. The oracle must stay clean and the trace must
    // be bit-identical between jobs=1 and jobs=4.
    const StormSoakResult seq =
        runCombinedStormSoak(4046, 1, ScheduleMode::Stealing, false);
    EXPECT_TRUE(seq.drained);
    EXPECT_EQ(seq.violations, 0u) << seq.report;
    EXPECT_GT(seq.storm.pagesInvalidated, 0u);

    const StormSoakResult par =
        runCombinedStormSoak(4046, 4, ScheduleMode::Stealing, false);
    EXPECT_TRUE(par.drained);
    EXPECT_EQ(par.violations, 0u) << par.report;
    EXPECT_EQ(par.hash, seq.hash);
    EXPECT_EQ(par.storm.pagesInvalidated, seq.storm.pagesInvalidated);
    EXPECT_EQ(par.completions, seq.completions);
}

TEST(OdpPageTable, StormSoakLegacyGoldenStandsNextToStateMachine)
{
    // Flag-flip differential: the legacy latency-draw soak still replays
    // to its recorded golden, and the state machine produces a different
    // trace on the same seed — the notifier path genuinely reorders the
    // invalidation schedule rather than renaming it.
    const StormSoakResult legacy = runCombinedStormSoak(4046, 1);
    EXPECT_EQ(legacy.hash, kCombinedStormGolden);
    const StormSoakResult machine =
        runCombinedStormSoak(4046, 1, ScheduleMode::Stealing, false);
    EXPECT_NE(machine.hash, legacy.hash);
    EXPECT_EQ(machine.violations, 0u) << machine.report;
}
