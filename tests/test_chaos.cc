/**
 * @file
 * Chaos engine + invariant oracle tests.
 *
 * Strategy: run a randomized RC workload (READ/WRITE/SEND mix over ODP
 * regions) under each fault class and require two things at once — the
 * workload completes, and the invariant monitor stays clean. Then flip
 * the setup around: a deliberately broken injector (replaying stale
 * packets without chaos provenance) and a CQ starved of capacity must
 * both be *caught* by the oracle, proving the clean results mean
 * something.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "chaos/chaos_engine.hh"
#include "chaos/fault_injector.hh"
#include "chaos/invariant_monitor.hh"
#include "cluster/cluster.hh"
#include "net/loss.hh"
#include "swrel/soft_reliable.hh"

using namespace ibsim;

namespace {

/**
 * A randomized RC workload instrumented with the chaos engine and the
 * invariant monitor. Construction wires everything; run() posts a mixed
 * op stream and waits for it to drain.
 */
struct ChaosWorkload
{
    explicit ChaosWorkload(const chaos::ChaosConfig& cfg,
                           std::uint64_t cluster_seed = 7,
                           std::size_t op_count = 60)
        : cluster(rnic::DeviceProfile::connectX4(), 2, cluster_seed),
          engine(cluster.events(), cfg), monitor(cluster.fabric()),
          ops(op_count)
    {
        acq = &a.createCq();
        bcq = &b.createCq();
        auto [qa, qb] = cluster.connectRc(a, *acq, b, *bcq);
        aqp = qa;
        bqp = qb;

        src = a.alloc(bufBytes);
        dst = b.alloc(bufBytes);
        a.touch(src, bufBytes);
        b.touch(dst, bufBytes);
        amr = &a.registerMemory(src, bufBytes, verbs::AccessFlags::odp());
        bmr = &b.registerMemory(dst, bufBytes, verbs::AccessFlags::odp());

        engine.install(cluster.fabric());
        monitor.watch(a.rnic(), aqp.context());
        monitor.watch(b.rnic(), bqp.context());

        // Enough RECVs for every op to be a SEND.
        for (std::size_t i = 0; i < ops; ++i)
            bqp.postRecv(dst + recvBase + i * slotBytes, bmr->lkey(),
                         slotBytes, 1000 + i);
    }

    /** Post the op mix and wait for the requester to drain. */
    bool
    run(bool wait_on_totals = true)
    {
        Rng& rng = cluster.rng();
        for (std::size_t i = 0; i < ops; ++i) {
            const std::uint64_t off = (i % 64) * slotBytes;
            const auto len = static_cast<std::uint32_t>(
                rng.uniformInt(16, 256));
            switch (rng.uniformInt(0, 2)) {
              case 0:
                aqp.postWrite(src + off, amr->lkey(), dst + off,
                              bmr->rkey(), len, i + 1);
                break;
              case 1:
                aqp.postRead(src + readBase + off, amr->lkey(),
                             dst + readBase + off, bmr->rkey(), len,
                             i + 1);
                break;
              default:
                aqp.postSend(src + sendBase + off, amr->lkey(), len,
                             i + 1);
                break;
            }
            cluster.advance(rng.uniformTime(Time::us(1), Time::us(20)));
        }
        const bool ok = cluster.runUntil(
            [&] {
                if (aqp.outstanding() != 0)
                    return false;
                return !wait_on_totals ||
                       acq->totalCompletions() >= ops;
            },
            cluster.now() + Time::sec(600));
        monitor.finalCheck();
        return ok;
    }

    static constexpr std::uint64_t bufBytes = 64 * 1024;
    static constexpr std::uint64_t slotBytes = 256;
    static constexpr std::uint64_t readBase = 16 * 1024;
    static constexpr std::uint64_t sendBase = 32 * 1024;
    static constexpr std::uint64_t recvBase = 32 * 1024;

    Cluster cluster;
    chaos::ChaosEngine engine;
    chaos::InvariantMonitor monitor;
    std::size_t ops;
    Node& a = cluster.node(0);
    Node& b = cluster.node(1);
    verbs::CompletionQueue* acq = nullptr;
    verbs::CompletionQueue* bcq = nullptr;
    verbs::QueuePair aqp;
    verbs::QueuePair bqp;
    std::uint64_t src = 0;
    std::uint64_t dst = 0;
    verbs::MemoryRegion* amr = nullptr;
    verbs::MemoryRegion* bmr = nullptr;
};

chaos::ChaosConfig
everythingConfig(std::uint64_t seed)
{
    chaos::ChaosConfig cfg;
    cfg.seed = seed;
    cfg.dropRate = 0.02;
    cfg.dupRate = 0.05;
    cfg.reorderRate = 0.05;
    cfg.corruptRate = 0.03;
    cfg.delayRate = 0.2;
    cfg.forgedNakRate = 0.01;
    cfg.flapPeriod = Time::ms(5);
    cfg.flapDown = Time::us(200);
    return cfg;
}

} // namespace

// ---------------------------------------------------------------------
// Determinism: the whole point of seeding every chaos decision through
// exp::SeedStream is bit-identical replay.
// ---------------------------------------------------------------------

TEST(ChaosDeterminism, SameSeedsSameTraceAndReport)
{
    auto once = [] {
        ChaosWorkload w(everythingConfig(42), /*cluster_seed=*/7);
        w.run();
        return std::make_tuple(w.monitor.traceHash(),
                               w.monitor.packetsObserved(),
                               w.monitor.violationCount(),
                               w.monitor.report(),
                               w.engine.injector().stats());
    };
    const auto first = once();
    const auto second = once();
    EXPECT_EQ(std::get<0>(first), std::get<0>(second));
    EXPECT_EQ(std::get<1>(first), std::get<1>(second));
    EXPECT_EQ(std::get<2>(first), std::get<2>(second));
    EXPECT_EQ(std::get<3>(first), std::get<3>(second));
    const auto& s1 = std::get<4>(first);
    const auto& s2 = std::get<4>(second);
    EXPECT_EQ(s1.packetsSeen, s2.packetsSeen);
    EXPECT_EQ(s1.delayed, s2.delayed);
    EXPECT_EQ(s1.reordered, s2.reordered);
    EXPECT_EQ(s1.duplicated, s2.duplicated);
    EXPECT_EQ(s1.corrupted, s2.corrupted);
    EXPECT_EQ(s1.dropped, s2.dropped);
    EXPECT_EQ(s1.naksForged, s2.naksForged);
}

TEST(ChaosDeterminism, DifferentChaosSeedDifferentSchedule)
{
    auto hash = [](std::uint64_t chaos_seed) {
        ChaosWorkload w(everythingConfig(chaos_seed), /*cluster_seed=*/7);
        w.run();
        return w.monitor.traceHash();
    };
    EXPECT_NE(hash(1), hash(2));
}

// ---------------------------------------------------------------------
// Each fault class in isolation: the workload completes and the oracle
// stays clean (the transport absorbed the fault correctly).
// ---------------------------------------------------------------------

TEST(ChaosFaults, DelayJitterIsAbsorbed)
{
    chaos::ChaosConfig cfg;
    cfg.seed = 3;
    cfg.delayRate = 1.0;
    cfg.delayMin = Time::us(1);
    cfg.delayMax = Time::us(200);
    ChaosWorkload w(cfg);
    EXPECT_TRUE(w.run());
    EXPECT_GT(w.engine.injector().stats().delayed, 0u);
    EXPECT_TRUE(w.monitor.clean()) << w.monitor.report();
}

TEST(ChaosFaults, ReorderingRecoversViaGoBackN)
{
    chaos::ChaosConfig cfg;
    cfg.seed = 4;
    cfg.reorderRate = 0.3;
    cfg.reorderMaxHold = Time::us(300);
    ChaosWorkload w(cfg);
    EXPECT_TRUE(w.run());
    EXPECT_GT(w.engine.injector().stats().reordered, 0u);
    EXPECT_TRUE(w.monitor.clean()) << w.monitor.report();
}

TEST(ChaosFaults, DuplicatesAreIdempotent)
{
    chaos::ChaosConfig cfg;
    cfg.seed = 5;
    cfg.dupRate = 0.5;
    ChaosWorkload w(cfg);
    EXPECT_TRUE(w.run());
    EXPECT_GT(w.engine.injector().stats().duplicated, 0u);
    // A duplicate RC delivery consuming a second RECV or completing a WR
    // twice would trip recv-/send-exactly-once here.
    EXPECT_TRUE(w.monitor.clean()) << w.monitor.report();
}

TEST(ChaosFaults, DropsRecoverViaTimeout)
{
    chaos::ChaosConfig cfg;
    cfg.seed = 6;
    cfg.dropRate = 0.05;
    ChaosWorkload w(cfg);
    EXPECT_TRUE(w.run());
    EXPECT_GT(w.engine.injector().stats().dropped, 0u);
    EXPECT_TRUE(w.monitor.clean()) << w.monitor.report();
}

TEST(ChaosFaults, CorruptionFailsIcrcAndActsAsLoss)
{
    chaos::ChaosConfig cfg;
    cfg.seed = 7;
    cfg.corruptRate = 0.1;
    cfg.corruptEvadeCrc = 0.0;
    ChaosWorkload w(cfg);
    EXPECT_TRUE(w.run());
    EXPECT_GT(w.engine.injector().stats().corrupted, 0u);
    EXPECT_GT(w.a.rnic().stats().crcDrops + w.b.rnic().stats().crcDrops,
              0u);
    EXPECT_TRUE(w.monitor.clean()) << w.monitor.report();
}

TEST(ChaosFaults, CrcEvadingCorruptionNeverCrashes)
{
    // Mangled packets reach the protocol engines. The transport may
    // legitimately error the QP (e.g. a corrupted rkey draws a remote
    // access NAK), but it must degrade gracefully: no assert, no wild
    // responder arithmetic, every posted WR still completes (possibly
    // flushed).
    chaos::ChaosConfig cfg;
    cfg.seed = 8;
    cfg.corruptRate = 0.15;
    cfg.corruptEvadeCrc = 1.0;
    ChaosWorkload w(cfg);
    const bool completed = w.run();
    EXPECT_TRUE(completed || w.aqp.inError());
    EXPECT_GT(w.engine.injector().stats().corrupted, 0u);
}

TEST(ChaosFaults, LinkFlapWindowsAreSurvived)
{
    chaos::ChaosConfig cfg;
    cfg.seed = 9;
    cfg.flapPeriod = Time::ms(2);
    cfg.flapDown = Time::us(100);
    ChaosWorkload w(cfg);
    EXPECT_TRUE(w.run());
    EXPECT_GT(w.engine.injector().stats().flapDropped, 0u);
    EXPECT_TRUE(w.monitor.clean()) << w.monitor.report();
}

TEST(ChaosFaults, ForgedNaksOnlyCauseBenignReplays)
{
    chaos::ChaosConfig cfg;
    cfg.seed = 10;
    cfg.forgedNakRate = 0.05;
    ChaosWorkload w(cfg);
    EXPECT_TRUE(w.run());
    EXPECT_GT(w.engine.injector().stats().naksForged, 0u);
    // A forged PSN-sequence NAK provokes a spurious go-back-N replay;
    // the replay must stay inside the posted window (retrans-window) and
    // must not double-complete anything.
    EXPECT_TRUE(w.monitor.clean()) << w.monitor.report();
}

TEST(ChaosFaults, OdpLatencySpikesAreAbsorbed)
{
    chaos::ChaosConfig cfg;
    cfg.seed = 11;
    ChaosWorkload w(cfg);
    w.engine.addOdpLatencySpikes(w.a.driver(), 0.5, 8.0);
    w.engine.addOdpLatencySpikes(w.b.driver(), 0.5, 8.0);
    EXPECT_TRUE(w.run());
    EXPECT_GT(w.engine.stats().odpSpikes, 0u);
    EXPECT_TRUE(w.monitor.clean()) << w.monitor.report();
}

TEST(ChaosFaults, InvalidationStormIsSurvived)
{
    chaos::ChaosConfig cfg;
    cfg.seed = 12;
    ChaosWorkload w(cfg);
    w.engine.startInvalidationStorm(w.b.driver(), w.bmr->table(), w.dst,
                                    ChaosWorkload::bufBytes,
                                    Time::us(100),
                                    /*pages_per_burst=*/2,
                                    /*bursts=*/50);
    EXPECT_TRUE(w.run());
    EXPECT_GT(w.engine.stats().pagesInvalidated, 0u);
    EXPECT_TRUE(w.monitor.clean()) << w.monitor.report();
}

// ---------------------------------------------------------------------
// Oracle sensitivity: a clean verdict is only meaningful if broken
// behaviour is actually flagged.
// ---------------------------------------------------------------------

namespace {

/**
 * A deliberately broken injector: every fifth request packet triggers a
 * replay of an older request WITHOUT chaos provenance flags — to the
 * oracle this is indistinguishable from the endpoint emitting the same
 * fresh PSN twice, which RC must never do.
 */
struct ReplayHook : net::FaultHook
{
    std::vector<net::Packet> history;
    std::size_t requests = 0;

    void
    processPacket(const net::Packet& pkt, Time,
                  std::vector<Delivery>& out) override
    {
        out.push_back({pkt, Time()});
        if (!chaos::isRequestOpcode(pkt.op) || pkt.retransmission)
            return;
        history.push_back(pkt);
        if (++requests % 5 == 0)
            out.push_back({history[history.size() / 2], Time::us(1)});
    }
};

} // namespace

TEST(ChaosOracle, BrokenInjectorIsCaught)
{
    chaos::ChaosConfig cfg;
    cfg.seed = 13;
    ChaosWorkload w(cfg);
    ReplayHook replay;
    w.cluster.fabric().setFaultHook(&replay);  // displaces the engine
    w.run();
    EXPECT_GT(w.monitor.violationCount(), 0u);
    EXPECT_NE(w.monitor.report().find("fresh-once"), std::string::npos)
        << w.monitor.report();
}

TEST(ChaosOracle, CqOverflowShowsUpAsMissingCompletions)
{
    chaos::ChaosConfig cfg;
    cfg.seed = 14;
    ChaosWorkload w(cfg);
    // Nobody polls acq in this harness, so a capacity of 4 loses every
    // completion beyond the first four.
    w.engine.applyCqPressure(*w.acq, 4);
    w.run(/*wait_on_totals=*/false);
    EXPECT_GT(w.acq->overflows(), 0u);
    EXPECT_GT(w.monitor.violationCount(), 0u);
    EXPECT_NE(w.monitor.report().find("send-completion-missing"),
              std::string::npos)
        << w.monitor.report();
}

// ---------------------------------------------------------------------
// Stage unit checks.
// ---------------------------------------------------------------------

TEST(ChaosStages, LinkFlapWindowArithmetic)
{
    chaos::LinkFlapStage flap({}, Time::ms(10), Time::ms(2),
                              /*phase=*/Time::ms(1));
    EXPECT_TRUE(flap.down(Time::ms(1)));       // cycle start
    EXPECT_TRUE(flap.down(Time::ms(2.5)));     // inside the window
    EXPECT_FALSE(flap.down(Time::ms(3.5)));    // past it
    EXPECT_TRUE(flap.down(Time::ms(11.5)));    // next cycle
    EXPECT_FALSE(flap.down(Time::us(500)));    // before the first phase
}

TEST(ChaosStages, PacketFilterTargeting)
{
    chaos::PacketFilter filter;
    filter.srcQpn = 100;
    filter.requestsOnly = true;

    net::Packet req;
    req.op = net::Opcode::WriteRequest;
    req.srcQpn = 100;
    EXPECT_TRUE(filter.matches(req));

    net::Packet otherQp = req;
    otherQp.srcQpn = 101;
    EXPECT_FALSE(filter.matches(otherQp));

    net::Packet ack = req;
    ack.op = net::Opcode::Ack;
    EXPECT_FALSE(filter.matches(ack));
}

// ---------------------------------------------------------------------
// Legacy LossModel compatibility: the loss model is stage zero of the
// pipeline and keeps working with a FaultHook installed.
// ---------------------------------------------------------------------

TEST(ChaosCompat, LossModelRunsBeforeTheHook)
{
    Cluster cluster(rnic::DeviceProfile::connectX4(), 2, 17);
    chaos::FaultInjector injector(1);
    cluster.fabric().setFaultHook(&injector);
    cluster.fabric().setLossModel(
        std::make_unique<net::BernoulliLoss>(1.0));

    Node& a = cluster.node(0);
    Node& b = cluster.node(1);
    auto& acq = a.createCq();
    auto& bcq = b.createCq();
    verbs::QpConfig uc;
    uc.transport = verbs::Transport::Uc;
    auto [aqp, bqp] = cluster.connectRc(a, acq, b, bcq, uc);
    (void)bqp;
    const auto src = a.alloc(4096);
    const auto dst = b.alloc(4096);
    a.touch(src, 4096);
    auto& amr = a.registerMemory(src, 4096, verbs::AccessFlags::pinned());
    auto& bmr = b.registerMemory(dst, 4096, verbs::AccessFlags::pinned());

    aqp.postWrite(src, amr.lkey(), dst, bmr.rkey(), 64, 1);
    cluster.drain(Time::ms(10));

    // Stage zero dropped the packet before the hook ever saw it.
    EXPECT_EQ(cluster.fabric().totalDropped(),
              cluster.fabric().totalSent());
    EXPECT_EQ(injector.stats().packetsSeen, 0u);
}

// ---------------------------------------------------------------------
// Satellite: swrel failure visibility under total loss, cross-checked
// by the oracle's swrel accounting.
// ---------------------------------------------------------------------

TEST(ChaosSwrel, RetryExhaustionIsVisibleAndConsistent)
{
    Cluster cluster(rnic::DeviceProfile::connectX4(), 2, 19);
    chaos::InvariantMonitor monitor(cluster.fabric());
    swrel::SoftChannelConfig config;
    config.retryTimeout = Time::us(200);
    config.maxRetries = 2;
    swrel::SoftReliableChannel channel(cluster, cluster.node(0),
                                       cluster.node(1), config);
    cluster.fabric().setLossModel(
        std::make_unique<net::BernoulliLoss>(1.0));

    std::vector<std::uint64_t> failures;
    channel.setFailureCallback(
        [&](std::uint64_t seq) { failures.push_back(seq); });

    const std::uint64_t seq = channel.send({42});
    cluster.drain(Time::sec(1));

    ASSERT_EQ(failures.size(), 1u);
    EXPECT_EQ(failures[0], seq);
    EXPECT_TRUE(channel.failed(seq));
    EXPECT_FALSE(channel.acked(seq));
    EXPECT_TRUE(channel.allSettled());
    EXPECT_FALSE(channel.allAcked());

    monitor.checkSwrel(channel);
    EXPECT_TRUE(monitor.clean()) << monitor.report();
}

TEST(ChaosSwrel, CleanDeliveryPassesTheOracle)
{
    Cluster cluster(rnic::DeviceProfile::connectX4(), 2, 21);
    chaos::InvariantMonitor monitor(cluster.fabric());
    swrel::SoftReliableChannel channel(cluster, cluster.node(0),
                                       cluster.node(1));
    for (std::uint8_t i = 0; i < 10; ++i)
        channel.send(std::vector<std::uint8_t>(8, i));
    ASSERT_TRUE(cluster.runUntil([&] { return channel.allAcked(); },
                                 Time::sec(1)));
    monitor.checkSwrel(channel);
    EXPECT_TRUE(monitor.clean()) << monitor.report();
}
