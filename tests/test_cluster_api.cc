/**
 * @file
 * Tests of the Cluster/Node composition layer: time driving, node
 * management, the diagnostic report, and the CSV mirror of the table
 * printer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "cluster/cluster.hh"
#include "pitfall/experiment.hh"
#include "pitfall/microbench.hh"

using namespace ibsim;

TEST(ClusterApi, NodesGetSequentialLids)
{
    Cluster cluster(rnic::DeviceProfile::connectX4(), 3, 1);
    EXPECT_EQ(cluster.nodeCount(), 3u);
    EXPECT_EQ(cluster.node(0).lid(), 1);
    EXPECT_EQ(cluster.node(1).lid(), 2);
    EXPECT_EQ(cluster.node(2).lid(), 3);

    Node& extra = cluster.addNode(rnic::DeviceProfile::connectX6());
    EXPECT_EQ(extra.lid(), 4);
    EXPECT_EQ(extra.rnic().profile().model, rnic::Model::ConnectX6);
}

TEST(ClusterApi, AdvanceAndRunUntilDriveVirtualTime)
{
    Cluster cluster(rnic::DeviceProfile::connectX4(), 1, 1);
    EXPECT_EQ(cluster.now(), Time());
    cluster.advance(Time::ms(3));
    EXPECT_EQ(cluster.now(), Time::ms(3));

    bool fired = false;
    cluster.events().scheduleAfter(Time::ms(2), [&] { fired = true; });
    EXPECT_TRUE(cluster.runUntil([&] { return fired; }, Time::sec(1)));
    EXPECT_EQ(cluster.now(), Time::ms(5));
}

TEST(ClusterApi, ReportSummarizesTheRun)
{
    // Run the 2-READ damming case and check the report names the events.
    pitfall::MicroBenchConfig config;
    config.numOps = 2;
    config.interval = Time::ms(1);
    config.odpMode = pitfall::OdpMode::BothSide;
    config.capture = false;
    pitfall::MicroBenchmark bench(config, rnic::DeviceProfile::knl(), 7);
    auto r = bench.run();
    ASSERT_TRUE(r.completedAll);

    const std::string report = bench.cluster().report();
    EXPECT_NE(report.find("2 nodes"), std::string::npos);
    EXPECT_NE(report.find("timeouts=1"), std::string::npos);
    EXPECT_NE(report.find("dammed="), std::string::npos);
    EXPECT_NE(report.find("faults="), std::string::npos);
    // Fabric accounting is consistent within the report.
    EXPECT_NE(report.find("fabric: sent="), std::string::npos);
}

TEST(ClusterApi, HeterogeneousProfilesPerNode)
{
    Cluster cluster(rnic::DeviceProfile::connectX4(), 1, 1);
    Node& cx5 = cluster.addNode(rnic::DeviceProfile::connectX5());
    EXPECT_EQ(cluster.node(0).rnic().profile().minCack, 16);
    EXPECT_EQ(cx5.rnic().profile().minCack, 12);
}

TEST(TablePrinterCsv, MirrorsRowsWhenEnvSet)
{
    const char* path = "/tmp/ibsim_csv_test.csv";
    std::remove(path);
    ::setenv("IBSIM_CSV", path, 1);
    {
        pitfall::TablePrinter table({"a", "b"});
        table.printHeader();
        table.printRow({"1", "2"});
        table.printRow({"3", "4"});
    }
    ::unsetenv("IBSIM_CSV");

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "a,b");
    std::getline(in, line);
    EXPECT_EQ(line, "1,2");
    std::getline(in, line);
    EXPECT_EQ(line, "3,4");
    std::remove(path);
}

TEST(TablePrinterCsv, NoEnvNoFile)
{
    const char* path = "/tmp/ibsim_csv_test2.csv";
    std::remove(path);
    ::unsetenv("IBSIM_CSV");
    pitfall::TablePrinter table({"x"});
    table.printHeader();
    table.printRow({"1"});
    std::ifstream in(path);
    EXPECT_FALSE(in.good());
}
