/**
 * @file
 * Tests of the verbs-layer objects: completion queues, memory regions,
 * QP error semantics, and the config helpers.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.hh"
#include "pitfall/workarounds.hh"
#include "verbs/completion_queue.hh"
#include "verbs/memory_region.hh"
#include "verbs/types.hh"

using namespace ibsim;
using namespace ibsim::verbs;

TEST(CompletionQueueTest, PollDrainsFifo)
{
    CompletionQueue cq;
    for (std::uint64_t i = 0; i < 5; ++i) {
        WorkCompletion wc;
        wc.wrId = i;
        cq.push(wc);
    }
    EXPECT_EQ(cq.pending(), 5u);
    auto two = cq.poll(2);
    ASSERT_EQ(two.size(), 2u);
    EXPECT_EQ(two[0].wrId, 0u);
    EXPECT_EQ(two[1].wrId, 1u);
    auto rest = cq.poll();
    EXPECT_EQ(rest.size(), 3u);
    EXPECT_EQ(cq.pending(), 0u);
    EXPECT_EQ(cq.totalCompletions(), 5u);
}

TEST(CompletionQueueTest, ErrorTracking)
{
    CompletionQueue cq;
    WorkCompletion good;
    cq.push(good);
    EXPECT_FALSE(cq.hasError());

    WorkCompletion bad;
    bad.wrId = 42;
    bad.status = WcStatus::RetryExcErr;
    cq.push(bad);
    WorkCompletion flushed;
    flushed.status = WcStatus::WrFlushErr;
    cq.push(flushed);

    EXPECT_TRUE(cq.hasError());
    EXPECT_EQ(cq.firstError().wrId, 42u);
    EXPECT_EQ(cq.firstError().status, WcStatus::RetryExcErr);
    EXPECT_EQ(cq.totalSuccess(), 1u);
    EXPECT_EQ(cq.totalErrors(), 2u);
}

TEST(CompletionQueueTest, WcStringAndNames)
{
    WorkCompletion wc;
    wc.wrId = 9;
    wc.opcode = WrOpcode::Write;
    wc.status = WcStatus::RemAccessErr;
    const std::string s = wc.str();
    EXPECT_NE(s.find("WRITE"), std::string::npos);
    EXPECT_NE(s.find("REM_ACCESS_ERR"), std::string::npos);
    EXPECT_STREQ(wcStatusName(WcStatus::Success), "SUCCESS");
    EXPECT_STREQ(wrOpcodeName(WrOpcode::Recv), "RECV");
}

TEST(MemoryRegionTest, PinnedRegistrationMapsEverythingUpFront)
{
    mem::AddressSpace as;
    const auto base = as.alloc(3 * mem::pageSize);
    MemoryRegion mr(1, base, 3 * mem::pageSize, AccessFlags::pinned(), as);
    EXPECT_FALSE(mr.odp());
    EXPECT_EQ(mr.table().mappedPages(), 3u);
    EXPECT_TRUE(as.present(base + 2 * mem::pageSize));  // pinned down
    EXPECT_EQ(mr.lkey(), mr.rkey());
}

TEST(MemoryRegionTest, OdpRegistrationStartsCold)
{
    mem::AddressSpace as;
    const auto base = as.alloc(3 * mem::pageSize);
    MemoryRegion mr(1, base, 3 * mem::pageSize, AccessFlags::odp(), as);
    EXPECT_TRUE(mr.odp());
    EXPECT_EQ(mr.table().mappedPages(), 0u);
    EXPECT_FALSE(as.present(base));
}

TEST(MemoryRegionTest, ContainsChecksBounds)
{
    mem::AddressSpace as;
    const auto base = as.alloc(4096);
    MemoryRegion mr(1, base, 4096, AccessFlags::pinned(), as);
    EXPECT_TRUE(mr.contains(base, 4096));
    EXPECT_TRUE(mr.contains(base + 4000, 96));
    EXPECT_FALSE(mr.contains(base + 4000, 97));
    EXPECT_FALSE(mr.contains(base - 1, 10));
}

TEST(QpErrorSemantics, PostAfterErrorFlushesImmediately)
{
    Cluster cluster(rnic::DeviceProfile::connectX4(), 1, 1);
    Node& node = cluster.node(0);
    auto& cq = node.createCq();
    verbs::QpConfig config;
    config.cack = 14;
    config.cretry = 0;  // first timeout aborts
    auto qp = node.createQp(cq, config);
    qp.connect(/*dst_lid=*/404, /*dst_qpn=*/1);

    const auto buf = node.alloc(4096);
    auto& mr = node.registerMemory(buf, 4096, AccessFlags::pinned());
    qp.postRead(buf, mr.lkey(), 0x50000000, 1, 64, 1);
    cluster.runUntil([&] { return cq.totalCompletions() == 1; },
                     Time::sec(30));
    ASSERT_TRUE(qp.inError());

    // Further posts complete instantly with WR_FLUSH_ERR.
    qp.postRead(buf, mr.lkey(), 0x50000000, 1, 64, 2);
    auto wcs = cq.poll();
    ASSERT_EQ(wcs.size(), 2u);
    EXPECT_EQ(wcs[0].status, WcStatus::RetryExcErr);
    EXPECT_EQ(wcs[1].status, WcStatus::WrFlushErr);
    EXPECT_EQ(wcs[1].wrId, 2u);
}

TEST(QpErrorSemantics, MultipleOutstandingFlushTogether)
{
    Cluster cluster(rnic::DeviceProfile::connectX4(), 1, 1);
    Node& node = cluster.node(0);
    auto& cq = node.createCq();
    verbs::QpConfig config;
    config.cack = 14;
    config.cretry = 1;
    auto qp = node.createQp(cq, config);
    qp.connect(404, 1);

    const auto buf = node.alloc(8192);
    auto& mr = node.registerMemory(buf, 8192, AccessFlags::pinned());
    for (std::uint64_t i = 0; i < 3; ++i)
        qp.postRead(buf, mr.lkey(), 0x50000000, 1, 64, i);
    cluster.runUntil([&] { return cq.totalCompletions() == 3; },
                     Time::sec(30));
    auto wcs = cq.poll();
    ASSERT_EQ(wcs.size(), 3u);
    // The failing WR carries the real error; the rest flush.
    EXPECT_EQ(wcs[0].status, WcStatus::RetryExcErr);
    EXPECT_EQ(wcs[1].status, WcStatus::WrFlushErr);
    EXPECT_EQ(wcs[2].status, WcStatus::WrFlushErr);
}

TEST(ConfigHelpers, MinimalRnrDelay)
{
    verbs::QpConfig config;
    config.cack = 18;
    const auto tuned = pitfall::withMinimalRnrDelay(config);
    EXPECT_EQ(tuned.minRnrNakDelay, Time::ms(0.01));
    EXPECT_EQ(tuned.cack, 18);  // everything else untouched
}

TEST(AccessFlagsTest, Factories)
{
    const auto pinned = AccessFlags::pinned();
    EXPECT_FALSE(pinned.onDemand);
    EXPECT_TRUE(pinned.remoteRead);
    const auto odp = AccessFlags::odp();
    EXPECT_TRUE(odp.onDemand);
}
