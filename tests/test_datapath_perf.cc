/**
 * @file
 * Zero-overhead datapath tests.
 *
 * The flat routing/QP/MR tables and the lazy trace macro exist purely for
 * speed, so these tests pin down the two things a perf refactor must not
 * change: semantics (attach/detach/destroy behaviour, drop counting,
 * lookup results) and simulated-time behaviour (fixed-seed traceHash
 * goldens recorded before the refactor). The formatter-count tests
 * additionally assert the "zero work when tracing is off" contract:
 * Packet::str() never runs and no trace line is formatted on a
 * trace-disabled hot path — the unconditional pkt.str() calls that used
 * to sit in Fabric's drop paths are what they guard against coming back.
 */

#include <gtest/gtest.h>

#include <string>

#include "chaos/invariant_monitor.hh"
#include "cluster/cluster.hh"
#include "net/fabric.hh"
#include "net/packet.hh"
#include "pitfall/microbench.hh"
#include "rnic/flat_table.hh"
#include "simcore/log.hh"

using namespace ibsim;

namespace {

// ---------------------------------------------------------------- FlatKeyMap

TEST(FlatKeyMap, InsertFindErase)
{
    rnic::FlatKeyMap<int> map;
    EXPECT_EQ(map.size(), 0u);
    EXPECT_EQ(map.find(42), nullptr);

    map.insert(42, 7);
    map.insert(100001, 8);
    EXPECT_EQ(map.size(), 2u);
    ASSERT_NE(map.find(42), nullptr);
    EXPECT_EQ(*map.find(42), 7);
    ASSERT_NE(map.find(100001), nullptr);
    EXPECT_EQ(*map.find(100001), 8);

    EXPECT_TRUE(map.erase(42));
    EXPECT_FALSE(map.erase(42));
    EXPECT_EQ(map.find(42), nullptr);
    EXPECT_EQ(map.size(), 1u);
    ASSERT_NE(map.find(100001), nullptr);  // probe chain survives erase
}

TEST(FlatKeyMap, GrowthKeepsAllEntries)
{
    rnic::FlatKeyMap<std::uint32_t> map;
    const std::size_t initial = map.capacity();
    // Node-style keys (lid * 100000 + n) to mimic the real distribution.
    for (std::uint32_t i = 0; i < 200; ++i)
        map.insert(100000 + i, i);
    EXPECT_GT(map.capacity(), initial);
    EXPECT_EQ(map.size(), 200u);
    for (std::uint32_t i = 0; i < 200; ++i) {
        ASSERT_NE(map.find(100000 + i), nullptr) << i;
        EXPECT_EQ(*map.find(100000 + i), i);
    }
}

TEST(FlatKeyMap, TombstoneSlotsAreReused)
{
    rnic::FlatKeyMap<int> map;
    for (std::uint32_t i = 1; i <= 8; ++i)
        map.insert(i, static_cast<int>(i));
    for (std::uint32_t i = 1; i <= 8; ++i)
        EXPECT_TRUE(map.erase(i));
    // Erase+insert churn must not grow the table without bound:
    // tombstones are reused in place or reclaimed by an equal-size
    // rehash, never answered with endless doubling.
    for (int round = 0; round < 500; ++round) {
        for (std::uint32_t i = 1; i <= 8; ++i)
            map.insert(1000 + round * 8 + i, round);
        for (std::uint32_t i = 1; i <= 8; ++i)
            EXPECT_TRUE(map.erase(1000 + round * 8 + i));
    }
    EXPECT_LE(map.capacity(), 64u);
    EXPECT_EQ(map.size(), 0u);
}

// ------------------------------------------------------- Fabric flat routing

struct CountingPort : net::PortHandler
{
    std::uint64_t received = 0;
    void receive(const net::Packet&) override { ++received; }
};

net::Packet
packetTo(std::uint16_t dst_lid, std::uint32_t dst_qpn = 100)
{
    net::Packet pkt;
    pkt.op = net::Opcode::Send;
    pkt.srcLid = 1;
    pkt.dstLid = dst_lid;
    pkt.srcQpn = 100;
    pkt.dstQpn = dst_qpn;
    pkt.length = 0;
    return pkt;
}

TEST(FabricFlatTable, AttachDetachReattach)
{
    EventQueue events;
    Rng rng(1);
    net::Fabric fabric(events, rng);
    CountingPort port;

    fabric.attach(7, port);
    fabric.send(packetTo(7));
    events.run();
    EXPECT_EQ(port.received, 1u);
    EXPECT_EQ(fabric.totalDropped(), 0u);

    // Detached: packets to the LID vanish (the paper's port-down model).
    fabric.detach(7);
    fabric.send(packetTo(7));
    events.run();
    EXPECT_EQ(port.received, 1u);
    EXPECT_EQ(fabric.totalDropped(), 1u);

    // The slot is reusable after detach.
    fabric.attach(7, port);
    fabric.send(packetTo(7));
    events.run();
    EXPECT_EQ(port.received, 2u);
    EXPECT_EQ(fabric.totalSent(), 3u);
    EXPECT_EQ(fabric.totalDelivered(), 2u);
}

TEST(FabricFlatTable, UnknownLidCountsAsDrop)
{
    EventQueue events;
    Rng rng(1);
    net::Fabric fabric(events, rng);
    CountingPort port;
    fabric.attach(2, port);

    fabric.send(packetTo(3));     // inside the table, no handler
    fabric.send(packetTo(4095));  // far beyond: table must grow, not crash
    events.run();
    EXPECT_EQ(port.received, 0u);
    EXPECT_EQ(fabric.totalDropped(), 2u);

    // Routing still works for high LIDs after the growth.
    CountingPort high;
    fabric.attach(4094, high);
    fabric.send(packetTo(4094));
    events.run();
    EXPECT_EQ(high.received, 1u);
}

// ----------------------------------------------------------- RNIC flat tables

TEST(RnicFlatTable, DestroyedQpCountsUnknown)
{
    Cluster cluster(rnic::DeviceProfile::connectX4(), 2, 5);
    Node& a = cluster.node(0);
    Node& b = cluster.node(1);
    auto& acq = a.createCq();
    auto& bcq = b.createCq();
    auto [aqp, bqp] = cluster.connectRc(a, acq, b, bcq);

    const std::uint32_t bqpn = bqp.context().qpn;
    EXPECT_NE(b.rnic().findQp(bqpn), nullptr);
    EXPECT_EQ(b.rnic().allQps().size(), 1u);

    b.rnic().destroyQp(bqpn);
    EXPECT_EQ(b.rnic().findQp(bqpn), nullptr);
    EXPECT_TRUE(b.rnic().allQps().empty());

    // Traffic still addressed to the destroyed QPN is dropped and counted,
    // like a real HCA discarding packets to a destroyed QP.
    cluster.fabric().send(packetTo(b.rnic().lid(), bqpn));
    cluster.advance(Time::ms(1));
    EXPECT_EQ(b.rnic().stats().packetsToUnknownQp, 1u);
}

TEST(RnicFlatTable, OutOfRangeQpnsCountUnknown)
{
    Cluster cluster(rnic::DeviceProfile::connectX4(), 2, 5);
    Node& b = cluster.node(1);
    auto& acq = cluster.node(0).createCq();
    auto& bcq = b.createCq();
    cluster.connectRc(cluster.node(0), acq, b, bcq);

    cluster.fabric().send(packetTo(b.rnic().lid(), 5));       // below firstQpn
    cluster.fabric().send(packetTo(b.rnic().lid(), 999999));  // beyond table
    cluster.advance(Time::ms(1));
    EXPECT_EQ(b.rnic().stats().packetsToUnknownQp, 2u);
}

TEST(RnicFlatTable, MruCacheInvalidatedOnDeregister)
{
    Cluster cluster(rnic::DeviceProfile::connectX4(), 1, 5);
    Node& node = cluster.node(0);
    const std::uint64_t addr1 = node.alloc(4096);
    const std::uint64_t addr2 = node.alloc(4096);
    auto& mr1 =
        node.registerMemory(addr1, 4096, verbs::AccessFlags::pinned());
    auto& mr2 =
        node.registerMemory(addr2, 4096, verbs::AccessFlags::pinned());
    const std::uint32_t key1 = mr1.rkey();
    const std::uint32_t key2 = mr2.rkey();

    // Repeated hits (the second one is served by the MRU cache).
    EXPECT_EQ(node.rnic().findMr(key1), &mr1);
    EXPECT_EQ(node.rnic().findMr(key1), &mr1);
    EXPECT_EQ(node.rnic().findMr(key2), &mr2);

    // Deregistering the MRU-cached region must not leave a stale hit.
    node.deregisterMemory(mr2);
    EXPECT_EQ(node.rnic().findMr(key2), nullptr);
    EXPECT_EQ(node.rnic().findMr(key1), &mr1);
    node.deregisterMemory(mr1);
    EXPECT_EQ(node.rnic().findMr(key1), nullptr);
}

// --------------------------------------------------------------- lazy tracing

TEST(LazyTrace, MacroSkipsExpressionWhenDisabled)
{
    log::disableAll();
    static log::Component comp("lazy_trace_test");
    int evaluations = 0;
    const auto format = [&evaluations] {
        ++evaluations;
        return std::string("formatted");
    };

    IBSIM_TRACE(comp, Time(), format());
    EXPECT_EQ(evaluations, 0);  // disabled: expression never evaluated

    const std::uint64_t linesBefore = log::linesEmitted();
    log::enable("lazy_trace_test");
    EXPECT_TRUE(comp.enabled());
    IBSIM_TRACE(comp, Time(), format());
    EXPECT_EQ(evaluations, 1);
    EXPECT_EQ(log::linesEmitted(), linesBefore + 1);

    log::disableAll();
    IBSIM_TRACE(comp, Time(), format());
    EXPECT_EQ(evaluations, 1);
}

TEST(LazyTrace, DisabledHotPathFormatsNothing)
{
    log::disableAll();
    pitfall::MicroBenchConfig config;
    config.numOps = 32;
    config.numQps = 2;
    config.size = 100;
    config.interval = Time::us(50);
    config.odpMode = pitfall::OdpMode::ServerSide;  // faults + damming path
    config.capture = false;
    config.waitLimit = Time::sec(600);
    pitfall::MicroBenchmark bench(config,
                                  rnic::DeviceProfile::connectX4(), 99);

    const std::uint64_t strBefore = net::Packet::strCalls();
    const std::uint64_t linesBefore = log::linesEmitted();
    bench.run();
    // The whole point of the lazy-trace refactor: a trace-disabled run
    // formats zero packet strings and emits zero lines.
    EXPECT_EQ(net::Packet::strCalls(), strBefore);
    EXPECT_EQ(log::linesEmitted(), linesBefore);
}

TEST(LazyTrace, FabricDropPathIsLazy)
{
    EventQueue events;
    Rng rng(1);
    net::Fabric fabric(events, rng);

    // Unknown-LID drop with tracing off: the old code formatted
    // pkt.str() unconditionally here; now it must not.
    log::disableAll();
    const std::uint64_t strBefore = net::Packet::strCalls();
    fabric.send(packetTo(9));
    events.run();
    EXPECT_EQ(fabric.totalDropped(), 1u);
    EXPECT_EQ(net::Packet::strCalls(), strBefore);

    // Same drop with the component traced: the string is built again.
    log::enable("fabric");
    fabric.send(packetTo(9));
    events.run();
    EXPECT_GT(net::Packet::strCalls(), strBefore);
    log::disableAll();
}

// ------------------------------------------------- fixed-seed trace goldens

/**
 * traceHash of a microbench scenario with the invariant monitor watching
 * every QP from the start. The expected values below were recorded on the
 * pre-refactor tree (std::map tables, eager tracing): the flat tables and
 * lazy tracing must not move a single packet in simulated time.
 */
std::uint64_t
scenarioHash(pitfall::OdpMode mode, std::size_t ops, std::size_t qps,
             std::uint64_t seed)
{
    pitfall::MicroBenchConfig config;
    config.numOps = ops;
    config.numQps = qps;
    config.size = 100;
    config.interval = Time::us(50);
    config.odpMode = mode;
    config.capture = false;
    config.waitLimit = Time::sec(600);
    pitfall::MicroBenchmark bench(config,
                                  rnic::DeviceProfile::connectX4(), seed);
    chaos::InvariantMonitor monitor(bench.cluster().fabric());
    bench.setQpReadyHook([&] {
        for (auto* qp : bench.client().rnic().allQps())
            monitor.watch(bench.client().rnic(), *qp);
        for (auto* qp : bench.server().rnic().allQps())
            monitor.watch(bench.server().rnic(), *qp);
    });
    bench.run();
    EXPECT_TRUE(monitor.clean()) << monitor.report();
    return monitor.traceHash();
}

TEST(TraceHashGolden, DammingScenarioUnchangedByRefactor)
{
    EXPECT_EQ(scenarioHash(pitfall::OdpMode::ServerSide, 64, 4, 12345),
              0xfec1c2a0d1bb3d21ull);
}

TEST(TraceHashGolden, FloodScenarioUnchangedByRefactor)
{
    EXPECT_EQ(scenarioHash(pitfall::OdpMode::ClientSide, 256, 16, 98765),
              0x60b30a5b94b311a1ull);
}

// -------------------------------------------------- watchAll / late attach

TEST(WatchAll, CoversEveryQpInTheCluster)
{
    Cluster cluster(rnic::DeviceProfile::connectX4(), 4, 21);
    std::vector<verbs::QueuePair> qps;
    std::vector<verbs::CompletionQueue*> cqs;
    for (std::size_t p = 0; p < 2; ++p) {
        Node& a = cluster.node(2 * p);
        Node& b = cluster.node(2 * p + 1);
        auto& acq = a.createCq();
        auto& bcq = b.createCq();
        cqs.push_back(&acq);
        for (int i = 0; i < 3; ++i) {
            auto [aqp, bqp] = cluster.connectRc(a, acq, b, bcq);
            qps.push_back(aqp);
        }
    }

    chaos::InvariantMonitor monitor(cluster.fabric());
    monitor.watchAll(cluster);

    // One READ per client QP; a fully watched drain must come out clean.
    for (std::size_t p = 0; p < 2; ++p) {
        Node& a = cluster.node(2 * p);
        Node& b = cluster.node(2 * p + 1);
        const std::uint64_t src = b.alloc(4096);
        const std::uint64_t dst = a.alloc(4096);
        auto& smr =
            b.registerMemory(src, 4096, verbs::AccessFlags::pinned());
        auto& cmr =
            a.registerMemory(dst, 4096, verbs::AccessFlags::pinned());
        for (int i = 0; i < 3; ++i) {
            qps[p * 3 + i].postRead(dst, cmr.lkey(), src, smr.rkey(), 100,
                                    1);
        }
    }
    ASSERT_TRUE(cluster.runUntil(
        [&] {
            std::uint64_t done = 0;
            for (auto* cq : cqs)
                done += cq->totalCompletions();
            return done >= 6;
        },
        Time::sec(10)));
    monitor.finalCheck();
    EXPECT_TRUE(monitor.clean()) << monitor.report();
    EXPECT_GT(monitor.packetsObserved(), 0u);
}

TEST(WatchAll, LateAttachMidRunStaysClean)
{
    Cluster cluster(rnic::DeviceProfile::connectX4(), 2, 33);
    Node& a = cluster.node(0);
    Node& b = cluster.node(1);
    auto& acq = a.createCq();
    auto& bcq = b.createCq();
    auto [aqp, bqp] = cluster.connectRc(a, acq, b, bcq);
    const std::uint64_t src = b.alloc(4096);
    const std::uint64_t dst = a.alloc(4096);
    auto& smr = b.registerMemory(src, 4096, verbs::AccessFlags::pinned());
    auto& cmr = a.registerMemory(dst, 4096, verbs::AccessFlags::odp());

    // Wave 1 runs entirely unobserved.
    for (std::uint64_t wr = 1; wr <= 4; ++wr)
        aqp.postRead(dst, cmr.lkey(), src, smr.rkey(), 100, wr);
    ASSERT_TRUE(cluster.runUntil(
        [&] { return acq.totalCompletions() >= 4; }, Time::sec(10)));

    // Attach mid-run: nextPsn is far from 0 and history is unknown.
    chaos::InvariantMonitor monitor(cluster.fabric());
    monitor.watchAll(cluster);

    // Wave 2 (fresh wrIds) is fully observed and must satisfy every
    // invariant; wave-1 residue must not be misreported.
    for (std::uint64_t wr = 10; wr <= 13; ++wr)
        aqp.postRead(dst, cmr.lkey(), src, smr.rkey(), 100, wr);
    ASSERT_TRUE(cluster.runUntil(
        [&] { return acq.totalCompletions() >= 8; }, Time::sec(10)));
    monitor.finalCheck();
    EXPECT_TRUE(monitor.clean()) << monitor.report();
    EXPECT_GT(monitor.packetsObserved(), 0u);
}

TEST(WatchAll, LateAttachIgnoresInFlightWave)
{
    Cluster cluster(rnic::DeviceProfile::connectX4(), 2, 44);
    Node& a = cluster.node(0);
    Node& b = cluster.node(1);
    auto& acq = a.createCq();
    auto& bcq = b.createCq();
    auto [aqp, bqp] = cluster.connectRc(a, acq, b, bcq);
    const std::uint64_t src = b.alloc(4096);
    const std::uint64_t dst = a.alloc(4096);
    auto& smr = b.registerMemory(src, 4096, verbs::AccessFlags::pinned());
    auto& cmr = a.registerMemory(dst, 4096, verbs::AccessFlags::pinned());

    // Posted but not yet completed when the monitor attaches: their
    // retransmissions, responses and completions are all pre-attach
    // artifacts and must be excluded rather than flagged.
    for (std::uint64_t wr = 1; wr <= 4; ++wr)
        aqp.postRead(dst, cmr.lkey(), src, smr.rkey(), 100, wr);

    chaos::InvariantMonitor monitor(cluster.fabric());
    monitor.watchAll(cluster);

    ASSERT_TRUE(cluster.runUntil(
        [&] { return acq.totalCompletions() >= 4; }, Time::sec(10)));
    monitor.finalCheck();
    EXPECT_TRUE(monitor.clean()) << monitor.report();
}

} // namespace
