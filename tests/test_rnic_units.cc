/**
 * @file
 * Unit and parameterized tests of the RNIC building blocks: Local ACK
 * Timeout arithmetic (paper Sec. II-C), 24-bit PSN ring math, and the
 * device profile catalog (Table I).
 */

#include <gtest/gtest.h>

#include "rnic/device_profile.hh"
#include "rnic/qp_context.hh"
#include "rnic/timeout.hh"

using namespace ibsim;
using namespace ibsim::rnic;

TEST(TimeoutMath, SpecFormula)
{
    // T_tr = 4.096 us * 2^C_ack.
    EXPECT_EQ(timeoutInterval(1).toNs(), 8192);
    EXPECT_DOUBLE_EQ(timeoutInterval(12).toMs(), 16.777216);
    EXPECT_DOUBLE_EQ(timeoutInterval(16).toMs(), 268.435456);
    EXPECT_NEAR(timeoutInterval(18).toSec(), 1.0737, 1e-3);
    // 0 disables the timer.
    EXPECT_EQ(timeoutInterval(0), Time::max());
}

/** Parameterized sweep: the formula holds for every encodable exponent. */
class TimeoutIntervalSweep : public ::testing::TestWithParam<int>
{};

TEST_P(TimeoutIntervalSweep, PowerOfTwoLaw)
{
    const int cack = GetParam();
    const Time t = timeoutInterval(static_cast<std::uint8_t>(cack));
    EXPECT_EQ(t.toNs(), 4096ll << cack);
    if (cack > 1) {
        const Time prev =
            timeoutInterval(static_cast<std::uint8_t>(cack - 1));
        EXPECT_EQ(t.toNs(), 2 * prev.toNs());
    }
}

INSTANTIATE_TEST_SUITE_P(AllExponents, TimeoutIntervalSweep,
                         ::testing::Range(1, 32));

TEST(TimeoutMath, VendorClamping)
{
    EXPECT_EQ(effectiveCack(1, 16), 16);
    EXPECT_EQ(effectiveCack(16, 16), 16);
    EXPECT_EQ(effectiveCack(20, 16), 20);
    EXPECT_EQ(effectiveCack(0, 16), 0);  // disabled stays disabled
}

TEST(TimeoutMath, DetectionTimeWithinSpecBand)
{
    // The spec requires T_tr <= T_o <= 4 T_tr.
    for (const auto& profile : DeviceProfile::table1()) {
        for (std::uint8_t cack = 1; cack <= 21; ++cack) {
            const Time to = detectionTime(cack, profile);
            const Time ttr =
                timeoutInterval(effectiveCack(cack, profile.minCack));
            EXPECT_GE(to, ttr);
            EXPECT_LE(to, ttr * 4.0);
        }
    }
}

TEST(TimeoutMath, MeasuredFloorsFromThePaper)
{
    // Fig. 2: ~500 ms floor for ConnectX-3/4/6, ~30 ms for ConnectX-5.
    EXPECT_NEAR(detectionTime(1, DeviceProfile::connectX4()).toMs(),
                537.0, 10.0);
    EXPECT_NEAR(detectionTime(1, DeviceProfile::connectX3()).toMs(),
                537.0, 10.0);
    EXPECT_NEAR(detectionTime(1, DeviceProfile::connectX6()).toMs(),
                537.0, 10.0);
    EXPECT_NEAR(detectionTime(1, DeviceProfile::connectX5()).toMs(),
                33.6, 2.0);
}

TEST(PsnMath, NextWrapsAt24Bits)
{
    EXPECT_EQ(psnNext(0), 1u);
    EXPECT_EQ(psnNext(0xfffffe), 0xffffffu);
    EXPECT_EQ(psnNext(0xffffff), 0u);
}

TEST(PsnMath, DiffHandlesWraparound)
{
    EXPECT_EQ(psnDiff(5, 3), 2);
    EXPECT_EQ(psnDiff(3, 5), -2);
    EXPECT_EQ(psnDiff(0, 0xffffff), 1);   // just wrapped
    EXPECT_EQ(psnDiff(0xffffff, 0), -1);
    EXPECT_EQ(psnDiff(100, 100), 0);
}

/** Property sweep: diff/next are consistent across the ring. */
class PsnRingSweep : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(PsnRingSweep, DiffOfNeighborsIsOne)
{
    const std::uint32_t psn = GetParam();
    EXPECT_EQ(psnDiff(psnNext(psn), psn), 1);
    EXPECT_EQ(psnDiff(psn, psnNext(psn)), -1);
    // Mid-range distances keep their sign.
    const std::uint32_t far = (psn + 0x400000) & 0xffffff;
    EXPECT_GT(psnDiff(far, psn), 0);
}

INSTANTIATE_TEST_SUITE_P(RingPoints, PsnRingSweep,
                         ::testing::Values(0u, 1u, 100u, 0x7fffffu,
                                           0x800000u, 0xfffffeu,
                                           0xffffffu));

TEST(DeviceCatalog, TableOneMatchesThePaper)
{
    const auto catalog = DeviceProfile::table1();
    ASSERT_EQ(catalog.size(), 8u);

    EXPECT_EQ(catalog[0].systemName, "Private servers A");
    EXPECT_EQ(catalog[0].model, Model::ConnectX3);
    EXPECT_EQ(catalog[0].psid, "MT_1100120019");

    EXPECT_EQ(catalog[1].systemName, "Private servers B");
    EXPECT_EQ(catalog[1].model, Model::ConnectX4);
    EXPECT_EQ(catalog[1].firmwareVersion, "12.27.1016");

    EXPECT_EQ(catalog[6].model, Model::ConnectX5);
    EXPECT_EQ(catalog[6].minCack, 12);
    EXPECT_EQ(catalog[7].model, Model::ConnectX6);
    EXPECT_EQ(catalog[7].linkGbps, 200);

    // The damming quirk vanished after ConnectX-4 (vendor feedback).
    EXPECT_TRUE(catalog[1].dammingQuirk);
    EXPECT_FALSE(catalog[6].dammingQuirk);
    EXPECT_FALSE(catalog[7].dammingQuirk);

    // Every profile keeps the flood quirk: it remains in the latest cards.
    for (const auto& p : catalog)
        EXPECT_TRUE(p.floodQuirk.enabled);
}

TEST(DeviceCatalog, KnlIsPrivateServersB)
{
    const auto knl = DeviceProfile::knl();
    EXPECT_EQ(knl.systemName, "Private servers B");
    EXPECT_EQ(knl.model, Model::ConnectX4);
}

TEST(DeviceCatalog, ModelNames)
{
    EXPECT_STREQ(modelName(Model::ConnectX3), "ConnectX-3");
    EXPECT_STREQ(modelName(Model::ConnectX6), "ConnectX-6");
}
