/**
 * @file
 * Tests of the ucxlite tag-matching layer: eager/rendezvous protocols,
 * unexpected-message queuing, the ODP-vs-regcache memory domain, and the
 * pitfalls arising through the middleware exactly the way the paper met
 * them (Sec. IX-A).
 */

#include <gtest/gtest.h>

#include "ucxlite/ucx_lite.hh"

using namespace ibsim;
using namespace ibsim::ucxlite;

namespace {

std::vector<std::uint8_t>
pattern(std::size_t n, std::uint8_t seed = 1)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(seed + i * 13);
    return v;
}

struct UcxFixture : public ::testing::Test
{
    Cluster cluster{rnic::DeviceProfile::knl(), 2, 37};
    std::unique_ptr<UcxWorker> wa;
    std::unique_ptr<UcxWorker> wb;
    UcxEndpoint* ab = nullptr;

    void
    init(UcxConfig config = {})
    {
        wa = std::make_unique<UcxWorker>(cluster, cluster.node(0),
                                         config);
        wb = std::make_unique<UcxWorker>(cluster, cluster.node(1),
                                         config);
        ab = &wa->connectTo(*wb);
    }

    bool
    wait(const std::function<bool()>& pred, Time limit = Time::sec(10))
    {
        return cluster.runUntil(pred, cluster.now() + limit);
    }
};

} // namespace

TEST_F(UcxFixture, EagerSmallMessage)
{
    init();
    const auto data = pattern(200);
    const auto src = wa->node().alloc(4096);
    const auto dst = wb->node().alloc(4096);
    wa->node().memory().write(src, data);

    const auto rreq = wb->tagRecv(/*tag=*/7, dst, 4096);
    const auto sreq = ab->tagSend(7, src, 200);
    ASSERT_TRUE(wait([&] {
        return wa->completed(sreq) && wb->completed(rreq);
    }));
    EXPECT_EQ(wb->receivedBytes(rreq), 200u);
    EXPECT_EQ(wb->node().memory().read(dst, 200), data);
    EXPECT_EQ(wa->stats().eagerSends, 1u);
    EXPECT_EQ(wa->stats().rendezvousSends, 0u);
}

TEST_F(UcxFixture, RendezvousLargeMessage)
{
    init();
    const auto data = pattern(32000, 5);
    const auto src = wa->node().alloc(32768);
    const auto dst = wb->node().alloc(32768);
    wa->node().memory().write(src, data);

    const auto rreq = wb->tagRecv(9, dst, 32768);
    const auto sreq = ab->tagSend(9, src, 32000);
    ASSERT_TRUE(wait([&] {
        return wa->completed(sreq) && wb->completed(rreq);
    }));
    EXPECT_EQ(wb->node().memory().read(dst, 32000), data);
    EXPECT_EQ(wa->stats().rendezvousSends, 1u);
    EXPECT_EQ(wb->stats().rendezvousReads, 1u);
    // Under the ODP domain the pull faulted on-demand on both ends.
    EXPECT_GT(wa->node().driver().stats().faultsResolved +
                  wb->node().driver().stats().faultsResolved,
              0u);
}

TEST_F(UcxFixture, UnexpectedMessagesMatchLater)
{
    init();
    const auto src = wa->node().alloc(4096);
    const auto dst = wb->node().alloc(4096);
    wa->node().memory().write(src, pattern(64));

    // Send before the receive is posted.
    const auto sreq = ab->tagSend(3, src, 64);
    ASSERT_TRUE(wait([&] { return wa->completed(sreq); }));
    EXPECT_EQ(wb->stats().unexpectedMessages, 1u);

    const auto rreq = wb->tagRecv(3, dst, 4096);
    ASSERT_TRUE(wait([&] { return wb->completed(rreq); }));
    EXPECT_EQ(wb->node().memory().read(dst, 64), pattern(64));
}

TEST_F(UcxFixture, TagsAreMatchedIndependently)
{
    init();
    const auto src = wa->node().alloc(8192);
    const auto dst = wb->node().alloc(8192);
    wa->node().memory().write(src, pattern(64, 1));
    wa->node().memory().write(src + 4096, pattern(64, 2));

    const auto r2 = wb->tagRecv(2, dst, 4096);
    const auto r1 = wb->tagRecv(1, dst + 4096, 4096);
    const auto s1 = ab->tagSend(1, src, 64);
    const auto s2 = ab->tagSend(2, src + 4096, 64);
    ASSERT_TRUE(wait([&] {
        return wa->completed(s1) && wa->completed(s2) &&
               wb->completed(r1) && wb->completed(r2);
    }));
    // Tag 1 landed in tag-1's buffer, tag 2 in tag-2's.
    EXPECT_EQ(wb->node().memory().read(dst + 4096, 64), pattern(64, 1));
    EXPECT_EQ(wb->node().memory().read(dst, 64), pattern(64, 2));
}

TEST_F(UcxFixture, RegcacheDomainPinsInsteadOfFaulting)
{
    UcxConfig config;
    config.useOdp = false;  // conventional registration
    init(config);
    const auto data = pattern(32000, 9);
    const auto src = wa->node().alloc(32768);
    const auto dst = wb->node().alloc(32768);
    wa->node().memory().write(src, data);

    const auto rreq = wb->tagRecv(4, dst, 32768);
    const auto sreq = ab->tagSend(4, src, 32000);
    ASSERT_TRUE(wait([&] {
        return wa->completed(sreq) && wb->completed(rreq);
    }));
    EXPECT_EQ(wb->node().memory().read(dst, 32000), data);
    // No ODP faults anywhere: the domain pinned via the cache.
    EXPECT_EQ(wa->node().driver().stats().faultsResolved, 0u);
    EXPECT_EQ(wb->node().driver().stats().faultsResolved, 0u);
}

TEST_F(UcxFixture, BidirectionalTraffic)
{
    init();
    auto& ba = wb->connectTo(*wa);
    const auto abuf = wa->node().alloc(4096);
    const auto bbuf = wb->node().alloc(4096);
    wa->node().memory().write(abuf, pattern(32, 3));
    wb->node().memory().write(bbuf, pattern(32, 4));

    const auto ra = wa->tagRecv(1, abuf + 2048, 2048);
    const auto rb = wb->tagRecv(1, bbuf + 2048, 2048);
    const auto sa = ab->tagSend(1, abuf, 32);
    const auto sb = ba.tagSend(1, bbuf, 32);
    ASSERT_TRUE(wait([&] {
        return wa->completed(sa) && wb->completed(sb) &&
               wa->completed(ra) && wb->completed(rb);
    }));
    EXPECT_EQ(wa->node().memory().read(abuf + 2048, 32), pattern(32, 4));
    EXPECT_EQ(wb->node().memory().read(bbuf + 2048, 32), pattern(32, 3));
}

TEST_F(UcxFixture, RendezvousFinTrafficRescuesBackToBackPulls)
{
    // Two rendezvous pulls on one connection under the ODP domain: the
    // first READ faults, the second is posted inside the pending period
    // and gets dammed -- but the middleware's own FIN for the first pull
    // provokes the PSN-sequence-error NAK and rescues it. Tag-matched
    // traffic is accidentally damming-resistant; the one-sided RMA path
    // below is not.
    init();
    const auto src = wa->node().alloc(65536);
    const auto dst = wb->node().alloc(65536);
    wa->node().memory().write(src, pattern(8192, 7));
    wa->node().memory().write(src + 32768, pattern(8192, 8));

    const auto r1 = wb->tagRecv(11, dst, 8192);
    const auto r2 = wb->tagRecv(12, dst + 32768, 8192);
    const auto s1 = ab->tagSend(11, src, 8192);
    cluster.advance(Time::ms(1));  // inside the RNR pending window
    const auto s2 = ab->tagSend(12, src + 32768, 8192);

    const Time start = cluster.now();
    ASSERT_TRUE(wait([&] {
        return wa->completed(s1) && wa->completed(s2) &&
               wb->completed(r1) && wb->completed(r2);
    }, Time::sec(30)));
    const double elapsed_s = (cluster.now() - start).toSec();

    EXPECT_EQ(wb->node().memory().read(dst, 8192), pattern(8192, 7));
    EXPECT_EQ(wb->node().memory().read(dst + 32768, 8192),
              pattern(8192, 8));
    EXPECT_LT(elapsed_s, 0.1);  // FIN-rescued: no transport timeout
}

TEST_F(UcxFixture, DammingStrikesThroughOneSidedRma)
{
    // The paper's Sec. VII-A trap end-to-end: ArgoDSM-style one-sided
    // RMA -- a direct get (READ) followed shortly by an eager SEND on
    // the same connection, under the ODP domain. The get faults; the
    // SEND posted inside the pending window is dammed; no later traffic
    // follows, so only the ~2.1 s transport timeout (C_ack 18) recovers
    // it. No error surfaces anywhere in the middleware.
    init();
    const auto lock = wa->node().alloc(4096);   // remote "lock word"
    const auto dst = wb->node().alloc(8192);
    const auto msg = wb->node().alloc(4096);
    wb->node().memory().write(msg, pattern(64, 2));
    wa->node().memory().write(lock, pattern(8, 1));

    auto& ba = wb->connectTo(*wa);
    const RemoteMemory rmem = wa->expose(lock, 4096);
    const auto rr = wa->tagRecv(5, lock + 2048, 2048);

    const auto get_req = ba.get(dst, rmem, 8);      // lock READ (faults)
    cluster.advance(Time::ms(1));                   // inside the window
    const auto send_req = ba.tagSend(5, msg, 64);   // lock-release SEND

    const Time start = cluster.now();
    ASSERT_TRUE(wait([&] {
        return wb->completed(get_req) && wb->completed(send_req) &&
               wa->completed(rr);
    }, Time::sec(30)));
    const double elapsed_s = (cluster.now() - start).toSec();

    // Data intact; the pitfall is pure latency.
    EXPECT_EQ(wb->node().memory().read(dst, 8), pattern(8, 1));
    EXPECT_EQ(wa->node().memory().read(lock + 2048, 64), pattern(64, 2));
    EXPECT_GT(elapsed_s, 1.5);  // one C_ack=18 transport timeout
}

TEST_F(UcxFixture, OneSidedPutRoundTrip)
{
    init();
    const auto src = wb->node().alloc(4096);
    const auto dst = wa->node().alloc(4096);
    wb->node().memory().write(src, pattern(256, 6));

    auto& ba = wb->connectTo(*wa);
    const RemoteMemory rmem = wa->expose(dst, 4096);
    const auto req = ba.put(src, rmem, 256);
    ASSERT_TRUE(wait([&] { return wb->completed(req); }));
    EXPECT_EQ(wa->node().memory().read(dst, 256), pattern(256, 6));
}

TEST_F(UcxFixture, PinnedDomainAvoidsTheSameDamming)
{
    UcxConfig config;
    config.useOdp = false;
    init(config);
    const auto src = wa->node().alloc(65536);
    const auto dst = wb->node().alloc(65536);
    wa->node().memory().write(src, pattern(8192, 7));
    wa->node().memory().write(src + 32768, pattern(8192, 8));

    const auto r1 = wb->tagRecv(11, dst, 8192);
    const auto r2 = wb->tagRecv(12, dst + 32768, 8192);
    const auto s1 = ab->tagSend(11, src, 8192);
    cluster.advance(Time::ms(1));
    const auto s2 = ab->tagSend(12, src + 32768, 8192);

    const Time start = cluster.now();
    ASSERT_TRUE(wait([&] {
        return wa->completed(s1) && wa->completed(s2) &&
               wb->completed(r1) && wb->completed(r2);
    }));
    EXPECT_LT((cluster.now() - start).toMs(), 50.0);
}
