/**
 * @file
 * Tests of the ATOMIC verbs: fetch-and-add, compare-and-swap, duplicate
 * replay protection under loss, and ODP interaction.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "cluster/cluster.hh"
#include "net/loss.hh"

using namespace ibsim;

namespace {

std::uint64_t
read64(Node& node, std::uint64_t addr)
{
    const auto bytes = node.memory().read(addr, 8);
    std::uint64_t v = 0;
    std::memcpy(&v, bytes.data(), 8);
    return v;
}

void
write64(Node& node, std::uint64_t addr, std::uint64_t v)
{
    std::vector<std::uint8_t> bytes(8);
    std::memcpy(bytes.data(), &v, 8);
    node.memory().write(addr, bytes);
}

struct AtomicFixture : public ::testing::Test
{
    Cluster cluster{rnic::DeviceProfile::connectX4(), 2, 17};
    Node& client = cluster.node(0);
    Node& server = cluster.node(1);
    verbs::CompletionQueue& ccq = client.createCq();
    verbs::CompletionQueue& scq = server.createCq();
    verbs::QueuePair cqp;
    std::uint64_t counter = 0;  // remote counter address
    std::uint64_t land = 0;     // local landing buffer
    verbs::MemoryRegion* smr = nullptr;
    verbs::MemoryRegion* cmr = nullptr;

    void
    SetUp() override
    {
        auto [a, b] = cluster.connectRc(client, ccq, server, scq);
        cqp = a;
        counter = server.alloc(4096);
        land = client.alloc(4096);
        smr = &server.registerMemory(counter, 4096,
                                     verbs::AccessFlags::pinned());
        cmr = &client.registerMemory(land, 4096,
                                     verbs::AccessFlags::pinned());
    }

    bool
    waitFor(std::uint64_t completions, Time limit = Time::sec(5))
    {
        return cluster.runUntil(
            [&] { return ccq.totalCompletions() >= completions; }, limit);
    }
};

} // namespace

TEST_F(AtomicFixture, FetchAddReturnsOldAndAdds)
{
    write64(server, counter, 100);
    cqp.postFetchAdd(land, cmr->lkey(), counter, smr->rkey(), 5, 1);
    ASSERT_TRUE(waitFor(1));
    auto wcs = ccq.poll();
    EXPECT_TRUE(wcs[0].ok());
    EXPECT_EQ(wcs[0].opcode, verbs::WrOpcode::FetchAdd);
    EXPECT_EQ(read64(client, land), 100u);   // original value landed
    EXPECT_EQ(read64(server, counter), 105u);
}

TEST_F(AtomicFixture, FetchAddChainAccumulates)
{
    for (std::uint64_t i = 0; i < 10; ++i)
        cqp.postFetchAdd(land, cmr->lkey(), counter, smr->rkey(), 3,
                         i + 1);
    ASSERT_TRUE(waitFor(10));
    EXPECT_EQ(read64(server, counter), 30u);
    // The last response carries the value before the final add.
    EXPECT_EQ(read64(client, land), 27u);
}

TEST_F(AtomicFixture, CompSwapOnlySwapsOnMatch)
{
    write64(server, counter, 42);

    // Mismatch: no swap, old value returned.
    cqp.postCompSwap(land, cmr->lkey(), counter, smr->rkey(),
                     /*compare=*/7, /*swap=*/99, 1);
    ASSERT_TRUE(waitFor(1));
    EXPECT_EQ(read64(client, land), 42u);
    EXPECT_EQ(read64(server, counter), 42u);

    // Match: swapped.
    cqp.postCompSwap(land, cmr->lkey(), counter, smr->rkey(),
                     /*compare=*/42, /*swap=*/99, 2);
    ASSERT_TRUE(waitFor(2));
    EXPECT_EQ(read64(client, land), 42u);
    EXPECT_EQ(read64(server, counter), 99u);
}

TEST_F(AtomicFixture, SpinlockViaCompSwap)
{
    // Classic RDMA lock: CAS 0 -> 1 acquires; write 0 releases.
    cqp.postCompSwap(land, cmr->lkey(), counter, smr->rkey(), 0, 1, 1);
    ASSERT_TRUE(waitFor(1));
    EXPECT_EQ(read64(client, land), 0u);  // acquired

    // A second acquisition attempt fails (lock held).
    cqp.postCompSwap(land + 8, cmr->lkey(), counter, smr->rkey(), 0, 1,
                     2);
    ASSERT_TRUE(waitFor(2));
    EXPECT_EQ(read64(client, land + 8), 1u);  // busy
    EXPECT_EQ(read64(server, counter), 1u);
}

TEST_F(AtomicFixture, DuplicateAtomicsReplayNotReExecute)
{
    // Drop the first atomic *response*: the requester times out and
    // retransmits; the responder must answer from the replay cache, not
    // add twice.
    cluster.fabric().setLossModel(std::make_unique<net::MatchOnceLoss>(
        [](const net::Packet& p) {
            return p.op == net::Opcode::AtomicResponse;
        }));

    write64(server, counter, 10);
    cqp.postFetchAdd(land, cmr->lkey(), counter, smr->rkey(), 1, 1);
    ASSERT_TRUE(waitFor(1, Time::sec(30)));  // rides out one timeout
    EXPECT_EQ(read64(server, counter), 11u);  // exactly one add
    EXPECT_EQ(read64(client, land), 10u);
    EXPECT_GE(cqp.stats().timeouts, 1u);
}

TEST_F(AtomicFixture, AtomicAgainstOdpRegionFaults)
{
    const auto odp_counter = server.alloc(4096);
    auto& odp_mr = server.registerMemory(odp_counter, 4096,
                                         verbs::AccessFlags::odp());
    cqp.postFetchAdd(land, cmr->lkey(), odp_counter, odp_mr.rkey(), 7,
                     1);
    ASSERT_TRUE(waitFor(1));
    EXPECT_EQ(read64(server, odp_counter), 7u);
    EXPECT_EQ(server.driver().stats().faultsResolved, 1u);
    EXPECT_GE(cqp.stats().rnrNaksReceived, 1u);
}

TEST_F(AtomicFixture, AtomicBoundsViolationNaks)
{
    cqp.postFetchAdd(land, cmr->lkey(), counter + 4090, smr->rkey(), 1,
                     1);
    ASSERT_TRUE(waitFor(1));
    EXPECT_EQ(ccq.poll()[0].status, verbs::WcStatus::RemAccessErr);
}
