/**
 * @file
 * Tests of MTU segmentation: multi-packet READ/WRITE/SEND messages, their
 * PSN accounting, loss recovery mid-message, and ODP interaction.
 */

#include <gtest/gtest.h>

#include "capture/analysis.hh"
#include "capture/capture.hh"
#include "cluster/cluster.hh"
#include "net/loss.hh"

using namespace ibsim;

namespace {

std::vector<std::uint8_t>
pattern(std::size_t n)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>((i * 37 + 11) & 0xff);
    return v;
}

struct LargeFixture : public ::testing::Test
{
    Cluster cluster{rnic::DeviceProfile::connectX4(), 2, 29};
    capture::PacketCapture cap{cluster.fabric()};
    Node& client = cluster.node(0);
    Node& server = cluster.node(1);
    verbs::CompletionQueue& ccq = client.createCq();
    verbs::CompletionQueue& scq = server.createCq();
    verbs::QueuePair cqp;
    verbs::QueuePair sqp;
    std::uint64_t src = 0;
    std::uint64_t dst = 0;
    verbs::MemoryRegion* smr = nullptr;
    verbs::MemoryRegion* cmr = nullptr;
    static constexpr std::uint64_t bufBytes = 64 * 1024;

    void
    SetUp() override
    {
        auto [a, b] = cluster.connectRc(client, ccq, server, scq);
        cqp = a;
        sqp = b;
        src = server.alloc(bufBytes);
        dst = client.alloc(bufBytes);
        smr = &server.registerMemory(src, bufBytes,
                                     verbs::AccessFlags::pinned());
        cmr = &client.registerMemory(dst, bufBytes,
                                     verbs::AccessFlags::pinned());
    }
};

} // namespace

TEST_F(LargeFixture, LargeReadSegmentsAndReassembles)
{
    const auto data = pattern(20000);  // 5 MTUs
    server.memory().write(src, data);

    cqp.postRead(dst, cmr->lkey(), src, smr->rkey(), 20000, 1);
    ASSERT_TRUE(cluster.runUntil(
        [&] { return ccq.totalCompletions() == 1; }, Time::sec(1)));
    EXPECT_TRUE(ccq.poll()[0].ok());
    EXPECT_EQ(client.memory().read(dst, 20000), data);

    // One request, five response packets.
    const auto s = capture::summarize(cap);
    EXPECT_EQ(s.perOpcode.at(net::Opcode::ReadRequest), 1u);
    EXPECT_EQ(s.perOpcode.at(net::Opcode::ReadResponse), 5u);
}

TEST_F(LargeFixture, LargeWriteSegmentsWithOneAck)
{
    const auto data = pattern(10000);  // 3 MTUs
    client.memory().write(dst, data);

    cqp.postWrite(dst, cmr->lkey(), src, smr->rkey(), 10000, 1);
    ASSERT_TRUE(cluster.runUntil(
        [&] { return ccq.totalCompletions() == 1; }, Time::sec(1)));
    EXPECT_EQ(server.memory().read(src, 10000), data);

    const auto s = capture::summarize(cap);
    EXPECT_EQ(s.perOpcode.at(net::Opcode::WriteRequest), 3u);
    EXPECT_EQ(s.perOpcode.at(net::Opcode::Ack), 1u);  // coalesced
}

TEST_F(LargeFixture, LargeSendDeliversOneRqCompletion)
{
    const auto data = pattern(9000);
    client.memory().write(dst, data);
    sqp.postRecv(src, smr->lkey(), bufBytes, 7);
    cqp.postSend(dst, cmr->lkey(), 9000, 8);
    ASSERT_TRUE(cluster.runUntil(
        [&] { return scq.totalCompletions() == 1; }, Time::sec(1)));
    auto wcs = scq.poll();
    EXPECT_EQ(wcs[0].wrId, 7u);
    EXPECT_EQ(server.memory().read(src, 9000), data);
}

TEST_F(LargeFixture, PsnRangeReservedPerMessage)
{
    // A 3-segment WRITE then a 1-segment WRITE: the second message's PSN
    // starts after the first's range.
    cqp.postWrite(dst, cmr->lkey(), src, smr->rkey(), 10000, 1);
    cqp.postWrite(dst, cmr->lkey(), src + 16384, smr->rkey(), 64, 2);
    ASSERT_TRUE(cluster.runUntil(
        [&] { return ccq.totalCompletions() == 2; }, Time::sec(1)));

    std::uint32_t max_write_psn = 0;
    for (const auto& e : cap.entries()) {
        if (e.packet.op == net::Opcode::WriteRequest)
            max_write_psn = std::max(max_write_psn, e.packet.psn);
    }
    EXPECT_EQ(max_write_psn, 3u);  // psns 0,1,2 then 3
}

TEST_F(LargeFixture, MidMessageLossRecovers)
{
    // Lose the middle segment of a 5-MTU READ response: the requester's
    // in-order stream stalls and go-back-N re-fetches the whole READ.
    cluster.fabric().setLossModel(std::make_unique<net::MatchOnceLoss>(
        [](const net::Packet& p) {
            return p.op == net::Opcode::ReadResponse && p.segIndex == 2;
        }));

    const auto data = pattern(20000);
    server.memory().write(src, data);
    cqp.postRead(dst, cmr->lkey(), src, smr->rkey(), 20000, 1);
    ASSERT_TRUE(cluster.runUntil(
        [&] { return ccq.totalCompletions() == 1; }, Time::sec(30)));
    EXPECT_TRUE(ccq.poll()[0].ok());
    EXPECT_EQ(client.memory().read(dst, 20000), data);
    EXPECT_GE(cqp.stats().timeouts, 1u);
}

TEST_F(LargeFixture, LargeReadAgainstOdpFaultsEveryPage)
{
    const std::uint64_t odp_src = server.alloc(bufBytes);
    auto& odp_mr = server.registerMemory(odp_src, bufBytes,
                                         verbs::AccessFlags::odp());
    server.memory().write(odp_src, pattern(16384));

    cqp.postRead(dst, cmr->lkey(), odp_src, odp_mr.rkey(), 16384, 1);
    ASSERT_TRUE(cluster.runUntil(
        [&] { return ccq.totalCompletions() == 1; }, Time::sec(2)));
    EXPECT_TRUE(ccq.poll()[0].ok());
    // 16384 bytes = 4 pages, all faulted in one RNR round trip.
    EXPECT_EQ(server.driver().stats().faultsRaised, 4u);
    EXPECT_EQ(odp_mr.table().mappedPages(), 4u);
}

TEST_F(LargeFixture, InterleavedSizesKeepOrderAndData)
{
    const auto big = pattern(12288);
    const auto small = pattern(100);
    server.memory().write(src, big);
    server.memory().write(src + 32768, small);

    cqp.postRead(dst, cmr->lkey(), src, smr->rkey(), 12288, 1);
    cqp.postRead(dst + 16384, cmr->lkey(), src + 32768, smr->rkey(), 100,
                 2);
    cqp.postRead(dst + 20480, cmr->lkey(), src, smr->rkey(), 8192, 3);
    ASSERT_TRUE(cluster.runUntil(
        [&] { return ccq.totalCompletions() == 3; }, Time::sec(1)));
    EXPECT_EQ(client.memory().read(dst, 12288), big);
    EXPECT_EQ(client.memory().read(dst + 16384, 100), small);
    EXPECT_EQ(client.memory().read(dst + 20480, 8192),
              std::vector<std::uint8_t>(big.begin(), big.begin() + 8192));
}
