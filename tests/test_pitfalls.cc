/**
 * @file
 * Integration tests of the two pitfalls through the paper's own
 * micro-benchmark: packet damming (Sec. V) and packet flood (Sec. VI),
 * plus the recovery paths (PSN-sequence-error NAK, timeout) and the
 * timeout probe of Sec. IV-B.
 */

#include <gtest/gtest.h>

#include "capture/analysis.hh"
#include "pitfall/detectors.hh"
#include "pitfall/microbench.hh"
#include "pitfall/timeout_probe.hh"
#include "rnic/timeout.hh"

using namespace ibsim;
using namespace ibsim::pitfall;

namespace {

MicroBenchConfig
dammingConfig(Time interval, std::size_t num_ops = 2,
              OdpMode mode = OdpMode::BothSide)
{
    MicroBenchConfig config;
    config.numOps = num_ops;
    config.numQps = 1;
    config.size = 100;
    config.interval = interval;
    config.odpMode = mode;
    return config;
}

} // namespace

TEST(TimeoutProbe, MatchesTheoreticalDetectionTime)
{
    // Fig. 2: on a CX4 profile (c0 = 16), requesting C_ack = 1 clamps to
    // 16: T_tr = 268 ms, T_o = 2 * T_tr ~ 537 ms.
    TimeoutProbe probe(rnic::DeviceProfile::connectX4());
    auto r = probe.measure(/*cack=*/1);
    ASSERT_TRUE(r.aborted);
    EXPECT_EQ(r.effectiveCack, 16);
    EXPECT_NEAR(r.detectedTimeout.toMs(), 537.0, 5.0);

    // Above the floor the requested value takes over: C_ack = 18 gives
    // T_tr = 1.07 s, T_o ~ 2.15 s.
    auto r18 = probe.measure(/*cack=*/18);
    EXPECT_NEAR(r18.detectedTimeout.toSec(), 2.147, 0.05);
}

TEST(TimeoutProbe, ConnectX5HasLowerFloor)
{
    TimeoutProbe probe(rnic::DeviceProfile::connectX5());
    auto r = probe.measure(/*cack=*/1);
    ASSERT_TRUE(r.aborted);
    EXPECT_EQ(r.effectiveCack, 12);
    EXPECT_NEAR(r.detectedTimeout.toMs(), 33.6, 1.0);
}

TEST(PacketDamming, TwoReadsInsideWindowTimeOut)
{
    // Interval of 1 ms falls inside the ~4.5 ms both-side pending window:
    // the second READ's exchange is dammed and only the ~537 ms transport
    // timeout recovers it (Figs. 4 and 5).
    MicroBenchmark bench(dammingConfig(Time::ms(1)),
                         rnic::DeviceProfile::knl(), /*seed=*/7);
    auto r = bench.run();
    ASSERT_TRUE(r.completedAll);
    EXPECT_FALSE(r.qpError);  // no error completion: the silent pitfall
    EXPECT_GE(r.timeouts, 1u);
    EXPECT_GT(r.executionTime.toMs(), 400.0);
    EXPECT_LT(r.executionTime.toMs(), 700.0);

    // The damming detector sees it in the capture.
    auto events = detectDamming(*bench.packetCapture());
    ASSERT_GE(events.size(), 1u);
    EXPECT_GT(events[0].gap.toMs(), 400.0);
}

TEST(PacketDamming, WideIntervalEscapesTheWindow)
{
    // 6 ms is beyond the both-side window: no timeout, fast completion.
    MicroBenchmark bench(dammingConfig(Time::ms(6)),
                         rnic::DeviceProfile::knl(), /*seed=*/7);
    auto r = bench.run();
    ASSERT_TRUE(r.completedAll);
    EXPECT_EQ(r.timeouts, 0u);
    EXPECT_LT(r.executionTime.toMs(), 30.0);
}

TEST(PacketDamming, ClientSideWindowIsHalfMillisecond)
{
    // Fig. 6b: client-side ODP dams only up to ~0.5 ms intervals.
    MicroBenchmark inside(dammingConfig(Time::us(300), 2,
                                        OdpMode::ClientSide),
                          rnic::DeviceProfile::knl(), 3);
    auto rin = inside.run();
    EXPECT_GE(rin.timeouts, 1u);

    MicroBenchmark outside(dammingConfig(Time::us(900), 2,
                                         OdpMode::ClientSide),
                           rnic::DeviceProfile::knl(), 3);
    auto rout = outside.run();
    EXPECT_EQ(rout.timeouts, 0u);
    EXPECT_LT(rout.executionTime.toMs(), 30.0);
}

TEST(PacketDamming, ThirdReadOutsideWindowTriggersNakRecovery)
{
    // Fig. 8: with three READs at 2.5 ms spacing the second is dammed but
    // the third lands after the window, provoking a PSN-sequence-error
    // NAK and immediate go-back-N recovery -- no timeout.
    MicroBenchmark bench(dammingConfig(Time::ms(2.5), 3),
                         rnic::DeviceProfile::knl(), 11);
    auto r = bench.run();
    ASSERT_TRUE(r.completedAll);
    EXPECT_EQ(r.timeouts, 0u);
    EXPECT_GE(r.seqNaksReceived, 1u);
    EXPECT_LT(r.executionTime.toMs(), 30.0);
}

TEST(PacketDamming, AllReadsInsideWindowStillTimeOut)
{
    // Sec. V-B: the timeout survives more operations when every READ fits
    // into the first one's pending period.
    MicroBenchmark bench(dammingConfig(Time::us(800), 4),
                         rnic::DeviceProfile::knl(), 11);
    auto r = bench.run();
    ASSERT_TRUE(r.completedAll);
    EXPECT_GE(r.timeouts, 1u);
    EXPECT_GT(r.executionTime.toMs(), 400.0);
}

TEST(PacketDamming, DoesNotOccurOnConnectX6)
{
    // Sec. V-C: never observed on ConnectX-6.
    MicroBenchmark bench(dammingConfig(Time::ms(1)),
                         rnic::DeviceProfile::connectX6(), 7);
    auto r = bench.run();
    ASSERT_TRUE(r.completedAll);
    EXPECT_EQ(r.timeouts, 0u);
    EXPECT_LT(r.executionTime.toMs(), 30.0);
}

TEST(PacketDamming, NoOdpNoDamming)
{
    MicroBenchmark bench(dammingConfig(Time::ms(1), 2, OdpMode::None),
                         rnic::DeviceProfile::knl(), 7);
    auto r = bench.run();
    ASSERT_TRUE(r.completedAll);
    EXPECT_EQ(r.timeouts, 0u);
    EXPECT_LT(r.executionTime.toMs(), 10.0);
}

TEST(PacketFlood, ManyQpsDegradeClientSideOdp)
{
    // Sec. VI: 128 QPs x 1 op each on a shared page set, client-side ODP.
    MicroBenchConfig config;
    config.numOps = 128;
    config.numQps = 128;
    config.size = 32;
    config.interval = Time::us(8);
    config.odpMode = OdpMode::ClientSide;
    config.qpConfig = MicroBenchConfig::ucxDefaultConfig();
    // Pin the fault latency near the top of the common-case band so the
    // early registrants are deterministically one retransmission deep.
    auto profile = rnic::DeviceProfile::knl();
    profile.faultTiming.faultLatencyMin = Time::us(900);
    profile.faultTiming.faultLatencyMax = Time::us(901);
    MicroBenchmark bench(config, profile, 5);
    auto r = bench.run();
    ASSERT_TRUE(r.completedAll);
    EXPECT_GT(r.updateFailures, 0u);
    EXPECT_GT(r.retransmissions, 100u);

    // At this small scale the longest-stuck QP retransmits only a
    // handful of times before the slow refresh lands (paper-scale floods
    // reach hundreds, see bench_fig9_flood).
    auto events = detectFlood(*bench.packetCapture(),
                              FloodDetectorConfig{/*min rexmits=*/4});
    EXPECT_GE(events.size(), 1u);
}

TEST(PacketFlood, FewQpsStayWithinCommonOverheads)
{
    // Below the ~10-QP update fanout no update failure occurs; execution
    // stays within the common page fault band. (Enough operations that
    // the posting span outlasts any damming episode, as in the paper's
    // Fig. 9 runs: a clean later request always rescues via seq NAK.)
    MicroBenchConfig config;
    config.numOps = 512;
    config.numQps = 8;
    config.size = 32;
    config.interval = Time::us(8);
    config.odpMode = OdpMode::ClientSide;
    config.qpConfig = MicroBenchConfig::ucxDefaultConfig();
    MicroBenchmark bench(config, rnic::DeviceProfile::knl(), 5);
    auto r = bench.run();
    ASSERT_TRUE(r.completedAll);
    EXPECT_EQ(r.updateFailures, 0u);
    EXPECT_LT(r.executionTime.toMs(), 10.0);
}

TEST(PacketFlood, ServerSideOdpDoesNotFlood)
{
    // Sec. VI-C: the server is stateless (RNR NAK only), so no flood.
    MicroBenchConfig config;
    config.numOps = 128;
    config.numQps = 128;
    config.size = 32;
    config.interval = Time::us(8);
    config.odpMode = OdpMode::ServerSide;
    config.qpConfig = MicroBenchConfig::ucxDefaultConfig();
    MicroBenchmark bench(config, rnic::DeviceProfile::knl(), 5);
    auto r = bench.run();
    ASSERT_TRUE(r.completedAll);
    EXPECT_EQ(r.updateFailures, 0u);
    EXPECT_EQ(r.responsesDiscardedStale, 0u);
}
