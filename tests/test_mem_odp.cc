/**
 * @file
 * Unit tests of the host memory substrate and the ODP engine: address
 * spaces, translation tables, the driver's fault lifecycle, and the
 * page-status board's update-failure machinery.
 */

#include <gtest/gtest.h>

#include "mem/address_space.hh"
#include "odp/odp_driver.hh"
#include "odp/page_status_board.hh"
#include "odp/translation_table.hh"

using namespace ibsim;
using namespace ibsim::mem;
using namespace ibsim::odp;

TEST(AddressSpaceTest, AllocIsPageAlignedAndDisjoint)
{
    AddressSpace as;
    const auto a = as.alloc(100);
    const auto b = as.alloc(5000);
    const auto c = as.alloc(1);
    EXPECT_EQ(a % pageSize, 0u);
    EXPECT_EQ(b % pageSize, 0u);
    EXPECT_EQ(b - a, pageSize);          // 100 B rounds to one page
    EXPECT_EQ(c - b, 2 * pageSize);      // 5000 B rounds to two pages
    EXPECT_EQ(as.reservedBytes(), 4 * pageSize);
}

TEST(AddressSpaceTest, PresenceFollowsTouchAndRelease)
{
    AddressSpace as;
    const auto base = as.alloc(3 * pageSize);
    EXPECT_FALSE(as.present(base));
    as.touch(base + pageSize, 2 * pageSize);
    EXPECT_FALSE(as.present(base));
    EXPECT_TRUE(as.present(base + pageSize));
    EXPECT_TRUE(as.present(base + 2 * pageSize));
    EXPECT_EQ(as.presentPages(), 2u);

    as.releasePage(base + pageSize);
    EXPECT_FALSE(as.present(base + pageSize));
    EXPECT_EQ(as.presentPages(), 1u);
}

TEST(AddressSpaceTest, WriteReadRoundTripAcrossPages)
{
    AddressSpace as;
    const auto base = as.alloc(2 * pageSize);
    std::vector<std::uint8_t> data(pageSize, 0);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i);

    // Straddle the page boundary.
    const auto addr = base + pageSize / 2;
    as.write(addr, data);
    EXPECT_EQ(as.read(addr, data.size()), data);
    EXPECT_TRUE(as.present(base));
    EXPECT_TRUE(as.present(base + pageSize));
}

TEST(AddressSpaceTest, ReadOfAbsentPagesIsZeroAndNonFaulting)
{
    AddressSpace as;
    const auto base = as.alloc(pageSize);
    const auto out = as.read(base, 16);
    EXPECT_EQ(out, std::vector<std::uint8_t>(16, 0));
    EXPECT_FALSE(as.present(base));  // a peek, not a touch
}

TEST(AddressSpaceTest, TouchEndpointInclusive)
{
    AddressSpace as;
    const auto base = as.alloc(2 * pageSize);
    // A range ending exactly on the boundary must not touch the next page.
    as.touch(base, pageSize);
    EXPECT_TRUE(as.present(base));
    EXPECT_FALSE(as.present(base + pageSize));
}

TEST(TranslationTableTest, PinnedTableIsAlwaysMapped)
{
    TranslationTable t(/*odp=*/false);
    EXPECT_TRUE(t.mappedPage(0x12345));
    EXPECT_TRUE(t.mappedRange(0x10000, 1 << 20));
    EXPECT_EQ(t.firstUnmapped(0x10000, 1 << 20), 0u);
}

TEST(TranslationTableTest, OdpTableTracksPages)
{
    TranslationTable t(/*odp=*/true);
    const std::uint64_t base = 0x10000;
    EXPECT_FALSE(t.mappedPage(base));
    EXPECT_EQ(t.firstUnmapped(base, 100), base);

    t.mapPage(base);
    EXPECT_TRUE(t.mappedPage(base + 100));  // same page
    EXPECT_TRUE(t.mappedRange(base, 100));
    // Next page still unmapped.
    EXPECT_EQ(t.firstUnmapped(base, 2 * pageSize), base + pageSize);

    t.mapRange(base, 3 * pageSize);
    EXPECT_EQ(t.mappedPages(), 3u);
    EXPECT_TRUE(t.invalidatePage(base + pageSize));
    EXPECT_FALSE(t.invalidatePage(base + pageSize));  // already gone
    EXPECT_EQ(t.firstUnmapped(base, 3 * pageSize), base + pageSize);
}

namespace {

struct DriverFixture : public ::testing::Test
{
    EventQueue events;
    Rng rng{1};
    AddressSpace memory;
    FaultTiming timing;
    TranslationTable table{/*odp=*/true};

    DriverFixture()
    {
        timing.faultLatencyMin = Time::us(500);
        timing.faultLatencyMax = Time::us(501);
    }
};

} // namespace

TEST_F(DriverFixture, FaultResolvesAfterLatency)
{
    OdpDriver driver(events, rng, memory, timing);
    const std::uint64_t va = 0x20000;
    bool resolved = false;
    driver.raiseFault(table, va, [&] { resolved = true; });
    EXPECT_TRUE(driver.faultInFlight(table, va));
    events.run();
    EXPECT_TRUE(resolved);
    EXPECT_TRUE(table.mappedPage(va));
    EXPECT_TRUE(memory.present(va));
    EXPECT_FALSE(driver.faultInFlight(table, va));
    EXPECT_NEAR(events.now().toUs(), 500.0, 2.0);
    EXPECT_EQ(driver.stats().faultsRaised, 1u);
    EXPECT_EQ(driver.stats().faultsResolved, 1u);
}

TEST_F(DriverFixture, ConcurrentFaultsOnOnePageCoalesce)
{
    OdpDriver driver(events, rng, memory, timing);
    const std::uint64_t va = 0x20000;
    int callbacks = 0;
    driver.raiseFault(table, va, [&] { ++callbacks; });
    driver.raiseFault(table, va + 8, [&] { ++callbacks; });  // same page
    events.run();
    EXPECT_EQ(callbacks, 2);
    EXPECT_EQ(driver.stats().faultsRaised, 1u);
    EXPECT_EQ(driver.stats().faultsCoalesced, 1u);
}

TEST_F(DriverFixture, ResolutionObserverFires)
{
    OdpDriver driver(events, rng, memory, timing);
    std::uint64_t observed_page = 0;
    driver.setResolutionObserver(
        [&](TranslationTable&, std::uint64_t page, std::uint32_t) {
            observed_page = page;
        });
    driver.raiseFault(table, 5 * pageSize);
    events.run();
    EXPECT_EQ(observed_page, 5u);
}

TEST_F(DriverFixture, CongestionProbeStretchesLatency)
{
    OdpDriver driver(events, rng, memory, timing);
    driver.setCongestionProbe([] { return 4.0; });
    driver.raiseFault(table, 0x20000);
    events.run();
    EXPECT_NEAR(events.now().toUs(), 2000.0, 8.0);
}

TEST_F(DriverFixture, InvalidateReclaimsHostPageAndFlushesTable)
{
    OdpDriver driver(events, rng, memory, timing);
    const std::uint64_t va = 0x20000;
    driver.raiseFault(table, va);
    events.run();
    ASSERT_TRUE(table.mappedPage(va));

    driver.invalidate(table, va);
    events.run();
    EXPECT_FALSE(table.mappedPage(va));
    EXPECT_FALSE(memory.present(va));
    EXPECT_EQ(driver.stats().invalidations, 1u);
}

TEST_F(DriverFixture, PrefetchMapsWithoutFaults)
{
    OdpDriver driver(events, rng, memory, timing);
    driver.prefetch(table, 0x20000, 3 * pageSize);
    events.run();
    EXPECT_EQ(table.mappedPages(), 3u);
    EXPECT_EQ(driver.stats().faultsRaised, 0u);
    EXPECT_EQ(driver.stats().prefetchedPages, 3u);
    // 3 pages at prefetchLatencyPerPage each.
    EXPECT_NEAR(events.now().toUs(),
                3 * timing.prefetchLatencyPerPage.toUs(), 1.0);
}

namespace {

struct BoardFixture : public ::testing::Test
{
    EventQueue events;
    Rng rng{1};
    FloodQuirkConfig config;
    TranslationTable table{/*odp=*/true};

    BoardFixture()
    {
        config.updateFanout = 4;
        config.staleThreshold = Time::us(500);
        config.slowUpdateBase = Time::ms(1);
        config.slowServiceBase = Time::us(100);
    }
};

} // namespace

TEST_F(BoardFixture, SmallCohortGetsPromptUpdates)
{
    PageStatusBoard board(events, rng, config);
    for (std::uint32_t qpn = 0; qpn < 4; ++qpn)
        board.registerWaiter(&table, 7, qpn);
    events.advance(Time::ms(2));  // everyone is "old" now
    board.onPageMapped(table, 7);
    EXPECT_EQ(board.stats().promptUpdates, 4u);
    EXPECT_EQ(board.stats().updateFailures, 0u);
    for (std::uint32_t qpn = 0; qpn < 4; ++qpn)
        EXPECT_TRUE(board.fresh(&table, 7, qpn));
}

TEST_F(BoardFixture, StaleWaitersOverFanoutFail)
{
    PageStatusBoard board(events, rng, config);
    // Six old waiters (stale) plus two fresh ones.
    for (std::uint32_t qpn = 0; qpn < 6; ++qpn)
        board.registerWaiter(&table, 7, qpn);
    events.advance(Time::ms(1));
    for (std::uint32_t qpn = 6; qpn < 8; ++qpn)
        board.registerWaiter(&table, 7, qpn);

    board.onPageMapped(table, 7);
    EXPECT_EQ(board.stats().updateFailures, 6u);
    EXPECT_EQ(board.stats().promptUpdates, 2u);
    EXPECT_EQ(board.staleCount(), 6u);
    EXPECT_FALSE(board.fresh(&table, 7, 0));
    EXPECT_TRUE(board.fresh(&table, 7, 6));

    // The slow path eventually refreshes everyone.
    events.run();
    EXPECT_EQ(board.staleCount(), 0u);
    EXPECT_EQ(board.stats().slowRefreshes, 6u);
    EXPECT_TRUE(board.fresh(&table, 7, 0));
}

TEST_F(BoardFixture, QuirkDisabledNeverFails)
{
    config.enabled = false;
    PageStatusBoard board(events, rng, config);
    for (std::uint32_t qpn = 0; qpn < 20; ++qpn)
        board.registerWaiter(&table, 7, qpn);
    events.advance(Time::ms(2));
    board.onPageMapped(table, 7);
    EXPECT_EQ(board.stats().updateFailures, 0u);
    EXPECT_EQ(board.stats().promptUpdates, 20u);
}

TEST_F(BoardFixture, RegistrationIsIdempotent)
{
    PageStatusBoard board(events, rng, config);
    board.registerWaiter(&table, 3, 42);
    events.advance(Time::ms(1));
    board.registerWaiter(&table, 3, 42);  // keeps the original timestamp
    EXPECT_EQ(board.waiterCount(), 1u);
    EXPECT_EQ(board.stats().waitersRegistered, 1u);
}

TEST_F(BoardFixture, UnregisterRemovesStaleWaiter)
{
    PageStatusBoard board(events, rng, config);
    for (std::uint32_t qpn = 0; qpn < 6; ++qpn)
        board.registerWaiter(&table, 7, qpn);
    events.advance(Time::ms(1));
    board.onPageMapped(table, 7);
    ASSERT_EQ(board.staleCount(), 6u);

    board.unregisterWaiter(&table, 7, 3);
    EXPECT_EQ(board.staleCount(), 5u);
    EXPECT_TRUE(board.fresh(&table, 7, 3));
    events.run();
    EXPECT_EQ(board.staleCount(), 0u);
}

TEST_F(BoardFixture, LifoServiceRefreshesNewestFailureFirst)
{
    PageStatusBoard board(events, rng, config);
    // Two separate pages, each with an over-fanout stale cohort; page 9's
    // cohort fails later than page 7's.
    for (std::uint32_t qpn = 0; qpn < 5; ++qpn)
        board.registerWaiter(&table, 7, qpn);
    for (std::uint32_t qpn = 10; qpn < 15; ++qpn)
        board.registerWaiter(&table, 9, qpn);
    events.advance(Time::ms(1));
    board.onPageMapped(table, 7);
    board.onPageMapped(table, 9);

    // Serve exactly one refresh: it must come from page 9's cohort (the
    // most recent failures sit at the back of the LIFO queue).
    events.runUntil(
        [&] { return board.stats().slowRefreshes == 1; });
    bool page9_served = false;
    for (std::uint32_t qpn = 10; qpn < 15; ++qpn)
        page9_served |= board.fresh(&table, 9, qpn);
    EXPECT_TRUE(page9_served);
}
