/**
 * @file
 * Deterministic unit suite for the ODP per-page state machine
 * (DESIGN.md section 14): every legal transition including
 * FaultingInvalidated, the MMU-notifier two-phase invalidation windows,
 * huge-page mapping, prefetch policies, the mechanistic flood-quirk
 * trigger, and the flag-flip regressions for the three historical races
 * (stale invalidate clobber, prefetch double-population, slow-queue
 * dead keys).
 */

#include <gtest/gtest.h>

#include "mem/address_space.hh"
#include "odp/odp_driver.hh"
#include "odp/page_status_board.hh"
#include "odp/page_table.hh"
#include "odp/translation_table.hh"

using namespace ibsim;
using namespace ibsim::mem;
using namespace ibsim::odp;

TEST(OdpPageTable, LegalEdgeTable)
{
    using S = PageState;
    EXPECT_TRUE(pageTransitionLegal(S::NotPresent, S::Faulting));
    EXPECT_TRUE(pageTransitionLegal(S::NotPresent, S::Invalidating));
    EXPECT_FALSE(pageTransitionLegal(S::NotPresent, S::Present));
    EXPECT_FALSE(pageTransitionLegal(S::NotPresent,
                                     S::FaultingInvalidated));

    EXPECT_TRUE(pageTransitionLegal(S::Faulting, S::Present));
    EXPECT_TRUE(pageTransitionLegal(S::Faulting, S::FaultingInvalidated));
    EXPECT_FALSE(pageTransitionLegal(S::Faulting, S::Invalidating));
    EXPECT_FALSE(pageTransitionLegal(S::Faulting, S::NotPresent));

    EXPECT_TRUE(pageTransitionLegal(S::Present, S::Invalidating));
    EXPECT_FALSE(pageTransitionLegal(S::Present, S::Faulting));
    EXPECT_FALSE(pageTransitionLegal(S::Present, S::FaultingInvalidated));

    EXPECT_TRUE(pageTransitionLegal(S::Invalidating, S::NotPresent));
    EXPECT_TRUE(pageTransitionLegal(S::Invalidating, S::Faulting));
    EXPECT_FALSE(pageTransitionLegal(S::Invalidating, S::Present));

    EXPECT_TRUE(pageTransitionLegal(S::FaultingInvalidated, S::Faulting));
    EXPECT_FALSE(pageTransitionLegal(S::FaultingInvalidated, S::Present));
    EXPECT_FALSE(pageTransitionLegal(S::FaultingInvalidated,
                                     S::NotPresent));

    EXPECT_STREQ(pageStateName(S::FaultingInvalidated),
                 "FaultingInvalidated");
}

namespace {

/** Tight latency band so resolution times are predictable. */
struct PageMachineFixture : public ::testing::Test
{
    EventQueue events;
    Rng rng{1};
    AddressSpace memory;
    FaultTiming timing;
    TranslationTable table{/*odp=*/true};

    PageMachineFixture()
    {
        timing.faultLatencyMin = Time::us(500);
        timing.faultLatencyMax = Time::us(501);
    }
};

} // namespace

TEST_F(PageMachineFixture, FaultWalksNotPresentFaultingPresent)
{
    OdpDriver driver(events, rng, memory, timing);
    const std::uint64_t va = 7 * pageSize;
    EXPECT_EQ(driver.pageState(table, va), PageState::NotPresent);

    driver.raiseFault(table, va);
    EXPECT_EQ(driver.pageState(table, va), PageState::Faulting);
    EXPECT_TRUE(driver.pageTransient(table, va));

    events.run();
    EXPECT_EQ(driver.pageState(table, va), PageState::Present);
    EXPECT_FALSE(driver.pageTransient(table, va));
    EXPECT_TRUE(table.mappedPage(va));
    EXPECT_GE(driver.pageTable().stats().transitions, 2u);
    EXPECT_EQ(driver.pageTable().stats().illegalTransitionsBlocked, 0u);
}

TEST_F(PageMachineFixture, InvalidateStartFlushesTranslationImmediately)
{
    OdpDriver driver(events, rng, memory, timing);
    const std::uint64_t va = 7 * pageSize;
    driver.raiseFault(table, va);
    events.run();
    ASSERT_TRUE(table.mappedPage(va));
    ASSERT_TRUE(memory.present(va));

    // invalidate_start: the RNIC translation dies now; the host frame
    // survives until invalidate_end closes the window.
    driver.invalidate(table, va);
    EXPECT_FALSE(table.mappedPage(va));
    EXPECT_TRUE(memory.present(va));
    EXPECT_EQ(driver.pageState(table, va), PageState::Invalidating);

    events.run();
    EXPECT_FALSE(memory.present(va));
    EXPECT_EQ(driver.pageState(table, va), PageState::NotPresent);
    EXPECT_EQ(driver.stats().notifierWindows, 1u);
}

TEST_F(PageMachineFixture, InvalidateOfUnmappedPageStillOpensWindow)
{
    OdpDriver driver(events, rng, memory, timing);
    const std::uint64_t va = 3 * pageSize;
    driver.invalidate(table, va);
    // NotPresent -> Invalidating: concurrent faults must serialize
    // behind the window even though there was nothing to unmap.
    EXPECT_EQ(driver.pageState(table, va), PageState::Invalidating);
    events.run();
    EXPECT_EQ(driver.pageState(table, va), PageState::NotPresent);
    EXPECT_EQ(driver.stats().notifierWindows, 1u);
}

TEST_F(PageMachineFixture, InvalidationMidFaultDoomsAndRetries)
{
    OdpDriver driver(events, rng, memory, timing);
    const std::uint64_t va = 7 * pageSize;
    int callbacks = 0;
    driver.raiseFault(table, va, [&] { ++callbacks; });

    // invalidate_start lands mid-fault at 100us: the in-flight
    // resolution (due ~500us) is doomed and must not install a mapping.
    events.schedule(Time::us(100), [&] {
        driver.invalidate(table, va);
        EXPECT_EQ(driver.pageState(table, va),
                  PageState::FaultingInvalidated);
    });
    // At 510us — past the original resolveAt — the doomed resolution
    // must have been discarded: still no mapping, callback unfired.
    events.schedule(Time::us(510), [&] {
        EXPECT_FALSE(table.mappedPage(va));
        EXPECT_EQ(callbacks, 0);
        EXPECT_EQ(driver.pageState(table, va), PageState::Faulting);
    });

    events.run();
    // The retry (130us window end + ~500us draw) resolved for real.
    EXPECT_EQ(callbacks, 1);
    EXPECT_TRUE(table.mappedPage(va));
    EXPECT_EQ(driver.stats().faultRetries, 1u);
    EXPECT_EQ(driver.stats().faultsResolved, 1u);
    EXPECT_NEAR(events.now().toUs(), 630.0, 5.0);
}

TEST_F(PageMachineFixture, FaultDuringWindowQueuesBehindIt)
{
    OdpDriver driver(events, rng, memory, timing);
    const std::uint64_t va = 7 * pageSize;
    driver.raiseFault(table, va);
    events.run();
    ASSERT_TRUE(table.mappedPage(va));

    int callbacks = 0;
    const Time start = events.now();
    driver.invalidate(table, va);
    // A fault inside the notifier window queues behind invalidate_end
    // (Invalidating -> Faulting at window close), like the kernel's
    // mmu_interval_read_retry loop.
    const Time eta = driver.raiseFault(table, va, [&] { ++callbacks; });
    EXPECT_TRUE(driver.faultInFlight(table, va));
    EXPECT_GE(eta - start, Time::us(30) + Time::us(500));

    events.run();
    EXPECT_EQ(callbacks, 1);
    EXPECT_TRUE(table.mappedPage(va));
    EXPECT_EQ(driver.stats().faultsQueuedBehindWindow, 1u);
    EXPECT_EQ(driver.stats().faultsResolved, 2u);
    EXPECT_GE(events.now() - start, Time::us(530));
}

TEST_F(PageMachineFixture, SecondInvalidationExtendsOpenWindow)
{
    OdpDriver driver(events, rng, memory, timing);
    const std::uint64_t va = 7 * pageSize;
    driver.raiseFault(table, va);
    events.run();

    driver.invalidate(table, va);              // window: now .. +30us
    events.schedule(events.now() + Time::us(10), [&] {
        driver.invalidate(table, va);          // extends to +40us
    });
    // At +35us the original end has passed but the extension holds the
    // host frame.
    events.schedule(events.now() + Time::us(35), [&] {
        EXPECT_TRUE(memory.present(va));
        EXPECT_EQ(driver.pageState(table, va), PageState::Invalidating);
    });
    events.run();
    EXPECT_FALSE(memory.present(va));
    EXPECT_EQ(driver.stats().invalidationsCoalesced, 1u);
    EXPECT_EQ(driver.stats().notifierWindows, 1u);
}

// Satellite regression: invalidate() used to schedule a blind unmap with
// no knowledge of in-flight faults, so an invalidation scheduled before
// a fault resolved fired after the resolution and silently clobbered the
// freshly mapped page. Fixed-seed interleaving, flag-flip differential.
TEST_F(PageMachineFixture, StaleInvalidateClobberFixedByStateMachine)
{
    for (const bool machine : {false, true}) {
        EventQueue ev;
        Rng r{42};
        AddressSpace mem;
        TranslationTable t{/*odp=*/true};
        FaultTiming cfg = timing;
        cfg.pageStateMachine = machine;
        OdpDriver driver(ev, r, mem, cfg);

        const std::uint64_t va = 7 * pageSize;
        int callbacks = 0;
        driver.raiseFault(t, va, [&] { ++callbacks; }); // resolves ~500us
        ev.schedule(Time::us(490), [&] {
            driver.invalidate(t, va); // lands at 520us (legacy unmap)
        });
        ev.run();

        EXPECT_EQ(callbacks, 1) << "machine=" << machine;
        if (!machine) {
            // Legacy: the resolution at ~500us mapped the page, then the
            // stale unmap at 520us clobbered it.
            EXPECT_FALSE(t.mappedPage(va));
            EXPECT_FALSE(mem.present(va));
            EXPECT_EQ(driver.stats().faultRetries, 0u);
        } else {
            // State machine: invalidate_start dooms the fault, the retry
            // resolves after the window, and the mapping survives.
            EXPECT_TRUE(t.mappedPage(va));
            EXPECT_TRUE(mem.present(va));
            EXPECT_EQ(driver.stats().faultRetries, 1u);
            EXPECT_EQ(driver.pageState(t, va), PageState::Present);
        }
    }
}

// Satellite regression: the prefetch sweep re-checked mappedPage but not
// the fault table, so a prefetch firing before a concurrent fault's
// resolution populated the page and then resolve() populated it again —
// both counters claimed the page and the observer fired twice.
TEST_F(PageMachineFixture, PrefetchFaultDoublePopulationFixed)
{
    for (const bool machine : {false, true}) {
        EventQueue ev;
        Rng r{42};
        AddressSpace mem;
        TranslationTable t{/*odp=*/true};
        FaultTiming cfg = timing;
        cfg.pageStateMachine = machine;
        OdpDriver driver(ev, r, mem, cfg);

        int observed = 0;
        driver.setResolutionObserver(
            [&](TranslationTable&, std::uint64_t, std::uint32_t) {
                ++observed;
            });

        const std::uint64_t va = 7 * pageSize;
        driver.raiseFault(t, va);       // resolves ~500us
        driver.prefetch(t, va, 1);      // sweep fires at 15us, mid-fault
        ev.run();

        EXPECT_TRUE(t.mappedPage(va));
        EXPECT_EQ(driver.stats().faultsResolved, 1u);
        if (!machine) {
            // One page, two claimed resolutions: the historical drift.
            EXPECT_EQ(driver.stats().prefetchedPages, 1u);
            EXPECT_EQ(observed, 2);
        } else {
            EXPECT_EQ(driver.stats().prefetchedPages, 0u);
            EXPECT_EQ(driver.stats().prefetchSkippedBusy, 1u);
            EXPECT_EQ(observed, 1);
        }
    }
}

TEST_F(PageMachineFixture, PrefetchSkipsOpenWindows)
{
    OdpDriver driver(events, rng, memory, timing);
    const std::uint64_t va = 7 * pageSize;
    driver.raiseFault(table, va);
    events.run();

    driver.invalidate(table, va);
    ASSERT_EQ(driver.pageState(table, va), PageState::Invalidating);
    // An advise inside the window must not resurrect the mapping behind
    // invalidate_start's back.
    driver.prefetch(table, va, 1);
    events.run();
    EXPECT_FALSE(table.mappedPage(va));
    EXPECT_EQ(driver.stats().prefetchedPages, 0u);
    EXPECT_EQ(driver.stats().prefetchSkippedBusy, 1u);
}

TEST_F(PageMachineFixture, HugePageFaultMapsAlignedBlock)
{
    timing.hugePages = true;
    timing.hugePageSpan = 4;
    OdpDriver driver(events, rng, memory, timing);

    driver.raiseFault(table, 5 * pageSize);
    events.run();
    // One fault installed the whole aligned block [4, 8).
    for (std::uint64_t p = 4; p < 8; ++p) {
        EXPECT_TRUE(table.mappedPage(p * pageSize)) << p;
        EXPECT_TRUE(memory.present(p * pageSize)) << p;
    }
    EXPECT_FALSE(table.mappedPage(3 * pageSize));
    EXPECT_FALSE(table.mappedPage(8 * pageSize));
    EXPECT_EQ(driver.stats().hugeMappings, 1u);
    EXPECT_EQ(driver.stats().hugePagesMapped, 3u);
    EXPECT_EQ(driver.stats().faultsResolved, 1u);
}

TEST_F(PageMachineFixture, HugePageInvalidateSplitsBlock)
{
    timing.hugePages = true;
    timing.hugePageSpan = 4;
    OdpDriver driver(events, rng, memory, timing);

    driver.raiseFault(table, 5 * pageSize);
    events.run();
    ASSERT_EQ(table.mappedPages(), 4u);

    // Reclaiming any page of the block unmaps the whole aligned block.
    driver.invalidate(table, 6 * pageSize);
    for (std::uint64_t p = 4; p < 8; ++p)
        EXPECT_FALSE(table.mappedPage(p * pageSize)) << p;
    events.run();
    for (std::uint64_t p = 4; p < 8; ++p)
        EXPECT_FALSE(memory.present(p * pageSize)) << p;
    EXPECT_EQ(driver.stats().notifierWindows, 4u);
}

TEST_F(PageMachineFixture, FixedWidthPolicyPrefetchesAhead)
{
    timing.prefetchPolicy = PrefetchPolicy::FixedWidth;
    timing.prefetchWidth = 4;
    OdpDriver driver(events, rng, memory, timing);

    driver.raiseFault(table, 10 * pageSize);
    events.run();
    // The fault mapped page 10; the policy pre-resolved 11..14.
    for (std::uint64_t p = 10; p <= 14; ++p)
        EXPECT_TRUE(table.mappedPage(p * pageSize)) << p;
    EXPECT_FALSE(table.mappedPage(15 * pageSize));
    EXPECT_EQ(driver.stats().autoPrefetches, 1u);
    EXPECT_EQ(driver.stats().prefetchedPages, 4u);
    EXPECT_EQ(driver.stats().faultsResolved, 1u);
}

TEST_F(PageMachineFixture, SequentialDetectNeedsConsecutiveFaults)
{
    timing.prefetchPolicy = PrefetchPolicy::SequentialDetect;
    timing.prefetchWidth = 4;
    OdpDriver driver(events, rng, memory, timing);

    driver.raiseFault(table, 10 * pageSize);
    events.run();
    // A single fault is not a stream: nothing prefetched.
    EXPECT_EQ(driver.stats().autoPrefetches, 0u);
    EXPECT_FALSE(table.mappedPage(11 * pageSize));

    driver.raiseFault(table, 11 * pageSize);
    events.run();
    // Two consecutive faulting pages: the detector arms and fetches
    // 12..15 ahead.
    EXPECT_EQ(driver.stats().autoPrefetches, 1u);
    for (std::uint64_t p = 12; p <= 15; ++p)
        EXPECT_TRUE(table.mappedPage(p * pageSize)) << p;

    driver.raiseFault(table, 40 * pageSize);
    events.run();
    // A non-consecutive fault resets the streak.
    EXPECT_EQ(driver.stats().autoPrefetches, 1u);
    EXPECT_FALSE(table.mappedPage(41 * pageSize));
}

TEST_F(PageMachineFixture, WindowContentionReachesObserver)
{
    OdpDriver driver(events, rng, memory, timing);
    std::uint32_t contention = 99;
    driver.setResolutionObserver(
        [&](TranslationTable&, std::uint64_t page, std::uint32_t c) {
            if (page == 5)
                contention = c;
        });

    table.mapPage(9 * pageSize);
    driver.raiseFault(table, 5 * pageSize);
    // A notifier window opens elsewhere on the same table mid-fault: the
    // resolution must report one overlapped window to the status board.
    events.schedule(Time::us(100), [&] {
        driver.invalidate(table, 9 * pageSize);
    });
    events.run();
    EXPECT_EQ(contention, 1u);
}

// ---------------------------------------------------------------------
// Status board: mechanistic flood-quirk trigger + the slow-queue
// dead-key satellite fix.
// ---------------------------------------------------------------------

TEST(OdpPageTable, NotifierContentionTriggersUpdateFailure)
{
    EventQueue events;
    Rng rng{7};
    FloodQuirkConfig cfg;
    cfg.notifierContention = true;
    cfg.contentionThreshold = 1;
    cfg.staleThreshold = Time::us(10);
    PageStatusBoard board(events, rng, cfg);
    TranslationTable table{/*odp=*/true};

    // One waiter per page: far below the fanout knee, so only the
    // contention signal can fail the update.
    board.registerWaiter(&table, 3, 11);
    board.registerWaiter(&table, 4, 12);
    events.schedule(Time::us(100), [&] {
        board.onPageMapped(table, 3, /*contention=*/0);
        board.onPageMapped(table, 4, /*contention=*/1);
    });
    events.schedule(Time::us(150), [&] {
        EXPECT_EQ(board.stats().promptUpdates, 1u);
        EXPECT_EQ(board.stats().updateFailures, 1u);
        EXPECT_EQ(board.staleCount(), 1u);
        EXPECT_FALSE(board.fresh(&table, 4, 12));
        EXPECT_TRUE(board.fresh(&table, 3, 11));
    });
    events.run();
}

// Satellite regression: a waiter that went stale twice was queued twice,
// unregisterWaiter() purged only the first copy, and serviceFired()
// burned a rate-limited slot on the dead key — staleCount over-reported.
TEST(OdpPageTable, SlowQueueDeadKeyAccountingFlagFlip)
{
    for (const bool bug : {true, false}) {
        EventQueue events;
        Rng rng{7};
        FloodQuirkConfig cfg;
        cfg.updateFanout = 0; // every resolution is over-fanout
        cfg.staleThreshold = Time::us(10);
        cfg.staleQueueDeadKeyBug = bug;
        PageStatusBoard board(events, rng, cfg);
        TranslationTable table{/*odp=*/true};

        board.registerWaiter(&table, 3, 11);
        // Two resolutions after the waiter went stale: the pre-fix board
        // queues it twice.
        events.schedule(Time::us(100),
                        [&] { board.onPageMapped(table, 3); });
        events.schedule(Time::us(200),
                        [&] { board.onPageMapped(table, 3); });
        // The QP is flushed before the slow service fires.
        events.schedule(Time::us(300),
                        [&] { board.unregisterWaiter(&table, 3, 11); });
        events.schedule(Time::us(400), [&] {
            if (bug) {
                EXPECT_EQ(board.staleCount(), 1u); // dead key left behind
            } else {
                EXPECT_EQ(board.staleCount(), 0u);
            }
            EXPECT_EQ(board.waiterCount(), 0u);
        });
        events.run();

        if (bug) {
            EXPECT_EQ(board.stats().updateFailures, 2u);
            // The dead key burned a service slot.
            EXPECT_EQ(board.stats().slowRefreshes, 1u);
        } else {
            EXPECT_EQ(board.stats().updateFailures, 1u);
            EXPECT_EQ(board.stats().slowRefreshes, 0u);
        }
        EXPECT_EQ(board.staleCount(), 0u);
    }
}
