#include "pitfall/workarounds.hh"

namespace ibsim {
namespace pitfall {

verbs::QpConfig
withMinimalRnrDelay(verbs::QpConfig config)
{
    // The smallest non-zero IBA RNR timer encoding is 0.01 ms.
    config.minRnrNakDelay = Time::ms(0.01);
    return config;
}

DummyCommTimer::DummyCommTimer(Cluster& cluster, verbs::QueuePair qp,
                               std::uint64_t laddr, std::uint32_t lkey,
                               std::uint64_t raddr, std::uint32_t rkey,
                               Time period)
    : cluster_(cluster), qp_(qp), laddr_(laddr), lkey_(lkey),
      raddr_(raddr), rkey_(rkey), period_(period)
{
}

DummyCommTimer::~DummyCommTimer()
{
    stop();
}

void
DummyCommTimer::start()
{
    if (running_)
        return;
    running_ = true;
    timer_ = cluster_.events().scheduleAfter(period_, [this] { fire(); });
}

void
DummyCommTimer::stop()
{
    if (!running_)
        return;
    cluster_.events().cancel(timer_);
    running_ = false;
}

void
DummyCommTimer::fire()
{
    if (!running_)
        return;
    if (!qp_.inError()) {
        qp_.postRead(laddr_, lkey_, raddr_, rkey_, /*length=*/8,
                     dummyWrIdBase + posted_);
        ++posted_;
    }
    timer_ = cluster_.events().scheduleAfter(period_, [this] { fire(); });
}

FloodRescue::FloodRescue(Cluster& cluster, Node& client, Node& server,
                         verbs::CompletionQueue& cq,
                         verbs::QpConfig config, std::size_t pool_size)
{
    pool_.reserve(pool_size);
    for (std::size_t i = 0; i < pool_size; ++i) {
        auto [cqp, sqp] =
            cluster.connectRc(client, cq, server, cq, config);
        pool_.push_back(cqp);
    }
}

verbs::QueuePair&
FloodRescue::rescue(std::uint64_t laddr, std::uint32_t lkey,
                    std::uint64_t raddr, std::uint32_t rkey,
                    std::uint32_t length, std::uint64_t wr_id)
{
    verbs::QueuePair& qp = pool_[next_];
    next_ = (next_ + 1) % pool_.size();
    qp.postRead(laddr, lkey, raddr, rkey, length, wr_id);
    ++rescues_;
    return qp;
}

} // namespace pitfall
} // namespace ibsim
