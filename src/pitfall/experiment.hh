/**
 * @file
 * Experiment harness utilities shared by the bench binaries.
 *
 * Small helpers for the house style of the paper's evaluation: repeated
 * trials over seeds, probability-of-event estimation, and fixed-width
 * table printing so each bench emits rows directly comparable to the
 * paper's tables and figure series.
 */

#ifndef IBSIM_PITFALL_EXPERIMENT_HH
#define IBSIM_PITFALL_EXPERIMENT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "simcore/stats.hh"

namespace ibsim {
namespace pitfall {

/**
 * Run @p trials trials of @p fn (seeded 1..trials offset by @p seed_base)
 * and accumulate the returned sample values.
 */
Accumulator
runTrials(std::size_t trials,
          const std::function<double(std::uint64_t seed)>& fn,
          std::uint64_t seed_base = 0);

/**
 * Estimate P(event) over @p trials seeded trials, in percent.
 */
double
probabilityPercent(std::size_t trials,
                   const std::function<bool(std::uint64_t seed)>& fn,
                   std::uint64_t seed_base = 0);

/**
 * Fixed-width column table printer.
 *
 * When the IBSIM_CSV environment variable names a file, every table also
 * appends its rows there as CSV (header included), so the bench outputs
 * can be re-plotted directly.
 */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers,
                          std::size_t column_width = 14);

    /** Print the header row and separator. */
    void printHeader() const;

    /** Print one row (cells convertible to string). */
    void printRow(const std::vector<std::string>& cells) const;

    /** Format helpers. */
    static std::string fmt(double v, int precision = 3);
    static std::string fmt(std::uint64_t v);

  private:
    void appendCsv(const std::vector<std::string>& cells) const;

    std::vector<std::string> headers_;
    std::size_t width_;
    std::string csvPath_;
};

} // namespace pitfall
} // namespace ibsim

#endif // IBSIM_PITFALL_EXPERIMENT_HH
