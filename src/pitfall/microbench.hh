/**
 * @file
 * The paper's micro-benchmark (Fig. 3) as a reusable harness.
 *
 * A client node issues num_ops READ operations to a server node, assigning
 * operation i to QP i % num_qps and to buffer offset size * i (the memory
 * layout of Fig. 10), sleeping `interval` between posts, then blocks until
 * every completion arrives. Which sides register their buffers with ODP is
 * selected by OdpMode. Every pitfall experiment of Secs. V and VI is a
 * parameterization of this class.
 */

#ifndef IBSIM_PITFALL_MICROBENCH_HH
#define IBSIM_PITFALL_MICROBENCH_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "capture/capture.hh"
#include "cluster/cluster.hh"
#include "rnic/device_profile.hh"
#include "simcore/time.hh"
#include "verbs/types.hh"

namespace ibsim {
namespace pitfall {

/** Which sides of the READ register their buffers on-demand. */
enum class OdpMode : std::uint8_t
{
    None,        ///< both buffers pinned
    ServerSide,  ///< remote (read source) buffer is ODP
    ClientSide,  ///< local (read destination) buffer is ODP
    BothSide,    ///< both buffers are ODP
};

const char* odpModeName(OdpMode mode);

/** Parameters of one micro-benchmark run (paper Fig. 3). */
struct MicroBenchConfig
{
    std::size_t numOps = 2;
    std::size_t numQps = 1;
    std::uint32_t size = 100;        ///< message size in bytes
    Time interval = Time::ms(1);     ///< usleep between posts
    OdpMode odpMode = OdpMode::BothSide;

    /** QP attributes; Sec. V uses cack=1, cretry=7, min RNR 1.28 ms. */
    verbs::QpConfig qpConfig = smallTimeoutConfig();

    /** Host-side cost of posting one WR (spreads the posts slightly). */
    Time postOverhead = Time::us(1);

    /** Give up waiting for completions after this much virtual time. */
    Time waitLimit = Time::sec(120);

    /** Whether to attach a packet capture (cheap, but off for huge runs). */
    bool capture = true;

    /** Sec. V settings: minimal C_ack (clamps to the vendor floor). */
    static verbs::QpConfig
    smallTimeoutConfig()
    {
        verbs::QpConfig config;
        config.cack = 1;
        config.cretry = 7;
        config.minRnrNakDelay = Time::ms(1.28);
        return config;
    }

    /** Sec. VI / UCX-default settings: C_ack = 18. */
    static verbs::QpConfig
    ucxDefaultConfig()
    {
        verbs::QpConfig config;
        config.cack = 18;
        config.cretry = 7;
        config.minRnrNakDelay = Time::ms(1.28);
        return config;
    }
};

/** Everything measured in one run. */
struct MicroBenchResult
{
    bool completedAll = false;
    bool qpError = false;
    Time executionTime;

    /** Per-operation completion time (Time::max() if incomplete). */
    std::vector<Time> completionTimes;

    /** Transport events aggregated over all client QPs. */
    std::uint64_t timeouts = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t rnrNaksReceived = 0;
    std::uint64_t seqNaksReceived = 0;
    std::uint64_t responsesDiscardedFault = 0;
    std::uint64_t responsesDiscardedStale = 0;

    std::uint64_t clientFaults = 0;
    std::uint64_t serverFaults = 0;
    std::uint64_t updateFailures = 0;

    /** Total packets on the fabric (Fig. 9b), 0 without capture. */
    std::uint64_t totalPackets = 0;

    /** A transport timeout fired somewhere (the damming signature). */
    bool timedOut() const { return timeouts > 0; }
};

/**
 * One micro-benchmark instance: builds a fresh two-node cluster, runs the
 * Fig. 3 loop once, and keeps the cluster alive for post-hoc inspection
 * (captures, traces, stats).
 */
class MicroBenchmark
{
  public:
    MicroBenchmark(MicroBenchConfig config, rnic::DeviceProfile profile,
                   std::uint64_t seed);
    ~MicroBenchmark();

    /** Execute the benchmark loop; callable once. */
    MicroBenchResult run();

    /**
     * Called from run() once every QP is connected and every MR is
     * registered, before the first post — the attach point for
     * observers that need the QPs to exist (chaos invariant monitor).
     */
    void
    setQpReadyHook(std::function<void()> hook)
    {
        qpReadyHook_ = std::move(hook);
    }

    Cluster& cluster() { return *cluster_; }
    Node& client() { return cluster_->node(0); }
    Node& server() { return cluster_->node(1); }

    /** The capture, if MicroBenchConfig::capture was set. */
    capture::PacketCapture* packetCapture() { return capture_.get(); }

    const MicroBenchConfig& config() const { return config_; }

    /** Client QPs, in creation order. */
    const std::vector<verbs::QueuePair>& clientQps() const { return qps_; }

    /** @{ The benchmark buffers' MRs (valid once run() registered them). */
    verbs::MemoryRegion* clientMr() { return clientMr_; }
    verbs::MemoryRegion* serverMr() { return serverMr_; }
    /** @} */

  private:
    MicroBenchConfig config_;
    std::function<void()> qpReadyHook_;
    std::unique_ptr<Cluster> cluster_;
    std::unique_ptr<capture::PacketCapture> capture_;
    std::vector<verbs::QueuePair> qps_;
    verbs::MemoryRegion* clientMr_ = nullptr;
    verbs::MemoryRegion* serverMr_ = nullptr;
    bool ran_ = false;
};

} // namespace pitfall
} // namespace ibsim

#endif // IBSIM_PITFALL_MICROBENCH_HH
