#include "pitfall/timeout_probe.hh"

#include "cluster/cluster.hh"
#include "rnic/timeout.hh"

namespace ibsim {
namespace pitfall {

TimeoutProbeResult
TimeoutProbe::measure(std::uint8_t cack, std::uint64_t seed) const
{
    Cluster cluster(profile_, /*node_count=*/1, seed);
    Node& node = cluster.node(0);

    verbs::QpConfig config;
    config.cack = cack;
    config.cretry = cretry_;

    auto& cq = node.createCq();
    verbs::QueuePair qp = node.createQp(cq, config);
    // The wrong-LID trick: nothing is attached at this LID, so every
    // request vanishes in the fabric.
    qp.connect(/*dst_lid=*/999, /*dst_qpn=*/1);

    const std::uint64_t buf = node.alloc(4096);
    auto& mr = node.registerMemory(buf, 4096, verbs::AccessFlags::pinned());

    const Time start = cluster.now();
    qp.postRead(buf, mr.lkey(), 0x40000000, /*rkey=*/1, 100, /*wr_id=*/1);

    TimeoutProbeResult result;
    result.effectiveCack =
        rnic::effectiveCack(cack, profile_.minCack);
    result.aborted = cluster.runUntil(
        [&] { return cq.totalCompletions() > 0; },
        // Generous bound: (cretry+1) detections of up to 4*T_tr each.
        start + rnic::timeoutInterval(rnic::maxCack) * 8.0);
    result.abortTime = cluster.now() - start;
    result.detectedTimeout =
        result.abortTime / static_cast<double>(cretry_ + 1);
    return result;
}

} // namespace pitfall
} // namespace ibsim
