#include "pitfall/experiment.hh"

#include <cstdio>
#include <cstdlib>

namespace ibsim {
namespace pitfall {

Accumulator
runTrials(std::size_t trials,
          const std::function<double(std::uint64_t)>& fn,
          std::uint64_t seed_base)
{
    Accumulator acc;
    for (std::size_t i = 0; i < trials; ++i)
        acc.add(fn(seed_base + i + 1));
    return acc;
}

double
probabilityPercent(std::size_t trials,
                   const std::function<bool(std::uint64_t)>& fn,
                   std::uint64_t seed_base)
{
    std::size_t hits = 0;
    for (std::size_t i = 0; i < trials; ++i) {
        if (fn(seed_base + i + 1))
            ++hits;
    }
    return 100.0 * static_cast<double>(hits) /
           static_cast<double>(trials);
}

TablePrinter::TablePrinter(std::vector<std::string> headers,
                           std::size_t column_width)
    : headers_(std::move(headers)), width_(column_width)
{
    if (const char* path = std::getenv("IBSIM_CSV"))
        csvPath_ = path;
}

void
TablePrinter::appendCsv(const std::vector<std::string>& cells) const
{
    if (csvPath_.empty())
        return;
    std::FILE* f = std::fopen(csvPath_.c_str(), "a");
    if (!f)
        return;
    for (std::size_t i = 0; i < cells.size(); ++i)
        std::fprintf(f, "%s%s", cells[i].c_str(),
                     i + 1 < cells.size() ? "," : "\n");
    std::fclose(f);
}

void
TablePrinter::printHeader() const
{
    for (const auto& h : headers_)
        std::printf("%-*s", static_cast<int>(width_), h.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < headers_.size() * width_; ++i)
        std::printf("-");
    std::printf("\n");
    appendCsv(headers_);
}

void
TablePrinter::printRow(const std::vector<std::string>& cells) const
{
    for (const auto& c : cells)
        std::printf("%-*s", static_cast<int>(width_), c.c_str());
    std::printf("\n");
    appendCsv(cells);
}

std::string
TablePrinter::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TablePrinter::fmt(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace pitfall
} // namespace ibsim
