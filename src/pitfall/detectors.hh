/**
 * @file
 * Pitfall detectors over packet captures.
 *
 * The paper's Sec. IX stresses that the pitfalls are hard to detect because
 * they produce no error completions — only raw packet traces betray them.
 * These detectors encode the signatures the authors describe:
 *
 *  - packet damming: a long silent gap on a connection (a brewing
 *    transport timeout) ended by a timeout-driven retransmission;
 *  - packet flood: the same request PSN retransmitted massively on a QP
 *    over an extended period.
 */

#ifndef IBSIM_PITFALL_DETECTORS_HH
#define IBSIM_PITFALL_DETECTORS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "capture/capture.hh"
#include "simcore/time.hh"

namespace ibsim {
namespace pitfall {

/** One detected damming incident. */
struct DammingEvent
{
    std::uint32_t qpn = 0;       ///< requester QPN
    Time gapStart;               ///< last packet before the silence
    Time gap;                    ///< silent period (~the timeout T_o)
    std::uint32_t stuckPsn = 0;  ///< PSN retransmitted after the gap
};

/** One detected flood incident. */
struct FloodEvent
{
    std::uint32_t qpn = 0;
    std::uint32_t psn = 0;
    std::uint64_t retransmissions = 0;
    Time firstSeen;
    Time lastSeen;
};

/** Damming detector configuration. */
struct DammingDetectorConfig
{
    /** Minimum silent gap to flag (default: spec floor for c0 = 16). */
    Time minGap = Time::ms(100);
};

/** Flood detector configuration. */
struct FloodDetectorConfig
{
    /** Retransmissions of one PSN to qualify as a flood. */
    std::uint64_t minRetransmissions = 20;
};

/** Scan a capture for damming incidents. */
std::vector<DammingEvent>
detectDamming(const capture::PacketCapture& capture,
              DammingDetectorConfig config = {});

/** Scan a capture for flood incidents. */
std::vector<FloodEvent>
detectFlood(const capture::PacketCapture& capture,
            FloodDetectorConfig config = {});

/** Render a one-line-per-event report. */
std::string formatReport(const std::vector<DammingEvent>& events);
std::string formatReport(const std::vector<FloodEvent>& events);

} // namespace pitfall
} // namespace ibsim

#endif // IBSIM_PITFALL_DETECTORS_HH
