#include "pitfall/microbench.hh"

#include <stdexcept>

namespace ibsim {
namespace pitfall {

const char*
odpModeName(OdpMode mode)
{
    switch (mode) {
      case OdpMode::None: return "No ODP";
      case OdpMode::ServerSide: return "Server-side ODP";
      case OdpMode::ClientSide: return "Client-side ODP";
      case OdpMode::BothSide: return "Both-side ODP";
    }
    return "?";
}

MicroBenchmark::MicroBenchmark(MicroBenchConfig config,
                               rnic::DeviceProfile profile,
                               std::uint64_t seed)
    : config_(config),
      cluster_(std::make_unique<Cluster>(std::move(profile), 2, seed))
{
    if (config_.capture)
        capture_ = std::make_unique<capture::PacketCapture>(
            cluster_->fabric());
}

MicroBenchmark::~MicroBenchmark() = default;

MicroBenchResult
MicroBenchmark::run()
{
    // A run consumes the cluster's virtual clock and buffer layout, so a
    // second run would silently measure a different experiment.  Enforced
    // in every build type, not just with asserts enabled.
    if (ran_)
        throw std::logic_error(
            "MicroBenchmark::run() is callable once per instance");
    ran_ = true;

    Node& client = cluster_->node(0);
    Node& server = cluster_->node(1);

    const std::uint64_t bytes =
        static_cast<std::uint64_t>(config_.numOps) * config_.size;

    // Buffers are 4096-aligned as in the paper (alloc() page-aligns).
    const std::uint64_t local_buf = client.alloc(bytes);
    const std::uint64_t remote_buf = server.alloc(bytes);

    const bool client_odp = config_.odpMode == OdpMode::ClientSide ||
                            config_.odpMode == OdpMode::BothSide;
    const bool server_odp = config_.odpMode == OdpMode::ServerSide ||
                            config_.odpMode == OdpMode::BothSide;

    auto& cmr = client.registerMemory(local_buf, bytes,
                                      client_odp
                                          ? verbs::AccessFlags::odp()
                                          : verbs::AccessFlags::pinned());
    auto& smr = server.registerMemory(remote_buf, bytes,
                                      server_odp
                                          ? verbs::AccessFlags::odp()
                                          : verbs::AccessFlags::pinned());
    clientMr_ = &cmr;
    serverMr_ = &smr;

    // The server's data exists host-side either way; ODP only means the
    // RNIC has no translations yet.
    std::vector<std::uint8_t> fill(bytes);
    for (std::uint64_t i = 0; i < bytes; ++i)
        fill[i] = static_cast<std::uint8_t>(i * 131 + 7);
    server.memory().write(remote_buf, fill);

    auto& client_cq = client.createCq();
    auto& server_cq = server.createCq();
    qps_.clear();
    for (std::size_t q = 0; q < config_.numQps; ++q) {
        auto [cqp, sqp] = cluster_->connectRc(client, client_cq, server,
                                              server_cq, config_.qpConfig);
        qps_.push_back(cqp);
    }

    // QPs and MRs exist but nothing has been posted: the window where
    // observers (e.g. the chaos invariant monitor) can attach.
    if (qpReadyHook_)
        qpReadyHook_();

    // The Fig. 3 loop.
    const Time start = cluster_->now();
    for (std::size_t i = 0; i < config_.numOps; ++i) {
        const std::uint64_t local =
            local_buf + static_cast<std::uint64_t>(config_.size) * i;
        const std::uint64_t remote =
            remote_buf + static_cast<std::uint64_t>(config_.size) * i;
        verbs::QueuePair& qp = qps_[i % config_.numQps];
        qp.postRead(local, cmr.lkey(), remote, smr.rkey(), config_.size,
                    /*wr_id=*/i);
        cluster_->advance(
            cluster_->rng().jitter(config_.postOverhead, 0.3));
        if (config_.interval > Time())
            cluster_->advance(
                cluster_->rng().jitter(config_.interval, 0.01));
    }

    // wait(): poll the CQ until everything finished (or errored out).
    const auto done = [&] {
        return client_cq.totalCompletions() >= config_.numOps;
    };
    MicroBenchResult result;
    result.completedAll =
        cluster_->runUntil(done, start + config_.waitLimit);
    result.executionTime = cluster_->now() - start;

    result.completionTimes.assign(config_.numOps, Time::max());
    for (const auto& wc : client_cq.poll()) {
        if (wc.wrId < result.completionTimes.size() && wc.ok())
            result.completionTimes[wc.wrId] = wc.completedAt - start;
        if (!wc.ok())
            result.qpError = true;
    }

    for (const auto& qp : qps_) {
        const auto& s = qp.stats();
        result.timeouts += s.timeouts;
        result.retransmissions += s.retransmissions;
        result.rnrNaksReceived += s.rnrNaksReceived;
        result.seqNaksReceived += s.seqNaksReceived;
        result.responsesDiscardedFault += s.responsesDiscardedFault;
        result.responsesDiscardedStale += s.responsesDiscardedStale;
    }

    result.clientFaults = client.driver().stats().faultsResolved;
    result.serverFaults = server.driver().stats().faultsResolved;
    result.updateFailures = client.board().stats().updateFailures;
    result.totalPackets = cluster_->fabric().totalSent();
    return result;
}

} // namespace pitfall
} // namespace ibsim
