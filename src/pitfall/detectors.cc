#include "pitfall/detectors.hh"

#include <cstdio>
#include <map>

namespace ibsim {
namespace pitfall {

std::vector<DammingEvent>
detectDamming(const capture::PacketCapture& capture,
              DammingDetectorConfig config)
{
    // Track, per requester QP, the time of the last packet in either
    // direction; flag request retransmissions that end a long silence.
    std::vector<DammingEvent> events;
    std::map<std::uint32_t, Time> last_activity;

    auto touch = [&](std::uint32_t qpn, Time when) {
        last_activity[qpn] = when;
    };

    for (const auto& entry : capture.entries()) {
        const auto& p = entry.packet;
        const bool is_request = p.op == net::Opcode::ReadRequest ||
                                p.op == net::Opcode::WriteRequest ||
                                p.op == net::Opcode::Send;

        // Activity is attributed to the requester QPN: the source for
        // requests, the destination for responses/acks/naks.
        const std::uint32_t requester_qpn =
            is_request ? p.srcQpn : p.dstQpn;

        auto it = last_activity.find(requester_qpn);
        if (it != last_activity.end() && is_request && p.retransmission) {
            const Time gap = entry.when - it->second;
            if (gap >= config.minGap) {
                DammingEvent e;
                e.qpn = requester_qpn;
                e.gapStart = it->second;
                e.gap = gap;
                e.stuckPsn = p.psn;
                events.push_back(e);
            }
        }
        touch(requester_qpn, entry.when);
    }
    return events;
}

std::vector<FloodEvent>
detectFlood(const capture::PacketCapture& capture,
            FloodDetectorConfig config)
{
    struct Track
    {
        std::uint64_t rexmits = 0;
        Time first;
        Time last;
    };
    std::map<std::pair<std::uint32_t, std::uint32_t>, Track> tracks;

    for (const auto& entry : capture.entries()) {
        const auto& p = entry.packet;
        if (p.op != net::Opcode::ReadRequest || !p.retransmission)
            continue;
        auto& t = tracks[{p.srcQpn, p.psn}];
        if (t.rexmits == 0)
            t.first = entry.when;
        ++t.rexmits;
        t.last = entry.when;
    }

    std::vector<FloodEvent> events;
    for (const auto& [key, t] : tracks) {
        if (t.rexmits < config.minRetransmissions)
            continue;
        FloodEvent e;
        e.qpn = key.first;
        e.psn = key.second;
        e.retransmissions = t.rexmits;
        e.firstSeen = t.first;
        e.lastSeen = t.last;
        events.push_back(e);
    }
    return events;
}

std::string
formatReport(const std::vector<DammingEvent>& events)
{
    std::string out;
    char buf[160];
    for (const auto& e : events) {
        std::snprintf(buf, sizeof(buf),
                      "packet damming: qpn=%u psn=%u dammed for %s "
                      "(from %s)\n",
                      e.qpn, e.stuckPsn, e.gap.str().c_str(),
                      e.gapStart.str().c_str());
        out += buf;
    }
    if (events.empty())
        out = "no damming incidents detected\n";
    return out;
}

std::string
formatReport(const std::vector<FloodEvent>& events)
{
    std::string out;
    char buf[160];
    for (const auto& e : events) {
        std::snprintf(buf, sizeof(buf),
                      "packet flood: qpn=%u psn=%u retransmitted %llu "
                      "times over %s\n",
                      e.qpn, e.psn,
                      static_cast<unsigned long long>(e.retransmissions),
                      (e.lastSeen - e.firstSeen).str().c_str());
        out += buf;
    }
    if (events.empty())
        out = "no flood incidents detected\n";
    return out;
}

} // namespace pitfall
} // namespace ibsim
