/**
 * @file
 * Transport timeout measurement — the method of paper Sec. IV-B / Fig. 2.
 *
 * Deliberately connect a QP to a wrong destination LID so every packet is
 * lost, post one READ, and measure the time until the process aborts with
 * IBV_WC_RETRY_EXC_ERR. With Retry Count C_retry the observed abort time is
 * t = (C_retry + 1) * T_o, so T_o = t / (C_retry + 1).
 */

#ifndef IBSIM_PITFALL_TIMEOUT_PROBE_HH
#define IBSIM_PITFALL_TIMEOUT_PROBE_HH

#include <cstdint>

#include "rnic/device_profile.hh"
#include "simcore/time.hh"

namespace ibsim {
namespace pitfall {

/** Result of one timeout probe. */
struct TimeoutProbeResult
{
    /** Time from first request to the RETRY_EXC_ERR abort. */
    Time abortTime;

    /** Derived per-try detection time T_o = abortTime / (cretry + 1). */
    Time detectedTimeout;

    /** The exponent the device actually used (vendor-clamped). */
    std::uint8_t effectiveCack = 0;

    bool aborted = false;
};

/**
 * Measure T_o on a device profile for one C_ack setting.
 */
class TimeoutProbe
{
  public:
    explicit TimeoutProbe(rnic::DeviceProfile profile,
                          std::uint8_t cretry = 7)
        : profile_(std::move(profile)), cretry_(cretry)
    {}

    /** Run the probe with the requested Local ACK Timeout exponent. */
    TimeoutProbeResult measure(std::uint8_t cack,
                               std::uint64_t seed = 1) const;

  private:
    rnic::DeviceProfile profile_;
    std::uint8_t cretry_;
};

} // namespace pitfall
} // namespace ibsim

#endif // IBSIM_PITFALL_TIMEOUT_PROBE_HH
