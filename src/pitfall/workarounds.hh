/**
 * @file
 * Software workarounds for the pitfalls (paper Sec. IX-A).
 *
 * Three mitigations the paper proposes, as reusable components:
 *
 *  1. Minimal RNR NAK delay tuning — narrow the damming window by
 *     programming the smallest delay (a QpConfig choice; helper here).
 *  2. DummyCommTimer — periodically post a dummy communication so a stuck
 *     PSN stream provokes a PSN-sequence-error NAK and recovers via
 *     go-back-N instead of the transport timeout.
 *  3. FloodRescue — re-issue a stalled READ on a fresh QP: the page fault
 *     has long been resolved, and a new QP's status view is not subject to
 *     the update failure, so the data arrives promptly.
 */

#ifndef IBSIM_PITFALL_WORKAROUNDS_HH
#define IBSIM_PITFALL_WORKAROUNDS_HH

#include <cstdint>

#include "cluster/cluster.hh"
#include "simcore/time.hh"
#include "verbs/queue_pair.hh"

namespace ibsim {
namespace pitfall {

/** QpConfig with the smallest RNR NAK delay (workaround 1). */
verbs::QpConfig withMinimalRnrDelay(verbs::QpConfig config);

/**
 * Workaround 2: a software timer posting dummy READs on a QP.
 *
 * The dummy buffers must be pinned (or pre-faulted) so the dummies never
 * fault themselves. Dummy completions carry wr_ids >= dummyWrIdBase so the
 * application can filter them when polling.
 */
class DummyCommTimer
{
  public:
    /** wr_id namespace reserved for dummy operations. */
    static constexpr std::uint64_t dummyWrIdBase = 1ull << 62;

    DummyCommTimer(Cluster& cluster, verbs::QueuePair qp,
                   std::uint64_t laddr, std::uint32_t lkey,
                   std::uint64_t raddr, std::uint32_t rkey, Time period);
    ~DummyCommTimer();

    DummyCommTimer(const DummyCommTimer&) = delete;
    DummyCommTimer& operator=(const DummyCommTimer&) = delete;

    void start();
    void stop();
    bool running() const { return running_; }

    std::uint64_t dummiesPosted() const { return posted_; }

  private:
    void fire();

    Cluster& cluster_;
    verbs::QueuePair qp_;
    std::uint64_t laddr_;
    std::uint32_t lkey_;
    std::uint64_t raddr_;
    std::uint32_t rkey_;
    Time period_;
    bool running_ = false;
    EventHandle timer_;
    std::uint64_t posted_ = 0;
};

/**
 * Workaround 3: re-issue stalled READs on fresh QPs.
 *
 * Maintains a pool of spare QPs to the same server. rescue() posts a copy
 * of a stalled READ on the next spare QP; because the spare QP never
 * waited on the page, its status view is fresh and the data lands at
 * fault-free speed.
 */
class FloodRescue
{
  public:
    FloodRescue(Cluster& cluster, Node& client, Node& server,
                verbs::CompletionQueue& cq, verbs::QpConfig config,
                std::size_t pool_size);

    /**
     * Re-issue a READ on a spare QP. Returns the QP used (round-robin).
     */
    verbs::QueuePair& rescue(std::uint64_t laddr, std::uint32_t lkey,
                             std::uint64_t raddr, std::uint32_t rkey,
                             std::uint32_t length, std::uint64_t wr_id);

    std::uint64_t rescuesIssued() const { return rescues_; }

  private:
    std::vector<verbs::QueuePair> pool_;
    std::size_t next_ = 0;
    std::uint64_t rescues_ = 0;
};

} // namespace pitfall
} // namespace ibsim

#endif // IBSIM_PITFALL_WORKAROUNDS_HH
