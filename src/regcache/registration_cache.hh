/**
 * @file
 * Pin-down registration cache — the conventional alternative to ODP.
 *
 * The paper's introduction motivates ODP by the cost of manual memory
 * registration: pinning is expensive at runtime, leaving memory registered
 * wastes physical memory, and the standard compromise is a pin-down cache
 * (Tezuka et al. [16]) with LRU replacement, optionally batching
 * deregistrations (Zhou et al. [15]). This module implements that
 * baseline over the simulator's verbs API so ODP can be compared against
 * the thing it replaces (bench_ablation_regcache).
 *
 * Registration costs follow the published breakdowns (Mietke et al. [13]):
 * a fixed syscall/driver cost plus a per-page pinning cost, and a cheaper
 * per-page deregistration. acquire() advances virtual time by the modeled
 * cost, so call it from harness level (not from inside event callbacks).
 */

#ifndef IBSIM_REGCACHE_REGISTRATION_CACHE_HH
#define IBSIM_REGCACHE_REGISTRATION_CACHE_HH

#include <cstdint>
#include <list>
#include <vector>

#include "cluster/node.hh"
#include "simcore/time.hh"

namespace ibsim {
namespace regcache {

/** Cost model and policy of the cache. */
struct RegCacheConfig
{
    /** Pinned-bytes budget; LRU eviction beyond it. 0 = unbounded. */
    std::uint64_t capacityBytes = 64ull << 20;

    /** @{ Registration cost: base syscall + per-page pinning. */
    Time registerBase = Time::us(30);
    Time registerPerPage = Time::us(1.5);
    /** @} */

    /** @{ Deregistration cost (unpinning is cheaper than pinning). */
    Time deregisterBase = Time::us(15);
    Time deregisterPerPage = Time::us(0.6);
    /** @} */

    /**
     * Evicted regions deregister lazily in batches of this size,
     * amortizing the base cost (Zhou et al.).
     */
    std::size_t deregisterBatch = 8;
};

/** Counters for the trade-off analysis. */
struct RegCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t registrations = 0;
    std::uint64_t deregistrations = 0;
    /** Virtual time spent registering/deregistering. */
    Time managementTime;
};

/**
 * LRU pin-down cache of registered regions on one node.
 */
class RegistrationCache
{
  public:
    RegistrationCache(Node& node, EventQueue& events,
                      RegCacheConfig config = {});

    RegistrationCache(const RegistrationCache&) = delete;
    RegistrationCache& operator=(const RegistrationCache&) = delete;

    /**
     * Return a pinned MR covering [addr, addr + len), registering one
     * (page-aligned) if no cached region covers the range. Advances
     * virtual time by the modeled management cost.
     */
    verbs::MemoryRegion& acquire(std::uint64_t addr, std::uint64_t len);

    /** Flush everything (deregisters all cached regions). */
    void flush();

    /** Bytes currently pinned by cached regions. */
    std::uint64_t pinnedBytes() const { return pinnedBytes_; }

    std::size_t cachedRegions() const { return entries_.size(); }
    const RegCacheStats& stats() const { return stats_; }
    const RegCacheConfig& config() const { return config_; }

  private:
    struct Entry
    {
        std::uint64_t base = 0;
        std::uint64_t length = 0;
        verbs::MemoryRegion* mr = nullptr;
    };

    /** Charge management time against the virtual clock. */
    void charge(Time cost);

    /** Evict LRU entries until the budget holds; batch deregisters. */
    void enforceCapacity();

    /** Deregister the pending batch if it is full (or @p force). */
    void drainDeregBatch(bool force);

    static std::uint64_t pagesOf(std::uint64_t len);

    Node& node_;
    EventQueue& events_;
    RegCacheConfig config_;
    std::list<Entry> entries_;  ///< front = most recently used
    std::vector<Entry> deregBatch_;
    std::uint64_t pinnedBytes_ = 0;
    RegCacheStats stats_;
};

} // namespace regcache
} // namespace ibsim

#endif // IBSIM_REGCACHE_REGISTRATION_CACHE_HH
