#include "regcache/registration_cache.hh"

#include "mem/address_space.hh"

namespace ibsim {
namespace regcache {

RegistrationCache::RegistrationCache(Node& node, EventQueue& events,
                                     RegCacheConfig config)
    : node_(node), events_(events), config_(config)
{
}

std::uint64_t
RegistrationCache::pagesOf(std::uint64_t len)
{
    return (len + mem::pageSize - 1) / mem::pageSize;
}

void
RegistrationCache::charge(Time cost)
{
    stats_.managementTime += cost;
    events_.advance(cost);
}

verbs::MemoryRegion&
RegistrationCache::acquire(std::uint64_t addr, std::uint64_t len)
{
    // Hit: any cached region covering the range; refresh its LRU slot.
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (addr >= it->base && addr + len <= it->base + it->length) {
            ++stats_.hits;
            entries_.splice(entries_.begin(), entries_, it);
            return *entries_.front().mr;
        }
    }

    // Miss: register a page-aligned covering region.
    ++stats_.misses;
    Entry entry;
    entry.base = addr - addr % mem::pageSize;
    entry.length = pagesOf(addr + len - entry.base) * mem::pageSize;
    charge(config_.registerBase +
           config_.registerPerPage *
               static_cast<double>(pagesOf(entry.length)));
    entry.mr = &node_.registerMemory(entry.base, entry.length,
                                     verbs::AccessFlags::pinned());
    ++stats_.registrations;
    pinnedBytes_ += entry.length;
    entries_.push_front(entry);

    enforceCapacity();
    return *entries_.front().mr;
}

void
RegistrationCache::enforceCapacity()
{
    if (config_.capacityBytes == 0)
        return;
    while (pinnedBytes_ > config_.capacityBytes && entries_.size() > 1) {
        // Evict the least recently used region; actual deregistration is
        // deferred into the batch.
        Entry victim = entries_.back();
        entries_.pop_back();
        pinnedBytes_ -= victim.length;
        ++stats_.evictions;
        deregBatch_.push_back(victim);
    }
    drainDeregBatch(/*force=*/false);
}

void
RegistrationCache::drainDeregBatch(bool force)
{
    if (deregBatch_.empty())
        return;
    if (!force && deregBatch_.size() < config_.deregisterBatch)
        return;

    // One base cost for the whole batch (the Zhou et al. amortization),
    // plus per-page unpinning.
    std::uint64_t pages = 0;
    for (const Entry& e : deregBatch_) {
        pages += pagesOf(e.length);
        node_.deregisterMemory(*e.mr);
        ++stats_.deregistrations;
    }
    charge(config_.deregisterBase +
           config_.deregisterPerPage * static_cast<double>(pages));
    deregBatch_.clear();
}

void
RegistrationCache::flush()
{
    while (!entries_.empty()) {
        Entry victim = entries_.back();
        entries_.pop_back();
        pinnedBytes_ -= victim.length;
        deregBatch_.push_back(victim);
    }
    drainDeregBatch(/*force=*/true);
}

} // namespace regcache
} // namespace ibsim
