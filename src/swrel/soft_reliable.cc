#include "swrel/soft_reliable.hh"

#include <cassert>
#include <cstring>

#include "simcore/log.hh"

namespace ibsim {
namespace swrel {

namespace {

log::Component traceSwrel("swrel");

/** Per-message buffer slot: header plus the largest payload. */
constexpr std::uint64_t slotBytes = 512;
constexpr std::uint64_t headerBytes = 9;

std::vector<std::uint8_t>
encode(std::uint8_t type, std::uint64_t seq,
       const std::vector<std::uint8_t>& payload)
{
    std::vector<std::uint8_t> out(headerBytes + payload.size());
    out[0] = type;
    std::memcpy(out.data() + 1, &seq, 8);
    if (!payload.empty())  // ACKs are header-only; data() may be null
        std::memcpy(out.data() + headerBytes, payload.data(),
                    payload.size());
    return out;
}

} // namespace

SoftReliableChannel::SoftReliableChannel(Cluster& cluster, Node& sender,
                                         Node& receiver,
                                         SoftChannelConfig config)
    : cluster_(cluster), sender_(sender), receiver_(receiver),
      config_(config)
{
    assert(config_.maxPayloadBytes + headerBytes <= slotBytes);

    senderCq_ = &sender_.createCq();
    receiverCq_ = &receiver_.createCq();

    verbs::QpConfig uc;
    uc.transport = verbs::Transport::Uc;

    // Data path: sender -> receiver; ACK path: receiver -> sender.
    auto data = cluster_.connectRc(sender_, *senderCq_, receiver_,
                                   *receiverCq_, uc);
    dataQp_ = data.first;
    dataQpRemote_ = data.second;
    auto ack = cluster_.connectRc(receiver_, *receiverCq_, sender_,
                                  *senderCq_, uc);
    ackQp_ = ack.first;
    ackQpRemote_ = ack.second;

    sendBuf_ = sender_.alloc(slotBytes);
    ackRecvBuf_ = sender_.alloc(slotBytes * config_.recvSlots);
    recvBuf_ = receiver_.alloc(slotBytes * config_.recvSlots);
    ackSendBuf_ = receiver_.alloc(slotBytes);

    sender_.touch(sendBuf_, slotBytes);
    receiver_.touch(ackSendBuf_, slotBytes);

    sendMr_ = &sender_.registerMemory(sendBuf_, slotBytes,
                                      verbs::AccessFlags::pinned());
    ackRecvMr_ = &sender_.registerMemory(
        ackRecvBuf_, slotBytes * config_.recvSlots,
        verbs::AccessFlags::pinned());
    recvMr_ = &receiver_.registerMemory(
        recvBuf_, slotBytes * config_.recvSlots,
        verbs::AccessFlags::pinned());
    ackSendMr_ = &receiver_.registerMemory(ackSendBuf_, slotBytes,
                                           verbs::AccessFlags::pinned());

    for (std::size_t slot = 0; slot < config_.recvSlots; ++slot) {
        dataQpRemote_.postRecv(recvBuf_ + slot * slotBytes,
                               recvMr_->lkey(), slotBytes, slot);
        ackQpRemote_.postRecv(ackRecvBuf_ + slot * slotBytes,
                              ackRecvMr_->lkey(), slotBytes, slot);
    }

    receiverCq_->setListener(
        [this](const verbs::WorkCompletion& wc) {
            onReceiverCompletion(wc);
        });
    senderCq_->setListener([this](const verbs::WorkCompletion& wc) {
        onSenderCompletion(wc);
    });
}

std::uint64_t
SoftReliableChannel::send(const std::vector<std::uint8_t>& payload)
{
    assert(payload.size() <= config_.maxPayloadBytes);
    const std::uint64_t seq = nextSeq_++;
    PendingMessage msg;
    msg.payload = payload;
    pending_.emplace(seq, std::move(msg));
    ++stats_.sends;
    transmit(seq);
    armRetry(seq);
    return seq;
}

void
SoftReliableChannel::transmit(std::uint64_t seq)
{
    const auto it = pending_.find(seq);
    if (it == pending_.end())
        return;
    const auto wire = encode(typeData, seq, it->second.payload);
    sender_.memory().write(sendBuf_, wire);
    dataQp_.postSend(sendBuf_, sendMr_->lkey(),
                     static_cast<std::uint32_t>(wire.size()),
                     /*wr_id=*/seq);
}

void
SoftReliableChannel::armRetry(std::uint64_t seq)
{
    auto it = pending_.find(seq);
    if (it == pending_.end())
        return;
    it->second.retryTimer = cluster_.events().scheduleAfter(
        cluster_.rng().jitter(config_.retryTimeout, 0.05),
        [this, seq] { retryFired(seq); });
}

void
SoftReliableChannel::retryFired(std::uint64_t seq)
{
    auto it = pending_.find(seq);
    if (it == pending_.end())
        return;  // acked meanwhile
    if (++it->second.retries > config_.maxRetries) {
        // Retries exhausted: cancel the retry timer (harmless here since
        // it just fired, load-bearing if this path is ever reached from
        // anywhere else), record the failure so acked() cannot claim
        // success for a lost message, and tell the application.
        cluster_.events().cancel(it->second.retryTimer);
        failedSeqs_.insert(seq);
        ++stats_.failed;
        IBSIM_TRACE(traceSwrel, cluster_.events().now(),
                    "seq=" + std::to_string(seq) +
                        " failed after retry exhaustion");
        pending_.erase(it);
        if (failureCallback_)
            failureCallback_(seq);
        return;
    }
    ++stats_.retransmissions;
    IBSIM_TRACE(traceSwrel, cluster_.events().now(),
                "seq=" + std::to_string(seq) + " retry #" +
                    std::to_string(it->second.retries));
    transmit(seq);
    armRetry(seq);
}

void
SoftReliableChannel::onReceiverCompletion(const verbs::WorkCompletion& wc)
{
    if (wc.opcode != verbs::WrOpcode::Recv || !wc.ok())
        return;
    const std::uint64_t slot = wc.wrId;
    const std::uint64_t addr = recvBuf_ + slot * slotBytes;
    const auto bytes = receiver_.memory().read(addr, wc.byteLen);
    // Repost the slot right away.
    dataQpRemote_.postRecv(addr, recvMr_->lkey(), slotBytes, slot);

    if (bytes.size() < headerBytes || bytes[0] != typeData)
        return;
    std::uint64_t seq = 0;
    std::memcpy(&seq, bytes.data() + 1, 8);

    if (deliveredSeqs_.insert(seq).second) {
        ++stats_.delivered;
        delivered_.emplace_back(bytes.begin() + headerBytes, bytes.end());
    } else {
        ++stats_.duplicatesDropped;
    }

    // ACK every copy (the sender may have retransmitted).
    const auto ack = encode(typeAck, seq, {});
    receiver_.memory().write(ackSendBuf_, ack);
    ackQp_.postSend(ackSendBuf_, ackSendMr_->lkey(),
                    static_cast<std::uint32_t>(ack.size()),
                    /*wr_id=*/seq);
    ++stats_.acksSent;
}

void
SoftReliableChannel::onSenderCompletion(const verbs::WorkCompletion& wc)
{
    if (wc.opcode != verbs::WrOpcode::Recv || !wc.ok())
        return;
    const std::uint64_t slot = wc.wrId;
    const std::uint64_t addr = ackRecvBuf_ + slot * slotBytes;
    const auto bytes = sender_.memory().read(addr, wc.byteLen);
    ackQpRemote_.postRecv(addr, ackRecvMr_->lkey(), slotBytes, slot);

    if (bytes.size() < headerBytes || bytes[0] != typeAck)
        return;
    std::uint64_t seq = 0;
    std::memcpy(&seq, bytes.data() + 1, 8);

    auto it = pending_.find(seq);
    if (it != pending_.end()) {
        cluster_.events().cancel(it->second.retryTimer);
        pending_.erase(it);
    }
}

bool
SoftReliableChannel::acked(std::uint64_t seq) const
{
    return seq >= 1 && seq < nextSeq_ &&
           pending_.find(seq) == pending_.end() &&
           failedSeqs_.count(seq) == 0;
}

} // namespace swrel
} // namespace ibsim
