/**
 * @file
 * Software reliability over the Unreliable Connection transport.
 *
 * The paper's related work (Sec. VIII-C, Koop et al. [33], Kalia et
 * al. [8]) shows that software-level reliability over unreliable
 * transports is not only feasible but can outperform hardware
 * reliability — precisely because software timeouts are tunable, while
 * the RC transport timeout is floor-limited to hundreds of milliseconds
 * (the root of packet damming's cost). This channel implements that
 * design point: application-level sequence numbers, receiver ACKs, and a
 * millisecond-scale retry timer over UC SEND/RECV.
 *
 * Wire format of each message: [type:1][seq:8][payload...].
 */

#ifndef IBSIM_SWREL_SOFT_RELIABLE_HH
#define IBSIM_SWREL_SOFT_RELIABLE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "cluster/cluster.hh"
#include "simcore/time.hh"
#include "verbs/queue_pair.hh"

namespace ibsim {
namespace swrel {

/** Channel policy. */
struct SoftChannelConfig
{
    /** Retransmit an unacked message after this long (tunable!). */
    Time retryTimeout = Time::ms(1);

    /** Give up after this many retries (message reported failed). */
    std::size_t maxRetries = 20;

    /** Largest payload per message. */
    std::uint32_t maxPayloadBytes = 480;

    /** RECV WQEs kept posted per endpoint. */
    std::size_t recvSlots = 64;
};

/** Counters. */
struct SoftChannelStats
{
    std::uint64_t sends = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t acksSent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t duplicatesDropped = 0;
    std::uint64_t failed = 0;
};

/**
 * One reliable one-way message channel from @p sender to @p receiver,
 * built on a pair of UC QPs (data one way, ACKs the other).
 */
class SoftReliableChannel
{
  public:
    SoftReliableChannel(Cluster& cluster, Node& sender, Node& receiver,
                        SoftChannelConfig config = {});

    SoftReliableChannel(const SoftReliableChannel&) = delete;
    SoftReliableChannel& operator=(const SoftReliableChannel&) = delete;

    /**
     * Send a payload reliably. Returns the message sequence number.
     * Delivery is confirmed when acked(seq) turns true.
     */
    std::uint64_t send(const std::vector<std::uint8_t>& payload);

    /** Whether message @p seq has been acknowledged. */
    bool acked(std::uint64_t seq) const;

    /** Whether message @p seq exhausted its retries and was given up on. */
    bool failed(std::uint64_t seq) const { return failedSeqs_.count(seq) > 0; }

    /**
     * Whether every sent message has been acknowledged. A failed message
     * is NOT acked — permanent loss must not read as success.
     */
    bool allAcked() const { return pending_.empty() && failedSeqs_.empty(); }

    /** Whether every sent message has settled (acked or failed). */
    bool allSettled() const { return pending_.empty(); }

    /**
     * Notification of permanent send failure (retries exhausted), fired
     * once per failed message with its sequence number. Without it the
     * application's only signal was polling acked() — which used to lie.
     */
    void
    setFailureCallback(std::function<void(std::uint64_t seq)> cb)
    {
        failureCallback_ = std::move(cb);
    }

    /** Messages sent so far (sequence numbers run 1..sentCount()). */
    std::uint64_t sentCount() const { return nextSeq_ - 1; }

    /** Distinct sequence numbers delivered at the receiver. */
    std::size_t deliveredSeqCount() const { return deliveredSeqs_.size(); }

    /** Payloads delivered at the receiver, in delivery order. */
    const std::vector<std::vector<std::uint8_t>>&
    delivered() const
    {
        return delivered_;
    }

    const SoftChannelStats& stats() const { return stats_; }

  private:
    struct PendingMessage
    {
        std::vector<std::uint8_t> payload;
        std::size_t retries = 0;
        EventHandle retryTimer;
    };

    static constexpr std::uint8_t typeData = 1;
    static constexpr std::uint8_t typeAck = 2;

    void transmit(std::uint64_t seq);
    void armRetry(std::uint64_t seq);
    void retryFired(std::uint64_t seq);
    void onReceiverCompletion(const verbs::WorkCompletion& wc);
    void onSenderCompletion(const verbs::WorkCompletion& wc);
    void repostRecv(Node& node, verbs::QueuePair& qp,
                    verbs::MemoryRegion& mr, std::uint64_t slot_base,
                    std::uint64_t wr_id);

    Cluster& cluster_;
    Node& sender_;
    Node& receiver_;
    SoftChannelConfig config_;

    verbs::CompletionQueue* senderCq_ = nullptr;
    verbs::CompletionQueue* receiverCq_ = nullptr;
    verbs::QueuePair dataQp_;  ///< sender -> receiver (UC)
    verbs::QueuePair ackQp_;   ///< receiver -> sender (UC)
    verbs::QueuePair dataQpRemote_;
    verbs::QueuePair ackQpRemote_;

    std::uint64_t sendBuf_ = 0;
    std::uint64_t recvBuf_ = 0;
    std::uint64_t ackSendBuf_ = 0;
    std::uint64_t ackRecvBuf_ = 0;
    verbs::MemoryRegion* sendMr_ = nullptr;
    verbs::MemoryRegion* recvMr_ = nullptr;
    verbs::MemoryRegion* ackSendMr_ = nullptr;
    verbs::MemoryRegion* ackRecvMr_ = nullptr;

    std::uint64_t nextSeq_ = 1;
    std::map<std::uint64_t, PendingMessage> pending_;
    std::set<std::uint64_t> failedSeqs_;
    std::function<void(std::uint64_t)> failureCallback_;
    std::set<std::uint64_t> deliveredSeqs_;
    std::vector<std::vector<std::uint8_t>> delivered_;
    SoftChannelStats stats_;
};

} // namespace swrel
} // namespace ibsim

#endif // IBSIM_SWREL_SOFT_RELIABLE_HH
