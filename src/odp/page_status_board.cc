#include "odp/page_status_board.hh"

#include <algorithm>

#include "simcore/log.hh"

namespace ibsim {
namespace odp {

namespace {

log::Component traceFlood("flood");

} // namespace

PageStatusBoard::PageStatusBoard(EventQueue& events, Rng& rng,
                                 FloodQuirkConfig config)
    : events_(events), rng_(rng), config_(config)
{
}

void
PageStatusBoard::registerWaiter(const TranslationTable* table,
                                std::uint64_t page_idx, std::uint32_t qpn)
{
    const Key key{table, page_idx, qpn};
    auto [it, inserted] = waiters_.try_emplace(key);
    if (inserted) {
        it->second.since = events_.now();
        ++stats_.waitersRegistered;
    }
}

void
PageStatusBoard::unregisterWaiter(const TranslationTable* table,
                                  std::uint64_t page_idx, std::uint32_t qpn)
{
    const Key key{table, page_idx, qpn};
    auto it = waiters_.find(key);
    if (it == waiters_.end())
        return;
    if (it->second.stale) {
        if (config_.staleQueueDeadKeyBug) {
            // Pre-fix purge: only the first queued copy goes, so a
            // waiter that went stale twice leaves a dead key behind.
            auto q = std::find(slowQueue_.begin(), slowQueue_.end(), key);
            if (q != slowQueue_.end())
                slowQueue_.erase(q);
        } else {
            purgeFromSlowQueue(key);
        }
    }
    waiters_.erase(it);
}

void
PageStatusBoard::purgeFromSlowQueue(const Key& key)
{
    slowQueue_.erase(std::remove(slowQueue_.begin(), slowQueue_.end(), key),
                     slowQueue_.end());
}

bool
PageStatusBoard::fresh(const TranslationTable* table, std::uint64_t page_idx,
                       std::uint32_t qpn) const
{
    return waiters_.find({table, page_idx, qpn}) == waiters_.end();
}

void
PageStatusBoard::onPageMapped(const TranslationTable& table,
                              std::uint64_t page_idx,
                              std::uint32_t contention)
{
    // Collect the waiters of this page. Keys sort by (table, page, qpn) so
    // an equal_range-style scan over the map works.
    std::vector<Key> page_waiters;
    const Key lo{&table, page_idx, 0};
    for (auto it = waiters_.lower_bound(lo); it != waiters_.end(); ++it) {
        const auto& [tab, page, qpn] = it->first;
        if (tab != &table || page != page_idx)
            break;
        page_waiters.push_back(it->first);
    }

    const bool over_fanout =
        config_.enabled && page_waiters.size() > config_.updateFanout;
    // Mechanistic trigger (notifierContention): the prompt update loses
    // the race when the fault resolved under concurrent invalidation
    // traffic on the region, regardless of fanout.
    const bool fail_updates =
        config_.notifierContention
            ? (config_.enabled &&
               contention >= config_.contentionThreshold)
            : over_fanout;
    const Time stale_cutoff = events_.now() - config_.staleThreshold;

    for (const Key& key : page_waiters) {
        Waiter& w = waiters_.at(key);
        if (fail_updates && w.since < stale_cutoff) {
            // Update failure: this QP was already mid-retransmission and
            // missed the broadcast; only the slow path refreshes it.
            if (config_.staleQueueDeadKeyBug || !w.stale) {
                ++stats_.updateFailures;
                w.stale = true;
                slowQueue_.push_back(key);
            }
            IBSIM_TRACE(traceFlood, events_.now(),
                        "update failure qpn=" +
                            std::to_string(std::get<2>(key)) +
                            " page=" + std::to_string(page_idx));
        } else {
            ++stats_.promptUpdates;
            if (!config_.staleQueueDeadKeyBug && w.stale)
                purgeFromSlowQueue(key);
            waiters_.erase(key);
        }
    }

    if (!slowQueue_.empty())
        scheduleService(config_.slowUpdateBase);
}

void
PageStatusBoard::scheduleService(Time lead)
{
    if (serviceRunning_)
        return;
    serviceRunning_ = true;
    serviceTimer_ = events_.scheduleAfter(rng_.jitter(lead, 0.10),
                                          [this] { serviceFired(); });
}

void
PageStatusBoard::serviceFired()
{
    serviceRunning_ = false;
    if (slowQueue_.empty())
        return;

    // LIFO service: the most recent failures refresh first, so the
    // earliest operations finish last (paper Fig. 11a: the *first* ~30
    // operations stayed unaware the longest).
    if (config_.staleQueueDeadKeyBug) {
        // Pre-fix behavior: a dead key (waiter already flushed or
        // destroyed) burns this rate-limited service slot anyway.
        const Key key = slowQueue_.back();
        slowQueue_.pop_back();
        waiters_.erase(key);
        ++stats_.slowRefreshes;
        IBSIM_TRACE(traceFlood, events_.now(),
                    "slow refresh landed qpn=" +
                        std::to_string(std::get<2>(key)));
    } else {
        // Skip dead keys without burning a service slot on them.
        while (!slowQueue_.empty()) {
            const Key key = slowQueue_.back();
            slowQueue_.pop_back();
            auto it = waiters_.find(key);
            if (it == waiters_.end() || !it->second.stale)
                continue;
            waiters_.erase(it);
            ++stats_.slowRefreshes;
            IBSIM_TRACE(traceFlood, events_.now(),
                        "slow refresh landed qpn=" +
                            std::to_string(std::get<2>(key)));
            break;
        }
    }

    if (!slowQueue_.empty()) {
        // Service slows down quadratically with the whole active-waiter
        // population (stale or still faulting): the driver shares its
        // capacity with the flood's interrupt load.
        const double scaled =
            config_.loadFactor * static_cast<double>(waiters_.size());
        const double load =
            std::min(config_.maxServiceFactor, 1.0 + scaled * scaled);
        scheduleService(config_.slowServiceBase * load);
    }
}

} // namespace odp
} // namespace ibsim
