#include "odp/odp_driver.hh"

#include <algorithm>
#include <cassert>
#include <utility>

#include "simcore/log.hh"

namespace ibsim {
namespace odp {

namespace {

log::Component traceOdp("odp");

} // namespace

OdpDriver::OdpDriver(EventQueue& events, Rng& rng,
                     mem::AddressSpace& memory, FaultTiming timing)
    : events_(events), rng_(rng), memory_(memory), timing_(timing)
{
}

Time
OdpDriver::raiseFault(TranslationTable& table, std::uint64_t vaddr,
                      ResolveCallback on_resolved)
{
    assert(table.odp() && "faults only occur on ODP regions");
    const std::uint64_t page_idx = mem::pageOf(vaddr);
    const FaultKey key{&table, page_idx};

    auto it = pending_.find(key);
    if (it != pending_.end()) {
        // Fault already in flight for this page: coalesce.
        ++stats_.faultsCoalesced;
        if (on_resolved)
            it->second.callbacks.push_back(std::move(on_resolved));
        return it->second.resolveAt;
    }

    ++stats_.faultsRaised;
    Time latency = rng_.uniformTime(timing_.faultLatencyMin,
                                    timing_.faultLatencyMax);
    if (congestionProbe_) {
        // Flood congestion: the fault machinery is shared, so resolution
        // stretches while many QPs are stuck (Fig. 11's compounding).
        const double factor = std::max(1.0, congestionProbe_());
        latency = latency * factor;
    }
    if (latencyChaos_) {
        // Chaos-injected servicing stalls compose with (not replace) the
        // congestion model above.
        const double factor = std::max(1.0, latencyChaos_());
        latency = latency * factor;
    }
    const Time resolve_at = events_.now() + latency;
    PendingFault fault;
    fault.resolveAt = resolve_at;
    if (on_resolved)
        fault.callbacks.push_back(std::move(on_resolved));
    pending_.emplace(key, std::move(fault));

    IBSIM_TRACE(traceOdp, events_.now(),
                "page fault raised page=" + std::to_string(page_idx) +
                    " resolves in " + latency.str());

    events_.schedule(resolve_at,
                     [this, &table, page_idx] { resolve(table, page_idx); });
    return resolve_at;
}

bool
OdpDriver::faultInFlight(const TranslationTable& table,
                         std::uint64_t vaddr) const
{
    return pending_.count({&table, mem::pageOf(vaddr)}) > 0;
}

void
OdpDriver::resolve(TranslationTable& table, std::uint64_t page_idx)
{
    const std::uint64_t vaddr = page_idx * mem::pageSize;
    memory_.populatePage(vaddr);
    table.mapPage(vaddr);
    ++stats_.faultsResolved;

    IBSIM_TRACE(traceOdp, events_.now(),
                "page fault resolved page=" +
                    std::to_string(page_idx));

    auto it = pending_.find({&table, page_idx});
    assert(it != pending_.end());
    auto callbacks = std::move(it->second.callbacks);
    pending_.erase(it);

    if (resolutionObserver_)
        resolutionObserver_(table, page_idx);
    for (auto& cb : callbacks)
        cb();
}

void
OdpDriver::invalidate(TranslationTable& table, std::uint64_t vaddr)
{
    ++stats_.invalidations;
    events_.scheduleAfter(timing_.invalidateLatency,
                          [this, &table, vaddr] {
                              memory_.releasePage(vaddr);
                              table.invalidatePage(vaddr);
                              IBSIM_TRACE(traceOdp, events_.now(),
                                          "page invalidated page=" +
                                              std::to_string(
                                                  mem::pageOf(vaddr)));
                          });
}

void
OdpDriver::prefetch(TranslationTable& table, std::uint64_t vaddr,
                    std::uint64_t len)
{
    if (len == 0)
        return;
    const std::uint64_t first = mem::pageOf(vaddr);
    const std::uint64_t last = mem::pageOf(vaddr + len - 1);
    std::uint64_t fresh = 0;
    for (std::uint64_t p = first; p <= last; ++p) {
        if (!table.mappedPage(p * mem::pageSize))
            ++fresh;
    }
    const Time cost = timing_.prefetchLatencyPerPage *
                      static_cast<double>(fresh == 0 ? 1 : fresh);
    events_.scheduleAfter(cost, [this, &table, first, last] {
        for (std::uint64_t p = first; p <= last; ++p) {
            const std::uint64_t va = p * mem::pageSize;
            if (!table.mappedPage(va)) {
                memory_.populatePage(va);
                table.mapPage(va);
                ++stats_.prefetchedPages;
                if (resolutionObserver_)
                    resolutionObserver_(table, p);
            }
        }
    });
}

} // namespace odp
} // namespace ibsim
