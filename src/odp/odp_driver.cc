#include "odp/odp_driver.hh"

#include <algorithm>
#include <cassert>
#include <utility>

#include "simcore/log.hh"

namespace ibsim {
namespace odp {

namespace {

log::Component traceOdp("odp");

} // namespace

OdpDriver::OdpDriver(EventQueue& events, Rng& rng,
                     mem::AddressSpace& memory, FaultTiming timing)
    : events_(events), rng_(rng), memory_(memory), timing_(timing)
{
}

Time
OdpDriver::drawFaultLatency()
{
    Time latency = rng_.uniformTime(timing_.faultLatencyMin,
                                    timing_.faultLatencyMax);
    if (congestionProbe_) {
        // Flood congestion: the fault machinery is shared, so resolution
        // stretches while many QPs are stuck (Fig. 11's compounding).
        const double factor = std::max(1.0, congestionProbe_());
        latency = latency * factor;
    }
    if (latencyChaos_) {
        // Chaos-injected servicing stalls compose with (not replace) the
        // congestion model above.
        const double factor = std::max(1.0, latencyChaos_());
        latency = latency * factor;
    }
    return latency;
}

Time
OdpDriver::raiseFault(TranslationTable& table, std::uint64_t vaddr,
                      ResolveCallback on_resolved)
{
    assert(table.odp() && "faults only occur on ODP regions");
    const std::uint64_t page_idx = mem::pageOf(vaddr);
    const Key key{&table, page_idx};

    if (Entry* entry = pages_.find(key)) {
        switch (entry->state) {
          case PageState::Faulting:
          case PageState::FaultingInvalidated:
            // Fault already in flight for this page: coalesce.
            ++stats_.faultsCoalesced;
            if (on_resolved)
                entry->callbacks.push_back(std::move(on_resolved));
            return entry->resolveAt;
          case PageState::Invalidating:
            if (entry->refault) {
                // A fault already queued behind this window: coalesce.
                ++stats_.faultsCoalesced;
                if (on_resolved)
                    entry->callbacks.push_back(std::move(on_resolved));
                return entry->resolveAt;
            }
            // The notifier window blocks the fault handler (the kernel's
            // mmu_interval_read_retry loop): the fault only starts
            // resolving at invalidate_end.
            ++stats_.faultsRaised;
            ++stats_.faultsQueuedBehindWindow;
            entry->refault = true;
            entry->refaultLatency = drawFaultLatency();
            entry->resolveAt = entry->windowEndAt + entry->refaultLatency;
            if (on_resolved)
                entry->callbacks.push_back(std::move(on_resolved));
            IBSIM_TRACE(traceOdp, events_.now(),
                        "page fault queued behind notifier window page=" +
                            std::to_string(page_idx));
            return entry->resolveAt;
          default:
            assert(false && "transient entry in a steady state");
            break;
        }
    }

    ++stats_.faultsRaised;
    const Time latency = drawFaultLatency();
    const Time resolve_at = events_.now() + latency;
    Entry& entry = pages_.enter(key, PageState::NotPresent,
                                PageState::Faulting);
    entry.resolveAt = resolve_at;
    entry.windowsOverlapped = openWindowsOn(&table);
    if (on_resolved)
        entry.callbacks.push_back(std::move(on_resolved));
    const std::uint64_t epoch = ++entry.faultEpoch;

    IBSIM_TRACE(traceOdp, events_.now(),
                "page fault raised page=" + std::to_string(page_idx) +
                    " resolves in " + latency.str());

    events_.schedule(resolve_at, [this, &table, page_idx, epoch] {
        completeFault(table, page_idx, epoch);
    });
    maybeAutoPrefetch(table, page_idx);
    return resolve_at;
}

bool
OdpDriver::faultInFlight(const TranslationTable& table,
                         std::uint64_t vaddr) const
{
    const Entry* entry = pages_.find({&table, mem::pageOf(vaddr)});
    if (!entry)
        return false;
    // A fault queued behind a notifier window counts: callbacks are
    // registered and a resolution is guaranteed to fire.
    return entry->state == PageState::Faulting ||
           entry->state == PageState::FaultingInvalidated ||
           (entry->state == PageState::Invalidating && entry->refault);
}

PageState
OdpDriver::pageState(const TranslationTable& table,
                     std::uint64_t vaddr) const
{
    const std::uint64_t page_idx = mem::pageOf(vaddr);
    return pages_.state({&table, page_idx},
                        table.mappedPage(page_idx * mem::pageSize));
}

bool
OdpDriver::pageTransient(const TranslationTable& table,
                         std::uint64_t vaddr) const
{
    return pages_.find({&table, mem::pageOf(vaddr)}) != nullptr;
}

void
OdpDriver::completeFault(TranslationTable& table, std::uint64_t page_idx,
                         std::uint64_t epoch)
{
    const Key key{&table, page_idx};
    Entry* entry = pages_.find(key);
    if (!entry || entry->faultEpoch != epoch)
        return; // Superseded: the fault restarted under a newer epoch.
    if (entry->state != PageState::Faulting) {
        // invalidate_start doomed this attempt (FaultingInvalidated);
        // invalidate_end will restart it from the top of the handler.
        IBSIM_TRACE(traceOdp, events_.now(),
                    "fault resolution discarded by notifier window page=" +
                        std::to_string(page_idx));
        return;
    }

    const std::uint64_t vaddr = page_idx * mem::pageSize;
    memory_.populatePage(vaddr);
    table.mapPage(vaddr);
    ++stats_.faultsResolved;

    IBSIM_TRACE(traceOdp, events_.now(),
                "page fault resolved page=" +
                    std::to_string(page_idx));

    const std::uint32_t contention = entry->windowsOverlapped;
    auto callbacks = std::move(entry->callbacks);
    pages_.leave(key, PageState::Present);

    const auto extra = expandHugeMapping(table, page_idx);

    if (resolutionObserver_) {
        resolutionObserver_(table, page_idx, contention);
        for (std::uint64_t p : extra)
            resolutionObserver_(table, p, 0);
    }
    for (auto& cb : callbacks)
        cb();
}

std::vector<std::uint64_t>
OdpDriver::expandHugeMapping(TranslationTable& table,
                             std::uint64_t page_idx)
{
    std::vector<std::uint64_t> extra;
    if (!timing_.pageStateMachine || !timing_.hugePages ||
        timing_.hugePageSpan <= 1)
        return extra;
    const std::uint64_t span = timing_.hugePageSpan;
    const std::uint64_t base = page_idx - (page_idx % span);
    for (std::uint64_t p = base; p < base + span; ++p) {
        if (p == page_idx)
            continue;
        const std::uint64_t va = p * mem::pageSize;
        // Pages another fault or an open window owns stay theirs: the
        // huge mapping installs around them, never over them.
        if (table.mappedPage(va) || pages_.find({&table, p}))
            continue;
        memory_.populatePage(va);
        table.mapPage(va);
        extra.push_back(p);
    }
    if (!extra.empty()) {
        ++stats_.hugeMappings;
        stats_.hugePagesMapped += extra.size();
        IBSIM_TRACE(traceOdp, events_.now(),
                    "huge mapping installed base=" + std::to_string(base) +
                        " pages=" + std::to_string(extra.size() + 1));
    }
    return extra;
}

void
OdpDriver::invalidate(TranslationTable& table, std::uint64_t vaddr)
{
    ++stats_.invalidations;
    if (!timing_.pageStateMachine) {
        // Legacy latency-draw model: blind unmap after invalidateLatency,
        // with no knowledge of in-flight faults — the historical race
        // class, kept for golden-trace compatibility.
        events_.scheduleAfter(timing_.invalidateLatency,
                              [this, &table, vaddr] {
                                  memory_.releasePage(vaddr);
                                  table.invalidatePage(vaddr);
                                  IBSIM_TRACE(traceOdp, events_.now(),
                                              "page invalidated page=" +
                                                  std::to_string(
                                                      mem::pageOf(vaddr)));
                              });
        return;
    }

    const std::uint64_t page_idx = mem::pageOf(vaddr);
    if (timing_.hugePages && timing_.hugePageSpan > 1) {
        // Reclaim splits the huge mapping: every page of the aligned
        // block goes through its own invalidate_start.
        const std::uint64_t span = timing_.hugePageSpan;
        const std::uint64_t base = page_idx - (page_idx % span);
        for (std::uint64_t p = base; p < base + span; ++p) {
            if (p == page_idx) {
                invalidateOne(table, p);
                continue;
            }
            const std::uint64_t va = p * mem::pageSize;
            if (table.mappedPage(va) || pages_.find({&table, p}))
                invalidateOne(table, p);
        }
        return;
    }
    invalidateOne(table, page_idx);
}

void
OdpDriver::invalidateOne(TranslationTable& table, std::uint64_t page_idx)
{
    const Key key{&table, page_idx};
    const std::uint64_t vaddr = page_idx * mem::pageSize;
    const Time end_at = events_.now() + timing_.invalidateLatency;

    Entry* entry = pages_.find(key);
    if (!entry) {
        // invalidate_start: the RNIC translation is flushed NOW — new
        // translations stay blocked for the whole window. The host frame
        // is only released at invalidate_end.
        const bool was_mapped = table.invalidatePage(vaddr);
        Entry& fresh = pages_.enter(key,
                                    was_mapped ? PageState::Present
                                               : PageState::NotPresent,
                                    PageState::Invalidating);
        fresh.windowEndAt = end_at;
        const std::uint64_t wepoch = ++fresh.windowEpoch;
        openWindow(&table);
        ++stats_.notifierWindows;
        IBSIM_TRACE(traceOdp, events_.now(),
                    "invalidate_start page=" + std::to_string(page_idx));
        events_.schedule(end_at, [this, &table, page_idx, wepoch] {
            invalidateEnd(table, page_idx, wepoch);
        });
        return;
    }

    switch (entry->state) {
      case PageState::Faulting: {
        // invalidate_start lands mid-fault: doom the in-flight
        // resolution. The fault restarts at invalidate_end.
        pages_.transition(*entry, PageState::FaultingInvalidated);
        entry->windowEndAt = end_at;
        const std::uint64_t wepoch = ++entry->windowEpoch;
        openWindow(&table);
        ++stats_.notifierWindows;
        IBSIM_TRACE(traceOdp, events_.now(),
                    "invalidate_start dooms in-flight fault page=" +
                        std::to_string(page_idx));
        events_.schedule(end_at, [this, &table, page_idx, wepoch] {
            invalidateEnd(table, page_idx, wepoch);
        });
        break;
      }
      case PageState::Invalidating:
      case PageState::FaultingInvalidated: {
        // A second invalidation inside an open window extends it; the
        // superseded invalidate_end is discarded via the epoch.
        ++stats_.invalidationsCoalesced;
        if (end_at > entry->windowEndAt) {
            entry->windowEndAt = end_at;
            const std::uint64_t wepoch = ++entry->windowEpoch;
            if (entry->refault)
                entry->resolveAt = end_at + entry->refaultLatency;
            events_.schedule(end_at, [this, &table, page_idx, wepoch] {
                invalidateEnd(table, page_idx, wepoch);
            });
        }
        break;
      }
      default:
        assert(false && "transient entry in a steady state");
        break;
    }
}

void
OdpDriver::invalidateEnd(TranslationTable& table, std::uint64_t page_idx,
                         std::uint64_t window_epoch)
{
    const Key key{&table, page_idx};
    Entry* entry = pages_.find(key);
    if (!entry || entry->windowEpoch != window_epoch)
        return; // The window was extended: a newer end event owns it.
    assert(entry->state == PageState::Invalidating ||
           entry->state == PageState::FaultingInvalidated);

    const std::uint64_t vaddr = page_idx * mem::pageSize;
    // invalidate_end: the quiesce is complete and the kernel takes the
    // host frame back.
    memory_.releasePage(vaddr);
    closeWindow(&table);
    IBSIM_TRACE(traceOdp, events_.now(),
                "page invalidated page=" + std::to_string(page_idx));

    if (entry->state == PageState::FaultingInvalidated) {
        // The doomed fault retries from the top of the handler with a
        // fresh latency draw.
        ++stats_.faultRetries;
        pages_.transition(*entry, PageState::Faulting);
        const Time latency = drawFaultLatency();
        entry->resolveAt = events_.now() + latency;
        entry->windowsOverlapped = openWindowsOn(&table);
        const std::uint64_t epoch = ++entry->faultEpoch;
        IBSIM_TRACE(traceOdp, events_.now(),
                    "page fault retries page=" + std::to_string(page_idx) +
                        " resolves in " + latency.str());
        events_.schedule(entry->resolveAt,
                         [this, &table, page_idx, epoch] {
                             completeFault(table, page_idx, epoch);
                         });
        return;
    }

    if (entry->refault) {
        // The fault that queued behind the window starts resolving now,
        // with the latency drawn when it arrived.
        pages_.transition(*entry, PageState::Faulting);
        entry->refault = false;
        entry->resolveAt = events_.now() + entry->refaultLatency;
        entry->windowsOverlapped = openWindowsOn(&table);
        const std::uint64_t epoch = ++entry->faultEpoch;
        IBSIM_TRACE(traceOdp, events_.now(),
                    "queued fault starts page=" + std::to_string(page_idx));
        events_.schedule(entry->resolveAt,
                         [this, &table, page_idx, epoch] {
                             completeFault(table, page_idx, epoch);
                         });
        return;
    }

    pages_.leave(key, PageState::NotPresent);
}

void
OdpDriver::prefetch(TranslationTable& table, std::uint64_t vaddr,
                    std::uint64_t len)
{
    if (len == 0)
        return;
    const std::uint64_t first = mem::pageOf(vaddr);
    const std::uint64_t last = mem::pageOf(vaddr + len - 1);

    if (!timing_.pageStateMachine) {
        // Legacy model: the sweep re-checks mappedPage but not the fault
        // table, so a prefetch firing before a concurrent fault's
        // resolution double-populates the page (the historical
        // faultsResolved/prefetchedPages drift).
        std::uint64_t fresh = 0;
        for (std::uint64_t p = first; p <= last; ++p) {
            if (!table.mappedPage(p * mem::pageSize))
                ++fresh;
        }
        const Time cost = timing_.prefetchLatencyPerPage *
                          static_cast<double>(fresh == 0 ? 1 : fresh);
        events_.scheduleAfter(cost, [this, &table, first, last] {
            for (std::uint64_t p = first; p <= last; ++p) {
                const std::uint64_t va = p * mem::pageSize;
                if (!table.mappedPage(va)) {
                    memory_.populatePage(va);
                    table.mapPage(va);
                    ++stats_.prefetchedPages;
                    if (resolutionObserver_)
                        resolutionObserver_(table, p, 0);
                }
            }
        });
        return;
    }

    // Cost covers only the pages the advise will actually resolve: pages
    // a fault or a notifier window owns belong to those paths.
    std::uint64_t fresh = 0;
    for (std::uint64_t p = first; p <= last; ++p) {
        if (!table.mappedPage(p * mem::pageSize) &&
            !pages_.find({&table, p}))
            ++fresh;
    }
    const Time cost = timing_.prefetchLatencyPerPage *
                      static_cast<double>(fresh == 0 ? 1 : fresh);
    events_.scheduleAfter(cost, [this, &table, first, last] {
        prefetchSweep(table, first, last);
    });
}

void
OdpDriver::prefetchSweep(TranslationTable& table, std::uint64_t first,
                         std::uint64_t last)
{
    for (std::uint64_t p = first; p <= last; ++p) {
        const std::uint64_t va = p * mem::pageSize;
        if (table.mappedPage(va))
            continue;
        if (pages_.find({&table, p})) {
            // A fault owns the page or a notifier window is open: the
            // advise must neither double-populate nor bypass the
            // quiesce. The owning path will finish the page.
            ++stats_.prefetchSkippedBusy;
            continue;
        }
        memory_.populatePage(va);
        table.mapPage(va);
        ++stats_.prefetchedPages;
        if (resolutionObserver_)
            resolutionObserver_(table, p, 0);
    }
}

void
OdpDriver::maybeAutoPrefetch(TranslationTable& table,
                             std::uint64_t page_idx)
{
    if (!timing_.pageStateMachine ||
        timing_.prefetchPolicy == PrefetchPolicy::None ||
        timing_.prefetchWidth == 0)
        return;
    if (timing_.prefetchPolicy == PrefetchPolicy::SequentialDetect) {
        SeqState& s = seq_[&table];
        const bool sequential = s.valid && page_idx == s.lastPage + 1;
        s.lastPage = page_idx;
        s.valid = true;
        s.streak = sequential ? s.streak + 1 : 0;
        if (s.streak < 1)
            return; // Need two consecutive faulting pages to trigger.
    }
    ++stats_.autoPrefetches;
    prefetch(table, (page_idx + 1) * mem::pageSize,
             timing_.prefetchWidth * mem::pageSize);
}

std::uint32_t
OdpDriver::openWindowsOn(const TranslationTable* table) const
{
    auto it = openWindows_.find(table);
    return it == openWindows_.end() ? 0 : it->second;
}

void
OdpDriver::openWindow(const TranslationTable* table)
{
    ++openWindows_[table];
    pages_.noteWindowOpened(table);
}

void
OdpDriver::closeWindow(const TranslationTable* table)
{
    auto it = openWindows_.find(table);
    assert(it != openWindows_.end() && it->second > 0);
    if (it == openWindows_.end())
        return;
    if (--it->second == 0)
        openWindows_.erase(it);
}

} // namespace odp
} // namespace ibsim
