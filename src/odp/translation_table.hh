/**
 * @file
 * RNIC-side virtual-to-physical translation table for one memory region.
 *
 * Pinned memory regions are fully mapped at registration time and never
 * change. ODP regions start empty; pages get mapped when the driver
 * resolves a network page fault and unmapped again on invalidation
 * (paper Secs. II-A, III-A).
 */

#ifndef IBSIM_ODP_TRANSLATION_TABLE_HH
#define IBSIM_ODP_TRANSLATION_TABLE_HH

#include <cstdint>
#include <unordered_set>

#include "mem/address_space.hh"

namespace ibsim {
namespace odp {

/**
 * Per-MR page mapping state inside the RNIC.
 */
class TranslationTable
{
  public:
    /**
     * @param odp true for an on-demand region (starts unmapped); false for
     *        a pinned region (the owner maps everything up front).
     */
    explicit TranslationTable(bool odp) : odp_(odp) {}

    bool odp() const { return odp_; }

    /** Whether the page holding @p vaddr has a valid translation. */
    bool
    mappedPage(std::uint64_t vaddr) const
    {
        if (!odp_)
            return true;
        return mapped_.count(mem::pageOf(vaddr)) > 0;
    }

    /** Whether every page of [vaddr, vaddr + len) is mapped. */
    bool mappedRange(std::uint64_t vaddr, std::uint64_t len) const;

    /**
     * First unmapped page address in [vaddr, vaddr + len), or 0 when the
     * whole range is mapped. (Address 0 is never inside a region.)
     */
    std::uint64_t firstUnmapped(std::uint64_t vaddr,
                                std::uint64_t len) const;

    /** Install a translation for the page holding @p vaddr. */
    void mapPage(std::uint64_t vaddr) { mapped_.insert(mem::pageOf(vaddr)); }

    /** Install translations for a whole range. */
    void mapRange(std::uint64_t vaddr, std::uint64_t len);

    /**
     * Flush the translation of the page holding @p vaddr.
     * @return true if an entry was actually removed.
     */
    bool
    invalidatePage(std::uint64_t vaddr)
    {
        return mapped_.erase(mem::pageOf(vaddr)) > 0;
    }

    /** Number of mapped pages (0 means nothing faulted in yet). */
    std::size_t mappedPages() const { return mapped_.size(); }

  private:
    bool odp_;
    std::unordered_set<std::uint64_t> mapped_;
};

} // namespace odp
} // namespace ibsim

#endif // IBSIM_ODP_TRANSLATION_TABLE_HH
