/**
 * @file
 * Client-side page-status view tracking — the packet-flood quirk.
 *
 * The paper's Sec. VI finds that with many QPs faulting concurrently under
 * client-side ODP, QPs keep retransmitting and discarding responses long
 * after the page fault itself resolved: their view of the page status fails
 * to update. This board models that per-QP view. Each faulting (QP, page)
 * pair registers as a waiter; when the driver maps the page the board
 * refreshes waiters' views promptly — unless the update-failure conditions
 * hit (see FloodQuirkConfig), in which case the waiter joins a slow,
 * rate-limited refresh queue whose service time grows with the stale
 * population.
 *
 * The requester engine treats a response as unusable while either the local
 * page is unmapped or the view is stale, which is exactly the observable
 * behaviour the paper reverse-engineered (Fig. 11).
 */

#ifndef IBSIM_ODP_PAGE_STATUS_BOARD_HH
#define IBSIM_ODP_PAGE_STATUS_BOARD_HH

#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "odp/odp_config.hh"
#include "odp/translation_table.hh"
#include "simcore/event_queue.hh"
#include "simcore/rng.hh"

namespace ibsim {
namespace odp {

/** Counters for flood analysis. */
struct BoardStats
{
    std::uint64_t waitersRegistered = 0;
    std::uint64_t promptUpdates = 0;
    std::uint64_t updateFailures = 0;
    std::uint64_t slowRefreshes = 0;
};

/**
 * Per-RNIC board of QP page-status views.
 */
class PageStatusBoard
{
  public:
    PageStatusBoard(EventQueue& events, Rng& rng, FloodQuirkConfig config);

    /**
     * Record that @p qpn is waiting on a fault for @p page_idx of
     * @p table. Idempotent per (table, page, qpn); the first registration
     * time decides staleness.
     */
    void registerWaiter(const TranslationTable* table,
                        std::uint64_t page_idx, std::uint32_t qpn);

    /** Drop a waiter (QP flushed or destroyed). */
    void unregisterWaiter(const TranslationTable* table,
                          std::uint64_t page_idx, std::uint32_t qpn);

    /**
     * Whether @p qpn's view of the page status is up to date. True when the
     * QP never waited on the page or its refresh already landed.
     */
    bool fresh(const TranslationTable* table, std::uint64_t page_idx,
               std::uint32_t qpn) const;

    /**
     * Driver observer: the page's translation was just installed.
     * @p contention is the number of MMU-notifier windows that overlapped
     * the fault on the same table (0 for prefetch-resolved pages); it
     * drives the mechanistic update-failure trigger when
     * FloodQuirkConfig::notifierContention is set.
     */
    void onPageMapped(const TranslationTable& table, std::uint64_t page_idx,
                      std::uint32_t contention = 0);

    /** Waiters currently stale (update failed, slow refresh pending). */
    std::size_t staleCount() const { return slowQueue_.size(); }

    /** Waiters currently registered (pre- or post-failure). */
    std::size_t waiterCount() const { return waiters_.size(); }

    const BoardStats& stats() const { return stats_; }
    const FloodQuirkConfig& config() const { return config_; }

  private:
    struct Waiter
    {
        Time since;
        bool stale = false;
    };

    using Key =
        std::tuple<const TranslationTable*, std::uint64_t, std::uint32_t>;

    /** Kick the slow-refresh service if it is idle. */
    void scheduleService(Time lead);

    /** Remove every queued copy of @p key (post-fix accounting). */
    void purgeFromSlowQueue(const Key& key);

    /** Serve one slow refresh from the queue. */
    void serviceFired();

    EventQueue& events_;
    Rng& rng_;
    FloodQuirkConfig config_;
    std::map<Key, Waiter> waiters_;

    /** LIFO queue of stale waiters awaiting the slow refresh. */
    std::vector<Key> slowQueue_;
    bool serviceRunning_ = false;
    EventHandle serviceTimer_;

    BoardStats stats_;
};

} // namespace odp
} // namespace ibsim

#endif // IBSIM_ODP_PAGE_STATUS_BOARD_HH
