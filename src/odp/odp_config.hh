/**
 * @file
 * Tunable parameters of the ODP model.
 *
 * The values mirror what the paper measured on ConnectX-4 (KNL system)
 * unless stated otherwise; DeviceProfile embeds one OdpConfig per modeled
 * RNIC. See DESIGN.md section 4 for the evidence behind each default.
 */

#ifndef IBSIM_ODP_ODP_CONFIG_HH
#define IBSIM_ODP_ODP_CONFIG_HH

#include <cstddef>
#include <cstdint>

#include "simcore/time.hh"

namespace ibsim {
namespace odp {

/**
 * Driver-side speculative prefetch policy (DESIGN.md section 14): which
 * pages the driver pre-resolves alongside a demand fault.
 */
enum class PrefetchPolicy : std::uint8_t
{
    /** Demand faulting only (every device the paper measured). */
    None,
    /** Every fault also pre-resolves the next prefetchWidth pages. */
    FixedWidth,
    /**
     * Pre-resolve only when the fault stream looks sequential (two
     * consecutive faulting pages), then fetch prefetchWidth ahead.
     */
    SequentialDetect,
};

/**
 * Driver / RNIC timing for page fault handling.
 */
struct FaultTiming
{
    /**
     * Per-page state machine + MMU-notifier two-phase invalidation
     * (DESIGN.md section 14). On (the default), every ODP page moves
     * through NotPresent/Faulting/Present/Invalidating/
     * FaultingInvalidated under legal-edge enforcement:
     * invalidate_start flushes the RNIC translation immediately and
     * opens a quiesce window, invalidate_end releases the host frame,
     * and faults/prefetches that collide with a window serialize behind
     * it instead of racing. Off restores the pre-state-machine latency
     * draw: invalidations blindly unmap after invalidateLatency and
     * prefetch ignores in-flight faults — the historical race class,
     * kept for golden-trace compatibility and flag-flip regression
     * tests.
     */
    bool pageStateMachine = true;

    /**
     * Huge-page mapping: one fault installs the whole aligned
     * hugePageSpan block (2 MiB at the default 512 x 4 KiB), skipping
     * pages another fault or notifier window owns. Invalidation then
     * splits the block: reclaiming any page unmaps every page of its
     * aligned block (THP-style). Requires pageStateMachine.
     */
    bool hugePages = false;

    /** Pages per huge mapping (512 x 4 KiB = 2 MiB). */
    std::uint64_t hugePageSpan = 512;

    /** Driver-side speculative prefetch (requires pageStateMachine). */
    PrefetchPolicy prefetchPolicy = PrefetchPolicy::None;

    /** Pages fetched ahead per policy trigger. */
    std::uint64_t prefetchWidth = 8;

    /**
     * Fault resolution latency bounds; actual latency is drawn uniformly.
     * The paper reports 250-1000 us as the common-case band (Fig. 9a).
     */
    Time faultLatencyMin = Time::us(250);
    Time faultLatencyMax = Time::us(1000);

    /**
     * Fault resolution slows under flood congestion: the effective
     * latency is scaled by (1 + faultLoadFactor * stale waiters). The
     * driver and RNIC fault machinery are shared resources; Fig. 11a's
     * fault resolved only at ~1 ms with 128 QPs waiting.
     */
    double faultLoadFactor = 0.1;

    /** Cost of invalidating one page (flush + kernel round trip). */
    Time invalidateLatency = Time::us(30);

    /** Cost of a prefetch advise per page (no interrupt needed). */
    Time prefetchLatencyPerPage = Time::us(15);
};

/**
 * The page-status update-failure quirk behind packet flood
 * (paper Sec. VI, DESIGN.md modeling decision #5).
 *
 * When a fault resolves, the RNIC promptly refreshes the page-status view
 * of the waiting QPs -- unless there are more than updateFanout waiters,
 * in which case the QPs that were already mid-retransmission (registered
 * more than staleThreshold before the resolution, i.e. at least one blind
 * retransmission deep) miss the update. Those QPs recover only through a
 * slow refresh path: a rate-limited queue whose per-item service time
 * grows with the stale population, so heavy floods drain slowly -- the
 * load dependence the paper observes between Fig. 11a (milliseconds) and
 * Fig. 11b / Fig. 9a (seconds).
 */
struct FloodQuirkConfig
{
    /** Master switch; the quirk exists on every device the paper tested. */
    bool enabled = true;

    /** Prompt-update capacity per fault resolution (the >10 QP knee). */
    std::size_t updateFanout = 10;

    /**
     * Waiters registered more than this long before the resolution have
     * blindly retransmitted at least once and miss the prompt update.
     * Matches the client-side retransmission interval.
     */
    Time staleThreshold = Time::us(500);

    /** Dead time before the slow refresh path serves its first waiter. */
    Time slowUpdateBase = Time::ms(2.5);

    /** Base service time per slow refresh. */
    Time slowServiceBase = Time::us(100);

    /**
     * Service time grows quadratically with the *active waiter*
     * population on the whole RNIC (stale or still faulting): the factor
     * is 1 + (loadFactor * waiters)^2, capped at maxServiceFactor. The
     * driver shares its capacity with the flood's interrupt load, which
     * is what stretches Fig. 11b into hundreds of milliseconds and
     * Fig. 9a into seconds while keeping Fig. 11a's single-page drain in
     * the milliseconds.
     */
    double loadFactor = 1.0 / 20.0;

    /** Upper bound on the load multiplier (bounds one refresh's cost). */
    double maxServiceFactor = 100.0;

    /**
     * Mechanistic update-failure trigger (DESIGN.md section 14): when
     * true, a resolution's prompt updates fail for its stale waiters
     * when the fault overlapped at least contentionThreshold
     * MMU-notifier windows on the same region — the page-status queue
     * loses the race against concurrent invalidation traffic — instead
     * of the fanout/staleness conjecture above. Off by default so every
     * existing golden stands; the fanout draw remains the documented
     * paper-facing model.
     */
    bool notifierContention = false;

    /** Overlapping windows needed to fail the prompt update. */
    std::uint32_t contentionThreshold = 1;

    /**
     * Pre-fix slow-queue accounting: a waiter that went stale twice
     * (page remapped after an invalidation mid-flood) was pushed into
     * the slow queue again, unregisterWaiter() purged only the first
     * copy, and serviceFired() burned rate-limited service slots
     * refreshing keys whose waiters were already flushed or destroyed
     * — staleCount() over-reported and the flood drain stretched.
     * Kept as a flag-flip regression switch; off everywhere.
     */
    bool staleQueueDeadKeyBug = false;
};

} // namespace odp
} // namespace ibsim

#endif // IBSIM_ODP_ODP_CONFIG_HH
