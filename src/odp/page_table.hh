/**
 * @file
 * Per-page state machine of the ODP driver (DESIGN.md section 14).
 *
 * Every ODP page the driver is actively working on has an explicit state:
 *
 *     NotPresent ──raiseFault──▶ Faulting ──resolve──▶ Present
 *         ▲                        │                      │
 *         │              invalidate_start       invalidate_start
 *   invalidate_end                 ▼                      ▼
 *         └──────────────── FaultingInvalidated     Invalidating
 *                                  │                      │
 *                           invalidate_end         invalidate_end
 *                            (fault retries)   (NotPresent, or Faulting
 *                                  ▼            when a fault queued
 *                               Faulting        behind the window)
 *
 * The map only stores entries for pages in a transient state (Faulting,
 * Invalidating, FaultingInvalidated); Present and NotPresent are derived
 * from the RNIC translation table. Transitions are checked against the
 * legal-edge table above, so an impossible interleaving asserts instead
 * of silently corrupting page state — the structural guarantee behind
 * the fault/invalidate/prefetch race fixes.
 */

#ifndef IBSIM_ODP_PAGE_TABLE_HH
#define IBSIM_ODP_PAGE_TABLE_HH

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "simcore/event_queue.hh"
#include "simcore/time.hh"

namespace ibsim {
namespace odp {

class TranslationTable;

/** Lifecycle state of one ODP page, as the driver sees it. */
enum class PageState : std::uint8_t
{
    /** No host frame, no RNIC translation (initial state). */
    NotPresent,
    /** A network fault is being resolved (interrupt + allocation). */
    Faulting,
    /** Host frame present and RNIC translation installed. */
    Present,
    /** MMU-notifier window open: invalidate_start ran, end pending. */
    Invalidating,
    /** An invalidation landed mid-fault; the fault must retry. */
    FaultingInvalidated,
};

const char* pageStateName(PageState state);

/** Whether @p from -> @p to is a legal edge of the state machine. */
bool pageTransitionLegal(PageState from, PageState to);

/** Transition counters, exported through OdpDriver::stats(). */
struct PageTableStats
{
    std::uint64_t transitions = 0;
    std::uint64_t illegalTransitionsBlocked = 0;
};

/**
 * Storage + transition enforcement for the driver's transient pages.
 *
 * The driver owns the policy (when to schedule what); this class owns the
 * invariant that page state only ever moves along legal edges.
 */
class OdpPageTable
{
  public:
    using Key = std::pair<const TranslationTable*, std::uint64_t>;

    /** One transient page. */
    struct Entry
    {
        PageState state = PageState::NotPresent;

        /** Callbacks to fire when the page finally becomes Present. */
        std::vector<EventQueue::Callback> callbacks;

        /** Scheduled (or estimated) resolution time of the live fault. */
        Time resolveAt;

        /** Guards scheduled resolve events against superseded attempts. */
        std::uint64_t faultEpoch = 0;

        /** Guards scheduled invalidate_end events against extensions. */
        std::uint64_t windowEpoch = 0;

        /** When Invalidating / FaultingInvalidated: invalidate_end time. */
        Time windowEndAt;

        /** A fault arrived during the notifier window (Invalidating). */
        bool refault = false;

        /** Latency drawn for the fault queued behind the window. */
        Time refaultLatency;

        /**
         * Notifier windows that overlapped this fault's lifetime on the
         * same table — the contention signal behind the mechanistic
         * flood-quirk trigger (FloodQuirkConfig::notifierContention).
         */
        std::uint32_t windowsOverlapped = 0;
    };

    /** Entry for the page, or nullptr when Present / NotPresent. */
    Entry* find(const Key& key);
    const Entry* find(const Key& key) const;

    /**
     * Effective state of a page: the entry's state when transient,
     * otherwise Present/NotPresent per @p mapped.
     */
    PageState state(const Key& key, bool mapped) const;

    /**
     * Create the entry for a page entering @p to from Present/NotPresent
     * (@p from). Asserts the edge is legal and the page had no entry.
     */
    Entry& enter(const Key& key, PageState from, PageState to);

    /**
     * Move an existing entry along the @p to edge. Asserts legality.
     */
    void transition(Entry& entry, PageState to);

    /**
     * Retire the entry: the page reached Present (fault resolved) or
     * NotPresent (invalidate_end with no queued fault).
     */
    void leave(const Key& key, PageState to);

    /** Transient entries for @p table (Faulting/Invalidating/...). */
    std::size_t transientPages(const TranslationTable* table) const;

    /** All transient entries, for observability. */
    std::size_t size() const { return entries_.size(); }

    /**
     * Bump the overlap counter of every in-flight fault on @p table —
     * called when a notifier window opens.
     */
    void noteWindowOpened(const TranslationTable* table);

    const PageTableStats& stats() const { return stats_; }

    /** Iteration support (tests / observability). */
    const std::map<Key, Entry>& entries() const { return entries_; }

  private:
    std::map<Key, Entry> entries_;
    PageTableStats stats_;
};

} // namespace odp
} // namespace ibsim

#endif // IBSIM_ODP_PAGE_TABLE_HH
