/**
 * @file
 * The ODP kernel driver model for one node.
 *
 * When the RNIC touches an unmapped page of an ODP region it raises a
 * network page fault here. The driver resolves it after the configured
 * latency (interrupt + kernel page allocation + table update, paper
 * Sec. III-A), populates the host page, installs the RNIC translation, and
 * fires the callbacks registered for that fault. Concurrent faults on the
 * same page coalesce into one resolution. Invalidation runs the reverse
 * flow, and prefetch (ibv_advise_mr-style) resolves pages without an
 * RNIC-side fault.
 */

#ifndef IBSIM_ODP_ODP_DRIVER_HH
#define IBSIM_ODP_ODP_DRIVER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "mem/address_space.hh"
#include "odp/odp_config.hh"
#include "odp/translation_table.hh"
#include "simcore/event_queue.hh"
#include "simcore/rng.hh"

namespace ibsim {
namespace odp {

/** Counters exposed for experiment analysis. */
struct DriverStats
{
    std::uint64_t faultsRaised = 0;
    std::uint64_t faultsCoalesced = 0;
    std::uint64_t faultsResolved = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t prefetchedPages = 0;
};

/**
 * Per-node ODP driver.
 */
class OdpDriver
{
  public:
    /**
     * Fault-resolution callback. Inline-capacity callable: the per-fault
     * callback lists on the hot flood paths hold these without a heap
     * allocation per registered waiter.
     */
    using ResolveCallback = EventQueue::Callback;

    OdpDriver(EventQueue& events, Rng& rng, mem::AddressSpace& memory,
              FaultTiming timing);

    /**
     * Raise a network page fault for the page holding @p vaddr in @p table.
     *
     * @param on_resolved invoked once the translation is installed; may be
     *        empty. Multiple faults on one in-flight page coalesce and all
     *        callbacks fire at the single resolution.
     * @return the virtual time at which the fault will resolve.
     */
    Time raiseFault(TranslationTable& table, std::uint64_t vaddr,
                    ResolveCallback on_resolved = {});

    /** Whether a fault on the page holding @p vaddr is in flight. */
    bool faultInFlight(const TranslationTable& table,
                       std::uint64_t vaddr) const;

    /**
     * Invalidate the page holding @p vaddr: the kernel reclaims the host
     * page and the RNIC translation is flushed after invalidateLatency.
     */
    void invalidate(TranslationTable& table, std::uint64_t vaddr);

    /** Pre-resolve all pages of [vaddr, vaddr+len) without faulting. */
    void prefetch(TranslationTable& table, std::uint64_t vaddr,
                  std::uint64_t len);

    /** Register an observer of page resolutions (the status board). */
    void
    setResolutionObserver(
        std::function<void(TranslationTable&, std::uint64_t page)> obs)
    {
        resolutionObserver_ = std::move(obs);
    }

    /**
     * Install a congestion probe: a multiplier (>= 1) applied to fault
     * resolution latency, typically fed by the status board's stale
     * count.
     */
    void
    setCongestionProbe(std::function<double()> probe)
    {
        congestionProbe_ = std::move(probe);
    }

    /**
     * Install a latency chaos probe (chaos engine): an additional
     * multiplier (>= 1 to slow, exactly 1.0 to pass through) applied to
     * fault resolution latency on top of the congestion probe. Kept
     * separate so fault campaigns compose with the flood congestion
     * model instead of replacing it.
     */
    void
    setLatencyChaos(std::function<double()> probe)
    {
        latencyChaos_ = std::move(probe);
    }

    const DriverStats& stats() const { return stats_; }
    const FaultTiming& timing() const { return timing_; }

  private:
    struct PendingFault
    {
        std::vector<ResolveCallback> callbacks;
        Time resolveAt;
    };

    using FaultKey = std::pair<const TranslationTable*, std::uint64_t>;

    void resolve(TranslationTable& table, std::uint64_t page_idx);

    EventQueue& events_;
    Rng& rng_;
    mem::AddressSpace& memory_;
    FaultTiming timing_;
    std::map<FaultKey, PendingFault> pending_;
    std::function<void(TranslationTable&, std::uint64_t)>
        resolutionObserver_;
    std::function<double()> congestionProbe_;
    std::function<double()> latencyChaos_;
    DriverStats stats_;
};

} // namespace odp
} // namespace ibsim

#endif // IBSIM_ODP_ODP_DRIVER_HH
