/**
 * @file
 * The ODP kernel driver model for one node.
 *
 * When the RNIC touches an unmapped page of an ODP region it raises a
 * network page fault here. The driver resolves it after the configured
 * latency (interrupt + kernel page allocation + table update, paper
 * Sec. III-A), populates the host page, installs the RNIC translation, and
 * fires the callbacks registered for that fault. Concurrent faults on the
 * same page coalesce into one resolution.
 *
 * Invalidation follows the kernel's MMU-notifier shape (DESIGN.md
 * section 14): invalidate_start flushes the RNIC translation immediately
 * and opens a quiesce window; invalidate_end (after invalidateLatency)
 * releases the host frame. Faults and prefetches that collide with the
 * window serialize behind it via the per-page state machine in
 * page_table.hh instead of racing the unmap. Prefetch (ibv_advise_mr
 * style) resolves pages without an RNIC-side fault, skipping pages a
 * fault or a window already owns.
 */

#ifndef IBSIM_ODP_ODP_DRIVER_HH
#define IBSIM_ODP_ODP_DRIVER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "mem/address_space.hh"
#include "odp/odp_config.hh"
#include "odp/page_table.hh"
#include "odp/translation_table.hh"
#include "simcore/event_queue.hh"
#include "simcore/rng.hh"

namespace ibsim {
namespace odp {

/** Counters exposed for experiment analysis. */
struct DriverStats
{
    std::uint64_t faultsRaised = 0;
    std::uint64_t faultsCoalesced = 0;
    std::uint64_t faultsResolved = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t prefetchedPages = 0;

    /** Doomed faults (FaultingInvalidated) restarted at invalidate_end. */
    std::uint64_t faultRetries = 0;
    /** Faults that arrived inside a notifier window and queued behind it. */
    std::uint64_t faultsQueuedBehindWindow = 0;
    /** Invalidations that landed inside an already-open window. */
    std::uint64_t invalidationsCoalesced = 0;
    /** Notifier windows opened (invalidate_start events). */
    std::uint64_t notifierWindows = 0;
    /** Faults that installed a whole aligned huge-page block. */
    std::uint64_t hugeMappings = 0;
    /** Extra pages mapped by huge-page expansion (excludes the fault). */
    std::uint64_t hugePagesMapped = 0;
    /** Prefetches issued by the driver-side policy (not the verbs API). */
    std::uint64_t autoPrefetches = 0;
    /** Prefetch pages skipped because a fault/window owned the page. */
    std::uint64_t prefetchSkippedBusy = 0;
};

/**
 * Per-node ODP driver.
 */
class OdpDriver
{
  public:
    /**
     * Fault-resolution callback. Inline-capacity callable: the per-fault
     * callback lists on the hot flood paths hold these without a heap
     * allocation per registered waiter.
     */
    using ResolveCallback = EventQueue::Callback;

    /**
     * Observer of page resolutions (the status board). The third argument
     * is the number of notifier windows that overlapped the fault's
     * lifetime on the same table (0 for prefetch-resolved pages) — the
     * contention signal behind FloodQuirkConfig::notifierContention.
     */
    using ResolutionObserver =
        std::function<void(TranslationTable&, std::uint64_t page,
                           std::uint32_t contention)>;

    OdpDriver(EventQueue& events, Rng& rng, mem::AddressSpace& memory,
              FaultTiming timing);

    /**
     * Raise a network page fault for the page holding @p vaddr in @p table.
     *
     * @param on_resolved invoked once the translation is installed; may be
     *        empty. Multiple faults on one in-flight page coalesce and all
     *        callbacks fire at the single resolution.
     * @return the virtual time at which the fault will resolve (an
     *         estimate when the fault queued behind a notifier window).
     */
    Time raiseFault(TranslationTable& table, std::uint64_t vaddr,
                    ResolveCallback on_resolved = {});

    /** Whether a fault on the page holding @p vaddr is in flight. */
    bool faultInFlight(const TranslationTable& table,
                       std::uint64_t vaddr) const;

    /**
     * Invalidate the page holding @p vaddr. With the state machine on,
     * invalidate_start flushes the RNIC translation now and opens a
     * quiesce window; invalidate_end releases the host frame after
     * invalidateLatency and restarts any fault that collided with the
     * window. With hugePages set the whole aligned block is invalidated
     * (reclaim splits the huge mapping). Legacy mode (pageStateMachine
     * off) blindly unmaps after invalidateLatency.
     */
    void invalidate(TranslationTable& table, std::uint64_t vaddr);

    /** Pre-resolve all pages of [vaddr, vaddr+len) without faulting. */
    void prefetch(TranslationTable& table, std::uint64_t vaddr,
                  std::uint64_t len);

    /** State of the page holding @p vaddr (derives Present/NotPresent). */
    PageState pageState(const TranslationTable& table,
                        std::uint64_t vaddr) const;

    /**
     * Whether the page holding @p vaddr is in a transient state
     * (Faulting / Invalidating / FaultingInvalidated) — i.e. the driver
     * is actively working on it. Chaos storms use this to target pages
     * mid-transition, not just mapped ones.
     */
    bool pageTransient(const TranslationTable& table,
                       std::uint64_t vaddr) const;

    /** The per-page state table (tests / observability). */
    const OdpPageTable& pageTable() const { return pages_; }

    /** Register an observer of page resolutions (the status board). */
    void
    setResolutionObserver(ResolutionObserver obs)
    {
        resolutionObserver_ = std::move(obs);
    }

    /**
     * Install a congestion probe: a multiplier (>= 1) applied to fault
     * resolution latency, typically fed by the status board's stale
     * count.
     */
    void
    setCongestionProbe(std::function<double()> probe)
    {
        congestionProbe_ = std::move(probe);
    }

    /**
     * Install a latency chaos probe (chaos engine): an additional
     * multiplier (>= 1 to slow, exactly 1.0 to pass through) applied to
     * fault resolution latency on top of the congestion probe. Kept
     * separate so fault campaigns compose with the flood congestion
     * model instead of replacing it.
     */
    void
    setLatencyChaos(std::function<double()> probe)
    {
        latencyChaos_ = std::move(probe);
    }

    const DriverStats& stats() const { return stats_; }
    const FaultTiming& timing() const { return timing_; }

  private:
    using Key = OdpPageTable::Key;
    using Entry = OdpPageTable::Entry;

    /** Draw one fault-resolution latency (uniform x congestion x chaos). */
    Time drawFaultLatency();

    /** Scheduled resolution of the fault on @p page_idx (epoch-guarded). */
    void completeFault(TranslationTable& table, std::uint64_t page_idx,
                       std::uint64_t epoch);

    /** invalidate_start for one page (state-machine mode). */
    void invalidateOne(TranslationTable& table, std::uint64_t page_idx);

    /** invalidate_end for one page (epoch-guarded against extensions). */
    void invalidateEnd(TranslationTable& table, std::uint64_t page_idx,
                       std::uint64_t window_epoch);

    /** Scheduled prefetch sweep over [first, last] (state-machine mode). */
    void prefetchSweep(TranslationTable& table, std::uint64_t first,
                       std::uint64_t last);

    /** Apply the configured prefetch policy after a fresh fault. */
    void maybeAutoPrefetch(TranslationTable& table, std::uint64_t page_idx);

    /**
     * Map the rest of the aligned huge block around a resolved fault.
     * Returns the extra pages mapped (empty unless hugePages is on).
     */
    std::vector<std::uint64_t> expandHugeMapping(TranslationTable& table,
                                                 std::uint64_t page_idx);

    /** Open notifier windows on @p table right now. */
    std::uint32_t openWindowsOn(const TranslationTable* table) const;

    void openWindow(const TranslationTable* table);
    void closeWindow(const TranslationTable* table);

    EventQueue& events_;
    Rng& rng_;
    mem::AddressSpace& memory_;
    FaultTiming timing_;
    OdpPageTable pages_;
    /** Open notifier windows per table (contention accounting). */
    std::map<const TranslationTable*, std::uint32_t> openWindows_;
    /** Per-table sequential-fault detector (PrefetchPolicy). */
    struct SeqState
    {
        std::uint64_t lastPage = 0;
        std::uint32_t streak = 0;
        bool valid = false;
    };
    std::map<const TranslationTable*, SeqState> seq_;
    ResolutionObserver resolutionObserver_;
    std::function<double()> congestionProbe_;
    std::function<double()> latencyChaos_;
    DriverStats stats_;
};

} // namespace odp
} // namespace ibsim

#endif // IBSIM_ODP_ODP_DRIVER_HH
