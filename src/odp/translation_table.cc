#include "odp/translation_table.hh"

namespace ibsim {
namespace odp {

bool
TranslationTable::mappedRange(std::uint64_t vaddr, std::uint64_t len) const
{
    return firstUnmapped(vaddr, len) == 0;
}

std::uint64_t
TranslationTable::firstUnmapped(std::uint64_t vaddr, std::uint64_t len) const
{
    if (!odp_ || len == 0)
        return 0;
    const std::uint64_t first = mem::pageOf(vaddr);
    const std::uint64_t last = mem::pageOf(vaddr + len - 1);
    for (std::uint64_t p = first; p <= last; ++p) {
        if (mapped_.count(p) == 0)
            return p * mem::pageSize;
    }
    return 0;
}

void
TranslationTable::mapRange(std::uint64_t vaddr, std::uint64_t len)
{
    if (len == 0)
        return;
    const std::uint64_t first = mem::pageOf(vaddr);
    const std::uint64_t last = mem::pageOf(vaddr + len - 1);
    for (std::uint64_t p = first; p <= last; ++p)
        mapped_.insert(p);
}

} // namespace odp
} // namespace ibsim
