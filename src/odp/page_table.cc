#include "odp/page_table.hh"

#include <cassert>

namespace ibsim {
namespace odp {

const char*
pageStateName(PageState state)
{
    switch (state) {
      case PageState::NotPresent:
        return "NotPresent";
      case PageState::Faulting:
        return "Faulting";
      case PageState::Present:
        return "Present";
      case PageState::Invalidating:
        return "Invalidating";
      case PageState::FaultingInvalidated:
        return "FaultingInvalidated";
    }
    return "?";
}

bool
pageTransitionLegal(PageState from, PageState to)
{
    switch (from) {
      case PageState::NotPresent:
        // A fault starts resolving, or the kernel reclaims a host frame
        // that never had an RNIC translation (the window still opens so
        // concurrent faults serialize behind it).
        return to == PageState::Faulting || to == PageState::Invalidating;
      case PageState::Faulting:
        // Resolution installs the translation, or invalidate_start lands
        // mid-fault and dooms this resolution attempt.
        return to == PageState::Present ||
               to == PageState::FaultingInvalidated;
      case PageState::Present:
        // Only the notifier path takes a page out of Present.
        return to == PageState::Invalidating;
      case PageState::Invalidating:
        // invalidate_end: the page is gone, or a fault that queued
        // behind the window starts resolving.
        return to == PageState::NotPresent || to == PageState::Faulting;
      case PageState::FaultingInvalidated:
        // invalidate_end: the doomed fault retries.
        return to == PageState::Faulting;
    }
    return false;
}

OdpPageTable::Entry*
OdpPageTable::find(const Key& key)
{
    auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : &it->second;
}

const OdpPageTable::Entry*
OdpPageTable::find(const Key& key) const
{
    auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : &it->second;
}

PageState
OdpPageTable::state(const Key& key, bool mapped) const
{
    const Entry* entry = find(key);
    if (entry)
        return entry->state;
    return mapped ? PageState::Present : PageState::NotPresent;
}

OdpPageTable::Entry&
OdpPageTable::enter(const Key& key, PageState from, PageState to)
{
    assert((from == PageState::NotPresent || from == PageState::Present) &&
           "transient states already have an entry");
    assert(pageTransitionLegal(from, to) && "illegal page transition");
    if (!pageTransitionLegal(from, to))
        ++stats_.illegalTransitionsBlocked;
    auto [it, inserted] = entries_.try_emplace(key);
    assert(inserted && "page already transient");
    (void)inserted;
    it->second.state = to;
    ++stats_.transitions;
    return it->second;
}

void
OdpPageTable::transition(Entry& entry, PageState to)
{
    assert(pageTransitionLegal(entry.state, to) &&
           "illegal page transition");
    if (!pageTransitionLegal(entry.state, to)) {
        ++stats_.illegalTransitionsBlocked;
        return;
    }
    entry.state = to;
    ++stats_.transitions;
}

void
OdpPageTable::leave(const Key& key, PageState to)
{
    auto it = entries_.find(key);
    assert(it != entries_.end() && "leaving a page with no entry");
    assert(pageTransitionLegal(it->second.state, to) &&
           "illegal page transition");
    assert((to == PageState::Present || to == PageState::NotPresent) &&
           "leave() only retires entries");
    ++stats_.transitions;
    entries_.erase(it);
}

std::size_t
OdpPageTable::transientPages(const TranslationTable* table) const
{
    std::size_t count = 0;
    for (auto it = entries_.lower_bound({table, 0});
         it != entries_.end() && it->first.first == table; ++it)
        ++count;
    return count;
}

void
OdpPageTable::noteWindowOpened(const TranslationTable* table)
{
    for (auto it = entries_.lower_bound({table, 0});
         it != entries_.end() && it->first.first == table; ++it) {
        if (it->second.state == PageState::Faulting ||
            it->second.state == PageState::FaultingInvalidated)
            ++it->second.windowsOverlapped;
    }
}

} // namespace odp
} // namespace ibsim
