#include "rpc/rpc.hh"

#include <cassert>
#include <cstring>

namespace ibsim {
namespace rpc {

namespace {

constexpr std::uint32_t headerBytes = 8;

std::uint64_t
seqOf(const std::vector<std::uint8_t>& bytes)
{
    std::uint64_t v = 0;
    std::memcpy(&v, bytes.data(), 8);
    return v;
}

std::vector<std::uint8_t>
frame(std::uint64_t seq, const std::vector<std::uint8_t>& payload)
{
    std::vector<std::uint8_t> out(headerBytes + payload.size());
    std::memcpy(out.data(), &seq, 8);
    std::memcpy(out.data() + headerBytes, payload.data(),
                payload.size());
    return out;
}

verbs::QpConfig
udConfig()
{
    verbs::QpConfig config;
    config.transport = verbs::Transport::Ud;
    return config;
}

} // namespace

RpcServer::RpcServer(Cluster& cluster, Node& node, Handler handler,
                     std::size_t recv_slots, std::uint32_t max_payload)
    : cluster_(cluster), node_(node), handler_(std::move(handler)),
      maxPayload_(max_payload), slotBytes_(headerBytes + max_payload)
{
    cq_ = &node_.createCq();
    qp_ = node_.createQp(*cq_, udConfig());
    // UD QPs are unconnected; mark RTS with a dummy "connection" so the
    // engine accepts posts (destination comes per-WR).
    qp_.connect(/*dst_lid=*/0, /*dst_qpn=*/0);

    sendSlots_ = recv_slots;
    recvBuf_ = node_.alloc(slotBytes_ * recv_slots);
    sendBuf_ = node_.alloc(slotBytes_ * sendSlots_);
    node_.touch(recvBuf_, slotBytes_ * recv_slots);
    node_.touch(sendBuf_, slotBytes_ * sendSlots_);
    recvMr_ = &node_.registerMemory(recvBuf_, slotBytes_ * recv_slots,
                                    verbs::AccessFlags::pinned());
    sendMr_ = &node_.registerMemory(sendBuf_, slotBytes_ * sendSlots_,
                                    verbs::AccessFlags::pinned());
    for (std::size_t i = 0; i < recv_slots; ++i) {
        qp_.postRecv(recvBuf_ + i * slotBytes_, recvMr_->lkey(),
                     static_cast<std::uint32_t>(slotBytes_), i);
    }

    cq_->setListener([this](const verbs::WorkCompletion& wc) {
        if (wc.opcode == verbs::WrOpcode::Recv && wc.ok())
            onArrival(wc);
    });
}

verbs::AddressHandle
RpcServer::address() const
{
    verbs::AddressHandle ah;
    ah.lid = node_.lid();
    ah.qpn = const_cast<verbs::QueuePair&>(qp_).qpn();
    return ah;
}

void
RpcServer::onArrival(const verbs::WorkCompletion& wc)
{
    const std::uint64_t slot_addr = recvBuf_ + wc.wrId * slotBytes_;
    const auto bytes = node_.memory().read(slot_addr, wc.byteLen);
    qp_.postRecv(slot_addr, recvMr_->lkey(),
                 static_cast<std::uint32_t>(slotBytes_), wc.wrId);
    if (bytes.size() < headerBytes)
        return;

    const std::uint64_t seq = seqOf(bytes);
    const std::vector<std::uint8_t> request(bytes.begin() + headerBytes,
                                            bytes.end());
    auto response = handler_(request);
    assert(response.size() <= maxPayload_);
    ++served_;

    const auto wire = frame(seq, response);
    const std::uint64_t out =
        sendBuf_ + (sendSlot_++ % sendSlots_) * slotBytes_;
    node_.memory().write(out, wire);
    verbs::AddressHandle back;
    back.lid = wc.srcLid;
    back.qpn = wc.srcQpn;
    qp_.postSendUd(back, out, sendMr_->lkey(),
                   static_cast<std::uint32_t>(wire.size()),
                   /*wr_id=*/1ull << 61);
}

RpcClient::RpcClient(Cluster& cluster, Node& node,
                     verbs::AddressHandle server, RpcClientConfig config)
    : cluster_(cluster), node_(node), server_(server), config_(config),
      slotBytes_(headerBytes + config.maxPayloadBytes)
{
    cq_ = &node_.createCq();
    qp_ = node_.createQp(*cq_, udConfig());
    qp_.connect(0, 0);

    recvBuf_ = node_.alloc(slotBytes_ * config_.recvSlots);
    sendBuf_ = node_.alloc(slotBytes_ * config_.recvSlots);
    node_.touch(recvBuf_, slotBytes_ * config_.recvSlots);
    node_.touch(sendBuf_, slotBytes_ * config_.recvSlots);
    recvMr_ = &node_.registerMemory(recvBuf_,
                                    slotBytes_ * config_.recvSlots,
                                    verbs::AccessFlags::pinned());
    sendMr_ = &node_.registerMemory(sendBuf_,
                                    slotBytes_ * config_.recvSlots,
                                    verbs::AccessFlags::pinned());
    for (std::size_t i = 0; i < config_.recvSlots; ++i) {
        qp_.postRecv(recvBuf_ + i * slotBytes_, recvMr_->lkey(),
                     static_cast<std::uint32_t>(slotBytes_), i);
    }

    cq_->setListener([this](const verbs::WorkCompletion& wc) {
        if (wc.opcode == verbs::WrOpcode::Recv && wc.ok())
            onArrival(wc);
    });
}

std::uint64_t
RpcClient::call(const std::vector<std::uint8_t>& payload)
{
    assert(payload.size() <= config_.maxPayloadBytes);
    const std::uint64_t id = nextCall_++;
    PendingCall pc;
    pc.payload = payload;
    pending_.emplace(id, std::move(pc));
    ++stats_.calls;
    transmit(id);
    return id;
}

void
RpcClient::transmit(std::uint64_t id)
{
    auto it = pending_.find(id);
    if (it == pending_.end())
        return;
    ++it->second.attempts;

    const auto wire = frame(id, it->second.payload);
    const std::uint64_t out =
        sendBuf_ + (sendSlot_++ % config_.recvSlots) * slotBytes_;
    node_.memory().write(out, wire);
    qp_.postSendUd(server_, out, sendMr_->lkey(),
                   static_cast<std::uint32_t>(wire.size()),
                   /*wr_id=*/1ull << 61);

    it->second.timer = cluster_.events().scheduleAfter(
        cluster_.rng().jitter(config_.retryTimeout, 0.05),
        [this, id] { retryFired(id); });
}

void
RpcClient::retryFired(std::uint64_t id)
{
    auto it = pending_.find(id);
    if (it == pending_.end())
        return;  // answered meanwhile
    if (it->second.attempts > config_.maxRetries) {
        ++stats_.failed;
        failedCalls_[id] = true;
        pending_.erase(it);
        return;
    }
    ++stats_.retries;
    transmit(id);
}

void
RpcClient::onArrival(const verbs::WorkCompletion& wc)
{
    const std::uint64_t slot_addr = recvBuf_ + wc.wrId * slotBytes_;
    const auto bytes = node_.memory().read(slot_addr, wc.byteLen);
    qp_.postRecv(slot_addr, recvMr_->lkey(),
                 static_cast<std::uint32_t>(slotBytes_), wc.wrId);
    if (bytes.size() < headerBytes)
        return;

    const std::uint64_t id = seqOf(bytes);
    auto it = pending_.find(id);
    if (it == pending_.end())
        return;  // duplicate response
    cluster_.events().cancel(it->second.timer);
    pending_.erase(it);
    responses_[id].assign(bytes.begin() + headerBytes, bytes.end());
    ++stats_.completed;
}

bool
RpcClient::completed(std::uint64_t id) const
{
    return responses_.count(id) > 0 || failedCalls_.count(id) > 0;
}

bool
RpcClient::failed(std::uint64_t id) const
{
    return failedCalls_.count(id) > 0;
}

const std::vector<std::uint8_t>&
RpcClient::response(std::uint64_t id) const
{
    static const std::vector<std::uint8_t> empty;
    auto it = responses_.find(id);
    return it == responses_.end() ? empty : it->second;
}

} // namespace rpc
} // namespace ibsim
