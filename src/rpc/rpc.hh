/**
 * @file
 * Datagram RPC over the UD transport — the HERD / FaSST design point
 * (paper Sec. VIII-C, refs [8], [10]).
 *
 * Kalia et al. built remote procedure calls over InfiniBand's Unreliable
 * Datagram transport, detecting (practically nonexistent) packet loss
 * with coarse-grained software timeouts instead of the RC machinery —
 * sidestepping both the vendor-floored transport timeout and, on ODP
 * hardware, the pitfalls this paper studies. This module implements that
 * design: an RpcServer dispatching requests to a handler, and an
 * RpcClient with per-call retry timers.
 *
 * Wire format: [seq:8][payload...] both ways.
 */

#ifndef IBSIM_RPC_RPC_HH
#define IBSIM_RPC_RPC_HH

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "cluster/cluster.hh"
#include "simcore/time.hh"
#include "verbs/queue_pair.hh"

namespace ibsim {
namespace rpc {

/** Client policy. */
struct RpcClientConfig
{
    /** Coarse software timeout per call attempt. */
    Time retryTimeout = Time::ms(2);

    /** Attempts before a call is reported failed. */
    std::size_t maxRetries = 5;

    /** Largest request/response payload. */
    std::uint32_t maxPayloadBytes = 1000;

    /** RECV slots kept posted. */
    std::size_t recvSlots = 64;
};

/** Client statistics. */
struct RpcClientStats
{
    std::uint64_t calls = 0;
    std::uint64_t retries = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
};

/**
 * An RPC server: one UD QP, a handler, RECV slots kept posted.
 */
class RpcServer
{
  public:
    /** Handler: request payload in, response payload out. */
    using Handler =
        std::function<std::vector<std::uint8_t>(
            const std::vector<std::uint8_t>&)>;

    RpcServer(Cluster& cluster, Node& node, Handler handler,
              std::size_t recv_slots = 64,
              std::uint32_t max_payload = 1000);

    RpcServer(const RpcServer&) = delete;
    RpcServer& operator=(const RpcServer&) = delete;

    /** The address clients dial. */
    verbs::AddressHandle address() const;

    std::uint64_t requestsServed() const { return served_; }

  private:
    void onArrival(const verbs::WorkCompletion& wc);

    Cluster& cluster_;
    Node& node_;
    Handler handler_;
    std::uint32_t maxPayload_;
    std::uint64_t slotBytes_;
    verbs::CompletionQueue* cq_ = nullptr;
    verbs::QueuePair qp_;
    std::uint64_t recvBuf_ = 0;
    std::uint64_t sendBuf_ = 0;
    verbs::MemoryRegion* recvMr_ = nullptr;
    verbs::MemoryRegion* sendMr_ = nullptr;
    std::size_t sendSlot_ = 0;
    std::size_t sendSlots_ = 0;
    std::uint64_t served_ = 0;
};

/**
 * An RPC client: one UD QP, per-call retry timers.
 */
class RpcClient
{
  public:
    RpcClient(Cluster& cluster, Node& node, verbs::AddressHandle server,
              RpcClientConfig config = {});

    RpcClient(const RpcClient&) = delete;
    RpcClient& operator=(const RpcClient&) = delete;

    /** Issue a call; returns the call id. */
    std::uint64_t call(const std::vector<std::uint8_t>& payload);

    /** Whether the call has a response (or failed). */
    bool completed(std::uint64_t id) const;

    /** Whether the call exhausted its retries. */
    bool failed(std::uint64_t id) const;

    /** The response payload of a completed call. */
    const std::vector<std::uint8_t>& response(std::uint64_t id) const;

    const RpcClientStats& stats() const { return stats_; }

  private:
    struct PendingCall
    {
        std::vector<std::uint8_t> payload;
        std::size_t attempts = 0;
        EventHandle timer;
    };

    void transmit(std::uint64_t id);
    void retryFired(std::uint64_t id);
    void onArrival(const verbs::WorkCompletion& wc);

    Cluster& cluster_;
    Node& node_;
    verbs::AddressHandle server_;
    RpcClientConfig config_;
    std::uint64_t slotBytes_;
    verbs::CompletionQueue* cq_ = nullptr;
    verbs::QueuePair qp_;
    std::uint64_t recvBuf_ = 0;
    std::uint64_t sendBuf_ = 0;
    verbs::MemoryRegion* recvMr_ = nullptr;
    verbs::MemoryRegion* sendMr_ = nullptr;
    std::size_t sendSlot_ = 0;

    std::uint64_t nextCall_ = 1;
    std::map<std::uint64_t, PendingCall> pending_;
    std::map<std::uint64_t, std::vector<std::uint8_t>> responses_;
    std::map<std::uint64_t, bool> failedCalls_;
    RpcClientStats stats_;
};

} // namespace rpc
} // namespace ibsim

#endif // IBSIM_RPC_RPC_HH
