#include "cluster/cluster.hh"

#include <cstdio>

#include "exp/seed_stream.hh"

namespace ibsim {

Cluster::Cluster(rnic::DeviceProfile profile, std::size_t node_count,
                 std::uint64_t seed, net::LinkConfig link,
                 ClusterOptions options)
    : rng_(seed), defaultProfile_(std::move(profile)), seed_(seed),
      fabric_(events_, rng_, link)
{
    if (options.sharded) {
        // The conservative lookahead: the minimum virtual time any
        // cross-island influence needs. A packet leaving island A is
        // delivered on island B no earlier than egress + latency +
        // per-packet overhead; serialization and chaos delays only push
        // that later, so latency + overhead is a sound lower bound.
        const Time lookahead = link.latency + link.perPacketOverhead;
        kernel_ = std::make_unique<ShardedKernel>(lookahead, options.jobs,
                                                  options.scheduleMode);
        kernel_->setStealPolicy(options.stealPolicy);
        fabric_.enableSharding(*kernel_);
    }
    for (std::size_t i = 0; i < node_count; ++i)
        addNode();
}

Node&
Cluster::addNode()
{
    return addNode(defaultProfile_);
}

Node&
Cluster::addNode(const rnic::DeviceProfile& profile)
{
    if (kernel_) {
        // One island per node: the node's RNIC and fabric port run on a
        // private queue with a SeedStream-forked RNG, so the execution
        // is independent of how islands map onto workers.
        const std::size_t island = kernel_->addIsland();
        const exp::SeedStream fork("cluster.island", seed_);
        fabric_.addIslandLane(fork.trialSeed(0, island));
        fabric_.assignLid(nextLid_, island);
        islandRngs_.emplace_back(fork.trialSeed(1, island));
        nodes_.push_back(std::make_unique<Node>(kernel_->island(island),
                                                islandRngs_.back(),
                                                fabric_, nextLid_++,
                                                profile));
        return *nodes_.back();
    }
    nodes_.push_back(std::make_unique<Node>(events_, rng_, fabric_,
                                            nextLid_++, profile));
    return *nodes_.back();
}

std::vector<Node*>
Cluster::addNodePlanes(const rnic::DeviceProfile& profile, unsigned planes)
{
    std::vector<Node*> out;
    // All planes share one logical island (the first plane's index) so
    // stats attribute their work to the machine they model.
    const std::size_t logical = kernel_ ? kernel_->islandCount() : 0;
    for (unsigned p = 0; p < std::max(1u, planes); ++p) {
        Node& node = addNode(profile);
        if (kernel_)
            kernel_->setLogicalIsland(kernel_->islandCount() - 1, logical);
        out.push_back(&node);
    }
    return out;
}

std::string
Cluster::report()
{
    std::string out;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "cluster @ %s: %zu nodes, %llu events executed\n",
                  now().str().c_str(), nodes_.size(),
                  static_cast<unsigned long long>(eventsExecuted()));
    out += line;
    std::snprintf(line, sizeof(line),
                  "fabric: sent=%llu delivered=%llu dropped=%llu\n",
                  static_cast<unsigned long long>(fabric_.totalSent()),
                  static_cast<unsigned long long>(
                      fabric_.totalDelivered()),
                  static_cast<unsigned long long>(
                      fabric_.totalDropped()));
    out += line;

    for (auto& node : nodes_) {
        const auto& d = node->driver().stats();
        const auto& b = node->board().stats();
        rnic::QpStats agg;
        std::size_t qps = 0;
        for (auto* qp : node->rnic().allQps()) {
            ++qps;
            agg.requestsSent += qp->stats.requestsSent;
            agg.retransmissions += qp->stats.retransmissions;
            agg.timeouts += qp->stats.timeouts;
            agg.rnrNaksReceived += qp->stats.rnrNaksReceived;
            agg.seqNaksReceived += qp->stats.seqNaksReceived;
            agg.dammedDrops += qp->stats.dammedDrops;
            agg.completions += qp->stats.completions;
        }
        std::snprintf(
            line, sizeof(line),
            "node lid=%u: qps=%zu reqs=%llu rexmits=%llu timeouts=%llu "
            "rnr=%llu seq_naks=%llu dammed=%llu completions=%llu\n",
            node->lid(), qps,
            static_cast<unsigned long long>(agg.requestsSent),
            static_cast<unsigned long long>(agg.retransmissions),
            static_cast<unsigned long long>(agg.timeouts),
            static_cast<unsigned long long>(agg.rnrNaksReceived),
            static_cast<unsigned long long>(agg.seqNaksReceived),
            static_cast<unsigned long long>(agg.dammedDrops),
            static_cast<unsigned long long>(agg.completions));
        out += line;
        std::snprintf(
            line, sizeof(line),
            "  odp: faults=%llu coalesced=%llu resolved=%llu "
            "invalidations=%llu prefetched=%llu | board: waiters=%llu "
            "prompt=%llu failures=%llu slow=%llu\n",
            static_cast<unsigned long long>(d.faultsRaised),
            static_cast<unsigned long long>(d.faultsCoalesced),
            static_cast<unsigned long long>(d.faultsResolved),
            static_cast<unsigned long long>(d.invalidations),
            static_cast<unsigned long long>(d.prefetchedPages),
            static_cast<unsigned long long>(b.waitersRegistered),
            static_cast<unsigned long long>(b.promptUpdates),
            static_cast<unsigned long long>(b.updateFailures),
            static_cast<unsigned long long>(b.slowRefreshes));
        out += line;
    }

    // Port-event chaos ran: append the link-failure/recovery summary.
    const PortEventSummary pe = portEventSummary();
    if (pe.portDownEvents + pe.portUpEvents + pe.gateDrops > 0) {
        std::snprintf(
            line, sizeof(line),
            "port events: down=%llu up=%llu reroutes=%llu "
            "qp_errors=%llu qp_recovered=%llu stale_drops=%llu "
            "cm_rearms=%llu gate_drops=%llu\n",
            static_cast<unsigned long long>(pe.portDownEvents),
            static_cast<unsigned long long>(pe.portUpEvents),
            static_cast<unsigned long long>(pe.reroutes),
            static_cast<unsigned long long>(pe.qpsEnteredError),
            static_cast<unsigned long long>(pe.qpsRecovered),
            static_cast<unsigned long long>(pe.staleEpochDrops),
            static_cast<unsigned long long>(pe.cmRearmsSent),
            static_cast<unsigned long long>(pe.gateDrops));
        out += line;
    }
    return out;
}

Cluster::PortEventSummary
Cluster::portEventSummary()
{
    PortEventSummary s;
    for (const auto& node : nodes_) {
        const rnic::RnicStats& r = node->rnic().stats();
        s.portDownEvents += r.portDownEvents;
        s.portUpEvents += r.portUpEvents;
        s.reroutes += r.reroutes;
        s.qpsEnteredError += r.qpsEnteredError;
        s.qpsRecovered += r.qpsRecovered;
        s.staleEpochDrops += r.staleEpochDrops;
        s.cmRearmsSent += r.cmRearmsSent;
    }
    s.gateDrops = fabric_.totalPortEventDrops();
    return s;
}

std::uint64_t
Cluster::totalCompletions() const
{
    std::uint64_t total = 0;
    for (const auto& node : nodes_)
        total += node->totalCompletions();
    return total;
}

bool
Cluster::runUntilCompletions(std::uint64_t target, Time limit)
{
    if (!kernel_) {
        // The historical single-queue path: poll after each event. Its
        // traceHash goldens pin this byte-for-byte.
        return events_.runUntil(
            [&] { return totalCompletions() >= target; }, limit);
    }
    // Top up the per-node trigger set (node i lives on island i; planes
    // are their own islands, so each plane's CQs count on its island).
    // Counters read through the Node, so CQs created after registration
    // are still counted.
    while (nodesWithTriggers_ < nodes_.size()) {
        Node* node = nodes_[nodesWithTriggers_].get();
        kernel_->addTrigger(nodesWithTriggers_,
                            [node] { return node->totalCompletions(); });
        ++nodesWithTriggers_;
    }
    return kernel_->runUntilTriggered(target, limit);
}

std::pair<verbs::QueuePair, verbs::QueuePair>
Cluster::connectRc(Node& a, verbs::CompletionQueue& cq_a, Node& b,
                   verbs::CompletionQueue& cq_b, verbs::QpConfig config)
{
    verbs::QueuePair qa = a.createQp(cq_a, config);
    verbs::QueuePair qb = b.createQp(cq_b, config);
    qa.connect(b.lid(), qb.qpn());
    qb.connect(a.lid(), qa.qpn());
    return {qa, qb};
}

} // namespace ibsim
