#include "cluster/cluster.hh"

#include <cstdio>

namespace ibsim {

Cluster::Cluster(rnic::DeviceProfile profile, std::size_t node_count,
                 std::uint64_t seed, net::LinkConfig link)
    : rng_(seed), defaultProfile_(std::move(profile)),
      fabric_(events_, rng_, link)
{
    for (std::size_t i = 0; i < node_count; ++i)
        addNode();
}

Node&
Cluster::addNode()
{
    return addNode(defaultProfile_);
}

Node&
Cluster::addNode(const rnic::DeviceProfile& profile)
{
    nodes_.push_back(std::make_unique<Node>(events_, rng_, fabric_,
                                            nextLid_++, profile));
    return *nodes_.back();
}

std::string
Cluster::report()
{
    std::string out;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "cluster @ %s: %zu nodes, %llu events executed\n",
                  now().str().c_str(), nodes_.size(),
                  static_cast<unsigned long long>(events_.executed()));
    out += line;
    std::snprintf(line, sizeof(line),
                  "fabric: sent=%llu delivered=%llu dropped=%llu\n",
                  static_cast<unsigned long long>(fabric_.totalSent()),
                  static_cast<unsigned long long>(
                      fabric_.totalDelivered()),
                  static_cast<unsigned long long>(
                      fabric_.totalDropped()));
    out += line;

    for (auto& node : nodes_) {
        const auto& d = node->driver().stats();
        const auto& b = node->board().stats();
        rnic::QpStats agg;
        std::size_t qps = 0;
        for (auto* qp : node->rnic().allQps()) {
            ++qps;
            agg.requestsSent += qp->stats.requestsSent;
            agg.retransmissions += qp->stats.retransmissions;
            agg.timeouts += qp->stats.timeouts;
            agg.rnrNaksReceived += qp->stats.rnrNaksReceived;
            agg.seqNaksReceived += qp->stats.seqNaksReceived;
            agg.dammedDrops += qp->stats.dammedDrops;
            agg.completions += qp->stats.completions;
        }
        std::snprintf(
            line, sizeof(line),
            "node lid=%u: qps=%zu reqs=%llu rexmits=%llu timeouts=%llu "
            "rnr=%llu seq_naks=%llu dammed=%llu completions=%llu\n",
            node->lid(), qps,
            static_cast<unsigned long long>(agg.requestsSent),
            static_cast<unsigned long long>(agg.retransmissions),
            static_cast<unsigned long long>(agg.timeouts),
            static_cast<unsigned long long>(agg.rnrNaksReceived),
            static_cast<unsigned long long>(agg.seqNaksReceived),
            static_cast<unsigned long long>(agg.dammedDrops),
            static_cast<unsigned long long>(agg.completions));
        out += line;
        std::snprintf(
            line, sizeof(line),
            "  odp: faults=%llu coalesced=%llu resolved=%llu "
            "invalidations=%llu prefetched=%llu | board: waiters=%llu "
            "prompt=%llu failures=%llu slow=%llu\n",
            static_cast<unsigned long long>(d.faultsRaised),
            static_cast<unsigned long long>(d.faultsCoalesced),
            static_cast<unsigned long long>(d.faultsResolved),
            static_cast<unsigned long long>(d.invalidations),
            static_cast<unsigned long long>(d.prefetchedPages),
            static_cast<unsigned long long>(b.waitersRegistered),
            static_cast<unsigned long long>(b.promptUpdates),
            static_cast<unsigned long long>(b.updateFailures),
            static_cast<unsigned long long>(b.slowRefreshes));
        out += line;
    }
    return out;
}

std::pair<verbs::QueuePair, verbs::QueuePair>
Cluster::connectRc(Node& a, verbs::CompletionQueue& cq_a, Node& b,
                   verbs::CompletionQueue& cq_b, verbs::QpConfig config)
{
    verbs::QueuePair qa = a.createQp(cq_a, config);
    verbs::QueuePair qb = b.createQp(cq_b, config);
    qa.connect(b.lid(), qb.qpn());
    qb.connect(a.lid(), qa.qpn());
    return {qa, qb};
}

} // namespace ibsim
