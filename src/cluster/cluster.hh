/**
 * @file
 * A simulated InfiniBand cluster — the library's top-level entry point.
 *
 * A Cluster bundles the event queue, RNG, fabric and a set of nodes that
 * all share one device profile (heterogeneous clusters can add nodes with
 * explicit profiles). Experiment harnesses drive virtual time through
 * advance()/runUntil(), which play the roles of usleep() and the blocking
 * CQ wait in the paper's micro-benchmark.
 */

#ifndef IBSIM_CLUSTER_CLUSTER_HH
#define IBSIM_CLUSTER_CLUSTER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include <deque>

#include "cluster/node.hh"
#include "net/fabric.hh"
#include "rnic/device_profile.hh"
#include "simcore/event_queue.hh"
#include "simcore/rng.hh"
#include "simcore/sharded_kernel.hh"

namespace ibsim {

/**
 * Execution-mode knobs for a Cluster.
 *
 * Default: the historical single-queue simulation (one EventQueue, one
 * RNG) — byte-identical to what existed before island mode, pinned by
 * the repo's traceHash goldens.
 *
 * sharded = true partitions the cluster into one island per node: each
 * node's RNIC and fabric port live on a private EventQueue driven by a
 * ShardedKernel with conservative lookahead = link latency + per-packet
 * overhead (the minimum time any packet needs to cross islands). Every
 * island gets its own SeedStream-forked RNG, wire-id space and packet
 * pool, so a run is deterministic for a fixed seed at ANY worker count
 * and ANY ScheduleMode: jobs = 1 (inline, no threads) through jobs = N,
 * Static or Stealing, produce bit-identical trace hashes, per-QP stats
 * and oracle verdicts. Island mode is its own deterministic mode — not a
 * bit-replay of the single-queue schedule.
 */
struct ClusterOptions
{
    /** One island per node on a ShardedKernel. */
    bool sharded = false;

    /** Worker threads for the sharded kernel (clamped to node count). */
    unsigned jobs = 1;

    /** Who executes which island (content is mode-invariant): Stealing
     * lets idle workers claim hot islands at window granularity, Static
     * pins contiguous island blocks per worker (the PR-6 fallback). */
    ScheduleMode scheduleMode = ScheduleMode::Stealing;

    /** How Stealing finds runnable islands: the sharded ready queue
     * (default) or the round-two O(islands) claim scan (kept as a
     * bench/differential reference; content is policy-invariant). */
    StealPolicy stealPolicy = StealPolicy::ReadyQueue;
};

/**
 * A set of simulated machines on one fabric.
 */
class Cluster
{
  public:
    /**
     * Build a cluster of @p node_count nodes with identical RNICs.
     *
     * @param profile device profile shared by all nodes
     * @param node_count number of nodes (LIDs 1..n)
     * @param seed RNG seed; every stochastic element derives from it
     * @param link fabric link parameters
     * @param options execution mode (single-queue vs island sharding)
     */
    explicit Cluster(rnic::DeviceProfile profile,
                     std::size_t node_count = 2, std::uint64_t seed = 1,
                     net::LinkConfig link = {},
                     ClusterOptions options = {});

    Cluster(const Cluster&) = delete;
    Cluster& operator=(const Cluster&) = delete;

    /** Add another node (optionally with a different profile). */
    Node& addNode();
    Node& addNode(const rnic::DeviceProfile& profile);

    /**
     * Add one *hot machine* modeled as @p planes sibling nodes — the
     * per-QP-group island split. Each plane has its own LID, RNIC and
     * (in island mode) its own kernel island, so one hot endpoint (the
     * flood bench's client) no longer serializes a whole window: spread
     * its QP groups across the planes and the scheduler balances them
     * independently. All planes map to one *logical* island, so
     * KernelStats::executedPerIsland attributes their work to the
     * machine, not the plane. Identical node/LID layout in single-queue
     * mode (plain sibling nodes) — the differential tests compare the
     * same topology in both modes. Returns the planes in order.
     */
    std::vector<Node*> addNodePlanes(const rnic::DeviceProfile& profile,
                                     unsigned planes);

    Node& node(std::size_t index) { return *nodes_.at(index); }
    std::size_t nodeCount() const { return nodes_.size(); }

    EventQueue& events() { return events_; }
    Rng& rng() { return rng_; }
    net::Fabric& fabric() { return fabric_; }

    /** The parallel kernel, or nullptr in single-queue mode. */
    ShardedKernel* shardedKernel() { return kernel_.get(); }

    bool sharded() const { return kernel_ != nullptr; }

    Time
    now() const
    {
        return kernel_ ? kernel_->now() : events_.now();
    }

    /** Advance virtual time by @p delta (the micro-benchmark's usleep). */
    void
    advance(Time delta)
    {
        if (kernel_)
            kernel_->advance(delta);
        else
            events_.advance(delta);
    }

    /**
     * Run until @p pred holds or @p limit. Single-queue mode polls after
     * each event; island mode polls at every window barrier.
     * @return true if the predicate was satisfied.
     */
    bool
    runUntil(const std::function<bool()>& pred, Time limit = Time::max())
    {
        return kernel_ ? kernel_->runUntil(pred, limit)
                       : events_.runUntil(pred, limit);
    }

    /** Run until the event queue(s) drain (or @p limit). */
    bool
    drain(Time limit = Time::max())
    {
        return kernel_ ? kernel_->run(limit) : events_.run(limit);
    }

    /** Completions delivered across every node's CQs, summed. */
    std::uint64_t totalCompletions() const;

    /**
     * Run until the cluster-wide completion count reaches @p target —
     * the trigger-based fast path for the most common runUntil shape.
     *
     * In island mode this registers one monotone per-node trigger
     * counter with the kernel (cluster code owns the kernel's trigger
     * set) and exits via runUntilTriggered(): satisfaction is detected
     * inside the worker pass right after the crossing window retires,
     * instead of re-polling every CQ at each quiesce. Stop time, trace
     * hash and oracle verdicts are bit-identical to the polling
     * equivalent `runUntil([&]{ return totalCompletions() >= target; })`
     * at any jobs count and schedule mode. Single-queue mode uses
     * exactly that polling equivalent (its goldens are untouched).
     * @return true if the target was reached.
     */
    bool runUntilCompletions(std::uint64_t target,
                             Time limit = Time::max());

    /** Events executed so far (summed over islands when sharded). */
    std::uint64_t
    eventsExecuted() const
    {
        return kernel_ ? kernel_->executed() : events_.executed();
    }

    /**
     * A full diagnostic dump: fabric counters, per-node driver/board
     * statistics, and aggregate QP transport statistics. The first thing
     * to read when a run behaves strangely.
     */
    std::string report();

    /**
     * Aggregate port-event/recovery counters over every node's RNIC —
     * the degradation summary the flood bench prints next to its
     * throughput numbers (all zero unless a PortEventDriver ran).
     */
    struct PortEventSummary
    {
        std::uint64_t portDownEvents = 0;
        std::uint64_t portUpEvents = 0;
        std::uint64_t reroutes = 0;
        std::uint64_t qpsEnteredError = 0;
        std::uint64_t qpsRecovered = 0;
        std::uint64_t staleEpochDrops = 0;
        std::uint64_t cmRearmsSent = 0;
        /** Fabric-side drops at port/link-down gates. */
        std::uint64_t gateDrops = 0;
    };

    PortEventSummary portEventSummary();

    /**
     * Create and connect a pair of RC QPs between two nodes.
     * Both ends use @p config and complete into the given CQs.
     */
    std::pair<verbs::QueuePair, verbs::QueuePair>
    connectRc(Node& a, verbs::CompletionQueue& cq_a, Node& b,
              verbs::CompletionQueue& cq_b, verbs::QpConfig config = {});

  private:
    EventQueue events_;
    Rng rng_;
    rnic::DeviceProfile defaultProfile_;
    std::uint64_t seed_;
    /**
     * Island mode. kernel_ is created before fabric_ sees any traffic
     * and destroyed after the nodes (member order below): nodes schedule
     * into island queues, so the queues must outlive them. islandRngs_
     * is a deque — Node holds Rng& and deque growth never moves elements.
     */
    std::unique_ptr<ShardedKernel> kernel_;
    std::deque<Rng> islandRngs_;
    net::Fabric fabric_;
    std::vector<std::unique_ptr<Node>> nodes_;
    std::uint16_t nextLid_ = 1;
    /** Nodes whose completion trigger is registered with the kernel
     * (runUntilCompletions tops this up lazily; node i == island i). */
    std::size_t nodesWithTriggers_ = 0;
};

} // namespace ibsim

#endif // IBSIM_CLUSTER_CLUSTER_HH
