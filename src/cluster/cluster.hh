/**
 * @file
 * A simulated InfiniBand cluster — the library's top-level entry point.
 *
 * A Cluster bundles the event queue, RNG, fabric and a set of nodes that
 * all share one device profile (heterogeneous clusters can add nodes with
 * explicit profiles). Experiment harnesses drive virtual time through
 * advance()/runUntil(), which play the roles of usleep() and the blocking
 * CQ wait in the paper's micro-benchmark.
 */

#ifndef IBSIM_CLUSTER_CLUSTER_HH
#define IBSIM_CLUSTER_CLUSTER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "cluster/node.hh"
#include "net/fabric.hh"
#include "rnic/device_profile.hh"
#include "simcore/event_queue.hh"
#include "simcore/rng.hh"

namespace ibsim {

/**
 * A set of simulated machines on one fabric.
 */
class Cluster
{
  public:
    /**
     * Build a cluster of @p node_count nodes with identical RNICs.
     *
     * @param profile device profile shared by all nodes
     * @param node_count number of nodes (LIDs 1..n)
     * @param seed RNG seed; every stochastic element derives from it
     * @param link fabric link parameters
     */
    explicit Cluster(rnic::DeviceProfile profile,
                     std::size_t node_count = 2, std::uint64_t seed = 1,
                     net::LinkConfig link = {});

    Cluster(const Cluster&) = delete;
    Cluster& operator=(const Cluster&) = delete;

    /** Add another node (optionally with a different profile). */
    Node& addNode();
    Node& addNode(const rnic::DeviceProfile& profile);

    Node& node(std::size_t index) { return *nodes_.at(index); }
    std::size_t nodeCount() const { return nodes_.size(); }

    EventQueue& events() { return events_; }
    Rng& rng() { return rng_; }
    net::Fabric& fabric() { return fabric_; }
    Time now() const { return events_.now(); }

    /** Advance virtual time by @p delta (the micro-benchmark's usleep). */
    void advance(Time delta) { events_.advance(delta); }

    /**
     * Run until @p pred holds (polled after each event) or @p limit.
     * @return true if the predicate was satisfied.
     */
    bool
    runUntil(const std::function<bool()>& pred, Time limit = Time::max())
    {
        return events_.runUntil(pred, limit);
    }

    /** Run until the event queue drains (or @p limit). */
    bool drain(Time limit = Time::max()) { return events_.run(limit); }

    /**
     * A full diagnostic dump: fabric counters, per-node driver/board
     * statistics, and aggregate QP transport statistics. The first thing
     * to read when a run behaves strangely.
     */
    std::string report();

    /**
     * Create and connect a pair of RC QPs between two nodes.
     * Both ends use @p config and complete into the given CQs.
     */
    std::pair<verbs::QueuePair, verbs::QueuePair>
    connectRc(Node& a, verbs::CompletionQueue& cq_a, Node& b,
              verbs::CompletionQueue& cq_b, verbs::QpConfig config = {});

  private:
    EventQueue events_;
    Rng rng_;
    rnic::DeviceProfile defaultProfile_;
    net::Fabric fabric_;
    std::vector<std::unique_ptr<Node>> nodes_;
    std::uint16_t nextLid_ = 1;
};

} // namespace ibsim

#endif // IBSIM_CLUSTER_CLUSTER_HH
