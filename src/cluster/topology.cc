#include "cluster/topology.hh"

#include <algorithm>
#include <cassert>

#include "exp/seed_stream.hh"

namespace ibsim {
namespace chaos {

Topology::Topology(std::size_t node_count, std::uint64_t seed)
    : nodes_(node_count), seed_(seed)
{
    // One RNG per unordered link, each on a disjoint SeedStream index so
    // link schedules are pairwise independent and adding traffic on one
    // link never perturbs another's windows.
    const exp::SeedStream seeds("chaos.topology", seed);
    const std::size_t link_count =
        node_count < 2 ? 0 : node_count * (node_count - 1) / 2;
    links_.reserve(link_count);
    for (std::size_t i = 0; i < link_count; ++i)
        links_.emplace_back(seeds.trialSeed(i, 0));
}

bool
Topology::inMesh(std::uint16_t lid_a, std::uint16_t lid_b) const
{
    return lid_a >= 1 && lid_b >= 1 && lid_a != lid_b &&
           lid_a <= nodes_ && lid_b <= nodes_;
}

std::size_t
Topology::linkIndex(std::uint16_t lid_a, std::uint16_t lid_b) const
{
    assert(inMesh(lid_a, lid_b));
    // Triangular indexing of the unordered pair {lo, hi} with
    // 1 <= lo < hi <= N: rows of decreasing length, row lo first.
    const std::size_t lo = std::min(lid_a, lid_b);
    const std::size_t hi = std::max(lid_a, lid_b);
    const std::size_t row_start =
        (lo - 1) * nodes_ - (lo - 1) * lo / 2;
    return row_start + (hi - lo - 1);
}

void
Topology::setDefaultPlan(const FlapPlan& plan)
{
    for (Link& link : links_)
        link.sched.setPlan(plan);
}

void
Topology::setLinkPlan(std::uint16_t lid_a, std::uint16_t lid_b,
                      const FlapPlan& plan)
{
    links_.at(linkIndex(lid_a, lid_b)).sched.setPlan(plan);
}

bool
Topology::linkUp(std::uint16_t src, std::uint16_t dst, Time now)
{
    if (!inMesh(src, dst))
        return true;
    Link& link = links_[linkIndex(src, dst)];

    // The schedule anchors at virtual time zero and advances window by
    // window; each window draws exactly once from the link's RNG, so the
    // sequence is a pure function of the seed no matter when (or how
    // often) the link is queried.
    const bool up = link.sched.upAt(now);
    link.stats.flaps = link.sched.downTransitions();
    return up;
}

FlapPlan
Topology::linkPlan(std::uint16_t lid_a, std::uint16_t lid_b) const
{
    if (!inMesh(lid_a, lid_b))
        return FlapPlan{};
    return links_[linkIndex(lid_a, lid_b)].sched.plan();
}

bool
Topology::linkEnabled(std::uint16_t lid_a, std::uint16_t lid_b) const
{
    return inMesh(lid_a, lid_b) &&
           links_[linkIndex(lid_a, lid_b)].sched.enabled();
}

LinkSchedule
Topology::makeSchedule(std::uint16_t lid_a, std::uint16_t lid_b) const
{
    assert(inMesh(lid_a, lid_b));
    const std::size_t idx = linkIndex(lid_a, lid_b);
    const exp::SeedStream seeds("chaos.topology", seed_);
    return LinkSchedule(links_[idx].sched.plan(), seeds.trialSeed(idx, 0));
}

void
Topology::countDrop(std::uint16_t lid_a, std::uint16_t lid_b)
{
    if (inMesh(lid_a, lid_b))
        ++links_[linkIndex(lid_a, lid_b)].stats.dropsWhileDown;
}

const Topology::LinkStats&
Topology::linkStats(std::uint16_t lid_a, std::uint16_t lid_b) const
{
    return links_.at(linkIndex(lid_a, lid_b)).stats;
}

std::uint64_t
Topology::totalFlaps() const
{
    std::uint64_t total = 0;
    for (const Link& link : links_)
        total += link.stats.flaps;
    return total;
}

void
TopologyStage::apply(std::vector<net::FaultHook::Delivery>& deliveries,
                     Time now, Rng& /*rng*/, InjectorStats& stats)
{
    auto it = std::remove_if(
        deliveries.begin(), deliveries.end(),
        [&](const net::FaultHook::Delivery& d) {
            if (topology_.linkUp(d.pkt.srcLid, d.pkt.dstLid, now))
                return false;
            topology_.countDrop(d.pkt.srcLid, d.pkt.dstLid);
            ++stats.flapDropped;
            ++stats.dropped;
            return true;
        });
    deliveries.erase(it, deliveries.end());
}

} // namespace chaos
} // namespace ibsim
