#include "cluster/node.hh"

#include <limits>

namespace ibsim {

Node::Node(EventQueue& events, Rng& rng, net::Fabric& fabric,
           std::uint16_t lid, const rnic::DeviceProfile& profile)
    : driver_(events, rng, memory_, profile.faultTiming),
      board_(events, rng, profile.floodQuirk),
      rnic_(std::make_unique<rnic::Rnic>(events, rng, fabric, lid, profile,
                                         memory_, driver_, board_)),
      nextKey_(static_cast<std::uint32_t>(lid) * 100000u + 1)
{
    driver_.setCongestionProbe([this] {
        return 1.0 +
               driver_.timing().faultLoadFactor *
                   static_cast<double>(board_.staleCount());
    });
}

void
Node::touch(std::uint64_t addr, std::uint64_t len)
{
    memory_.touch(addr, len);
    // Host-side touches do not map pages into ODP translation tables; the
    // RNIC still faults on its first access (paper Sec. III-A).
}

verbs::MemoryRegion&
Node::registerMemory(std::uint64_t addr, std::uint64_t length,
                     verbs::AccessFlags access)
{
    auto mr = std::make_unique<verbs::MemoryRegion>(nextKey_++, addr,
                                                    length, access,
                                                    memory_);
    verbs::MemoryRegion& ref = *mr;
    mrs_.push_back(std::move(mr));
    rnic_->registerMr(ref);
    return ref;
}

verbs::MemoryRegion&
Node::registerImplicitOdp()
{
    auto mr = std::make_unique<verbs::MemoryRegion>(
        nextKey_++, 0, std::numeric_limits<std::uint64_t>::max(),
        verbs::AccessFlags::implicitOdp(), memory_);
    verbs::MemoryRegion& ref = *mr;
    mrs_.push_back(std::move(mr));
    rnic_->registerMr(ref);
    return ref;
}

void
Node::deregisterMemory(verbs::MemoryRegion& mr)
{
    rnic_->deregisterMr(mr.rkey());
}

verbs::CompletionQueue&
Node::createCq()
{
    cqs_.push_back(std::make_unique<verbs::CompletionQueue>());
    return *cqs_.back();
}

std::uint64_t
Node::totalCompletions() const
{
    std::uint64_t total = 0;
    for (const auto& cq : cqs_)
        total += cq->totalCompletions();
    return total;
}

verbs::QueuePair
Node::createQp(verbs::CompletionQueue& cq, verbs::QpConfig config)
{
    rnic::QpContext& ctx = rnic_->createQp(cq, config);
    return verbs::QueuePair(*rnic_, ctx);
}

void
Node::prefetch(verbs::MemoryRegion& mr, std::uint64_t addr,
               std::uint64_t len)
{
    driver_.prefetch(mr.table(), addr, len);
}

void
Node::invalidate(verbs::MemoryRegion& mr, std::uint64_t addr)
{
    driver_.invalidate(mr.table(), addr);
}

} // namespace ibsim
