/**
 * @file
 * Multi-node chaos topology: per-link seed-deterministic flap schedules.
 *
 * The single LinkFlapStage models one flapping cable with a fixed duty
 * cycle; real multi-node incidents look different — each link of a mesh
 * fails on its own schedule, and the interesting transport states appear
 * where flows that share endpoints see *different* connectivity (the
 * paper's timeout machinery then runs on some QPs of a node while others
 * make progress). chaos::Topology models an N-node full mesh in which
 * every unordered link {a, b} owns a flap plan (mean up/down durations)
 * and a private RNG derived from one seed via exp::SeedStream, producing
 * a jittered up/down window sequence that is a pure function of (seed,
 * link, virtual time) — independent of packet arrival order, so any
 * failing schedule replays bit-identically.
 *
 * TopologyStage adapts the schedule into the chaos::FaultInjector
 * pipeline: packets crossing a link during one of its down windows are
 * dropped (counted per link and in InjectorStats::flapDropped). The
 * invariant oracle attaches with InvariantMonitor::watchAll(cluster) and
 * must stay clean while the mesh flaps.
 */

#ifndef IBSIM_CLUSTER_TOPOLOGY_HH
#define IBSIM_CLUSTER_TOPOLOGY_HH

#include <cstdint>
#include <vector>

#include "chaos/fault_injector.hh"
#include "simcore/rng.hh"
#include "simcore/time.hh"

namespace ibsim {
namespace chaos {

/**
 * Flap plan of one link: alternating up/down windows whose durations are
 * jittered uniformly in [0.5, 1.5] x the mean. meanDown == 0 disables
 * flapping (the link is always up).
 */
struct FlapPlan
{
    Time meanUp;
    Time meanDown;

    bool enabled() const { return meanDown > Time(); }
};

/**
 * The window schedule of one link, extracted as a first-class cursor so
 * the same (plan, seed) pair can drive both the lazy per-query flap
 * check (Topology::linkUp, the legacy silent-drop TopologyStage) and the
 * eager port-*event* chains of chaos::PortEventDriver. The draw sequence
 * is exactly the historical Link one — first query draws the first
 * toggle from meanUp, then each toggle flips the state *before* drawing
 * the next window — so replicas built from Topology::makeSchedule()
 * reproduce the legacy windows bit-identically (the mesh-soak golden
 * depends on this).
 */
class LinkSchedule
{
  public:
    LinkSchedule(FlapPlan plan, std::uint64_t seed)
        : plan_(plan), rng_(seed)
    {}

    bool enabled() const { return plan_.enabled(); }
    const FlapPlan& plan() const { return plan_; }

    /** Swap the plan (legal before the schedule starts drawing). */
    void setPlan(const FlapPlan& plan) { plan_ = plan; }

    bool up() const { return up_; }
    bool started() const { return started_; }
    Time nextToggle() const { return nextToggle_; }

    /** Down windows entered so far. */
    std::uint64_t downTransitions() const { return downs_; }

    /** Draw the first toggle time (idempotent); returns it. */
    Time
    start()
    {
        if (!started_) {
            started_ = true;
            nextToggle_ = rng_.jitter(plan_.meanUp, 0.5);
        }
        return nextToggle_;
    }

    /** Flip at the current toggle boundary; returns the next one. */
    Time
    toggle()
    {
        up_ = !up_;
        if (!up_)
            ++downs_;
        nextToggle_ +=
            rng_.jitter(up_ ? plan_.meanUp : plan_.meanDown, 0.5);
        return nextToggle_;
    }

    /**
     * Advance to @p now and report the state (the lazy query form;
     * queries must be time-monotonic).
     */
    bool
    upAt(Time now)
    {
        if (!enabled())
            return true;
        start();
        while (now >= nextToggle_)
            toggle();
        return up_;
    }

  private:
    FlapPlan plan_;
    Rng rng_;
    bool up_ = true;
    bool started_ = false;
    std::uint64_t downs_ = 0;
    Time nextToggle_;
};

/**
 * An N-node full mesh of independently flapping links (LIDs 1..N, the
 * Cluster numbering). Links start up and carry no plan until one is set.
 */
class Topology
{
  public:
    /** Per-link observability. */
    struct LinkStats
    {
        /** Completed down windows entered so far. */
        std::uint64_t flaps = 0;
        /** Packets a TopologyStage dropped on this link while down. */
        std::uint64_t dropsWhileDown = 0;
    };

    /**
     * @param node_count nodes in the mesh (LIDs 1..node_count)
     * @param seed base of every link's private schedule RNG
     */
    Topology(std::size_t node_count, std::uint64_t seed);

    std::size_t nodeCount() const { return nodes_; }

    /** Set the flap plan of every link at once. */
    void setDefaultPlan(const FlapPlan& plan);

    /** Set the flap plan of the link {lid_a, lid_b} (order-insensitive). */
    void setLinkPlan(std::uint16_t lid_a, std::uint16_t lid_b,
                     const FlapPlan& plan);

    /**
     * Whether the link carrying src -> dst traffic is up at @p now,
     * advancing its window schedule as virtual time passes. Queries must
     * be time-monotonic (they come from the event loop, so they are).
     * Links outside the mesh — either LID not in [1, nodeCount] — and
     * self-loops are always up.
     */
    bool linkUp(std::uint16_t src, std::uint16_t dst, Time now);

    /** Count a packet dropped on {a, b} (called by TopologyStage). */
    void countDrop(std::uint16_t lid_a, std::uint16_t lid_b);

    const LinkStats& linkStats(std::uint16_t lid_a,
                               std::uint16_t lid_b) const;

    /** Completed down windows across every link. */
    std::uint64_t totalFlaps() const;

    /** The flap plan of {lid_a, lid_b} (zeroed plan when disabled). */
    FlapPlan linkPlan(std::uint16_t lid_a, std::uint16_t lid_b) const;

    /** Whether {lid_a, lid_b} is a mesh link with an enabled plan. */
    bool linkEnabled(std::uint16_t lid_a, std::uint16_t lid_b) const;

    /**
     * Fork a fresh schedule replica of {lid_a, lid_b} — same plan, same
     * private seed, cursor at time zero. Replicas advance independently
     * of the topology's own lazy cursor, so port-event drivers (and
     * their per-island copies under the sharded kernel) see the exact
     * window sequence TopologyStage would, without sharing state.
     */
    LinkSchedule makeSchedule(std::uint16_t lid_a,
                              std::uint16_t lid_b) const;

    /** Whether {lid_a, lid_b} are distinct LIDs inside the mesh. */
    bool inMesh(std::uint16_t lid_a, std::uint16_t lid_b) const;

  private:
    struct Link
    {
        explicit Link(std::uint64_t seed) : sched({}, seed) {}

        LinkSchedule sched;
        LinkStats stats;
    };

    /** Index of the unordered link {a, b} in the triangular table. */
    std::size_t linkIndex(std::uint16_t lid_a, std::uint16_t lid_b) const;

    std::size_t nodes_;
    std::uint64_t seed_;
    std::vector<Link> links_;
};

/**
 * FaultInjector stage dropping packets whose link is in a down window of
 * @p topology's schedule. Non-owning: the topology must outlive the
 * injector it is attached to. Drawing nothing from the pipeline RNG, it
 * leaves every other stage's schedule untouched.
 */
class TopologyStage : public FaultStage
{
  public:
    explicit TopologyStage(Topology& topology) : topology_(topology) {}

    const char* name() const override { return "topology"; }
    void apply(std::vector<net::FaultHook::Delivery>& deliveries, Time now,
               Rng& rng, InjectorStats& stats) override;

  private:
    Topology& topology_;
};

} // namespace chaos
} // namespace ibsim

#endif // IBSIM_CLUSTER_TOPOLOGY_HH
