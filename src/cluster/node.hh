/**
 * @file
 * A simulated host: memory, ODP driver, RNIC and verbs resources.
 *
 * Node is the per-machine composition root. It owns the address space, the
 * ODP driver and status board, the RNIC, and every CQ/MR the application
 * creates, tying their lifetimes together.
 */

#ifndef IBSIM_CLUSTER_NODE_HH
#define IBSIM_CLUSTER_NODE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/address_space.hh"
#include "net/fabric.hh"
#include "odp/odp_driver.hh"
#include "odp/page_status_board.hh"
#include "rnic/device_profile.hh"
#include "rnic/rnic.hh"
#include "verbs/completion_queue.hh"
#include "verbs/memory_region.hh"
#include "verbs/queue_pair.hh"

namespace ibsim {

/**
 * One simulated machine attached to the fabric.
 */
class Node
{
  public:
    Node(EventQueue& events, Rng& rng, net::Fabric& fabric,
         std::uint16_t lid, const rnic::DeviceProfile& profile);

    Node(const Node&) = delete;
    Node& operator=(const Node&) = delete;

    std::uint16_t lid() const { return rnic_->lid(); }

    /** Reserve (but do not touch) a buffer; returns its base address. */
    std::uint64_t alloc(std::uint64_t size) { return memory_.alloc(size); }

    /** First-touch pages from the host side. */
    void touch(std::uint64_t addr, std::uint64_t len);

    /**
     * Register a memory region (ibv_reg_mr). With AccessFlags::odp() the
     * region faults pages in on demand; with pinned() it is pinned and
     * fully mapped immediately.
     */
    verbs::MemoryRegion& registerMemory(std::uint64_t addr,
                                        std::uint64_t length,
                                        verbs::AccessFlags access);

    /**
     * Register the entire address space on demand (Implicit ODP, paper
     * Sec. III): every address becomes RDMA-able without further
     * registration, faulting pages in on first network access.
     */
    verbs::MemoryRegion& registerImplicitOdp();

    /** Deregister (the region object stays alive until node teardown). */
    void deregisterMemory(verbs::MemoryRegion& mr);

    /** Create a completion queue. */
    verbs::CompletionQueue& createCq();

    /**
     * Completions delivered on this node's CQs since creation, summed.
     * Monotone under execution — the island-local trigger counter the
     * cluster registers for trigger-based runUntil (DESIGN.md §12.c).
     */
    std::uint64_t totalCompletions() const;

    /** Create an RC QP bound to @p cq. */
    verbs::QueuePair createQp(verbs::CompletionQueue& cq,
                              verbs::QpConfig config = {});

    /** ibv_advise_mr-style prefetch of an ODP range. */
    void prefetch(verbs::MemoryRegion& mr, std::uint64_t addr,
                  std::uint64_t len);

    /** Kernel-initiated invalidation of the page holding @p addr. */
    void invalidate(verbs::MemoryRegion& mr, std::uint64_t addr);

    mem::AddressSpace& memory() { return memory_; }
    odp::OdpDriver& driver() { return driver_; }
    odp::PageStatusBoard& board() { return board_; }
    rnic::Rnic& rnic() { return *rnic_; }

  private:
    mem::AddressSpace memory_;
    odp::OdpDriver driver_;
    odp::PageStatusBoard board_;
    std::unique_ptr<rnic::Rnic> rnic_;
    std::vector<std::unique_ptr<verbs::MemoryRegion>> mrs_;
    std::vector<std::unique_ptr<verbs::CompletionQueue>> cqs_;
    std::uint32_t nextKey_;
};

} // namespace ibsim

#endif // IBSIM_CLUSTER_NODE_HH
