/**
 * @file
 * Composable, seed-deterministic fault injection for the fabric.
 *
 * The paper's pitfalls are fault-path behaviours: silent exchange loss
 * (Sec. V), PSN-sequence-error NAK recovery (Fig. 8), blind 0.5 ms
 * retransmit storms (Fig. 1). Mittal et al. (PAPERS.md, "Revisiting
 * Network Support for RDMA") show go-back-N's pathologies also emerge
 * under reordering, duplication and corruption. The FaultInjector lets
 * every one of those fault classes be provoked on demand: it implements
 * net::FaultHook as an ordered pipeline of stages, each with per-QP /
 * per-opcode targeting and its own probability, all drawing from one RNG
 * derived via exp::SeedStream — so any failing schedule replays
 * bit-identically from its seed.
 *
 * Stage catalogue:
 *  - DelayStage        extra per-packet latency (uniform in [min, max])
 *  - ReorderStage      bounded reordering: hold a packet so later ones
 *                      overtake it (delay ≤ maxHold)
 *  - DuplicateStage    append marked copies with a small delay spread
 *  - CorruptStage      bit-flip header fields or payload; corrupted
 *                      packets fail the receiver's ICRC check and are
 *                      dropped at ingress unless configured to evade it
 *  - LinkFlapStage     periodic drop windows (a flapping link)
 *  - DropStage         targeted Bernoulli drop
 *  - LossModelStage    any legacy net::LossModel as a pipeline stage
 *  - ForgedNakStage    inject a NAK toward the requester in response to
 *                      a request packet (PSN-sequence-error or RNR)
 */

#ifndef IBSIM_CHAOS_FAULT_INJECTOR_HH
#define IBSIM_CHAOS_FAULT_INJECTOR_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/fault_hook.hh"
#include "net/loss.hh"
#include "net/packet.hh"
#include "simcore/rng.hh"
#include "simcore/time.hh"

namespace ibsim {
namespace chaos {

/**
 * Targeting filter: a stage applies only to packets matching every set
 * field. Default-constructed matches everything.
 */
struct PacketFilter
{
    std::optional<std::uint16_t> srcLid;
    std::optional<std::uint16_t> dstLid;
    std::optional<std::uint32_t> srcQpn;
    std::optional<std::uint32_t> dstQpn;
    std::optional<net::Opcode> opcode;

    /** Restrict to request opcodes (READ/WRITE/SEND/ATOMIC). */
    bool requestsOnly = false;

    /** Restrict to response/ack opcodes (the complement set). */
    bool responsesOnly = false;

    bool matches(const net::Packet& pkt) const;
};

/** True for READ/WRITE/SEND/ATOMIC request opcodes. */
bool isRequestOpcode(net::Opcode op);

/** Per-stage-class injection counters. */
struct InjectorStats
{
    std::uint64_t packetsSeen = 0;
    std::uint64_t delayed = 0;
    std::uint64_t reordered = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t corrupted = 0;
    std::uint64_t dropped = 0;
    std::uint64_t flapDropped = 0;
    std::uint64_t naksForged = 0;
};

/**
 * One stage of the pipeline. Stages transform the delivery list in
 * place: mutate packets, add deliveries, or clear the list to drop.
 */
class FaultStage
{
  public:
    virtual ~FaultStage() = default;

    virtual const char* name() const = 0;

    /**
     * Apply this stage. @p deliveries holds the packet(s) produced by
     * earlier stages (initially exactly the input packet); an empty list
     * after any stage drops the packet and short-circuits the pipeline.
     */
    virtual void apply(std::vector<net::FaultHook::Delivery>& deliveries,
                       Time now, Rng& rng, InjectorStats& stats) = 0;
};

/** Extra latency with probability @p rate, uniform in [min, max]. */
class DelayStage : public FaultStage
{
  public:
    DelayStage(PacketFilter filter, double rate, Time min_delay,
               Time max_delay)
        : filter_(filter), rate_(rate), min_(min_delay), max_(max_delay)
    {}

    const char* name() const override { return "delay"; }
    void apply(std::vector<net::FaultHook::Delivery>& deliveries, Time now,
               Rng& rng, InjectorStats& stats) override;

  private:
    PacketFilter filter_;
    double rate_;
    Time min_;
    Time max_;
};

/**
 * Bounded reordering: with probability @p rate hold a packet for up to
 * @p maxHold so packets sent after it arrive first. The bound keeps the
 * reordering window finite (go-back-N recovers within one window).
 */
class ReorderStage : public FaultStage
{
  public:
    ReorderStage(PacketFilter filter, double rate, Time max_hold)
        : filter_(filter), rate_(rate), maxHold_(max_hold)
    {}

    const char* name() const override { return "reorder"; }
    void apply(std::vector<net::FaultHook::Delivery>& deliveries, Time now,
               Rng& rng, InjectorStats& stats) override;

  private:
    PacketFilter filter_;
    double rate_;
    Time maxHold_;
};

/** Duplicate matching packets (copies marked Packet::chaosDuplicated). */
class DuplicateStage : public FaultStage
{
  public:
    DuplicateStage(PacketFilter filter, double rate,
                   Time max_copy_delay = Time::us(50))
        : filter_(filter), rate_(rate), maxCopyDelay_(max_copy_delay)
    {}

    const char* name() const override { return "duplicate"; }
    void apply(std::vector<net::FaultHook::Delivery>& deliveries, Time now,
               Rng& rng, InjectorStats& stats) override;

  private:
    PacketFilter filter_;
    double rate_;
    Time maxCopyDelay_;
};

/**
 * Bit-flip corruption of header fields and payload bytes. Corrupted
 * packets carry Packet::chaosCorrupted and are dropped by the receiving
 * RNIC's ICRC model; with probability @p evadeCrc the chaosCrcEvading
 * bit is also set and the mangled packet reaches the protocol engines,
 * exercising their malformed-input hardening.
 */
class CorruptStage : public FaultStage
{
  public:
    CorruptStage(PacketFilter filter, double rate, double evade_crc = 0.0)
        : filter_(filter), rate_(rate), evadeCrc_(evade_crc)
    {}

    const char* name() const override { return "corrupt"; }
    void apply(std::vector<net::FaultHook::Delivery>& deliveries, Time now,
               Rng& rng, InjectorStats& stats) override;

  private:
    PacketFilter filter_;
    double rate_;
    double evadeCrc_;
};

/**
 * Link flap: matching packets are dropped while the link is in the
 * "down" part of its cycle. Fully deterministic in virtual time:
 * down while ((now - phase) mod period) < downFor.
 */
class LinkFlapStage : public FaultStage
{
  public:
    LinkFlapStage(PacketFilter filter, Time period, Time down_for,
                  Time phase = Time())
        : filter_(filter), period_(period), downFor_(down_for),
          phase_(phase)
    {}

    const char* name() const override { return "link-flap"; }
    void apply(std::vector<net::FaultHook::Delivery>& deliveries, Time now,
               Rng& rng, InjectorStats& stats) override;

    /** Whether the link is down at @p now (exposed for tests). */
    bool down(Time now) const;

  private:
    PacketFilter filter_;
    Time period_;
    Time downFor_;
    Time phase_;
};

/** Targeted Bernoulli drop. */
class DropStage : public FaultStage
{
  public:
    DropStage(PacketFilter filter, double rate)
        : filter_(filter), rate_(rate)
    {}

    const char* name() const override { return "drop"; }
    void apply(std::vector<net::FaultHook::Delivery>& deliveries, Time now,
               Rng& rng, InjectorStats& stats) override;

  private:
    PacketFilter filter_;
    double rate_;
};

/**
 * Adapter folding a legacy net::LossModel into the pipeline. Unlike the
 * fabric's stage-zero shim this draws from the injector's seed stream,
 * making the loss schedule part of the replayable chaos seed.
 */
class LossModelStage : public FaultStage
{
  public:
    LossModelStage(PacketFilter filter,
                   std::unique_ptr<net::LossModel> model)
        : filter_(filter), model_(std::move(model))
    {}

    const char* name() const override { return "loss-model"; }
    void apply(std::vector<net::FaultHook::Delivery>& deliveries, Time now,
               Rng& rng, InjectorStats& stats) override;

  private:
    PacketFilter filter_;
    std::unique_ptr<net::LossModel> model_;
};

/**
 * Forge a NAK back at the requester in response to a matching request
 * packet. A PSN-sequence-error NAK provokes an immediate go-back-N
 * replay (Fig. 8's recovery path, without a real loss); an RNR NAK
 * provokes the RNR wait machinery. The forged packet carries
 * Packet::chaosForged so the oracle knows it is injected noise.
 *
 * With @p max_rewind > 0 the forged PSN lands up to that many slots
 * *below* the triggering request — inside a range the requester may
 * already have retired via a coalesced ACK. That is the ACK-coalescing
 * edge case where go-back-N implementations double-retire WRs: the
 * requester must clamp the rewind at its window head and never complete
 * an already-completed WQE again (checked by invariants C1/W5).
 */
class ForgedNakStage : public FaultStage
{
  public:
    ForgedNakStage(PacketFilter filter, double rate,
                   net::Opcode nak_opcode = net::Opcode::Nak,
                   Time rnr_delay = Time::ms(1.28),
                   std::uint32_t max_rewind = 0)
        : filter_(filter), rate_(rate), nakOpcode_(nak_opcode),
          rnrDelay_(rnr_delay), maxRewind_(max_rewind)
    {}

    const char* name() const override { return "forged-nak"; }
    void apply(std::vector<net::FaultHook::Delivery>& deliveries, Time now,
               Rng& rng, InjectorStats& stats) override;

  private:
    PacketFilter filter_;
    double rate_;
    net::Opcode nakOpcode_;  ///< Opcode::Nak (seq error) or Opcode::RnrNak
    Time rnrDelay_;
    std::uint32_t maxRewind_;  ///< 0: NAK at the request's own PSN
};

/**
 * The composable fault pipeline the fabric consults per packet.
 */
class FaultInjector : public net::FaultHook
{
  public:
    /** @p seed feeds an exp::SeedStream-derived private RNG. */
    explicit FaultInjector(std::uint64_t seed);

    /** Append a stage (applied in insertion order). */
    FaultInjector& addStage(std::unique_ptr<FaultStage> stage);

    std::size_t stageCount() const { return stages_.size(); }

    void processPacket(const net::Packet& pkt, Time now,
                       std::vector<net::FaultHook::Delivery>& out) override;

    const InjectorStats& stats() const { return stats_; }

    Rng& rng() { return rng_; }

  private:
    Rng rng_;
    std::vector<std::unique_ptr<FaultStage>> stages_;
    InjectorStats stats_;
};

} // namespace chaos
} // namespace ibsim

#endif // IBSIM_CHAOS_FAULT_INJECTOR_HH
