/**
 * @file
 * Port-event chaos: eager link-state events and faults-during-faults.
 *
 * TopologyStage models flaps as silent per-packet drops — the transport
 * sees nothing but missing packets. Real fabrics also *tell* the HCA:
 * the SM sweeps, ports report PORT_ERR/PORT_ACTIVE async events, and
 * recovery machinery (QP re-arm, APM/SM reroute) keys off them.
 * PortEventDriver converts a chaos::Topology's per-link flap schedules
 * into scheduled port-down/port-up *events*: at each window boundary it
 * toggles the fabric's link state (packets then drop at the sending
 * port, not in a pipeline stage) and raises a net::PortEvent toward both
 * endpoints, which rnic::Rnic translates into verbs::AsyncEvents and —
 * profile-gated — into QP recovery.
 *
 * Under the sharded kernel every endpoint's event chain runs on its own
 * island's queue and toggles only that island's link-state replica, the
 * same fork-the-schedule trick ChaosEngine::installSharded() plays with
 * TopologyStage replicas: LinkSchedule is a pure function of (plan,
 * seed, time), so per-island copies replay bit-identical windows at any
 * worker count.
 *
 * CombinedStormStage layers faults *during* faults: while a node's links
 * are inside a down window, it fires ODP invalidation storms against the
 * node's translation table and clamps its CQ capacity — the
 * link-recovery machinery then runs concurrently with page-fault storms
 * and completion pressure, which is where recovery bugs actually live.
 */

#ifndef IBSIM_CHAOS_PORT_EVENTS_HH
#define IBSIM_CHAOS_PORT_EVENTS_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "cluster/topology.hh"
#include "net/fabric.hh"
#include "odp/odp_driver.hh"
#include "odp/translation_table.hh"
#include "simcore/event_queue.hh"
#include "simcore/rng.hh"
#include "verbs/completion_queue.hh"

namespace ibsim {
namespace chaos {

/**
 * Drives a Topology's flap schedules as scheduled port events. Two event
 * chains exist per flapping link — one per endpoint — each owning a
 * LinkSchedule replica; under the sharded kernel each chain lives on its
 * endpoint's island queue and touches only island-owned state (its own
 * lane's link replica, its own RNIC), so the event sequence is
 * bit-identical at any job count. Non-owning: fabric and topology must
 * outlive the driver.
 */
class PortEventDriver
{
  public:
    PortEventDriver(net::Fabric& fabric, Topology& topology);

    /** Single-queue mode: run every chain on the fabric's one queue. */
    void start();

    /**
     * Island mode: run each endpoint's chains on that endpoint's island
     * queue (fabric.islandEvents(islandOf(lid))). Call after every LID
     * is assigned and before the kernel runs.
     */
    void startSharded();

    /** Completed down windows across links (each link counted once). */
    std::uint64_t linkFlaps() const;

    /** Port events raised toward RNICs (both endpoints, both edges). */
    std::uint64_t eventsRaised() const;

  private:
    /** One endpoint's view of one flapping link. */
    struct Chain
    {
        std::uint16_t self;
        std::uint16_t peer;
        std::size_t island;
        LinkSchedule sched;
        EventQueue* events;
        std::uint64_t raised = 0;
    };

    void startChains(bool sharded);
    void fire(std::size_t idx);

    /**
     * Whether, in @p c's island view, some third mesh link out of
     * c.self is still up — an SM-style detour exists.
     */
    bool hasRedundantPath(const Chain& c) const;

    net::Fabric& fabric_;
    Topology& topology_;
    /** Deque: fire() captures indices, addresses must stay stable. */
    std::deque<Chain> chains_;
    bool started_ = false;
};

/** Knobs of a CombinedStormStage (see the class). */
struct CombinedStormConfig
{
    std::uint64_t seed = 1;
    /** Cadence of the per-node pressure ticker. */
    Time tickInterval = Time::us(50);
    /** Ticker lifetime (bounded so queues drain). */
    Time duration = Time::ms(50);
    /** Mapped pages invalidated per down-window tick. */
    std::size_t pagesPerBurst = 4;
    /** CQ capacity clamp during down windows (0 leaves it unbounded). */
    std::size_t squeezeCapacity = 0;
};

/** Aggregate observability of a combined storm. */
struct CombinedStormStats
{
    std::uint64_t ticks = 0;
    std::uint64_t downTicks = 0;  ///< ticks inside a down window
    std::uint64_t pagesInvalidated = 0;
    std::uint64_t capacityClamps = 0;  ///< unclamped -> clamped edges
};

/**
 * Faults-during-faults: per registered node, a ticker on the node's
 * island queue consults private LinkSchedule replicas of the node's
 * flapping links and, whenever any is inside a down window, invalidates
 * random mapped ODP pages of the registered range and clamps the node's
 * CQ capacity (restoring it when every link is back up). Replicas —
 * not the fabric's live link state — decide "down", so each tick is a
 * pure function of (seed, time) and job-count invariant. Non-owning
 * throughout; register targets before start().
 */
class CombinedStormStage
{
  public:
    CombinedStormStage(net::Fabric& fabric, Topology& topology,
                       const CombinedStormConfig& config);

    /**
     * Register @p lid's resources. @p addr / @p len bound the ODP range
     * the storm may invalidate; @p cq is the node's completion queue.
     */
    void addTarget(std::uint16_t lid, odp::OdpDriver& driver,
                   odp::TranslationTable& table, std::uint64_t addr,
                   std::uint64_t len, verbs::CompletionQueue& cq);

    /** Schedule every target's ticker (single-queue or island mode). */
    void start();

    /** Summed per-target stats (read after the run). */
    CombinedStormStats stats() const;

  private:
    struct Target
    {
        std::uint16_t lid;
        odp::OdpDriver* driver;
        odp::TranslationTable* table;
        std::uint64_t firstPage;
        std::uint64_t lastPage;
        verbs::CompletionQueue* cq;
        EventQueue* events = nullptr;
        Rng rng;
        /** Private replicas of the node's flapping links. */
        std::vector<LinkSchedule> links;
        std::size_t normalCapacity = 0;
        bool squeezed = false;
        Time endAt;
        CombinedStormStats stats;
    };

    void tick(std::size_t idx);

    net::Fabric& fabric_;
    Topology& topology_;
    CombinedStormConfig config_;
    /** Deque: tick() captures indices, addresses must stay stable. */
    std::deque<Target> targets_;
    bool started_ = false;
};

} // namespace chaos
} // namespace ibsim

#endif // IBSIM_CHAOS_PORT_EVENTS_HH
