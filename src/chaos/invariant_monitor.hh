/**
 * @file
 * Online invariant oracle for the full transport surface (RC/UC/UD).
 *
 * The chaos engine (fault_injector.hh) answers "can we provoke this fault
 * class?"; the monitor answers "did the transport stay correct while it
 * happened?". It taps the fabric at egress, the RNIC post paths, and the
 * completion queues, and checks the guarantees the paper's experiments
 * lean on — exactly-once completion per posted WR (Sec. II: RC "guarantees
 * lossless ordered delivery"), go-back-N recovery staying inside the
 * posted PSN window (Fig. 8), ACK/NAK coherence, exactly-once atomics,
 * and the fire-and-forget contracts of UC/UD — emitting structured
 * Violation reports instead of asserting.
 *
 * Invariants checked (every transport unless noted):
 *  P1 psn-monotonic       a QP's nextPsn never moves backwards across posts
 *  W1 fresh-once          a fresh (non-retransmitted) request PSN appears
 *                         on the wire at most once per flow
 *  W2 fresh-posted        fresh request PSNs lie inside the posted range
 *  W3 retrans-posted      RC: retransmitted PSNs lie inside the posted
 *                         range
 *  W4 ack-coherence       RC: ACK/NAK/response PSNs arriving at a
 *                         requester reference a PSN it actually posted
 *  W5 retrans-window      RC: retransmissions never fall below the
 *                         go-back-N window (the oldest incomplete WQE)
 *  C1 send-exactly-once   per (flow, wrId): send completions <= posts
 *  C2 recv-exactly-once   per (flow, wrId): recv completions <= posts
 *                         (a duplicate RC delivery would consume a second
 *                         RECV and trip this)
 *  F1 send-completion     finalCheck(): every posted send WR completed
 *     -missing            exactly once (drained-workload runs only).
 *                         For UC/UD — whose WRs complete at post — C1+F1
 *                         together are the per-packet completion contract.
 *  A1 atomic-replay       RC atomics are exactly-once: every AtomicResponse
 *     -value / -lost      a flow emits for one PSN carries the same
 *                         original value (a re-executing responder returns
 *                         a different one — "-value", at egress), and every
 *                         delivered duplicate atomic inside the responder's
 *                         executed range is answered from the replay cache
 *                         ("-lost", at finalCheck(): silence means the
 *                         cache lost a record it was required to hold)
 *  A2 atomic-             fresh (non-replayed) atomic responses serialize
 *     serialization       against overlapping READ response streams: an
 *                         atomic's response PSN exceeds every earlier fresh
 *                         data response, and no fresh READ data is emitted
 *                         at or below an already-answered atomic's PSN
 *  U1 ud-no-retransmit    a UD flow never marks a datagram as a
 *                         retransmission (fire-and-forget; PSN reuse on a
 *                         UD flow additionally trips W1)
 *  U3 ud-silent-drop      finalCheck(): datagrams delivered to a UD flow
 *                         reconcile exactly as RECV completions plus the
 *                         responder's counted drops (QpStats::udDrops) —
 *                         nothing falls through silently. (Assumes the CQ
 *                         is not under chaos pressure: a lost completion
 *                         is exactly the kind of silent loss this flags.)
 *  V1 ud-verb / uc-verb   request opcodes match the service type: UD
 *                         carries SENDs only, UC carries SEND/WRITE only
 *  V2 ud-one-way /        UD/UC flows never emit response-class packets
 *     uc-one-way          (no ACK/NAK machinery exists for them)
 *  V3 uc-no-retransmit    a UC flow never marks a packet as retransmitted
 *  S1 swrel-exactly-once  SoftReliableChannel delivered each sequence
 *                         number at most once, and no message is both
 *                         acked and failed
 *  E1 error-qp-completion a QP in the Error state never produces a
 *                         *successful* completion (flush completions
 *                         drain legally; RcRequester pushes them before
 *                         the Error transition)
 *
 * QP recovery (rnic re-arm, QpContext::resetEpoch advancing): the PSN
 * stream restarts from zero, so on the first post/egress of a new epoch
 * the wire bookkeeping (W1 fresh-set, P1 anchor, A1/A2 atomic ledgers)
 * re-anchors; the completion ledgers (C1/C2/F1) deliberately survive —
 * a recovered QP re-delivering an already-acked WR still trips
 * send-exactly-once, which is the "recovery must not re-deliver" rule.
 * CM re-arm handshake packets (CmRearm/CmRearmAck) are hash-mixed but
 * excluded from request/response bookkeeping (they carry control-plane
 * epochs, not transport PSNs), and cross-island deferred checks carry
 * the packet's epoch so a judgement never crosses a reset boundary.
 *
 * Packets carrying chaos provenance flags (duplicated / corrupted /
 * forged — see net::Packet) are recognized as injected noise and excluded
 * from wire bookkeeping, so the oracle judges endpoint behaviour, not the
 * injector's. The egress tap fires synchronously inside Fabric::send(),
 * so wire checks observe the endpoint's emission order even when the
 * injector reorders arrivals. Responder-role checks (A1/A2/U3) likewise
 * key on egress-time responder state: a request observed as a duplicate
 * at egress is still a duplicate at delivery, because expectedPsn only
 * advances.
 *
 * Multi-node topologies: watchAll(cluster) attaches every QP of every
 * node, whatever its transport — the one-call attach for >2-node meshes
 * flapping under a chaos::Topology schedule (cluster/topology.hh).
 *
 * Island mode (fabric.sharded()): the monitor shards itself one-to-one
 * with the fabric's islands. Each shard owns the flows of its island's
 * LIDs, its own violation list and its own FNV hash stream, written only
 * by the worker executing that island — no locks on the hot path. The
 * two checks that read a *remote* flow's live QP state (A1 must-answer
 * reads the responder's expectedPsn, W4 ack-coherence reads the
 * requester's nextPsn) are deferred through cross-island CrossChannels
 * keyed by at + lookahead — the packet they shadow cannot take effect at
 * the destination before then — and evaluated, in (time, wire-id) merge
 * order, by the flush preceding the destination window that covers that
 * key (quiesce flushes judge every lingering record). The channel-clock
 * protocol guarantees all records at or below a window's horizon are
 * visible, so the judgement window is a pure function of virtual state:
 * deterministic at any worker count and ScheduleMode. Deferral is sound:
 * expectedPsn/nextPsn only advance and the judging flush precedes the
 * shadowed packet's delivery, so the judgement matches the arrival-time
 * meaning of both invariants. With one shard (single-queue mode) every
 * path below collapses to the historical code, keeping the traceHash
 * goldens.
 */

#ifndef IBSIM_CHAOS_INVARIANT_MONITOR_HH
#define IBSIM_CHAOS_INVARIANT_MONITOR_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "net/fabric.hh"
#include "rnic/qp_context.hh"
#include "rnic/rnic.hh"
#include "simcore/cross_channel.hh"
#include "simcore/time.hh"

namespace ibsim {

class Cluster;

namespace swrel {
class SoftReliableChannel;
} // namespace swrel

namespace chaos {

/** One invariant violation (structured, render with str()). */
struct Violation
{
    std::string invariant;  ///< e.g. "fresh-once", "send-exactly-once"
    Time at;
    std::uint16_t lid = 0;
    std::uint32_t qpn = 0;
    std::string detail;

    std::string str() const;
};

/**
 * The oracle. Construct over a fabric, watch() the QPs under test, run
 * the workload, then consult violations() / report(); call finalCheck()
 * first if the workload is expected to have fully drained.
 */
class InvariantMonitor : public ShardedKernel::BarrierAgent
{
  public:
    /**
     * Installs the egress tap on @p fabric. When the fabric is in island
     * mode the monitor shards its state per island and registers as a
     * BarrierAgent on the kernel (construct it after every node exists).
     */
    explicit InvariantMonitor(net::Fabric& fabric);

    ~InvariantMonitor() override;

    InvariantMonitor(const InvariantMonitor&) = delete;
    InvariantMonitor& operator=(const InvariantMonitor&) = delete;

    /**
     * Watch one QP: wire checks for its flow, post/completion accounting
     * via the RNIC and CQ taps (installed once per RNIC / CQ).
     *
     * Late attach is supported: watching a QP that already carried
     * traffic snapshots its nextPsn, and wire/completion events that can
     * only be judged with pre-attach knowledge (fresh transmissions of
     * pre-attach PSNs, completions of pre-attach WRs) are excluded from
     * bookkeeping instead of reported as violations. This lets
     * long-running services be audited mid-run.
     */
    void watch(rnic::Rnic& rnic, rnic::QpContext& qp);

    /**
     * Watch every QP on every node of @p cluster — the one-call attach
     * for cluster-scale runs (e.g. auditing the 4096-QP flood-capacity
     * bench). Safe to call mid-run (late attach per QP, see watch())
     * and to call repeatedly as QPs are added.
     */
    void watchAll(Cluster& cluster);

    /**
     * End-of-run check for drained workloads: every posted send WR on
     * every watched flow completed exactly once (F1). Not called from
     * wire taps because in-flight work is not a violation.
     */
    void finalCheck();

    /** S1: exactly-once delivery accounting of a soft-reliable channel. */
    void checkSwrel(const swrel::SoftReliableChannel& channel);

    /** Total violations detected (including any beyond the stored cap). */
    std::uint64_t violationCount() const;

    bool clean() const { return violationCount() == 0; }

    /**
     * Stored violations (first storedCap per shard per run). Island
     * mode concatenates shards in island order — deterministic for a
     * fixed seed at any worker count.
     */
    const std::vector<Violation>& violations() const;

    /** Multi-line human-readable report (stable across identical runs). */
    std::string report() const;

    /**
     * FNV-1a hash over every packet observed at egress (fields + drop
     * flag, in tap order). Two runs with the same seeds must agree.
     * Island mode folds the per-island hash streams in island order, so
     * the value is independent of the worker count (but is not the
     * single-queue mode's hash — island mode is its own deterministic
     * mode).
     */
    std::uint64_t traceHash() const;

    /** Packets observed at the egress tap. */
    std::uint64_t packetsObserved() const;

    /** BarrierAgent: evaluate deferred cross-island checks for @p island
     * whose key (at + lookahead) is covered by @p horizon; a quiesce
     * flush (now == horizon) judges everything with at <= now. */
    std::uint64_t flushInbound(std::size_t island, Time now,
                               Time horizon) override;

  private:
    struct FlowKey
    {
        std::uint16_t lid;
        std::uint32_t qpn;
        bool operator<(const FlowKey& o) const
        {
            return lid != o.lid ? lid < o.lid : qpn < o.qpn;
        }
    };

    struct FlowState
    {
        rnic::Rnic* rnic = nullptr;
        rnic::QpContext* qp = nullptr;

        /** P1 state: qp->nextPsn observed at the previous post. */
        std::uint32_t lastNextPsn = 0;
        bool anyPostSeen = false;

        /** Reset epoch the wire bookkeeping is anchored to. */
        std::uint16_t lastEpoch = 0;

        /**
         * @{ Late-attach state: nextPsn snapshotted at watch() time, and
         * whether the QP had prior traffic then. PSNs below attachPsn
         * were posted unobserved, so the fresh-wire checks skip them,
         * and completions of WRs never seen posted are ignored.
         */
        std::uint32_t attachPsn = 0;
        bool lateAttach = false;
        /** @} */

        /** W1 state: fresh request PSNs seen on the wire. */
        std::set<std::uint32_t> freshSeen;

        /** @{ C1/C2/F1 accounting. */
        std::uint64_t sendPosted = 0;
        std::uint64_t sendCompleted = 0;
        std::map<std::uint64_t, std::uint64_t> sendPostedByWr;
        std::map<std::uint64_t, std::uint64_t> sendCompletedByWr;
        std::map<std::uint64_t, std::uint64_t> recvPostedByWr;
        std::map<std::uint64_t, std::uint64_t> recvCompletedByWr;
        /** @} */

        /** U3: RECV completions observed on this flow (post-attach). */
        std::uint64_t recvCompleted = 0;

        /**
         * @{ A1 responder-role state. mustAnswer counts delivered
         * duplicate atomics inside the executed range (recorded at
         * request egress, judged against answered at finalCheck());
         * respPayload pins the first response value seen per PSN.
         */
        std::map<std::uint32_t, std::uint64_t> atomicMustAnswer;
        std::map<std::uint32_t, std::uint64_t> atomicAnswered;
        std::map<std::uint32_t, std::vector<std::uint8_t>> atomicRespPayload;
        /** Injector corrupted a replay answer in flight: the per-PSN
         * answered ledger is no longer attributable, A1-lost stands
         * down for this flow (value/serialization checks keep running). */
        bool atomicAnswerAttributionLost = false;
        /** @} */

        /** @{ A2 state: PSN of the last fresh (non-replayed) data-bearing
         * response / fresh atomic response this flow emitted. */
        std::uint32_t lastFreshDataPsn = 0;
        bool anyFreshData = false;
        std::uint32_t lastFreshAtomicPsn = 0;
        bool anyFreshAtomic = false;
        /** @} */
    };

    /**
     * A deferred cross-island check, parked in a (src, dst) channel
     * until the destination's first window whose horizon covers
     * at + lookahead. (at, wireId) orders the drain merge — a strict
     * total order, wire ids are unique.
     */
    struct CrossRecord
    {
        Time at;               ///< egress time on the source island
        std::uint64_t wireId;  ///< merge tiebreak
        std::uint8_t kind;     ///< 0 = A1 must-answer, 1 = W4 coherence
        net::Opcode op;        ///< W4: opcode for the violation text
        std::uint16_t dstLid;
        std::uint32_t dstQpn;
        std::uint32_t psn;
        std::uint16_t epoch;   ///< reset epoch the PSN belongs to
    };

    /**
     * Per-island monitor state: the flows of this island's LIDs, the
     * island's violation list and hash stream, and its outbound deferred
     * checks. Single-queue mode has exactly one shard, making every
     * path byte-identical to the pre-sharding monitor.
     */
    struct Shard
    {
        std::map<FlowKey, FlowState> flows;
        std::vector<Violation> violations;
        std::uint64_t violationCount = 0;
        std::uint64_t hash = 14695981039346656037ull;  // FNV offset basis
        std::uint64_t packetsObserved = 0;
        /** Outbound channels keyed by at + lookahead, one per dst
         * island (a deque: CrossChannel holds a mutex, must not move). */
        std::deque<CrossChannel<CrossRecord>> out;
        std::vector<CrossRecord> inbox;  ///< drain merge scratch
    };

    void onEgress(const net::Packet& pkt, bool dropped);
    void onRequestEgress(Shard& shard, const net::Packet& pkt,
                         bool dropped);
    void onResponseEgress(Shard& shard, const net::Packet& pkt,
                          bool dropped);
    void onSendPost(std::uint16_t lid, const rnic::QpContext& qp,
                    const rnic::SendWqe& wqe);
    void onRecvPost(std::uint16_t lid, const rnic::QpContext& qp,
                    const rnic::RecvWqe& wqe);
    void onCompletion(std::uint16_t lid, const verbs::WorkCompletion& wc);

    /** The shard owning @p lid's flows (shard 0 when unsharded). */
    Shard& shardOf(std::uint16_t lid);

    /** The shard of the island currently executing (egress/delivery). */
    Shard& egressShard();

    FlowState* flow(std::uint16_t lid, std::uint32_t qpn);

    void emit(Shard& shard, const std::string& invariant, Time at,
              std::uint16_t lid, std::uint32_t qpn,
              const std::string& detail);

    /**
     * Re-anchor a flow's wire bookkeeping when its QP's resetEpoch moved
     * (recovery restarted the PSN stream). Completion ledgers survive.
     */
    void syncEpoch(FlowState& st);

    /** The A1 must-answer judgement (inline or at a barrier). @p epoch
     * gates it: stale-epoch records never judge a recovered responder. */
    void judgeAtomicMustAnswer(std::uint16_t dst_lid, std::uint32_t dst_qpn,
                               std::uint32_t psn, std::uint16_t epoch);

    /** The W4 ack-coherence judgement (inline or at a barrier). */
    void judgeAckCoherence(Shard& shard, Time at, net::Opcode op,
                           std::uint16_t dst_lid, std::uint32_t dst_qpn,
                           std::uint32_t psn, std::uint16_t epoch);

    static constexpr std::size_t storedCap = 64;

    net::Fabric& fabric_;
    /** One per island; exactly one in single-queue mode. A deque keeps
     * shard addresses stable (not that they move — sized once). */
    std::deque<Shard> shards_;
    std::set<const rnic::Rnic*> tappedRnics_;
    std::set<const verbs::CompletionQueue*> tappedCqs_;
    /** Merged shard views, rebuilt on demand (accessors are cold). */
    mutable std::vector<Violation> mergedViolations_;
};

} // namespace chaos
} // namespace ibsim

#endif // IBSIM_CHAOS_INVARIANT_MONITOR_HH
