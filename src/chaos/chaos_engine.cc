#include "chaos/chaos_engine.hh"

#include <memory>

#include "chaos/port_events.hh"
#include "cluster/topology.hh"
#include "exp/seed_stream.hh"
#include "mem/address_space.hh"

namespace ibsim {
namespace chaos {

ChaosEngine::ChaosEngine(EventQueue& events, const ChaosConfig& config)
    : events_(events), config_(config),
      rng_(exp::SeedStream("chaos.engine", config.seed).base()),
      injector_(config.seed)
{
    buildStages(injector_, config_);
}

ChaosEngine::~ChaosEngine() = default;

void
ChaosEngine::buildStages(FaultInjector& injector, const ChaosConfig& config)
{
    // Canonical stage order: timing faults first (they keep the packet),
    // then duplication and corruption, then the drop classes, then
    // injection of new traffic. A fixed order keeps equal configs
    // producing equal schedules.
    if (config.delayRate > 0.0) {
        injector.addStage(std::make_unique<DelayStage>(
            config.filter, config.delayRate, config.delayMin,
            config.delayMax));
    }
    if (config.reorderRate > 0.0) {
        injector.addStage(std::make_unique<ReorderStage>(
            config.filter, config.reorderRate, config.reorderMaxHold));
    }
    if (config.dupRate > 0.0) {
        injector.addStage(std::make_unique<DuplicateStage>(
            config.filter, config.dupRate, config.dupMaxDelay));
    }
    if (config.corruptRate > 0.0) {
        injector.addStage(std::make_unique<CorruptStage>(
            config.filter, config.corruptRate, config.corruptEvadeCrc));
    }
    if (config.flapDown > Time()) {
        injector.addStage(std::make_unique<LinkFlapStage>(
            config.filter, config.flapPeriod, config.flapDown));
    }
    if (config.dropRate > 0.0) {
        injector.addStage(std::make_unique<DropStage>(config.filter,
                                                      config.dropRate));
    }
    if (config.forgedNakRate > 0.0) {
        PacketFilter requests = config.filter;
        requests.requestsOnly = true;
        injector.addStage(std::make_unique<ForgedNakStage>(
            requests, config.forgedNakRate, net::Opcode::Nak,
            Time::ms(1.28), config.forgedNakMaxRewind));
    }
}

void
ChaosEngine::attachTopology(Topology& topology)
{
    topology_ = &topology;
    injector_.addStage(std::make_unique<TopologyStage>(topology));
}

void
ChaosEngine::attachPortEvents(Topology& topology)
{
    eventTopology_ = &topology;
}

void
ChaosEngine::install(net::Fabric& fabric)
{
    fabric.setFaultHook(&injector_);
    if (eventTopology_ != nullptr && portEvents_ == nullptr) {
        portEvents_ =
            std::make_unique<PortEventDriver>(fabric, *eventTopology_);
        portEvents_->start();
    }
}

void
ChaosEngine::installSharded(net::Fabric& fabric)
{
    // One pipeline fork per island: same stage list as install(), a
    // disjoint RNG stream each. Topology replicas replay the identical
    // flap windows (schedules are pure functions of (seed, link, time));
    // they exist because linkUp() advances per-link cursors, which must
    // not be shared across workers.
    const exp::SeedStream fork("chaos.engine.island", config_.seed);
    islandInjectors_.clear();
    topoReplicas_.clear();
    for (std::size_t i = 0; i < fabric.islandCount(); ++i) {
        auto injector = std::make_unique<FaultInjector>(fork.trialSeed(0, i));
        buildStages(*injector, config_);
        if (topology_ != nullptr) {
            topoReplicas_.push_back(std::make_unique<Topology>(*topology_));
            injector->addStage(
                std::make_unique<TopologyStage>(*topoReplicas_.back()));
        }
        fabric.setIslandFaultHook(i, injector.get());
        islandInjectors_.push_back(std::move(injector));
    }

    // Port-event mode: the driver itself forks one schedule replica per
    // endpoint chain onto that endpoint's island queue — the same trick
    // as the TopologyStage replicas above, applied to events.
    if (eventTopology_ != nullptr && portEvents_ == nullptr) {
        portEvents_ =
            std::make_unique<PortEventDriver>(fabric, *eventTopology_);
        portEvents_->startSharded();
    }
}

FaultInjector&
ChaosEngine::islandInjector(std::size_t island)
{
    return *islandInjectors_.at(island);
}

InjectorStats
ChaosEngine::shardedStats() const
{
    InjectorStats total;
    for (const auto& injector : islandInjectors_) {
        const InjectorStats& s = injector->stats();
        total.packetsSeen += s.packetsSeen;
        total.delayed += s.delayed;
        total.reordered += s.reordered;
        total.duplicated += s.duplicated;
        total.corrupted += s.corrupted;
        total.dropped += s.dropped;
        total.flapDropped += s.flapDropped;
        total.naksForged += s.naksForged;
    }
    return total;
}

std::uint64_t
ChaosEngine::shardedFlaps() const
{
    std::uint64_t total = 0;
    for (const auto& topo : topoReplicas_)
        total += topo->totalFlaps();
    return total;
}

void
ChaosEngine::addOdpLatencySpikes(odp::OdpDriver& driver, double rate,
                                 double factor)
{
    driver.setLatencyChaos([this, rate, factor] {
        if (rng_.chance(rate)) {
            ++stats_.odpSpikes;
            return factor;
        }
        return 1.0;
    });
}

void
ChaosEngine::startInvalidationStorm(odp::OdpDriver& driver,
                                    odp::TranslationTable& table,
                                    std::uint64_t addr, std::uint64_t len,
                                    Time interval,
                                    std::size_t pages_per_burst,
                                    std::size_t bursts)
{
    if (len == 0 || pages_per_burst == 0 || bursts == 0 || !table.odp())
        return;
    storms_.push_back({&driver, &table, mem::pageOf(addr),
                       mem::pageOf(addr + len - 1), interval,
                       pages_per_burst, bursts});
    Storm* storm = &storms_.back();
    events_.scheduleAfter(interval, [this, storm] { stormTick(storm); });
}

void
ChaosEngine::stormTick(Storm* storm)
{
    for (std::size_t i = 0; i < storm->pagesPerBurst; ++i) {
        const auto page = static_cast<std::uint64_t>(rng_.uniformInt(
            static_cast<std::int64_t>(storm->firstPage),
            static_cast<std::int64_t>(storm->lastPage)));
        const std::uint64_t va = page * mem::pageSize;
        // With the state machine on, the storm also hits pages
        // mid-transition (Faulting or inside a window), driving the
        // FaultingInvalidated and window-extension paths; legacy mode
        // only ever unmapped mapped pages.
        const bool transient =
            storm->driver->timing().pageStateMachine &&
            storm->driver->pageTransient(*storm->table, va);
        if (storm->table->mappedPage(va) || transient) {
            storm->driver->invalidate(*storm->table, va);
            ++stats_.pagesInvalidated;
        }
    }
    ++stats_.stormBursts;
    if (--storm->burstsLeft > 0) {
        events_.scheduleAfter(storm->interval,
                              [this, storm] { stormTick(storm); });
    }
}

void
ChaosEngine::applyCqPressure(verbs::CompletionQueue& cq,
                             std::size_t capacity)
{
    cq.setCapacity(capacity);
}

} // namespace chaos
} // namespace ibsim
