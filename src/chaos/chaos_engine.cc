#include "chaos/chaos_engine.hh"

#include <memory>

#include "cluster/topology.hh"
#include "exp/seed_stream.hh"
#include "mem/address_space.hh"

namespace ibsim {
namespace chaos {

ChaosEngine::ChaosEngine(EventQueue& events, const ChaosConfig& config)
    : events_(events), config_(config),
      rng_(exp::SeedStream("chaos.engine", config.seed).base()),
      injector_(config.seed)
{
    // Canonical stage order: timing faults first (they keep the packet),
    // then duplication and corruption, then the drop classes, then
    // injection of new traffic. A fixed order keeps equal configs
    // producing equal schedules.
    if (config_.delayRate > 0.0) {
        injector_.addStage(std::make_unique<DelayStage>(
            config_.filter, config_.delayRate, config_.delayMin,
            config_.delayMax));
    }
    if (config_.reorderRate > 0.0) {
        injector_.addStage(std::make_unique<ReorderStage>(
            config_.filter, config_.reorderRate, config_.reorderMaxHold));
    }
    if (config_.dupRate > 0.0) {
        injector_.addStage(std::make_unique<DuplicateStage>(
            config_.filter, config_.dupRate, config_.dupMaxDelay));
    }
    if (config_.corruptRate > 0.0) {
        injector_.addStage(std::make_unique<CorruptStage>(
            config_.filter, config_.corruptRate, config_.corruptEvadeCrc));
    }
    if (config_.flapDown > Time()) {
        injector_.addStage(std::make_unique<LinkFlapStage>(
            config_.filter, config_.flapPeriod, config_.flapDown));
    }
    if (config_.dropRate > 0.0) {
        injector_.addStage(std::make_unique<DropStage>(config_.filter,
                                                       config_.dropRate));
    }
    if (config_.forgedNakRate > 0.0) {
        PacketFilter requests = config_.filter;
        requests.requestsOnly = true;
        injector_.addStage(std::make_unique<ForgedNakStage>(
            requests, config_.forgedNakRate, net::Opcode::Nak,
            Time::ms(1.28), config_.forgedNakMaxRewind));
    }
}

void
ChaosEngine::attachTopology(Topology& topology)
{
    injector_.addStage(std::make_unique<TopologyStage>(topology));
}

void
ChaosEngine::addOdpLatencySpikes(odp::OdpDriver& driver, double rate,
                                 double factor)
{
    driver.setLatencyChaos([this, rate, factor] {
        if (rng_.chance(rate)) {
            ++stats_.odpSpikes;
            return factor;
        }
        return 1.0;
    });
}

void
ChaosEngine::startInvalidationStorm(odp::OdpDriver& driver,
                                    odp::TranslationTable& table,
                                    std::uint64_t addr, std::uint64_t len,
                                    Time interval,
                                    std::size_t pages_per_burst,
                                    std::size_t bursts)
{
    if (len == 0 || pages_per_burst == 0 || bursts == 0 || !table.odp())
        return;
    storms_.push_back({&driver, &table, mem::pageOf(addr),
                       mem::pageOf(addr + len - 1), interval,
                       pages_per_burst, bursts});
    Storm* storm = &storms_.back();
    events_.scheduleAfter(interval, [this, storm] { stormTick(storm); });
}

void
ChaosEngine::stormTick(Storm* storm)
{
    for (std::size_t i = 0; i < storm->pagesPerBurst; ++i) {
        const auto page = static_cast<std::uint64_t>(rng_.uniformInt(
            static_cast<std::int64_t>(storm->firstPage),
            static_cast<std::int64_t>(storm->lastPage)));
        const std::uint64_t va = page * mem::pageSize;
        if (storm->table->mappedPage(va)) {
            storm->driver->invalidate(*storm->table, va);
            ++stats_.pagesInvalidated;
        }
    }
    ++stats_.stormBursts;
    if (--storm->burstsLeft > 0) {
        events_.scheduleAfter(storm->interval,
                              [this, storm] { stormTick(storm); });
    }
}

void
ChaosEngine::applyCqPressure(verbs::CompletionQueue& cq,
                             std::size_t capacity)
{
    cq.setCapacity(capacity);
}

} // namespace chaos
} // namespace ibsim
