#include "chaos/invariant_monitor.hh"

#include <string>

#include "chaos/fault_injector.hh"
#include "cluster/cluster.hh"
#include "swrel/soft_reliable.hh"
#include "verbs/completion_queue.hh"

namespace ibsim {
namespace chaos {

namespace {

constexpr std::uint64_t fnvPrime = 1099511628211ull;

std::uint64_t
mix(std::uint64_t hash, std::uint64_t value)
{
    return (hash ^ value) * fnvPrime;
}

std::string
flowStr(std::uint16_t lid, std::uint32_t qpn)
{
    return "lid=" + std::to_string(lid) + " qpn=" + std::to_string(qpn);
}

} // namespace

std::string
Violation::str() const
{
    return "[" + at.str() + "] " + invariant + " " + flowStr(lid, qpn) +
           ": " + detail;
}

InvariantMonitor::InvariantMonitor(net::Fabric& fabric) : fabric_(fabric)
{
    fabric_.addTap([this](const net::Packet& pkt, bool dropped) {
        onEgress(pkt, dropped);
    });
}

void
InvariantMonitor::watch(rnic::Rnic& rnic, rnic::QpContext& qp)
{
    const FlowKey key{rnic.lid(), qp.qpn};
    const bool fresh = flows_.find(key) == flows_.end();
    FlowState& st = flows_[key];
    st.rnic = &rnic;
    st.qp = &qp;
    if (fresh) {
        st.lastNextPsn = qp.nextPsn;
        st.attachPsn = qp.nextPsn;
        st.lateAttach = qp.nextPsn != 0 || !qp.outstanding.empty();
    }

    if (tappedRnics_.insert(&rnic).second) {
        const std::uint16_t lid = rnic.lid();
        rnic.addSendPostTap(
            [this, lid](const rnic::QpContext& q, const rnic::SendWqe& w) {
                onSendPost(lid, q, w);
            });
        rnic.addRecvPostTap(
            [this, lid](const rnic::QpContext& q, const rnic::RecvWqe& w) {
                onRecvPost(lid, q, w);
            });
    }
    if (qp.cq != nullptr && tappedCqs_.insert(qp.cq).second) {
        const std::uint16_t lid = rnic.lid();
        qp.cq->addTap([this, lid](const verbs::WorkCompletion& wc) {
            onCompletion(lid, wc);
        });
    }
}

void
InvariantMonitor::watchAll(Cluster& cluster)
{
    for (std::size_t i = 0; i < cluster.nodeCount(); ++i) {
        rnic::Rnic& rnic = cluster.node(i).rnic();
        for (rnic::QpContext* qp : rnic.allQps())
            watch(rnic, *qp);
    }
}

InvariantMonitor::FlowState*
InvariantMonitor::flow(std::uint16_t lid, std::uint32_t qpn)
{
    auto it = flows_.find({lid, qpn});
    return it == flows_.end() ? nullptr : &it->second;
}

void
InvariantMonitor::emit(const std::string& invariant, std::uint16_t lid,
                       std::uint32_t qpn, const std::string& detail)
{
    ++totalViolations_;
    if (violations_.size() < storedCap) {
        violations_.push_back(
            {invariant, fabric_.events().now(), lid, qpn, detail});
    }
}

void
InvariantMonitor::onEgress(const net::Packet& pkt, bool dropped)
{
    ++packetsObserved_;
    traceHash_ = mix(traceHash_, static_cast<std::uint64_t>(pkt.op));
    traceHash_ = mix(traceHash_, (std::uint64_t(pkt.srcLid) << 16) |
                                     pkt.dstLid);
    traceHash_ = mix(traceHash_, (std::uint64_t(pkt.srcQpn) << 32) |
                                     pkt.dstQpn);
    traceHash_ = mix(traceHash_, pkt.psn);
    traceHash_ = mix(traceHash_, (std::uint64_t(pkt.length) << 32) |
                                     (pkt.segIndex << 8) | pkt.segCount);
    traceHash_ = mix(traceHash_,
                     (std::uint64_t(pkt.chaosFlags) << 8) |
                         (std::uint64_t(pkt.retransmission) << 2) |
                         (std::uint64_t(pkt.dammed) << 1) |
                         std::uint64_t(dropped));

    // Injected noise (duplicates, corruption, forgeries) is the
    // injector's doing, not the endpoint's: excluded from bookkeeping.
    if (pkt.chaosFlags != 0)
        return;

    if (isRequestOpcode(pkt.op)) {
        FlowState* st = flow(pkt.srcLid, pkt.srcQpn);
        if (st == nullptr || st->qp == nullptr ||
            st->qp->config.transport != verbs::Transport::Rc) {
            return;
        }
        const rnic::QpContext& qp = *st->qp;
        // A READ reserves [psn, psn+segCount) with one wire packet; all
        // other requests occupy one PSN per packet.
        const std::uint32_t span =
            pkt.op == net::Opcode::ReadRequest ? pkt.segCount : 1;
        const std::uint32_t last = (pkt.psn + span - 1) & 0xffffff;
        // Late attach: PSNs below the attach snapshot were posted before
        // we were watching, so their first (fresh) transmission is not
        // ours to judge.
        if (st->lateAttach && rnic::psnDiff(pkt.psn, st->attachPsn) < 0)
            return;
        if (!pkt.retransmission) {
            for (std::uint32_t i = 0; i < span; ++i) {
                const std::uint32_t p = (pkt.psn + i) & 0xffffff;
                if (!st->freshSeen.insert(p).second) {
                    emit("fresh-once", pkt.srcLid, pkt.srcQpn,
                         "fresh " + std::string(net::opcodeName(pkt.op)) +
                             " reuses psn=" + std::to_string(p));
                }
            }
            if (rnic::psnDiff(last, qp.nextPsn) >= 0) {
                emit("fresh-posted", pkt.srcLid, pkt.srcQpn,
                     "fresh psn=" + std::to_string(pkt.psn) +
                         " beyond posted range (nextPsn=" +
                         std::to_string(qp.nextPsn) + ")");
            }
        } else {
            if (rnic::psnDiff(last, qp.nextPsn) >= 0) {
                emit("retrans-posted", pkt.srcLid, pkt.srcQpn,
                     "retransmitted psn=" + std::to_string(pkt.psn) +
                         " beyond posted range (nextPsn=" +
                         std::to_string(qp.nextPsn) + ")");
            }
            if (!qp.outstanding.empty() &&
                rnic::psnDiff(pkt.psn, qp.outstanding.front().psn) < 0) {
                emit("retrans-window", pkt.srcLid, pkt.srcQpn,
                     "retransmitted psn=" + std::to_string(pkt.psn) +
                         " below go-back-N window head=" +
                         std::to_string(qp.outstanding.front().psn));
            }
        }
        return;
    }

    // Response-class packet: judge it against the requester (the
    // destination flow) it acknowledges.
    FlowState* st = flow(pkt.dstLid, pkt.dstQpn);
    if (st == nullptr || st->qp == nullptr ||
        st->qp->config.transport != verbs::Transport::Rc) {
        return;
    }
    if (rnic::psnDiff(pkt.psn, st->qp->nextPsn) >= 0) {
        emit("ack-coherence", pkt.dstLid, pkt.dstQpn,
             std::string(net::opcodeName(pkt.op)) + " references psn=" +
                 std::to_string(pkt.psn) +
                 " never posted by the requester (nextPsn=" +
                 std::to_string(st->qp->nextPsn) + ")");
    }
}

void
InvariantMonitor::onSendPost(std::uint16_t lid, const rnic::QpContext& qp,
                             const rnic::SendWqe& wqe)
{
    FlowState* st = flow(lid, qp.qpn);
    if (st == nullptr)
        return;
    // P1: the post tap fires before PSN assignment, so qp.nextPsn is the
    // value every earlier post advanced it to — it must never regress.
    if (st->anyPostSeen &&
        qp.config.transport == verbs::Transport::Rc &&
        rnic::psnDiff(qp.nextPsn, st->lastNextPsn) < 0) {
        emit("psn-monotonic", lid, qp.qpn,
             "nextPsn regressed " + std::to_string(st->lastNextPsn) +
                 " -> " + std::to_string(qp.nextPsn));
    }
    st->anyPostSeen = true;
    st->lastNextPsn = qp.nextPsn;
    ++st->sendPosted;
    ++st->sendPostedByWr[wqe.wrId];
}

void
InvariantMonitor::onRecvPost(std::uint16_t lid, const rnic::QpContext& qp,
                             const rnic::RecvWqe& wqe)
{
    FlowState* st = flow(lid, qp.qpn);
    if (st == nullptr)
        return;
    ++st->recvPostedByWr[wqe.wrId];
}

void
InvariantMonitor::onCompletion(std::uint16_t lid,
                               const verbs::WorkCompletion& wc)
{
    FlowState* st = flow(lid, wc.qpn);
    if (st == nullptr)
        return;
    if (wc.opcode == verbs::WrOpcode::Recv) {
        // Late attach: a completion for a RECV we never saw posted
        // belongs to the pre-attach era, not to the oracle.
        if (st->lateAttach && st->recvPostedByWr[wc.wrId] == 0)
            return;
        const std::uint64_t done = ++st->recvCompletedByWr[wc.wrId];
        if (done > st->recvPostedByWr[wc.wrId]) {
            emit("recv-exactly-once", lid, wc.qpn,
                 "wrId=" + std::to_string(wc.wrId) + " completed " +
                     std::to_string(done) + "x but posted " +
                     std::to_string(st->recvPostedByWr[wc.wrId]) + "x");
        }
        return;
    }
    // Late attach: likewise for sends posted before watching started —
    // skipping them keeps C1 and F1 judging observed posts only.
    if (st->lateAttach && st->sendPostedByWr[wc.wrId] == 0)
        return;
    ++st->sendCompleted;
    const std::uint64_t done = ++st->sendCompletedByWr[wc.wrId];
    if (done > st->sendPostedByWr[wc.wrId]) {
        emit("send-exactly-once", lid, wc.qpn,
             "wrId=" + std::to_string(wc.wrId) + " completed " +
                 std::to_string(done) + "x but posted " +
                 std::to_string(st->sendPostedByWr[wc.wrId]) + "x");
    }
}

void
InvariantMonitor::finalCheck()
{
    for (auto& [key, st] : flows_) {
        if (st.sendCompleted != st.sendPosted) {
            emit("send-completion-missing", key.lid, key.qpn,
                 std::to_string(st.sendPosted) + " send WRs posted but " +
                     std::to_string(st.sendCompleted) + " completed");
        }
    }
}

void
InvariantMonitor::checkSwrel(const swrel::SoftReliableChannel& channel)
{
    if (channel.delivered().size() != channel.deliveredSeqCount()) {
        emit("swrel-exactly-once", 0, 0,
             std::to_string(channel.delivered().size()) +
                 " deliveries for " +
                 std::to_string(channel.deliveredSeqCount()) +
                 " distinct sequence numbers");
    }
    if (channel.stats().delivered != channel.delivered().size()) {
        emit("swrel-exactly-once", 0, 0,
             "delivered counter " +
                 std::to_string(channel.stats().delivered) +
                 " disagrees with delivery log size " +
                 std::to_string(channel.delivered().size()));
    }
    for (std::uint64_t seq = 1; seq <= channel.sentCount(); ++seq) {
        if (channel.acked(seq) && channel.failed(seq)) {
            emit("swrel-exactly-once", 0, 0,
                 "seq=" + std::to_string(seq) +
                     " reported both acked and failed");
        }
    }
}

std::string
InvariantMonitor::report() const
{
    std::string out = "invariant monitor: ";
    if (totalViolations_ == 0) {
        out += "clean (" + std::to_string(packetsObserved_) +
               " packets observed)\n";
        return out;
    }
    out += std::to_string(totalViolations_) + " violation(s)";
    if (totalViolations_ > violations_.size())
        out += " (first " + std::to_string(violations_.size()) + " shown)";
    out += "\n";
    for (const auto& v : violations_)
        out += "  " + v.str() + "\n";
    return out;
}

} // namespace chaos
} // namespace ibsim
