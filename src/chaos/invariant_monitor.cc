#include "chaos/invariant_monitor.hh"

#include <string>

#include "chaos/fault_injector.hh"
#include "cluster/cluster.hh"
#include "swrel/soft_reliable.hh"
#include "verbs/completion_queue.hh"

namespace ibsim {
namespace chaos {

namespace {

constexpr std::uint64_t fnvPrime = 1099511628211ull;

std::uint64_t
mix(std::uint64_t hash, std::uint64_t value)
{
    return (hash ^ value) * fnvPrime;
}

std::string
flowStr(std::uint16_t lid, std::uint32_t qpn)
{
    return "lid=" + std::to_string(lid) + " qpn=" + std::to_string(qpn);
}

} // namespace

std::string
Violation::str() const
{
    return "[" + at.str() + "] " + invariant + " " + flowStr(lid, qpn) +
           ": " + detail;
}

InvariantMonitor::InvariantMonitor(net::Fabric& fabric) : fabric_(fabric)
{
    fabric_.addTap([this](const net::Packet& pkt, bool dropped) {
        onEgress(pkt, dropped);
    });
}

void
InvariantMonitor::watch(rnic::Rnic& rnic, rnic::QpContext& qp)
{
    const FlowKey key{rnic.lid(), qp.qpn};
    const bool fresh = flows_.find(key) == flows_.end();
    FlowState& st = flows_[key];
    st.rnic = &rnic;
    st.qp = &qp;
    if (fresh) {
        st.lastNextPsn = qp.nextPsn;
        st.attachPsn = qp.nextPsn;
        st.lateAttach = qp.nextPsn != 0 || !qp.outstanding.empty();
    }

    if (tappedRnics_.insert(&rnic).second) {
        const std::uint16_t lid = rnic.lid();
        rnic.addSendPostTap(
            [this, lid](const rnic::QpContext& q, const rnic::SendWqe& w) {
                onSendPost(lid, q, w);
            });
        rnic.addRecvPostTap(
            [this, lid](const rnic::QpContext& q, const rnic::RecvWqe& w) {
                onRecvPost(lid, q, w);
            });
    }
    if (qp.cq != nullptr && tappedCqs_.insert(qp.cq).second) {
        const std::uint16_t lid = rnic.lid();
        qp.cq->addTap([this, lid](const verbs::WorkCompletion& wc) {
            onCompletion(lid, wc);
        });
    }
}

void
InvariantMonitor::watchAll(Cluster& cluster)
{
    for (std::size_t i = 0; i < cluster.nodeCount(); ++i) {
        rnic::Rnic& rnic = cluster.node(i).rnic();
        for (rnic::QpContext* qp : rnic.allQps())
            watch(rnic, *qp);
    }
}

InvariantMonitor::FlowState*
InvariantMonitor::flow(std::uint16_t lid, std::uint32_t qpn)
{
    auto it = flows_.find({lid, qpn});
    return it == flows_.end() ? nullptr : &it->second;
}

void
InvariantMonitor::emit(const std::string& invariant, std::uint16_t lid,
                       std::uint32_t qpn, const std::string& detail)
{
    ++totalViolations_;
    if (violations_.size() < storedCap) {
        violations_.push_back(
            {invariant, fabric_.events().now(), lid, qpn, detail});
    }
}

void
InvariantMonitor::onEgress(const net::Packet& pkt, bool dropped)
{
    ++packetsObserved_;
    traceHash_ = mix(traceHash_, static_cast<std::uint64_t>(pkt.op));
    traceHash_ = mix(traceHash_, (std::uint64_t(pkt.srcLid) << 16) |
                                     pkt.dstLid);
    traceHash_ = mix(traceHash_, (std::uint64_t(pkt.srcQpn) << 32) |
                                     pkt.dstQpn);
    traceHash_ = mix(traceHash_, pkt.psn);
    traceHash_ = mix(traceHash_, (std::uint64_t(pkt.length) << 32) |
                                     (pkt.segIndex << 8) | pkt.segCount);
    traceHash_ = mix(traceHash_,
                     (std::uint64_t(pkt.chaosFlags) << 8) |
                         (std::uint64_t(pkt.retransmission) << 2) |
                         (std::uint64_t(pkt.dammed) << 1) |
                         std::uint64_t(dropped));

    // Injected noise (duplicates, corruption, forgeries) is the
    // injector's doing, not the endpoint's: excluded from bookkeeping.
    if (pkt.chaosFlags != 0) {
        // One exception must be recorded: corruption mangles packets the
        // endpoint really emitted, and it may hit the PSN or opcode of a
        // replay-cache answer — the A1 ledger then cannot attribute the
        // answer and would report a false "unanswered duplicate". The
        // replayed mark and the source address survive corruption (the
        // injector never touches them), so note the broken evidence
        // chain and let finalCheck() stand down A1-lost for this flow.
        if ((pkt.chaosFlags & net::Packet::chaosCorrupted) != 0 &&
            pkt.replayed) {
            FlowState* rs = flow(pkt.srcLid, pkt.srcQpn);
            if (rs != nullptr)
                rs->atomicAnswerAttributionLost = true;
        }
        return;
    }

    if (isRequestOpcode(pkt.op))
        onRequestEgress(pkt, dropped);
    else
        onResponseEgress(pkt, dropped);
}

void
InvariantMonitor::onRequestEgress(const net::Packet& pkt, bool dropped)
{
    FlowState* st = flow(pkt.srcLid, pkt.srcQpn);
    if (st != nullptr && st->qp != nullptr) {
        const rnic::QpContext& qp = *st->qp;
        // A READ reserves [psn, psn+segCount) with one wire packet; all
        // other requests occupy one PSN per packet.
        const std::uint32_t span =
            pkt.op == net::Opcode::ReadRequest ? pkt.segCount : 1;
        const std::uint32_t last = (pkt.psn + span - 1) & 0xffffff;

        // Service-type verb/fire-and-forget contracts (V1/U1/V3): judged
        // before the late-attach gate because they hold for every packet
        // the flow ever emits, whenever we started watching.
        const verbs::Transport transport = qp.config.transport;
        if (transport == verbs::Transport::Ud) {
            if (pkt.op != net::Opcode::Send) {
                emit("ud-verb", pkt.srcLid, pkt.srcQpn,
                     std::string(net::opcodeName(pkt.op)) +
                         " emitted by a UD flow (SEND only)");
            }
            if (pkt.retransmission) {
                emit("ud-no-retransmit", pkt.srcLid, pkt.srcQpn,
                     "UD datagram psn=" + std::to_string(pkt.psn) +
                         " marked as a retransmission");
            }
        } else if (transport == verbs::Transport::Uc) {
            if (pkt.op != net::Opcode::Send &&
                pkt.op != net::Opcode::WriteRequest) {
                emit("uc-verb", pkt.srcLid, pkt.srcQpn,
                     std::string(net::opcodeName(pkt.op)) +
                         " emitted by a UC flow (SEND/WRITE only)");
            }
            if (pkt.retransmission) {
                emit("uc-no-retransmit", pkt.srcLid, pkt.srcQpn,
                     "UC psn=" + std::to_string(pkt.psn) +
                         " marked as a retransmission");
            }
        }

        // Late attach: PSNs below the attach snapshot were posted before
        // we were watching, so their first (fresh) transmission is not
        // ours to judge.
        if (st->lateAttach && rnic::psnDiff(pkt.psn, st->attachPsn) < 0)
            return;
        if (!pkt.retransmission) {
            for (std::uint32_t i = 0; i < span; ++i) {
                const std::uint32_t p = (pkt.psn + i) & 0xffffff;
                if (!st->freshSeen.insert(p).second) {
                    emit("fresh-once", pkt.srcLid, pkt.srcQpn,
                         "fresh " + std::string(net::opcodeName(pkt.op)) +
                             " reuses psn=" + std::to_string(p));
                }
            }
            if (rnic::psnDiff(last, qp.nextPsn) >= 0) {
                emit("fresh-posted", pkt.srcLid, pkt.srcQpn,
                     "fresh psn=" + std::to_string(pkt.psn) +
                         " beyond posted range (nextPsn=" +
                         std::to_string(qp.nextPsn) + ")");
            }
        } else if (transport == verbs::Transport::Rc) {
            if (rnic::psnDiff(last, qp.nextPsn) >= 0) {
                emit("retrans-posted", pkt.srcLid, pkt.srcQpn,
                     "retransmitted psn=" + std::to_string(pkt.psn) +
                         " beyond posted range (nextPsn=" +
                         std::to_string(qp.nextPsn) + ")");
            }
            if (!qp.outstanding.empty() &&
                rnic::psnDiff(pkt.psn, qp.outstanding.front().psn) < 0) {
                emit("retrans-window", pkt.srcLid, pkt.srcQpn,
                     "retransmitted psn=" + std::to_string(pkt.psn) +
                         " below go-back-N window head=" +
                         std::to_string(qp.outstanding.front().psn));
            }
        }
    }

    // A1 bookkeeping: a duplicate atomic delivered inside the responder's
    // executed range MUST be answered from the replay cache — silence
    // means the cache evicted a record the PSN window still required.
    // Judged on egress-time responder state (expectedPsn only advances,
    // so "already executed" here still holds at delivery). Excluded:
    // packets that never arrive (dropped), dammed exchanges (lost by the
    // quirk before the responder sees them), and error-state responders.
    if (pkt.op == net::Opcode::AtomicRequest && !dropped && !pkt.dammed) {
        FlowState* resp = flow(pkt.dstLid, pkt.dstQpn);
        if (resp != nullptr && resp->qp != nullptr &&
            resp->qp->config.transport == verbs::Transport::Rc &&
            !resp->qp->errorState &&
            rnic::psnDiff(pkt.psn, resp->qp->expectedPsn) < 0) {
            ++resp->atomicMustAnswer[pkt.psn];
        }
    }
}

void
InvariantMonitor::onResponseEgress(const net::Packet& pkt, bool /*dropped*/)
{
    // Responder-role checks, judged against the emitting (source) flow.
    FlowState* rs = flow(pkt.srcLid, pkt.srcQpn);
    if (rs != nullptr && rs->qp != nullptr) {
        const verbs::Transport transport = rs->qp->config.transport;
        if (transport == verbs::Transport::Ud ||
            transport == verbs::Transport::Uc) {
            // V2: no ACK/NAK/response machinery exists for UD/UC.
            emit(transport == verbs::Transport::Ud ? "ud-one-way"
                                                   : "uc-one-way",
                 pkt.srcLid, pkt.srcQpn,
                 std::string(net::opcodeName(pkt.op)) +
                     " emitted by a one-way flow");
        } else {
            if (pkt.op == net::Opcode::AtomicResponse) {
                // A1 value consistency: every answer for one PSN carries
                // the same original value; a re-executing responder
                // returns the post-update value instead.
                auto [it, first] =
                    rs->atomicRespPayload.try_emplace(pkt.psn, pkt.payload);
                if (!first && it->second != pkt.payload) {
                    emit("atomic-replay-value", pkt.srcLid, pkt.srcQpn,
                         "atomic psn=" + std::to_string(pkt.psn) +
                             " answered with a different value than its "
                             "first response (responder re-executed)");
                }
                auto must = rs->atomicMustAnswer.find(pkt.psn);
                if (must != rs->atomicMustAnswer.end())
                    ++rs->atomicAnswered[pkt.psn];
            } else if (pkt.op == net::Opcode::RnrNak ||
                       (pkt.op == net::Opcode::Nak &&
                        pkt.nak == net::NakCode::RemoteAccessError)) {
                // A duplicate atomic answered with RNR or an access NAK
                // is answered, not lost (PSN-sequence NAKs reference
                // expectedPsn, never the duplicate, so they don't count).
                auto must = rs->atomicMustAnswer.find(pkt.psn);
                if (must != rs->atomicMustAnswer.end())
                    ++rs->atomicAnswered[pkt.psn];
            }

            // A2: fresh (non-replayed) executions leave the responder in
            // expectedPsn order, so an atomic's response PSN exceeds
            // every earlier fresh data response and no fresh READ data
            // follows at or below an answered atomic's PSN. Replay-cache
            // re-serves are exempt: they answer old PSNs by design.
            if (!pkt.replayed) {
                if (pkt.op == net::Opcode::AtomicResponse) {
                    if (rs->anyFreshData &&
                        rnic::psnDiff(pkt.psn, rs->lastFreshDataPsn) <= 0) {
                        emit("atomic-serialization", pkt.srcLid, pkt.srcQpn,
                             "fresh atomic response psn=" +
                                 std::to_string(pkt.psn) +
                                 " does not serialize after data response "
                                 "psn=" +
                                 std::to_string(rs->lastFreshDataPsn));
                    }
                    rs->anyFreshData = true;
                    rs->lastFreshDataPsn = pkt.psn;
                    rs->anyFreshAtomic = true;
                    rs->lastFreshAtomicPsn = pkt.psn;
                } else if (pkt.op == net::Opcode::ReadResponse) {
                    if (rs->anyFreshAtomic &&
                        rnic::psnDiff(pkt.psn, rs->lastFreshAtomicPsn) <=
                            0) {
                        emit("atomic-serialization", pkt.srcLid, pkt.srcQpn,
                             "fresh read response psn=" +
                                 std::to_string(pkt.psn) +
                                 " emitted at/below answered atomic psn=" +
                                 std::to_string(rs->lastFreshAtomicPsn));
                    }
                    rs->anyFreshData = true;
                    rs->lastFreshDataPsn = pkt.psn;
                }
            }
        }
    }

    // W4: judge the response against the requester (the destination
    // flow) it acknowledges. RC only — one-way flows never expect one.
    FlowState* st = flow(pkt.dstLid, pkt.dstQpn);
    if (st == nullptr || st->qp == nullptr ||
        st->qp->config.transport != verbs::Transport::Rc) {
        return;
    }
    if (rnic::psnDiff(pkt.psn, st->qp->nextPsn) >= 0) {
        emit("ack-coherence", pkt.dstLid, pkt.dstQpn,
             std::string(net::opcodeName(pkt.op)) + " references psn=" +
                 std::to_string(pkt.psn) +
                 " never posted by the requester (nextPsn=" +
                 std::to_string(st->qp->nextPsn) + ")");
    }
}

void
InvariantMonitor::onSendPost(std::uint16_t lid, const rnic::QpContext& qp,
                             const rnic::SendWqe& wqe)
{
    FlowState* st = flow(lid, qp.qpn);
    if (st == nullptr)
        return;
    // P1: the post tap fires before PSN assignment, so qp.nextPsn is the
    // value every earlier post advanced it to — it must never regress.
    // Holds for every transport: UC/UD assign from the same counter.
    if (st->anyPostSeen &&
        rnic::psnDiff(qp.nextPsn, st->lastNextPsn) < 0) {
        emit("psn-monotonic", lid, qp.qpn,
             "nextPsn regressed " + std::to_string(st->lastNextPsn) +
                 " -> " + std::to_string(qp.nextPsn));
    }
    st->anyPostSeen = true;
    st->lastNextPsn = qp.nextPsn;
    ++st->sendPosted;
    ++st->sendPostedByWr[wqe.wrId];
}

void
InvariantMonitor::onRecvPost(std::uint16_t lid, const rnic::QpContext& qp,
                             const rnic::RecvWqe& wqe)
{
    FlowState* st = flow(lid, qp.qpn);
    if (st == nullptr)
        return;
    ++st->recvPostedByWr[wqe.wrId];
}

void
InvariantMonitor::onCompletion(std::uint16_t lid,
                               const verbs::WorkCompletion& wc)
{
    FlowState* st = flow(lid, wc.qpn);
    if (st == nullptr)
        return;
    if (wc.opcode == verbs::WrOpcode::Recv) {
        // Late attach: a completion for a RECV we never saw posted
        // belongs to the pre-attach era, not to the oracle.
        if (st->lateAttach && st->recvPostedByWr[wc.wrId] == 0)
            return;
        ++st->recvCompleted;
        const std::uint64_t done = ++st->recvCompletedByWr[wc.wrId];
        if (done > st->recvPostedByWr[wc.wrId]) {
            emit("recv-exactly-once", lid, wc.qpn,
                 "wrId=" + std::to_string(wc.wrId) + " completed " +
                     std::to_string(done) + "x but posted " +
                     std::to_string(st->recvPostedByWr[wc.wrId]) + "x");
        }
        return;
    }
    // Late attach: likewise for sends posted before watching started —
    // skipping them keeps C1 and F1 judging observed posts only.
    if (st->lateAttach && st->sendPostedByWr[wc.wrId] == 0)
        return;
    ++st->sendCompleted;
    const std::uint64_t done = ++st->sendCompletedByWr[wc.wrId];
    if (done > st->sendPostedByWr[wc.wrId]) {
        emit("send-exactly-once", lid, wc.qpn,
             "wrId=" + std::to_string(wc.wrId) + " completed " +
                 std::to_string(done) + "x but posted " +
                 std::to_string(st->sendPostedByWr[wc.wrId]) + "x");
    }
}

void
InvariantMonitor::finalCheck()
{
    for (auto& [key, st] : flows_) {
        if (st.sendCompleted != st.sendPosted) {
            emit("send-completion-missing", key.lid, key.qpn,
                 std::to_string(st.sendPosted) + " send WRs posted but " +
                     std::to_string(st.sendCompleted) + " completed");
        }

        // A1: every delivered executed-range duplicate atomic must have
        // drawn an answer (replay cache, RNR or access NAK) by drain.
        // Stand down when the injector corrupted a replay answer in
        // flight: the ledger can no longer attribute answers to PSNs.
        if (!st.atomicAnswerAttributionLost) {
            for (const auto& [psn, must] : st.atomicMustAnswer) {
                const auto it = st.atomicAnswered.find(psn);
                const std::uint64_t answered =
                    it == st.atomicAnswered.end() ? 0 : it->second;
                if (answered < must) {
                    emit("atomic-replay-lost", key.lid, key.qpn,
                         "duplicate atomic psn=" + std::to_string(psn) +
                             " delivered " + std::to_string(must) +
                             "x but answered " + std::to_string(answered) +
                             "x (replay cache lost a required record)");
                }
            }
        }

        // U3: datagrams delivered to a UD flow reconcile exactly as RECV
        // completions plus counted drops — nothing vanishes silently.
        // (Late-attach flows skip pre-attach completions, so the books
        // cannot balance; they are excluded.)
        if (st.qp != nullptr && !st.lateAttach &&
            st.qp->config.transport == verbs::Transport::Ud) {
            const auto& qs = st.qp->stats;
            if (qs.udDeliveredSends != st.recvCompleted + qs.udDrops) {
                emit("ud-silent-drop", key.lid, key.qpn,
                     std::to_string(qs.udDeliveredSends) +
                         " datagrams delivered but " +
                         std::to_string(st.recvCompleted) +
                         " received + " + std::to_string(qs.udDrops) +
                         " counted drops");
            }
        }
    }
}

void
InvariantMonitor::checkSwrel(const swrel::SoftReliableChannel& channel)
{
    if (channel.delivered().size() != channel.deliveredSeqCount()) {
        emit("swrel-exactly-once", 0, 0,
             std::to_string(channel.delivered().size()) +
                 " deliveries for " +
                 std::to_string(channel.deliveredSeqCount()) +
                 " distinct sequence numbers");
    }
    if (channel.stats().delivered != channel.delivered().size()) {
        emit("swrel-exactly-once", 0, 0,
             "delivered counter " +
                 std::to_string(channel.stats().delivered) +
                 " disagrees with delivery log size " +
                 std::to_string(channel.delivered().size()));
    }
    for (std::uint64_t seq = 1; seq <= channel.sentCount(); ++seq) {
        if (channel.acked(seq) && channel.failed(seq)) {
            emit("swrel-exactly-once", 0, 0,
                 "seq=" + std::to_string(seq) +
                     " reported both acked and failed");
        }
    }
}

std::string
InvariantMonitor::report() const
{
    std::string out = "invariant monitor: ";
    if (totalViolations_ == 0) {
        out += "clean (" + std::to_string(packetsObserved_) +
               " packets observed)\n";
        return out;
    }
    out += std::to_string(totalViolations_) + " violation(s)";
    if (totalViolations_ > violations_.size())
        out += " (first " + std::to_string(violations_.size()) + " shown)";
    out += "\n";
    for (const auto& v : violations_)
        out += "  " + v.str() + "\n";
    return out;
}

} // namespace chaos
} // namespace ibsim
