#include "chaos/invariant_monitor.hh"

#include <algorithm>
#include <string>

#include "chaos/fault_injector.hh"
#include "cluster/cluster.hh"
#include "swrel/soft_reliable.hh"
#include "verbs/completion_queue.hh"

namespace ibsim {
namespace chaos {

namespace {

constexpr std::uint64_t fnvPrime = 1099511628211ull;

std::uint64_t
mix(std::uint64_t hash, std::uint64_t value)
{
    return (hash ^ value) * fnvPrime;
}

std::string
flowStr(std::uint16_t lid, std::uint32_t qpn)
{
    return "lid=" + std::to_string(lid) + " qpn=" + std::to_string(qpn);
}

} // namespace

std::string
Violation::str() const
{
    return "[" + at.str() + "] " + invariant + " " + flowStr(lid, qpn) +
           ": " + detail;
}

InvariantMonitor::InvariantMonitor(net::Fabric& fabric) : fabric_(fabric)
{
    shards_.resize(fabric_.islandCount());
    if (fabric_.sharded()) {
        for (Shard& shard : shards_)
            shard.out.resize(shards_.size());
        fabric_.shardedKernel()->addBarrierAgent(this);
    }
    fabric_.addTap([this](const net::Packet& pkt, bool dropped) {
        onEgress(pkt, dropped);
    });
}

InvariantMonitor::~InvariantMonitor()
{
    if (fabric_.sharded())
        fabric_.shardedKernel()->removeBarrierAgent(this);
}

void
InvariantMonitor::watch(rnic::Rnic& rnic, rnic::QpContext& qp)
{
    const FlowKey key{rnic.lid(), qp.qpn};
    auto& flows = shardOf(rnic.lid()).flows;
    const bool fresh = flows.find(key) == flows.end();
    FlowState& st = flows[key];
    st.rnic = &rnic;
    st.qp = &qp;
    if (fresh) {
        st.lastNextPsn = qp.nextPsn;
        st.attachPsn = qp.nextPsn;
        st.lateAttach = qp.nextPsn != 0 || !qp.outstanding.empty();
    }

    if (tappedRnics_.insert(&rnic).second) {
        const std::uint16_t lid = rnic.lid();
        rnic.addSendPostTap(
            [this, lid](const rnic::QpContext& q, const rnic::SendWqe& w) {
                onSendPost(lid, q, w);
            });
        rnic.addRecvPostTap(
            [this, lid](const rnic::QpContext& q, const rnic::RecvWqe& w) {
                onRecvPost(lid, q, w);
            });
    }
    if (qp.cq != nullptr && tappedCqs_.insert(qp.cq).second) {
        const std::uint16_t lid = rnic.lid();
        qp.cq->addTap([this, lid](const verbs::WorkCompletion& wc) {
            onCompletion(lid, wc);
        });
    }
}

void
InvariantMonitor::watchAll(Cluster& cluster)
{
    for (std::size_t i = 0; i < cluster.nodeCount(); ++i) {
        rnic::Rnic& rnic = cluster.node(i).rnic();
        for (rnic::QpContext* qp : rnic.allQps())
            watch(rnic, *qp);
    }
}

InvariantMonitor::Shard&
InvariantMonitor::shardOf(std::uint16_t lid)
{
    return shards_[fabric_.sharded() ? fabric_.islandOf(lid) : 0];
}

InvariantMonitor::Shard&
InvariantMonitor::egressShard()
{
    return shards_[fabric_.egressIsland()];
}

InvariantMonitor::FlowState*
InvariantMonitor::flow(std::uint16_t lid, std::uint32_t qpn)
{
    auto& flows = shardOf(lid).flows;
    auto it = flows.find({lid, qpn});
    return it == flows.end() ? nullptr : &it->second;
}

void
InvariantMonitor::emit(Shard& shard, const std::string& invariant, Time at,
                       std::uint16_t lid, std::uint32_t qpn,
                       const std::string& detail)
{
    ++shard.violationCount;
    if (shard.violations.size() < storedCap)
        shard.violations.push_back({invariant, at, lid, qpn, detail});
}

void
InvariantMonitor::onEgress(const net::Packet& pkt, bool dropped)
{
    // Everything below mutates only the executing island's shard — the
    // source flow of every non-injected packet lives on that island
    // (fabric routing), injected packets only touch the hash and the
    // source-flow attribution flag. The two remote-flow checks defer.
    Shard& shard = egressShard();
    ++shard.packetsObserved;
    shard.hash = mix(shard.hash, static_cast<std::uint64_t>(pkt.op));
    shard.hash = mix(shard.hash, (std::uint64_t(pkt.srcLid) << 16) |
                                     pkt.dstLid);
    shard.hash = mix(shard.hash, (std::uint64_t(pkt.srcQpn) << 32) |
                                     pkt.dstQpn);
    shard.hash = mix(shard.hash, pkt.psn);
    shard.hash = mix(shard.hash, (std::uint64_t(pkt.length) << 32) |
                                     (pkt.segIndex << 8) | pkt.segCount);
    shard.hash = mix(shard.hash,
                     (std::uint64_t(pkt.chaosFlags) << 8) |
                         (std::uint64_t(pkt.retransmission) << 2) |
                         (std::uint64_t(pkt.dammed) << 1) |
                         std::uint64_t(dropped));

    // Injected noise (duplicates, corruption, forgeries) is the
    // injector's doing, not the endpoint's: excluded from bookkeeping.
    if (pkt.chaosFlags != 0) {
        // One exception must be recorded: corruption mangles packets the
        // endpoint really emitted, and it may hit the PSN or opcode of a
        // replay-cache answer — the A1 ledger then cannot attribute the
        // answer and would report a false "unanswered duplicate". The
        // replayed mark and the source address survive corruption (the
        // injector never touches them), so note the broken evidence
        // chain and let finalCheck() stand down A1-lost for this flow.
        if ((pkt.chaosFlags & net::Packet::chaosCorrupted) != 0 &&
            pkt.replayed) {
            FlowState* rs = flow(pkt.srcLid, pkt.srcQpn);
            if (rs != nullptr)
                rs->atomicAnswerAttributionLost = true;
        }
        // A second exception, same evidence-chain reasoning: an
        // uncorrupted clone of an atomic answer proves the responder
        // emitted that answer. When a later erasing stage (drop, flap,
        // loss model) removes the original delivery in the same
        // pipeline pass, only the clone reaches this tap — skipping it
        // would undercount the A1 ledger into a false "replay lost".
        // Credit it; over-crediting when both copies survive is safe
        // because the A1 check is one-sided (answered < required).
        else if ((pkt.chaosFlags & net::Packet::chaosDuplicated) != 0 &&
                 pkt.op == net::Opcode::AtomicResponse) {
            FlowState* rs = flow(pkt.srcLid, pkt.srcQpn);
            if (rs != nullptr) {
                auto must = rs->atomicMustAnswer.find(pkt.psn);
                if (must != rs->atomicMustAnswer.end())
                    ++rs->atomicAnswered[pkt.psn];
            }
        }
        return;
    }

    // CM re-arm handshake traffic is control plane: it carries reset
    // epochs, not transport PSNs, so the request/response families must
    // not book it (its PSN field would alias PSN 0 of the new stream).
    // Already hash-mixed above, so it still shows in trace goldens.
    if (pkt.op == net::Opcode::CmRearm || pkt.op == net::Opcode::CmRearmAck)
        return;

    if (isRequestOpcode(pkt.op))
        onRequestEgress(shard, pkt, dropped);
    else
        onResponseEgress(shard, pkt, dropped);
}

void
InvariantMonitor::syncEpoch(FlowState& st)
{
    if (st.qp == nullptr || st.qp->resetEpoch == st.lastEpoch)
        return;
    // Recovery restarted the PSN stream from zero: re-anchor every
    // PSN-keyed ledger. The completion ledgers (C1/C2/F1) survive on
    // purpose — a recovered QP re-delivering an already-acked WR must
    // still trip send-exactly-once.
    st.lastEpoch = st.qp->resetEpoch;
    st.freshSeen.clear();
    st.anyPostSeen = false;
    st.lastNextPsn = st.qp->nextPsn;
    st.attachPsn = 0;
    st.lateAttach = false;
    st.atomicMustAnswer.clear();
    st.atomicAnswered.clear();
    st.atomicRespPayload.clear();
    st.anyFreshData = false;
    st.anyFreshAtomic = false;
}

void
InvariantMonitor::onRequestEgress(Shard& shard, const net::Packet& pkt,
                                  bool dropped)
{
    const Time now = fabric_.islandEvents(fabric_.egressIsland()).now();
    FlowState* st = flow(pkt.srcLid, pkt.srcQpn);
    if (st != nullptr && st->qp != nullptr) {
        syncEpoch(*st);
        const rnic::QpContext& qp = *st->qp;
        // A READ reserves [psn, psn+segCount) with one wire packet; all
        // other requests occupy one PSN per packet.
        const std::uint32_t span =
            pkt.op == net::Opcode::ReadRequest ? pkt.segCount : 1;
        const std::uint32_t last = (pkt.psn + span - 1) & 0xffffff;

        // Service-type verb/fire-and-forget contracts (V1/U1/V3): judged
        // before the late-attach gate because they hold for every packet
        // the flow ever emits, whenever we started watching.
        const verbs::Transport transport = qp.config.transport;
        if (transport == verbs::Transport::Ud) {
            if (pkt.op != net::Opcode::Send) {
                emit(shard, "ud-verb", now, pkt.srcLid, pkt.srcQpn,
                     std::string(net::opcodeName(pkt.op)) +
                         " emitted by a UD flow (SEND only)");
            }
            if (pkt.retransmission) {
                emit(shard, "ud-no-retransmit", now, pkt.srcLid, pkt.srcQpn,
                     "UD datagram psn=" + std::to_string(pkt.psn) +
                         " marked as a retransmission");
            }
        } else if (transport == verbs::Transport::Uc) {
            if (pkt.op != net::Opcode::Send &&
                pkt.op != net::Opcode::WriteRequest) {
                emit(shard, "uc-verb", now, pkt.srcLid, pkt.srcQpn,
                     std::string(net::opcodeName(pkt.op)) +
                         " emitted by a UC flow (SEND/WRITE only)");
            }
            if (pkt.retransmission) {
                emit(shard, "uc-no-retransmit", now, pkt.srcLid, pkt.srcQpn,
                     "UC psn=" + std::to_string(pkt.psn) +
                         " marked as a retransmission");
            }
        }

        // Late attach: PSNs below the attach snapshot were posted before
        // we were watching, so their first (fresh) transmission is not
        // ours to judge.
        if (st->lateAttach && rnic::psnDiff(pkt.psn, st->attachPsn) < 0)
            return;
        if (!pkt.retransmission) {
            for (std::uint32_t i = 0; i < span; ++i) {
                const std::uint32_t p = (pkt.psn + i) & 0xffffff;
                if (!st->freshSeen.insert(p).second) {
                    emit(shard, "fresh-once", now, pkt.srcLid, pkt.srcQpn,
                         "fresh " + std::string(net::opcodeName(pkt.op)) +
                             " reuses psn=" + std::to_string(p));
                }
            }
            if (rnic::psnDiff(last, qp.nextPsn) >= 0) {
                emit(shard, "fresh-posted", now, pkt.srcLid, pkt.srcQpn,
                     "fresh psn=" + std::to_string(pkt.psn) +
                         " beyond posted range (nextPsn=" +
                         std::to_string(qp.nextPsn) + ")");
            }
        } else if (transport == verbs::Transport::Rc) {
            if (rnic::psnDiff(last, qp.nextPsn) >= 0) {
                emit(shard, "retrans-posted", now, pkt.srcLid, pkt.srcQpn,
                     "retransmitted psn=" + std::to_string(pkt.psn) +
                         " beyond posted range (nextPsn=" +
                         std::to_string(qp.nextPsn) + ")");
            }
            if (!qp.outstanding.empty() &&
                rnic::psnDiff(pkt.psn, qp.outstanding.front().psn) < 0) {
                emit(shard, "retrans-window", now, pkt.srcLid, pkt.srcQpn,
                     "retransmitted psn=" + std::to_string(pkt.psn) +
                         " below go-back-N window head=" +
                         std::to_string(qp.outstanding.front().psn));
            }
        }
    }

    // A1 bookkeeping: a duplicate atomic delivered inside the responder's
    // executed range MUST be answered from the replay cache — silence
    // means the cache evicted a record the PSN window still required.
    // Judged on egress-time responder state (expectedPsn only advances,
    // so "already executed" here still holds at delivery). Excluded:
    // packets that never arrive (dropped), dammed exchanges (lost by the
    // quirk before the responder sees them), and error-state responders.
    // A responder on another island is judged at the next window barrier
    // instead — still before the request's delivery, so the same
    // only-advances argument applies.
    if (pkt.op == net::Opcode::AtomicRequest && !dropped && !pkt.dammed) {
        const std::size_t dstIsland =
            fabric_.sharded() ? fabric_.islandOf(pkt.dstLid) : 0;
        if (fabric_.sharded() && dstIsland != fabric_.egressIsland()) {
            shard.out[dstIsland].push(
                (now + fabric_.shardedKernel()->lookahead()).toNs(),
                {now, pkt.wireId, 0, pkt.op, pkt.dstLid, pkt.dstQpn,
                 pkt.psn, pkt.epoch});
        } else {
            judgeAtomicMustAnswer(pkt.dstLid, pkt.dstQpn, pkt.psn,
                                  pkt.epoch);
        }
    }
}

void
InvariantMonitor::judgeAtomicMustAnswer(std::uint16_t dst_lid,
                                        std::uint32_t dst_qpn,
                                        std::uint32_t psn,
                                        std::uint16_t epoch)
{
    FlowState* resp = flow(dst_lid, dst_qpn);
    if (resp != nullptr && resp->qp != nullptr &&
        resp->qp->config.transport == verbs::Transport::Rc &&
        !resp->qp->errorState &&
        resp->qp->resetEpoch == epoch &&
        rnic::psnDiff(psn, resp->qp->expectedPsn) < 0) {
        ++resp->atomicMustAnswer[psn];
    }
}

void
InvariantMonitor::onResponseEgress(Shard& shard, const net::Packet& pkt,
                                   bool /*dropped*/)
{
    const Time now = fabric_.islandEvents(fabric_.egressIsland()).now();

    // Responder-role checks, judged against the emitting (source) flow.
    FlowState* rs = flow(pkt.srcLid, pkt.srcQpn);
    if (rs != nullptr && rs->qp != nullptr) {
        syncEpoch(*rs);
        const verbs::Transport transport = rs->qp->config.transport;
        if (transport == verbs::Transport::Ud ||
            transport == verbs::Transport::Uc) {
            // V2: no ACK/NAK/response machinery exists for UD/UC.
            emit(shard,
                 transport == verbs::Transport::Ud ? "ud-one-way"
                                                   : "uc-one-way",
                 now, pkt.srcLid, pkt.srcQpn,
                 std::string(net::opcodeName(pkt.op)) +
                     " emitted by a one-way flow");
        } else {
            if (pkt.op == net::Opcode::AtomicResponse) {
                // A1 value consistency: every answer for one PSN carries
                // the same original value; a re-executing responder
                // returns the post-update value instead.
                auto [it, first] =
                    rs->atomicRespPayload.try_emplace(pkt.psn, pkt.payload);
                if (!first && it->second != pkt.payload) {
                    emit(shard, "atomic-replay-value", now, pkt.srcLid,
                         pkt.srcQpn,
                         "atomic psn=" + std::to_string(pkt.psn) +
                             " answered with a different value than its "
                             "first response (responder re-executed)");
                }
                auto must = rs->atomicMustAnswer.find(pkt.psn);
                if (must != rs->atomicMustAnswer.end())
                    ++rs->atomicAnswered[pkt.psn];
            } else if (pkt.op == net::Opcode::RnrNak ||
                       (pkt.op == net::Opcode::Nak &&
                        pkt.nak == net::NakCode::RemoteAccessError)) {
                // A duplicate atomic answered with RNR or an access NAK
                // is answered, not lost (PSN-sequence NAKs reference
                // expectedPsn, never the duplicate, so they don't count).
                auto must = rs->atomicMustAnswer.find(pkt.psn);
                if (must != rs->atomicMustAnswer.end())
                    ++rs->atomicAnswered[pkt.psn];
            }

            // A2: fresh (non-replayed) executions leave the responder in
            // expectedPsn order, so an atomic's response PSN exceeds
            // every earlier fresh data response and no fresh READ data
            // follows at or below an answered atomic's PSN. Replay-cache
            // re-serves are exempt: they answer old PSNs by design.
            if (!pkt.replayed) {
                if (pkt.op == net::Opcode::AtomicResponse) {
                    if (rs->anyFreshData &&
                        rnic::psnDiff(pkt.psn, rs->lastFreshDataPsn) <= 0) {
                        emit(shard, "atomic-serialization", now, pkt.srcLid,
                             pkt.srcQpn,
                             "fresh atomic response psn=" +
                                 std::to_string(pkt.psn) +
                                 " does not serialize after data response "
                                 "psn=" +
                                 std::to_string(rs->lastFreshDataPsn));
                    }
                    rs->anyFreshData = true;
                    rs->lastFreshDataPsn = pkt.psn;
                    rs->anyFreshAtomic = true;
                    rs->lastFreshAtomicPsn = pkt.psn;
                } else if (pkt.op == net::Opcode::ReadResponse) {
                    if (rs->anyFreshAtomic &&
                        rnic::psnDiff(pkt.psn, rs->lastFreshAtomicPsn) <=
                            0) {
                        emit(shard, "atomic-serialization", now, pkt.srcLid,
                             pkt.srcQpn,
                             "fresh read response psn=" +
                                 std::to_string(pkt.psn) +
                                 " emitted at/below answered atomic psn=" +
                                 std::to_string(rs->lastFreshAtomicPsn));
                    }
                    rs->anyFreshData = true;
                    rs->lastFreshDataPsn = pkt.psn;
                }
            }
        }
    }

    // W4: judge the response against the requester (the destination
    // flow) it acknowledges. RC only — one-way flows never expect one.
    // A requester on another island is judged at the next window
    // barrier: nextPsn only advances and the barrier precedes the
    // response's arrival, so the barrier-time check is exactly the
    // invariant's arrival-time meaning.
    const std::size_t dstIsland =
        fabric_.sharded() ? fabric_.islandOf(pkt.dstLid) : 0;
    if (fabric_.sharded() && dstIsland != fabric_.egressIsland()) {
        shard.out[dstIsland].push(
            (now + fabric_.shardedKernel()->lookahead()).toNs(),
            {now, pkt.wireId, 1, pkt.op, pkt.dstLid, pkt.dstQpn, pkt.psn,
             pkt.epoch});
        return;
    }
    judgeAckCoherence(shardOf(pkt.dstLid), now, pkt.op, pkt.dstLid,
                      pkt.dstQpn, pkt.psn, pkt.epoch);
}

void
InvariantMonitor::judgeAckCoherence(Shard& shard, Time at, net::Opcode op,
                                    std::uint16_t dst_lid,
                                    std::uint32_t dst_qpn,
                                    std::uint32_t psn, std::uint16_t epoch)
{
    FlowState* st = flow(dst_lid, dst_qpn);
    if (st == nullptr || st->qp == nullptr ||
        st->qp->config.transport != verbs::Transport::Rc ||
        st->qp->resetEpoch != epoch) {
        return;
    }
    if (rnic::psnDiff(psn, st->qp->nextPsn) >= 0) {
        emit(shard, "ack-coherence", at, dst_lid, dst_qpn,
             std::string(net::opcodeName(op)) + " references psn=" +
                 std::to_string(psn) +
                 " never posted by the requester (nextPsn=" +
                 std::to_string(st->qp->nextPsn) + ")");
    }
}

void
InvariantMonitor::onSendPost(std::uint16_t lid, const rnic::QpContext& qp,
                             const rnic::SendWqe& wqe)
{
    FlowState* st = flow(lid, qp.qpn);
    if (st == nullptr)
        return;
    syncEpoch(*st);
    // P1: the post tap fires before PSN assignment, so qp.nextPsn is the
    // value every earlier post advanced it to — it must never regress.
    // Holds for every transport: UC/UD assign from the same counter.
    if (st->anyPostSeen &&
        rnic::psnDiff(qp.nextPsn, st->lastNextPsn) < 0) {
        emit(shardOf(lid), "psn-monotonic",
             fabric_.islandEvents(fabric_.islandOf(lid)).now(), lid, qp.qpn,
             "nextPsn regressed " + std::to_string(st->lastNextPsn) +
                 " -> " + std::to_string(qp.nextPsn));
    }
    st->anyPostSeen = true;
    st->lastNextPsn = qp.nextPsn;
    ++st->sendPosted;
    ++st->sendPostedByWr[wqe.wrId];
}

void
InvariantMonitor::onRecvPost(std::uint16_t lid, const rnic::QpContext& qp,
                             const rnic::RecvWqe& wqe)
{
    FlowState* st = flow(lid, qp.qpn);
    if (st == nullptr)
        return;
    ++st->recvPostedByWr[wqe.wrId];
}

void
InvariantMonitor::onCompletion(std::uint16_t lid,
                               const verbs::WorkCompletion& wc)
{
    FlowState* st = flow(lid, wc.qpn);
    if (st == nullptr)
        return;
    // E1: an Error-state QP must not produce *successful* completions.
    // Flush completions drain legally (and RcRequester pushes them
    // before flipping the state); a success here means the send engine
    // kept delivering past the error transition.
    if (wc.ok() && st->qp != nullptr &&
        st->qp->state == rnic::QpState::Error) {
        emit(shardOf(lid), "error-qp-completion",
             fabric_.islandEvents(fabric_.islandOf(lid)).now(), lid, wc.qpn,
             "successful completion wrId=" + std::to_string(wc.wrId) +
                 " delivered while the QP is in the Error state");
    }
    if (wc.opcode == verbs::WrOpcode::Recv) {
        // Late attach: a completion for a RECV we never saw posted
        // belongs to the pre-attach era, not to the oracle.
        if (st->lateAttach && st->recvPostedByWr[wc.wrId] == 0)
            return;
        ++st->recvCompleted;
        const std::uint64_t done = ++st->recvCompletedByWr[wc.wrId];
        if (done > st->recvPostedByWr[wc.wrId]) {
            emit(shardOf(lid), "recv-exactly-once",
                 fabric_.islandEvents(fabric_.islandOf(lid)).now(), lid,
                 wc.qpn,
                 "wrId=" + std::to_string(wc.wrId) + " completed " +
                     std::to_string(done) + "x but posted " +
                     std::to_string(st->recvPostedByWr[wc.wrId]) + "x");
        }
        return;
    }
    // Late attach: likewise for sends posted before watching started —
    // skipping them keeps C1 and F1 judging observed posts only.
    if (st->lateAttach && st->sendPostedByWr[wc.wrId] == 0)
        return;
    ++st->sendCompleted;
    const std::uint64_t done = ++st->sendCompletedByWr[wc.wrId];
    if (done > st->sendPostedByWr[wc.wrId]) {
        emit(shardOf(lid), "send-exactly-once",
             fabric_.islandEvents(fabric_.islandOf(lid)).now(), lid,
             wc.qpn,
             "wrId=" + std::to_string(wc.wrId) + " completed " +
                 std::to_string(done) + "x but posted " +
                 std::to_string(st->sendPostedByWr[wc.wrId]) + "x");
    }
}

void
InvariantMonitor::finalCheck()
{
    // Runs after the simulation (never from a worker); shards are
    // visited in island order, so the output is worker-count-invariant.
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        Shard& shard = shards_[i];
        const Time at = fabric_.islandEvents(i).now();
        for (auto& [key, st] : shard.flows) {
            if (st.sendCompleted != st.sendPosted) {
                emit(shard, "send-completion-missing", at, key.lid, key.qpn,
                     std::to_string(st.sendPosted) +
                         " send WRs posted but " +
                         std::to_string(st.sendCompleted) + " completed");
            }

            // A1: every delivered executed-range duplicate atomic must
            // have drawn an answer (replay cache, RNR or access NAK) by
            // drain. Stand down when the injector corrupted a replay
            // answer in flight: the ledger can no longer attribute
            // answers to PSNs.
            if (!st.atomicAnswerAttributionLost) {
                for (const auto& [psn, must] : st.atomicMustAnswer) {
                    const auto it = st.atomicAnswered.find(psn);
                    const std::uint64_t answered =
                        it == st.atomicAnswered.end() ? 0 : it->second;
                    if (answered < must) {
                        emit(shard, "atomic-replay-lost", at, key.lid,
                             key.qpn,
                             "duplicate atomic psn=" + std::to_string(psn) +
                                 " delivered " + std::to_string(must) +
                                 "x but answered " +
                                 std::to_string(answered) +
                                 "x (replay cache lost a required record)");
                    }
                }
            }

            // U3: datagrams delivered to a UD flow reconcile exactly as
            // RECV completions plus counted drops — nothing vanishes
            // silently. (Late-attach flows skip pre-attach completions,
            // so the books cannot balance; they are excluded.)
            if (st.qp != nullptr && !st.lateAttach &&
                st.qp->config.transport == verbs::Transport::Ud) {
                const auto& qs = st.qp->stats;
                if (qs.udDeliveredSends != st.recvCompleted + qs.udDrops) {
                    emit(shard, "ud-silent-drop", at, key.lid, key.qpn,
                         std::to_string(qs.udDeliveredSends) +
                             " datagrams delivered but " +
                             std::to_string(st.recvCompleted) +
                             " received + " + std::to_string(qs.udDrops) +
                             " counted drops");
                }
            }
        }
    }
}

std::uint64_t
InvariantMonitor::flushInbound(std::size_t island, Time now, Time horizon)
{
    Shard& dst = shards_[island];
    std::vector<CrossRecord>& in = dst.inbox;
    in.clear();

    // Window flushes (now < horizon) drain by the channel key, at +
    // lookahead: every record covered by the horizon is visible under
    // the channel-clock protocol, and the shadowed packet cannot have
    // been delivered yet, so the judgement batch is a pure function of
    // virtual state. Quiesce flushes (now == horizon) run sequentially
    // after the workers joined — everything is visible, so judge all
    // records with at <= now instead of stranding the sub-lookahead
    // tail of a limit-cut run.
    const Time lookahead = fabric_.shardedKernel()->lookahead();
    const std::int64_t threshold = now == horizon
                                       ? (now + lookahead).toNs()
                                       : horizon.toNs();
    // Cross records travel the same declared routes as the packets they
    // shadow, so only in-neighbor shards can hold work for this island.
    for (std::uint32_t src_index :
         fabric_.shardedKernel()->inNeighbors(island)) {
        shards_[src_index].out[island].drainUpTo(
            threshold,
            [lookahead](const CrossRecord& r) {
                return (r.at + lookahead).toNs();
            },
            in);
    }
    if (in.empty())
        return 0;

    // Same canonical order as the fabric's parcel merge: deterministic
    // whatever the worker count or source-island completion order.
    std::sort(in.begin(), in.end(),
              [](const CrossRecord& a, const CrossRecord& b) {
                  return a.at != b.at ? a.at < b.at : a.wireId < b.wireId;
              });
    for (const CrossRecord& rec : in) {
        if (rec.kind == 0)
            judgeAtomicMustAnswer(rec.dstLid, rec.dstQpn, rec.psn,
                                  rec.epoch);
        else
            judgeAckCoherence(dst, rec.at, rec.op, rec.dstLid, rec.dstQpn,
                              rec.psn, rec.epoch);
    }
    return in.size();
}

void
InvariantMonitor::checkSwrel(const swrel::SoftReliableChannel& channel)
{
    Shard& shard = shards_.front();
    const Time at = fabric_.events().now();
    if (channel.delivered().size() != channel.deliveredSeqCount()) {
        emit(shard, "swrel-exactly-once", at, 0, 0,
             std::to_string(channel.delivered().size()) +
                 " deliveries for " +
                 std::to_string(channel.deliveredSeqCount()) +
                 " distinct sequence numbers");
    }
    if (channel.stats().delivered != channel.delivered().size()) {
        emit(shard, "swrel-exactly-once", at, 0, 0,
             "delivered counter " +
                 std::to_string(channel.stats().delivered) +
                 " disagrees with delivery log size " +
                 std::to_string(channel.delivered().size()));
    }
    for (std::uint64_t seq = 1; seq <= channel.sentCount(); ++seq) {
        if (channel.acked(seq) && channel.failed(seq)) {
            emit(shard, "swrel-exactly-once", at, 0, 0,
                 "seq=" + std::to_string(seq) +
                     " reported both acked and failed");
        }
    }
}

std::uint64_t
InvariantMonitor::violationCount() const
{
    std::uint64_t total = 0;
    for (const Shard& shard : shards_)
        total += shard.violationCount;
    return total;
}

const std::vector<Violation>&
InvariantMonitor::violations() const
{
    if (shards_.size() == 1)
        return shards_.front().violations;
    mergedViolations_.clear();
    for (const Shard& shard : shards_) {
        mergedViolations_.insert(mergedViolations_.end(),
                                 shard.violations.begin(),
                                 shard.violations.end());
    }
    return mergedViolations_;
}

std::uint64_t
InvariantMonitor::traceHash() const
{
    // One shard: the raw stream — byte-identical to the pre-sharding
    // monitor, so the repo's single-queue goldens stand. Several shards:
    // fold the per-island streams in island order.
    if (shards_.size() == 1)
        return shards_.front().hash;
    std::uint64_t hash = 14695981039346656037ull;
    for (const Shard& shard : shards_)
        hash = mix(hash, shard.hash);
    return hash;
}

std::uint64_t
InvariantMonitor::packetsObserved() const
{
    std::uint64_t total = 0;
    for (const Shard& shard : shards_)
        total += shard.packetsObserved;
    return total;
}

std::string
InvariantMonitor::report() const
{
    const std::uint64_t total = violationCount();
    std::string out = "invariant monitor: ";
    if (total == 0) {
        out += "clean (" + std::to_string(packetsObserved()) +
               " packets observed)\n";
        return out;
    }
    const std::vector<Violation>& stored = violations();
    out += std::to_string(total) + " violation(s)";
    if (total > stored.size())
        out += " (first " + std::to_string(stored.size()) + " shown)";
    out += "\n";
    for (const auto& v : stored)
        out += "  " + v.str() + "\n";
    return out;
}

} // namespace chaos
} // namespace ibsim
