#include "chaos/port_events.hh"

#include "exp/seed_stream.hh"
#include "mem/address_space.hh"

namespace ibsim {
namespace chaos {

PortEventDriver::PortEventDriver(net::Fabric& fabric, Topology& topology)
    : fabric_(fabric), topology_(topology)
{}

void
PortEventDriver::start()
{
    startChains(false);
}

void
PortEventDriver::startSharded()
{
    startChains(true);
}

void
PortEventDriver::startChains(bool sharded)
{
    if (started_)
        return;
    started_ = true;

    const std::size_t nodes = topology_.nodeCount();
    for (std::uint16_t a = 1; a <= nodes; ++a) {
        for (std::uint16_t b = a + 1; b <= nodes; ++b) {
            if (!topology_.linkEnabled(a, b))
                continue;
            for (const std::uint16_t self : {a, b}) {
                const std::uint16_t peer = self == a ? b : a;
                const std::size_t island =
                    sharded ? fabric_.islandOf(self) : 0;
                chains_.push_back(Chain{self, peer, island,
                                        topology_.makeSchedule(a, b),
                                        sharded
                                            ? &fabric_.islandEvents(island)
                                            : &fabric_.events(),
                                        0});
                // Annotate the port (gates nothing; observability only).
                if (fabric_.portState(self) == net::PortState::Up)
                    fabric_.setPortState(self, net::PortState::Flapping);
            }
        }
    }

    for (std::size_t idx = 0; idx < chains_.size(); ++idx) {
        Chain& chain = chains_[idx];
        const Time first = chain.sched.start();
        chain.events->schedule(first, [this, idx] { fire(idx); });
    }
}

void
PortEventDriver::fire(std::size_t idx)
{
    Chain& c = chains_[idx];
    const Time next = c.sched.toggle();
    const bool up = c.sched.up();

    // Toggle this island's replica first so redundancy is judged against
    // the post-transition view (the just-cut link never counts as a
    // detour; third links are unaffected either way).
    fabric_.setLaneLinkState(c.island, c.self, c.peer, up);

    net::PortEvent ev;
    ev.type = up ? net::PortEvent::Type::PathUp
                 : net::PortEvent::Type::PathDown;
    ev.lid = c.self;
    ev.peerLid = c.peer;
    ev.redundantPath = hasRedundantPath(c);
    ++c.raised;
    fabric_.raisePortEvent(c.self, ev);

    c.events->schedule(next, [this, idx] { fire(idx); });
}

bool
PortEventDriver::hasRedundantPath(const Chain& c) const
{
    const std::size_t nodes = topology_.nodeCount();
    for (std::uint16_t x = 1; x <= nodes; ++x) {
        if (x == c.self || x == c.peer)
            continue;
        // Links without a plan never enter the down set: always up.
        if (!fabric_.laneLinkDown(c.island, c.self, x))
            return true;
    }
    return false;
}

std::uint64_t
PortEventDriver::linkFlaps() const
{
    std::uint64_t total = 0;
    for (const Chain& c : chains_) {
        if (c.self < c.peer)  // one chain per link counts
            total += c.sched.downTransitions();
    }
    return total;
}

std::uint64_t
PortEventDriver::eventsRaised() const
{
    std::uint64_t total = 0;
    for (const Chain& c : chains_)
        total += c.raised;
    return total;
}

CombinedStormStage::CombinedStormStage(net::Fabric& fabric,
                                       Topology& topology,
                                       const CombinedStormConfig& config)
    : fabric_(fabric), topology_(topology), config_(config)
{}

void
CombinedStormStage::addTarget(std::uint16_t lid, odp::OdpDriver& driver,
                              odp::TranslationTable& table,
                              std::uint64_t addr, std::uint64_t len,
                              verbs::CompletionQueue& cq)
{
    if (len == 0 || !table.odp())
        return;
    Target t;
    t.lid = lid;
    t.driver = &driver;
    t.table = &table;
    t.firstPage = mem::pageOf(addr);
    t.lastPage = mem::pageOf(addr + len - 1);
    t.cq = &cq;
    t.rng.reseed(
        exp::SeedStream("chaos.storm", config_.seed).trialSeed(lid, 0));
    targets_.push_back(std::move(t));
}

void
CombinedStormStage::start()
{
    if (started_)
        return;
    started_ = true;

    const std::size_t nodes = topology_.nodeCount();
    for (std::size_t idx = 0; idx < targets_.size(); ++idx) {
        Target& t = targets_[idx];
        for (std::uint16_t x = 1; x <= nodes; ++x) {
            if (x != t.lid && topology_.linkEnabled(t.lid, x))
                t.links.push_back(topology_.makeSchedule(t.lid, x));
        }
        t.events = fabric_.sharded()
                       ? &fabric_.islandEvents(fabric_.islandOf(t.lid))
                       : &fabric_.events();
        t.endAt = t.events->now() + config_.duration;
        t.events->scheduleAfter(config_.tickInterval,
                                [this, idx] { tick(idx); });
    }
}

void
CombinedStormStage::tick(std::size_t idx)
{
    Target& t = targets_[idx];
    const Time now = t.events->now();
    ++t.stats.ticks;

    // Advance every replica unconditionally: each cursor's draws are a
    // pure function of (its seed, now), keeping ticks job-count
    // invariant no matter which link trips the down condition.
    bool down = false;
    for (LinkSchedule& link : t.links) {
        if (!link.upAt(now))
            down = true;
    }

    if (down) {
        ++t.stats.downTicks;
        if (config_.squeezeCapacity > 0 && !t.squeezed) {
            t.cq->setCapacity(config_.squeezeCapacity);
            t.squeezed = true;
            ++t.stats.capacityClamps;
        }
        for (std::size_t i = 0; i < config_.pagesPerBurst; ++i) {
            const auto page = static_cast<std::uint64_t>(t.rng.uniformInt(
                static_cast<std::int64_t>(t.firstPage),
                static_cast<std::int64_t>(t.lastPage)));
            const std::uint64_t va = page * mem::pageSize;
            // State-machine mode also storms pages mid-transition,
            // exercising the doomed-fault and window-extension edges.
            const bool transient =
                t.driver->timing().pageStateMachine &&
                t.driver->pageTransient(*t.table, va);
            if (t.table->mappedPage(va) || transient) {
                t.driver->invalidate(*t.table, va);
                ++t.stats.pagesInvalidated;
            }
        }
    } else if (t.squeezed) {
        t.cq->setCapacity(t.normalCapacity);
        t.squeezed = false;
    }

    if (now + config_.tickInterval <= t.endAt) {
        t.events->scheduleAfter(config_.tickInterval,
                                [this, idx] { tick(idx); });
    } else if (t.squeezed) {
        // Storm over: leave the CQ the way we found it.
        t.cq->setCapacity(t.normalCapacity);
        t.squeezed = false;
    }
}

CombinedStormStats
CombinedStormStage::stats() const
{
    CombinedStormStats total;
    for (const Target& t : targets_) {
        total.ticks += t.stats.ticks;
        total.downTicks += t.stats.downTicks;
        total.pagesInvalidated += t.stats.pagesInvalidated;
        total.capacityClamps += t.stats.capacityClamps;
    }
    return total;
}

} // namespace chaos
} // namespace ibsim
