/**
 * @file
 * The chaos engine: one object owning a full fault campaign.
 *
 * The FaultInjector covers the wire; real deployments also fail on the
 * RNIC/ODP side — page-fault servicing stalls (the paper's Sec. III-A
 * latencies ballooning under load), translation invalidation storms
 * (Sec. VII's flood experiments are one long storm), and CQ overflow
 * pressure. ChaosEngine bundles both halves behind one seed: construct it
 * from a ChaosConfig, install() it on the fabric, and point the ODP/CQ
 * helpers at the resources under test. Every decision draws from RNGs
 * derived from the one seed via exp::SeedStream, disjoint from the
 * cluster's own streams, so a failing campaign replays bit-identically
 * without perturbing the workload's randomness.
 */

#ifndef IBSIM_CHAOS_CHAOS_ENGINE_HH
#define IBSIM_CHAOS_CHAOS_ENGINE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "chaos/fault_injector.hh"
#include "net/fabric.hh"
#include "odp/odp_driver.hh"
#include "odp/translation_table.hh"
#include "simcore/event_queue.hh"
#include "simcore/rng.hh"
#include "verbs/completion_queue.hh"

namespace ibsim {
namespace chaos {

class Topology;
class PortEventDriver;

/**
 * Declarative fault campaign. Rates are per-packet probabilities; a
 * fault class is off at rate 0 (flap is off while flapDown is 0). The
 * CLI's --chaos-* flags and the chaos_probe bench both map onto this.
 */
struct ChaosConfig
{
    std::uint64_t seed = 1;

    /** Targeting applied to every stage (default: all packets). */
    PacketFilter filter;

    double dropRate = 0.0;
    double dupRate = 0.0;
    Time dupMaxDelay = Time::us(50);
    double reorderRate = 0.0;
    Time reorderMaxHold = Time::us(200);
    double corruptRate = 0.0;
    double corruptEvadeCrc = 0.0;
    double delayRate = 0.0;
    Time delayMin = Time::us(1);
    Time delayMax = Time::us(100);
    double forgedNakRate = 0.0;

    /**
     * When > 0, forged NAK PSNs land up to this many slots below the
     * triggering request — inside a possibly coalesced-ACKed range (the
     * ForgedNakStage ACK-coalescing edge case). 0 keeps the classic
     * NAK-at-request-PSN behaviour.
     */
    std::uint32_t forgedNakMaxRewind = 0;

    Time flapPeriod = Time::ms(10);
    Time flapDown;  ///< 0 disables the flap stage
};

/** Counters for the RNIC/ODP-side faults. */
struct EngineStats
{
    std::uint64_t odpSpikes = 0;
    std::uint64_t stormBursts = 0;
    std::uint64_t pagesInvalidated = 0;
};

/**
 * Owns a FaultInjector built from a ChaosConfig plus the ODP/CQ fault
 * sources. Keep it alive for the duration of the run (the fabric and
 * driver hold non-owning references into it).
 */
class ChaosEngine
{
  public:
    ChaosEngine(EventQueue& events, const ChaosConfig& config);
    ~ChaosEngine();

    ChaosEngine(const ChaosEngine&) = delete;
    ChaosEngine& operator=(const ChaosEngine&) = delete;

    /** Install the wire pipeline on @p fabric (and, after
     * attachPortEvents(), start the port-event driver). */
    void install(net::Fabric& fabric);

    /** Remove the wire pipeline from @p fabric. */
    void uninstall(net::Fabric& fabric) { fabric.setFaultHook(nullptr); }

    /**
     * Island-mode install: build one FaultInjector per island of an
     * island-mode fabric — same stage pipeline as install(), but each
     * fork draws from its own SeedStream-derived RNG (disjoint per
     * island, so the campaign is deterministic at any worker count) and,
     * when attachTopology() was called first, consults its own replica
     * of the topology's flap schedule (link schedules are pure functions
     * of (seed, link, time), so every replica replays the same windows;
     * replicas exist because schedule cursors mutate on query). Call
     * after attachTopology() and after every node exists.
     */
    void installSharded(net::Fabric& fabric);

    FaultInjector& injector() { return injector_; }

    /** Per-island pipeline @p island (after installSharded()). */
    FaultInjector& islandInjector(std::size_t island);

    /** Summed InjectorStats over the per-island pipelines. */
    InjectorStats shardedStats() const;

    /** Summed completed down-windows over the per-island topology
     * replicas (island-mode counterpart of Topology::totalFlaps()). */
    std::uint64_t shardedFlaps() const;

    const ChaosConfig& config() const { return config_; }

    /**
     * Append a TopologyStage consulting @p topology's per-link flap
     * schedules (cluster/topology.hh) to the wire pipeline — the
     * multi-node counterpart of the single LinkFlapStage. @p topology
     * must outlive the engine; stages run in attach order after the
     * config-built ones.
     */
    void attachTopology(Topology& topology);

    /**
     * Port-event mode — the opt-in successor of attachTopology(). No
     * TopologyStage is added; instead install()/installSharded() start a
     * PortEventDriver (chaos/port_events.hh) that converts @p topology's
     * flap schedules into fabric link-state toggles (packets drop at the
     * sending port) plus async port events toward the RNICs, which is
     * what the QP error/recovery machinery keys off. Under
     * installSharded() the driver forks one schedule replica per
     * endpoint island, exactly like the TopologyStage replicas, so the
     * event sequence is bit-identical at any jobs count. Mutually
     * exclusive with attachTopology(); the legacy silent-drop mode stays
     * the default.
     */
    void attachPortEvents(Topology& topology);

    /** The port-event driver (null until install()/installSharded()). */
    PortEventDriver* portEvents() { return portEvents_.get(); }

    /**
     * Page-fault latency spikes: with probability @p rate a fault's
     * resolution latency is multiplied by @p factor (a periodically
     * overloaded ODP servicing thread). Installs the driver's latency
     * chaos probe; one probe per driver.
     */
    void addOdpLatencySpikes(odp::OdpDriver& driver, double rate,
                             double factor);

    /**
     * Translation invalidation storm: every @p interval, invalidate up to
     * @p pages_per_burst randomly chosen mapped pages of
     * [@p addr, @p addr + @p len) in @p table, for @p bursts bursts
     * (bounded so the event queue can drain).
     */
    void startInvalidationStorm(odp::OdpDriver& driver,
                                odp::TranslationTable& table,
                                std::uint64_t addr, std::uint64_t len,
                                Time interval,
                                std::size_t pages_per_burst,
                                std::size_t bursts);

    /**
     * CQ overflow pressure: cap @p cq at @p capacity pending entries.
     * Completions pushed beyond the cap are lost (counted by the CQ) —
     * the invariant monitor's completion accounting then shows exactly
     * what the application missed.
     */
    void applyCqPressure(verbs::CompletionQueue& cq, std::size_t capacity);

    const EngineStats& stats() const { return stats_; }

  private:
    struct Storm
    {
        odp::OdpDriver* driver;
        odp::TranslationTable* table;
        std::uint64_t firstPage;
        std::uint64_t lastPage;
        Time interval;
        std::size_t pagesPerBurst;
        std::size_t burstsLeft;
    };

    void stormTick(Storm* storm);

    /** Append the ChaosConfig-declared stages to @p injector. */
    static void buildStages(FaultInjector& injector,
                            const ChaosConfig& config);

    EventQueue& events_;
    ChaosConfig config_;
    Rng rng_;  ///< engine-side decisions (spikes, storms)
    FaultInjector injector_;
    std::deque<Storm> storms_;  ///< deque: stable addresses for callbacks
    EngineStats stats_;

    /** @{ Island mode: per-island pipeline forks and topology replicas
     * (unique_ptrs: Topology is incomplete here, and addresses must stay
     * stable — TopologyStage holds a reference). */
    Topology* topology_ = nullptr;
    std::vector<std::unique_ptr<Topology>> topoReplicas_;
    std::vector<std::unique_ptr<FaultInjector>> islandInjectors_;
    /** @} */

    /** Port-event mode (attachPortEvents()). */
    Topology* eventTopology_ = nullptr;
    std::unique_ptr<PortEventDriver> portEvents_;
};

} // namespace chaos
} // namespace ibsim

#endif // IBSIM_CHAOS_CHAOS_ENGINE_HH
