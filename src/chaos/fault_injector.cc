#include "chaos/fault_injector.hh"

#include <algorithm>
#include <utility>

#include "exp/seed_stream.hh"

namespace ibsim {
namespace chaos {

bool
isRequestOpcode(net::Opcode op)
{
    switch (op) {
    case net::Opcode::ReadRequest:
    case net::Opcode::WriteRequest:
    case net::Opcode::Send:
    case net::Opcode::AtomicRequest:
        return true;
    case net::Opcode::ReadResponse:
    case net::Opcode::Ack:
    case net::Opcode::Nak:
    case net::Opcode::RnrNak:
    case net::Opcode::AtomicResponse:
    case net::Opcode::CmRearm:
    case net::Opcode::CmRearmAck:
        return false;
    }
    return false;
}

bool
PacketFilter::matches(const net::Packet& pkt) const
{
    if (srcLid && pkt.srcLid != *srcLid)
        return false;
    if (dstLid && pkt.dstLid != *dstLid)
        return false;
    if (srcQpn && pkt.srcQpn != *srcQpn)
        return false;
    if (dstQpn && pkt.dstQpn != *dstQpn)
        return false;
    if (opcode && pkt.op != *opcode)
        return false;
    if (requestsOnly && !isRequestOpcode(pkt.op))
        return false;
    if (responsesOnly && isRequestOpcode(pkt.op))
        return false;
    return true;
}

void
DelayStage::apply(std::vector<net::FaultHook::Delivery>& deliveries,
                  Time /*now*/, Rng& rng, InjectorStats& stats)
{
    for (auto& d : deliveries) {
        if (!filter_.matches(d.pkt) || !rng.chance(rate_))
            continue;
        d.extraDelay += rng.uniformTime(min_, max_ + Time::ns(1));
        ++stats.delayed;
    }
}

void
ReorderStage::apply(std::vector<net::FaultHook::Delivery>& deliveries,
                    Time /*now*/, Rng& rng, InjectorStats& stats)
{
    for (auto& d : deliveries) {
        if (!filter_.matches(d.pkt) || !rng.chance(rate_))
            continue;
        // Holding this packet lets later sends overtake it: bounded
        // reordering without any cross-packet state in the stage.
        d.extraDelay += rng.uniformTime(Time::ns(1), maxHold_ + Time::ns(1));
        ++stats.reordered;
    }
}

void
DuplicateStage::apply(std::vector<net::FaultHook::Delivery>& deliveries,
                      Time /*now*/, Rng& rng, InjectorStats& stats)
{
    const std::size_t n = deliveries.size();
    for (std::size_t i = 0; i < n; ++i) {
        if (!filter_.matches(deliveries[i].pkt) || !rng.chance(rate_))
            continue;
        net::FaultHook::Delivery copy = deliveries[i];
        copy.pkt.chaosFlags |= net::Packet::chaosDuplicated;
        copy.extraDelay +=
            rng.uniformTime(Time::ns(0), maxCopyDelay_ + Time::ns(1));
        deliveries.push_back(std::move(copy));
        ++stats.duplicated;
    }
}

void
CorruptStage::apply(std::vector<net::FaultHook::Delivery>& deliveries,
                    Time /*now*/, Rng& rng, InjectorStats& stats)
{
    for (auto& d : deliveries) {
        if (!filter_.matches(d.pkt) || !rng.chance(rate_))
            continue;
        net::Packet& pkt = d.pkt;
        // Flip bits in one randomly chosen field — header or payload —
        // modeling in-flight corruption before the ICRC check.
        switch (rng.uniformInt(0, 5)) {
        case 0:
            pkt.psn ^= 1u << rng.uniformInt(0, 23);
            break;
        case 1:
            pkt.dstQpn ^= 1u << rng.uniformInt(0, 23);
            break;
        case 2:
            pkt.raddr ^= std::uint64_t(1) << rng.uniformInt(0, 63);
            break;
        case 3:
            pkt.length ^= 1u << rng.uniformInt(0, 30);
            break;
        case 4:
            pkt.op = static_cast<net::Opcode>(
                static_cast<std::uint8_t>(pkt.op) ^
                (1u << rng.uniformInt(0, 7)));
            break;
        default:
            if (!pkt.payload.empty()) {
                auto idx = static_cast<std::size_t>(rng.uniformInt(
                    0, static_cast<std::int64_t>(pkt.payload.size()) - 1));
                pkt.payload[idx] ^=
                    static_cast<std::uint8_t>(1u << rng.uniformInt(0, 7));
            } else {
                pkt.psn ^= 1u << rng.uniformInt(0, 23);
            }
            break;
        }
        pkt.chaosFlags |= net::Packet::chaosCorrupted;
        if (evadeCrc_ > 0.0 && rng.chance(evadeCrc_))
            pkt.chaosFlags |= net::Packet::chaosCrcEvading;
        ++stats.corrupted;
    }
}

bool
LinkFlapStage::down(Time now) const
{
    if (period_.toNs() <= 0)
        return false;
    std::int64_t pos = (now - phase_).toNs() % period_.toNs();
    if (pos < 0)
        pos += period_.toNs();
    return pos < downFor_.toNs();
}

void
LinkFlapStage::apply(std::vector<net::FaultHook::Delivery>& deliveries,
                     Time now, Rng& /*rng*/, InjectorStats& stats)
{
    if (!down(now))
        return;
    auto it = std::remove_if(
        deliveries.begin(), deliveries.end(),
        [&](const net::FaultHook::Delivery& d) {
            if (!filter_.matches(d.pkt))
                return false;
            ++stats.flapDropped;
            ++stats.dropped;
            return true;
        });
    deliveries.erase(it, deliveries.end());
}

void
DropStage::apply(std::vector<net::FaultHook::Delivery>& deliveries,
                 Time /*now*/, Rng& rng, InjectorStats& stats)
{
    auto it = std::remove_if(
        deliveries.begin(), deliveries.end(),
        [&](const net::FaultHook::Delivery& d) {
            if (!filter_.matches(d.pkt) || !rng.chance(rate_))
                return false;
            ++stats.dropped;
            return true;
        });
    deliveries.erase(it, deliveries.end());
}

void
LossModelStage::apply(std::vector<net::FaultHook::Delivery>& deliveries,
                      Time /*now*/, Rng& rng, InjectorStats& stats)
{
    auto it = std::remove_if(
        deliveries.begin(), deliveries.end(),
        [&](const net::FaultHook::Delivery& d) {
            if (!filter_.matches(d.pkt) || !model_->shouldDrop(d.pkt, rng))
                return false;
            ++stats.dropped;
            return true;
        });
    deliveries.erase(it, deliveries.end());
}

void
ForgedNakStage::apply(std::vector<net::FaultHook::Delivery>& deliveries,
                      Time /*now*/, Rng& rng, InjectorStats& stats)
{
    const std::size_t n = deliveries.size();
    for (std::size_t i = 0; i < n; ++i) {
        const net::Packet& req = deliveries[i].pkt;
        if (!filter_.matches(req) || !isRequestOpcode(req.op) ||
            !rng.chance(rate_)) {
            continue;
        }
        // Address the NAK back at the requester. Using the request's own
        // PSN makes the forgery safe-by-construction: a sequence-error NAK
        // at PSN p rewinds the requester to p and replays from there, and
        // an RNR NAK at p re-schedules p after the RNR wait — both are
        // states the real protocol reaches, just without a real cause.
        net::Packet nak;
        nak.op = nakOpcode_;
        nak.srcLid = req.dstLid;
        nak.dstLid = req.srcLid;
        nak.srcQpn = req.dstQpn;
        nak.dstQpn = req.srcQpn;
        nak.psn = req.psn;
        if (maxRewind_ > 0) {
            // ACK-coalescing edge case: land the forged PSN below the
            // request, possibly inside a range a coalesced ACK already
            // retired. A correct requester clamps the rewind at its
            // go-back-N window head; double-retiring a completed WR
            // would trip the oracle's exactly-once accounting. The draw
            // happens only in this mode, so default-configured stages
            // keep their packet-for-packet RNG schedules.
            const auto back = static_cast<std::uint32_t>(
                rng.uniformInt(1, maxRewind_));
            nak.psn = (req.psn - back) & 0xffffff;
        }
        if (nakOpcode_ == net::Opcode::RnrNak)
            nak.rnrDelay = rnrDelay_;
        else
            nak.nak = net::NakCode::PsnSequenceError;
        nak.chaosFlags |= net::Packet::chaosForged;
        deliveries.push_back({std::move(nak), Time()});
        ++stats.naksForged;
    }
}

FaultInjector::FaultInjector(std::uint64_t seed)
    : rng_(exp::SeedStream("chaos.injector", seed).base())
{
}

FaultInjector&
FaultInjector::addStage(std::unique_ptr<FaultStage> stage)
{
    stages_.push_back(std::move(stage));
    return *this;
}

void
FaultInjector::processPacket(const net::Packet& pkt, Time now,
                             std::vector<net::FaultHook::Delivery>& out)
{
    ++stats_.packetsSeen;
    out.push_back({pkt, Time()});
    for (auto& stage : stages_) {
        stage->apply(out, now, rng_, stats_);
        if (out.empty())
            return;
    }
}

} // namespace chaos
} // namespace ibsim
