/**
 * @file
 * The Reliable Connection responder engine.
 *
 * One RcResponder serves the receive side of one QP: expected-PSN tracking,
 * duplicate handling, PSN-sequence-error NAKs, RNR NAKs for server-side ODP
 * faults (and missing RECV WQEs), proactive response transmission when a
 * fault resolves (whose replies the waiting requester discards — Fig. 1),
 * and the responder half of the damming quirk.
 */

#ifndef IBSIM_RNIC_RC_RESPONDER_HH
#define IBSIM_RNIC_RC_RESPONDER_HH

#include <deque>
#include <map>
#include <optional>

#include "net/packet.hh"
#include "rnic/qp_context.hh"

namespace ibsim {
namespace rnic {

class Rnic;

/**
 * Receive-side protocol engine of one RC QP.
 */
class RcResponder
{
  public:
    RcResponder(Rnic& rnic, QpContext& qp);

    /** Handle an inbound request (READ/WRITE/SEND/ATOMIC). */
    void onRequest(const net::Packet& pkt);

    /**
     * QP recovery (reset->init->RTR->RTS): discard responder-side state
     * from the old reset epoch — the parked proactive request, the
     * one-NAK-per-occurrence latch, partial SEND reassembly and the
     * atomic replay cache all refer to the pre-reset PSN stream.
     */
    void resetForRecovery();

  private:
    /** Unreliable Connection service: no acks, no NAKs, losses silent. */
    void onUcRequest(const net::Packet& pkt);

    /** Unreliable Datagram service: unconnected SENDs. */
    void onUdRequest(const net::Packet& pkt);

  public:

  private:
    /**
     * Try to execute a request. Returns false when execution must wait
     * (server-side fault raised, RNR NAK sent).
     *
     * @param duplicate true when re-serving an already-executed request.
     */
    bool execute(const net::Packet& pkt, bool duplicate);

    /**
     * Check remote-access pages; on unmapped pages send an RNR NAK, raise
     * faults, and (for in-sequence requests) arrange the proactive
     * response. Returns true when all pages are mapped.
     */
    bool pagesReady(const net::Packet& pkt, bool arrange_proactive);

    /** @p replayed marks responses re-serving a duplicate request. */
    void sendReadResponse(const net::Packet& req, bool replayed = false);
    void sendAck(std::uint32_t psn, bool replayed = false);
    void sendSeqNak();
    void sendAccessNak(std::uint32_t psn);
    void sendRnrNak(std::uint32_t psn);

    /** Fault-resolution callback: execute the parked request. */
    void proactiveResolve();

    Rnic& rnic_;
    QpContext& qp_;

    /** In-sequence request parked on a server-side fault. */
    std::optional<net::Packet> parked_;
    /** Unresolved pages of the parked request. */
    int parkedPagesLeft_ = 0;

    /** One PSN-sequence NAK per occurrence (IBA behaviour). */
    bool seqNakSent_ = false;

    /**
     * Atomic replay cache: atomics are not idempotent, so duplicates are
     * answered from these records instead of re-executing (the IBA
     * atomic response resources). Bounded FIFO of recent results; the
     * depth comes from DeviceProfile::atomicReplayDepth. atomicCache_
     * holds one entry per cached PSN and atomicCacheOrder_ holds each of
     * those PSNs exactly once in insertion order — cacheAtomicResult()
     * maintains that correspondence so eviction retires map and deque
     * coherently.
     */
    std::map<std::uint32_t, std::uint64_t> atomicCache_;
    std::deque<std::uint32_t> atomicCacheOrder_;

    /** Run an atomic against host memory; returns the original value. */
    std::uint64_t applyAtomic(const net::Packet& pkt);

    /** Record an atomic result for duplicate replay (bounded FIFO). */
    void cacheAtomicResult(std::uint32_t psn, std::uint64_t old_value);

    void sendAtomicResponse(std::uint32_t psn, std::uint64_t old_value,
                            bool replayed = false);

    /** Segments of an in-progress multi-packet SEND already landed. */
    std::uint32_t sendSegsLanded_ = 0;
};

} // namespace rnic
} // namespace ibsim

#endif // IBSIM_RNIC_RC_RESPONDER_HH
