/**
 * @file
 * The Reliable Connection requester engine.
 *
 * One RcRequester drives the send side of one QP: PSN assignment, first
 * transmission (including sender-side ODP faults for SEND/WRITE payloads),
 * the Local ACK Timeout with Retry Count semantics, RNR NAK waits,
 * PSN-sequence-error go-back-N recovery, client-side ODP blind
 * retransmission, and the damming pending-window bookkeeping. This is where
 * most of the paper's reverse-engineered behaviour lives; see DESIGN.md
 * section 4 for the mapping from observations to mechanisms.
 */

#ifndef IBSIM_RNIC_RC_REQUESTER_HH
#define IBSIM_RNIC_RC_REQUESTER_HH

#include <cstdint>
#include <vector>

#include "net/packet.hh"
#include "rnic/qp_context.hh"
#include "verbs/types.hh"

namespace ibsim {
namespace rnic {

class Rnic;

/**
 * Send-side protocol engine of one RC QP.
 */
class RcRequester
{
  public:
    RcRequester(Rnic& rnic, QpContext& qp);

    /** Post a new work request (assigns the PSN, attempts transmission). */
    void post(SendWqe wqe);

    /** @{ Packet handlers (dispatched by Rnic::receive). */
    void onAck(const net::Packet& pkt);
    void onNak(const net::Packet& pkt);
    void onRnrNak(const net::Packet& pkt);
    void onReadResponse(const net::Packet& pkt);
    /** @} */

    /** Flush everything with @p status and move the QP to error state. */
    void flushAll(verbs::WcStatus status);

    /**
     * Recovery re-arm finished (QP back to RTS): restart the send engine
     * for any WRs queued while the CM handshake was in flight.
     */
    void resume();

  private:
    /** Transmit (or retransmit) one WQE's request packet. */
    void transmit(SendWqe& wqe);

    /**
     * Raise sender-side faults for every unmapped source page of
     * @p wqe; the WQE stays blockedOnLocalFault until the batch fans in.
     */
    void raiseLocalFaults(SendWqe& wqe);

    /**
     * A sender-side fault batch fanned in for the WQE at @p psn. With
     * the page state machine on, the source range is re-checked first:
     * an invalidation that flushed pages while the batch resolved
     * (the notifier quiesce window) re-raises faults instead of
     * transmitting stale translations.
     */
    void onLocalFaultsResolved(std::uint32_t psn);

    /**
     * Slide the pipelining window: put requests on the wire, in PSN
     * order, until maxInflight are outstanding past the head.
     */
    void pump();

    /**
     * Go-back-N: rewind the send cursor to @p psn (not before the head)
     * so pump() replays from there; optionally clear dammed marks.
     */
    void rewind(std::uint32_t psn, bool clear_dammed);

    /** @{ Local ACK Timeout machinery. */
    void armTimer();
    void disarmTimer();
    void timeoutFired();
    /** @} */

    /** @{ RNR wait machinery. */
    void enterRnrWait(Time responder_min_delay);
    void rnrWaitFired();
    /** @} */

    /** @{ Client-side ODP blind retransmission. */
    void scheduleClientRexmit();
    void clientRexmitFired();
    /** @} */

    /**
     * Check the local pages of a READ destination. Returns true when all
     * pages are mapped and this QP's status view is fresh; otherwise
     * raises faults / registers waiters (when @p register_faults) and
     * returns false.
     */
    bool readDestinationReady(const SendWqe& wqe, bool register_faults);

    /** Complete the head WQE successfully. */
    void completeHead();

    /** Progress was made: reset retry state and re-arm the timer. */
    void progressMade();

    /**
     * Pooled fan-in counters for multi-page sender-side fault batches.
     * Each batch used to allocate a std::make_shared<int>; here the fault
     * callbacks capture a slot index into this free-list pool, and the
     * slot is recycled when the last page of the batch resolves. A slot
     * is never released while its callbacks are still in flight.
     */
    struct CounterPool
    {
        std::uint32_t
        acquire()
        {
            if (!free.empty()) {
                const std::uint32_t idx = free.back();
                free.pop_back();
                counters[idx] = 0;
                return idx;
            }
            counters.push_back(0);
            return static_cast<std::uint32_t>(counters.size() - 1);
        }

        void release(std::uint32_t idx) { free.push_back(idx); }

        int& at(std::uint32_t idx) { return counters[idx]; }

        std::vector<int> counters;
        std::vector<std::uint32_t> free;
    };

    Rnic& rnic_;
    QpContext& qp_;
    CounterPool faultCounters_;
};

} // namespace rnic
} // namespace ibsim

#endif // IBSIM_RNIC_RC_REQUESTER_HH
