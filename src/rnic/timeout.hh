/**
 * @file
 * Local ACK Timeout arithmetic (IBA spec Sec. 9.7.6.1.3; paper Sec. II-C).
 *
 * A QP's Local ACK Timeout C_ack is a 5-bit exponent defining the timeout
 * interval T_tr = 4.096 us * 2^C_ack. C_ack = 0 disables the timeout.
 * Vendors clamp non-zero values from below by a device minimum c0, and the
 * spec only requires the detection time T_o to fall within
 * [T_tr, 4 * T_tr]; the modeled detection factor lives in DeviceProfile.
 */

#ifndef IBSIM_RNIC_TIMEOUT_HH
#define IBSIM_RNIC_TIMEOUT_HH

#include <cstdint>

#include "rnic/device_profile.hh"
#include "simcore/time.hh"

namespace ibsim {
namespace rnic {

/** Largest encodable C_ack (5-bit field). */
constexpr std::uint8_t maxCack = 31;

/**
 * The timeout interval T_tr for an exponent, without vendor clamping.
 * Returns Time::max() for the disabled encoding (0).
 */
Time timeoutInterval(std::uint8_t cack);

/**
 * Vendor-clamped effective exponent: max(cack, c0), except 0 stays 0
 * (disabled).
 */
std::uint8_t effectiveCack(std::uint8_t cack, std::uint8_t min_cack);

/**
 * Modeled detection time T_o for a QP on a device: the clamped T_tr times
 * the device's detection factor. Time::max() when disabled.
 */
Time detectionTime(std::uint8_t cack, const DeviceProfile& profile);

} // namespace rnic
} // namespace ibsim

#endif // IBSIM_RNIC_TIMEOUT_HH
