/**
 * @file
 * Per-QP transport state shared by the requester and responder engines.
 *
 * A Reliable Connection QP keeps a requester side (send queue, outstanding
 * WQEs, retransmission machinery) and a responder side (expected PSN,
 * receive queue). The state lives here as a plain container; the protocol
 * logic lives in RcRequester / RcResponder.
 */

#ifndef IBSIM_RNIC_QP_CONTEXT_HH
#define IBSIM_RNIC_QP_CONTEXT_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "simcore/event_queue.hh"
#include "simcore/time.hh"
#include "verbs/types.hh"

namespace ibsim {

namespace verbs {
class CompletionQueue;
} // namespace verbs

namespace rnic {

/** 24-bit PSN ring arithmetic: signed distance a - b. */
std::int32_t psnDiff(std::uint32_t a, std::uint32_t b);

/** Next PSN on the 24-bit ring. */
constexpr std::uint32_t
psnNext(std::uint32_t psn)
{
    return (psn + 1) & 0xffffff;
}

/**
 * A send-side work queue element being processed by the requester.
 */
struct SendWqe
{
    std::uint64_t wrId = 0;
    verbs::WrOpcode op = verbs::WrOpcode::Read;
    std::uint64_t laddr = 0;
    std::uint32_t lkey = 0;
    std::uint64_t raddr = 0;
    std::uint32_t rkey = 0;
    std::uint32_t length = 0;

    std::uint32_t psn = 0;

    /** Packets this WQE occupies on the PSN ring (MTU segmentation). */
    std::uint32_t segments = 1;

    /** Response segments received so far (segmented READ). */
    std::uint32_t segmentsReceived = 0;

    /** Last PSN of this WQE's range. */
    std::uint32_t
    lastPsn() const
    {
        return (psn + segments - 1) & 0xffffff;
    }

    /** @{ Atomic operands (FetchAdd / CompSwap). */
    std::uint64_t atomicOperand = 0;
    std::uint64_t atomicCompare = 0;
    /** @} */

    /** Damming-quirk mark (see DESIGN.md #4). */
    bool dammed = false;

    /**
     * Whether this WQE, as head-of-line, already opened its damming
     * episode. Each stuck request dams at most once (the Fig. 7 cut-offs
     * follow from the *first* request's single pending period).
     */
    bool windowOpened = false;

    /** SEND/WRITE waiting on a sender-side page fault; not yet sendable. */
    bool blockedOnLocalFault = false;

    /** Transmission count (first send + retransmissions). */
    std::uint32_t transmissions = 0;

    Time postedAt;
    Time firstSentAt;
};

/** A receive-side WQE awaiting a SEND. */
struct RecvWqe
{
    std::uint64_t wrId = 0;
    std::uint64_t addr = 0;
    std::uint32_t length = 0;
    std::uint32_t lkey = 0;
};

/** Per-QP statistics for experiment analysis. */
struct QpStats
{
    std::uint64_t requestsSent = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t rnrNaksReceived = 0;
    std::uint64_t rnrNaksSent = 0;
    std::uint64_t seqNaksReceived = 0;
    std::uint64_t seqNaksSent = 0;
    std::uint64_t responsesDiscardedRnrWait = 0;
    std::uint64_t responsesDiscardedFault = 0;
    std::uint64_t responsesDiscardedStale = 0;
    std::uint64_t dammedDrops = 0;
    std::uint64_t completions = 0;

    /**
     * @{ UD responder accounting, read by the chaos oracle's U3
     * silent-drop invariant: every SEND datagram reaching a UD QP is
     * either consumed by a RECV (one Recv completion) or counted here —
     * nothing falls through silently.
     */
    /** SEND datagrams delivered to this UD QP by the fabric. */
    std::uint64_t udDeliveredSends = 0;
    /** Datagrams discarded: no RECV posted, truncation, ODP-cold buffer. */
    std::uint64_t udDrops = 0;
    /** @} */
};

/**
 * QP state machine (ibv_qp_state subset). QPs historically only knew
 * "connected" and "errorState"; the explicit machine exists for the
 * recovery path: Error -> Reset -> Init -> RTR -> RTS re-arms a QP whose
 * retries exhausted while its port was down. `errorState` is kept in
 * sync (state == Error) for the hot paths that branch on a bool.
 */
enum class QpState : std::uint8_t
{
    Reset,  ///< created / torn down for recovery
    Init,   ///< recovery handshake (CM re-arm) in flight
    Rtr,    ///< responder re-armed, requester not yet
    Rts,    ///< fully operational (connectQp lands here)
    Error,  ///< retries exhausted; posts flush immediately
};

const char* qpStateName(QpState state);

/**
 * The state of one RC queue pair.
 */
struct QpContext
{
    std::uint32_t qpn = 0;

    /** @{ Connection endpoint (set by connect()). */
    std::uint16_t dstLid = 0;
    std::uint32_t dstQpn = 0;
    bool connected = false;
    /** @} */

    verbs::QpConfig config;
    verbs::CompletionQueue* cq = nullptr;

    /** @{ Requester state. */
    std::deque<SendWqe> outstanding;  ///< sent, not yet completed
    std::uint32_t nextPsn = 0;
    std::uint32_t retryCount = 0;     ///< consecutive transport timeouts
    std::uint32_t rnrCount = 0;       ///< RNR NAKs outstanding against budget
    EventHandle retransmitTimer;
    bool timerArmed = false;

    bool inRnrWait = false;
    EventHandle rnrTimer;

    /**
     * Damming episode flag: the QP is inside the head request's first
     * pending period (RNR wait or client-side fault gap). Requests posted
     * while this is set get the dammed mark, up to the device's
     * per-episode capacity. The episode closes when the pending period
     * ends (retransmission fires or NAK/timeout recovery).
     */
    bool dammingEpisode = false;
    std::uint32_t episodeDamsLeft = 0;

    /**
     * PSN of the next request the send engine will put on the wire.
     * Requests in [outstanding.front().psn, sendCursor) are in flight;
     * go-back-N recovery rewinds the cursor.
     */
    std::uint32_t sendCursor = 0;

    bool clientRexmitActive = false;
    EventHandle clientRexmitTimer;

    bool errorState = false;
    /** @} */

    /** @{ Error/recovery machinery (DESIGN.md §13). */

    /** Explicit QP state; errorState mirrors (state == Error). */
    QpState state = QpState::Reset;

    /** The path to dstLid is currently cut (set from PathDown events). */
    bool pathDown = false;

    /**
     * The simulated SM rerouted this QP around a cut link: its packets
     * pass the fabric's link-down gate at one extra hop of latency.
     */
    bool rerouted = false;

    /**
     * Reset epoch, bumped by each recovery pass and stamped into every
     * packet; receivers discard stale-epoch traffic (see Packet::epoch).
     */
    std::uint16_t resetEpoch = 0;

    /** @{ CM re-arm handshake retry timer. */
    EventHandle cmTimer;
    bool cmTimerArmed = false;
    std::uint8_t cmRetries = 0;
    /** @} */

    /** @} */

    /** @{ Responder state. */
    std::uint32_t expectedPsn = 0;
    std::deque<RecvWqe> recvQueue;
    /** @} */

    QpStats stats;

    /** Whether the requester currently has work in flight. */
    bool active() const { return !outstanding.empty(); }

    /**
     * Whether the send engine is paused (pending retransmission): inside
     * an RNR wait or a client-side fault gap. New posts queue while
     * paused and go out with the next retransmission burst, as observed
     * in the paper's Fig. 5 captures.
     */
    bool paused() const { return inRnrWait || clientRexmitActive; }
};

} // namespace rnic
} // namespace ibsim

#endif // IBSIM_RNIC_QP_CONTEXT_HH
