/**
 * @file
 * The simulated RDMA NIC.
 *
 * One Rnic terminates one fabric port (one LID), owns the node's queue
 * pairs and the memory-key registry, and dispatches packets between the
 * fabric and the per-QP Reliable Connection engines (RcRequester /
 * RcResponder). Its behaviour is parameterized by a DeviceProfile, which is
 * where the paper's per-silicon quirks live.
 */

#ifndef IBSIM_RNIC_RNIC_HH
#define IBSIM_RNIC_RNIC_HH

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mem/address_space.hh"
#include "net/fabric.hh"
#include "odp/odp_driver.hh"
#include "odp/page_status_board.hh"
#include "rnic/device_profile.hh"
#include "rnic/flat_table.hh"
#include "rnic/qp_context.hh"
#include "simcore/event_queue.hh"
#include "simcore/rng.hh"
#include "verbs/completion_queue.hh"
#include "verbs/memory_region.hh"

namespace ibsim {
namespace rnic {

class RcRequester;
class RcResponder;

/** Device-level counters. */
struct RnicStats
{
    std::uint64_t packetsSent = 0;
    std::uint64_t packetsReceived = 0;
    std::uint64_t packetsToUnknownQp = 0;

    /** Ingress packets discarded by the ICRC model (chaos corruption). */
    std::uint64_t crcDrops = 0;

    /** Ingress packets dropped as malformed (graceful degradation). */
    std::uint64_t malformedDrops = 0;

    /**
     * Pre-addressed (UD) egress datagrams whose destination LID has no
     * port attached — checked against the fabric's dense PortRecord
     * table at send time instead of vanishing silently downstream.
     */
    std::uint64_t udUnroutedDrops = 0;

    /** @{ Port-event / recovery accounting (DESIGN.md §13). */

    /** PathDown/PortDown async events delivered to this port. */
    std::uint64_t portDownEvents = 0;

    /** PathUp/PortUp async events delivered to this port. */
    std::uint64_t portUpEvents = 0;

    /** SM-style reroutes applied to this port's QPs. */
    std::uint64_t reroutes = 0;

    /** QPs that entered the Error state (retry exhaustion / CM failure). */
    std::uint64_t qpsEnteredError = 0;

    /** QPs that completed the reset->init->RTR->RTS re-arm. */
    std::uint64_t qpsRecovered = 0;

    /** Ingress packets discarded for a stale reset epoch. */
    std::uint64_t staleEpochDrops = 0;

    /** CM re-arm requests sent (first sends + handshake retries). */
    std::uint64_t cmRearmsSent = 0;

    /** @} */
};

/**
 * A simulated RNIC attached to the fabric.
 */
class Rnic : public net::PortHandler
{
  public:
    Rnic(EventQueue& events, Rng& rng, net::Fabric& fabric,
         std::uint16_t lid, DeviceProfile profile,
         mem::AddressSpace& memory, odp::OdpDriver& driver,
         odp::PageStatusBoard& board);
    ~Rnic() override;

    Rnic(const Rnic&) = delete;
    Rnic& operator=(const Rnic&) = delete;

    std::uint16_t lid() const { return lid_; }
    const DeviceProfile& profile() const { return profile_; }
    EventQueue& events() { return events_; }
    Rng& rng() { return rng_; }
    mem::AddressSpace& memory() { return memory_; }
    odp::OdpDriver& driver() { return driver_; }
    odp::PageStatusBoard& board() { return board_; }

    /** @{ Memory key registry (rkey/lkey lookup). */
    void registerMr(verbs::MemoryRegion& mr);
    void deregisterMr(std::uint32_t key);
    verbs::MemoryRegion* findMr(std::uint32_t key);
    /** @} */

    /** Create an RC QP bound to @p cq. */
    QpContext& createQp(verbs::CompletionQueue& cq, verbs::QpConfig config);

    /** Point a QP at its remote endpoint and move it to RTS. */
    void connectQp(QpContext& qp, std::uint16_t dst_lid,
                   std::uint32_t dst_qpn);

    /**
     * Destroy a QP: cancel its timers and free its slot. Packets still
     * addressed to the QPN count as packetsToUnknownQp afterwards, like
     * a real HCA dropping traffic to a destroyed QP.
     */
    void destroyQp(std::uint32_t qpn);

    QpContext* findQp(std::uint32_t qpn);

    /** @{ Work request entry points (called via verbs::QueuePair). */
    void postSend(QpContext& qp, SendWqe wqe);
    void postRecv(QpContext& qp, RecvWqe wqe);
    /** @} */

    /**
     * @{ Passive observers of the post paths (chaos invariant monitor).
     * Send taps fire on entry to postSend, before the engine assigns a
     * PSN or pushes a completion, so observers see the pre-post QP state.
     */
    using SendPostTap =
        std::function<void(const QpContext&, const SendWqe&)>;
    using RecvPostTap =
        std::function<void(const QpContext&, const RecvWqe&)>;
    void addSendPostTap(SendPostTap tap);
    void addRecvPostTap(RecvPostTap tap);
    /** @} */

    /** Fabric ingress. */
    void receive(const net::Packet& pkt) override;

    /** Async port/path events from the fabric's port-event model. */
    void portEvent(const net::PortEvent& ev) override;

    /**
     * @{ ibv_async_event-style observer surface: taps fire for port/path
     * events and for QP fatal/recovered transitions.
     */
    using AsyncEventTap = std::function<void(const verbs::AsyncEvent&)>;
    void addAsyncEventTap(AsyncEventTap tap);
    /** @} */

    /**
     * A QP just entered the Error state (called by RcRequester::flushAll
     * after the flush completions are pushed). Counts the transition and
     * raises the QpFatal async event.
     */
    void noteQpError(QpContext& qp);

    /**
     * Begin the DeviceProfile-gated recovery path for an Error-state QP:
     * reset -> init (CM re-arm handshake with the peer under a new reset
     * epoch) -> RTR -> RTS. No-op unless the QP is in Error. Normally
     * triggered by a PathUp event with profile().qpRecoveryOnPortUp set;
     * public so tests and harnesses can re-arm explicitly.
     */
    void startRecovery(QpContext& qp);

    /**
     * Egress helper for the RC engines: stamps source/destination fields
     * from @p qp and hands the packet to the fabric.
     */
    void sendPacket(net::Packet pkt, QpContext& qp);

    /**
     * Egress for pre-addressed packets (UD datagrams). The destination
     * LID comes from the caller's address handle, not a connected QP, so
     * it is bounds-checked against the fabric's port table here: an
     * unrouteable datagram counts RnicStats::udUnroutedDrops (and is
     * still handed to the fabric, where capture taps see the drop).
     */
    void sendRaw(net::Packet pkt);

    /**
     * QPs with requester work in flight (drives timeout load scaling).
     * O(1): the RC requesters report idle/active transitions, so arming
     * a retransmit timer no longer scans every QP on the device.
     */
    std::size_t activeQpCount() const { return activeQps_; }

    /**
     * @{ Active-QP accounting, called by RcRequester when a QP's
     * outstanding queue transitions empty <-> non-empty.
     */
    void qpBecameActive() { ++activeQps_; }
    void
    qpBecameIdle()
    {
        assert(activeQps_ > 0);
        --activeQps_;
    }
    /** @} */

    /** All QPs on this RNIC (harness convenience). */
    std::vector<QpContext*> allQps();

    RnicStats& stats() { return stats_; }

  private:
    struct QpRecord
    {
        std::unique_ptr<QpContext> ctx;
        std::unique_ptr<RcRequester> requester;
        std::unique_ptr<RcResponder> responder;
    };

    /**
     * The record for @p qpn, or nullptr. QPNs are assigned sequentially
     * from firstQpn by this device, so the table is a dense vector
     * indexed by qpn - firstQpn — the per-packet steering lookup in
     * receive() is a bounds check plus an array indexing, like the
     * QP-state tables real RNIC steering caches resolve against.
     * Destroyed QPs leave a null slot (QPNs are not reused).
     */
    QpRecord* qpRecord(std::uint32_t qpn);

    /**
     * Sanity-check an ingress packet that passed the ICRC model. A real
     * HCA silently discards wire garbage; asserting on it would turn
     * injected corruption into a simulator crash.
     */
    bool validPacket(const net::Packet& pkt) const;

    /** @{ Error/recovery machinery (DESIGN.md §13). */
    void fireAsyncEvent(verbs::AsyncEventType type, std::uint16_t peer_lid,
                        std::uint32_t qpn, bool redundant);
    void sendCmRearm(QpContext& qp);
    void armCmTimer(QpContext& qp);
    void disarmCmTimer(QpContext& qp);
    void cmTimerFired(std::uint32_t qpn);
    void onCmRearm(QpRecord& record, const net::Packet& pkt);
    void onCmRearmAck(QpRecord& record, const net::Packet& pkt);
    void finishRecovery(QpContext& qp);
    /** @} */

    EventQueue& events_;
    Rng& rng_;
    net::Fabric& fabric_;
    std::uint16_t lid_;
    DeviceProfile profile_;
    mem::AddressSpace& memory_;
    odp::OdpDriver& driver_;
    odp::PageStatusBoard& board_;

    /** First QPN this device hands out (qps_[i] holds firstQpn + i). */
    static constexpr std::uint32_t firstQpn = 100;
    std::vector<QpRecord> qps_;

    /**
     * rkey/lkey -> region, flat open-addressing table. Keys are
     * node-assigned and sparse, so this is hashed rather than dense.
     */
    FlatKeyMap<verbs::MemoryRegion*> mrs_;

    /**
     * One-entry MRU cache in front of mrs_: DMA streams hit the same
     * region for long runs of packets (every response of a large READ,
     * every op of a flood), so most findMr() calls short-circuit to one
     * compare. Invalidated on deregistration.
     */
    std::uint32_t mruKey_ = 0;
    verbs::MemoryRegion* mruMr_ = nullptr;

    std::vector<SendPostTap> sendPostTaps_;
    std::vector<RecvPostTap> recvPostTaps_;
    std::vector<AsyncEventTap> asyncEventTaps_;
    std::size_t activeQps_ = 0;
    RnicStats stats_;
};

} // namespace rnic
} // namespace ibsim

#endif // IBSIM_RNIC_RNIC_HH
