/**
 * @file
 * The simulated RDMA NIC.
 *
 * One Rnic terminates one fabric port (one LID), owns the node's queue
 * pairs and the memory-key registry, and dispatches packets between the
 * fabric and the per-QP Reliable Connection engines (RcRequester /
 * RcResponder). Its behaviour is parameterized by a DeviceProfile, which is
 * where the paper's per-silicon quirks live.
 */

#ifndef IBSIM_RNIC_RNIC_HH
#define IBSIM_RNIC_RNIC_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "mem/address_space.hh"
#include "net/fabric.hh"
#include "odp/odp_driver.hh"
#include "odp/page_status_board.hh"
#include "rnic/device_profile.hh"
#include "rnic/qp_context.hh"
#include "simcore/event_queue.hh"
#include "simcore/rng.hh"
#include "verbs/completion_queue.hh"
#include "verbs/memory_region.hh"

namespace ibsim {
namespace rnic {

class RcRequester;
class RcResponder;

/** Device-level counters. */
struct RnicStats
{
    std::uint64_t packetsSent = 0;
    std::uint64_t packetsReceived = 0;
    std::uint64_t packetsToUnknownQp = 0;

    /** Ingress packets discarded by the ICRC model (chaos corruption). */
    std::uint64_t crcDrops = 0;

    /** Ingress packets dropped as malformed (graceful degradation). */
    std::uint64_t malformedDrops = 0;
};

/**
 * A simulated RNIC attached to the fabric.
 */
class Rnic : public net::PortHandler
{
  public:
    Rnic(EventQueue& events, Rng& rng, net::Fabric& fabric,
         std::uint16_t lid, DeviceProfile profile,
         mem::AddressSpace& memory, odp::OdpDriver& driver,
         odp::PageStatusBoard& board);
    ~Rnic() override;

    Rnic(const Rnic&) = delete;
    Rnic& operator=(const Rnic&) = delete;

    std::uint16_t lid() const { return lid_; }
    const DeviceProfile& profile() const { return profile_; }
    EventQueue& events() { return events_; }
    Rng& rng() { return rng_; }
    mem::AddressSpace& memory() { return memory_; }
    odp::OdpDriver& driver() { return driver_; }
    odp::PageStatusBoard& board() { return board_; }

    /** @{ Memory key registry (rkey/lkey lookup). */
    void registerMr(verbs::MemoryRegion& mr);
    void deregisterMr(std::uint32_t key);
    verbs::MemoryRegion* findMr(std::uint32_t key);
    /** @} */

    /** Create an RC QP bound to @p cq. */
    QpContext& createQp(verbs::CompletionQueue& cq, verbs::QpConfig config);

    /** Point a QP at its remote endpoint and move it to RTS. */
    void connectQp(QpContext& qp, std::uint16_t dst_lid,
                   std::uint32_t dst_qpn);

    QpContext* findQp(std::uint32_t qpn);

    /** @{ Work request entry points (called via verbs::QueuePair). */
    void postSend(QpContext& qp, SendWqe wqe);
    void postRecv(QpContext& qp, RecvWqe wqe);
    /** @} */

    /**
     * @{ Passive observers of the post paths (chaos invariant monitor).
     * Send taps fire on entry to postSend, before the engine assigns a
     * PSN or pushes a completion, so observers see the pre-post QP state.
     */
    using SendPostTap =
        std::function<void(const QpContext&, const SendWqe&)>;
    using RecvPostTap =
        std::function<void(const QpContext&, const RecvWqe&)>;
    void addSendPostTap(SendPostTap tap);
    void addRecvPostTap(RecvPostTap tap);
    /** @} */

    /** Fabric ingress. */
    void receive(const net::Packet& pkt) override;

    /**
     * Egress helper for the RC engines: stamps source/destination fields
     * from @p qp and hands the packet to the fabric.
     */
    void sendPacket(net::Packet pkt, QpContext& qp);

    /** Egress for pre-addressed packets (UD datagrams). */
    void sendRaw(net::Packet pkt);

    /** QPs with requester work in flight (drives timeout load scaling). */
    std::size_t activeQpCount() const;

    /** All QPs on this RNIC (harness convenience). */
    std::vector<QpContext*> allQps();

    RnicStats& stats() { return stats_; }

  private:
    struct QpRecord
    {
        std::unique_ptr<QpContext> ctx;
        std::unique_ptr<RcRequester> requester;
        std::unique_ptr<RcResponder> responder;
    };

    /**
     * Sanity-check an ingress packet that passed the ICRC model. A real
     * HCA silently discards wire garbage; asserting on it would turn
     * injected corruption into a simulator crash.
     */
    bool validPacket(const net::Packet& pkt) const;

    EventQueue& events_;
    Rng& rng_;
    net::Fabric& fabric_;
    std::uint16_t lid_;
    DeviceProfile profile_;
    mem::AddressSpace& memory_;
    odp::OdpDriver& driver_;
    odp::PageStatusBoard& board_;
    std::map<std::uint32_t, QpRecord> qps_;
    std::map<std::uint32_t, verbs::MemoryRegion*> mrs_;
    std::vector<SendPostTap> sendPostTaps_;
    std::vector<RecvPostTap> recvPostTaps_;
    std::uint32_t nextQpn_ = 100;
    RnicStats stats_;
};

} // namespace rnic
} // namespace ibsim

#endif // IBSIM_RNIC_RNIC_HH
