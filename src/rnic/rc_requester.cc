#include "rnic/rc_requester.hh"

#include <algorithm>
#include <cassert>

#include "rnic/rnic.hh"
#include "rnic/timeout.hh"
#include "simcore/log.hh"

namespace ibsim {
namespace rnic {

namespace {

/** The IBA encoding where an RNR retry budget of 7 means "infinite". */
constexpr std::uint8_t infiniteRnrRetry = 7;

log::Component traceRc("rc");

} // namespace

RcRequester::RcRequester(Rnic& rnic, QpContext& qp) : rnic_(rnic), qp_(qp)
{
}

void
RcRequester::post(SendWqe wqe)
{
    if (qp_.errorState) {
        verbs::WorkCompletion wc;
        wc.wrId = wqe.wrId;
        wc.status = verbs::WcStatus::WrFlushErr;
        wc.opcode = wqe.op;
        wc.qpn = qp_.qpn;
        wc.completedAt = rnic_.events().now();
        qp_.cq->push(wc);
        return;
    }

    assert(qp_.connected && "QP must be connected before posting");

    if (qp_.config.transport == verbs::Transport::Ud) {
        // Unreliable Datagram: unconnected; each WR carries its own
        // destination. SEND only; fire-and-forget; one MTU max.
        assert(wqe.op == verbs::WrOpcode::Send &&
               "UD supports SEND only");
        assert(wqe.length <= rnic_.profile().mtu &&
               "UD messages are single-datagram");
        net::Packet pkt;
        pkt.op = net::Opcode::Send;
        pkt.psn = qp_.nextPsn;
        qp_.nextPsn = psnNext(qp_.nextPsn);
        pkt.length = wqe.length;
        pkt.payload = rnic_.memory().read(wqe.laddr, wqe.length);
        pkt.srcLid = rnic_.lid();
        pkt.srcQpn = qp_.qpn;
        pkt.dstLid = static_cast<std::uint16_t>(wqe.raddr >> 32);
        pkt.dstQpn = static_cast<std::uint32_t>(wqe.raddr & 0xffffffff);
        ++qp_.stats.requestsSent;
        rnic_.sendRaw(std::move(pkt));

        verbs::WorkCompletion wc;
        wc.wrId = wqe.wrId;
        wc.status = verbs::WcStatus::Success;
        wc.opcode = wqe.op;
        wc.byteLen = wqe.length;
        wc.qpn = qp_.qpn;
        wc.completedAt = rnic_.events().now();
        qp_.cq->push(wc);
        ++qp_.stats.completions;
        return;
    }

    if (qp_.config.transport == verbs::Transport::Uc) {
        // Unreliable Connection: SEND/WRITE only, fire-and-forget. The
        // WR completes as soon as the packet leaves; losses are silent
        // (software must provide reliability -- Koop et al.).
        assert((wqe.op == verbs::WrOpcode::Send ||
                wqe.op == verbs::WrOpcode::Write) &&
               "UC supports SEND and WRITE only");
        wqe.psn = qp_.nextPsn;
        qp_.nextPsn = psnNext(qp_.nextPsn);
        net::Packet pkt;
        pkt.op = wqe.op == verbs::WrOpcode::Send
                     ? net::Opcode::Send
                     : net::Opcode::WriteRequest;
        pkt.psn = wqe.psn;
        pkt.raddr = wqe.raddr;
        pkt.rkey = wqe.rkey;
        pkt.length = wqe.length;
        pkt.payload = rnic_.memory().read(wqe.laddr, wqe.length);
        ++qp_.stats.requestsSent;
        rnic_.sendPacket(std::move(pkt), qp_);

        verbs::WorkCompletion wc;
        wc.wrId = wqe.wrId;
        wc.status = verbs::WcStatus::Success;
        wc.opcode = wqe.op;
        wc.byteLen = wqe.length;
        wc.qpn = qp_.qpn;
        wc.completedAt = rnic_.events().now();
        qp_.cq->push(wc);
        ++qp_.stats.completions;
        return;
    }

    wqe.psn = qp_.nextPsn;
    wqe.segments = std::max<std::uint32_t>(
        1, (wqe.length + rnic_.profile().mtu - 1) / rnic_.profile().mtu);
    qp_.nextPsn = (qp_.nextPsn + wqe.segments) & 0xffffff;
    wqe.postedAt = rnic_.events().now();

    // Damming quirk: requests posted while the send engine is inside the
    // head request's pending period are poisoned -- their exchange will be
    // silently lost until timeout or PSN-sequence-error recovery
    // (DESIGN.md #4). Each pending period poisons at most
    // dammingCapacity requests.
    if (qp_.paused() && qp_.dammingEpisode &&
        rnic_.profile().dammingQuirk && qp_.episodeDamsLeft > 0) {
        wqe.dammed = true;
        --qp_.episodeDamsLeft;
    }

    if (qp_.outstanding.empty())
        rnic_.qpBecameActive();
    qp_.outstanding.push_back(wqe);
    SendWqe& stored = qp_.outstanding.back();

    if (stored.op == verbs::WrOpcode::Send ||
        stored.op == verbs::WrOpcode::Write) {
        // Sender-side ODP: the RNIC must read the payload from local
        // memory, so unmapped source pages fault before transmission.
        verbs::MemoryRegion* mr = rnic_.findMr(stored.lkey);
        assert(mr && "posted WR references an unknown lkey");
        const std::uint64_t unmapped =
            mr->table().firstUnmapped(stored.laddr, stored.length);
        if (unmapped != 0) {
            raiseLocalFaults(stored);
            return;  // transmission deferred to fault resolution
        }
    }

    (void)stored;
    if (!qp_.paused())
        pump();
}

void
RcRequester::raiseLocalFaults(SendWqe& wqe)
{
    verbs::MemoryRegion* mr = rnic_.findMr(wqe.lkey);
    assert(mr && "blocked WQE references an unknown lkey");
    wqe.blockedOnLocalFault = true;
    const std::uint32_t psn = wqe.psn;
    const std::uint32_t counter = faultCounters_.acquire();
    const std::uint64_t first = mem::pageOf(wqe.laddr);
    const std::uint64_t last = mem::pageOf(wqe.laddr + wqe.length - 1);
    for (std::uint64_t p = first; p <= last; ++p) {
        const std::uint64_t va = p * mem::pageSize;
        if (mr->table().mappedPage(va))
            continue;
        ++faultCounters_.at(counter);
        rnic_.driver().raiseFault(
            mr->table(), va, [this, psn, counter] {
                if (--faultCounters_.at(counter) > 0)
                    return;
                faultCounters_.release(counter);
                onLocalFaultsResolved(psn);
            });
    }
    if (faultCounters_.at(counter) == 0) {
        // Every page mapped between the caller's check and the raise
        // (a huge-page fault on the same table can do this): nothing to
        // wait for.
        faultCounters_.release(counter);
        onLocalFaultsResolved(psn);
    }
}

void
RcRequester::onLocalFaultsResolved(std::uint32_t psn)
{
    // All source pages resolved: release the WQE and send it unless the
    // engine is paused (then the next retransmission burst carries it).
    for (auto& w : qp_.outstanding) {
        if (w.psn != psn)
            continue;
        if (rnic_.profile().faultTiming.pageStateMachine) {
            // Honor the notifier quiesce window: an invalidate_start
            // that flushed source pages while the batch fanned in means
            // the translations are gone — re-fault instead of reading
            // through stale entries.
            verbs::MemoryRegion* mr = rnic_.findMr(w.lkey);
            if (mr &&
                mr->table().firstUnmapped(w.laddr, w.length) != 0) {
                raiseLocalFaults(w);
                return;
            }
        }
        w.blockedOnLocalFault = false;
        if (qp_.state == QpState::Rts && !qp_.paused() &&
            w.transmissions == 0) {
            transmit(w);
        }
        break;
    }
}

void
RcRequester::pump()
{
    // Only an RTS queue transmits: Error flushes at post time, and a QP
    // mid-recovery (Reset/Init/RTR) queues posts until the CM handshake
    // lands and resume() restarts the engine.
    if (qp_.state != QpState::Rts || qp_.paused())
        return;
    while (!qp_.outstanding.empty()) {
        const std::uint32_t head_psn = qp_.outstanding.front().psn;
        const std::int32_t inflight = psnDiff(qp_.sendCursor, head_psn);
        if (inflight < 0) {
            // Cursor fell behind the head (everything up to the head
            // completed); snap it forward.
            qp_.sendCursor = head_psn;
            continue;
        }
        if (static_cast<std::uint32_t>(inflight) >=
            qp_.config.maxInflight) {
            return;  // pipelining window full
        }
        // Find the WQE whose PSN range starts at the cursor (WQEs may
        // span several PSNs under MTU segmentation).
        SendWqe* next = nullptr;
        for (auto& wqe : qp_.outstanding) {
            if (wqe.psn == qp_.sendCursor) {
                next = &wqe;
                break;
            }
            if (psnDiff(wqe.psn, qp_.sendCursor) > 0)
                break;
        }
        if (!next)
            return;  // nothing more to send
        const bool read_type = next->op == verbs::WrOpcode::Read ||
                               next->op == verbs::WrOpcode::FetchAdd ||
                               next->op == verbs::WrOpcode::CompSwap;
        if (read_type && qp_.config.maxRdAtomic > 0) {
            // In-order SQ: a READ/ATOMIC beyond the responder's
            // advertised depth stalls the queue until one completes.
            std::uint32_t outstanding_reads = 0;
            for (const auto& wqe : qp_.outstanding) {
                if (psnDiff(wqe.psn, qp_.sendCursor) >= 0)
                    break;
                if (wqe.op == verbs::WrOpcode::Read ||
                    wqe.op == verbs::WrOpcode::FetchAdd ||
                    wqe.op == verbs::WrOpcode::CompSwap) {
                    ++outstanding_reads;
                }
            }
            if (outstanding_reads >= qp_.config.maxRdAtomic)
                return;
        }
        qp_.sendCursor = (next->psn + next->segments) & 0xffffff;
        if (next->blockedOnLocalFault)
            continue;  // released by its fault-resolution callback
        transmit(*next);
    }
}

void
RcRequester::rewind(std::uint32_t psn, bool clear_dammed)
{
    if (qp_.outstanding.empty())
        return;
    const std::uint32_t head_psn = qp_.outstanding.front().psn;
    const std::uint32_t from =
        psnDiff(psn, head_psn) > 0 ? psn : head_psn;
    if (clear_dammed) {
        for (auto& wqe : qp_.outstanding) {
            if (psnDiff(wqe.psn, from) >= 0)
                wqe.dammed = false;
        }
    }
    if (psnDiff(qp_.sendCursor, from) > 0)
        qp_.sendCursor = from;
}

void
RcRequester::transmit(SendWqe& wqe)
{
    const bool retransmission = wqe.transmissions > 0;
    if (!retransmission)
        wqe.firstSentAt = rnic_.events().now();

    // A retransmitted READ restarts its response stream from scratch.
    if (retransmission)
        wqe.segmentsReceived = 0;

    for (std::uint32_t seg = 0; seg < wqe.segments; ++seg) {
        net::Packet pkt;
        switch (wqe.op) {
          case verbs::WrOpcode::Read:
            pkt.op = net::Opcode::ReadRequest;
            break;
          case verbs::WrOpcode::Write:
            pkt.op = net::Opcode::WriteRequest;
            break;
          case verbs::WrOpcode::Send:
            pkt.op = net::Opcode::Send;
            break;
          case verbs::WrOpcode::FetchAdd:
          case verbs::WrOpcode::CompSwap:
            pkt.op = net::Opcode::AtomicRequest;
            pkt.atomicIsCompSwap = wqe.op == verbs::WrOpcode::CompSwap;
            pkt.atomicOperand = wqe.atomicOperand;
            pkt.atomicCompare = wqe.atomicCompare;
            break;
          case verbs::WrOpcode::Recv:
            assert(false && "RECV is not a send-side opcode");
            return;
        }
        pkt.psn = (wqe.psn + seg) & 0xffffff;
        pkt.raddr = wqe.raddr;
        pkt.rkey = wqe.rkey;
        pkt.length = wqe.length;
        pkt.segIndex = seg;
        pkt.segCount = wqe.segments;
        pkt.dammed = wqe.dammed;
        pkt.retransmission = retransmission;

        if (wqe.op == verbs::WrOpcode::Send ||
            wqe.op == verbs::WrOpcode::Write) {
            // This segment's chunk of the payload.
            const std::uint32_t mtu = rnic_.profile().mtu;
            const std::uint32_t off = seg * mtu;
            const std::uint32_t chunk =
                std::min(mtu, wqe.length - off);
            pkt.payload = rnic_.memory().read(wqe.laddr + off, chunk);
        } else if (wqe.op == verbs::WrOpcode::Read) {
            // One request reserves the whole PSN range; only the first
            // packet exists on the wire.
            pkt.psn = wqe.psn;
            pkt.segIndex = 0;
            seg = wqe.segments;  // single emission
        }

        ++qp_.stats.requestsSent;
        if (retransmission)
            ++qp_.stats.retransmissions;
        rnic_.sendPacket(std::move(pkt), qp_);
    }
    ++wqe.transmissions;

    if (!qp_.timerArmed && !qp_.inRnrWait)
        armTimer();
}

void
RcRequester::armTimer()
{
    const Time detection = detectionTime(qp_.config.cack, rnic_.profile());
    if (detection == Time::max())
        return;
    // Timeout detection lengthens under concurrent QP load (Sec. VI-C).
    const double load =
        1.0 + rnic_.profile().timeoutLoadFactor *
                  static_cast<double>(
                      rnic_.activeQpCount() > 0 ? rnic_.activeQpCount() - 1
                                                : 0);
    disarmTimer();
    qp_.retransmitTimer = rnic_.events().scheduleAfter(
        detection * load, [this] { timeoutFired(); });
    qp_.timerArmed = true;
}

void
RcRequester::disarmTimer()
{
    if (qp_.timerArmed) {
        rnic_.events().cancel(qp_.retransmitTimer);
        qp_.timerArmed = false;
    }
}

void
RcRequester::timeoutFired()
{
    qp_.timerArmed = false;
    if (qp_.errorState || qp_.outstanding.empty())
        return;
    if (qp_.inRnrWait)
        return;  // RNR wait owns the QP; its own timer resumes things

    ++qp_.retryCount;
    ++qp_.stats.timeouts;
    IBSIM_TRACE(traceRc, rnic_.events().now(),
                "qpn=" + std::to_string(qp_.qpn) +
                    " transport timeout #" +
                    std::to_string(qp_.retryCount));

    if (qp_.retryCount > qp_.config.cretry) {
        flushAll(verbs::WcStatus::RetryExcErr);
        return;
    }

    // Timeout-driven recovery clears the dammed mark: the paper's Fig. 5
    // shows the second READ finally completing after the ~500 ms timeout.
    qp_.dammingEpisode = false;
    if (qp_.clientRexmitActive) {
        rnic_.events().cancel(qp_.clientRexmitTimer);
        qp_.clientRexmitActive = false;
    }
    rewind(qp_.outstanding.front().psn, /*clear_dammed=*/true);
    pump();
    armTimer();
}

void
RcRequester::enterRnrWait(Time responder_min_delay)
{
    if (qp_.inRnrWait)
        return;

    ++qp_.rnrCount;
    if (qp_.config.rnrRetry != infiniteRnrRetry &&
        qp_.rnrCount > qp_.config.rnrRetry) {
        flushAll(verbs::WcStatus::RnrRetryExcErr);
        return;
    }

    // The requester's actual wait is a device-specific multiple of the
    // advertised minimum (measured ~3.5x, Fig. 1).
    const Time wait = rnic_.rng().jitter(
        responder_min_delay * rnic_.profile().rnrWaitMultiplier, 0.08);
    qp_.inRnrWait = true;
    disarmTimer();

    // Each stuck request dams at most once: its first pending period.
    SendWqe& head = qp_.outstanding.front();
    if (!head.windowOpened) {
        head.windowOpened = true;
        qp_.dammingEpisode = true;
        qp_.episodeDamsLeft = rnic_.profile().dammingCapacity;
    }

    qp_.rnrTimer =
        rnic_.events().scheduleAfter(wait, [this] { rnrWaitFired(); });

    IBSIM_TRACE(traceRc, rnic_.events().now(),
                "qpn=" + std::to_string(qp_.qpn) + " RNR wait " +
                    wait.str());
}

void
RcRequester::rnrWaitFired()
{
    qp_.inRnrWait = false;
    qp_.dammingEpisode = false;
    if (qp_.errorState || qp_.outstanding.empty())
        return;
    // RNR-driven retransmission does NOT clear the dammed mark: Fig. 5
    // shows the retransmitted second READ still losing its exchange.
    rewind(qp_.outstanding.front().psn, /*clear_dammed=*/false);
    pump();
    armTimer();
}

void
RcRequester::scheduleClientRexmit()
{
    if (qp_.clientRexmitActive)
        return;
    qp_.clientRexmitActive = true;
    // Back off under flood load (Sec. VII-B: retransmissions stretch to
    // tens of milliseconds when many QPs are stuck).
    const double load = std::min(
        80.0, 1.0 + rnic_.profile().rexmitLoadFactor *
                        static_cast<double>(rnic_.board().staleCount()));
    const Time interval = rnic_.rng().jitter(
        rnic_.profile().clientRexmitInterval * load, 0.05);
    qp_.clientRexmitTimer = rnic_.events().scheduleAfter(
        interval, [this] { clientRexmitFired(); });
}

void
RcRequester::clientRexmitFired()
{
    qp_.clientRexmitActive = false;
    qp_.dammingEpisode = false;
    if (qp_.errorState || qp_.outstanding.empty() || qp_.inRnrWait)
        return;
    // Blind retransmission: the client resends regardless of whether the
    // local fault resolved (Fig. 1, client-side ODP). The responder's
    // replies re-trigger this loop through the discard path until a
    // response is finally usable.
    rewind(qp_.outstanding.front().psn, /*clear_dammed=*/false);
    pump();
}

bool
RcRequester::readDestinationReady(const SendWqe& wqe, bool register_faults)
{
    verbs::MemoryRegion* mr = rnic_.findMr(wqe.lkey);
    assert(mr && "READ WQE references an unknown lkey");
    if (!mr->odp())
        return true;

    bool ready = true;
    bool fresh_fault = false;
    const std::uint64_t first = mem::pageOf(wqe.laddr);
    const std::uint64_t last = mem::pageOf(wqe.laddr + wqe.length - 1);
    for (std::uint64_t p = first; p <= last; ++p) {
        const std::uint64_t va = p * mem::pageSize;
        if (!mr->table().mappedPage(va)) {
            ready = false;
            if (register_faults) {
                if (!rnic_.driver().faultInFlight(mr->table(), va))
                    fresh_fault = true;
                rnic_.driver().raiseFault(mr->table(), va);
                rnic_.board().registerWaiter(&mr->table(), p, qp_.qpn);
            }
        } else if (!rnic_.board().fresh(&mr->table(), p, qp_.qpn)) {
            // Page mapped, but this QP's status view is stale (the flood
            // quirk): the response is still unusable.
            ready = false;
        }
    }

    if (fresh_fault && !qp_.outstanding.empty()) {
        SendWqe& head = qp_.outstanding.front();
        // The first fault discard of a head request opens its damming
        // episode (client-side damming, Fig. 6b): at most one per WQE.
        if (head.psn == wqe.psn && !head.windowOpened) {
            head.windowOpened = true;
            qp_.dammingEpisode = true;
            qp_.episodeDamsLeft = rnic_.profile().dammingCapacity;
        }
    }
    return ready;
}

void
RcRequester::onReadResponse(const net::Packet& pkt)
{
    if (qp_.errorState || qp_.outstanding.empty())
        return;

    if (qp_.inRnrWait) {
        // Responses arriving during an RNR wait are discarded (Sec. IV-A).
        ++qp_.stats.responsesDiscardedRnrWait;
        return;
    }

    SendWqe& head = qp_.outstanding.front();
    const bool data_bearing = head.op == verbs::WrOpcode::Read ||
                              head.op == verbs::WrOpcode::FetchAdd ||
                              head.op == verbs::WrOpcode::CompSwap;
    const std::uint32_t expected =
        (head.psn + head.segmentsReceived) & 0xffffff;
    if (!data_bearing || pkt.psn != expected)
        return;  // stale or out-of-order response: ignored (go-back-N)

    if (!readDestinationReady(head, /*register_faults=*/true)) {
        verbs::MemoryRegion* mr = rnic_.findMr(head.lkey);
        const bool unmapped =
            mr->table().firstUnmapped(head.laddr, head.length) != 0;
        if (unmapped)
            ++qp_.stats.responsesDiscardedFault;
        else
            ++qp_.stats.responsesDiscardedStale;
        scheduleClientRexmit();
        return;
    }

    // Destination usable: land this segment; complete on the last one.
    const std::uint64_t off =
        static_cast<std::uint64_t>(head.segmentsReceived) *
        rnic_.profile().mtu;
    rnic_.memory().write(head.laddr + off, pkt.payload);
    if (++head.segmentsReceived < head.segments) {
        // Partial progress: each valid response packet restarts the
        // retry budget and the detection timer (IBA semantics).
        qp_.retryCount = 0;
        armTimer();
        return;
    }
    completeHead();
}

void
RcRequester::onAck(const net::Packet& pkt)
{
    if (qp_.errorState)
        return;
    if (qp_.inRnrWait) {
        ++qp_.stats.responsesDiscardedRnrWait;
        return;
    }
    // Complete contiguous head WRITE/SEND WQEs covered by this ACK. A READ
    // at the head blocks implicit completion: it needs its data.
    while (!qp_.outstanding.empty()) {
        SendWqe& head = qp_.outstanding.front();
        if (head.op == verbs::WrOpcode::Read)
            break;
        if (psnDiff(pkt.psn, head.lastPsn()) < 0)
            break;
        completeHead();
    }
}

void
RcRequester::onNak(const net::Packet& pkt)
{
    if (qp_.errorState || qp_.outstanding.empty())
        return;

    switch (pkt.nak) {
      case net::NakCode::PsnSequenceError:
        ++qp_.stats.seqNaksReceived;
        // Immediate go-back-N from the responder's expected PSN; this
        // clears the dammed mark and ends any pending period early
        // (Fig. 8: recovery without timeout).
        if (qp_.inRnrWait) {
            rnic_.events().cancel(qp_.rnrTimer);
            qp_.inRnrWait = false;
        }
        qp_.dammingEpisode = false;
        rewind(pkt.psn, /*clear_dammed=*/true);
        pump();
        armTimer();
        break;
      case net::NakCode::RemoteAccessError:
        flushAll(verbs::WcStatus::RemAccessErr);
        break;
      case net::NakCode::None:
        break;
    }
}

void
RcRequester::onRnrNak(const net::Packet& pkt)
{
    if (qp_.errorState || qp_.outstanding.empty())
        return;
    ++qp_.stats.rnrNaksReceived;
    enterRnrWait(pkt.rnrDelay);
}

void
RcRequester::completeHead()
{
    SendWqe head = qp_.outstanding.front();
    qp_.outstanding.pop_front();
    if (qp_.outstanding.empty())
        rnic_.qpBecameIdle();

    verbs::WorkCompletion wc;
    wc.wrId = head.wrId;
    wc.status = verbs::WcStatus::Success;
    wc.opcode = head.op;
    wc.byteLen = head.length;
    wc.qpn = qp_.qpn;
    wc.completedAt = rnic_.events().now();
    qp_.cq->push(wc);
    ++qp_.stats.completions;

    progressMade();
}

void
RcRequester::progressMade()
{
    qp_.retryCount = 0;
    qp_.rnrCount = 0;
    if (qp_.outstanding.empty()) {
        disarmTimer();
        if (qp_.clientRexmitActive) {
            rnic_.events().cancel(qp_.clientRexmitTimer);
            qp_.clientRexmitActive = false;
        }
        qp_.dammingEpisode = false;
    } else {
        armTimer();
        pump();  // slide the pipelining window
    }
}

void
RcRequester::flushAll(verbs::WcStatus status)
{
    disarmTimer();
    if (qp_.inRnrWait) {
        rnic_.events().cancel(qp_.rnrTimer);
        qp_.inRnrWait = false;
    }
    if (qp_.clientRexmitActive) {
        rnic_.events().cancel(qp_.clientRexmitTimer);
        qp_.clientRexmitActive = false;
    }
    qp_.dammingEpisode = false;

    if (!qp_.outstanding.empty())
        rnic_.qpBecameIdle();
    bool first = true;
    while (!qp_.outstanding.empty()) {
        SendWqe head = qp_.outstanding.front();
        qp_.outstanding.pop_front();

        // Drop any flood-board waiters this WQE registered.
        if (head.op == verbs::WrOpcode::Read) {
            if (verbs::MemoryRegion* mr = rnic_.findMr(head.lkey)) {
                const std::uint64_t firstPage = mem::pageOf(head.laddr);
                const std::uint64_t lastPage =
                    mem::pageOf(head.laddr + head.length - 1);
                for (std::uint64_t p = firstPage; p <= lastPage; ++p)
                    rnic_.board().unregisterWaiter(&mr->table(), p,
                                                   qp_.qpn);
            }
        }

        verbs::WorkCompletion wc;
        wc.wrId = head.wrId;
        // The failing WR carries the real error; the rest flush.
        wc.status = first ? status : verbs::WcStatus::WrFlushErr;
        wc.opcode = head.op;
        wc.byteLen = head.length;
        wc.qpn = qp_.qpn;
        wc.completedAt = rnic_.events().now();
        qp_.cq->push(wc);
        first = false;
    }

    qp_.errorState = true;
    qp_.state = QpState::Error;
    rnic_.noteQpError(qp_);
    IBSIM_TRACE(traceRc, rnic_.events().now(),
                "qpn=" + std::to_string(qp_.qpn) + " moved to error: " +
                    verbs::wcStatusName(status));
}

void
RcRequester::resume()
{
    pump();
}

} // namespace rnic
} // namespace ibsim
