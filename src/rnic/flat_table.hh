/**
 * @file
 * Open-addressing flat hash table keyed by 32-bit handles.
 *
 * The RNIC's steering structures (rkey -> MemoryRegion) are consulted on
 * every DMA of every packet, which made their std::map red-black-tree
 * walks a measurable slice of the per-packet wire path. Real RNICs keep
 * such state in flat steering caches; this is the software equivalent: a
 * power-of-two slot array with linear probing, one array access plus a
 * short scan per lookup, no per-node allocations and no pointer chasing.
 *
 * Keys are arbitrary non-zero 32-bit values (0 is reserved as the empty
 * sentinel; RNIC keys and QPNs are never 0). Erase uses tombstones so
 * probe chains stay intact; tombstones are reclaimed on rehash.
 */

#ifndef IBSIM_RNIC_FLAT_TABLE_HH
#define IBSIM_RNIC_FLAT_TABLE_HH

#include <cassert>
#include <cstdint>
#include <vector>

namespace ibsim {
namespace rnic {

template <typename Value>
class FlatKeyMap
{
  public:
    FlatKeyMap() { rehash(initialCapacity); }

    /** Insert @p key -> @p value; the key must not already be present. */
    void
    insert(std::uint32_t key, Value value)
    {
        assert(key != emptyKey && "key 0 is reserved");
        assert(key != tombstoneKey && "key 0xffffffff is reserved");
        assert(find(key) == nullptr && "duplicate key");
        if ((occupied_ + 1) * 10 > slots_.size() * 7) {
            // A mostly-tombstone table (register/deregister churn) is
            // rehashed in place, which reclaims the tombstones; only a
            // genuinely full table doubles. Keeps churn from growing
            // the array without bound.
            std::size_t target = slots_.size();
            while ((size_ + 1) * 2 > target)
                target *= 2;
            rehash(target);
        }
        Slot& slot = probeForInsert(key);
        if (slot.key != tombstoneKey)
            ++occupied_;  // tombstone reuse keeps the load count flat
        slot.key = key;
        slot.value = value;
        ++size_;
    }

    /** Remove @p key if present; returns whether it was. */
    bool
    erase(std::uint32_t key)
    {
        Slot* slot = probeFor(key);
        if (slot == nullptr)
            return false;
        slot->key = tombstoneKey;
        slot->value = Value{};
        --size_;
        return true;
    }

    /** Pointer to the mapped value, or nullptr. */
    Value*
    find(std::uint32_t key)
    {
        Slot* slot = probeFor(key);
        return slot == nullptr ? nullptr : &slot->value;
    }

    const Value*
    find(std::uint32_t key) const
    {
        return const_cast<FlatKeyMap*>(this)->find(key);
    }

    std::size_t size() const { return size_; }

    /** Slot-array capacity (tests: growth behaviour). */
    std::size_t capacity() const { return slots_.size(); }

  private:
    static constexpr std::uint32_t emptyKey = 0;
    static constexpr std::uint32_t tombstoneKey = 0xffffffffu;
    static constexpr std::size_t initialCapacity = 16;

    struct Slot
    {
        std::uint32_t key = emptyKey;
        Value value{};
    };

    static std::size_t
    indexFor(std::uint32_t key, std::size_t mask)
    {
        // Fibonacci multiplicative hash: sequential QPNs / rkeys spread
        // across the table instead of clustering one probe chain.
        return (key * 2654435761u) & mask;
    }

    Slot*
    probeFor(std::uint32_t key)
    {
        const std::size_t mask = slots_.size() - 1;
        for (std::size_t i = indexFor(key, mask);; i = (i + 1) & mask) {
            Slot& slot = slots_[i];
            if (slot.key == key)
                return &slot;
            if (slot.key == emptyKey)
                return nullptr;
        }
    }

    /** First reusable slot on the probe chain (tombstone or empty). */
    Slot&
    probeForInsert(std::uint32_t key)
    {
        const std::size_t mask = slots_.size() - 1;
        for (std::size_t i = indexFor(key, mask);; i = (i + 1) & mask) {
            Slot& slot = slots_[i];
            if (slot.key == emptyKey || slot.key == tombstoneKey)
                return slot;
        }
    }

    void
    rehash(std::size_t capacity)
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(capacity, Slot{});
        occupied_ = size_;
        for (Slot& slot : old) {
            if (slot.key == emptyKey || slot.key == tombstoneKey)
                continue;
            Slot& fresh = probeForInsert(slot.key);
            fresh.key = slot.key;
            fresh.value = slot.value;
        }
    }

    std::vector<Slot> slots_;
    std::size_t size_ = 0;      ///< live entries
    std::size_t occupied_ = 0;  ///< live entries + tombstones
};

} // namespace rnic
} // namespace ibsim

#endif // IBSIM_RNIC_FLAT_TABLE_HH
