#include "rnic/rc_responder.hh"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "rnic/rnic.hh"
#include "simcore/log.hh"
#include "verbs/memory_region.hh"

namespace ibsim {
namespace rnic {

namespace {

log::Component traceRc("rc");

} // namespace

RcResponder::RcResponder(Rnic& rnic, QpContext& qp) : rnic_(rnic), qp_(qp)
{
}

void
RcResponder::resetForRecovery()
{
    parked_.reset();
    parkedPagesLeft_ = 0;
    seqNakSent_ = false;
    sendSegsLanded_ = 0;
    atomicCache_.clear();
    atomicCacheOrder_.clear();
}

void
RcResponder::onRequest(const net::Packet& pkt)
{
    if (qp_.errorState)
        return;

    if (qp_.config.transport == verbs::Transport::Uc) {
        onUcRequest(pkt);
        return;
    }
    if (qp_.config.transport == verbs::Transport::Ud) {
        onUdRequest(pkt);
        return;
    }

    if (pkt.dammed && rnic_.profile().dammingQuirk) {
        // The damming quirk swallows this request whole -- no reply of
        // any kind, regardless of where its PSN sits: the ConnectX-4
        // fault-processing path black-holes requests that entered during
        // a pending window until the requester recovers via timeout or a
        // PSN-sequence-error NAK provoked by a *clean* request
        // (DESIGN.md #4).
        ++qp_.stats.dammedDrops;
        IBSIM_TRACE(traceRc, rnic_.events().now(),
                    "qpn=" + std::to_string(qp_.qpn) +
                        " dammed request dropped psn=" +
                        std::to_string(pkt.psn));
        return;
    }

    const std::int32_t diff = psnDiff(pkt.psn, qp_.expectedPsn);

    if (diff > 0) {
        // Out-of-sequence request: something before it was lost. One NAK
        // per occurrence; duplicates of the gap are dropped silently.
        if (!seqNakSent_) {
            seqNakSent_ = true;
            sendSeqNak();
        }
        return;
    }

    if (diff < 0) {
        // Duplicate of an already-executed request: re-serve reads
        // (idempotent), re-ACK writes/sends without re-executing, and
        // answer atomics from the replay cache (never re-execute).
        switch (pkt.op) {
          case net::Opcode::ReadRequest:
            execute(pkt, /*duplicate=*/true);
            break;
          case net::Opcode::WriteRequest:
          case net::Opcode::Send:
            sendAck(pkt.psn, /*replayed=*/true);
            break;
          case net::Opcode::AtomicRequest: {
            if (rnic_.profile().atomicReexecuteBug) {
                // Deliberately broken mode (oracle regression tests): the
                // duplicate runs against memory again, so the requester
                // sees a different original value the second time.
                sendAtomicResponse(pkt.psn, applyAtomic(pkt),
                                   /*replayed=*/true);
                break;
            }
            auto cached = atomicCache_.find(pkt.psn);
            if (cached != atomicCache_.end()) {
                sendAtomicResponse(pkt.psn, cached->second,
                                   /*replayed=*/true);
            }
            break;
          }
          default:
            break;
        }
        return;
    }

    // In-sequence request.
    if (execute(pkt, /*duplicate=*/false)) {
        if (pkt.op == net::Opcode::ReadRequest) {
            // A READ's reserved range covers all its response packets.
            const std::uint32_t mtu = rnic_.profile().mtu;
            const std::uint32_t segments = std::max<std::uint32_t>(
                1, (pkt.length + mtu - 1) / mtu);
            qp_.expectedPsn = (qp_.expectedPsn + segments) & 0xffffff;
        } else {
            qp_.expectedPsn = psnNext(qp_.expectedPsn);
        }
        seqNakSent_ = false;
    }
}

void
RcResponder::onUdRequest(const net::Packet& pkt)
{
    // Datagram service: SENDs only, no ordering, no acks. A datagram
    // with no posted RECV (or an ODP-cold landing buffer) is dropped —
    // and every such drop is counted, so delivered datagrams always
    // reconcile as RECV completions plus udDrops (invariant U3).
    if (pkt.op != net::Opcode::Send)
        return;
    ++qp_.stats.udDeliveredSends;
    const bool countDrops = !rnic_.profile().udDropAccountingBug;
    if (qp_.recvQueue.empty()) {
        if (countDrops)
            ++qp_.stats.udDrops;
        return;
    }
    RecvWqe& rq = qp_.recvQueue.front();
    if (pkt.length > rq.length) {
        if (countDrops)
            ++qp_.stats.udDrops;
        return;
    }
    verbs::MemoryRegion* mr = rnic_.findMr(rq.lkey);
    if (mr && mr->odp() && !mr->table().mappedRange(rq.addr, pkt.length)) {
        rnic_.driver().raiseFault(
            mr->table(), mr->table().firstUnmapped(rq.addr, pkt.length));
        if (countDrops)
            ++qp_.stats.udDrops;
        return;
    }
    rnic_.memory().write(rq.addr, pkt.payload);

    verbs::WorkCompletion wc;
    wc.wrId = rq.wrId;
    wc.status = verbs::WcStatus::Success;
    wc.opcode = verbs::WrOpcode::Recv;
    wc.byteLen = pkt.length;
    wc.qpn = qp_.qpn;
    wc.srcLid = pkt.srcLid;
    wc.srcQpn = pkt.srcQpn;
    wc.completedAt = rnic_.events().now();
    qp_.cq->push(wc);
    qp_.recvQueue.pop_front();
}

void
RcResponder::onUcRequest(const net::Packet& pkt)
{
    // UC: accept anything at or past the expected PSN (losses just leave
    // gaps -- no NAKs, no retransmission); drop genuine reordering.
    if (psnDiff(pkt.psn, qp_.expectedPsn) < 0)
        return;
    qp_.expectedPsn = psnNext(pkt.psn);

    switch (pkt.op) {
      case net::Opcode::WriteRequest: {
        verbs::MemoryRegion* mr = rnic_.findMr(pkt.rkey);
        if (!mr || !mr->contains(pkt.raddr, pkt.length) ||
            !mr->access().remoteWrite)
            return;  // silently dropped: UC has no NAK machinery
        if (mr->odp() &&
            !mr->table().mappedRange(pkt.raddr, pkt.length)) {
            // ODP on UC: the fault is raised but the packet is lost.
            rnic_.driver().raiseFault(
                mr->table(),
                mr->table().firstUnmapped(pkt.raddr, pkt.length));
            return;
        }
        rnic_.memory().write(pkt.raddr, pkt.payload);
        return;
      }
      case net::Opcode::Send: {
        if (qp_.recvQueue.empty())
            return;  // no RECV posted: silently dropped
        RecvWqe& rq = qp_.recvQueue.front();
        if (pkt.length > rq.length)
            return;
        verbs::MemoryRegion* mr = rnic_.findMr(rq.lkey);
        if (mr && mr->odp() &&
            !mr->table().mappedRange(rq.addr, pkt.length)) {
            rnic_.driver().raiseFault(
                mr->table(),
                mr->table().firstUnmapped(rq.addr, pkt.length));
            return;
        }
        rnic_.memory().write(rq.addr, pkt.payload);
        verbs::WorkCompletion wc;
        wc.wrId = rq.wrId;
        wc.status = verbs::WcStatus::Success;
        wc.opcode = verbs::WrOpcode::Recv;
        wc.byteLen = pkt.length;
        wc.qpn = qp_.qpn;
        wc.completedAt = rnic_.events().now();
        qp_.cq->push(wc);
        qp_.recvQueue.pop_front();
        return;
      }
      default:
        return;  // READ/atomics are not part of UC
    }
}

bool
RcResponder::pagesReady(const net::Packet& pkt, bool arrange_proactive)
{
    verbs::MemoryRegion* mr = rnic_.findMr(pkt.rkey);
    assert(mr);
    if (!mr->odp())
        return true;

    const std::uint64_t unmapped =
        mr->table().firstUnmapped(pkt.raddr, pkt.length);
    if (unmapped == 0)
        return true;

    // Server-side ODP: suspend the sender with an RNR NAK and raise the
    // fault(s). The request itself is not stored in the RNIC -- except
    // that resolving the fault proactively serves the parked in-sequence
    // request once (whose reply the waiting requester then discards).
    sendRnrNak(pkt.psn);

    const std::uint64_t first = mem::pageOf(pkt.raddr);
    const std::uint64_t last = mem::pageOf(pkt.raddr + pkt.length - 1);
    const bool arrange = arrange_proactive && !parked_.has_value();
    if (arrange) {
        parked_ = pkt;
        parkedPagesLeft_ = 0;
    }
    for (std::uint64_t p = first; p <= last; ++p) {
        const std::uint64_t va = p * mem::pageSize;
        if (mr->table().mappedPage(va))
            continue;
        if (arrange) {
            ++parkedPagesLeft_;
            rnic_.driver().raiseFault(mr->table(), va,
                                      [this] { proactiveResolve(); });
        } else {
            rnic_.driver().raiseFault(mr->table(), va);
        }
    }
    return false;
}

void
RcResponder::proactiveResolve()
{
    if (--parkedPagesLeft_ > 0)
        return;
    if (!parked_.has_value() || qp_.errorState)
        return;
    net::Packet pkt = *parked_;
    parked_.reset();
    // Only serve it if nothing else advanced the stream meanwhile.
    if (psnDiff(pkt.psn, qp_.expectedPsn) != 0)
        return;
    if (execute(pkt, /*duplicate=*/false)) {
        if (pkt.op == net::Opcode::ReadRequest) {
            const std::uint32_t mtu = rnic_.profile().mtu;
            const std::uint32_t segments = std::max<std::uint32_t>(
                1, (pkt.length + mtu - 1) / mtu);
            qp_.expectedPsn = (qp_.expectedPsn + segments) & 0xffffff;
        } else {
            qp_.expectedPsn = psnNext(qp_.expectedPsn);
        }
        seqNakSent_ = false;
    }
}

bool
RcResponder::execute(const net::Packet& pkt, bool duplicate)
{
    switch (pkt.op) {
      case net::Opcode::ReadRequest: {
        verbs::MemoryRegion* mr = rnic_.findMr(pkt.rkey);
        if (!mr || !mr->contains(pkt.raddr, pkt.length) ||
            !mr->access().remoteRead) {
            sendAccessNak(pkt.psn);
            return false;
        }
        if (!pagesReady(pkt, /*arrange_proactive=*/!duplicate))
            return false;
        sendReadResponse(pkt, /*replayed=*/duplicate);
        return true;
      }

      case net::Opcode::WriteRequest: {
        verbs::MemoryRegion* mr = rnic_.findMr(pkt.rkey);
        if (!mr || !mr->contains(pkt.raddr, pkt.length) ||
            !mr->access().remoteWrite) {
            sendAccessNak(pkt.psn);
            return false;
        }
        if (!pagesReady(pkt, /*arrange_proactive=*/!duplicate))
            return false;
        assert(!duplicate && "duplicate writes are re-ACKed, not re-run");
        const std::uint64_t off =
            static_cast<std::uint64_t>(pkt.segIndex) *
            rnic_.profile().mtu;
        rnic_.memory().write(pkt.raddr + off, pkt.payload);
        // One coalesced ACK when the message completes.
        if (pkt.segIndex + 1 == pkt.segCount)
            sendAck(pkt.psn);
        return true;
      }

      case net::Opcode::AtomicRequest: {
        verbs::MemoryRegion* mr = rnic_.findMr(pkt.rkey);
        if (!mr || !mr->contains(pkt.raddr, 8) ||
            !mr->access().remoteWrite) {
            sendAccessNak(pkt.psn);
            return false;
        }
        if (!pagesReady(pkt, /*arrange_proactive=*/!duplicate))
            return false;
        assert(!duplicate && "duplicate atomics replay from the cache");

        const std::uint64_t old_value = applyAtomic(pkt);
        cacheAtomicResult(pkt.psn, old_value);
        sendAtomicResponse(pkt.psn, old_value);
        return true;
      }

      case net::Opcode::Send: {
        if (qp_.recvQueue.empty()) {
            // Receiver not ready in the classic sense: no RECV WQE.
            sendRnrNak(pkt.psn);
            return false;
        }
        RecvWqe& rq = qp_.recvQueue.front();
        if (pkt.length > rq.length) {
            sendAccessNak(pkt.psn);
            return false;
        }
        (void)0;
        verbs::MemoryRegion* mr = rnic_.findMr(rq.lkey);
        assert(mr);
        if (mr->odp()) {
            net::Packet probe = pkt;
            probe.raddr = rq.addr;
            probe.rkey = rq.lkey;
            if (!pagesReady(probe, /*arrange_proactive=*/!duplicate))
                return false;
        }
        assert(!duplicate && "duplicate sends are re-ACKed, not re-run");
        const std::uint64_t off =
            static_cast<std::uint64_t>(pkt.segIndex) *
            rnic_.profile().mtu;
        rnic_.memory().write(rq.addr + off, pkt.payload);
        if (pkt.segIndex + 1 < pkt.segCount) {
            ++sendSegsLanded_;
            return true;  // more segments of this message to come
        }
        sendSegsLanded_ = 0;

        verbs::WorkCompletion wc;
        wc.wrId = rq.wrId;
        wc.status = verbs::WcStatus::Success;
        wc.opcode = verbs::WrOpcode::Recv;
        wc.byteLen = pkt.length;
        wc.qpn = qp_.qpn;
        wc.completedAt = rnic_.events().now();
        qp_.cq->push(wc);
        qp_.recvQueue.pop_front();

        sendAck(pkt.psn);
        return true;
      }

      default:
        return false;
    }
}

std::uint64_t
RcResponder::applyAtomic(const net::Packet& pkt)
{
    // Execute the 64-bit atomic against host memory.
    const auto old_bytes = rnic_.memory().read(pkt.raddr, 8);
    std::uint64_t old_value = 0;
    std::memcpy(&old_value, old_bytes.data(), 8);
    std::uint64_t new_value;
    if (pkt.atomicIsCompSwap) {
        new_value = old_value == pkt.atomicCompare ? pkt.atomicOperand
                                                   : old_value;
    } else {
        new_value = old_value + pkt.atomicOperand;
    }
    std::vector<std::uint8_t> new_bytes(8);
    std::memcpy(new_bytes.data(), &new_value, 8);
    rnic_.memory().write(pkt.raddr, new_bytes);
    return old_value;
}

void
RcResponder::cacheAtomicResult(std::uint32_t psn, std::uint64_t old_value)
{
    const bool fresh = atomicCache_.find(psn) == atomicCache_.end();
    atomicCache_[psn] = old_value;
    // A reused PSN (24-bit wrap, or a reconnect resetting the stream)
    // must refresh the existing record in place. Pushing a second order
    // entry for it — the pre-fix behaviour kept behind the
    // atomicCacheAccountingBug switch — makes eviction erase the live
    // map record early and lets the deque drift past the capacity the
    // map is accounted against.
    if (fresh || rnic_.profile().atomicCacheAccountingBug)
        atomicCacheOrder_.push_back(psn);
    if (atomicCacheOrder_.size() > rnic_.profile().atomicReplayDepth) {
        atomicCache_.erase(atomicCacheOrder_.front());
        atomicCacheOrder_.pop_front();
    }
}

void
RcResponder::sendReadResponse(const net::Packet& req, bool replayed)
{
    // The response stream occupies the request's reserved PSN range: one
    // packet per MTU-sized chunk.
    const std::uint32_t mtu = rnic_.profile().mtu;
    const std::uint32_t segments =
        std::max<std::uint32_t>(1, (req.length + mtu - 1) / mtu);
    for (std::uint32_t seg = 0; seg < segments; ++seg) {
        const std::uint32_t off = seg * mtu;
        const std::uint32_t chunk = std::min(mtu, req.length - off);
        net::Packet resp;
        resp.op = net::Opcode::ReadResponse;
        resp.psn = (req.psn + seg) & 0xffffff;
        resp.replayed = replayed;
        resp.length = chunk;
        resp.segIndex = seg;
        resp.segCount = segments;
        resp.payload = rnic_.memory().read(req.raddr + off, chunk);
        rnic_.sendPacket(std::move(resp), qp_);
    }
}

void
RcResponder::sendAtomicResponse(std::uint32_t psn, std::uint64_t old_value,
                                bool replayed)
{
    net::Packet resp;
    resp.op = net::Opcode::AtomicResponse;
    resp.psn = psn;
    resp.replayed = replayed;
    resp.length = 8;
    resp.payload.resize(8);
    std::memcpy(resp.payload.data(), &old_value, 8);
    rnic_.sendPacket(std::move(resp), qp_);
}

void
RcResponder::sendAck(std::uint32_t psn, bool replayed)
{
    net::Packet ack;
    ack.op = net::Opcode::Ack;
    ack.psn = psn;
    ack.replayed = replayed;
    rnic_.sendPacket(std::move(ack), qp_);
}

void
RcResponder::sendSeqNak()
{
    ++qp_.stats.seqNaksSent;
    net::Packet nak;
    nak.op = net::Opcode::Nak;
    nak.nak = net::NakCode::PsnSequenceError;
    nak.psn = qp_.expectedPsn;
    rnic_.sendPacket(std::move(nak), qp_);
}

void
RcResponder::sendAccessNak(std::uint32_t psn)
{
    net::Packet nak;
    nak.op = net::Opcode::Nak;
    nak.nak = net::NakCode::RemoteAccessError;
    nak.psn = psn;
    rnic_.sendPacket(std::move(nak), qp_);
}

void
RcResponder::sendRnrNak(std::uint32_t psn)
{
    ++qp_.stats.rnrNaksSent;
    net::Packet nak;
    nak.op = net::Opcode::RnrNak;
    nak.psn = psn;
    nak.rnrDelay = qp_.config.minRnrNakDelay;
    rnic_.sendPacket(std::move(nak), qp_);
}

} // namespace rnic
} // namespace ibsim
