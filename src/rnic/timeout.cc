#include "rnic/timeout.hh"

#include <algorithm>
#include <cassert>

namespace ibsim {
namespace rnic {

Time
timeoutInterval(std::uint8_t cack)
{
    assert(cack <= maxCack);
    if (cack == 0)
        return Time::max();
    return Time::ns(4096ll << cack);
}

std::uint8_t
effectiveCack(std::uint8_t cack, std::uint8_t min_cack)
{
    if (cack == 0)
        return 0;
    return std::max(cack, min_cack);
}

Time
detectionTime(std::uint8_t cack, const DeviceProfile& profile)
{
    const std::uint8_t eff = effectiveCack(cack, profile.minCack);
    if (eff == 0)
        return Time::max();
    return timeoutInterval(eff) * profile.timeoutDetectionFactor;
}

} // namespace rnic
} // namespace ibsim
