/**
 * @file
 * Modeled RNIC device profiles.
 *
 * Each profile captures the protocol-visible behaviours the paper measured
 * per device (Table I, Fig. 2, Secs. IV-VI): the vendor minimum of the
 * Local ACK Timeout, the RNR wait behaviour, the client-side ODP blind
 * retransmission interval, and which hardware quirks (packet damming /
 * status-update failure) the device exhibits.
 */

#ifndef IBSIM_RNIC_DEVICE_PROFILE_HH
#define IBSIM_RNIC_DEVICE_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "odp/odp_config.hh"
#include "simcore/time.hh"

namespace ibsim {
namespace rnic {

/** RNIC silicon generations appearing in the paper. */
enum class Model : std::uint8_t
{
    ConnectX3,
    ConnectX4,
    ConnectX5,
    ConnectX6,
};

const char* modelName(Model model);

/**
 * Behavioural profile of one RNIC / system pairing.
 */
struct DeviceProfile
{
    /** @{ Catalog identity (paper Table I). */
    std::string systemName;
    std::string psid;
    Model model = Model::ConnectX4;
    int linkGbps = 56;
    std::string linkRate = "FDR";
    std::string driverVersion;
    std::string firmwareVersion;
    /** @} */

    /** Path MTU in bytes; messages beyond it are segmented. */
    std::uint32_t mtu = 4096;

    /**
     * Vendor minimum of Local ACK Timeout (the c0 of Sec. II-C): requested
     * C_ack values below this clamp up. The paper estimates 12 for
     * ConnectX-5 and 16 for every other device (Fig. 2).
     */
    std::uint8_t minCack = 16;

    /**
     * Timeout detection multiplier: T_o = factor * T_tr, within the
     * spec's [1, 4] band. 2.0 matches the measured lower limits
     * (~537 ms at c0 = 16, ~33 ms at c0 = 12).
     */
    double timeoutDetectionFactor = 2.0;

    /**
     * Detection lengthens under QP load (paper Sec. VI-C observed longer
     * timeout intervals with many QPs): effective T_o is scaled by
     * (1 + timeoutLoadFactor * (active QPs - 1)).
     */
    double timeoutLoadFactor = 0.004;

    /**
     * The requester's actual RNR wait is this multiple of the delay value
     * carried in the RNR NAK (measured ~4.5 ms against a programmed
     * 1.28 ms minimum, Fig. 1).
     */
    double rnrWaitMultiplier = 3.5;

    /**
     * Client-side ODP blind retransmission interval: after discarding a
     * faulting READ response the requester retransmits the request this
     * often, regardless of fault resolution (~0.5 ms, Fig. 1).
     */
    Time clientRexmitInterval = Time::us(500);

    /**
     * Under flood the blind retransmission backs off: the effective gap
     * is clientRexmitInterval * (1 + rexmitLoadFactor * stale QPs). The
     * paper saw READ retransmissions every several tens of milliseconds
     * during SparkUCX floods (Sec. VII-B).
     */
    double rexmitLoadFactor = 0.1;

    /**
     * Packet damming quirk (Sec. V): vendor feedback attributes it to a
     * ConnectX-4-specific page fault processing method; the paper also
     * observed it on the ConnectX-3 generation systems it could test and
     * never on ConnectX-6.
     */
    bool dammingQuirk = true;

    /**
     * How many requests one pending period can poison. The paper
     * demonstrates up to three victims (Fig. 7, four operations); a small
     * hardware fault-FIFO bound keeps a long posting stream from being
     * black-holed wholesale, matching Fig. 9's lack of mass aborts.
     */
    std::uint32_t dammingCapacity = 16;

    /**
     * Depth of the responder's atomic replay cache (the IBA "atomic
     * response resources"): how many recent atomic results are retained
     * to answer duplicate requests without re-executing. Requesters keep
     * their in-flight window at or below this, so a retransmitted atomic
     * always finds its record.
     */
    std::size_t atomicReplayDepth = 128;

    /**
     * @{ Resurrectable historical defects, kept behind switches so the
     * chaos oracle's regression tests can flip one on and assert the
     * corresponding invariant family catches the old behaviour
     * (tests/test_chaos.cc). All off in every shipped profile.
     */

    /**
     * Pre-fix atomic replay-cache accounting: a duplicate-PSN insert
     * overwrites the map entry but pushes a second eviction-order entry,
     * so eviction later erases a live record early and the cache drifts
     * past its accounted capacity (caught by invariant A1).
     */
    bool atomicCacheAccountingBug = false;

    /**
     * Broken responder that re-executes duplicate atomics against memory
     * instead of answering from the replay cache — the exactly-once
     * violation invariant A1 exists to catch.
     */
    bool atomicReexecuteBug = false;

    /**
     * Pre-fix UD drop accounting: datagrams discarded at the responder
     * (no RECV posted, truncation, ODP-cold buffer) fall through
     * silently instead of counting QpStats::udDrops (caught by
     * invariant U3).
     */
    bool udDropAccountingBug = false;
    /** @} */

    /**
     * @{ Error/recovery switches (DESIGN.md §13). Both default off: a QP
     * whose retries exhaust stays in the Error state forever, exactly the
     * pre-recovery behaviour, unless the deployment opts in.
     */

    /**
     * Re-arm Error-state QPs when the path to their peer comes back up
     * (PathUp/PortUp async event): QP reset -> init -> RTR -> RTS via a
     * CM-style handshake that re-synchronizes both endpoints' PSN
     * streams under a new reset epoch.
     */
    bool qpRecoveryOnPortUp = false;

    /**
     * SM-style reroute: when a path goes down but the subnet still has a
     * redundant link out of the port (PortEvent::redundantPath), re-
     * resolve the LID route after smRerouteDelay instead of letting
     * retries exhaust. Rerouted traffic passes the link-down gate and
     * pays one extra hop of latency.
     */
    bool smReroute = false;

    /** SM sweep delay before a reroute takes effect. */
    Time smRerouteDelay = Time::ms(1);

    /** @{ CM re-arm handshake retry policy. */
    Time cmRetryInterval = Time::ms(1);
    std::uint8_t cmRetryLimit = 7;
    /** @} */

    /** @} */

    /** ODP driver timing. */
    odp::FaultTiming faultTiming;

    /** Status-update failure quirk (Sec. VI); present on all devices. */
    odp::FloodQuirkConfig floodQuirk;

    /** @{ Canonical profiles for the four silicon generations. */
    static DeviceProfile connectX3();
    static DeviceProfile connectX4();
    static DeviceProfile connectX5();
    static DeviceProfile connectX6();
    /** @} */

    /** The eight systems of paper Table I, in table order. */
    static std::vector<DeviceProfile> table1();

    /** Convenience: the paper's KNL testbed (Private servers B, CX4). */
    static DeviceProfile knl();
};

} // namespace rnic
} // namespace ibsim

#endif // IBSIM_RNIC_DEVICE_PROFILE_HH
