#include "rnic/rnic.hh"

#include <cassert>

#include "rnic/rc_requester.hh"
#include "rnic/rc_responder.hh"
#include "simcore/log.hh"

namespace ibsim {
namespace rnic {

namespace {

log::Component traceRnic("rnic");

} // namespace

Rnic::Rnic(EventQueue& events, Rng& rng, net::Fabric& fabric,
           std::uint16_t lid, DeviceProfile profile,
           mem::AddressSpace& memory, odp::OdpDriver& driver,
           odp::PageStatusBoard& board)
    : events_(events), rng_(rng), fabric_(fabric), lid_(lid),
      profile_(std::move(profile)), memory_(memory), driver_(driver),
      board_(board)
{
    fabric_.attach(lid_, *this);
    driver_.setResolutionObserver(
        [this](odp::TranslationTable& table, std::uint64_t page) {
            board_.onPageMapped(table, page);
        });
}

Rnic::~Rnic()
{
    fabric_.detach(lid_);
}

void
Rnic::registerMr(verbs::MemoryRegion& mr)
{
    mrs_.insert(mr.rkey(), &mr);
}

void
Rnic::deregisterMr(std::uint32_t key)
{
    mrs_.erase(key);
    if (mruKey_ == key) {
        mruKey_ = 0;
        mruMr_ = nullptr;
    }
}

verbs::MemoryRegion*
Rnic::findMr(std::uint32_t key)
{
    if (key == mruKey_)
        return mruMr_;
    verbs::MemoryRegion** mr = mrs_.find(key);
    if (mr == nullptr)
        return nullptr;
    mruKey_ = key;
    mruMr_ = *mr;
    return *mr;
}

QpContext&
Rnic::createQp(verbs::CompletionQueue& cq, verbs::QpConfig config)
{
    const std::uint32_t qpn =
        firstQpn + static_cast<std::uint32_t>(qps_.size());
    QpRecord record;
    record.ctx = std::make_unique<QpContext>();
    record.ctx->qpn = qpn;
    record.ctx->config = config;
    record.ctx->cq = &cq;
    record.requester = std::make_unique<RcRequester>(*this, *record.ctx);
    record.responder = std::make_unique<RcResponder>(*this, *record.ctx);
    qps_.push_back(std::move(record));
    // A UD QP addresses peers per work request, so its island's
    // cross-island routes cannot be declared connection by connection —
    // fall back to dense edges (sound, just conservative).
    if (config.transport == verbs::Transport::Ud)
        fabric_.declareDenseIsland(fabric_.islandOf(lid_));
    return *qps_.back().ctx;
}

void
Rnic::connectQp(QpContext& qp, std::uint16_t dst_lid, std::uint32_t dst_qpn)
{
    fabric_.declareRoute(lid_, dst_lid);
    qp.dstLid = dst_lid;
    qp.dstQpn = dst_qpn;
    qp.connected = true;
    qp.nextPsn = 0;
    qp.sendCursor = 0;
    qp.expectedPsn = 0;
}

Rnic::QpRecord*
Rnic::qpRecord(std::uint32_t qpn)
{
    if (qpn < firstQpn)
        return nullptr;
    const std::size_t index = qpn - firstQpn;
    if (index >= qps_.size() || qps_[index].ctx == nullptr)
        return nullptr;
    return &qps_[index];
}

void
Rnic::destroyQp(std::uint32_t qpn)
{
    QpRecord* record = qpRecord(qpn);
    if (record == nullptr)
        return;
    QpContext& qp = *record->ctx;
    if (qp.timerArmed)
        events_.cancel(qp.retransmitTimer);
    if (qp.inRnrWait)
        events_.cancel(qp.rnrTimer);
    if (qp.clientRexmitActive)
        events_.cancel(qp.clientRexmitTimer);
    if (qp.active())
        qpBecameIdle();
    record->requester.reset();
    record->responder.reset();
    record->ctx.reset();
}

QpContext*
Rnic::findQp(std::uint32_t qpn)
{
    QpRecord* record = qpRecord(qpn);
    return record == nullptr ? nullptr : record->ctx.get();
}

void
Rnic::postSend(QpContext& qp, SendWqe wqe)
{
    QpRecord* record = qpRecord(qp.qpn);
    assert(record != nullptr);
    for (const auto& tap : sendPostTaps_)
        tap(qp, wqe);
    record->requester->post(std::move(wqe));
}

void
Rnic::postRecv(QpContext& qp, RecvWqe wqe)
{
    for (const auto& tap : recvPostTaps_)
        tap(qp, wqe);
    qp.recvQueue.push_back(wqe);
}

void
Rnic::addSendPostTap(SendPostTap tap)
{
    sendPostTaps_.push_back(std::move(tap));
}

void
Rnic::addRecvPostTap(RecvPostTap tap)
{
    recvPostTaps_.push_back(std::move(tap));
}

void
Rnic::sendPacket(net::Packet pkt, QpContext& qp)
{
    pkt.srcLid = lid_;
    pkt.srcQpn = qp.qpn;
    pkt.dstLid = qp.dstLid;
    pkt.dstQpn = qp.dstQpn;
    ++stats_.packetsSent;
    fabric_.send(std::move(pkt));
}

void
Rnic::sendRaw(net::Packet pkt)
{
    ++stats_.packetsSent;
    if (!fabric_.attached(pkt.dstLid))
        ++stats_.udUnroutedDrops;
    fabric_.send(std::move(pkt));
}

bool
Rnic::validPacket(const net::Packet& pkt) const
{
    // Largest DMA length any sane workload posts; corrupted length fields
    // beyond it are discarded instead of driving absurd serializations
    // and wild responder arithmetic.
    constexpr std::uint32_t maxSaneLength = 1u << 28;

    if (static_cast<std::uint8_t>(pkt.op) >
        static_cast<std::uint8_t>(net::Opcode::AtomicResponse)) {
        return false;  // corrupted opcode
    }
    if (pkt.segCount < 1 || pkt.segIndex >= pkt.segCount)
        return false;
    if (pkt.length > maxSaneLength || pkt.payload.size() > maxSaneLength)
        return false;
    return true;
}

void
Rnic::receive(const net::Packet& pkt)
{
    ++stats_.packetsReceived;

    // ICRC model: corruption injected by the chaos engine fails the
    // end-to-end CRC and the packet is silently discarded at ingress,
    // unless the injector explicitly models a CRC-evading flip.
    if ((pkt.chaosFlags & net::Packet::chaosCorrupted) &&
        !(pkt.chaosFlags & net::Packet::chaosCrcEvading)) {
        ++stats_.crcDrops;
        IBSIM_TRACE(traceRnic, events_.now(), "icrc drop: " + pkt.str());
        return;
    }

    // Wire garbage that slipped past the CRC is dropped and counted, not
    // asserted on: a malformed packet must never crash the device.
    if (!validPacket(pkt)) {
        ++stats_.malformedDrops;
        IBSIM_TRACE(traceRnic, events_.now(),
                    "malformed drop: " + pkt.str());
        return;
    }

    QpRecord* record = qpRecord(pkt.dstQpn);
    if (record == nullptr) {
        ++stats_.packetsToUnknownQp;
        return;
    }

    switch (pkt.op) {
      case net::Opcode::ReadRequest:
      case net::Opcode::WriteRequest:
      case net::Opcode::Send:
      case net::Opcode::AtomicRequest:
        record->responder->onRequest(pkt);
        break;
      case net::Opcode::ReadResponse:
      case net::Opcode::AtomicResponse:
        record->requester->onReadResponse(pkt);
        break;
      case net::Opcode::Ack:
        record->requester->onAck(pkt);
        break;
      case net::Opcode::Nak:
        record->requester->onNak(pkt);
        break;
      case net::Opcode::RnrNak:
        record->requester->onRnrNak(pkt);
        break;
    }
}

std::vector<QpContext*>
Rnic::allQps()
{
    std::vector<QpContext*> out;
    out.reserve(qps_.size());
    for (auto& record : qps_) {
        if (record.ctx != nullptr)
            out.push_back(record.ctx.get());
    }
    return out;
}

} // namespace rnic
} // namespace ibsim
