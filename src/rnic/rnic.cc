#include "rnic/rnic.hh"

#include <cassert>

#include "rnic/rc_requester.hh"
#include "rnic/rc_responder.hh"
#include "simcore/log.hh"

namespace ibsim {
namespace rnic {

namespace {

log::Component traceRnic("rnic");

} // namespace

Rnic::Rnic(EventQueue& events, Rng& rng, net::Fabric& fabric,
           std::uint16_t lid, DeviceProfile profile,
           mem::AddressSpace& memory, odp::OdpDriver& driver,
           odp::PageStatusBoard& board)
    : events_(events), rng_(rng), fabric_(fabric), lid_(lid),
      profile_(std::move(profile)), memory_(memory), driver_(driver),
      board_(board)
{
    fabric_.attach(lid_, *this);
    driver_.setResolutionObserver(
        [this](odp::TranslationTable& table, std::uint64_t page,
               std::uint32_t contention) {
            board_.onPageMapped(table, page, contention);
        });
}

Rnic::~Rnic()
{
    fabric_.detach(lid_);
}

void
Rnic::registerMr(verbs::MemoryRegion& mr)
{
    mrs_.insert(mr.rkey(), &mr);
}

void
Rnic::deregisterMr(std::uint32_t key)
{
    mrs_.erase(key);
    if (mruKey_ == key) {
        mruKey_ = 0;
        mruMr_ = nullptr;
    }
}

verbs::MemoryRegion*
Rnic::findMr(std::uint32_t key)
{
    if (key == mruKey_)
        return mruMr_;
    verbs::MemoryRegion** mr = mrs_.find(key);
    if (mr == nullptr)
        return nullptr;
    mruKey_ = key;
    mruMr_ = *mr;
    return *mr;
}

QpContext&
Rnic::createQp(verbs::CompletionQueue& cq, verbs::QpConfig config)
{
    const std::uint32_t qpn =
        firstQpn + static_cast<std::uint32_t>(qps_.size());
    QpRecord record;
    record.ctx = std::make_unique<QpContext>();
    record.ctx->qpn = qpn;
    record.ctx->config = config;
    record.ctx->cq = &cq;
    record.requester = std::make_unique<RcRequester>(*this, *record.ctx);
    record.responder = std::make_unique<RcResponder>(*this, *record.ctx);
    qps_.push_back(std::move(record));
    // A UD QP addresses peers per work request, so its island's
    // cross-island routes cannot be declared connection by connection —
    // fall back to dense edges (sound, just conservative).
    if (config.transport == verbs::Transport::Ud)
        fabric_.declareDenseIsland(fabric_.islandOf(lid_));
    return *qps_.back().ctx;
}

void
Rnic::connectQp(QpContext& qp, std::uint16_t dst_lid, std::uint32_t dst_qpn)
{
    fabric_.declareRoute(lid_, dst_lid);
    qp.dstLid = dst_lid;
    qp.dstQpn = dst_qpn;
    qp.connected = true;
    qp.nextPsn = 0;
    qp.sendCursor = 0;
    qp.expectedPsn = 0;
    qp.state = QpState::Rts;
    qp.errorState = false;
    qp.pathDown = false;
    qp.rerouted = false;
}

Rnic::QpRecord*
Rnic::qpRecord(std::uint32_t qpn)
{
    if (qpn < firstQpn)
        return nullptr;
    const std::size_t index = qpn - firstQpn;
    if (index >= qps_.size() || qps_[index].ctx == nullptr)
        return nullptr;
    return &qps_[index];
}

void
Rnic::destroyQp(std::uint32_t qpn)
{
    QpRecord* record = qpRecord(qpn);
    if (record == nullptr)
        return;
    QpContext& qp = *record->ctx;
    if (qp.timerArmed)
        events_.cancel(qp.retransmitTimer);
    if (qp.inRnrWait)
        events_.cancel(qp.rnrTimer);
    if (qp.clientRexmitActive)
        events_.cancel(qp.clientRexmitTimer);
    if (qp.cmTimerArmed)
        events_.cancel(qp.cmTimer);
    if (qp.active())
        qpBecameIdle();
    record->requester.reset();
    record->responder.reset();
    record->ctx.reset();
}

QpContext*
Rnic::findQp(std::uint32_t qpn)
{
    QpRecord* record = qpRecord(qpn);
    return record == nullptr ? nullptr : record->ctx.get();
}

void
Rnic::postSend(QpContext& qp, SendWqe wqe)
{
    QpRecord* record = qpRecord(qp.qpn);
    assert(record != nullptr);
    for (const auto& tap : sendPostTaps_)
        tap(qp, wqe);
    record->requester->post(std::move(wqe));
}

void
Rnic::postRecv(QpContext& qp, RecvWqe wqe)
{
    for (const auto& tap : recvPostTaps_)
        tap(qp, wqe);
    qp.recvQueue.push_back(wqe);
}

void
Rnic::addSendPostTap(SendPostTap tap)
{
    sendPostTaps_.push_back(std::move(tap));
}

void
Rnic::addRecvPostTap(RecvPostTap tap)
{
    recvPostTaps_.push_back(std::move(tap));
}

void
Rnic::sendPacket(net::Packet pkt, QpContext& qp)
{
    pkt.srcLid = lid_;
    pkt.srcQpn = qp.qpn;
    pkt.dstLid = qp.dstLid;
    pkt.dstQpn = qp.dstQpn;
    pkt.epoch = qp.resetEpoch;
    pkt.rerouted = qp.rerouted;
    ++stats_.packetsSent;
    fabric_.send(std::move(pkt));
}

void
Rnic::sendRaw(net::Packet pkt)
{
    ++stats_.packetsSent;
    if (!fabric_.attached(pkt.dstLid))
        ++stats_.udUnroutedDrops;
    fabric_.send(std::move(pkt));
}

bool
Rnic::validPacket(const net::Packet& pkt) const
{
    // Largest DMA length any sane workload posts; corrupted length fields
    // beyond it are discarded instead of driving absurd serializations
    // and wild responder arithmetic.
    constexpr std::uint32_t maxSaneLength = 1u << 28;

    if (static_cast<std::uint8_t>(pkt.op) >
        static_cast<std::uint8_t>(net::Opcode::CmRearmAck)) {
        return false;  // corrupted opcode
    }
    if (pkt.segCount < 1 || pkt.segIndex >= pkt.segCount)
        return false;
    if (pkt.length > maxSaneLength || pkt.payload.size() > maxSaneLength)
        return false;
    return true;
}

void
Rnic::receive(const net::Packet& pkt)
{
    ++stats_.packetsReceived;

    // ICRC model: corruption injected by the chaos engine fails the
    // end-to-end CRC and the packet is silently discarded at ingress,
    // unless the injector explicitly models a CRC-evading flip.
    if ((pkt.chaosFlags & net::Packet::chaosCorrupted) &&
        !(pkt.chaosFlags & net::Packet::chaosCrcEvading)) {
        ++stats_.crcDrops;
        IBSIM_TRACE(traceRnic, events_.now(), "icrc drop: " + pkt.str());
        return;
    }

    // Wire garbage that slipped past the CRC is dropped and counted, not
    // asserted on: a malformed packet must never crash the device.
    if (!validPacket(pkt)) {
        ++stats_.malformedDrops;
        IBSIM_TRACE(traceRnic, events_.now(),
                    "malformed drop: " + pkt.str());
        return;
    }

    QpRecord* record = qpRecord(pkt.dstQpn);
    if (record == nullptr) {
        ++stats_.packetsToUnknownQp;
        return;
    }

    // CM re-arm handshake packets carry the *new* epoch and are handled
    // before the epoch filter below; everything else from a stale reset
    // epoch is discarded so pre-reset traffic cannot corrupt the re-armed
    // PSN streams. Legacy QPs never leave epoch 0, so this never fires
    // for them.
    if (pkt.op == net::Opcode::CmRearm) {
        onCmRearm(*record, pkt);
        return;
    }
    if (pkt.op == net::Opcode::CmRearmAck) {
        onCmRearmAck(*record, pkt);
        return;
    }
    if (pkt.epoch != record->ctx->resetEpoch) {
        ++stats_.staleEpochDrops;
        IBSIM_TRACE(traceRnic, events_.now(),
                    "stale epoch drop: " + pkt.str());
        return;
    }

    switch (pkt.op) {
      case net::Opcode::ReadRequest:
      case net::Opcode::WriteRequest:
      case net::Opcode::Send:
      case net::Opcode::AtomicRequest:
        record->responder->onRequest(pkt);
        break;
      case net::Opcode::ReadResponse:
      case net::Opcode::AtomicResponse:
        record->requester->onReadResponse(pkt);
        break;
      case net::Opcode::Ack:
        record->requester->onAck(pkt);
        break;
      case net::Opcode::Nak:
        record->requester->onNak(pkt);
        break;
      case net::Opcode::RnrNak:
        record->requester->onRnrNak(pkt);
        break;
      case net::Opcode::CmRearm:
      case net::Opcode::CmRearmAck:
        break;  // handled above
    }
}

void
Rnic::addAsyncEventTap(AsyncEventTap tap)
{
    asyncEventTaps_.push_back(std::move(tap));
}

void
Rnic::fireAsyncEvent(verbs::AsyncEventType type, std::uint16_t peer_lid,
                     std::uint32_t qpn, bool redundant)
{
    if (asyncEventTaps_.empty())
        return;
    verbs::AsyncEvent ev;
    ev.type = type;
    ev.lid = lid_;
    ev.peerLid = peer_lid;
    ev.qpn = qpn;
    ev.redundantPath = redundant;
    ev.at = events_.now();
    for (const auto& tap : asyncEventTaps_)
        tap(ev);
}

void
Rnic::portEvent(const net::PortEvent& ev)
{
    using Type = net::PortEvent::Type;
    const bool down =
        ev.type == Type::PortDown || ev.type == Type::PathDown;
    const bool pathScoped =
        ev.type == Type::PathDown || ev.type == Type::PathUp;
    if (down)
        ++stats_.portDownEvents;
    else
        ++stats_.portUpEvents;

    IBSIM_TRACE(traceRnic, events_.now(),
                "lid=" + std::to_string(lid_) + " port event peer=" +
                    std::to_string(ev.peerLid) +
                    (down ? " DOWN" : " UP"));

    for (auto& record : qps_) {
        if (record.ctx == nullptr || !record.ctx->connected)
            continue;
        QpContext& qp = *record.ctx;
        if (pathScoped && qp.dstLid != ev.peerLid)
            continue;
        if (down) {
            qp.pathDown = true;
            if (profile_.smReroute && ev.redundantPath && !qp.rerouted) {
                // SM sweep: after smRerouteDelay, if the path is still
                // down, re-resolve the LID route over the redundant link.
                const std::uint32_t qpn = qp.qpn;
                events_.scheduleAfter(
                    profile_.smRerouteDelay, [this, qpn] {
                        QpContext* q = findQp(qpn);
                        if (q != nullptr && q->pathDown && !q->rerouted) {
                            q->rerouted = true;
                            ++stats_.reroutes;
                        }
                    });
            }
        } else {
            qp.pathDown = false;
            qp.rerouted = false;
            if (qp.state == QpState::Error && profile_.qpRecoveryOnPortUp)
                startRecovery(qp);
        }
    }

    verbs::AsyncEventType type;
    switch (ev.type) {
      case Type::PortUp: type = verbs::AsyncEventType::PortActive; break;
      case Type::PortDown: type = verbs::AsyncEventType::PortError; break;
      case Type::PathUp: type = verbs::AsyncEventType::PathActive; break;
      case Type::PathDown:
      default: type = verbs::AsyncEventType::PathError; break;
    }
    fireAsyncEvent(type, ev.peerLid, 0, ev.redundantPath);
}

void
Rnic::noteQpError(QpContext& qp)
{
    ++stats_.qpsEnteredError;
    fireAsyncEvent(verbs::AsyncEventType::QpFatal, qp.dstLid, qp.qpn,
                   false);
}

void
Rnic::startRecovery(QpContext& qp)
{
    if (qp.state != QpState::Error)
        return;
    QpRecord* record = qpRecord(qp.qpn);
    assert(record != nullptr);
    assert(qp.outstanding.empty() &&
           "Error-state QPs have flushed their send queue");

    // Reset: both directions' transport state restarts under a new
    // epoch. Posts are accepted from here on (they queue until RTS).
    qp.state = QpState::Reset;
    qp.errorState = false;
    qp.resetEpoch = static_cast<std::uint16_t>(qp.resetEpoch + 1);
    qp.nextPsn = 0;
    qp.sendCursor = 0;
    qp.expectedPsn = 0;
    qp.retryCount = 0;
    qp.rnrCount = 0;
    qp.dammingEpisode = false;
    qp.episodeDamsLeft = 0;
    qp.cmRetries = 0;
    record->responder->resetForRecovery();

    // Init: CM-style re-arm handshake with the peer; RTR/RTS follow when
    // the matching-epoch ack lands.
    qp.state = QpState::Init;
    IBSIM_TRACE(traceRnic, events_.now(),
                "qpn=" + std::to_string(qp.qpn) + " recovery epoch " +
                    std::to_string(qp.resetEpoch));
    sendCmRearm(qp);
    armCmTimer(qp);
}

void
Rnic::sendCmRearm(QpContext& qp)
{
    net::Packet pkt;
    pkt.op = net::Opcode::CmRearm;
    ++stats_.cmRearmsSent;
    sendPacket(std::move(pkt), qp);
}

void
Rnic::armCmTimer(QpContext& qp)
{
    disarmCmTimer(qp);
    const std::uint32_t qpn = qp.qpn;
    qp.cmTimer = events_.scheduleAfter(profile_.cmRetryInterval,
                                       [this, qpn] { cmTimerFired(qpn); });
    qp.cmTimerArmed = true;
}

void
Rnic::disarmCmTimer(QpContext& qp)
{
    if (qp.cmTimerArmed) {
        events_.cancel(qp.cmTimer);
        qp.cmTimerArmed = false;
    }
}

void
Rnic::cmTimerFired(std::uint32_t qpn)
{
    QpRecord* record = qpRecord(qpn);
    if (record == nullptr)
        return;
    QpContext& qp = *record->ctx;
    qp.cmTimerArmed = false;
    if (qp.state != QpState::Init && qp.state != QpState::Rtr)
        return;
    if (++qp.cmRetries > profile_.cmRetryLimit) {
        // Handshake failed (peer dead, or the path never came back):
        // back to Error, flushing anything queued during recovery.
        record->requester->flushAll(verbs::WcStatus::RetryExcErr);
        return;
    }
    sendCmRearm(qp);
    armCmTimer(qp);
}

void
Rnic::onCmRearm(QpRecord& record, const net::Packet& pkt)
{
    QpContext& qp = *record.ctx;
    // Epochs compare on their own 16-bit ring: higher = newer recovery.
    const auto diff = static_cast<std::int16_t>(
        static_cast<std::uint16_t>(pkt.epoch - qp.resetEpoch));
    if (diff < 0)
        return;  // stale handshake from a superseded recovery
    if (diff > 0) {
        // Adopt the initiator's epoch: this side transitions through
        // reset too — flush anything still in flight, re-arm both
        // directions, and come up RTS immediately (the initiator is the
        // one waiting on an ack).
        const bool wasError = qp.state == QpState::Error;
        if (!qp.outstanding.empty())
            record.requester->flushAll(verbs::WcStatus::WrFlushErr);
        disarmCmTimer(qp);
        qp.resetEpoch = pkt.epoch;
        qp.nextPsn = 0;
        qp.sendCursor = 0;
        qp.expectedPsn = 0;
        qp.retryCount = 0;
        qp.rnrCount = 0;
        qp.dammingEpisode = false;
        qp.episodeDamsLeft = 0;
        qp.cmRetries = 0;
        qp.errorState = false;
        qp.state = QpState::Rts;
        record.responder->resetForRecovery();
        if (wasError) {
            ++stats_.qpsRecovered;
            fireAsyncEvent(verbs::AsyncEventType::QpRecovered, qp.dstLid,
                           qp.qpn, false);
        }
    }
    // Ack under the (possibly just adopted) epoch; idempotent for
    // retransmitted re-arms (diff == 0).
    net::Packet ack;
    ack.op = net::Opcode::CmRearmAck;
    sendPacket(std::move(ack), qp);
}

void
Rnic::onCmRearmAck(QpRecord& record, const net::Packet& pkt)
{
    QpContext& qp = *record.ctx;
    if (pkt.epoch != qp.resetEpoch)
        return;  // ack for a superseded handshake
    if (qp.state != QpState::Init && qp.state != QpState::Rtr)
        return;  // duplicate ack after recovery completed
    disarmCmTimer(qp);
    qp.state = QpState::Rtr;
    finishRecovery(qp);
}

void
Rnic::finishRecovery(QpContext& qp)
{
    qp.state = QpState::Rts;
    ++stats_.qpsRecovered;
    IBSIM_TRACE(traceRnic, events_.now(),
                "qpn=" + std::to_string(qp.qpn) + " recovered (RTS)");
    fireAsyncEvent(verbs::AsyncEventType::QpRecovered, qp.dstLid, qp.qpn,
                   false);
    QpRecord* record = qpRecord(qp.qpn);
    record->requester->resume();
}

std::vector<QpContext*>
Rnic::allQps()
{
    std::vector<QpContext*> out;
    out.reserve(qps_.size());
    for (auto& record : qps_) {
        if (record.ctx != nullptr)
            out.push_back(record.ctx.get());
    }
    return out;
}

} // namespace rnic
} // namespace ibsim
