#include "rnic/device_profile.hh"

namespace ibsim {
namespace rnic {

const char*
modelName(Model model)
{
    switch (model) {
      case Model::ConnectX3: return "ConnectX-3";
      case Model::ConnectX4: return "ConnectX-4";
      case Model::ConnectX5: return "ConnectX-5";
      case Model::ConnectX6: return "ConnectX-6";
    }
    return "?";
}

DeviceProfile
DeviceProfile::connectX3()
{
    DeviceProfile p;
    p.systemName = "ConnectX-3 (generic)";
    p.model = Model::ConnectX3;
    p.linkGbps = 56;
    p.linkRate = "FDR";
    p.minCack = 16;
    // The paper only ran the damming micro-benchmark on CX4-generation
    // systems; CX3 keeps the quirk on as the conservative assumption (the
    // timeout floor, which is what Fig. 2 measures on CX3, is identical).
    p.dammingQuirk = true;
    return p;
}

DeviceProfile
DeviceProfile::connectX4()
{
    DeviceProfile p;
    p.systemName = "ConnectX-4 (generic)";
    p.model = Model::ConnectX4;
    p.linkGbps = 56;
    p.linkRate = "FDR";
    p.minCack = 16;
    p.dammingQuirk = true;
    return p;
}

DeviceProfile
DeviceProfile::connectX5()
{
    DeviceProfile p;
    p.systemName = "ConnectX-5 (generic)";
    p.model = Model::ConnectX5;
    p.linkGbps = 100;
    p.linkRate = "EDR";
    p.minCack = 12;  // the one device with a ~30 ms floor (Fig. 2)
    p.dammingQuirk = false;
    return p;
}

DeviceProfile
DeviceProfile::connectX6()
{
    DeviceProfile p;
    p.systemName = "ConnectX-6 (generic)";
    p.model = Model::ConnectX6;
    p.linkGbps = 200;
    p.linkRate = "HDR";
    p.minCack = 16;
    p.dammingQuirk = false;  // vendor: vanished in models after CX4
    return p;
}

std::vector<DeviceProfile>
DeviceProfile::table1()
{
    std::vector<DeviceProfile> out;

    DeviceProfile p = connectX3();
    p.systemName = "Private servers A";
    p.psid = "MT_1100120019";
    p.driverVersion = "5.0-2.1.8.0";
    p.firmwareVersion = "2.42.5000";
    out.push_back(p);

    p = connectX4();
    p.systemName = "Private servers B";
    p.psid = "MT_2170111021";
    p.driverVersion = "5.0-2.1.8.0";
    p.firmwareVersion = "12.27.1016";
    out.push_back(p);

    p = connectX4();
    p.systemName = "Reedbush-H";
    p.psid = "MT_2160110021";
    p.driverVersion = "4.5-0.1.0";
    p.firmwareVersion = "12.24.1000";
    out.push_back(p);

    p = connectX4();
    p.systemName = "Reedbush-L";
    p.psid = "MT_2180110032";
    p.linkGbps = 100;
    p.linkRate = "EDR";
    p.driverVersion = "4.5-0.1.0";
    p.firmwareVersion = "12.24.1000";
    out.push_back(p);

    p = connectX4();
    p.systemName = "ABCI";
    p.psid = "MT_0000000095";
    p.linkGbps = 100;
    p.linkRate = "EDR";
    p.driverVersion = "4.4-1.0.0";
    p.firmwareVersion = "12.21.1000";
    out.push_back(p);

    p = connectX4();
    p.systemName = "ITO";
    p.psid = "FJT2180110032";
    p.linkGbps = 100;
    p.linkRate = "EDR";
    p.driverVersion = "4.4-1.0.0";
    p.firmwareVersion = "12.23.1020";
    out.push_back(p);

    p = connectX5();
    p.systemName = "Azure VM HCr Series";
    p.psid = "MT_0000000010";
    p.driverVersion = "4.7-3.2.9";
    p.firmwareVersion = "16.26.0206";
    out.push_back(p);

    p = connectX6();
    p.systemName = "Azure VM HBv2 Series";
    p.psid = "MT_0000000223";
    p.driverVersion = "5.0-2.1.8.0";
    p.firmwareVersion = "20.26.6200";
    out.push_back(p);

    return out;
}

DeviceProfile
DeviceProfile::knl()
{
    auto catalog = table1();
    return catalog[1];  // Private servers B: the KNL ConnectX-4 testbed
}

} // namespace rnic
} // namespace ibsim
