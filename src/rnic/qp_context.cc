#include "rnic/qp_context.hh"

namespace ibsim {
namespace rnic {

std::int32_t
psnDiff(std::uint32_t a, std::uint32_t b)
{
    // Signed distance on the 24-bit ring: shift the 24-bit difference into
    // the top of a 32-bit int and arithmetically shift back down.
    const std::uint32_t d = (a - b) & 0xffffff;
    return (static_cast<std::int32_t>(d << 8)) >> 8;
}

const char*
qpStateName(QpState state)
{
    switch (state) {
      case QpState::Reset: return "RESET";
      case QpState::Init: return "INIT";
      case QpState::Rtr: return "RTR";
      case QpState::Rts: return "RTS";
      case QpState::Error: return "ERROR";
    }
    return "?";
}

} // namespace rnic
} // namespace ibsim
