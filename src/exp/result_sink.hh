/**
 * @file
 * ResultSink — one writer for every output format a bench produces.
 *
 * The benches print paper-comparable fixed-width tables on stdout; on top
 * of that the sink mirrors every row to CSV (IBSIM_CSV / --csv) and emits
 * machine-readable JSON-lines (IBSIM_JSON / --json) with the full summary
 * statistics of every metric in every sweep cell — the format BENCH_*.json
 * trajectory tracking and re-plotting scripts consume.
 *
 * Two table shapes cover the paper:
 *   - table(): long format, one row per cell, columns = axes + metrics;
 *   - pivot(): one axis across the columns (e.g. Fig. 6a's one column per
 *     RNR delay), rows over a second axis.
 * Both emit identical JSON rows; only the stdout/CSV rendering differs.
 */

#ifndef IBSIM_EXP_RESULT_SINK_HH
#define IBSIM_EXP_RESULT_SINK_HH

#include <cstdio>
#include <string>
#include <vector>

#include "exp/trial_runner.hh"

namespace ibsim {
namespace exp {

/** Which summary statistic of a metric a table column shows. */
enum class Stat : std::uint8_t
{
    Mean,
    Min,
    Max,
    Sum,
    Stddev,
    Count,
    PctMean,  ///< mean x 100 (probability-of-event columns)
    P95,
};

/** One metric column of a table. */
struct MetricColumn
{
    std::string metric;    ///< Metrics name set by the trial function
    Stat stat = Stat::Mean;
    std::string header;    ///< column header ("" = metric name)
    int precision = 3;
};

/** Shorthand constructor. */
MetricColumn col(std::string metric, Stat stat = Stat::Mean,
                 int precision = 3, std::string header = "");

double statOf(const Accumulator& acc, Stat stat);
const char* statName(Stat stat);

class ResultSink
{
  public:
    struct Options
    {
        std::string benchName;
        /** Output paths; empty falls back to IBSIM_JSON / IBSIM_CSV. */
        std::string jsonPath;
        std::string csvPath;
        /** Suppress the stdout rendering (JSON/CSV still written). */
        bool quiet = false;
        std::size_t columnWidth = 14;
    };

    explicit ResultSink(Options options);

    /** Long-format table: one row per cell. */
    void table(const std::string& section, const SweepResult& result,
               const std::vector<MetricColumn>& columns);

    /**
     * Pivot table: rows over @p row_axis, one column per value of
     * @p col_axis, cells showing @p metric.
     */
    void pivot(const std::string& section, const SweepResult& result,
               const std::string& row_axis, const std::string& col_axis,
               const MetricColumn& metric);

    /** Free-form stdout line (suppressed by quiet; not mirrored). */
    void note(const std::string& text);

    /** Blank stdout line for layout. */
    void blank();

    /**
     * Emit the JSON rows of @p result without printing a table (for
     * benches whose stdout is a packet-workflow rendering).
     */
    void jsonOnly(const std::string& section, const SweepResult& result);

    const std::string& jsonPath() const { return jsonPath_; }

  private:
    void printRow(const std::vector<std::string>& cells,
                  std::size_t width) const;
    void appendCsv(const std::string& section,
                   const std::vector<std::string>& cells) const;
    void writeJson(const std::string& section, const SweepResult& result);

    Options options_;
    std::string jsonPath_;
    std::string csvPath_;
};

/** Minimal JSON string escaping for keys/values we emit. */
std::string jsonEscape(const std::string& s);

} // namespace exp
} // namespace ibsim

#endif // IBSIM_EXP_RESULT_SINK_HH
