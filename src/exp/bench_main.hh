/**
 * @file
 * Shared command-line entry points for the bench binaries.
 *
 * Every standalone bench binary is the same eight lines: build a
 * Registry, register the suite, and hand argv to standaloneMain() with
 * the bench's name. The multiplexed odp_bench_cli uses runBenches() to
 * execute a --filter selection under one RunContext.
 *
 * Common flags (both entry points):
 *   --quick        reduced trial budgets (the old per-bench --quick)
 *   --jobs N       worker threads (default: IBSIM_JOBS, then hw threads)
 *   --seed N       offset every seed stream (default 0)
 *   --json PATH    JSON-lines output (default: IBSIM_JSON env)
 *   --csv PATH     CSV mirror (default: IBSIM_CSV env)
 */

#ifndef IBSIM_EXP_BENCH_MAIN_HH
#define IBSIM_EXP_BENCH_MAIN_HH

#include <string>
#include <vector>

#include "exp/registry.hh"

namespace ibsim {
namespace exp {

/**
 * Parse the common flags out of argv into @p ctx. Unrecognized arguments
 * are left for the caller (returned); returns false on malformed input.
 */
bool parseCommonFlags(int argc, char** argv, RunContext& ctx,
                      std::vector<std::string>& rest);

/** Run one selection of benches, printing a header per bench. */
int runBenches(const Registry& registry,
               const std::vector<const BenchInfo*>& selection,
               const RunContext& ctx);

/**
 * main() body of a standalone bench binary: common flags only, then the
 * named bench.
 */
int standaloneMain(int argc, char** argv, const Registry& registry,
                   const std::string& bench_name);

} // namespace exp
} // namespace ibsim

#endif // IBSIM_EXP_BENCH_MAIN_HH
