#include "exp/seed_stream.hh"

namespace ibsim {
namespace exp {

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

std::uint64_t
fnv1a(const std::string& s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace exp
} // namespace ibsim
