/**
 * @file
 * Declarative parameter sweeps: named axes expanded to a cartesian grid.
 *
 * A Sweep is a list of named axes, each holding numeric or string values.
 * cells() expands them row-major (the last axis varies fastest) into Cell
 * objects that a trial function reads by axis name. Every cell carries a
 * stable index, which is what SeedStream keys its disjoint seed streams
 * on — so adding an axis value changes seeds predictably instead of
 * overlapping neighbouring cells.
 */

#ifndef IBSIM_EXP_SWEEP_HH
#define IBSIM_EXP_SWEEP_HH

#include <cstddef>
#include <string>
#include <vector>

namespace ibsim {
namespace exp {

/** One axis value: numeric with a rendering, or a plain string. */
struct AxisValue
{
    double num = 0.0;
    std::string text;
    bool numeric = false;

    static AxisValue number(double v, int precision = -1);
    static AxisValue label(std::string s);
};

/** One named axis of a sweep. */
struct Axis
{
    std::string name;
    std::vector<AxisValue> values;
};

class Sweep;

/** One point of the expanded grid. */
class Cell
{
  public:
    Cell(const Sweep* sweep, std::size_t index,
         std::vector<std::size_t> value_indices);

    /** Flat cell index in the grid (row-major). */
    std::size_t index() const { return index_; }

    /** Numeric value of axis @p axis (throws if the axis is not numeric). */
    double num(const std::string& axis) const;

    /** Rendered value of axis @p axis (works for both kinds). */
    const std::string& str(const std::string& axis) const;

    /** Index of this cell's value along axis @p axis. */
    std::size_t valueIndex(const std::string& axis) const;

    /** "axis=value axis=value ..." for messages. */
    std::string label() const;

    const Sweep& sweep() const { return *sweep_; }

  private:
    const AxisValue& value(const std::string& axis) const;

    const Sweep* sweep_;
    std::size_t index_;
    std::vector<std::size_t> valueIndices_;  // parallel to sweep axes
};

/**
 * Builder for a cartesian parameter grid.
 */
class Sweep
{
  public:
    Sweep() = default;

    /** Add a numeric axis. @p precision controls the rendered form. */
    Sweep& axis(std::string name, std::vector<double> values,
                int precision = -1);

    /** Add a string axis. */
    Sweep& axis(std::string name, std::vector<std::string> values);

    /** Add a pre-built axis. */
    Sweep& axis(Axis a);

    /** Inclusive numeric range lo..hi in the given step. */
    static std::vector<double> range(double lo, double hi, double step);

    const std::vector<Axis>& axes() const { return axes_; }
    const Axis& axisNamed(const std::string& name) const;
    std::size_t axisIndex(const std::string& name) const;

    /** Number of grid cells (product of axis sizes; 1 when empty). */
    std::size_t cellCount() const;

    /** Expand the grid, row-major, last axis fastest. */
    std::vector<Cell> cells() const;

  private:
    std::vector<Axis> axes_;
};

} // namespace exp
} // namespace ibsim

#endif // IBSIM_EXP_SWEEP_HH
