#include "exp/trial_runner.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_set>

namespace ibsim {
namespace exp {

Metrics&
Metrics::set(const std::string& name, double value)
{
    for (auto& item : items_) {
        if (item.first == name) {
            item.second = value;
            return *this;
        }
    }
    items_.emplace_back(name, value);
    return *this;
}

double
Metrics::get(const std::string& name) const
{
    for (const auto& item : items_) {
        if (item.first == name)
            return item.second;
    }
    throw std::logic_error("no metric named '" + name + "'");
}

bool
Metrics::has(const std::string& name) const
{
    for (const auto& item : items_) {
        if (item.first == name)
            return true;
    }
    return false;
}

CellStats::CellStats(std::size_t index,
                     std::vector<std::pair<std::string, AxisValue>> axes)
    : index_(index), axes_(std::move(axes))
{}

double
CellStats::num(const std::string& axis) const
{
    for (const auto& a : axes_) {
        if (a.first == axis) {
            if (!a.second.numeric)
                throw std::logic_error("sweep axis '" + axis +
                                       "' is not numeric");
            return a.second.num;
        }
    }
    throw std::logic_error("no sweep axis named '" + axis + "'");
}

const std::string&
CellStats::str(const std::string& axis) const
{
    for (const auto& a : axes_) {
        if (a.first == axis)
            return a.second.text;
    }
    throw std::logic_error("no sweep axis named '" + axis + "'");
}

const Accumulator&
CellStats::metric(const std::string& name) const
{
    for (const auto& m : metrics_) {
        if (m.first == name)
            return m.second;
    }
    throw std::logic_error("no metric named '" + name + "'");
}

bool
CellStats::hasMetric(const std::string& name) const
{
    for (const auto& m : metrics_) {
        if (m.first == name)
            return true;
    }
    return false;
}

void
CellStats::accumulate(const Metrics& trial)
{
    for (const auto& [name, value] : trial.items()) {
        bool found = false;
        for (auto& m : metrics_) {
            if (m.first == name) {
                m.second.add(value);
                found = true;
                break;
            }
        }
        if (!found) {
            metrics_.emplace_back(name, Accumulator{});
            metrics_.back().second.add(value);
        }
    }
}

TrialRunner::TrialRunner(Options options)
    : options_(std::move(options)), jobs_(resolveJobs(options_.jobs))
{}

unsigned
TrialRunner::resolveJobs(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char* env = std::getenv("IBSIM_JOBS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

SweepResult
TrialRunner::run(const Sweep& sweep, std::size_t trials_per_cell,
                 const TrialFn& fn) const
{
    if (trials_per_cell == 0)
        throw std::logic_error("TrialRunner: trials_per_cell must be >= 1");

    const std::vector<Cell> cells = sweep.cells();
    const std::size_t total = cells.size() * trials_per_cell;

    // Pre-assign every trial its seed; the schedule is fixed before any
    // worker starts, so thread count and completion order cannot leak in.
    std::vector<std::uint64_t> seeds(total);
    for (std::size_t c = 0; c < cells.size(); ++c) {
        for (std::size_t t = 0; t < trials_per_cell; ++t)
            seeds[c * trials_per_cell + t] =
                options_.seeds.trialSeed(c, t);
    }

    if (options_.checkSeedDisjoint) {
        std::unordered_set<std::uint64_t> unique(seeds.begin(),
                                                 seeds.end());
        if (unique.size() != seeds.size())
            throw std::logic_error(
                "TrialRunner: seed collision inside one sweep -- two "
                "trials would sample identical noise");
    }

    // Workers write into pre-assigned slots; nothing is aggregated yet.
    std::vector<Metrics> slots(total);
    const unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(jobs_, total));

    auto work = [&](std::size_t i) {
        const std::size_t c = i / trials_per_cell;
        slots[i] = fn(cells[c], seeds[i]);
    };

    if (workers <= 1) {
        for (std::size_t i = 0; i < total; ++i)
            work(i);
    } else {
        std::atomic<std::size_t> next{0};
        std::atomic<bool> failed{false};
        std::exception_ptr error;
        std::mutex error_mutex;

        auto worker = [&] {
            for (;;) {
                if (failed.load(std::memory_order_relaxed))
                    return;
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= total)
                    return;
                try {
                    work(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(error_mutex);
                    if (!error)
                        error = std::current_exception();
                    failed.store(true, std::memory_order_relaxed);
                    return;
                }
            }
        };

        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            pool.emplace_back(worker);
        for (auto& th : pool)
            th.join();
        if (error)
            std::rethrow_exception(error);
    }

    // Sequential aggregation in (cell, trial) order: bit-identical to a
    // --jobs 1 run no matter how the slots were filled.
    SweepResult result;
    for (const auto& a : sweep.axes())
        result.axisNames.push_back(a.name);
    result.trialsPerCell = trials_per_cell;
    result.cells.reserve(cells.size());
    for (std::size_t c = 0; c < cells.size(); ++c) {
        std::vector<std::pair<std::string, AxisValue>> axes;
        axes.reserve(sweep.axes().size());
        for (const auto& a : sweep.axes())
            axes.emplace_back(
                a.name, a.values[cells[c].valueIndex(a.name)]);
        CellStats stats(c, std::move(axes));
        for (std::size_t t = 0; t < trials_per_cell; ++t)
            stats.accumulate(slots[c * trials_per_cell + t]);
        result.cells.push_back(std::move(stats));
    }
    return result;
}

} // namespace exp
} // namespace ibsim
