#include "exp/bench_main.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>

namespace ibsim {
namespace exp {

bool
parseCommonFlags(int argc, char** argv, RunContext& ctx,
                 std::vector<std::string>& rest)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--quick") {
            ctx.quick = true;
        } else if (arg == "--jobs") {
            const char* v = next();
            if (!v)
                return false;
            ctx.jobs = static_cast<unsigned>(
                std::strtoul(v, nullptr, 10));
        } else if (arg == "--seed") {
            const char* v = next();
            if (!v)
                return false;
            ctx.userSeed = std::strtoull(v, nullptr, 10);
        } else if (arg == "--json") {
            const char* v = next();
            if (!v)
                return false;
            ctx.jsonPath = v;
        } else if (arg == "--csv") {
            const char* v = next();
            if (!v)
                return false;
            ctx.csvPath = v;
        } else {
            rest.push_back(arg);
        }
    }
    return true;
}

int
runBenches(const Registry& registry,
           const std::vector<const BenchInfo*>& selection,
           const RunContext& ctx)
{
    (void)registry;
    if (selection.empty()) {
        std::fprintf(stderr, "no benches selected\n");
        return 1;
    }
    int failures = 0;
    for (const BenchInfo* bench : selection) {
        if (selection.size() > 1)
            std::printf("######## %s -- %s ########\n\n",
                        bench->name.c_str(), bench->title.c_str());
        const auto start = std::chrono::steady_clock::now();
        try {
            bench->fn(ctx);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "bench %s failed: %s\n",
                         bench->name.c_str(), e.what());
            ++failures;
            continue;
        }
        const double sec =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (selection.size() > 1)
            std::printf("-------- %s done in %.2f s --------\n\n",
                        bench->name.c_str(), sec);
    }
    return failures == 0 ? 0 : 1;
}

int
standaloneMain(int argc, char** argv, const Registry& registry,
               const std::string& bench_name)
{
    RunContext ctx;
    std::vector<std::string> rest;
    if (!parseCommonFlags(argc, argv, ctx, rest))
        return 2;
    for (const auto& arg : rest) {
        if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: %s [--quick] [--jobs N] [--seed N] "
                "[--json PATH] [--csv PATH]\n",
                argv[0]);
            return 0;
        }
        std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
        return 2;
    }
    const BenchInfo* bench = registry.find(bench_name);
    if (!bench) {
        std::fprintf(stderr, "bench '%s' is not registered\n",
                     bench_name.c_str());
        return 1;
    }
    return runBenches(registry, {bench}, ctx);
}

} // namespace exp
} // namespace ibsim
