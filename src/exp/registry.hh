/**
 * @file
 * Bench registry — every paper figure/table reproduction as a named,
 * discoverable entry that both the standalone bench binaries and the
 * multiplexed odp_bench_cli runner execute through one RunContext.
 */

#ifndef IBSIM_EXP_REGISTRY_HH
#define IBSIM_EXP_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exp/result_sink.hh"
#include "exp/trial_runner.hh"

namespace ibsim {
namespace exp {

/**
 * Everything a bench body needs: trial budget, parallelism, and output
 * routing. Built once by the CLI / standalone main and passed down.
 */
class RunContext
{
  public:
    bool quick = false;          ///< --quick: reduced trial budgets
    unsigned jobs = 0;           ///< --jobs: 0 = IBSIM_JOBS / hw threads
    std::uint64_t userSeed = 0;  ///< --seed: offsets every seed stream
    std::string jsonPath;        ///< --json: JSON-lines output file
    std::string csvPath;         ///< --csv: CSV mirror file

    /** Trial budget: the full count, or the quick count under --quick. */
    std::size_t
    trials(std::size_t full, std::size_t quick_count) const
    {
        return quick ? quick_count : full;
    }

    /** A runner whose seed stream is disjoint per bench name. */
    TrialRunner
    runner(const std::string& bench_name) const
    {
        TrialRunner::Options options;
        options.jobs = jobs;
        options.seeds = SeedStream(bench_name, userSeed);
        return TrialRunner(options);
    }

    /** A sink labelled with the bench name, wired to --json/--csv. */
    ResultSink
    sink(const std::string& bench_name) const
    {
        ResultSink::Options options;
        options.benchName = bench_name;
        options.jsonPath = jsonPath;
        options.csvPath = csvPath;
        return ResultSink(options);
    }
};

/** One registered bench. */
struct BenchInfo
{
    std::string name;   ///< short id: "fig4", "ablation_regcache", ...
    std::string title;  ///< one-line description for --list
    std::function<void(const RunContext&)> fn;
};

/**
 * The set of registered benches. Registration is explicit (no static
 * initializer tricks): bench/suite.cc registers every bench body.
 */
class Registry
{
  public:
    void add(BenchInfo info);

    const std::vector<BenchInfo>& benches() const { return benches_; }

    /** Exact-name lookup; nullptr when absent. */
    const BenchInfo* find(const std::string& name) const;

    /** All benches matching a comma-separated glob list, in order. */
    std::vector<const BenchInfo*> match(const std::string& patterns) const;

  private:
    std::vector<BenchInfo> benches_;
};

/** '*' / '?' glob match (no character classes). */
bool globMatch(const std::string& pattern, const std::string& text);

} // namespace exp
} // namespace ibsim

#endif // IBSIM_EXP_REGISTRY_HH
