#include "exp/sweep.hh"

#include <cstdio>
#include <stdexcept>

namespace ibsim {
namespace exp {

namespace {

std::string
renderNumber(double v, int precision)
{
    char buf[64];
    if (precision >= 0) {
        std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    } else {
        // Shortest form that still reads as the value: %g.
        std::snprintf(buf, sizeof(buf), "%g", v);
    }
    return buf;
}

} // namespace

AxisValue
AxisValue::number(double v, int precision)
{
    AxisValue a;
    a.num = v;
    a.text = renderNumber(v, precision);
    a.numeric = true;
    return a;
}

AxisValue
AxisValue::label(std::string s)
{
    AxisValue a;
    a.text = std::move(s);
    a.numeric = false;
    return a;
}

Cell::Cell(const Sweep* sweep, std::size_t index,
           std::vector<std::size_t> value_indices)
    : sweep_(sweep), index_(index), valueIndices_(std::move(value_indices))
{}

const AxisValue&
Cell::value(const std::string& axis) const
{
    const std::size_t i = sweep_->axisIndex(axis);
    return sweep_->axes()[i].values[valueIndices_[i]];
}

double
Cell::num(const std::string& axis) const
{
    const AxisValue& v = value(axis);
    if (!v.numeric)
        throw std::logic_error("sweep axis '" + axis + "' is not numeric");
    return v.num;
}

const std::string&
Cell::str(const std::string& axis) const
{
    return value(axis).text;
}

std::size_t
Cell::valueIndex(const std::string& axis) const
{
    return valueIndices_[sweep_->axisIndex(axis)];
}

std::string
Cell::label() const
{
    std::string out;
    for (std::size_t i = 0; i < sweep_->axes().size(); ++i) {
        if (!out.empty())
            out += ' ';
        out += sweep_->axes()[i].name + '=' +
               sweep_->axes()[i].values[valueIndices_[i]].text;
    }
    return out;
}

Sweep&
Sweep::axis(std::string name, std::vector<double> values, int precision)
{
    Axis a;
    a.name = std::move(name);
    a.values.reserve(values.size());
    for (double v : values)
        a.values.push_back(AxisValue::number(v, precision));
    return axis(std::move(a));
}

Sweep&
Sweep::axis(std::string name, std::vector<std::string> values)
{
    Axis a;
    a.name = std::move(name);
    a.values.reserve(values.size());
    for (auto& v : values)
        a.values.push_back(AxisValue::label(std::move(v)));
    return axis(std::move(a));
}

Sweep&
Sweep::axis(Axis a)
{
    if (a.values.empty())
        throw std::logic_error("sweep axis '" + a.name + "' is empty");
    axes_.push_back(std::move(a));
    return *this;
}

std::vector<double>
Sweep::range(double lo, double hi, double step)
{
    std::vector<double> out;
    // A half-step epsilon keeps the classic `<= 6.01` inclusive endpoints
    // without accumulating float drift into an extra cell.
    for (double v = lo; v <= hi + step * 0.5; v += step)
        out.push_back(v);
    return out;
}

const Axis&
Sweep::axisNamed(const std::string& name) const
{
    return axes_[axisIndex(name)];
}

std::size_t
Sweep::axisIndex(const std::string& name) const
{
    for (std::size_t i = 0; i < axes_.size(); ++i) {
        if (axes_[i].name == name)
            return i;
    }
    throw std::logic_error("no sweep axis named '" + name + "'");
}

std::size_t
Sweep::cellCount() const
{
    std::size_t n = 1;
    for (const auto& a : axes_)
        n *= a.values.size();
    return n;
}

std::vector<Cell>
Sweep::cells() const
{
    const std::size_t count = cellCount();
    std::vector<Cell> out;
    out.reserve(count);
    std::vector<std::size_t> idx(axes_.size(), 0);
    for (std::size_t flat = 0; flat < count; ++flat) {
        out.emplace_back(this, flat, idx);
        // Row-major increment: last axis fastest.
        for (std::size_t a = axes_.size(); a-- > 0;) {
            if (++idx[a] < axes_[a].values.size())
                break;
            idx[a] = 0;
        }
    }
    return out;
}

} // namespace exp
} // namespace ibsim
