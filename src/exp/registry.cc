#include "exp/registry.hh"

#include <stdexcept>

namespace ibsim {
namespace exp {

void
Registry::add(BenchInfo info)
{
    if (find(info.name))
        throw std::logic_error("bench '" + info.name +
                               "' registered twice");
    benches_.push_back(std::move(info));
}

const BenchInfo*
Registry::find(const std::string& name) const
{
    for (const auto& b : benches_) {
        if (b.name == name)
            return &b;
    }
    return nullptr;
}

std::vector<const BenchInfo*>
Registry::match(const std::string& patterns) const
{
    // Split the comma-separated pattern list.
    std::vector<std::string> parts;
    std::string current;
    for (char c : patterns) {
        if (c == ',') {
            if (!current.empty())
                parts.push_back(current);
            current.clear();
        } else {
            current += c;
        }
    }
    if (!current.empty())
        parts.push_back(current);

    std::vector<const BenchInfo*> out;
    for (const auto& b : benches_) {
        for (const auto& p : parts) {
            if (globMatch(p, b.name)) {
                out.push_back(&b);
                break;
            }
        }
    }
    return out;
}

bool
globMatch(const std::string& pattern, const std::string& text)
{
    // Iterative glob with single-star backtracking.
    std::size_t p = 0, t = 0;
    std::size_t star = std::string::npos, mark = 0;
    while (t < text.size()) {
        if (p < pattern.size() &&
            (pattern[p] == '?' || pattern[p] == text[t])) {
            ++p;
            ++t;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            mark = t;
        } else if (star != std::string::npos) {
            p = star + 1;
            t = ++mark;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

} // namespace exp
} // namespace ibsim
