#include "exp/result_sink.hh"

#include <cstdlib>

namespace ibsim {
namespace exp {

namespace {

std::string
fmtDouble(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

/**
 * Canonical JSON number rendering: %.17g round-trips doubles exactly, so
 * two bit-identical runs produce byte-identical JSON lines.
 */
std::string
jsonNumber(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

MetricColumn
col(std::string metric, Stat stat, int precision, std::string header)
{
    MetricColumn c;
    c.metric = std::move(metric);
    c.stat = stat;
    c.precision = precision;
    c.header = std::move(header);
    return c;
}

double
statOf(const Accumulator& acc, Stat stat)
{
    switch (stat) {
    case Stat::Mean: return acc.mean();
    case Stat::Min: return acc.min();
    case Stat::Max: return acc.max();
    case Stat::Sum: return acc.sum();
    case Stat::Stddev: return acc.stddev();
    case Stat::Count: return static_cast<double>(acc.count());
    case Stat::PctMean: return 100.0 * acc.mean();
    case Stat::P95: return acc.percentile(95.0);
    }
    return 0.0;
}

const char*
statName(Stat stat)
{
    switch (stat) {
    case Stat::Mean: return "mean";
    case Stat::Min: return "min";
    case Stat::Max: return "max";
    case Stat::Sum: return "sum";
    case Stat::Stddev: return "stddev";
    case Stat::Count: return "count";
    case Stat::PctMean: return "pct";
    case Stat::P95: return "p95";
    }
    return "?";
}

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

ResultSink::ResultSink(Options options) : options_(std::move(options))
{
    jsonPath_ = options_.jsonPath;
    if (jsonPath_.empty()) {
        if (const char* env = std::getenv("IBSIM_JSON"))
            jsonPath_ = env;
    }
    csvPath_ = options_.csvPath;
    if (csvPath_.empty()) {
        if (const char* env = std::getenv("IBSIM_CSV"))
            csvPath_ = env;
    }
}

void
ResultSink::printRow(const std::vector<std::string>& cells,
                     std::size_t width) const
{
    if (options_.quiet)
        return;
    for (const auto& c : cells)
        std::printf("%-*s", static_cast<int>(width), c.c_str());
    std::printf("\n");
}

void
ResultSink::appendCsv(const std::string& section,
                      const std::vector<std::string>& cells) const
{
    if (csvPath_.empty())
        return;
    std::FILE* f = std::fopen(csvPath_.c_str(), "a");
    if (!f)
        return;
    std::fprintf(f, "%s,%s", options_.benchName.c_str(), section.c_str());
    for (const auto& c : cells)
        std::fprintf(f, ",%s", c.c_str());
    std::fprintf(f, "\n");
    std::fclose(f);
}

void
ResultSink::writeJson(const std::string& section, const SweepResult& result)
{
    if (jsonPath_.empty())
        return;
    std::FILE* f = std::fopen(jsonPath_.c_str(), "a");
    if (!f)
        return;
    for (const CellStats& cell : result.cells) {
        std::string line = "{\"bench\":\"" +
                           jsonEscape(options_.benchName) +
                           "\",\"section\":\"" + jsonEscape(section) +
                           "\",\"cell\":" + std::to_string(cell.index()) +
                           ",\"trials\":" +
                           std::to_string(result.trialsPerCell) +
                           ",\"params\":{";
        bool first = true;
        for (const auto& [name, value] : cell.axes()) {
            if (!first)
                line += ',';
            first = false;
            line += '"' + jsonEscape(name) + "\":";
            if (value.numeric)
                line += jsonNumber(value.num);
            else
                line += '"' + jsonEscape(value.text) + '"';
        }
        line += "},\"metrics\":{";
        first = true;
        for (const auto& [name, acc] : cell.metrics()) {
            if (!first)
                line += ',';
            first = false;
            line += '"' + jsonEscape(name) + "\":{\"mean\":" +
                    jsonNumber(acc.mean()) + ",\"min\":" +
                    jsonNumber(acc.min()) + ",\"max\":" +
                    jsonNumber(acc.max()) + ",\"stddev\":" +
                    jsonNumber(acc.stddev()) + ",\"count\":" +
                    std::to_string(acc.count()) + '}';
        }
        line += "}}";
        std::fprintf(f, "%s\n", line.c_str());
    }
    std::fclose(f);
}

void
ResultSink::table(const std::string& section, const SweepResult& result,
                  const std::vector<MetricColumn>& columns)
{
    if (!options_.quiet && !section.empty())
        std::printf("== %s ==\n\n", section.c_str());

    std::vector<std::string> headers = result.axisNames;
    for (const auto& c : columns)
        headers.push_back(c.header.empty()
                              ? c.metric + '_' + statName(c.stat)
                              : c.header);
    printRow(headers, options_.columnWidth);
    if (!options_.quiet) {
        for (std::size_t i = 0; i < headers.size() * options_.columnWidth;
             ++i)
            std::printf("-");
        std::printf("\n");
    }
    appendCsv(section, headers);

    for (const CellStats& cell : result.cells) {
        std::vector<std::string> cells;
        cells.reserve(headers.size());
        for (const auto& [name, value] : cell.axes()) {
            (void)name;
            cells.push_back(value.text);
        }
        for (const auto& c : columns)
            cells.push_back(
                fmtDouble(statOf(cell.metric(c.metric), c.stat),
                          c.precision));
        printRow(cells, options_.columnWidth);
        appendCsv(section, cells);
    }
    if (!options_.quiet)
        std::printf("\n");

    writeJson(section, result);
}

void
ResultSink::pivot(const std::string& section, const SweepResult& result,
                  const std::string& row_axis, const std::string& col_axis,
                  const MetricColumn& metric)
{
    if (!options_.quiet && !section.empty())
        std::printf("== %s ==\n\n", section.c_str());

    // Collect the distinct values of both axes in first-seen order (the
    // grid is row-major, so this preserves the declared axis order).
    std::vector<std::string> rows;
    std::vector<std::string> cols;
    for (const CellStats& cell : result.cells) {
        const std::string& r = cell.str(row_axis);
        const std::string& c = cell.str(col_axis);
        bool seen = false;
        for (const auto& v : rows)
            seen = seen || v == r;
        if (!seen)
            rows.push_back(r);
        seen = false;
        for (const auto& v : cols)
            seen = seen || v == c;
        if (!seen)
            cols.push_back(c);
    }

    std::vector<std::string> headers{row_axis};
    const std::string base = metric.header.empty()
                                 ? metric.metric + '_' + statName(metric.stat)
                                 : metric.header;
    for (const auto& c : cols)
        headers.push_back(col_axis + '=' + c);
    if (!options_.quiet)
        std::printf("(%s)\n", base.c_str());
    printRow(headers, options_.columnWidth);
    if (!options_.quiet) {
        for (std::size_t i = 0; i < headers.size() * options_.columnWidth;
             ++i)
            std::printf("-");
        std::printf("\n");
    }
    appendCsv(section, headers);

    for (const auto& r : rows) {
        std::vector<std::string> line{r};
        for (const auto& c : cols) {
            for (const CellStats& cell : result.cells) {
                if (cell.str(row_axis) == r && cell.str(col_axis) == c) {
                    line.push_back(
                        fmtDouble(statOf(cell.metric(metric.metric),
                                         metric.stat),
                                  metric.precision));
                    break;
                }
            }
        }
        printRow(line, options_.columnWidth);
        appendCsv(section, line);
    }
    if (!options_.quiet)
        std::printf("\n");

    writeJson(section, result);
}

void
ResultSink::note(const std::string& text)
{
    if (!options_.quiet)
        std::printf("%s\n", text.c_str());
}

void
ResultSink::blank()
{
    if (!options_.quiet)
        std::printf("\n");
}

void
ResultSink::jsonOnly(const std::string& section, const SweepResult& result)
{
    writeJson(section, result);
}

} // namespace exp
} // namespace ibsim
