/**
 * @file
 * Disjoint deterministic seed streams for parallel experiments.
 *
 * Every trial of a parameter sweep needs its own RNG seed, and no two
 * trials anywhere in the sweep may share one — otherwise two sweep cells
 * sample correlated noise and the "probability out of 10 trials" figures
 * silently lose independence (the bug the old per-bench seed arithmetic
 * like `d * 1000 + interval_ms * 40` was one rounding away from).
 *
 * SeedStream derives seeds with a SplitMix64-style finalizer, which is a
 * bijection on 64-bit integers. Distinct (cell, trial) pairs are packed
 * into distinct 64-bit words before mixing, so for a fixed base the
 * resulting seeds are provably pairwise distinct as long as cell and trial
 * indices each fit in 32 bits — far beyond any sweep here.
 */

#ifndef IBSIM_EXP_SEED_STREAM_HH
#define IBSIM_EXP_SEED_STREAM_HH

#include <cstdint>
#include <string>

namespace ibsim {
namespace exp {

/** SplitMix64 output finalizer; a bijection on uint64. */
std::uint64_t splitmix64(std::uint64_t x);

/** FNV-1a hash of a string; used to give each bench its own seed base. */
std::uint64_t fnv1a(const std::string& s);

/**
 * A family of pairwise-disjoint seeds indexed by (cell, trial).
 */
class SeedStream
{
  public:
    explicit SeedStream(std::uint64_t base) : base_(splitmix64(base)) {}

    /** Seed base from a bench name plus a user-supplied offset. */
    SeedStream(const std::string& bench_name, std::uint64_t user_seed)
        : SeedStream(fnv1a(bench_name) ^ splitmix64(user_seed))
    {}

    /**
     * The seed of trial @p trial in sweep cell @p cell. Injective in
     * (cell, trial) for cell, trial < 2^32 at fixed base.
     */
    std::uint64_t
    trialSeed(std::uint64_t cell, std::uint64_t trial) const
    {
        return splitmix64(base_ ^ splitmix64((cell << 32) | trial));
    }

    std::uint64_t base() const { return base_; }

  private:
    std::uint64_t base_;
};

} // namespace exp
} // namespace ibsim

#endif // IBSIM_EXP_SEED_STREAM_HH
