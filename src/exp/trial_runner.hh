/**
 * @file
 * TrialRunner — thread-pooled, deterministic execution of trial grids.
 *
 * Every (cell, trial) pair of a Sweep is an independent simulation: each
 * trial builds its own Cluster and EventQueue, so trials are
 * embarrassingly parallel. TrialRunner fans them out over a std::thread
 * pool (size from --jobs / IBSIM_JOBS / hardware concurrency) while
 * guaranteeing that results are **bit-identical to a sequential run**:
 *
 *   - each trial's seed comes from a SeedStream keyed on (cell, trial),
 *     never from which thread or in which order it ran;
 *   - per-trial metric values are stored into pre-assigned slots, then
 *     accumulated on the calling thread in (cell, trial) order.
 *
 * The runner also rejects seed collisions outright: if any two trials of
 * a sweep would share a seed (impossible with SeedStream, but cheap to
 * prove per run), it throws instead of producing correlated statistics.
 */

#ifndef IBSIM_EXP_TRIAL_RUNNER_HH
#define IBSIM_EXP_TRIAL_RUNNER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "exp/seed_stream.hh"
#include "exp/sweep.hh"
#include "simcore/stats.hh"

namespace ibsim {
namespace exp {

/**
 * Ordered name -> value metric samples returned by one trial.
 */
class Metrics
{
  public:
    /** Set (or overwrite) one metric sample. */
    Metrics& set(const std::string& name, double value);

    /** Convenience for booleans rendered as 0/1 (probability metrics). */
    Metrics& set(const std::string& name, bool value)
    {
        return set(name, value ? 1.0 : 0.0);
    }

    double get(const std::string& name) const;
    bool has(const std::string& name) const;

    const std::vector<std::pair<std::string, double>>&
    items() const
    {
        return items_;
    }

  private:
    std::vector<std::pair<std::string, double>> items_;
};

/**
 * Aggregated statistics of one sweep cell. Self-contained: axis values
 * are copied out of the Sweep, so results can outlive it.
 */
class CellStats
{
  public:
    CellStats(std::size_t index,
              std::vector<std::pair<std::string, AxisValue>> axes);

    std::size_t index() const { return index_; }

    /** @{ Axis accessors, mirroring Cell. */
    double num(const std::string& axis) const;
    const std::string& str(const std::string& axis) const;
    /** @} */

    const std::vector<std::pair<std::string, AxisValue>>&
    axes() const
    {
        return axes_;
    }

    /** Accumulated samples of one metric (throws on unknown name). */
    const Accumulator& metric(const std::string& name) const;
    bool hasMetric(const std::string& name) const;

    /** Metric accumulators in first-trial insertion order. */
    const std::vector<std::pair<std::string, Accumulator>>&
    metrics() const
    {
        return metrics_;
    }

    /** Used by TrialRunner during aggregation. */
    void accumulate(const Metrics& trial);

  private:
    std::size_t index_;
    std::vector<std::pair<std::string, AxisValue>> axes_;
    std::vector<std::pair<std::string, Accumulator>> metrics_;
};

/** All cells of one sweep run, in grid order. */
struct SweepResult
{
    std::vector<std::string> axisNames;
    std::size_t trialsPerCell = 0;
    std::vector<CellStats> cells;

    /** The cell whose axis values match the given (name, text) pairs. */
    const CellStats& cell(std::size_t index) const { return cells[index]; }
};

/** The per-trial body: pure function of the cell parameters and seed. */
using TrialFn = std::function<Metrics(const Cell&, std::uint64_t seed)>;

class TrialRunner
{
  public:
    struct Options
    {
        /** Worker threads; 0 resolves IBSIM_JOBS, then hw concurrency. */
        unsigned jobs = 0;

        /** Seed-stream base; use {benchName, userSeed} in benches. */
        SeedStream seeds{0};

        /** Prove per-run that no two trials share a seed. */
        bool checkSeedDisjoint = true;
    };

    TrialRunner() : TrialRunner(Options{}) {}
    explicit TrialRunner(Options options);

    /**
     * Run @p trials_per_cell trials of @p fn for every cell of @p sweep.
     * @p fn must be a pure function of (cell, seed) and must not touch
     * shared mutable state; it runs concurrently on worker threads.
     */
    SweepResult run(const Sweep& sweep, std::size_t trials_per_cell,
                    const TrialFn& fn) const;

    /** The resolved worker count this runner will use. */
    unsigned jobs() const { return jobs_; }

    /**
     * Resolve a requested job count: 0 falls back to the IBSIM_JOBS
     * environment variable, then to std::thread::hardware_concurrency().
     */
    static unsigned resolveJobs(unsigned requested);

  private:
    Options options_;
    unsigned jobs_;
};

} // namespace exp
} // namespace ibsim

#endif // IBSIM_EXP_TRIAL_RUNNER_HH
