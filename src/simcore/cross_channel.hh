/**
 * @file
 * A mutex-guarded cross-island channel with a lock-free readiness probe.
 *
 * One CrossChannel sits on every directed (source island, destination
 * island) edge that a BarrierAgent routes work along (the fabric's
 * parcels, the invariant monitor's deferred checks). The producer is the
 * worker currently executing the source island; the consumer is the
 * worker currently executing the destination island — under pairwise
 * channel clocks those run concurrently, so unlike the PR-6 design there
 * is no phase barrier separating writes from drains and the buffer needs
 * a real lock.
 *
 * The lock is cold in practice: minKey caches the smallest key buffered,
 * so a consumer polling for work (inboundEarliest, or a flush whose
 * threshold is below everything buffered) costs one relaxed-ish atomic
 * load and never touches the mutex. Correctness of the probe does not
 * depend on seeing a concurrent push: the kernel publishes an island's
 * clock *after* its sends with a release store and consumers read clocks
 * with an acquire load *before* probing channels, so every item at or
 * below the consumer's safe horizon is already visible by the time the
 * horizon permits consuming it (the channel-clock soundness argument in
 * DESIGN.md §12.b).
 */

#ifndef IBSIM_SIMCORE_CROSS_CHANNEL_HH
#define IBSIM_SIMCORE_CROSS_CHANNEL_HH

#include <atomic>
#include <cstdint>
#include <limits>
#include <mutex>
#include <utility>
#include <vector>

namespace ibsim {

template <typename T>
class CrossChannel
{
  public:
    static constexpr std::int64_t kEmpty =
        std::numeric_limits<std::int64_t>::max();

    /** Stage one item keyed by its (virtual-time) threshold key. */
    void
    push(std::int64_t key, T&& item)
    {
        std::lock_guard<std::mutex> lock(m_);
        buf_.push_back(std::move(item));
        if (key < minKey_.load(std::memory_order_relaxed))
            minKey_.store(key, std::memory_order_release);
    }

    /** Smallest key buffered (kEmpty when none) — lock-free probe. */
    std::int64_t
    minKey() const
    {
        return minKey_.load(std::memory_order_acquire);
    }

    /**
     * Move every item with key(item) <= threshold into @p out, preserving
     * push order (the producer island's deterministic execution order).
     * @p key extracts the threshold key from an item.
     */
    template <typename KeyFn>
    void
    drainUpTo(std::int64_t threshold, KeyFn key, std::vector<T>& out)
    {
        if (minKey() > threshold)
            return;
        std::lock_guard<std::mutex> lock(m_);
        std::size_t keep = 0;
        std::int64_t rest = kEmpty;
        for (std::size_t i = 0; i < buf_.size(); ++i) {
            const std::int64_t k = key(buf_[i]);
            if (k <= threshold) {
                out.push_back(std::move(buf_[i]));
            } else {
                rest = std::min(rest, k);
                if (keep != i)
                    buf_[keep] = std::move(buf_[i]);
                ++keep;
            }
        }
        buf_.resize(keep);
        minKey_.store(rest, std::memory_order_release);
    }

    /** Buffered item count (consumer-side observability; takes the lock). */
    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(m_);
        return buf_.size();
    }

  private:
    mutable std::mutex m_;
    std::vector<T> buf_;
    std::atomic<std::int64_t> minKey_{kEmpty};
};

} // namespace ibsim

#endif // IBSIM_SIMCORE_CROSS_CHANNEL_HH
