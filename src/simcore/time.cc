#include "simcore/time.hh"

#include <cmath>
#include <cstdio>

namespace ibsim {

std::string
Time::str() const
{
    char buf[64];
    const double ns = static_cast<double>(ns_);
    if (std::llabs(ns_) < 1000) {
        std::snprintf(buf, sizeof(buf), "%lld ns",
                      static_cast<long long>(ns_));
    } else if (std::llabs(ns_) < 1000 * 1000) {
        std::snprintf(buf, sizeof(buf), "%.2f us", ns / 1e3);
    } else if (std::llabs(ns_) < 1000ll * 1000 * 1000) {
        std::snprintf(buf, sizeof(buf), "%.3f ms", ns / 1e6);
    } else {
        std::snprintf(buf, sizeof(buf), "%.3f s", ns / 1e9);
    }
    return buf;
}

} // namespace ibsim
