#include "simcore/stats.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace ibsim {

void
Accumulator::add(double v)
{
    samples_.push_back(v);
    sorted_ = false;
}

void
Accumulator::ensureSorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
Accumulator::mean() const
{
    if (samples_.empty())
        return 0.0;
    return sum() / static_cast<double>(samples_.size());
}

double
Accumulator::sum() const
{
    return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double
Accumulator::stddev() const
{
    const std::size_t n = samples_.size();
    if (n < 2)
        return 0.0;
    const double m = mean();
    double acc = 0.0;
    for (double v : samples_)
        acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(n - 1));
}

double
Accumulator::min() const
{
    ensureSorted();
    return samples_.empty() ? 0.0 : samples_.front();
}

double
Accumulator::max() const
{
    ensureSorted();
    return samples_.empty() ? 0.0 : samples_.back();
}

double
Accumulator::percentile(double p) const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    if (samples_.size() == 1)
        return samples_.front();
    const double rank =
        p / 100.0 * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - std::floor(rank);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0)
{
    assert(hi > lo && buckets > 0);
}

void
Histogram::add(double v)
{
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    auto idx = static_cast<std::int64_t>(std::floor((v - lo_) / width));
    idx = std::clamp<std::int64_t>(
        idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
}

double
Histogram::bucketLo(std::size_t bucket) const
{
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + width * static_cast<double>(bucket);
}

double
Histogram::bucketHi(std::size_t bucket) const
{
    return bucketLo(bucket + 1);
}

std::string
Histogram::str(std::size_t bar_width) const
{
    std::string out;
    const std::size_t peak =
        *std::max_element(counts_.begin(), counts_.end());
    char line[256];
    for (std::size_t b = 0; b < counts_.size(); ++b) {
        std::size_t bar = 0;
        if (peak > 0)
            bar = counts_[b] * bar_width / peak;
        std::snprintf(line, sizeof(line), "%10.3f..%-10.3f %6zu |",
                      bucketLo(b), bucketHi(b), counts_[b]);
        out += line;
        out.append(bar, '#');
        out += '\n';
    }
    return out;
}

} // namespace ibsim
