/**
 * @file
 * Virtual simulation time.
 *
 * All of ibsim runs in virtual time with nanosecond resolution. Time is a
 * strongly-typed wrapper around a signed 64-bit nanosecond count so that
 * durations and instants cannot be confused with plain integers, and so the
 * paper's microsecond/millisecond parameters read naturally at call sites
 * (e.g. Time::ms(1.28) for the minimal RNR NAK delay).
 */

#ifndef IBSIM_SIMCORE_TIME_HH
#define IBSIM_SIMCORE_TIME_HH

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace ibsim {

/**
 * A point in (or span of) virtual time, in nanoseconds.
 *
 * The same type is used for instants and durations, mirroring common
 * simulator practice (gem5 Tick). Arithmetic saturates nowhere; 64-bit
 * nanoseconds cover ~292 years of simulated time, far beyond any run here.
 */
class Time
{
  public:
    constexpr Time() : ns_(0) {}

    /** Construct from a raw nanosecond count. */
    static constexpr Time
    fromNs(std::int64_t ns)
    {
        Time t;
        t.ns_ = ns;
        return t;
    }

    /** @{ Named constructors for common units. */
    static constexpr Time ns(std::int64_t v) { return fromNs(v); }
    static constexpr Time us(double v)
    {
        return fromNs(static_cast<std::int64_t>(v * 1e3));
    }
    static constexpr Time ms(double v)
    {
        return fromNs(static_cast<std::int64_t>(v * 1e6));
    }
    static constexpr Time sec(double v)
    {
        return fromNs(static_cast<std::int64_t>(v * 1e9));
    }
    /** @} */

    /** The largest representable time; used as "never". */
    static constexpr Time
    max()
    {
        return fromNs(std::numeric_limits<std::int64_t>::max());
    }

    /** @{ Unit accessors. */
    constexpr std::int64_t toNs() const { return ns_; }
    constexpr double toUs() const { return static_cast<double>(ns_) / 1e3; }
    constexpr double toMs() const { return static_cast<double>(ns_) / 1e6; }
    constexpr double toSec() const { return static_cast<double>(ns_) / 1e9; }
    /** @} */

    constexpr auto operator<=>(const Time&) const = default;

    constexpr Time operator+(Time o) const { return fromNs(ns_ + o.ns_); }
    constexpr Time operator-(Time o) const { return fromNs(ns_ - o.ns_); }
    constexpr Time& operator+=(Time o) { ns_ += o.ns_; return *this; }
    constexpr Time& operator-=(Time o) { ns_ -= o.ns_; return *this; }

    constexpr Time
    operator*(double f) const
    {
        return fromNs(static_cast<std::int64_t>(
            static_cast<double>(ns_) * f));
    }

    constexpr Time
    operator/(double f) const
    {
        return fromNs(static_cast<std::int64_t>(
            static_cast<double>(ns_) / f));
    }

    /** Ratio of two durations. */
    constexpr double
    ratio(Time o) const
    {
        return static_cast<double>(ns_) / static_cast<double>(o.ns_);
    }

    /** Human-readable rendering with an auto-selected unit. */
    std::string str() const;

  private:
    std::int64_t ns_;
};

} // namespace ibsim

#endif // IBSIM_SIMCORE_TIME_HH
