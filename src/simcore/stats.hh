/**
 * @file
 * Small statistics toolkit for experiment results.
 *
 * Accumulator collects summary statistics of a sample (mean, stddev, min,
 * max, percentiles); Histogram buckets samples for the distribution plots
 * (paper Fig. 12). Both are deliberately simple value types that the bench
 * harnesses print directly.
 */

#ifndef IBSIM_SIMCORE_STATS_HH
#define IBSIM_SIMCORE_STATS_HH

#include <cstddef>
#include <string>
#include <vector>

namespace ibsim {

/**
 * Accumulates a sample of doubles and reports summary statistics.
 */
class Accumulator
{
  public:
    void add(double v);

    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    double mean() const;
    /** Sample standard deviation (n - 1 denominator); 0 for n < 2. */
    double stddev() const;
    double min() const;
    double max() const;
    double sum() const;
    /** Linear-interpolated percentile, p in [0, 100]. */
    double percentile(double p) const;
    double median() const { return percentile(50.0); }

    const std::vector<double>& samples() const { return samples_; }

  private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;

    void ensureSorted() const;
};

/**
 * Fixed-width histogram over [lo, hi) with out-of-range samples clamped to
 * the edge buckets.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets);

    void add(double v);

    std::size_t buckets() const { return counts_.size(); }
    std::size_t count(std::size_t bucket) const { return counts_[bucket]; }
    std::size_t total() const { return total_; }
    double bucketLo(std::size_t bucket) const;
    double bucketHi(std::size_t bucket) const;

    /** Render as rows of "lo..hi count" plus an ASCII bar. */
    std::string str(std::size_t bar_width = 40) const;

  private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

} // namespace ibsim

#endif // IBSIM_SIMCORE_STATS_HH
