#include "simcore/log.hh"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <set>

namespace ibsim {
namespace log {

namespace {

// The component-tag registry is process-global, and concurrent trials
// (exp::TrialRunner workers) call enabled() on every trace site.  A
// lock-free "is anything enabled at all" fast path keeps the common case
// (tracing off) at one relaxed atomic load; the set itself is guarded by
// a mutex for the rare enable/disable and the traced slow path.
std::atomic<bool> anyEnabled{false};

std::mutex&
registryMutex()
{
    static std::mutex m;
    return m;
}

std::set<std::string>&
enabledSet()
{
    static std::set<std::string> s;
    return s;
}

} // namespace

void
enable(const std::string& component)
{
    std::lock_guard<std::mutex> lock(registryMutex());
    enabledSet().insert(component);
    anyEnabled.store(true, std::memory_order_release);
}

void
disableAll()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    enabledSet().clear();
    anyEnabled.store(false, std::memory_order_release);
}

bool
enabled(const std::string& component)
{
    if (!anyEnabled.load(std::memory_order_acquire))
        return false;
    std::lock_guard<std::mutex> lock(registryMutex());
    const auto& s = enabledSet();
    return s.count("*") > 0 || s.count(component) > 0;
}

void
trace(Time when, const std::string& component, const std::string& message)
{
    if (!enabled(component))
        return;
    // One fprintf per line keeps lines from interleaving across threads.
    char buf[512];
    std::snprintf(buf, sizeof(buf), "[%12s] %-8s %s\n",
                  when.str().c_str(), component.c_str(), message.c_str());
    std::fputs(buf, stderr);
}

} // namespace log
} // namespace ibsim
