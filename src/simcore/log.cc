#include "simcore/log.hh"

#include <cstdio>
#include <set>

namespace ibsim {
namespace log {

namespace {

std::set<std::string>&
enabledSet()
{
    static std::set<std::string> s;
    return s;
}

} // namespace

void
enable(const std::string& component)
{
    enabledSet().insert(component);
}

void
disableAll()
{
    enabledSet().clear();
}

bool
enabled(const std::string& component)
{
    const auto& s = enabledSet();
    return s.count("*") > 0 || s.count(component) > 0;
}

void
trace(Time when, const std::string& component, const std::string& message)
{
    if (!enabled(component))
        return;
    std::fprintf(stderr, "[%12s] %-8s %s\n", when.str().c_str(),
                 component.c_str(), message.c_str());
}

} // namespace log
} // namespace ibsim
