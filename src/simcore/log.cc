#include "simcore/log.hh"

#include <cstdio>
#include <mutex>
#include <set>
#include <vector>

namespace ibsim {
namespace log {

namespace {

// The component-tag registry is process-global, and concurrent trials
// (exp::TrialRunner workers) call enabled() on every trace site.  The
// registered Component handles cache their enabled state in an atomic
// flag (one relaxed load on the hot path); the string-keyed set backs the
// legacy API and seeds the flag of late-constructed handles.  Both are
// guarded by a mutex on the rare enable/disable/construct paths.
std::atomic<bool> anyEnabled{false};
std::atomic<std::uint64_t> emitted{0};

std::mutex&
registryMutex()
{
    static std::mutex m;
    return m;
}

std::set<std::string>&
enabledSet()
{
    static std::set<std::string> s;
    return s;
}

std::vector<Component*>&
components()
{
    static std::vector<Component*> v;
    return v;
}

/** Caller must hold registryMutex(). */
bool
enabledLocked(const std::string& component)
{
    const auto& s = enabledSet();
    return s.count("*") > 0 || s.count(component) > 0;
}

} // namespace

Component::Component(const char* tag) : tag_(tag)
{
    std::lock_guard<std::mutex> lock(registryMutex());
    components().push_back(this);
    flag_.store(enabledLocked(tag), std::memory_order_relaxed);
}

void
enable(const std::string& component)
{
    std::lock_guard<std::mutex> lock(registryMutex());
    enabledSet().insert(component);
    for (Component* c : components()) {
        if (component == "*" || component == c->tag_)
            c->flag_.store(true, std::memory_order_relaxed);
    }
    anyEnabled.store(true, std::memory_order_release);
}

void
disableAll()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    enabledSet().clear();
    for (Component* c : components())
        c->flag_.store(false, std::memory_order_relaxed);
    anyEnabled.store(false, std::memory_order_release);
}

bool
enabled(const std::string& component)
{
    if (!anyEnabled.load(std::memory_order_acquire))
        return false;
    std::lock_guard<std::mutex> lock(registryMutex());
    return enabledLocked(component);
}

namespace {

void
emitLine(Time when, const char* component, const std::string& message)
{
    emitted.fetch_add(1, std::memory_order_relaxed);
    // One fprintf per line keeps lines from interleaving across threads.
    char buf[512];
    std::snprintf(buf, sizeof(buf), "[%12s] %-8s %s\n",
                  when.str().c_str(), component, message.c_str());
    std::fputs(buf, stderr);
}

} // namespace

void
trace(Time when, const std::string& component, const std::string& message)
{
    if (!enabled(component))
        return;
    emitLine(when, component.c_str(), message);
}

void
trace(Time when, const Component& component, const std::string& message)
{
    if (!component.enabled())
        return;
    emitLine(when, component.tag(), message);
}

std::uint64_t
linesEmitted()
{
    return emitted.load(std::memory_order_relaxed);
}

} // namespace log
} // namespace ibsim
