#include "simcore/rng.hh"

// Rng is header-only today; this translation unit anchors the component in
// the build so future out-of-line additions have a home.
namespace ibsim {
} // namespace ibsim
