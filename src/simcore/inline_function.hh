/**
 * @file
 * InlineFunction — a move-only callable wrapper with a small inline buffer.
 *
 * The discrete-event kernel schedules millions of short-lived callbacks per
 * flood trial; wrapping each one in std::function heap-allocates whenever
 * the capture outgrows the library's tiny internal buffer. InlineFunction
 * stores captures of up to Capacity bytes directly inside the object, so
 * every hot-path callback in src/rnic/, src/odp/ and src/net/ (a handful of
 * pointers and integers each) is constructed, moved and destroyed without
 * touching the allocator. Callables larger than Capacity still work — they
 * fall back to a single heap box — so the type stays a drop-in replacement
 * for std::function<void()>, but the event kernel is tuned so that nothing
 * on the hot path ever takes that branch (see InlineFunction::storesInline
 * and the static_asserts in the code that cares).
 */

#ifndef IBSIM_SIMCORE_INLINE_FUNCTION_HH
#define IBSIM_SIMCORE_INLINE_FUNCTION_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace ibsim {

/**
 * Move-only void() callable with Capacity bytes of inline storage.
 */
template <std::size_t Capacity>
class InlineFunction
{
  public:
    /** Whether callables of type F are stored inline (no allocation). */
    template <typename F>
    static constexpr bool storesInline =
        sizeof(F) <= Capacity && alignof(F) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<F>;

    constexpr InlineFunction() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                  std::is_invocable_r_v<void, std::decay_t<F>&>>>
    InlineFunction(F&& f)  // NOLINT: implicit like std::function
    {
        construct(std::forward<F>(f));
    }

    InlineFunction(InlineFunction&& other) noexcept { moveFrom(other); }

    InlineFunction&
    operator=(InlineFunction&& other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InlineFunction(const InlineFunction&) = delete;
    InlineFunction& operator=(const InlineFunction&) = delete;

    ~InlineFunction() { reset(); }

    /** Whether a callable is held. */
    explicit operator bool() const noexcept { return invoke_ != nullptr; }

    /** Invoke. Precondition: a callable is held. */
    void operator()() { invoke_(storage()); }

    /** Destroy the held callable (if any); leaves the wrapper empty. */
    void
    reset() noexcept
    {
        if (relocate_)
            relocate_(storage(), nullptr);
        invoke_ = nullptr;
        relocate_ = nullptr;
    }

  private:
    void* storage() noexcept { return buf_; }

    template <typename F>
    void
    construct(F&& f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (storesInline<Fn>) {
            ::new (storage()) Fn(std::forward<F>(f));
            invoke_ = [](void* s) { (*static_cast<Fn*>(s))(); };
            relocate_ = [](void* src, void* dst) noexcept {
                Fn* p = static_cast<Fn*>(src);
                if (dst)
                    ::new (dst) Fn(std::move(*p));
                p->~Fn();
            };
        } else {
            // Oversized capture: one heap box, pointer stored inline.
            ::new (storage())(Fn*)(new Fn(std::forward<F>(f)));
            invoke_ = [](void* s) { (**static_cast<Fn**>(s))(); };
            relocate_ = [](void* src, void* dst) noexcept {
                Fn** box = static_cast<Fn**>(src);
                if (dst)
                    ::new (dst)(Fn*)(*box);
                else
                    delete *box;
            };
        }
    }

    void
    moveFrom(InlineFunction& other) noexcept
    {
        invoke_ = other.invoke_;
        relocate_ = other.relocate_;
        if (relocate_)
            relocate_(other.storage(), storage());
        other.invoke_ = nullptr;
        other.relocate_ = nullptr;
    }

    /** Calls the callable living in the buffer. */
    void (*invoke_)(void*) = nullptr;
    /** Move-constructs into @p dst and destroys @p src (dst == nullptr:
     *  destroy only). Doubles as the "engaged" discriminator. */
    void (*relocate_)(void* src, void* dst) noexcept = nullptr;
    alignas(std::max_align_t) unsigned char buf_[Capacity];
};

} // namespace ibsim

#endif // IBSIM_SIMCORE_INLINE_FUNCTION_HH
