#include "simcore/sharded_kernel.hh"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace ibsim {

namespace {

std::uint64_t
elapsedNs(std::chrono::steady_clock::time_point from,
          std::chrono::steady_clock::time_point to)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
            .count());
}

} // namespace

ShardedKernel::ShardedKernel(Time lookahead, unsigned jobs,
                             ScheduleMode mode)
    : lookahead_(lookahead), jobs_(std::max(1u, jobs)), mode_(mode)
{
    assert(lookahead_ > Time() && "lookahead must be positive");
}

ShardedKernel::~ShardedKernel()
{
    if (workers_.size() > 1) {
        exit_.store(true, std::memory_order_relaxed);
        epoch_.fetch_add(1, std::memory_order_release);
        for (auto& w : workers_) {
            if (w.thread.joinable())
                w.thread.join();
        }
    }
}

std::size_t
ShardedKernel::addIsland()
{
    assert(!started_ && "islands are fixed once the kernel has run");
    islands_.emplace_back();
    islands_.back().queue = std::make_unique<EventQueue>();
    logicalOf_.push_back(islands_.size() - 1);
    return islands_.size() - 1;
}

void
ShardedKernel::growEdges()
{
    // Islands and edges are declared interleaved (the cluster layer adds
    // a node pair, connects its QPs, adds the next pair, ...), so the
    // matrix must grow *preserving* everything declared so far.
    const std::size_t n = islands_.size();
    if (edges_.size() == n)
        return;
    for (auto& row : edges_)
        row.resize(n, 0);
    edges_.resize(n, std::vector<std::uint8_t>(n, 0));
}

void
ShardedKernel::declareEdge(std::size_t src, std::size_t dst)
{
    if (src == dst)
        return;  // same-island influence is inline, no clock involved
    anyEdgeDeclared_ = true;
    growEdges();
    assert(src < islands_.size() && dst < islands_.size());
    if (edges_[src][dst])
        return;
    edges_[src][dst] = 1;
    if (started_)
        rebuildNeighbors();  // only legal while quiesced (between runs)
}

void
ShardedKernel::declareDense(std::size_t island)
{
    // A flag, not materialized edges: a dense island must stay connected
    // to islands added *after* this call too (a UD QP can name any
    // destination, including a node created later).
    assert(island < islands_.size());
    anyEdgeDeclared_ = true;
    if (dense_.size() <= island)
        dense_.resize(island + 1, 0);
    if (dense_[island])
        return;
    dense_[island] = 1;
    if (started_)
        rebuildNeighbors();  // only legal while quiesced (between runs)
}

bool
ShardedKernel::isDense(std::size_t island) const
{
    return island < dense_.size() && dense_[island] != 0;
}

bool
ShardedKernel::hasEdge(std::size_t src, std::size_t dst) const
{
    if (src == dst)
        return true;
    if (!anyEdgeDeclared_)
        return true;  // undeclared graph = conservative dense default
    if (isDense(src) || isDense(dst))
        return true;
    if (src >= edges_.size() || dst >= edges_.size())
        return false;  // islands added after the last declared edge
    return edges_[src][dst] != 0;
}

void
ShardedKernel::setLogicalIsland(std::size_t island, std::size_t logical)
{
    assert(island < logicalOf_.size());
    logicalOf_[island] = logical;
}

std::size_t
ShardedKernel::logicalIslandCount() const
{
    std::size_t count = 0;
    for (std::size_t logical : logicalOf_)
        count = std::max(count, logical + 1);
    return count;
}

void
ShardedKernel::setWindowsPerRound(unsigned windows)
{
    assert(windows > 0);
    windowsPerRound_ = windows;
}

void
ShardedKernel::addBarrierAgent(BarrierAgent* agent)
{
    agents_.push_back(agent);
}

void
ShardedKernel::removeBarrierAgent(BarrierAgent* agent)
{
    agents_.erase(std::remove(agents_.begin(), agents_.end(), agent),
                  agents_.end());
}

void
ShardedKernel::rebuildNeighbors()
{
    const std::size_t n = islands_.size();
    for (std::size_t i = 0; i < n; ++i) {
        Island& is = islands_[i];
        is.inNbr.clear();
        for (std::size_t j = 0; j < n; ++j) {
            if (j != i && hasEdge(j, i))
                is.inNbr.push_back(static_cast<std::uint32_t>(j));
        }
    }
}

void
ShardedKernel::startWorkers()
{
    if (started_)
        return;
    started_ = true;
    jobs_ = static_cast<unsigned>(std::min<std::size_t>(
        jobs_, std::max<std::size_t>(1, islands_.size())));
    rebuildNeighbors();
    for (unsigned w = 0; w < jobs_; ++w)
        workers_.emplace_back();
    for (unsigned w = 1; w < jobs_; ++w)
        workers_[w].thread = std::thread([this, w] { workerLoop(w); });
}

Time
ShardedKernel::gridEnd(Time t) const
{
    const std::int64_t l = lookahead_.toNs();
    return Time::fromNs((t.toNs() / l + 1) * l);
}

Time
ShardedKernel::safeHorizon(const Island& is) const
{
    if (is.inNbr.empty())
        return Time::max();
    std::int64_t m = Time::max().toNs();
    for (std::uint32_t nbr : is.inNbr) {
        m = std::min(m,
                     islands_[nbr].done.load(std::memory_order_acquire));
    }
    if (m >= Time::max().toNs() - lookahead_.toNs())
        return Time::max();
    return Time::fromNs(m + lookahead_.toNs());
}

Time
ShardedKernel::inboundEarliest(std::size_t i) const
{
    Time earliest = Time::max();
    for (BarrierAgent* agent : agents_)
        earliest = std::min(earliest, agent->inboundEarliest(i));
    return earliest;
}

ShardedKernel::Step
ShardedKernel::stepIsland(unsigned, std::size_t i, Time round_limit)
{
    Island& is = islands_[i];
    EventQueue& q = *is.queue;
    bool advanced = false;
    for (;;) {
        Time done = Time::fromNs(is.done.load(std::memory_order_relaxed));

        if (done >= round_limit) {
            // Degenerate round (limit == the synchronized clock): the
            // island starts already at the round limit.
            is.roundDone.store(true, std::memory_order_relaxed);
            doneCount_.fetch_add(1, std::memory_order_release);
            return Step::RoundDone;
        }

        // Read the in-neighbor clocks BEFORE probing channels: a clock
        // published at c guarantees (release/acquire) that every item
        // with effect <= c + lookahead is visible, so probing after the
        // clock read can never miss work the horizon permits consuming.
        const Time safe = safeHorizon(is);
        const Time next =
            std::min(q.nextEventTime(), inboundEarliest(i));

        if (next > round_limit) {
            // Nothing to execute this round: publish clock up to the
            // horizon (the null-message leapfrog that unblocks
            // downstream islands) and finish the round when possible.
            const Time target = std::min(round_limit, safe);
            if (target <= done) {
                is.maxLagNs = std::max(
                    is.maxLagNs, static_cast<std::uint64_t>(
                                     (round_limit - safe).toNs()));
                return advanced ? Step::Advanced : Step::Blocked;
            }
            is.done.store(target.toNs(), std::memory_order_release);
            advanced = true;
            if (target == round_limit) {
                is.roundDone.store(true, std::memory_order_relaxed);
                doneCount_.fetch_add(1, std::memory_order_release);
                return Step::RoundDone;
            }
            continue;
        }

        // Execute the grid window holding the earliest pending work.
        const Time wEnd = gridEnd(next);
        const Time runLimit = std::max(
            std::min(wEnd - Time::ns(1), round_limit), done);
        if (runLimit > safe) {
            // Window not yet safe; creep the clock toward it so the
            // upstream islands' own horizons keep moving too.
            const Time target = std::min(safe, next - Time::ns(1));
            if (target <= done) {
                is.maxLagNs = std::max(
                    is.maxLagNs,
                    static_cast<std::uint64_t>((runLimit - safe).toNs()));
                return advanced ? Step::Advanced : Step::Blocked;
            }
            is.done.store(target.toNs(), std::memory_order_release);
            advanced = true;
            continue;
        }

        std::uint64_t parcels = 0;
        for (BarrierAgent* agent : agents_)
            parcels += agent->flushInbound(i, done, runLimit);
        is.parcels += parcels;
        q.run(runLimit);
        q.syncClock(runLimit);
        is.done.store(runLimit.toNs(), std::memory_order_release);
        ++is.windows;
        advanced = true;
        if (runLimit == round_limit) {
            is.roundDone.store(true, std::memory_order_relaxed);
            doneCount_.fetch_add(1, std::memory_order_release);
            return Step::RoundDone;
        }
    }
}

void
ShardedKernel::workerRound(unsigned worker)
{
    using clock = std::chrono::steady_clock;
    const auto roundStart = clock::now();
    std::uint64_t busy = 0;
    const std::size_t n = islands_.size();
    const bool stealing = mode_ == ScheduleMode::Stealing && jobs_ > 1;

    // Static mode: a fixed contiguous block (keeps neighboring islands —
    // e.g. the flood bench's client/server pairs — on one worker).
    // Stealing mode: scan every island, starting at this worker's block
    // so workers spread out before they collide on claims.
    std::size_t lo = static_cast<std::size_t>(worker) * n / jobs_;
    std::size_t hi = stealing
                         ? lo + n
                         : static_cast<std::size_t>(worker + 1) * n / jobs_;

    for (;;) {
        bool progress = false;
        for (std::size_t s = lo; s < hi; ++s) {
            const std::size_t i = stealing ? s % n : s;
            Island& is = islands_[i];
            if (is.roundDone.load(std::memory_order_relaxed))
                continue;
            if (stealing) {
                std::uint8_t expect = 0;
                if (!is.claim.compare_exchange_strong(
                        expect, 1, std::memory_order_acquire,
                        std::memory_order_relaxed))
                    continue;
                if (is.roundDone.load(std::memory_order_relaxed)) {
                    is.claim.store(0, std::memory_order_release);
                    continue;
                }
                const auto t0 = clock::now();
                const Step step = stepIsland(worker, i, roundLimit_);
                if (step != Step::Blocked) {
                    busy += elapsedNs(t0, clock::now());
                    progress = true;
                    if (is.lastWorker != kNoWorker &&
                        is.lastWorker != worker)
                        steals_.fetch_add(1, std::memory_order_relaxed);
                    is.lastWorker = worker;
                }
                is.claim.store(0, std::memory_order_release);
            } else {
                const auto t0 = clock::now();
                const Step step = stepIsland(worker, i, roundLimit_);
                if (step != Step::Blocked) {
                    busy += elapsedNs(t0, clock::now());
                    progress = true;
                }
            }
        }
        if (doneCount_.load(std::memory_order_acquire) >= n)
            break;
        if (!progress)
            std::this_thread::yield();
    }

    Worker& me = workers_[worker];
    me.busyNs += busy;
    me.totalNs += elapsedNs(roundStart, clock::now());
}

void
ShardedKernel::workerLoop(unsigned worker)
{
    std::uint64_t seen = 0;
    for (;;) {
        // Spin briefly (rounds are close together when busy), then
        // yield so oversubscribed machines still make progress.
        int spins = 0;
        while (epoch_.load(std::memory_order_acquire) == seen) {
            if (++spins > 256) {
                std::this_thread::yield();
                spins = 0;
            }
        }
        ++seen;
        if (exit_.load(std::memory_order_relaxed))
            return;
        workerRound(worker);
        outstanding_.fetch_sub(1, std::memory_order_acq_rel);
    }
}

void
ShardedKernel::dispatchRound(Time init_done, Time round_limit)
{
    roundLimit_ = round_limit;
    for (Island& is : islands_) {
        is.done.store(init_done.toNs(), std::memory_order_relaxed);
        is.roundDone.store(false, std::memory_order_relaxed);
    }
    doneCount_.store(0, std::memory_order_relaxed);
    if (jobs_ <= 1) {
        workerRound(0);
        return;
    }
    outstanding_.store(jobs_ - 1, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    workerRound(0);  // the coordinator is worker 0
    int spins = 0;
    while (outstanding_.load(std::memory_order_acquire) != 0) {
        if (++spins > 256) {
            std::this_thread::yield();
            spins = 0;
        }
    }
}

Time
ShardedKernel::earliestPending() const
{
    Time earliest = Time::max();
    for (const Island& is : islands_)
        earliest = std::min(earliest, is.queue->nextEventTime());
    for (std::size_t i = 0; i < islands_.size(); ++i)
        earliest = std::min(earliest, inboundEarliest(i));
    return earliest;
}

void
ShardedKernel::syncClocks(Time t)
{
    for (Island& is : islands_)
        is.queue->syncClock(t);
    if (t > now_)
        now_ = t;
}

void
ShardedKernel::quiesceFlush(Time t)
{
    // Sequential, in island order: judge every deferred check that the
    // run left behind (channel clocks only flush an island's inbox when
    // it executes, so checks emitted in the final windows linger).
    // Event-producing parcels with effect <= t cannot exist here — the
    // conservative horizon flushed them before the owning window ran.
    for (std::size_t i = 0; i < islands_.size(); ++i) {
        std::uint64_t parcels = 0;
        for (BarrierAgent* agent : agents_)
            parcels += agent->flushInbound(i, t, t);
        islands_[i].parcels += parcels;
    }
}

bool
ShardedKernel::runCore(Time limit, const std::function<bool()>* pred,
                       bool* pred_hit)
{
    startWorkers();
    for (;;) {
        // Round boundaries are the quiesce points: every worker is
        // parked, all clocks agree, channels hold only future work.
        if (pred != nullptr && (*pred)()) {
            *pred_hit = true;
            quiesceFlush(now_);
            return false;
        }
        const Time earliest = earliestPending();
        if (earliest == Time::max()) {
            quiesceFlush(now_);
            return true;  // drained
        }
        if (earliest > limit) {
            syncClocks(limit);
            quiesceFlush(limit);
            return false;
        }

        // The round covers windowsPerRound grid windows starting at the
        // slot holding the earliest pending work — idle gaps are jumped
        // here, globally and deterministically, instead of leapfrogged
        // window by window.
        const std::int64_t l = lookahead_.toNs();
        const Time base = std::max(now_, earliest);
        const Time roundStart = Time::fromNs(base.toNs() / l * l);
        const Time roundEnd = Time::fromNs(
            roundStart.toNs() +
            l * static_cast<std::int64_t>(windowsPerRound_));
        const Time roundLimit = std::min(roundEnd - Time::ns(1), limit);
        Time initDone = std::max(roundStart - Time::ns(1), now_);
        if (initDone >= roundLimit) {
            // Degenerate round: the limit equals the synchronized clock
            // (e.g. the first run(Time(0)) with an event at t = 0).
            // Starting the clocks *below* the limit makes the window
            // containing it execute — mirroring EventQueue::run()'s
            // events-at-limit-run semantics — instead of every island
            // reporting roundDone untouched and the loop spinning.
            initDone = roundLimit - Time::ns(1);
        }
        dispatchRound(initDone, roundLimit);
        ++rounds_;
        syncClocks(roundLimit);
    }
}

bool
ShardedKernel::run(Time limit)
{
    return runCore(limit, nullptr, nullptr);
}

bool
ShardedKernel::runUntil(const std::function<bool()>& pred, Time limit)
{
    bool hit = false;
    runCore(limit, &pred, &hit);
    return hit;
}

void
ShardedKernel::advance(Time delta)
{
    const Time target = now_ + delta;
    runCore(target, nullptr, nullptr);
    syncClocks(target);
}

std::uint64_t
ShardedKernel::executed() const
{
    std::uint64_t total = 0;
    for (const Island& is : islands_)
        total += is.queue->executed();
    return total;
}

std::size_t
ShardedKernel::pending() const
{
    std::size_t total = 0;
    for (const Island& is : islands_)
        total += is.queue->pending();
    for (std::size_t i = 0; i < islands_.size(); ++i)
        for (BarrierAgent* agent : agents_)
            total += agent->inboundPending(i);
    return total;
}

ShardedKernel::KernelStats
ShardedKernel::kernelStats() const
{
    KernelStats s;
    s.barriers = rounds_;
    s.steals = steals_.load(std::memory_order_relaxed);

    // Aggregate per *logical* island: a split node's planes fold into
    // one entry (the machine they model), and logical ids that no
    // physical island maps to are dropped rather than reported as
    // zero-work islands that would fake the imbalance spread.
    std::vector<std::uint64_t> perLogical(logicalIslandCount(), 0);
    std::vector<std::uint8_t> used(logicalIslandCount(), 0);
    for (std::size_t i = 0; i < islands_.size(); ++i) {
        const Island& is = islands_[i];
        s.windows += is.windows;
        s.channelParcels += is.parcels;
        s.maxClockLagNs = std::max(s.maxClockLagNs, is.maxLagNs);
        perLogical[logicalOf_[i]] += is.queue->executed();
        used[logicalOf_[i]] = 1;
    }
    for (std::size_t logical = 0; logical < perLogical.size(); ++logical) {
        if (!used[logical])
            continue;
        const std::uint64_t executed = perLogical[logical];
        s.maxIslandExecuted = std::max(s.maxIslandExecuted, executed);
        s.minIslandExecuted = s.executedPerIsland.empty()
                                  ? executed
                                  : std::min(s.minIslandExecuted, executed);
        s.executedPerIsland.push_back(executed);
    }
    for (const Worker& w : workers_) {
        s.workerBusyFraction.push_back(
            w.totalNs == 0 ? 0.0
                           : static_cast<double>(w.busyNs) /
                                 static_cast<double>(w.totalNs));
    }
    return s;
}

} // namespace ibsim
