#include "simcore/sharded_kernel.hh"

#include <algorithm>
#include <cassert>

namespace ibsim {

ShardedKernel::ShardedKernel(Time lookahead, unsigned jobs)
    : lookahead_(lookahead), jobs_(std::max(1u, jobs))
{
    assert(lookahead_ > Time() && "lookahead must be positive");
}

ShardedKernel::~ShardedKernel()
{
    if (!workers_.empty()) {
        phase_ = Phase::Exit;
        epoch_.fetch_add(1, std::memory_order_release);
        for (auto& w : workers_)
            w.join();
    }
}

std::size_t
ShardedKernel::addIsland()
{
    assert(!started_ && "islands are fixed once the kernel has run");
    islands_.push_back(std::make_unique<EventQueue>());
    parcelsPerIsland_.push_back(0);
    return islands_.size() - 1;
}

void
ShardedKernel::addBarrierAgent(BarrierAgent* agent)
{
    agents_.push_back(agent);
}

void
ShardedKernel::removeBarrierAgent(BarrierAgent* agent)
{
    agents_.erase(std::remove(agents_.begin(), agents_.end(), agent),
                  agents_.end());
}

void
ShardedKernel::startWorkers()
{
    if (started_)
        return;
    started_ = true;
    jobs_ = static_cast<unsigned>(std::min<std::size_t>(
        jobs_, std::max<std::size_t>(1, islands_.size())));
    for (unsigned w = 1; w < jobs_; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

void
ShardedKernel::workerShare(unsigned worker)
{
    const std::size_t n = islands_.size();
    switch (phase_) {
    case Phase::RunWindow:
        for (std::size_t i = worker; i < n; i += jobs_)
            islands_[i]->run(phaseLimit_);
        break;
    case Phase::Flush:
        for (std::size_t i = worker; i < n; i += jobs_) {
            std::uint64_t parcels = 0;
            for (BarrierAgent* agent : agents_)
                parcels += agent->flushInbound(i);
            parcelsPerIsland_[i] += parcels;
        }
        break;
    case Phase::Exit:
        break;
    }
}

void
ShardedKernel::workerLoop(unsigned worker)
{
    std::uint64_t seen = 0;
    for (;;) {
        // Spin briefly (windows are sub-microsecond apart when busy),
        // then yield so oversubscribed machines still make progress.
        int spins = 0;
        while (epoch_.load(std::memory_order_acquire) == seen) {
            if (++spins > 256) {
                std::this_thread::yield();
                spins = 0;
            }
        }
        ++seen;
        if (phase_ == Phase::Exit)
            return;
        workerShare(worker);
        outstanding_.fetch_sub(1, std::memory_order_acq_rel);
    }
}

void
ShardedKernel::dispatch(Phase phase, Time limit)
{
    phase_ = phase;
    phaseLimit_ = limit;
    if (workers_.empty()) {
        workerShare(0);
        return;
    }
    outstanding_.store(jobs_ - 1, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    workerShare(0);  // the coordinator is worker 0
    int spins = 0;
    while (outstanding_.load(std::memory_order_acquire) != 0) {
        if (++spins > 256) {
            std::this_thread::yield();
            spins = 0;
        }
    }
}

Time
ShardedKernel::earliestEvent()
{
    Time earliest = Time::max();
    for (auto& island : islands_)
        earliest = std::min(earliest, island->nextEventTime());
    return earliest;
}

void
ShardedKernel::syncClocks(Time t)
{
    for (auto& island : islands_)
        island->syncClock(t);
    if (t > now_)
        now_ = t;
}

bool
ShardedKernel::runCore(Time limit, const std::function<bool()>* pred,
                       bool* pred_hit)
{
    startWorkers();
    for (;;) {
        // At the loop top all channels are empty (the previous barrier
        // flushed them), so the islands' queues hold the complete
        // pending set and this minimum is the true next event time.
        if (pred != nullptr && (*pred)()) {
            *pred_hit = true;
            return false;
        }
        const Time earliest = earliestEvent();
        if (earliest == Time::max())
            return true;  // drained
        if (earliest > limit) {
            syncClocks(limit);
            return false;
        }

        // Window [start, start + lookahead): every island executes its
        // events with when <= runLimit (strictly before the window end,
        // or up to the caller's limit — events at exactly `limit` run,
        // matching EventQueue::run()). Anything one island schedules
        // into another during this window lands at or after the window
        // end, so it cannot be missed: the barrier flush below injects
        // it before the next window begins.
        const Time start = std::max(now_, earliest);
        const Time end = start + lookahead_;
        const Time runLimit = std::min(end - Time::ns(1), limit);
        dispatch(Phase::RunWindow, runLimit);
        dispatch(Phase::Flush, runLimit);
        ++windows_;
        ++barriers_;
        syncClocks(runLimit);
    }
}

bool
ShardedKernel::run(Time limit)
{
    return runCore(limit, nullptr, nullptr);
}

bool
ShardedKernel::runUntil(const std::function<bool()>& pred, Time limit)
{
    bool hit = false;
    runCore(limit, &pred, &hit);
    return hit;
}

void
ShardedKernel::advance(Time delta)
{
    const Time target = now_ + delta;
    runCore(target, nullptr, nullptr);
    syncClocks(target);
}

std::uint64_t
ShardedKernel::executed() const
{
    std::uint64_t total = 0;
    for (const auto& island : islands_)
        total += island->executed();
    return total;
}

std::size_t
ShardedKernel::pending() const
{
    std::size_t total = 0;
    for (const auto& island : islands_)
        total += island->pending();
    return total;
}

ShardedKernel::KernelStats
ShardedKernel::kernelStats() const
{
    KernelStats s;
    s.barriers = barriers_;
    s.windows = windows_;
    s.executedPerIsland.reserve(islands_.size());
    for (std::size_t i = 0; i < islands_.size(); ++i) {
        const std::uint64_t executed = islands_[i]->executed();
        s.executedPerIsland.push_back(executed);
        s.channelParcels += parcelsPerIsland_[i];
        s.maxIslandExecuted = std::max(s.maxIslandExecuted, executed);
        s.minIslandExecuted = i == 0
                                  ? executed
                                  : std::min(s.minIslandExecuted, executed);
    }
    return s;
}

} // namespace ibsim
