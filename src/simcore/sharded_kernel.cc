#include "simcore/sharded_kernel.hh"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace ibsim {

namespace {

std::uint64_t
elapsedNs(std::chrono::steady_clock::time_point from,
          std::chrono::steady_clock::time_point to)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
            .count());
}

} // namespace

ShardedKernel::ShardedKernel(Time lookahead, unsigned jobs,
                             ScheduleMode mode)
    : lookahead_(lookahead), jobs_(std::max(1u, jobs)), mode_(mode)
{
    assert(lookahead_ > Time() && "lookahead must be positive");
}

ShardedKernel::~ShardedKernel()
{
    if (workers_.size() > 1) {
        exit_.store(true, std::memory_order_relaxed);
        epoch_.fetch_add(1, std::memory_order_release);
        for (auto& w : workers_) {
            if (w.thread.joinable())
                w.thread.join();
        }
    }
}

std::size_t
ShardedKernel::addIsland()
{
    assert(!started_ && "islands are fixed once the kernel has run");
    islands_.emplace_back();
    islands_.back().queue = std::make_unique<EventQueue>();
    logicalOf_.push_back(islands_.size() - 1);
    return islands_.size() - 1;
}

void
ShardedKernel::growEdges()
{
    // Islands and edges are declared interleaved (the cluster layer adds
    // a node pair, connects its QPs, adds the next pair, ...), so the
    // matrix must grow *preserving* everything declared so far.
    const std::size_t n = islands_.size();
    if (edges_.size() == n)
        return;
    for (auto& row : edges_)
        row.resize(n, 0);
    edges_.resize(n, std::vector<std::uint8_t>(n, 0));
}

void
ShardedKernel::declareEdge(std::size_t src, std::size_t dst)
{
    if (src == dst)
        return;  // same-island influence is inline, no clock involved
    anyEdgeDeclared_ = true;
    growEdges();
    assert(src < islands_.size() && dst < islands_.size());
    if (edges_[src][dst])
        return;
    edges_[src][dst] = 1;
    if (started_)
        rebuildNeighbors();  // only legal while quiesced (between runs)
}

void
ShardedKernel::declareDense(std::size_t island)
{
    // A flag, not materialized edges: a dense island must stay connected
    // to islands added *after* this call too (a UD QP can name any
    // destination, including a node created later).
    assert(island < islands_.size());
    anyEdgeDeclared_ = true;
    if (dense_.size() <= island)
        dense_.resize(island + 1, 0);
    if (dense_[island])
        return;
    dense_[island] = 1;
    if (started_)
        rebuildNeighbors();  // only legal while quiesced (between runs)
}

bool
ShardedKernel::isDense(std::size_t island) const
{
    return island < dense_.size() && dense_[island] != 0;
}

bool
ShardedKernel::hasEdge(std::size_t src, std::size_t dst) const
{
    if (src == dst)
        return true;
    if (!anyEdgeDeclared_)
        return true;  // undeclared graph = conservative dense default
    if (isDense(src) || isDense(dst))
        return true;
    if (src >= edges_.size() || dst >= edges_.size())
        return false;  // islands added after the last declared edge
    return edges_[src][dst] != 0;
}

void
ShardedKernel::setLogicalIsland(std::size_t island, std::size_t logical)
{
    assert(island < logicalOf_.size());
    logicalOf_[island] = logical;
}

std::size_t
ShardedKernel::logicalIslandCount() const
{
    std::size_t count = 0;
    for (std::size_t logical : logicalOf_)
        count = std::max(count, logical + 1);
    return count;
}

void
ShardedKernel::setWindowsPerRound(unsigned windows)
{
    assert(windows > 0);
    windowsPerRound_ = windows;
    windowsPinned_ = true;  // an explicit length disables adaptation
}

std::size_t
ShardedKernel::addTrigger(std::size_t island, TriggerCount count)
{
    assert(island < islands_.size());
    triggers_.push_back(Trigger{island, std::move(count), 0});
    islands_[island].trig.push_back(
        static_cast<std::uint32_t>(triggers_.size() - 1));
    return triggers_.size() - 1;
}

void
ShardedKernel::clearTriggers()
{
    triggers_.clear();
    for (Island& is : islands_)
        is.trig.clear();
    trigArmed_.store(false, std::memory_order_relaxed);
}

void
ShardedKernel::addBarrierAgent(BarrierAgent* agent)
{
    agents_.push_back(agent);
}

void
ShardedKernel::removeBarrierAgent(BarrierAgent* agent)
{
    agents_.erase(std::remove(agents_.begin(), agents_.end(), agent),
                  agents_.end());
}

void
ShardedKernel::rebuildNeighbors()
{
    const std::size_t n = islands_.size();
    for (std::size_t i = 0; i < n; ++i) {
        Island& is = islands_[i];
        is.inNbr.clear();
        is.outNbr.clear();
    }
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            if (j != i && hasEdge(j, i)) {
                islands_[i].inNbr.push_back(
                    static_cast<std::uint32_t>(j));
                islands_[j].outNbr.push_back(
                    static_cast<std::uint32_t>(i));
            }
        }
    }
}

void
ShardedKernel::startWorkers()
{
    if (started_)
        return;
    started_ = true;
    jobs_ = static_cast<unsigned>(std::min<std::size_t>(
        jobs_, std::max<std::size_t>(1, islands_.size())));
    rebuildNeighbors();
    for (unsigned w = 0; w < jobs_; ++w) {
        workers_.emplace_back();
        ready_.emplace_back();
    }
    for (unsigned w = 1; w < jobs_; ++w)
        workers_[w].thread = std::thread([this, w] { workerLoop(w); });
}

Time
ShardedKernel::gridEnd(Time t) const
{
    const std::int64_t l = lookahead_.toNs();
    return Time::fromNs((t.toNs() / l + 1) * l);
}

Time
ShardedKernel::safeHorizon(const Island& is) const
{
    if (is.inNbr.empty())
        return Time::max();
    std::int64_t m = Time::max().toNs();
    for (std::uint32_t nbr : is.inNbr) {
        m = std::min(m,
                     islands_[nbr].done.load(std::memory_order_acquire));
    }
    if (m >= Time::max().toNs() - lookahead_.toNs())
        return Time::max();
    return Time::fromNs(m + lookahead_.toNs());
}

Time
ShardedKernel::inboundEarliest(std::size_t i) const
{
    Time earliest = Time::max();
    for (BarrierAgent* agent : agents_)
        earliest = std::min(earliest, agent->inboundEarliest(i));
    return earliest;
}

ShardedKernel::Step
ShardedKernel::stepIsland(unsigned worker, std::size_t i, Time round_limit)
{
    Island& is = islands_[i];
    EventQueue& q = *is.queue;
    const std::int64_t l = lookahead_.toNs();
    bool advanced = false;
    for (;;) {
        Time done = Time::fromNs(is.done.load(std::memory_order_relaxed));

        if (done >= round_limit) {
            // Degenerate round (limit == the synchronized clock): the
            // island starts already at the round limit.
            is.roundDone.store(true, std::memory_order_relaxed);
            doneCount_.fetch_add(1, std::memory_order_release);
            return Step::RoundDone;
        }

        // Read the in-neighbor clocks BEFORE probing channels: a clock
        // published at c guarantees (release/acquire) that every item
        // with effect <= c + lookahead is visible, so probing after the
        // clock read can never miss work the horizon permits consuming.
        const Time safe = safeHorizon(is);
        const Time next =
            std::min(q.nextEventTime(), inboundEarliest(i));

        if (next > round_limit) {
            // Nothing to execute this round: publish clock up to the
            // horizon (the null-message leapfrog that unblocks
            // downstream islands) and finish the round when possible.
            const Time target = std::min(round_limit, safe);
            if (target <= done) {
                is.maxLagNs = std::max(
                    is.maxLagNs, static_cast<std::uint64_t>(
                                     (round_limit - safe).toNs()));
                // Unblocks once the min in-neighbor clock passes
                // done - L (safeHorizon > done).
                is.wakeAt.store(done.toNs() - l + 1,
                                std::memory_order_relaxed);
                return advanced ? Step::Advanced : Step::Blocked;
            }
            is.done.store(target.toNs(), std::memory_order_release);
            if (useReady_)
                wakeOutNeighbors(worker, i, target.toNs());
            advanced = true;
            if (target == round_limit) {
                is.roundDone.store(true, std::memory_order_relaxed);
                doneCount_.fetch_add(1, std::memory_order_release);
                return Step::RoundDone;
            }
            continue;
        }

        // Execute the grid window holding the earliest pending work.
        const Time wEnd = gridEnd(next);
        const Time runLimit = std::max(
            std::min(wEnd - Time::ns(1), round_limit), done);
        if (runLimit > safe) {
            // Window not yet safe; creep the clock toward it so the
            // upstream islands' own horizons keep moving too.
            const Time target = std::min(safe, next - Time::ns(1));
            if (target <= done) {
                is.maxLagNs = std::max(
                    is.maxLagNs,
                    static_cast<std::uint64_t>((runLimit - safe).toNs()));
                // Unblocks once the window is safe (min in-neighbor
                // clock >= runLimit - L).
                is.wakeAt.store(runLimit.toNs() - l,
                                std::memory_order_relaxed);
                return advanced ? Step::Advanced : Step::Blocked;
            }
            is.done.store(target.toNs(), std::memory_order_release);
            if (useReady_)
                wakeOutNeighbors(worker, i, target.toNs());
            advanced = true;
            continue;
        }

        // The drain token reads dirty under this island's claim, so
        // marking before the window's pushes keeps "clean" an honest
        // "no activity since the last visit".
        is.dirty.store(true, std::memory_order_relaxed);
        std::uint64_t parcels = 0;
        for (BarrierAgent* agent : agents_)
            parcels += agent->flushInbound(i, done, runLimit);
        is.parcels += parcels;
        q.run(runLimit);
        q.syncClock(runLimit);
        is.done.store(runLimit.toNs(), std::memory_order_release);
        if (useReady_)
            wakeOutNeighbors(worker, i, runLimit.toNs());
        ++is.windows;
        if (jobs_ == 1)
            ++seqWindowsRound_;
        if (!is.trig.empty() &&
            trigArmed_.load(std::memory_order_relaxed))
            noteTriggers(is);
        advanced = true;
        if (runLimit == round_limit) {
            is.roundDone.store(true, std::memory_order_relaxed);
            doneCount_.fetch_add(1, std::memory_order_release);
            return Step::RoundDone;
        }
    }
}

void
ShardedKernel::noteTriggers(Island& is)
{
    for (std::uint32_t t : is.trig) {
        Trigger& trig = triggers_[t];
        const std::uint64_t cur = trig.count();
        if (cur <= trig.lastSeen)
            continue;  // monotone counters only move forward
        const std::uint64_t delta = cur - trig.lastSeen;
        trig.lastSeen = cur;
        const std::uint64_t sum =
            trigSum_.fetch_add(delta, std::memory_order_relaxed) + delta;
        if (sum >= trigTarget_)
            trigFired_.store(true, std::memory_order_relaxed);
    }
}

void
ShardedKernel::workerRound(unsigned worker)
{
    if (useReady_)
        workerRoundReady(worker);
    else
        workerRoundScan(worker);
}

void
ShardedKernel::workerRoundScan(unsigned worker)
{
    using clock = std::chrono::steady_clock;
    const auto roundStart = clock::now();
    std::uint64_t busy = 0;
    const std::size_t n = islands_.size();
    const bool stealing = mode_ == ScheduleMode::Stealing && jobs_ > 1;

    // Static mode: a fixed contiguous block (keeps neighboring islands —
    // e.g. the flood bench's client/server pairs — on one worker).
    // Stealing mode: scan every island, starting at this worker's block
    // so workers spread out before they collide on claims.
    std::size_t lo = static_cast<std::size_t>(worker) * n / jobs_;
    std::size_t hi = stealing
                         ? lo + n
                         : static_cast<std::size_t>(worker + 1) * n / jobs_;

    for (;;) {
        if (roundAbort_.load(std::memory_order_acquire))
            break;
        bool progress = false;
        const std::uint64_t windowsBefore = seqWindowsRound_;
        for (std::size_t s = lo; s < hi; ++s) {
            const std::size_t i = stealing ? s % n : s;
            Island& is = islands_[i];
            if (is.roundDone.load(std::memory_order_relaxed))
                continue;
            if (stealing) {
                std::uint8_t expect = 0;
                if (!is.claim.compare_exchange_strong(
                        expect, 1, std::memory_order_acquire,
                        std::memory_order_relaxed))
                    continue;
                if (is.roundDone.load(std::memory_order_relaxed)) {
                    is.claim.store(0, std::memory_order_release);
                    continue;
                }
                const auto t0 = clock::now();
                const Step step = stepIsland(worker, i, roundLimit_);
                if (step != Step::Blocked) {
                    busy += elapsedNs(t0, clock::now());
                    progress = true;
                    if (is.lastWorker != kNoWorker &&
                        is.lastWorker != worker)
                        steals_.fetch_add(1, std::memory_order_relaxed);
                    is.lastWorker = worker;
                }
                is.claim.store(0, std::memory_order_release);
            } else {
                const auto t0 = clock::now();
                const Step step = stepIsland(worker, i, roundLimit_);
                if (step != Step::Blocked) {
                    busy += elapsedNs(t0, clock::now());
                    progress = true;
                }
            }
        }
        if (doneCount_.load(std::memory_order_acquire) >= n)
            break;
        if (jobs_ == 1) {
            // Sequential drain probe: a pass that advanced clocks but
            // executed no window is the pure-leapfrog drain tail — cut
            // it the moment nothing at or below the round limit
            // remains (no races to worry about inline).
            if (seqWindowsRound_ == windowsBefore &&
                allQuietBelow(roundLimit_)) {
                drainAborts_.fetch_add(1, std::memory_order_relaxed);
                roundAbort_.store(true, std::memory_order_relaxed);
                break;
            }
        } else if (stealing && !progress) {
            if (tryTokenPass())
                break;
        }
        if (!progress)
            std::this_thread::yield();
    }

    Worker& me = workers_[worker];
    me.busyNs += busy;
    me.totalNs += elapsedNs(roundStart, clock::now());
}

void
ShardedKernel::pushReady(unsigned worker, std::uint32_t island)
{
    ReadyShard& shard = ready_[worker];
    std::lock_guard<std::mutex> lock(shard.m);
    shard.q.push_back(island);
    shard.maxDepth = std::max<std::uint64_t>(shard.maxDepth,
                                             shard.q.size());
}

bool
ShardedKernel::popReady(unsigned worker, std::uint32_t& island)
{
    {
        // Own shard: LIFO — the most recently woken island's channel
        // state is the hottest in this worker's cache.
        ReadyShard& own = ready_[worker];
        std::lock_guard<std::mutex> lock(own.m);
        if (!own.q.empty()) {
            island = own.q.back();
            own.q.pop_back();
            return true;
        }
    }
    // Steal FIFO from the other shards (oldest entry = the one most
    // likely to have accumulated runnable windows).
    for (unsigned k = 1; k < jobs_; ++k) {
        ReadyShard& other = ready_[(worker + k) % jobs_];
        std::lock_guard<std::mutex> lock(other.m);
        if (!other.q.empty()) {
            island = other.q.front();
            other.q.pop_front();
            return true;
        }
    }
    return false;
}

std::int64_t
ShardedKernel::minInNeighborClockNs(const Island& is) const
{
    std::int64_t m = Time::max().toNs();
    for (std::uint32_t nbr : is.inNbr) {
        m = std::min(m,
                     islands_[nbr].done.load(std::memory_order_acquire));
    }
    return m;
}

void
ShardedKernel::wakeOutNeighbors(unsigned worker, std::size_t i,
                                std::int64_t clock_ns)
{
    // Publisher side of the block-vs-wake handshake: clock store, then
    // a full fence, then the sched reads — pairs with the blocker's
    // Blocked store / fence / clock re-read (blockIsland()), so one of
    // the two sides always observes the other.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    for (std::uint32_t o : islands_[i].outNbr) {
        Island& t = islands_[o];
        if (t.sched.load(std::memory_order_relaxed) != kSchedBlocked)
            continue;
        if (clock_ns < t.wakeAt.load(std::memory_order_relaxed))
            continue;  // our clock alone cannot have unblocked it
        std::uint8_t expect = kSchedBlocked;
        if (t.sched.compare_exchange_strong(expect, kSchedReady,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed))
            pushReady(worker, o);
    }
}

void
ShardedKernel::blockIsland(unsigned worker, std::uint32_t island)
{
    Island& is = islands_[island];
    // stepIsland stored wakeAt before returning Blocked.
    is.sched.store(kSchedBlocked, std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    // Close the lost-wakeup window: a neighbor may have crossed the
    // threshold between our block decision and the Blocked store.
    if (minInNeighborClockNs(is) >=
        is.wakeAt.load(std::memory_order_relaxed)) {
        std::uint8_t expect = kSchedBlocked;
        if (is.sched.compare_exchange_strong(expect, kSchedReady,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed))
            pushReady(worker, island);
    }
}

void
ShardedKernel::workerRoundReady(unsigned worker)
{
    using clock = std::chrono::steady_clock;
    const auto roundStart = clock::now();
    std::uint64_t busy = 0;
    const std::size_t n = islands_.size();

    // progress = some pop advanced an island since the last idle
    // rescan; without it the worker yields before rescanning again
    // (the rescan itself re-enqueues still-blocked islands, so it must
    // not count as progress or an idle pair of workers would spin).
    bool progress = false;
    for (;;) {
        if (roundAbort_.load(std::memory_order_acquire))
            break;
        std::uint32_t idx;
        if (popReady(worker, idx)) {
            Island& is = islands_[idx];
            std::uint8_t expect = 0;
            if (!is.claim.compare_exchange_strong(
                    expect, 1, std::memory_order_acquire,
                    std::memory_order_relaxed)) {
                // The drain token is inspecting it; hand it back.
                pushReady(worker, idx);
                std::this_thread::yield();
                continue;
            }
            is.sched.store(kSchedRunning, std::memory_order_relaxed);
            const auto t0 = clock::now();
            const Step step = stepIsland(worker, idx, roundLimit_);
            if (step != Step::Blocked) {
                busy += elapsedNs(t0, clock::now());
                progress = true;
                if (is.lastWorker != kNoWorker && is.lastWorker != worker)
                    steals_.fetch_add(1, std::memory_order_relaxed);
                is.lastWorker = worker;
            }
            if (step == Step::RoundDone) {
                is.sched.store(kSchedDone, std::memory_order_relaxed);
                is.claim.store(0, std::memory_order_release);
            } else {
                is.claim.store(0, std::memory_order_release);
                blockIsland(worker, idx);
            }
            continue;
        }
        if (doneCount_.load(std::memory_order_acquire) >= n)
            break;
        // Idle: advance the drain token, then the wake-miss safety net
        // — re-enqueue every still-blocked island (covers dense-island
        // wakes, which are deliberately not fanned out per publish, and
        // inbound work that arrived below a stale wake threshold).
        if (tryTokenPass())
            break;
        if (!progress)
            std::this_thread::yield();
        progress = false;
        for (std::size_t i = 0; i < n; ++i) {
            Island& is = islands_[i];
            if (is.sched.load(std::memory_order_relaxed) != kSchedBlocked)
                continue;
            std::uint8_t expect = kSchedBlocked;
            if (is.sched.compare_exchange_strong(expect, kSchedReady,
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_relaxed))
                pushReady(worker, static_cast<std::uint32_t>(i));
        }
    }

    Worker& me = workers_[worker];
    me.busyNs += busy;
    me.totalNs += elapsedNs(roundStart, clock::now());
}

bool
ShardedKernel::tryTokenPass()
{
    if (roundAbort_.load(std::memory_order_acquire))
        return true;
    if (!useToken_)
        return false;
    if (tokenBusy_.exchange(true, std::memory_order_acquire))
        return false;  // another worker is carrying the token
    const std::size_t n = islands_.size();
    // Two consecutive fully-clean circuits prove the round tail empty:
    // a single circuit can miss an island that pushed *after* its
    // visit, but the pusher's dirty flag survives into the next
    // circuit (DESIGN.md §12.c has the induction).
    const std::uint32_t needed = static_cast<std::uint32_t>(2 * n);
    for (std::size_t visits = 0; visits < n && tokenClean_ < needed;
         ++visits) {
        Island& is = islands_[tokenPos_];
        std::uint8_t expect = 0;
        if (!is.claim.compare_exchange_strong(expect, 1,
                                              std::memory_order_acquire,
                                              std::memory_order_relaxed)) {
            // Someone is executing it — activity; retry here later.
            tokenClean_ = 0;
            break;
        }
        bool clean = !is.dirty.exchange(false, std::memory_order_acq_rel);
        if (clean)
            clean = is.queue->nextEventTime() > roundLimit_;
        if (clean)
            clean = inboundEarliest(tokenPos_) > roundLimit_;
        is.claim.store(0, std::memory_order_release);
        tokenClean_ = clean ? tokenClean_ + 1 : 0;
        tokenPos_ = (tokenPos_ + 1) % static_cast<std::uint32_t>(n);
    }
    bool fired = false;
    if (tokenClean_ >= needed) {
        fired = true;
        drainAborts_.fetch_add(1, std::memory_order_relaxed);
        roundAbort_.store(true, std::memory_order_release);
    }
    tokenBusy_.store(false, std::memory_order_release);
    return fired;
}

bool
ShardedKernel::allQuietBelow(Time t) const
{
    for (std::size_t i = 0; i < islands_.size(); ++i) {
        if (islands_[i].queue->nextEventTime() <= t)
            return false;
        if (inboundEarliest(i) <= t)
            return false;
    }
    return true;
}

void
ShardedKernel::workerLoop(unsigned worker)
{
    std::uint64_t seen = 0;
    for (;;) {
        // Spin briefly (rounds are close together when busy), then
        // yield so oversubscribed machines still make progress.
        int spins = 0;
        while (epoch_.load(std::memory_order_acquire) == seen) {
            if (++spins > 256) {
                std::this_thread::yield();
                spins = 0;
            }
        }
        ++seen;
        if (exit_.load(std::memory_order_relaxed))
            return;
        workerRound(worker);
        outstanding_.fetch_sub(1, std::memory_order_acq_rel);
    }
}

void
ShardedKernel::dispatchRound(Time init_done, Time round_limit)
{
    roundLimit_ = round_limit;
    roundAbort_.store(false, std::memory_order_relaxed);
    tokenPos_ = 0;
    tokenClean_ = 0;
    seqWindowsRound_ = 0;
    for (Island& is : islands_) {
        is.done.store(init_done.toNs(), std::memory_order_relaxed);
        is.roundDone.store(false, std::memory_order_relaxed);
        is.dirty.store(false, std::memory_order_relaxed);
    }
    if (useReady_) {
        // Seed each worker's shard with its static block — the same
        // spread Static mode pins, so the first pops have affinity and
        // workers fan out before the first steal.
        const std::size_t n = islands_.size();
        for (unsigned w = 0; w < jobs_; ++w)
            ready_[w].q.clear();
        for (std::size_t i = 0; i < n; ++i) {
            islands_[i].sched.store(kSchedReady,
                                    std::memory_order_relaxed);
            const unsigned owner = static_cast<unsigned>(
                i * static_cast<std::size_t>(jobs_) / n);
            ready_[owner].q.push_back(static_cast<std::uint32_t>(i));
        }
        for (unsigned w = 0; w < jobs_; ++w) {
            ready_[w].maxDepth = std::max<std::uint64_t>(
                ready_[w].maxDepth, ready_[w].q.size());
        }
    }
    doneCount_.store(0, std::memory_order_relaxed);
    if (jobs_ <= 1) {
        workerRound(0);
        return;
    }
    outstanding_.store(jobs_ - 1, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    workerRound(0);  // the coordinator is worker 0
    int spins = 0;
    while (outstanding_.load(std::memory_order_acquire) != 0) {
        if (++spins > 256) {
            std::this_thread::yield();
            spins = 0;
        }
    }
}

Time
ShardedKernel::earliestPending() const
{
    Time earliest = Time::max();
    for (const Island& is : islands_)
        earliest = std::min(earliest, is.queue->nextEventTime());
    for (std::size_t i = 0; i < islands_.size(); ++i)
        earliest = std::min(earliest, inboundEarliest(i));
    return earliest;
}

void
ShardedKernel::syncClocks(Time t)
{
    for (Island& is : islands_)
        is.queue->syncClock(t);
    if (t > now_)
        now_ = t;
}

void
ShardedKernel::quiesceFlush(Time t)
{
    // Sequential, in island order: judge every deferred check that the
    // run left behind (channel clocks only flush an island's inbox when
    // it executes, so checks emitted in the final windows linger).
    // Event-producing parcels with effect <= t cannot exist here — the
    // conservative horizon flushed them before the owning window ran.
    for (std::size_t i = 0; i < islands_.size(); ++i) {
        std::uint64_t parcels = 0;
        for (BarrierAgent* agent : agents_)
            parcels += agent->flushInbound(i, t, t);
        islands_[i].parcels += parcels;
    }
}

bool
ShardedKernel::runCore(Time limit, const std::function<bool()>* pred,
                       bool* pred_hit)
{
    startWorkers();
    useReady_ = mode_ == ScheduleMode::Stealing && jobs_ > 1 &&
                stealPolicy_ == StealPolicy::ReadyQueue;
    useToken_ = mode_ == ScheduleMode::Stealing && jobs_ > 1;
    const bool trig = trigArmed_.load(std::memory_order_relaxed);
    // Adaptive rounds apply only to predicate-free runs: for
    // runUntil()/runUntilTriggered() the round boundary *is* the stop
    // granularity, and the trigger and poll paths must stop at
    // identical virtual times, so both keep the base length.
    const bool adaptive = !windowsPinned_ && pred == nullptr && !trig;
    unsigned roundWindows = windowsPerRound_;
    for (;;) {
        // Round boundaries are the quiesce points: every worker is
        // parked, all clocks agree, channels hold only future work.
        if (trig && pred_hit != nullptr &&
            trigFired_.load(std::memory_order_relaxed)) {
            *pred_hit = true;
            ++triggerExits_;
            quiesceFlush(now_);
            return false;
        }
        if (pred != nullptr && (*pred)()) {
            *pred_hit = true;
            quiesceFlush(now_);
            return false;
        }
        const Time earliest = earliestPending();
        if (earliest == Time::max()) {
            quiesceFlush(now_);
            return true;  // drained
        }
        if (earliest > limit) {
            syncClocks(limit);
            quiesceFlush(limit);
            return false;
        }

        // The round covers roundWindows grid windows starting at the
        // slot holding the earliest pending work — idle gaps are jumped
        // here, globally and deterministically, instead of leapfrogged
        // window by window.
        const std::int64_t l = lookahead_.toNs();
        const Time base = std::max(now_, earliest);
        const Time roundStart = Time::fromNs(base.toNs() / l * l);
        const Time roundEnd = Time::fromNs(
            roundStart.toNs() +
            l * static_cast<std::int64_t>(roundWindows));
        const Time roundLimit = std::min(roundEnd - Time::ns(1), limit);
        Time initDone = std::max(roundStart - Time::ns(1), now_);
        if (initDone >= roundLimit) {
            // Degenerate round: the limit equals the synchronized clock
            // (e.g. the first run(Time(0)) with an event at t = 0).
            // Starting the clocks *below* the limit makes the window
            // containing it execute — mirroring EventQueue::run()'s
            // events-at-limit-run semantics — instead of every island
            // reporting roundDone untouched and the loop spinning.
            initDone = roundLimit - Time::ns(1);
        }
        dispatchRound(initDone, roundLimit);
        ++rounds_;
        // A token abort is sound only when nothing at or below the
        // round limit was skipped; the quiesced re-check is free here.
        assert(!roundAbort_.load(std::memory_order_relaxed) ||
               earliestPending() > roundLimit);
        if (adaptive) {
            // Every completed busy round doubles the next one (capped):
            // long predicate-free drains quiesce O(log) instead of
            // O(length / base) times. Derived from simulation-visible
            // state only, so round placement stays jobs-invariant.
            roundsSkipped_ += roundWindows / windowsPerRound_ - 1;
            if (roundWindows < kMaxAdaptiveWindows)
                roundWindows = std::min(kMaxAdaptiveWindows,
                                        roundWindows * 2);
        }
        syncClocks(roundLimit);
    }
}

bool
ShardedKernel::run(Time limit)
{
    return runCore(limit, nullptr, nullptr);
}

bool
ShardedKernel::runUntil(const std::function<bool()>& pred, Time limit)
{
    bool hit = false;
    runCore(limit, &pred, &hit);
    return hit;
}

bool
ShardedKernel::runUntilTriggered(std::uint64_t target, Time limit)
{
    startWorkers();
    // Quiesced: seed every counter's absolute value so work retired
    // before this call counts toward the target, exactly like the
    // polling equivalent `runUntil([&]{ return sum() >= target; })`.
    std::uint64_t sum = 0;
    for (Trigger& t : triggers_) {
        t.lastSeen = t.count();
        sum += t.lastSeen;
    }
    trigSum_.store(sum, std::memory_order_relaxed);
    trigTarget_ = target;
    trigFired_.store(sum >= target, std::memory_order_relaxed);
    trigArmed_.store(true, std::memory_order_relaxed);
    bool hit = false;
    runCore(limit, nullptr, &hit);
    trigArmed_.store(false, std::memory_order_relaxed);
    return hit;
}

void
ShardedKernel::advance(Time delta)
{
    const Time target = now_ + delta;
    runCore(target, nullptr, nullptr);
    syncClocks(target);
}

std::uint64_t
ShardedKernel::executed() const
{
    std::uint64_t total = 0;
    for (const Island& is : islands_)
        total += is.queue->executed();
    return total;
}

std::size_t
ShardedKernel::pending() const
{
    std::size_t total = 0;
    for (const Island& is : islands_)
        total += is.queue->pending();
    for (std::size_t i = 0; i < islands_.size(); ++i)
        for (BarrierAgent* agent : agents_)
            total += agent->inboundPending(i);
    return total;
}

ShardedKernel::KernelStats
ShardedKernel::kernelStats() const
{
    KernelStats s;
    s.barriers = rounds_;
    s.steals = steals_.load(std::memory_order_relaxed);
    s.triggerExits = triggerExits_;
    s.drainAborts = drainAborts_.load(std::memory_order_relaxed);
    s.roundsSkipped = roundsSkipped_;
    for (const ReadyShard& shard : ready_) {
        s.maxReadyQueueDepth =
            std::max(s.maxReadyQueueDepth, shard.maxDepth);
    }

    // Aggregate per *logical* island: a split node's planes fold into
    // one entry (the machine they model), and logical ids that no
    // physical island maps to are dropped rather than reported as
    // zero-work islands that would fake the imbalance spread.
    std::vector<std::uint64_t> perLogical(logicalIslandCount(), 0);
    std::vector<std::uint8_t> used(logicalIslandCount(), 0);
    for (std::size_t i = 0; i < islands_.size(); ++i) {
        const Island& is = islands_[i];
        s.windows += is.windows;
        s.channelParcels += is.parcels;
        s.maxClockLagNs = std::max(s.maxClockLagNs, is.maxLagNs);
        perLogical[logicalOf_[i]] += is.queue->executed();
        used[logicalOf_[i]] = 1;
    }
    for (std::size_t logical = 0; logical < perLogical.size(); ++logical) {
        if (!used[logical])
            continue;
        const std::uint64_t executed = perLogical[logical];
        s.maxIslandExecuted = std::max(s.maxIslandExecuted, executed);
        s.minIslandExecuted = s.executedPerIsland.empty()
                                  ? executed
                                  : std::min(s.minIslandExecuted, executed);
        s.executedPerIsland.push_back(executed);
    }
    for (const Worker& w : workers_) {
        s.workerBusyFraction.push_back(
            w.totalNs == 0 ? 0.0
                           : static_cast<double>(w.busyNs) /
                                 static_cast<double>(w.totalNs));
    }
    return s;
}

} // namespace ibsim
