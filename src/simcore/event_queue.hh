/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue owns virtual time for a whole simulated cluster.
 * Components schedule callbacks at absolute times; the queue executes them
 * in (time, insertion-order) order, which makes every run deterministic for
 * a fixed seed. Events can be cancelled through the EventHandle returned at
 * scheduling time, which is how retransmission timers are disarmed.
 */

#ifndef IBSIM_SIMCORE_EVENT_QUEUE_HH
#define IBSIM_SIMCORE_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "simcore/time.hh"

namespace ibsim {

/**
 * Handle to a scheduled event, used for cancellation.
 *
 * Handles are cheap value types; cancelling an already-executed or
 * already-cancelled event is a harmless no-op.
 */
class EventHandle
{
  public:
    EventHandle() : id_(0) {}

    bool valid() const { return id_ != 0; }

  private:
    friend class EventQueue;
    explicit EventHandle(std::uint64_t id) : id_(id) {}
    std::uint64_t id_;
};

/**
 * The discrete-event queue and virtual clock.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /** Current virtual time. */
    Time now() const { return now_; }

    /**
     * Schedule @p cb at absolute time @p when.
     *
     * @p when must not be in the past. Events scheduled for the same time
     * execute in insertion order.
     */
    EventHandle schedule(Time when, Callback cb);

    /** Schedule @p cb after a delay from now. */
    EventHandle
    scheduleAfter(Time delay, Callback cb)
    {
        return schedule(now_ + delay, std::move(cb));
    }

    /**
     * Cancel a scheduled event.
     *
     * @return true if the event was pending and is now cancelled.
     */
    bool cancel(EventHandle h);

    /** Number of pending (non-cancelled) events. */
    std::size_t pending() const { return pendingCount_; }

    /** Total events executed so far. */
    std::uint64_t executed() const { return executedCount_; }

    /**
     * Run until the queue is empty or @p limit is reached.
     *
     * The clock is left at the time of the last executed event (or at
     * @p limit when the limit cuts the run short).
     *
     * @return true if the queue drained, false if the limit was hit first.
     */
    bool run(Time limit = Time::max());

    /**
     * Run until @p pred returns true, checking after every event.
     *
     * @return true if the predicate was satisfied; false if the queue
     * drained or the limit was hit first.
     */
    bool runUntil(const std::function<bool()>& pred,
                  Time limit = Time::max());

    /**
     * Advance the clock to now() + delta, executing everything due.
     *
     * Unlike run(), the clock always ends exactly at the target time, which
     * models a host thread sleeping through a fixed interval (the
     * micro-benchmark's usleep).
     */
    void advance(Time delta);

  private:
    struct Entry
    {
        Time when;
        std::uint64_t seq;
        std::uint64_t id;
        Callback cb;

        bool
        operator>(const Entry& o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    /** Pop and execute the next event. Precondition: queue not empty. */
    void executeNext();

    /** Skip over cancelled entries at the head. */
    void skipCancelled();

    /** Drop cancelled entries wholesale when they dominate the heap. */
    void compact();

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
    std::unordered_set<std::uint64_t> cancelled_;
    Time now_;
    std::uint64_t nextSeq_ = 1;
    std::uint64_t nextId_ = 1;
    std::size_t pendingCount_ = 0;
    std::uint64_t executedCount_ = 0;
};

} // namespace ibsim

#endif // IBSIM_SIMCORE_EVENT_QUEUE_HH
