/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue owns virtual time for a whole simulated cluster.
 * Components schedule callbacks at absolute times; the queue executes them
 * in (time, insertion-order) order, which makes every run deterministic for
 * a fixed seed. Events can be cancelled through the EventHandle returned at
 * scheduling time, which is how retransmission timers are disarmed.
 *
 * Internals (see DESIGN.md, "Event kernel internals"): events live in a
 * generation-counted node pool and are indexed by a hierarchical timer
 * wheel (4 levels x 64 slots, 256 ns level-0 ticks, ~4.3 s horizon) for
 * near-future work, with a binary heap as the overflow tier for far-future
 * events (RC transport timeouts). A small (time, seq) "due" heap merges
 * wheel slots, overflow arrivals and same-window schedules so that
 * execution order is exactly the order the old single-heap kernel
 * produced. schedule() and cancel() are O(1) and allocation-free in steady
 * state; callbacks with captures up to Callback's inline capacity never
 * touch the allocator.
 */

#ifndef IBSIM_SIMCORE_EVENT_QUEUE_HH
#define IBSIM_SIMCORE_EVENT_QUEUE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "simcore/inline_function.hh"
#include "simcore/time.hh"

namespace ibsim {

/**
 * Handle to a scheduled event, used for cancellation.
 *
 * Handles are cheap value types; cancelling an already-executed or
 * already-cancelled event is a harmless no-op (and reports false). The id
 * packs a pool slot index with that slot's generation counter, so a stale
 * handle can never alias a later event that reused the slot.
 */
class EventHandle
{
  public:
    EventHandle() : id_(0) {}

    bool valid() const { return id_ != 0; }

  private:
    friend class EventQueue;
    explicit EventHandle(std::uint64_t id) : id_(id) {}
    std::uint64_t id_;
};

/**
 * The discrete-event queue and virtual clock.
 */
class EventQueue
{
  public:
    /**
     * Scheduled callback type. The inline capacity covers every capture on
     * the simulator's hot paths (a few pointers and integers); larger
     * captures still work through a heap box.
     */
    using Callback = InlineFunction<48>;

    EventQueue()
    {
        for (auto& level : slots_)
            level.fill(nil);
    }

    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /** Current virtual time. */
    Time now() const { return now_; }

    /**
     * Schedule @p cb at absolute time @p when.
     *
     * @p when must not be in the past. Events scheduled for the same time
     * execute in insertion order.
     */
    EventHandle schedule(Time when, Callback cb);

    /** Schedule @p cb after a delay from now. */
    EventHandle
    scheduleAfter(Time delay, Callback cb)
    {
        return schedule(now_ + delay, std::move(cb));
    }

    /**
     * Cancel a scheduled event in O(1).
     *
     * @return true if the event was pending and is now cancelled; false
     * for invalid, already-cancelled or already-executed handles.
     */
    bool cancel(EventHandle h);

    /** Number of pending (non-cancelled) events. */
    std::size_t pending() const { return pendingCount_; }

    /** Total events executed so far. */
    std::uint64_t executed() const { return executedCount_; }

    /**
     * Run until the queue is empty or @p limit is reached.
     *
     * The clock is left at the time of the last executed event (or at
     * @p limit when the limit cuts the run short).
     *
     * @return true if the queue drained, false if the limit was hit first.
     */
    bool run(Time limit = Time::max());

    /**
     * Run until @p pred returns true, checking after every event.
     *
     * @return true if the predicate was satisfied; false if the queue
     * drained or the limit was hit first.
     */
    bool runUntil(const std::function<bool()>& pred,
                  Time limit = Time::max());

    /**
     * Advance the clock to now() + delta, executing everything due.
     *
     * Unlike run(), the clock always ends exactly at the target time, which
     * models a host thread sleeping through a fixed interval (the
     * micro-benchmark's usleep).
     */
    void advance(Time delta);

    /**
     * Time of the earliest pending event, or Time::max() when the queue
     * is empty. Non-const: peeking may cascade wheel slots into the due
     * heap (the work run() would do anyway). Used by the ShardedKernel
     * driver to size conservative-lookahead windows.
     */
    Time nextEventTime();

    /**
     * Force the clock forward to @p t without executing anything. Only
     * legal when no pending event is due at or before @p t; the sharded
     * driver uses it to line island clocks up at window barriers.
     */
    void
    syncClock(Time t)
    {
        if (t > now_)
            now_ = t;
    }

    /**
     * Kernel introspection for tests and capacity planning. All counts are
     * O(1) reads of maintained state.
     */
    struct KernelStats
    {
        std::size_t poolNodes;      ///< node slots ever allocated
        std::size_t freeNodes;      ///< node slots on the free list
        std::size_t wheelNodes;     ///< events parked in wheel slots
        std::size_t dueNodes;       ///< events in the due heap
        std::size_t overflowNodes;  ///< events in the overflow heap
        std::uint64_t cancelledTotal;  ///< successful cancel() calls
    };

    KernelStats kernelStats() const;

  private:
    /** @{ Wheel geometry. */
    static constexpr int tickBits = 8;   ///< 256 ns level-0 granularity
    static constexpr int slotBits = 6;   ///< 64 slots per level
    static constexpr int levels = 4;     ///< horizon = 256ns << 24 ~ 4.3 s
    static constexpr std::uint32_t slotsPerLevel = 1u << slotBits;
    /** @} */

    static constexpr std::uint32_t nil = 0xffffffffu;

    enum class NodeState : std::uint8_t { Free, Pending, Cancelled };

    /** Where a live node is currently indexed (for cancel accounting). */
    enum class NodeHome : std::uint8_t { Due, Wheel, Overflow };

    struct Node
    {
        Time when;
        std::uint64_t seq = 0;
        std::uint32_t gen = 0;
        std::uint32_t next = nil;  ///< slot chain / free-list link
        NodeState state = NodeState::Free;
        NodeHome home = NodeHome::Due;
        Callback cb;
    };

    /** Ticks (256 ns units) of an absolute time. */
    static std::uint64_t
    tickOf(Time t)
    {
        return static_cast<std::uint64_t>(t.toNs()) >> tickBits;
    }

    std::uint32_t allocNode();
    void freeNode(std::uint32_t idx);

    /** Strict (when, seq) order between two pool nodes. */
    bool earlier(std::uint32_t a, std::uint32_t b) const;

    /** @{ Binary min-heaps of node indices ordered by earlier(). */
    void heapPush(std::vector<std::uint32_t>& heap, std::uint32_t idx);
    std::uint32_t heapPop(std::vector<std::uint32_t>& heap);
    /** @} */

    /** File a node under the due heap, a wheel slot or the overflow tier. */
    void placeNode(std::uint32_t idx);

    /** Drop cancelled overflow entries once they dominate the tier. */
    void sweepOverflow();

    /**
     * Advance the wheel until the due heap holds the earliest pending
     * events (cascading upper slots and draining the overflow tier).
     *
     * @return false when no events remain anywhere.
     */
    bool refillDue();

    /**
     * Index of the next pending event, kept on top of the due heap, or
     * nil when the queue is empty. Skips and reclaims cancelled nodes.
     */
    std::uint32_t nextRunnable();

    /** Pop @p idx off the due heap top and execute it. */
    void executeNode(std::uint32_t idx);

    std::vector<Node> pool_;
    std::uint32_t freeHead_ = nil;
    std::size_t freeCount_ = 0;

    /** @{ The three tiers. */
    std::array<std::array<std::uint32_t, slotsPerLevel>, levels> slots_{};
    std::array<std::uint64_t, levels> occupied_{};  ///< slot bitmaps
    std::size_t wheelCount_ = 0;
    std::vector<std::uint32_t> due_;
    std::vector<std::uint32_t> overflow_;
    std::size_t overflowCancelled_ = 0;
    /** @} */

    /** Wheel read position in ticks; trails/leads now_ independently. */
    std::uint64_t wheelTick_ = 0;

    Time now_;
    std::uint64_t nextSeq_ = 1;
    std::size_t pendingCount_ = 0;
    std::uint64_t executedCount_ = 0;
    std::uint64_t cancelledCount_ = 0;
};

} // namespace ibsim

#endif // IBSIM_SIMCORE_EVENT_QUEUE_HH
