/**
 * @file
 * Conservative-lookahead parallel driver over per-island EventQueues.
 *
 * A ShardedKernel partitions a simulation into islands — in the cluster
 * layer one island per node (the node's RNIC plus its fabric port) — each
 * owning a private EventQueue, and executes them in lockstep windows
 * [T, T + lookahead). The lookahead is the minimum latency any influence
 * needs to cross between islands (for the fabric: link latency plus the
 * per-packet overhead, since serialization and chaos delays only push
 * arrivals later), so everything scheduled inside a window by another
 * island lands strictly after the window's end barrier. Cross-island
 * work travels through per-(src, dst) channels that BarrierAgents (the
 * Fabric, the InvariantMonitor) drain at each barrier, merging batches
 * in canonical (timestamp, wire-id) order — which makes the execution
 * deterministic for a fixed seed regardless of the worker count.
 *
 * Threading model: islands are assigned to workers by the fixed mapping
 * island % jobs. Every window runs two parallel phases — execute the
 * window, then flush each island's inbound channels — separated by spin
 * barriers. jobs = 1 runs the identical windowed algorithm inline with
 * no threads at all, which is the "sequential" reference the differential
 * tests compare against: a jobs = N run must be bit-identical to it
 * (trace hashes, per-QP stats, oracle verdicts).
 *
 * What the kernel deliberately does not do: share any RNG, wire-id
 * counter or packet pool between islands (the fabric forks all three per
 * island), or interleave same-timestamp events across islands the way a
 * single global queue would. Island mode is therefore its own
 * deterministic mode, not a bit-replay of the single-queue mode — the
 * single-queue path is untouched and keeps its own goldens.
 */

#ifndef IBSIM_SIMCORE_SHARDED_KERNEL_HH
#define IBSIM_SIMCORE_SHARDED_KERNEL_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "simcore/event_queue.hh"
#include "simcore/time.hh"

namespace ibsim {

/**
 * Parallel conservative-lookahead driver over N island EventQueues.
 */
class ShardedKernel
{
  public:
    /**
     * A component holding cross-island channels. flushInbound(i) is
     * called at every window barrier, once per island, from the worker
     * that owns island i; it must inject everything queued for that
     * island (merged in a canonical order) and return the parcel count.
     * Phase separation guarantees no channel is written concurrently
     * with its flush.
     */
    class BarrierAgent
    {
      public:
        virtual ~BarrierAgent() = default;

        /** Drain work queued for @p island since the last barrier. */
        virtual std::uint64_t flushInbound(std::size_t island) = 0;
    };

    /**
     * @param lookahead minimum cross-island influence latency (> 0)
     * @param jobs worker count; clamped to the island count at startup,
     *        1 = run the same windowed algorithm inline, no threads
     */
    ShardedKernel(Time lookahead, unsigned jobs);
    ~ShardedKernel();

    ShardedKernel(const ShardedKernel&) = delete;
    ShardedKernel& operator=(const ShardedKernel&) = delete;

    /** Add an island (before the first run). Returns its index. */
    std::size_t addIsland();

    EventQueue& island(std::size_t i) { return *islands_[i]; }
    std::size_t islandCount() const { return islands_.size(); }

    /** Effective worker count (clamped once running). */
    unsigned jobs() const { return jobs_; }

    Time lookahead() const { return lookahead_; }

    /** Barrier-synchronized virtual time. */
    Time now() const { return now_; }

    /** Register / remove a channel holder (fabric, monitor, ...). */
    void addBarrierAgent(BarrierAgent* agent);
    void removeBarrierAgent(BarrierAgent* agent);

    /**
     * Run until every island drains (and all channels are empty) or
     * @p limit is reached. Mirrors EventQueue::run(): events at exactly
     * @p limit execute; on a limit cut every island clock is left at
     * @p limit. @return true if the simulation drained.
     */
    bool run(Time limit = Time::max());

    /**
     * Run until @p pred holds, checking at every window barrier (the
     * sharded counterpart of EventQueue::runUntil()'s per-event check;
     * windows are one lookahead — sub-microsecond — wide, so the
     * predicate granularity is the lookahead, not the run).
     * @return true if the predicate was satisfied.
     */
    bool runUntil(const std::function<bool()>& pred,
                  Time limit = Time::max());

    /** Advance all islands to now() + delta; clocks end exactly there. */
    void advance(Time delta);

    /** Total events executed across all islands. */
    std::uint64_t executed() const;

    /** Pending events across all islands. */
    std::size_t pending() const;

    /**
     * Sharding observability: barrier/window counts, channel traffic
     * and the per-island event-count spread (imbalance is what caps the
     * parallel speedup).
     */
    struct KernelStats
    {
        std::uint64_t barriers = 0;        ///< window barriers crossed
        std::uint64_t windows = 0;         ///< windows executed
        std::uint64_t channelParcels = 0;  ///< cross-island parcels flushed
        std::vector<std::uint64_t> executedPerIsland;
        std::uint64_t maxIslandExecuted = 0;
        std::uint64_t minIslandExecuted = 0;
    };

    KernelStats kernelStats() const;

  private:
    enum class Phase : std::uint8_t { RunWindow, Flush, Exit };

    /**
     * The window loop shared by run()/runUntil()/advance(). Channels
     * are empty at every loop top (flushed by the previous barrier).
     * @return true when drained, false when the limit cut the run.
     */
    bool runCore(Time limit, const std::function<bool()>* pred,
                 bool* pred_hit);

    /** Execute one parallel phase across all islands and wait for it. */
    void dispatch(Phase phase, Time limit);

    /** The slice of islands owned by @p worker, for the current phase. */
    void workerShare(unsigned worker);

    void workerLoop(unsigned worker);

    /** Spawn the worker pool on first use (islands are final by then). */
    void startWorkers();

    /** Earliest pending event over all islands (channels are empty). */
    Time earliestEvent();

    /** Line every island clock up at @p t (t >= every island's now). */
    void syncClocks(Time t);

    Time lookahead_;
    unsigned jobs_;
    std::vector<std::unique_ptr<EventQueue>> islands_;
    std::vector<BarrierAgent*> agents_;
    Time now_;
    bool started_ = false;

    /** @{ Stats. parcelsPerIsland_[i] is only written by i's owner. */
    std::uint64_t barriers_ = 0;
    std::uint64_t windows_ = 0;
    std::vector<std::uint64_t> parcelsPerIsland_;
    /** @} */

    /**
     * @{ Worker pool protocol. The coordinator writes phase_/phaseLimit_,
     * publishes them with a release increment of epoch_, works its own
     * share (it is worker 0), then waits for outstanding_ to hit zero.
     * Workers spin on epoch_, run their share, and decrement.
     */
    std::vector<std::thread> workers_;
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<unsigned> outstanding_{0};
    Phase phase_ = Phase::RunWindow;
    Time phaseLimit_;
    /** @} */
};

} // namespace ibsim

#endif // IBSIM_SIMCORE_SHARDED_KERNEL_HH
