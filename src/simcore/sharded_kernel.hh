/**
 * @file
 * Conservative-lookahead parallel driver over per-island EventQueues.
 *
 * A ShardedKernel partitions a simulation into islands — in the cluster
 * layer one island per node (or per node *plane* when a hot node is
 * split) — each owning a private EventQueue. Cross-island work travels
 * through per-(src, dst) channels that BarrierAgents (the Fabric, the
 * InvariantMonitor) drain in canonical (timestamp, wire-id) order, which
 * makes the execution deterministic for a fixed seed regardless of the
 * worker count or schedule mode.
 *
 * Synchronization is pairwise, not global. Every island publishes a
 * channel clock — the virtual time it has fully executed and flushed
 * through — and an island only blocks on the minimum clock of its
 * *in-neighbors* in the declared edge graph (declareEdge(); the cluster
 * layer declares an edge per QP connection, and a UD-capable island
 * falls back to dense edges because UD datagrams name their destination
 * per work request). The lookahead L is the minimum virtual time any
 * cross-island influence needs (link latency + per-packet overhead), so
 * an island whose in-neighbors have published clock c may safely execute
 * through c + L: everything its neighbors still owe it lands strictly
 * later. Windows are aligned to an absolute grid of L-sized slots, which
 * keeps each island's flush/run step sequence a pure function of the
 * virtual state — the determinism backbone (DESIGN.md §12.b).
 *
 * Execution is batched into *rounds* of windowsPerRound() grid windows.
 * Inside a round islands run fully asynchronously under the channel-clock
 * constraint; between rounds the kernel quiesces once to check
 * runUntil() predicates, detect drain, and jump over idle gaps to the
 * globally earliest pending work. Two schedule modes pick who executes
 * which island: ScheduleMode::Static pins contiguous island blocks to
 * workers (the PR-6 style fallback), ScheduleMode::Stealing lets any
 * idle worker claim any runnable island at window granularity via an
 * atomic per-island claim (a steal is a claim by a different worker than
 * the previous one). Claims only decide *who* executes; *what* each
 * island executes per window is schedule-independent, so trace hashes,
 * stats and oracle verdicts are bit-identical at any jobs count in
 * either mode. jobs = 1 runs the identical round/window algorithm inline
 * with no threads — the "sequential" reference the differential tests
 * compare against.
 *
 * Round three (DESIGN.md §12.c) makes round boundaries the exception
 * instead of the rule. Per-island *trigger counters* — monotone,
 * island-local progress counts registered via addTrigger() — are folded
 * into a global sum inside the worker pass right after each executed
 * window, so runUntilTriggered() detects satisfaction the moment the
 * crossing window retires and the quiesce check collapses to one flag
 * read (the polling runUntil() stays as the fallback for opaque
 * predicates; both stop at the same round boundary, so they are
 * bit-identical). A Safra-style *drain token* walks the islands under
 * their claim bytes and aborts the null-message leapfrog tail of a
 * round once two consecutive clean circuits prove nothing at or below
 * the round limit remains — a drained mesh stops after a handful of
 * token visits instead of creeping clock windows to the round limit.
 * The stealing scheduler's per-pass O(islands) claim scan is replaced
 * by a sharded *ready queue* (islands enqueue when an in-neighbor clock
 * publish crosses their recorded wake threshold; workers pop LIFO from
 * their own shard and steal FIFO from others), and `windowsPerRound`
 * *adapts* — predicate-free runs double the round length up to a cap,
 * purely from simulation-visible state, so long drains quiesce
 * logarithmically rather than linearly often.
 *
 * What the kernel deliberately does not do: share any RNG, wire-id
 * counter or packet pool between islands (the fabric forks all three per
 * island), or interleave same-timestamp events across islands the way a
 * single global queue would. Island mode is therefore its own
 * deterministic mode, not a bit-replay of the single-queue mode — the
 * single-queue path is untouched and keeps its own goldens.
 */

#ifndef IBSIM_SIMCORE_SHARDED_KERNEL_HH
#define IBSIM_SIMCORE_SHARDED_KERNEL_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "simcore/event_queue.hh"
#include "simcore/time.hh"

namespace ibsim {

/** Who executes which island (never *what* an island executes). */
enum class ScheduleMode : std::uint8_t
{
    /** Fixed contiguous island blocks per worker (PR-6 style fallback). */
    Static,
    /** Idle workers claim any runnable island at window granularity. */
    Stealing,
};

/** How Stealing mode finds runnable islands (never *what* they run). */
enum class StealPolicy : std::uint8_t
{
    /** Sharded ready queue: wake-driven, O(1) pops (the default). */
    ReadyQueue,
    /** The round-two per-pass O(islands) claim scan (bench reference). */
    ScanLegacy,
};

/**
 * Parallel conservative-lookahead driver over N island EventQueues.
 */
class ShardedKernel
{
  public:
    /**
     * A component holding cross-island channels (fabric, monitor, ...).
     *
     * flushInbound(i, now, horizon) is called by the worker currently
     * executing island i immediately before each of i's windows, with
     * `now` = i's channel clock (everything executed so far) and
     * `horizon` = the window's run limit. The agent must
     *
     *  - inject every buffered item whose earliest *effect* (first event
     *    it schedules) is <= horizon — the channel-clock protocol
     *    guarantees all such items are already visible — and
     *  - evaluate every deferred check whose timestamp is <= now (its
     *    target state can no longer change before the check's meaning),
     *
     * both in the canonical (time, wire-id) merge order, and return the
     * number of items consumed. The kernel additionally issues a
     * sequential flush with now = horizon = the final synchronized clock
     * whenever a run quiesces, so deferred checks never outlive a run.
     */
    class BarrierAgent
    {
      public:
        virtual ~BarrierAgent() = default;

        /** Drain work queued for @p island up to the given thresholds. */
        virtual std::uint64_t flushInbound(std::size_t island, Time now,
                                           Time horizon) = 0;

        /**
         * Earliest effect time buffered for @p island, Time::max() when
         * none. Items that schedule events (parcels) must be reported —
         * the kernel uses this to pick windows and detect drain; purely
         * advisory items (deferred checks) may be omitted.
         */
        virtual Time inboundEarliest(std::size_t) { return Time::max(); }

        /** Buffered event-producing items for @p island (for pending()). */
        virtual std::size_t inboundPending(std::size_t) { return 0; }
    };

    /**
     * @param lookahead minimum cross-island influence latency (> 0)
     * @param jobs worker count; clamped to the island count at startup,
     *        1 = run the same round/window algorithm inline, no threads
     * @param mode who executes which island (content is mode-invariant)
     */
    ShardedKernel(Time lookahead, unsigned jobs,
                  ScheduleMode mode = ScheduleMode::Stealing);
    ~ShardedKernel();

    ShardedKernel(const ShardedKernel&) = delete;
    ShardedKernel& operator=(const ShardedKernel&) = delete;

    /** Add an island (before the first run). Returns its index. */
    std::size_t addIsland();

    EventQueue& island(std::size_t i) { return *islands_[i].queue; }
    std::size_t islandCount() const { return islands_.size(); }

    /** Effective worker count (clamped once running). */
    unsigned jobs() const { return jobs_; }

    ScheduleMode scheduleMode() const { return mode_; }

    Time lookahead() const { return lookahead_; }

    /** Round-synchronized virtual time. */
    Time now() const { return now_; }

    /** @{ The cross-island edge graph driving the channel clocks.
     *
     * declareEdge(src, dst) records that src can influence dst (packets,
     * deferred checks); dst then blocks on src's clock. declareDense(i)
     * connects i to every island both ways — including islands added
     * *after* the call — the sound fallback for islands whose
     * destinations are not known up front (UD). While no
     * edge has ever been declared the kernel assumes a dense graph, so a
     * raw kernel user who never declares edges gets conservative (and
     * correct) all-pairs synchronization. Edges are normally declared at
     * setup; declaring one mid-run is allowed only while the kernel is
     * quiesced (between run()/advance() calls). */
    void declareEdge(std::size_t src, std::size_t dst);
    void declareDense(std::size_t island);
    bool hasEdge(std::size_t src, std::size_t dst) const;

    /**
     * In-neighbor islands of @p i — the only islands whose channels can
     * hold work for i, so agents may restrict their per-window channel
     * scans to this list instead of probing every island. Rebuilt when
     * the kernel starts and on quiesced edge declarations; empty before
     * the first run.
     */
    const std::vector<std::uint32_t>&
    inNeighbors(std::size_t i) const
    {
        return islands_[i].inNbr;
    }
    /** @} */

    /** @{ Logical islands. Splitting a hot node over several islands
     * (cluster addNodePlanes()) maps its planes to one *logical* island
     * so KernelStats attributes work to the node, not to whichever
     * worker or plane executed it. Defaults to identity. */
    void setLogicalIsland(std::size_t island, std::size_t logical);
    std::size_t logicalIslandCount() const;
    /** @} */

    /**
     * Pin the round length (the quiesce/steal-rebalance granularity).
     * Calling this disables adaptive rounds: predicate-free runs
     * otherwise double the round length per busy round (up to
     * kMaxAdaptiveWindows) so long drains quiesce logarithmically
     * often. runUntil()/runUntilTriggered() always use the base length
     * — the round boundary is their stop granularity, and trigger and
     * poll paths must stop at identical times.
     */
    void setWindowsPerRound(unsigned windows);
    unsigned windowsPerRound() const { return windowsPerRound_; }

    /** Adaptive round-length cap for predicate-free runs. */
    static constexpr unsigned kMaxAdaptiveWindows = 256;

    /** Stealing-mode island lookup policy (content is policy-invariant). */
    void setStealPolicy(StealPolicy policy) { stealPolicy_ = policy; }
    StealPolicy stealPolicy() const { return stealPolicy_; }

    /** @{ Per-island trigger counters — the runUntil fast path.
     *
     * A trigger is a monotone (non-decreasing under simulated
     * execution) counter that reads only @p island's state — e.g. a
     * CQ's total completion count, or "work requests retired on this
     * QP". The worker executing the island re-reads it after every
     * executed window and folds the delta into a global sum, so
     * runUntilTriggered(target) detects `sum >= target` inside the
     * worker pass, the moment the crossing window retires. The run
     * still stops at the next round boundary (run-ahead makes
     * mid-round truncation non-deterministic — DESIGN.md §12.c), which
     * is exactly where the polling fallback
     * `runUntil([&]{ return sum() >= target; })` stops too: the two
     * are bit-identical, triggers just replace the O(islands) quiesce
     * poll with one flag read and give the drain token a satisfied
     * round tail to abort. Registration is only legal while the kernel
     * is quiesced (also *between* runs — counters re-seed per call). */
    using TriggerCount = std::function<std::uint64_t()>;
    std::size_t addTrigger(std::size_t island, TriggerCount count);
    void clearTriggers();
    std::size_t triggerCount() const { return triggers_.size(); }

    /**
     * Run until the registered trigger counters sum to >= @p target.
     * @return true if the target was reached (false = limit cut).
     */
    bool runUntilTriggered(std::uint64_t target, Time limit = Time::max());
    /** @} */

    /** Register / remove a channel holder (fabric, monitor, ...). */
    void addBarrierAgent(BarrierAgent* agent);
    void removeBarrierAgent(BarrierAgent* agent);

    /**
     * Run until every island drains (and all channels are empty) or
     * @p limit is reached. Mirrors EventQueue::run(): events at exactly
     * @p limit execute; on a limit cut every island clock is left at
     * @p limit. @return true if the simulation drained.
     */
    bool run(Time limit = Time::max());

    /**
     * Run until @p pred holds, checking at every round boundary (the
     * kernel quiesces once per windowsPerRound() grid windows; the
     * predicate may read any cross-island state there).
     * @return true if the predicate was satisfied.
     */
    bool runUntil(const std::function<bool()>& pred,
                  Time limit = Time::max());

    /** Advance all islands to now() + delta; clocks end exactly there. */
    void advance(Time delta);

    /** Total events executed across all islands. */
    std::uint64_t executed() const;

    /** Pending events across all islands (incl. buffered parcels). */
    std::size_t pending() const;

    /**
     * Sharding observability: round/window counts, channel traffic, the
     * per-logical-island event-count spread (imbalance is what caps the
     * parallel speedup), and scheduler behaviour. steals, maxClockLagNs,
     * workerBusyFraction, drainAborts and maxReadyQueueDepth describe
     * the *schedule*, which is timing-dependent — they are not part of
     * the deterministic surface the differential tests compare
     * (triggerExits and roundsSkipped are deterministic).
     */
    struct KernelStats
    {
        std::uint64_t barriers = 0;        ///< round quiesce points
        std::uint64_t windows = 0;         ///< island-windows executed
        std::uint64_t channelParcels = 0;  ///< cross-island items flushed
        std::uint64_t steals = 0;          ///< cross-worker island claims
        std::uint64_t maxClockLagNs = 0;   ///< worst blocked-island lag
        std::uint64_t triggerExits = 0;    ///< runs exited via trigger flag
        std::uint64_t drainAborts = 0;     ///< round tails cut by the token
        std::uint64_t roundsSkipped = 0;   ///< quiesces adaptive rounds saved
        std::uint64_t maxReadyQueueDepth = 0;  ///< deepest ready shard seen
        std::vector<std::uint64_t> executedPerIsland;  ///< logical islands
        std::uint64_t maxIslandExecuted = 0;
        std::uint64_t minIslandExecuted = 0;
        std::vector<double> workerBusyFraction;  ///< per worker
    };

    KernelStats kernelStats() const;

  private:
    /** Outcome of one attempt to advance an island inside a round. */
    enum class Step : std::uint8_t { Advanced, Blocked, RoundDone };

    /** "No worker has executed this island yet" (steal detection). */
    static constexpr std::uint32_t kNoWorker = 0xffffffffu;

    /** @{ Ready-queue scheduling states (Island::sched). An island is
     * in exactly one ready shard while kSchedReady (enqueue goes
     * through a Blocked->Ready CAS, so there is a single winner). */
    static constexpr std::uint8_t kSchedBlocked = 0;  ///< waiting on a wake
    static constexpr std::uint8_t kSchedReady = 1;    ///< in a ready shard
    static constexpr std::uint8_t kSchedRunning = 2;  ///< popped, executing
    static constexpr std::uint8_t kSchedDone = 3;     ///< round finished
    /** @} */

    /** Per-island execution state. done is the published channel clock. */
    struct alignas(64) Island
    {
        std::unique_ptr<EventQueue> queue;
        std::atomic<std::int64_t> done{0};
        std::atomic<std::uint8_t> claim{0};
        std::atomic<bool> roundDone{false};
        std::atomic<std::uint8_t> sched{kSchedBlocked};  ///< ready-queue state
        std::atomic<bool> dirty{false};  ///< executed since last token visit
        /** Min in-neighbor clock (ns) that would unblock this island. */
        std::atomic<std::int64_t> wakeAt{0};
        std::uint32_t lastWorker = kNoWorker;  ///< steal detection (under claim)
        std::vector<std::uint32_t> inNbr;  ///< in-neighbor island indices
        std::vector<std::uint32_t> outNbr;  ///< out-neighbor island indices
        std::vector<std::uint32_t> trig;  ///< indices into triggers_
        std::uint64_t windows = 0;       ///< windows executed (under claim)
        std::uint64_t parcels = 0;       ///< items flushed (under claim)
        std::uint64_t maxLagNs = 0;      ///< worst blocked lag (under claim)
    };

    /** A monotone island-local progress counter (addTrigger()). */
    struct Trigger
    {
        std::size_t island;
        TriggerCount count;
        /** Last value folded into trigSum_ (owned by i's executor). */
        std::uint64_t lastSeen = 0;
    };

    /** One worker's shard of the ready queue (Stealing + ReadyQueue). */
    struct alignas(64) ReadyShard
    {
        std::mutex m;
        std::deque<std::uint32_t> q;
        std::uint64_t maxDepth = 0;  ///< observability (under m)
    };

    /** Per-worker wall-clock accounting (observability only). */
    struct alignas(64) Worker
    {
        std::thread thread;
        std::uint64_t busyNs = 0;
        std::uint64_t totalNs = 0;
    };

    /**
     * The round loop shared by run()/runUntil()/advance().
     * @return true when drained, false when the limit cut the run.
     */
    bool runCore(Time limit, const std::function<bool()>* pred,
                 bool* pred_hit);

    /** Execute one round up to @p round_limit across all workers. */
    void dispatchRound(Time init_done, Time round_limit);

    /** One worker's participation in the current round. */
    void workerRound(unsigned worker);

    /** The round-two scan loop (Static, jobs = 1, and ScanLegacy). */
    void workerRoundScan(unsigned worker);

    /** The ready-queue loop (Stealing + ReadyQueue, jobs > 1). */
    void workerRoundReady(unsigned worker);

    /** Advance island @p i as far as the channel clocks allow. */
    Step stepIsland(unsigned worker, std::size_t i, Time round_limit);

    /** Fold island @p i's trigger counters into trigSum_ (its executor). */
    void noteTriggers(Island& is);

    /** Enqueue a now-runnable island on @p worker's ready shard. */
    void pushReady(unsigned worker, std::uint32_t island);

    /** Pop from own shard (LIFO) or steal (FIFO). False when empty. */
    bool popReady(unsigned worker, std::uint32_t& island);

    /** After a clock publish at @p clock_ns: enqueue out-neighbors whose
     * wake threshold the new clock satisfies (ready-queue mode). */
    void wakeOutNeighbors(unsigned worker, std::size_t i,
                          std::int64_t clock_ns);

    /** Raw min in-neighbor clock in ns (wake re-check; max when none). */
    std::int64_t minInNeighborClockNs(const Island& is) const;

    /** Park a blocked island and close the block-vs-wake race. */
    void blockIsland(unsigned worker, std::uint32_t island);

    /** Advance the drain token a bounded number of visits; true when it
     * proved the round tail empty and set roundAbort_. */
    bool tryTokenPass();

    /** Sequential (jobs = 1) drain probe: nothing pending <= @p t. */
    bool allQuietBelow(Time t) const;

    /** Safe horizon of island @p i: min in-neighbor clock + lookahead. */
    Time safeHorizon(const Island& is) const;

    /** Earliest buffered inbound effect for island @p i (all agents). */
    Time inboundEarliest(std::size_t i) const;

    void workerLoop(unsigned worker);

    /** Spawn the worker pool on first use (islands are final by then). */
    void startWorkers();

    /** Rebuild every island's in-neighbor list from the edge matrix. */
    void rebuildNeighbors();

    /** Grow the edge matrix to the island count, preserving entries. */
    void growEdges();

    /** Whether @p island was declared dense (edges to every island). */
    bool isDense(std::size_t island) const;

    /** Earliest pending work over all islands and channels (quiesced). */
    Time earliestPending() const;

    /** Line every island clock up at @p t (t >= every island's now). */
    void syncClocks(Time t);

    /** Sequential end-of-run flush: judge deferred checks at @p t. */
    void quiesceFlush(Time t);

    /** End of the grid window containing @p t (multiples of lookahead). */
    Time gridEnd(Time t) const;

    Time lookahead_;
    unsigned jobs_;
    ScheduleMode mode_;
    StealPolicy stealPolicy_ = StealPolicy::ReadyQueue;
    unsigned windowsPerRound_ = 16;
    bool windowsPinned_ = false;  ///< setWindowsPerRound disables adaptation
    std::deque<Island> islands_;
    std::vector<BarrierAgent*> agents_;
    Time now_;
    bool started_ = false;
    bool useReady_ = false;   ///< this run schedules via the ready queue
    bool useToken_ = false;   ///< this run may abort tails via the token

    /** @{ Edge graph. Dense until the first declareEdge()/declareDense(). */
    std::vector<std::vector<std::uint8_t>> edges_;  ///< [src][dst]
    std::vector<std::uint8_t> dense_;  ///< islands with all-pairs edges
    bool anyEdgeDeclared_ = false;
    /** @} */

    std::vector<std::size_t> logicalOf_;

    /** @{ Stats (coordinator-written or per-island under claim). */
    std::uint64_t rounds_ = 0;
    std::atomic<std::uint64_t> steals_{0};
    std::uint64_t triggerExits_ = 0;   ///< coordinator-written
    std::uint64_t roundsSkipped_ = 0;  ///< coordinator-written
    std::atomic<std::uint64_t> drainAborts_{0};
    /** @} */

    /** @{ Trigger machinery. lastSeen lives in Trigger (per executor);
     * the sum and fire flag are the only cross-worker state. */
    std::vector<Trigger> triggers_;
    std::atomic<std::uint64_t> trigSum_{0};
    std::uint64_t trigTarget_ = 0;
    std::atomic<bool> trigArmed_{false};
    std::atomic<bool> trigFired_{false};
    /** @} */

    /** @{ Drain token (Stealing, jobs > 1). One holder at a time via
     * tokenBusy_; pos/clean are handed between holders under it. */
    std::atomic<bool> tokenBusy_{false};
    std::uint32_t tokenPos_ = 0;
    std::uint32_t tokenClean_ = 0;
    std::atomic<bool> roundAbort_{false};
    std::uint64_t seqWindowsRound_ = 0;  ///< jobs = 1 drain-probe gate
    /** @} */

    /** Ready-queue shards (one per worker; Stealing + ReadyQueue). */
    std::deque<ReadyShard> ready_;

    /**
     * @{ Worker pool protocol. The coordinator resets the per-island
     * round state, publishes the round with a release increment of
     * epoch_, participates as worker 0, then waits for every worker to
     * park (outstanding_ == 0). Workers wake on epoch_, execute islands
     * until all islands report roundDone (doneCount_ == islandCount),
     * then park. Claims give the cross-worker happens-before when an
     * island migrates between workers.
     */
    std::deque<Worker> workers_;
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<unsigned> outstanding_{0};
    std::atomic<std::size_t> doneCount_{0};
    std::atomic<bool> exit_{false};
    Time roundLimit_;
    /** @} */
};

} // namespace ibsim

#endif // IBSIM_SIMCORE_SHARDED_KERNEL_HH
