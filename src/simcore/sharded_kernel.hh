/**
 * @file
 * Conservative-lookahead parallel driver over per-island EventQueues.
 *
 * A ShardedKernel partitions a simulation into islands — in the cluster
 * layer one island per node (or per node *plane* when a hot node is
 * split) — each owning a private EventQueue. Cross-island work travels
 * through per-(src, dst) channels that BarrierAgents (the Fabric, the
 * InvariantMonitor) drain in canonical (timestamp, wire-id) order, which
 * makes the execution deterministic for a fixed seed regardless of the
 * worker count or schedule mode.
 *
 * Synchronization is pairwise, not global. Every island publishes a
 * channel clock — the virtual time it has fully executed and flushed
 * through — and an island only blocks on the minimum clock of its
 * *in-neighbors* in the declared edge graph (declareEdge(); the cluster
 * layer declares an edge per QP connection, and a UD-capable island
 * falls back to dense edges because UD datagrams name their destination
 * per work request). The lookahead L is the minimum virtual time any
 * cross-island influence needs (link latency + per-packet overhead), so
 * an island whose in-neighbors have published clock c may safely execute
 * through c + L: everything its neighbors still owe it lands strictly
 * later. Windows are aligned to an absolute grid of L-sized slots, which
 * keeps each island's flush/run step sequence a pure function of the
 * virtual state — the determinism backbone (DESIGN.md §12.b).
 *
 * Execution is batched into *rounds* of windowsPerRound() grid windows.
 * Inside a round islands run fully asynchronously under the channel-clock
 * constraint; between rounds the kernel quiesces once to check
 * runUntil() predicates, detect drain, and jump over idle gaps to the
 * globally earliest pending work. Two schedule modes pick who executes
 * which island: ScheduleMode::Static pins contiguous island blocks to
 * workers (the PR-6 style fallback), ScheduleMode::Stealing lets any
 * idle worker claim any runnable island at window granularity via an
 * atomic per-island claim (a steal is a claim by a different worker than
 * the previous one). Claims only decide *who* executes; *what* each
 * island executes per window is schedule-independent, so trace hashes,
 * stats and oracle verdicts are bit-identical at any jobs count in
 * either mode. jobs = 1 runs the identical round/window algorithm inline
 * with no threads — the "sequential" reference the differential tests
 * compare against.
 *
 * What the kernel deliberately does not do: share any RNG, wire-id
 * counter or packet pool between islands (the fabric forks all three per
 * island), or interleave same-timestamp events across islands the way a
 * single global queue would. Island mode is therefore its own
 * deterministic mode, not a bit-replay of the single-queue mode — the
 * single-queue path is untouched and keeps its own goldens.
 */

#ifndef IBSIM_SIMCORE_SHARDED_KERNEL_HH
#define IBSIM_SIMCORE_SHARDED_KERNEL_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "simcore/event_queue.hh"
#include "simcore/time.hh"

namespace ibsim {

/** Who executes which island (never *what* an island executes). */
enum class ScheduleMode : std::uint8_t
{
    /** Fixed contiguous island blocks per worker (PR-6 style fallback). */
    Static,
    /** Idle workers claim any runnable island at window granularity. */
    Stealing,
};

/**
 * Parallel conservative-lookahead driver over N island EventQueues.
 */
class ShardedKernel
{
  public:
    /**
     * A component holding cross-island channels (fabric, monitor, ...).
     *
     * flushInbound(i, now, horizon) is called by the worker currently
     * executing island i immediately before each of i's windows, with
     * `now` = i's channel clock (everything executed so far) and
     * `horizon` = the window's run limit. The agent must
     *
     *  - inject every buffered item whose earliest *effect* (first event
     *    it schedules) is <= horizon — the channel-clock protocol
     *    guarantees all such items are already visible — and
     *  - evaluate every deferred check whose timestamp is <= now (its
     *    target state can no longer change before the check's meaning),
     *
     * both in the canonical (time, wire-id) merge order, and return the
     * number of items consumed. The kernel additionally issues a
     * sequential flush with now = horizon = the final synchronized clock
     * whenever a run quiesces, so deferred checks never outlive a run.
     */
    class BarrierAgent
    {
      public:
        virtual ~BarrierAgent() = default;

        /** Drain work queued for @p island up to the given thresholds. */
        virtual std::uint64_t flushInbound(std::size_t island, Time now,
                                           Time horizon) = 0;

        /**
         * Earliest effect time buffered for @p island, Time::max() when
         * none. Items that schedule events (parcels) must be reported —
         * the kernel uses this to pick windows and detect drain; purely
         * advisory items (deferred checks) may be omitted.
         */
        virtual Time inboundEarliest(std::size_t) { return Time::max(); }

        /** Buffered event-producing items for @p island (for pending()). */
        virtual std::size_t inboundPending(std::size_t) { return 0; }
    };

    /**
     * @param lookahead minimum cross-island influence latency (> 0)
     * @param jobs worker count; clamped to the island count at startup,
     *        1 = run the same round/window algorithm inline, no threads
     * @param mode who executes which island (content is mode-invariant)
     */
    ShardedKernel(Time lookahead, unsigned jobs,
                  ScheduleMode mode = ScheduleMode::Stealing);
    ~ShardedKernel();

    ShardedKernel(const ShardedKernel&) = delete;
    ShardedKernel& operator=(const ShardedKernel&) = delete;

    /** Add an island (before the first run). Returns its index. */
    std::size_t addIsland();

    EventQueue& island(std::size_t i) { return *islands_[i].queue; }
    std::size_t islandCount() const { return islands_.size(); }

    /** Effective worker count (clamped once running). */
    unsigned jobs() const { return jobs_; }

    ScheduleMode scheduleMode() const { return mode_; }

    Time lookahead() const { return lookahead_; }

    /** Round-synchronized virtual time. */
    Time now() const { return now_; }

    /** @{ The cross-island edge graph driving the channel clocks.
     *
     * declareEdge(src, dst) records that src can influence dst (packets,
     * deferred checks); dst then blocks on src's clock. declareDense(i)
     * connects i to every island both ways — including islands added
     * *after* the call — the sound fallback for islands whose
     * destinations are not known up front (UD). While no
     * edge has ever been declared the kernel assumes a dense graph, so a
     * raw kernel user who never declares edges gets conservative (and
     * correct) all-pairs synchronization. Edges are normally declared at
     * setup; declaring one mid-run is allowed only while the kernel is
     * quiesced (between run()/advance() calls). */
    void declareEdge(std::size_t src, std::size_t dst);
    void declareDense(std::size_t island);
    bool hasEdge(std::size_t src, std::size_t dst) const;

    /**
     * In-neighbor islands of @p i — the only islands whose channels can
     * hold work for i, so agents may restrict their per-window channel
     * scans to this list instead of probing every island. Rebuilt when
     * the kernel starts and on quiesced edge declarations; empty before
     * the first run.
     */
    const std::vector<std::uint32_t>&
    inNeighbors(std::size_t i) const
    {
        return islands_[i].inNbr;
    }
    /** @} */

    /** @{ Logical islands. Splitting a hot node over several islands
     * (cluster addNodePlanes()) maps its planes to one *logical* island
     * so KernelStats attributes work to the node, not to whichever
     * worker or plane executed it. Defaults to identity. */
    void setLogicalIsland(std::size_t island, std::size_t logical);
    std::size_t logicalIslandCount() const;
    /** @} */

    /** Windows per round (the quiesce/steal-rebalance granularity). */
    void setWindowsPerRound(unsigned windows);
    unsigned windowsPerRound() const { return windowsPerRound_; }

    /** Register / remove a channel holder (fabric, monitor, ...). */
    void addBarrierAgent(BarrierAgent* agent);
    void removeBarrierAgent(BarrierAgent* agent);

    /**
     * Run until every island drains (and all channels are empty) or
     * @p limit is reached. Mirrors EventQueue::run(): events at exactly
     * @p limit execute; on a limit cut every island clock is left at
     * @p limit. @return true if the simulation drained.
     */
    bool run(Time limit = Time::max());

    /**
     * Run until @p pred holds, checking at every round boundary (the
     * kernel quiesces once per windowsPerRound() grid windows; the
     * predicate may read any cross-island state there).
     * @return true if the predicate was satisfied.
     */
    bool runUntil(const std::function<bool()>& pred,
                  Time limit = Time::max());

    /** Advance all islands to now() + delta; clocks end exactly there. */
    void advance(Time delta);

    /** Total events executed across all islands. */
    std::uint64_t executed() const;

    /** Pending events across all islands (incl. buffered parcels). */
    std::size_t pending() const;

    /**
     * Sharding observability: round/window counts, channel traffic, the
     * per-logical-island event-count spread (imbalance is what caps the
     * parallel speedup), and scheduler behaviour. steals, maxClockLagNs
     * and workerBusyFraction describe the *schedule*, which is timing-
     * dependent — they are not part of the deterministic surface the
     * differential tests compare.
     */
    struct KernelStats
    {
        std::uint64_t barriers = 0;        ///< round quiesce points
        std::uint64_t windows = 0;         ///< island-windows executed
        std::uint64_t channelParcels = 0;  ///< cross-island items flushed
        std::uint64_t steals = 0;          ///< cross-worker island claims
        std::uint64_t maxClockLagNs = 0;   ///< worst blocked-island lag
        std::vector<std::uint64_t> executedPerIsland;  ///< logical islands
        std::uint64_t maxIslandExecuted = 0;
        std::uint64_t minIslandExecuted = 0;
        std::vector<double> workerBusyFraction;  ///< per worker
    };

    KernelStats kernelStats() const;

  private:
    /** Outcome of one attempt to advance an island inside a round. */
    enum class Step : std::uint8_t { Advanced, Blocked, RoundDone };

    /** "No worker has executed this island yet" (steal detection). */
    static constexpr std::uint32_t kNoWorker = 0xffffffffu;

    /** Per-island execution state. done is the published channel clock. */
    struct alignas(64) Island
    {
        std::unique_ptr<EventQueue> queue;
        std::atomic<std::int64_t> done{0};
        std::atomic<std::uint8_t> claim{0};
        std::atomic<bool> roundDone{false};
        std::uint32_t lastWorker = kNoWorker;  ///< steal detection (under claim)
        std::vector<std::uint32_t> inNbr;  ///< in-neighbor island indices
        std::uint64_t windows = 0;       ///< windows executed (under claim)
        std::uint64_t parcels = 0;       ///< items flushed (under claim)
        std::uint64_t maxLagNs = 0;      ///< worst blocked lag (under claim)
    };

    /** Per-worker wall-clock accounting (observability only). */
    struct alignas(64) Worker
    {
        std::thread thread;
        std::uint64_t busyNs = 0;
        std::uint64_t totalNs = 0;
    };

    /**
     * The round loop shared by run()/runUntil()/advance().
     * @return true when drained, false when the limit cut the run.
     */
    bool runCore(Time limit, const std::function<bool()>* pred,
                 bool* pred_hit);

    /** Execute one round up to @p round_limit across all workers. */
    void dispatchRound(Time init_done, Time round_limit);

    /** One worker's participation in the current round. */
    void workerRound(unsigned worker);

    /** Advance island @p i as far as the channel clocks allow. */
    Step stepIsland(unsigned worker, std::size_t i, Time round_limit);

    /** Safe horizon of island @p i: min in-neighbor clock + lookahead. */
    Time safeHorizon(const Island& is) const;

    /** Earliest buffered inbound effect for island @p i (all agents). */
    Time inboundEarliest(std::size_t i) const;

    void workerLoop(unsigned worker);

    /** Spawn the worker pool on first use (islands are final by then). */
    void startWorkers();

    /** Rebuild every island's in-neighbor list from the edge matrix. */
    void rebuildNeighbors();

    /** Grow the edge matrix to the island count, preserving entries. */
    void growEdges();

    /** Whether @p island was declared dense (edges to every island). */
    bool isDense(std::size_t island) const;

    /** Earliest pending work over all islands and channels (quiesced). */
    Time earliestPending() const;

    /** Line every island clock up at @p t (t >= every island's now). */
    void syncClocks(Time t);

    /** Sequential end-of-run flush: judge deferred checks at @p t. */
    void quiesceFlush(Time t);

    /** End of the grid window containing @p t (multiples of lookahead). */
    Time gridEnd(Time t) const;

    Time lookahead_;
    unsigned jobs_;
    ScheduleMode mode_;
    unsigned windowsPerRound_ = 16;
    std::deque<Island> islands_;
    std::vector<BarrierAgent*> agents_;
    Time now_;
    bool started_ = false;

    /** @{ Edge graph. Dense until the first declareEdge()/declareDense(). */
    std::vector<std::vector<std::uint8_t>> edges_;  ///< [src][dst]
    std::vector<std::uint8_t> dense_;  ///< islands with all-pairs edges
    bool anyEdgeDeclared_ = false;
    /** @} */

    std::vector<std::size_t> logicalOf_;

    /** @{ Stats (coordinator-written or per-island under claim). */
    std::uint64_t rounds_ = 0;
    std::atomic<std::uint64_t> steals_{0};
    /** @} */

    /**
     * @{ Worker pool protocol. The coordinator resets the per-island
     * round state, publishes the round with a release increment of
     * epoch_, participates as worker 0, then waits for every worker to
     * park (outstanding_ == 0). Workers wake on epoch_, execute islands
     * until all islands report roundDone (doneCount_ == islandCount),
     * then park. Claims give the cross-worker happens-before when an
     * island migrates between workers.
     */
    std::deque<Worker> workers_;
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<unsigned> outstanding_{0};
    std::atomic<std::size_t> doneCount_{0};
    std::atomic<bool> exit_{false};
    Time roundLimit_;
    /** @} */
};

} // namespace ibsim

#endif // IBSIM_SIMCORE_SHARDED_KERNEL_HH
