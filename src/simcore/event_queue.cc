#include "simcore/event_queue.hh"

#include <bit>
#include <cassert>

namespace ibsim {

/*
 * Tier invariants (the correctness core; DESIGN.md has the narrative):
 *
 *  - wheelTick_ is the wheel's read position in 256 ns ticks. It advances
 *    only inside refillDue(), jumping straight to the next occupied slot.
 *  - due_ holds exactly the events with when-tick <= wheelTick_ (the
 *    current level-0 slot window and anything scheduled "behind" the
 *    wheel while now_ lags a jump). It is a (when, seq) min-heap, so
 *    popping it reproduces the old single-heap execution order exactly.
 *  - A wheel slot at level L holds events whose tick lies in that slot's
 *    [start, start + 64^L * 256ns) window; every such start is strictly
 *    after the current level-0 window, so wheel events always sort after
 *    everything in due_.
 *  - overflow_ holds events beyond the top level's horizon; they migrate
 *    into due_ as the wheel reaches their window.
 *
 * Cancellation marks the node and leaves it in place; the node is
 * reclaimed when its tier surfaces it (or by sweepOverflow() when
 * cancelled far-future timers dominate the overflow tier). The handle
 * generation check makes cancel-after-execute a true O(1) no-op: no
 * auxiliary set, nothing grows.
 */

EventHandle
EventQueue::schedule(Time when, Callback cb)
{
    assert(when >= now_ && "cannot schedule events in the past");
    const std::uint32_t idx = allocNode();
    Node& n = pool_[idx];
    n.when = when;
    n.seq = nextSeq_++;
    n.state = NodeState::Pending;
    n.cb = std::move(cb);
    placeNode(idx);
    ++pendingCount_;
    return EventHandle{(static_cast<std::uint64_t>(n.gen) << 32) |
                       (idx + 1)};
}

bool
EventQueue::cancel(EventHandle h)
{
    if (!h.valid())
        return false;
    const std::uint32_t idx =
        static_cast<std::uint32_t>(h.id_ & 0xffffffffu) - 1;
    const std::uint32_t gen = static_cast<std::uint32_t>(h.id_ >> 32);
    if (idx >= pool_.size())
        return false;
    Node& n = pool_[idx];
    if (n.gen != gen || n.state != NodeState::Pending)
        return false;  // stale handle: executed, cancelled, or reused slot
    n.state = NodeState::Cancelled;
    n.cb.reset();  // release captures eagerly
    --pendingCount_;
    ++cancelledCount_;
    if (n.home == NodeHome::Overflow) {
        ++overflowCancelled_;
        // Far-future cancelled timers (retransmission timers are almost
        // always cancelled by progress) must not pin pool slots until
        // their distant expiry: sweep once they dominate the tier.
        if (overflowCancelled_ > 1024 &&
            overflowCancelled_ * 2 > overflow_.size()) {
            sweepOverflow();
        }
    }
    return true;
}

std::uint32_t
EventQueue::allocNode()
{
    if (freeHead_ != nil) {
        const std::uint32_t idx = freeHead_;
        freeHead_ = pool_[idx].next;
        --freeCount_;
        pool_[idx].next = nil;
        return idx;
    }
    pool_.emplace_back();
    return static_cast<std::uint32_t>(pool_.size() - 1);
}

void
EventQueue::freeNode(std::uint32_t idx)
{
    Node& n = pool_[idx];
    n.cb.reset();
    n.state = NodeState::Free;
    ++n.gen;  // invalidates every outstanding handle to this slot
    n.next = freeHead_;
    freeHead_ = idx;
    ++freeCount_;
}

bool
EventQueue::earlier(std::uint32_t a, std::uint32_t b) const
{
    const Node& x = pool_[a];
    const Node& y = pool_[b];
    if (x.when != y.when)
        return x.when < y.when;
    return x.seq < y.seq;
}

void
EventQueue::heapPush(std::vector<std::uint32_t>& heap, std::uint32_t idx)
{
    heap.push_back(idx);
    std::size_t child = heap.size() - 1;
    while (child > 0) {
        const std::size_t parent = (child - 1) / 2;
        if (!earlier(heap[child], heap[parent]))
            break;
        std::swap(heap[child], heap[parent]);
        child = parent;
    }
}

std::uint32_t
EventQueue::heapPop(std::vector<std::uint32_t>& heap)
{
    const std::uint32_t top = heap.front();
    heap.front() = heap.back();
    heap.pop_back();
    std::size_t parent = 0;
    const std::size_t size = heap.size();
    for (;;) {
        std::size_t best = parent;
        const std::size_t left = 2 * parent + 1;
        const std::size_t right = left + 1;
        if (left < size && earlier(heap[left], heap[best]))
            best = left;
        if (right < size && earlier(heap[right], heap[best]))
            best = right;
        if (best == parent)
            break;
        std::swap(heap[parent], heap[best]);
        parent = best;
    }
    return top;
}

void
EventQueue::placeNode(std::uint32_t idx)
{
    Node& n = pool_[idx];
    const std::uint64_t tick = tickOf(n.when);
    if (tick <= wheelTick_) {
        // Current wheel window — or behind it, when run(limit) left now_
        // short of a wheel jump. The due heap orders it correctly either
        // way.
        n.home = NodeHome::Due;
        heapPush(due_, idx);
        return;
    }
    for (int level = 0; level < levels; ++level) {
        const int shift = slotBits * level;
        const std::uint64_t rel =
            (tick >> shift) - (wheelTick_ >> shift);
        if (rel < slotsPerLevel) {
            const std::uint32_t slot =
                static_cast<std::uint32_t>((tick >> shift) &
                                           (slotsPerLevel - 1));
            n.home = NodeHome::Wheel;
            n.next = slots_[level][slot];
            slots_[level][slot] = idx;
            occupied_[level] |= 1ull << slot;
            ++wheelCount_;
            return;
        }
    }
    n.home = NodeHome::Overflow;
    heapPush(overflow_, idx);
}

void
EventQueue::sweepOverflow()
{
    std::size_t kept = 0;
    for (const std::uint32_t idx : overflow_) {
        if (pool_[idx].state == NodeState::Cancelled)
            freeNode(idx);
        else
            overflow_[kept++] = idx;
    }
    overflow_.resize(kept);
    overflowCancelled_ = 0;
    // Rebuild the heap property bottom-up (Floyd): O(kept).
    for (std::size_t i = kept / 2; i-- > 0;) {
        std::size_t parent = i;
        for (;;) {
            std::size_t best = parent;
            const std::size_t left = 2 * parent + 1;
            const std::size_t right = left + 1;
            if (left < kept && earlier(overflow_[left], overflow_[best]))
                best = left;
            if (right < kept && earlier(overflow_[right], overflow_[best]))
                best = right;
            if (best == parent)
                break;
            std::swap(overflow_[parent], overflow_[best]);
            parent = best;
        }
    }
}

bool
EventQueue::refillDue()
{
    while (due_.empty()) {
        // 1. Cascade: upper-level slots that contain the current position
        //    redistribute downward (their events are due within the
        //    current upper window). Reinsertion preserves seq, so order
        //    is untouched.
        for (int level = levels - 1; level >= 1; --level) {
            const int shift = slotBits * level;
            const std::uint32_t slot = static_cast<std::uint32_t>(
                (wheelTick_ >> shift) & (slotsPerLevel - 1));
            if (!(occupied_[level] & (1ull << slot)))
                continue;
            std::uint32_t chain = slots_[level][slot];
            slots_[level][slot] = nil;
            occupied_[level] &= ~(1ull << slot);
            while (chain != nil) {
                const std::uint32_t idx = chain;
                chain = pool_[idx].next;
                pool_[idx].next = nil;
                --wheelCount_;
                if (pool_[idx].state == NodeState::Cancelled)
                    freeNode(idx);
                else
                    placeNode(idx);
            }
        }

        // 2. Dump the current level-0 slot into the due heap.
        {
            const std::uint32_t slot =
                static_cast<std::uint32_t>(wheelTick_ &
                                           (slotsPerLevel - 1));
            if (occupied_[0] & (1ull << slot)) {
                std::uint32_t chain = slots_[0][slot];
                slots_[0][slot] = nil;
                occupied_[0] &= ~(1ull << slot);
                while (chain != nil) {
                    const std::uint32_t idx = chain;
                    chain = pool_[idx].next;
                    pool_[idx].next = nil;
                    --wheelCount_;
                    if (pool_[idx].state == NodeState::Cancelled) {
                        freeNode(idx);
                    } else {
                        pool_[idx].home = NodeHome::Due;
                        heapPush(due_, idx);
                    }
                }
            }
        }

        // 3. Drain overflow events that fall inside the current window.
        const Time slotEnd = Time::fromNs(
            static_cast<std::int64_t>((wheelTick_ + 1) << tickBits));
        while (!overflow_.empty() &&
               pool_[overflow_.front()].when < slotEnd) {
            const std::uint32_t idx = heapPop(overflow_);
            if (pool_[idx].state == NodeState::Cancelled) {
                freeNode(idx);
                if (overflowCancelled_ > 0)
                    --overflowCancelled_;
            } else {
                pool_[idx].home = NodeHome::Due;
                heapPush(due_, idx);
            }
        }

        if (!due_.empty())
            return true;

        // 4. Jump to the next occupied window: the earliest nonempty slot
        //    across all levels (slot starts lower-bound their events and
        //    all are 256 ns-aligned, so the minimum start is correct),
        //    or the overflow head, whichever comes first.
        std::uint64_t bestTick = ~0ull;
        for (int level = 0; level < levels; ++level) {
            const std::uint64_t bits = occupied_[level];
            if (!bits)
                continue;
            const int shift = slotBits * level;
            const std::uint64_t cur = wheelTick_ >> shift;
            const std::uint32_t slot = static_cast<std::uint32_t>(
                cur & (slotsPerLevel - 1));
            // Rotate so the current slot is bit 0; live slots all lie in
            // (cur, cur + 64), so the first set bit above 0 is the next
            // occupied slot in absolute order.
            const std::uint64_t rotated =
                (slot ? (bits >> slot) | (bits << (64 - slot)) : bits) &
                ~1ull;
            if (!rotated)
                continue;
            const std::uint64_t off =
                static_cast<std::uint64_t>(std::countr_zero(rotated));
            const std::uint64_t slotStartTick = (cur + off) << shift;
            if (slotStartTick < bestTick)
                bestTick = slotStartTick;
        }
        if (!overflow_.empty()) {
            const std::uint64_t t =
                tickOf(pool_[overflow_.front()].when);
            if (t < bestTick)
                bestTick = t;
        }
        if (bestTick == ~0ull)
            return false;  // nothing pending anywhere
        assert(bestTick > wheelTick_);
        wheelTick_ = bestTick;
    }
    return true;
}

std::uint32_t
EventQueue::nextRunnable()
{
    for (;;) {
        if (due_.empty() && !refillDue())
            return nil;
        const std::uint32_t idx = due_.front();
        if (pool_[idx].state == NodeState::Cancelled) {
            heapPop(due_);
            freeNode(idx);
            continue;
        }
        return idx;  // left on the due heap; executeNode pops it
    }
}

void
EventQueue::executeNode(std::uint32_t idx)
{
    Node& n = pool_[idx];
    now_ = n.when;
    --pendingCount_;
    ++executedCount_;
    Callback cb = std::move(n.cb);
    // Free before invoking: a handle to this event is stale from the
    // callback's point of view (cancel() is a no-op), and the slot is
    // immediately reusable by anything the callback schedules.
    freeNode(idx);
    cb();
}

bool
EventQueue::run(Time limit)
{
    for (;;) {
        const std::uint32_t idx = nextRunnable();
        if (idx == nil)
            return true;
        if (pool_[idx].when > limit) {
            now_ = limit;
            return false;
        }
        heapPop(due_);
        executeNode(idx);
    }
}

bool
EventQueue::runUntil(const std::function<bool()>& pred, Time limit)
{
    if (pred())
        return true;
    for (;;) {
        const std::uint32_t idx = nextRunnable();
        if (idx == nil)
            return false;
        if (pool_[idx].when > limit) {
            now_ = limit;
            return false;
        }
        heapPop(due_);
        executeNode(idx);
        if (pred())
            return true;
    }
}

Time
EventQueue::nextEventTime()
{
    const std::uint32_t idx = nextRunnable();
    return idx == nil ? Time::max() : pool_[idx].when;
}

void
EventQueue::advance(Time delta)
{
    const Time target = now_ + delta;
    run(target);
    now_ = target;
}

EventQueue::KernelStats
EventQueue::kernelStats() const
{
    KernelStats s;
    s.poolNodes = pool_.size();
    s.freeNodes = freeCount_;
    s.wheelNodes = wheelCount_;
    s.dueNodes = due_.size();
    s.overflowNodes = overflow_.size();
    s.cancelledTotal = cancelledCount_;
    return s;
}

} // namespace ibsim
