#include "simcore/event_queue.hh"

#include <algorithm>
#include <cassert>

namespace ibsim {

EventHandle
EventQueue::schedule(Time when, Callback cb)
{
    assert(when >= now_ && "cannot schedule events in the past");
    const std::uint64_t id = nextId_++;
    queue_.push(Entry{when, nextSeq_++, id, std::move(cb)});
    ++pendingCount_;
    return EventHandle{id};
}

bool
EventQueue::cancel(EventHandle h)
{
    if (!h.valid())
        return false;
    // The queue is scanned lazily: we just remember the id and drop the
    // entry when it reaches the head (or at the next compaction).
    // Duplicate cancels are filtered by the set insert.
    //
    // We cannot cheaply look inside the priority queue, so track ids of
    // pending entries implicitly: an id is pending iff it was issued and
    // neither executed nor cancelled. Executed ids are never re-cancelled
    // in practice; cancelling an already-executed handle merely wastes
    // one slot until the next compaction.
    if (!cancelled_.insert(h.id_).second)
        return false;
    if (pendingCount_ > 0)
        --pendingCount_;
    // Keep the heap from filling up with far-future cancelled timers
    // (retransmission timers are almost always cancelled by progress).
    if (cancelled_.size() > 1024 &&
        cancelled_.size() > queue_.size() / 2) {
        compact();
    }
    return true;
}

void
EventQueue::compact()
{
    std::vector<Entry> keep;
    keep.reserve(queue_.size());
    while (!queue_.empty()) {
        // Entries come off the heap in order; moving them preserves seq.
        Entry e = std::move(const_cast<Entry&>(queue_.top()));
        queue_.pop();
        if (cancelled_.erase(e.id) == 0)
            keep.push_back(std::move(e));
    }
    for (auto& e : keep)
        queue_.push(std::move(e));
    cancelled_.clear();  // anything left referenced executed events
}

void
EventQueue::skipCancelled()
{
    while (!queue_.empty()) {
        auto it = cancelled_.find(queue_.top().id);
        if (it == cancelled_.end())
            return;
        cancelled_.erase(it);
        queue_.pop();
    }
}

void
EventQueue::executeNext()
{
    Entry e = queue_.top();
    queue_.pop();
    now_ = e.when;
    --pendingCount_;
    ++executedCount_;
    e.cb();
}

bool
EventQueue::run(Time limit)
{
    for (;;) {
        skipCancelled();
        if (queue_.empty())
            return true;
        if (queue_.top().when > limit) {
            now_ = limit;
            return false;
        }
        executeNext();
    }
}

bool
EventQueue::runUntil(const std::function<bool()>& pred, Time limit)
{
    if (pred())
        return true;
    for (;;) {
        skipCancelled();
        if (queue_.empty())
            return false;
        if (queue_.top().when > limit) {
            now_ = limit;
            return false;
        }
        executeNext();
        if (pred())
            return true;
    }
}

void
EventQueue::advance(Time delta)
{
    const Time target = now_ + delta;
    run(target);
    now_ = target;
}

} // namespace ibsim
