/**
 * @file
 * Deterministic random number generation.
 *
 * All stochastic behaviour in the simulator (page fault latency jitter, RNR
 * wait jitter, host scheduling noise) flows through one seeded Rng so that
 * every experiment is reproducible and the "probability out of 10 trials"
 * figures of the paper can be regenerated exactly.
 */

#ifndef IBSIM_SIMCORE_RNG_HH
#define IBSIM_SIMCORE_RNG_HH

#include <cstdint>
#include <random>

#include "simcore/time.hh"

namespace ibsim {

/**
 * Seeded pseudo-random source used by one simulated cluster.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 1) : engine_(seed) {}

    /** Re-seed, restarting the sequence. */
    void reseed(std::uint64_t seed) { engine_.seed(seed); }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
    }

    /** Uniform Time in [lo, hi). */
    Time
    uniformTime(Time lo, Time hi)
    {
        if (hi <= lo)
            return lo;
        return Time::fromNs(uniformInt(lo.toNs(), hi.toNs() - 1));
    }

    /** Bernoulli trial. */
    bool chance(double p) { return uniform(0.0, 1.0) < p; }

    /**
     * Multiplicative jitter: value scaled by a factor uniform in
     * [1 - spread, 1 + spread].
     */
    Time
    jitter(Time value, double spread)
    {
        return value * uniform(1.0 - spread, 1.0 + spread);
    }

    /** Exponentially distributed duration with the given mean. */
    Time
    exponential(Time mean)
    {
        std::exponential_distribution<double> d(1.0);
        return mean * d(engine_);
    }

    std::mt19937_64& engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace ibsim

#endif // IBSIM_SIMCORE_RNG_HH
