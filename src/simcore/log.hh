/**
 * @file
 * Lightweight component-tagged trace logging.
 *
 * Logging is off by default and enabled per component (e.g. "rc", "odp") or
 * globally with "*". Every line carries the virtual timestamp supplied by
 * the caller, which makes manual trace reading line up with packet captures.
 *
 * Hot paths must not pay for disabled tracing. A log::Component is a
 * registered handle whose enabled() is a single relaxed atomic load, and
 * the IBSIM_TRACE macro evaluates its message expression *only* when the
 * component is traced — so per-packet call sites build no strings and make
 * no allocations while tracing is off:
 *
 *     namespace { ibsim::log::Component traceFabric("fabric"); }
 *     ...
 *     IBSIM_TRACE(traceFabric, events_.now(), pkt.str() + " dropped");
 *
 * The legacy string-keyed trace()/enabled() API remains for cold paths and
 * tests; enable()/disableAll() drive both.
 */

#ifndef IBSIM_SIMCORE_LOG_HH
#define IBSIM_SIMCORE_LOG_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "simcore/time.hh"

namespace ibsim {
namespace log {

/**
 * A trace-component handle with an inline enabled() check.
 *
 * Construct with static storage duration (one per component tag per
 * translation unit is fine; handles sharing a tag toggle together). The
 * constructor registers the handle in a process-global list so that
 * enable()/disableAll() can refresh every handle's cached flag; handles
 * are never unregistered, which is why they must outlive all tracing.
 */
class Component
{
  public:
    explicit Component(const char* tag);

    Component(const Component&) = delete;
    Component& operator=(const Component&) = delete;

    /** One relaxed load; safe to call on every packet. */
    bool enabled() const { return flag_.load(std::memory_order_relaxed); }

    const char* tag() const { return tag_; }

  private:
    friend void enable(const std::string& component);
    friend void disableAll();

    const char* tag_;
    std::atomic<bool> flag_{false};
};

/** Enable tracing for a component tag, or "*" for all. */
void enable(const std::string& component);

/** Disable all tracing. */
void disableAll();

/** Whether the component is currently traced. */
bool enabled(const std::string& component);

/** Emit one line: "[time] component: message" to stderr. */
void trace(Time when, const std::string& component,
           const std::string& message);

/** Component-handle emission (no registry lookup; rechecks enabled()). */
void trace(Time when, const Component& component,
           const std::string& message);

/**
 * Number of trace lines actually formatted and emitted since process
 * start. The datapath tests assert this stays flat (together with
 * net::Packet::strCalls()) across trace-disabled hot-path runs.
 */
std::uint64_t linesEmitted();

} // namespace log
} // namespace ibsim

/**
 * Lazy trace: @p expr (any expression yielding std::string) is evaluated
 * only when @p component is currently traced. This is the only sanctioned
 * way to trace from a per-packet path.
 */
#define IBSIM_TRACE(component, when, expr)                                \
    do {                                                                  \
        if ((component).enabled())                                        \
            ::ibsim::log::trace((when), (component), (expr));             \
    } while (0)

#endif // IBSIM_SIMCORE_LOG_HH
