/**
 * @file
 * Lightweight component-tagged trace logging.
 *
 * Logging is off by default and enabled per component (e.g. "rc", "odp") or
 * globally with "*". Every line carries the virtual timestamp supplied by
 * the caller, which makes manual trace reading line up with packet captures.
 */

#ifndef IBSIM_SIMCORE_LOG_HH
#define IBSIM_SIMCORE_LOG_HH

#include <string>

#include "simcore/time.hh"

namespace ibsim {
namespace log {

/** Enable tracing for a component tag, or "*" for all. */
void enable(const std::string& component);

/** Disable all tracing. */
void disableAll();

/** Whether the component is currently traced. */
bool enabled(const std::string& component);

/** Emit one line: "[time] component: message" to stderr. */
void trace(Time when, const std::string& component,
           const std::string& message);

} // namespace log
} // namespace ibsim

#endif // IBSIM_SIMCORE_LOG_HH
