#include "apps/mini_shuffle.hh"

#include <algorithm>

#include "cluster/cluster.hh"
#include "mem/address_space.hh"

namespace ibsim {
namespace apps {

namespace {

/** UCX default transport attributes (paper Sec. VII). */
verbs::QpConfig
ucxDefaults()
{
    verbs::QpConfig config;
    config.cack = 18;
    config.cretry = 7;
    config.minRnrNakDelay = Time::ms(0.96);
    return config;
}

rnic::DeviceProfile
knlProfile()
{
    auto p = rnic::DeviceProfile::knl();
    // Xeon Phi's slow cores stretch fault handling well past the generic
    // band.
    p.faultTiming.faultLatencyMin = Time::us(400);
    p.faultTiming.faultLatencyMax = Time::us(2000);
    return p;
}

rnic::DeviceProfile
reedbushProfile()
{
    return rnic::DeviceProfile::table1()[2];  // Reedbush-H
}

rnic::DeviceProfile
abciProfile()
{
    auto p = rnic::DeviceProfile::table1()[4];  // ABCI
    // Fast Skylake hosts resolve faults quickly, so fewer QPs are deep
    // enough into retransmission to miss the status update -- which is why
    // ABCI degrades the least in the paper's table.
    p.faultTiming.faultLatencyMin = Time::us(250);
    p.faultTiming.faultLatencyMax = Time::us(600);
    return p;
}

ShuffleRow
row(const char* system, const char* example, rnic::DeviceProfile profile,
    std::size_t qps, std::size_t wave_qps, std::size_t waves,
    double compute_model_sec)
{
    ShuffleRow r;
    r.system = system;
    r.example = example;
    r.profile = std::move(profile);
    r.qps = qps;
    r.waveQps = wave_qps;
    r.waves = waves;
    r.computeTotal = Time::sec(compute_model_sec);
    return r;
}

} // namespace

std::vector<ShuffleRow>
ShuffleRow::table13()
{
    // QP counts are the paper's; compute is the ODP-disabled column scaled
    // 1:10; waves calibrate how much of the job is shuffle fetches.
    std::vector<ShuffleRow> rows;
    // SparkTC
    rows.push_back(
        row("KNL (2)", "SparkTC", knlProfile(), 411, 256, 10, 30.3));
    rows.push_back(row("Reedbush-H (2)", "SparkTC", reedbushProfile(),
                       980, 256, 45, 3.97));
    rows.push_back(
        row("ABCI (2)", "SparkTC", abciProfile(), 2191, 64, 12, 8.39));
    rows.push_back(
        row("ABCI (4)", "SparkTC", abciProfile(), 2858, 192, 60, 4.17));
    // mllib.RecommendationExample
    rows.push_back(row("KNL (2)", "mllib.RecommendationExample",
                       knlProfile(), 210, 192, 4, 10.0));
    rows.push_back(row("Reedbush-H (2)", "mllib.RecommendationExample",
                       reedbushProfile(), 980, 256, 14, 2.19));
    rows.push_back(row("ABCI (2)", "mllib.RecommendationExample",
                       abciProfile(), 2191, 64, 37, 2.9));
    rows.push_back(row("ABCI (4)", "mllib.RecommendationExample",
                       abciProfile(), 1953, 128, 30, 2.43));
    // mllib.RankingMetricsExample
    rows.push_back(row("KNL (2)", "mllib.RankingMetricsExample",
                       knlProfile(), 389, 256, 8, 51.7));
    rows.push_back(row("Reedbush-H (2)", "mllib.RankingMetricsExample",
                       reedbushProfile(), 980, 256, 15, 4.66));
    rows.push_back(row("ABCI (2)", "mllib.RankingMetricsExample",
                       abciProfile(), 2191, 192, 120, 10.7));
    rows.push_back(row("ABCI (4)", "mllib.RankingMetricsExample",
                       abciProfile(), 2667, 512, 48, 8.32));
    return rows;
}

ShuffleResult
MiniShuffle::run(std::uint64_t seed) const
{
    Cluster cluster(row_.profile, 2, seed);
    Node& reducer = cluster.node(0);
    Node& mapper = cluster.node(1);

    auto& reducer_cq = reducer.createCq();
    auto& mapper_cq = mapper.createCq();

    // Connections are established once per job (Spark reuses them).
    std::vector<verbs::QueuePair> qps;
    qps.reserve(row_.qps);
    for (std::size_t q = 0; q < row_.qps; ++q) {
        auto [rqp, mqp] = cluster.connectRc(reducer, reducer_cq, mapper,
                                            mapper_cq, ucxDefaults());
        qps.push_back(rqp);
    }

    const auto access = odp_ ? verbs::AccessFlags::odp()
                             : verbs::AccessFlags::pinned();
    const Time compute_per_wave =
        row_.computeTotal / static_cast<double>(row_.waves);
    const std::size_t wave_qps = std::min(row_.waveQps, row_.qps);
    const std::uint64_t wave_bytes =
        static_cast<std::uint64_t>(wave_qps) * row_.blockSize;

    ShuffleResult result;
    const Time start = cluster.now();
    std::uint64_t expected = 0;

    for (std::size_t w = 0; w < row_.waves; ++w) {
        const Time wave_start = cluster.now();

        // Fresh shuffle buffers per wave: new map output, new fetch
        // destinations. Under ODP these start cold on the RNIC.
        const std::uint64_t fetch = reducer.alloc(wave_bytes);
        const std::uint64_t blocks = mapper.alloc(wave_bytes);
        mapper.memory().touch(blocks, wave_bytes);  // map output exists
        auto& fetch_mr = reducer.registerMemory(fetch, wave_bytes, access);
        auto& block_mr = mapper.registerMemory(blocks, wave_bytes,
                                               verbs::AccessFlags::
                                                   pinned());

        // This wave's task set fetches its blocks; the task set rotates
        // over the job's connections.
        for (std::size_t q = 0; q < wave_qps; ++q) {
            const std::size_t conn = (w * wave_qps + q) % row_.qps;
            const std::uint64_t off =
                static_cast<std::uint64_t>(q) * row_.blockSize;
            qps[conn].postRead(fetch + off, fetch_mr.lkey(), blocks + off,
                               block_mr.rkey(), row_.blockSize,
                               /*wr_id=*/w * wave_qps + q);
            cluster.advance(Time::us(1));
        }
        ++expected;
        if (!cluster.runUntil(
                [&] {
                    return reducer_cq.totalSuccess() >=
                           expected * wave_qps;
                },
                cluster.now() + Time::sec(120))) {
            return result;  // incomplete: wave stalled beyond any reason
        }
        const Time wave_time = cluster.now() - wave_start;
        if (wave_time > result.longestWave)
            result.longestWave = wave_time;

        // Task compute between shuffle waves.
        cluster.advance(cluster.rng().jitter(compute_per_wave, 0.05));
    }

    result.completed = true;
    result.executionTime = cluster.now() - start;
    for (const auto& qp : qps) {
        result.timeouts += qp.stats().timeouts;
        result.retransmissions += qp.stats().retransmissions;
    }
    result.updateFailures = reducer.board().stats().updateFailures;
    result.totalPackets = cluster.fabric().totalSent();
    return result;
}

} // namespace apps
} // namespace ibsim
