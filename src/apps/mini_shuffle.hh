/**
 * @file
 * MiniShuffle — a SparkUCX-like RDMA shuffle model.
 *
 * SparkUCX (paper Sec. VII-B) accelerates Spark shuffling with RDMA: every
 * reducer fetches the mappers' freshly-produced blocks with READ
 * operations over hundreds to thousands of QPs. With ODP enabled the fetch
 * buffers are registered on demand, so each shuffle wave triggers
 * simultaneous page faults from many QPs — the packet-flood recipe.
 *
 * MiniShuffle runs W shuffle "waves". Per wave, fresh block buffers are
 * allocated and registered (pinned or ODP), one READ per QP fetches a
 * block, and a compute phase follows. The job's total compute time is a
 * workload parameter calibrated from the paper's ODP-disabled column; the
 * ODP-enabled delta is fully emergent from the simulated flood.
 */

#ifndef IBSIM_APPS_MINI_SHUFFLE_HH
#define IBSIM_APPS_MINI_SHUFFLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "rnic/device_profile.hh"
#include "simcore/time.hh"
#include "verbs/types.hh"

namespace ibsim {
namespace apps {

/** One (system, example) row of the paper's Fig. 13 table. */
struct ShuffleRow
{
    std::string system;
    std::string example;
    rnic::DeviceProfile profile;

    /** QPs created by the example on this cluster (paper Fig. 13). */
    std::size_t qps = 411;

    /**
     * Connections actively fetching in one wave. Spark schedules a
     * bounded number of concurrent tasks, so only a rotating subset of
     * the job's QPs fetches at once.
     */
    std::size_t waveQps = 128;

    /** Shuffle fetch waves across the job (stages x fetch rounds). */
    std::size_t waves = 8;

    /**
     * Total non-shuffle compute, calibrated from the paper's
     * ODP-disabled column (scaled 1:10 to keep simulations brisk).
     */
    Time computeTotal = Time::sec(30);

    /** Block size per fetch; small blocks pack many QPs per page. */
    std::uint32_t blockSize = 128;

    /** The twelve rows of paper Fig. 13 (4 systems x 3 examples). */
    static std::vector<ShuffleRow> table13();
};

/** Measurements of one job run. */
struct ShuffleResult
{
    bool completed = false;
    Time executionTime;
    std::uint64_t timeouts = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t updateFailures = 0;
    std::uint64_t totalPackets = 0;

    /** Longest single shuffle-wave stall (the "stuck for seconds"). */
    Time longestWave;
};

/**
 * One SparkUCX-like job.
 */
class MiniShuffle
{
  public:
    MiniShuffle(ShuffleRow row, bool odp)
        : row_(std::move(row)), odp_(odp)
    {}

    /** Run one trial with the given seed. */
    ShuffleResult run(std::uint64_t seed) const;

  private:
    ShuffleRow row_;
    bool odp_;
};

} // namespace apps
} // namespace ibsim

#endif // IBSIM_APPS_MINI_SHUFFLE_HH
