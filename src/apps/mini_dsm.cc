#include "apps/mini_dsm.hh"

#include <functional>

#include "cluster/cluster.hh"
#include "mem/address_space.hh"

namespace ibsim {
namespace apps {

DsmSystemParams
DsmSystemParams::knl()
{
    DsmSystemParams p;
    p.name = "KNL (2 nodes)";
    p.profile = rnic::DeviceProfile::knl();
    // Xeon Phi's slow cores dominate: measured ~2.28 s without ODP.
    p.hostSetup = Time::sec(2.2);
    p.lockGapMin = Time::ms(0.3);
    p.lockGapMax = Time::ms(7.0);
    return p;
}

DsmSystemParams
DsmSystemParams::reedbushH()
{
    DsmSystemParams p;
    p.name = "Reedbush-H (2 nodes)";
    auto catalog = rnic::DeviceProfile::table1();
    p.profile = catalog[2];  // Reedbush-H ConnectX-4
    p.hostSetup = Time::sec(0.44);
    // A faster host spends less time between the lock READ and the
    // release, but its gap distribution is wide relative to the pending
    // window, so damming strikes less often (matching the measured
    // averages).
    p.lockGapMin = Time::ms(2.0);
    p.lockGapMax = Time::ms(12.0);
    return p;
}

DsmResult
MiniDsm::run(std::uint64_t seed) const
{
    Cluster cluster(system_.profile, 2, seed);
    Node& home = cluster.node(0);
    Node& worker = cluster.node(1);

    const Time start = cluster.now();

    // 1. Host-side setup (allocator, signal handlers, MPI windows).
    cluster.advance(cluster.rng().jitter(system_.hostSetup, 0.03));

    // 2. Register the global region on the home node and a mirror +
    //    message buffers on the worker.
    const std::uint64_t global = home.alloc(config_.memoryBytes);
    const std::uint64_t mirror = worker.alloc(config_.memoryBytes);
    const std::uint64_t msg_home = home.alloc(mem::pageSize);
    const std::uint64_t msg_worker = worker.alloc(mem::pageSize);

    const auto access = config_.odp ? verbs::AccessFlags::odp()
                                    : verbs::AccessFlags::pinned();
    if (!config_.odp) {
        // Conventional registration pins every page down first.
        const double pages = static_cast<double>(
            (config_.memoryBytes + mem::pageSize - 1) / mem::pageSize);
        cluster.advance(system_.pinPerPage * (2.0 * pages));
    }
    auto& home_mr = home.registerMemory(global, config_.memoryBytes,
                                        access);
    auto& worker_mr = worker.registerMemory(mirror, config_.memoryBytes,
                                            access);
    auto& home_msg_mr = home.registerMemory(msg_home, mem::pageSize,
                                            verbs::AccessFlags::pinned());
    auto& worker_msg_mr = worker.registerMemory(
        msg_worker, mem::pageSize, verbs::AccessFlags::pinned());

    auto& home_cq = home.createCq();
    auto& worker_cq = worker.createCq();
    auto [wqp, hqp] = cluster.connectRc(worker, worker_cq, home, home_cq,
                                        config_.qpConfig);

    DsmResult result;
    const Time limit = start + Time::sec(60);
    const auto ran = [&](const std::function<bool()>& pred) {
        return cluster.runUntil(pred, limit);
    };

    // 3. Startup barrier: worker pings, home is ready.
    hqp.postRecv(msg_home, home_msg_mr.lkey(), 64, 9001);
    worker.memory().write(msg_worker, std::vector<std::uint8_t>(64, 0xAB));
    wqp.postSend(msg_worker, worker_msg_mr.lkey(), 64, 9002);
    if (!ran([&] { return worker_cq.totalCompletions() >= 1; }))
        return result;

    // 4. First-touch the directory pages: synchronous WRITEs (MPI_Put +
    //    flush). Synchronous means one outstanding op at a time, so these
    //    fault abundantly under ODP but cannot dam each other.
    const std::uint64_t done_before = worker_cq.totalSuccess();
    for (std::size_t p = 0; p < config_.firstTouchPages; ++p) {
        const std::uint64_t dst = global + p * mem::pageSize;
        wqp.postWrite(mirror, worker_mr.lkey(), dst, home_mr.rkey(),
                      /*length=*/64, /*wr_id=*/1000 + p);
        if (!ran([&] {
                return worker_cq.totalSuccess() >= done_before + p + 1;
            }))
            return result;
        cluster.advance(cluster.rng().uniformTime(Time::us(20),
                                                  Time::us(120)));
    }

    // 5. Global lock: READ the (cold) lock word from the home node, then
    //    SEND the queue-lock message after a compute gap -- pipelined, as
    //    the paper observed with ibdump.
    const std::uint64_t lock_addr =
        global + config_.memoryBytes - mem::pageSize;
    const std::uint64_t before_lock = worker_cq.totalSuccess();
    hqp.postRecv(msg_home, home_msg_mr.lkey(), 64, 9003);
    wqp.postRead(mirror + mem::pageSize, worker_mr.lkey(), lock_addr,
                 home_mr.rkey(), /*length=*/8, /*wr_id=*/2000);
    cluster.advance(cluster.rng().uniformTime(system_.lockGapMin,
                                              system_.lockGapMax));
    wqp.postSend(msg_worker, worker_msg_mr.lkey(), 64, /*wr_id=*/2001);

    if (!ran([&] { return worker_cq.totalSuccess() >= before_lock + 2; }))
        return result;

    // 6. Finalize barrier.
    wqp.postRead(mirror, worker_mr.lkey(), global, home_mr.rkey(), 8,
                 3000);
    if (!ran([&] { return worker_cq.totalSuccess() >= before_lock + 3; }))
        return result;

    result.completed = true;
    result.executionTime = cluster.now() - start;
    result.timeouts = wqp.stats().timeouts;
    result.rnrNaks = wqp.stats().rnrNaksReceived;
    result.faultsResolved = home.driver().stats().faultsResolved +
                            worker.driver().stats().faultsResolved;
    return result;
}

} // namespace apps
} // namespace ibsim
