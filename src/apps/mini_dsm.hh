/**
 * @file
 * MiniDsm — an ArgoDSM-like distributed shared memory initialization model.
 *
 * ArgoDSM (paper Sec. VII-A) is a home-node directory DSM whose
 * argo::init() performs abundant first touches and, crucially, a global
 * lock acquisition in which one node READs a remote lock word and then
 * SENDs a message shortly after — the exact READ-followed-by-operation
 * pattern that packet damming strikes. MiniDsm reproduces that
 * initialization protocol on the simulator's verbs API:
 *
 *   1. host-side setup (the dominant, system-dependent cost);
 *   2. registration of the global memory region (pinned or ODP);
 *   3. a SEND/RECV barrier;
 *   4. synchronous first-touch WRITEs of the directory pages;
 *   5. the global lock: a READ of the (cold) lock word followed, after a
 *      jittered compute gap, by a pipelined SEND release;
 *   6. a finalize barrier.
 *
 * With ODP enabled, step 5's SEND can land inside the READ's fault pending
 * window and get dammed, adding a full transport timeout — the bimodal
 * histogram of paper Fig. 12.
 */

#ifndef IBSIM_APPS_MINI_DSM_HH
#define IBSIM_APPS_MINI_DSM_HH

#include <cstdint>
#include <string>

#include "rnic/device_profile.hh"
#include "simcore/time.hh"
#include "verbs/types.hh"

namespace ibsim {
namespace apps {

/** Host/system parameters of one testbed (paper Table II). */
struct DsmSystemParams
{
    std::string name;
    rnic::DeviceProfile profile;

    /** Host-side setup cost of argo::init (allocator, threads, MPI). */
    Time hostSetup = Time::sec(2.2);

    /** Pinning cost per page for conventional registration. */
    Time pinPerPage = Time::us(2);

    /** Compute gap between the lock READ and the release SEND. */
    Time lockGapMin = Time::ms(0.3);
    Time lockGapMax = Time::ms(7.0);

    /** The paper's two histogram systems. */
    static DsmSystemParams knl();
    static DsmSystemParams reedbushH();
};

/** Workload parameters. */
struct DsmConfig
{
    /** Memory passed to argo::init (paper: 10 MB). */
    std::uint64_t memoryBytes = 10ull << 20;

    /** Directory pages first-touched during init. */
    std::size_t firstTouchPages = 32;

    /** Enable ODP registration (UCX environment switch). */
    bool odp = false;

    /** QP attributes; UCX defaults: C_ack 18, min RNR NAK 0.96 ms. */
    verbs::QpConfig qpConfig = ucxDefaults();

    static verbs::QpConfig
    ucxDefaults()
    {
        verbs::QpConfig config;
        config.cack = 18;
        config.cretry = 7;
        config.minRnrNakDelay = Time::ms(0.96);
        return config;
    }
};

/** Measurements of one init+finalize run. */
struct DsmResult
{
    bool completed = false;
    Time executionTime;
    std::uint64_t timeouts = 0;
    std::uint64_t rnrNaks = 0;
    std::uint64_t faultsResolved = 0;
};

/**
 * One simulated argo::init(); argo::finalize() benchmark run.
 */
class MiniDsm
{
  public:
    MiniDsm(DsmSystemParams system, DsmConfig config)
        : system_(std::move(system)), config_(config)
    {}

    /** Run one trial with the given seed. */
    DsmResult run(std::uint64_t seed) const;

  private:
    DsmSystemParams system_;
    DsmConfig config_;
};

} // namespace apps
} // namespace ibsim

#endif // IBSIM_APPS_MINI_DSM_HH
