/**
 * @file
 * Packet loss injection.
 *
 * The fabric consults a LossModel before delivering each packet. The paper
 * induces loss two ways — by pointing a QP at a wrong destination LID
 * (Sec. IV-B) and through the damming quirk — and unknown-LID drop is built
 * into the fabric itself. These models cover additional fault-injection
 * needs of the tests and ablation benches.
 *
 * Since the chaos engine landed, the LossModel is stage zero of the
 * fabric's fault pipeline (see net/fault_hook.hh): it runs before the
 * installed FaultHook, with the fabric's RNG, so pre-chaos users keep
 * bit-identical behaviour. Richer fault classes (delay, reordering,
 * duplication, corruption, link flaps, forged NAKs) live in
 * chaos::FaultInjector; chaos::LossModelStage adapts any LossModel into
 * that pipeline for seed-deterministic replay.
 */

#ifndef IBSIM_NET_LOSS_HH
#define IBSIM_NET_LOSS_HH

#include <functional>
#include <memory>

#include "net/packet.hh"
#include "simcore/rng.hh"

namespace ibsim {
namespace net {

/**
 * Decides, per packet, whether the fabric drops it.
 */
class LossModel
{
  public:
    virtual ~LossModel() = default;

    /** @return true if the packet should be dropped. */
    virtual bool shouldDrop(const Packet& pkt, Rng& rng) = 0;
};

/** Never drops. */
class NoLoss : public LossModel
{
  public:
    bool shouldDrop(const Packet&, Rng&) override { return false; }
};

/** Drops each packet independently with fixed probability. */
class BernoulliLoss : public LossModel
{
  public:
    explicit BernoulliLoss(double probability)
        : probability_(probability)
    {}

    bool
    shouldDrop(const Packet&, Rng& rng) override
    {
        return rng.chance(probability_);
    }

  private:
    double probability_;
};

/**
 * Drops the first @p count packets matching a predicate, then lets
 * everything through. Used to lose one specific packet deterministically.
 */
class MatchOnceLoss : public LossModel
{
  public:
    using Predicate = std::function<bool(const Packet&)>;

    MatchOnceLoss(Predicate pred, std::size_t count = 1)
        : pred_(std::move(pred)), remaining_(count)
    {}

    bool
    shouldDrop(const Packet& pkt, Rng&) override
    {
        if (remaining_ > 0 && pred_(pkt)) {
            --remaining_;
            return true;
        }
        return false;
    }

    std::size_t remaining() const { return remaining_; }

  private:
    Predicate pred_;
    std::size_t remaining_;
};

} // namespace net
} // namespace ibsim

#endif // IBSIM_NET_LOSS_HH
