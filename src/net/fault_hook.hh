/**
 * @file
 * The fabric's fault-injection hook point.
 *
 * The fabric consults at most one FaultHook per packet, after the legacy
 * LossModel stage and before delivery scheduling. The hook maps one packet
 * to zero or more deliveries: dropping (empty result), delaying (extra
 * delay per delivery), duplicating or corrupting (extra/mutated copies),
 * and injecting entirely new packets such as forged NAKs (deliveries whose
 * addressing differs from the input). The canonical implementation is
 * chaos::FaultInjector; the interface lives in net so the fabric stays
 * independent of the chaos subsystem.
 */

#ifndef IBSIM_NET_FAULT_HOOK_HH
#define IBSIM_NET_FAULT_HOOK_HH

#include <vector>

#include "net/packet.hh"
#include "simcore/time.hh"

namespace ibsim {
namespace net {

/**
 * Per-packet fault pipeline consulted by Fabric::send().
 */
class FaultHook
{
  public:
    /** One packet to put on the wire, with optional added latency. */
    struct Delivery
    {
        Packet pkt;
        Time extraDelay;
    };

    virtual ~FaultHook() = default;

    /**
     * Transform @p pkt into deliveries appended to @p out. Leaving @p out
     * empty drops the packet. The first delivery is treated as the
     * original (it keeps the wire id); later entries get fresh wire ids
     * and are counted as injected traffic. Implementations must be
     * deterministic given their own seed: the fabric passes no RNG.
     */
    virtual void processPacket(const Packet& pkt, Time now,
                               std::vector<Delivery>& out) = 0;
};

} // namespace net
} // namespace ibsim

#endif // IBSIM_NET_FAULT_HOOK_HH
